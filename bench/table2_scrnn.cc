/**
 * @file
 * Reproduces paper Table 2: SC-RNN speedup over native PyTorch across
 * mini-batch sizes and Astra feature presets.
 *
 * Paper shape: speedups fall with batch size (launch-overhead
 * amortization); 1.65-2.27x at batch 8, near parity at 256; streams
 * add 15-23% over fusion+kernels.
 */
#include "bench/common.h"

int
main()
{
    astra::bench::Env env;
    astra::bench::print_speedup_table(
        "Table 2: SC-RNN, factor speedup vs native (paper Astra_all: "
        "2.27 / 2.22 / 1.81 / 1.49 / 1.20 / 1.12)",
        astra::ModelKind::Scrnn,
        {{8, 2.27}, {16, 2.22}, {32, 1.81}, {64, 1.49}, {128, 1.2},
         {256, 1.12}},
        env);
    return 0;
}
