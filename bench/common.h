/**
 * @file
 * Shared helpers for the paper-table benchmark harnesses.
 *
 * Every bench binary reproduces one table or claim from the paper's
 * evaluation (§6), printing measured values next to the published
 * ones. Absolute times differ (our substrate is a simulator, not a
 * P100 testbed); the comparisons target the paper's *shape*: who wins,
 * by roughly what factor, and where the crossovers fall.
 */
#pragma once

#include <map>
#include <string>

#include "baselines/cudnn.h"
#include "baselines/xla.h"
#include "core/astra.h"
#include "models/models.h"
#include "obs/export.h"
#include "support/table.h"

namespace astra::bench {

/**
 * Observability hookup shared by every bench binary: consumes a
 * "--trace-out FILE" pair from argv (so later flag parsers never see
 * it), falling back to the ASTRA_TRACE environment variable. When
 * either is present, span/counter collection is enabled and a merged
 * Chrome trace is written to the file at process exit (obs::flush via
 * atexit).
 */
void init_observability(int* argc, char** argv);

/** Paper-like hyper-parameters for one model at one batch size. */
ModelConfig paper_config(ModelKind kind, int64_t batch,
                         bool embedding = true);

/** Device + scheduler settings shared by all benches. */
struct Env
{
    GpuConfig gpu;
    SchedulerOptions sched;

    Env()
    {
        gpu.execute_kernels = false;  // timing-only sweeps
        sched.super_epoch_ns = 400000.0;
        // Every bench constructs an Env, so ASTRA_TRACE alone is
        // enough to trace any table/ablation run.
        obs::init_from_env();
    }
};

/** One Astra optimization outcome. */
struct AstraOutcome
{
    double ns = 0.0;
    int64_t configs = 0;

    // What-if accounting (zeros when the engine is off).
    int64_t whatif_evals = 0;
    int64_t predictor_pruned = 0;
    int64_t measured_configs = 0;

    /** Canonical text of the winning config (config_to_string). */
    std::string config_text;
};

/** Native-framework mini-batch time for a model. */
double native_ns(const BuiltModel& model, const Env& env);

/**
 * Run the full online exploration under a feature preset. `whatif`
 * arms the three-tier decision path (off by default); `wirer_threads`
 * fans strategies out across host threads; `plan_store` names a plan
 * store directory (empty = no store).
 */
AstraOutcome astra_ns(const BuiltModel& model, const AstraFeatures& f,
                      const Env& env, const WhatIfOptions& whatif = {},
                      int wirer_threads = 1,
                      const std::string& plan_store = {});

/** cuDNN-path mini-batch time (model must carry cudnn_layers). */
double cudnn_ns(const BuiltModel& model, const Env& env);

/** XLA-path mini-batch time. */
double xla_ns(const BuiltModel& model, const Env& env);

/** The paper's batch-size sweep. */
inline const int64_t kBatches[] = {8, 16, 32, 64, 128, 256};

/**
 * Print one of the Tables 2-4 (speedup vs native PyTorch across
 * Astra feature presets) for the given model, next to paper values.
 *
 * @param paper per batch size: the paper's Astra_all speedup.
 */
void print_speedup_table(const std::string& title, ModelKind kind,
                         const std::map<int64_t, double>& paper,
                         const Env& env);

}  // namespace astra::bench
