/**
 * @file
 * Micro-benchmark: exploration wall-clock vs wirer threads.
 *
 * The parallel wirer fans allocation-strategy pipelines (and batched
 * repeat measurements) across host threads while guaranteeing results
 * bit-identical to a serial run. This harness measures that trade:
 * one full online exploration per thread count on a multi-strategy
 * stacked LSTM, reporting wall-clock, speedup over threads=1, the
 * plan-cache hit rate, and whether the result matched the serial run
 * exactly (configuration, best time, mini-batch count, convergence
 * minibatch totals). Identity failures fail the binary regardless of
 * speed.
 *
 * The speedup floor (>= 2x at 4 threads) is only asserted when the
 * host actually has 4 hardware threads; on smaller machines (and in
 * `--smoke` CI runs) the identity checks still execute.
 *
 * `--smoke` runs a tiny model at {1,2,4} threads for CI.
 */
#include <chrono>
#include <cstring>
#include <thread>

#include "bench/common.h"
#include "core/config_io.h"

using namespace astra;
using namespace astra::bench;

namespace {

double
now_ms()
{
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
                   .count()) /
           1000.0;
}

}  // namespace

int
main(int argc, char** argv)
{
    init_observability(&argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    Env env;
    ModelConfig cfg;
    cfg.layers = 2;
    if (smoke) {
        cfg.batch = 8;
        cfg.seq_len = 2;
        cfg.hidden = 64;
        cfg.embed_dim = 64;
        cfg.vocab = 200;
    } else {
        cfg.batch = 16;
        cfg.seq_len = 4;
        cfg.hidden = 256;
        cfg.embed_dim = 256;
        cfg.vocab = 1000;
    }
    const BuiltModel model = build_model(ModelKind::StackedLstm, cfg);

    AstraOptions base;
    base.gpu = env.gpu;
    base.sched = env.sched;
    base.features = features_all();
    // The noise-robust policy measures every trial k times; those
    // repeats batch across workers, so intra-strategy parallelism is
    // exercised too (not just the strategy fan-out).
    base.measurement = MeasurementPolicy::noise_robust();

    const std::vector<int> thread_counts =
        smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};

    struct Point
    {
        int threads = 0;
        double wall_ms = 0.0;
        WirerResult result;
    };
    std::vector<Point> points;
    size_t num_strategies = 0;
    for (int threads : thread_counts) {
        AstraOptions opts = base;
        opts.wirer_threads = threads;
        AstraSession session(model.graph(), opts);
        num_strategies = session.space().strategies.size();
        Point p;
        p.threads = threads;
        const double t0 = now_ms();
        p.result = session.optimize();
        p.wall_ms = now_ms() - t0;
        points.push_back(std::move(p));
    }

    const Point& serial = points.front();
    auto identical = [&](const WirerResult& r) {
        if (config_to_string(r.best_config) !=
                config_to_string(serial.result.best_config) ||
            r.best_ns != serial.result.best_ns ||
            r.minibatches != serial.result.minibatches ||
            r.convergence.epochs.size() !=
                serial.result.convergence.epochs.size())
            return false;
        for (size_t i = 0; i < r.convergence.epochs.size(); ++i)
            if (r.convergence.epochs[i].minibatches_total !=
                serial.result.convergence.epochs[i].minibatches_total)
                return false;
        return true;
    };

    const unsigned hw = std::thread::hardware_concurrency();
    TextTable table(
        "Wirer exploration scaling, stacked LSTM (hidden " +
        std::to_string(cfg.hidden) + "), " +
        std::to_string(num_strategies) + " allocation strategies, " +
        std::to_string(hw) + " hardware threads");
    table.set_header({"threads", "wall ms", "speedup", "explored",
                      "cache hit rate", "identical to serial"});

    bool all_identical = true;
    double speedup_at_4 = 0.0;
    for (const Point& p : points) {
        const bool same = identical(p.result);
        all_identical = all_identical && same;
        const double speedup = serial.wall_ms / p.wall_ms;
        if (p.threads == 4)
            speedup_at_4 = speedup;
        table.add_row(
            {std::to_string(p.threads), TextTable::fmt(p.wall_ms, 1),
             TextTable::fmt(speedup, 2),
             std::to_string(p.result.minibatches),
             TextTable::fmt(
                 p.result.convergence.plan_cache_hit_rate() * 100.0, 1) +
                 "%",
             same ? "yes" : "NO"});
    }
    table.print();

    // A 2x floor at 4 threads is only meaningful with >= 4 hardware
    // threads and >= 4 strategies to fan out (plus batched repeats).
    const bool can_scale = !smoke && hw >= 4 && num_strategies >= 4 &&
                           speedup_at_4 > 0.0;
    bool scaling_ok = true;
    if (can_scale) {
        scaling_ok = speedup_at_4 >= 2.0;
        std::cout << "  speedup at 4 threads: "
                  << TextTable::fmt(speedup_at_4, 2)
                  << "x (floor 2.00x): " << (scaling_ok ? "ok" : "FAIL")
                  << "\n";
    } else {
        std::cout << "  speedup floor skipped (smoke, < 4 hardware "
                     "threads, or < 4 strategies)\n";
    }
    std::cout << "  results bit-identical across thread counts: "
              << (all_identical ? "yes" : "NO") << "\n";
    return all_identical && scaling_ok ? 0 : 1;
}
