/**
 * @file
 * Fault-injection machinery must be free when no faults fire: the
 * dispatcher's transaction loop, the wirer's per-dispatch fault salts
 * and the injector draws all sit on the hot measurement path, so an
 * *armed* plan whose specs can never fire (p=0) must (a) produce a
 * bit-identical WirerResult to a fault-free run — the injector is a
 * pure hash, timing-invisible unless a fault actually fires — and
 * (b) cost <= 1% wall-clock overhead on the full online exploration.
 *
 * Usage: micro_fault_overhead [--smoke]
 *   --smoke: smaller model + fewer repetitions, and a relaxed (10%)
 *   wall-clock bound for noisy shared CI runners. The bit-identity
 *   check is strict in both modes.
 */
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/common.h"
#include "core/config_io.h"

using namespace astra;
using namespace astra::bench;

namespace {

struct Outcome
{
    std::string config;
    double best_ns = 0.0;
    int64_t minibatches = 0;
    double wall_s = 0.0;
};

Outcome
run_once(const BuiltModel& model, const Env& env, const FaultPlan& plan)
{
    AstraOptions opts;
    opts.gpu = env.gpu;
    opts.gpu.faults = plan;
    opts.sched = env.sched;
    AstraSession session(model.graph(), opts);
    const auto t0 = std::chrono::steady_clock::now();
    const WirerResult r = session.optimize();
    const auto t1 = std::chrono::steady_clock::now();
    Outcome out;
    out.config = config_to_string(r.best_config);
    out.best_ns = r.best_ns;
    out.minibatches = r.minibatches;
    out.wall_s = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    init_observability(&argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    ModelConfig mc;
    mc.batch = 8;
    mc.seq_len = smoke ? 4 : 10;
    mc.hidden = smoke ? 64 : 128;
    mc.embed_dim = mc.hidden;
    const BuiltModel model = build_model(ModelKind::SubLstm, mc);
    Env env;

    // Armed-but-silent plan: every draw happens, nothing ever fires.
    FaultPlan armed;
    if (!FaultPlan::parse("seed=1;kernel:p=0;straggler:p=0,x=4;comm:p=0",
                          &armed)) {
        std::fprintf(stderr, "FAIL: armed plan did not parse\n");
        return 1;
    }

    const int reps = smoke ? 2 : 5;
    const int rounds = smoke ? 1 : 3;
    const double bound = smoke ? 10.0 : 1.0;  // percent

    double overhead_pct = 0.0;
    bool identical = true;
    for (int round = 0; round < rounds; ++round) {
        double base_s = 1e300;
        double armed_s = 1e300;
        Outcome base;
        Outcome injected;
        for (int i = 0; i < reps; ++i) {
            base = run_once(model, env, FaultPlan{});
            injected = run_once(model, env, armed);
            base_s = std::min(base_s, base.wall_s);
            armed_s = std::min(armed_s, injected.wall_s);
        }
        identical = base.config == injected.config &&
                    base.best_ns == injected.best_ns &&
                    base.minibatches == injected.minibatches;
        overhead_pct = 100.0 * (armed_s - base_s) / base_s;
        std::printf("round %d: base %.3fs armed %.3fs overhead %+.2f%% "
                    "(%s, %lld mini-batches)\n",
                    round, base_s, armed_s, overhead_pct,
                    identical ? "bit-identical" : "RESULTS DIVERGE",
                    static_cast<long long>(base.minibatches));
        if (!identical)
            break;
        // Wall-clock is noisy: accept the bound from any round.
        if (overhead_pct <= bound)
            break;
    }

    if (!identical) {
        std::fprintf(stderr, "FAIL: armed zero-probability plan changed "
                             "the exploration result\n");
        return 1;
    }
    if (overhead_pct > bound) {
        std::fprintf(stderr,
                     "FAIL: zero-fault overhead %.2f%% exceeds %.1f%%\n",
                     overhead_pct, bound);
        return 1;
    }
    std::printf("OK: zero-fault overhead %+.2f%% (bound %.1f%%), "
                "results bit-identical\n",
                overhead_pct, bound);
    return 0;
}
