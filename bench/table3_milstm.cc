/**
 * @file
 * Reproduces paper Table 3: MI-LSTM (Hutter) speedup over native
 * PyTorch. Paper shape: up to 2.43x at batch 8, decaying to ~1.28x at
 * 256.
 */
#include "bench/common.h"

int
main()
{
    astra::bench::Env env;
    astra::bench::print_speedup_table(
        "Table 3: MI-LSTM, factor speedup vs native (paper Astra_all: "
        "2.43 / 2.13 / 1.85 / 1.46 / 1.23 / 1.28)",
        astra::ModelKind::MiLstm,
        {{8, 2.43}, {16, 2.13}, {32, 1.85}, {64, 1.46}, {128, 1.23},
         {256, 1.28}},
        env);
    return 0;
}
