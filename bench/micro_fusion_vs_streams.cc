/**
 * @file
 * Reproduces the §3.2 micro-claim: "performing two GEMMs of size
 * (256x1024)x(1024x1024) in parallel on two GPU streams takes 172 us,
 * while the fused version, i.e. a single (512x1024)x(1024x1024) GEMM
 * runs *slower* at 211 us" — bigger fusion groups are not always
 * better, which is why fusion granularity must be measured, not
 * assumed.
 */
#include "bench/common.h"
#include "runtime/dispatcher.h"

using namespace astra;

namespace {

double
two_streams_ns()
{
    GraphBuilder b;
    const NodeId x1 = b.input({256, 1024});
    const NodeId x2 = b.input({256, 1024});
    const NodeId w = b.param({1024, 1024});
    const NodeId m1 = b.matmul(x1, w);
    const NodeId m2 = b.matmul(x2, w);
    SimMemory mem(graph_tensor_bytes(b.graph()) + (1 << 20));
    TensorMap tmap(b.graph(), mem);
    ExecutionPlan plan;
    plan.num_streams = 2;
    PlanStep p1;
    p1.nodes = {m1};
    p1.stream = 0;
    PlanStep p2;
    p2.nodes = {m2};
    p2.stream = 1;
    plan.steps = {p1, p2};
    GpuConfig cfg;
    cfg.execute_kernels = false;
    return dispatch_plan(plan, b.graph(), tmap, cfg).total_ns;
}

double
fused_ns()
{
    GraphBuilder b;
    const NodeId x = b.input({512, 1024});
    const NodeId w = b.param({1024, 1024});
    const NodeId mm = b.matmul(x, w);
    SimMemory mem(graph_tensor_bytes(b.graph()) + (1 << 20));
    TensorMap tmap(b.graph(), mem);
    ExecutionPlan plan;
    PlanStep step;
    step.nodes = {mm};
    plan.steps = {step};
    GpuConfig cfg;
    cfg.execute_kernels = false;
    return dispatch_plan(plan, b.graph(), tmap, cfg).total_ns;
}

}  // namespace

int
main()
{
    const double streams = two_streams_ns();
    const double fused = fused_ns();
    TextTable table(
        "Micro (paper §3.2): two (256x1024)x(1024x1024) GEMMs on two "
        "streams vs one fused (512x1024)x(1024x1024) GEMM (paper, "
        "P100/CUDA 9.2: 172 us vs 211 us — fused is SLOWER)");
    table.set_header({"configuration", "time us"});
    table.add_row({"2 GEMMs on 2 streams", TextTable::fmt(streams / 1e3,
                                                          1)});
    table.add_row({"1 fused GEMM", TextTable::fmt(fused / 1e3, 1)});
    table.add_row({"fused slower?", fused > streams ? "yes" : "no"});
    table.print();
    return 0;
}
