/**
 * @file
 * Reproduces paper Table 5: PTB Stacked LSTM ("large", hidden 1500)
 * relative to the cuDNN-accelerated implementation. Paper shape:
 * native PyT well below cuDNN everywhere (0.43-0.86); Astra reaches
 * and at small/mid batch exceeds cuDNN (1.09 / 1.32 / 1.64 at 8/16/32,
 * ~1.0 at large batch), because hidden=1500 is hostile to cuDNN's
 * internal tiling while Astra adapts around it.
 */
#include "bench/common.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    Env env;
    TextTable table(
        "Table 5: PTB Stacked LSTM (hidden 1500), performance relative "
        "to cuDNN (paper Astra_all: 1.09 / 1.32 / 1.64 / 1.05 / 1.00 / "
        "1.02)");
    table.set_header({"Mini-batch", "PyT", "cuDNN", "Astra_F",
                      "Astra_FK", "Astra_all", "paper Astra_all"});
    const std::map<int64_t, double> paper = {
        {8, 1.09}, {16, 1.32}, {32, 1.64},
        {64, 1.05}, {128, 1.0}, {256, 1.02}};
    for (int64_t batch : kBatches) {
        const BuiltModel model = build_model(
            ModelKind::StackedLstm,
            paper_config(ModelKind::StackedLstm, batch));
        const double cudnn = cudnn_ns(model, env);
        const double native = native_ns(model, env);
        const double f = astra_ns(model, features_f(), env).ns;
        const double fk = astra_ns(model, features_fk(), env).ns;
        const double all = astra_ns(model, features_all(), env).ns;
        table.add_row(std::to_string(batch),
                      {cudnn / native, 1.0, cudnn / f, cudnn / fk,
                       cudnn / all, paper.at(batch)});
        std::cerr << "  [batch " << batch << " done]\n";
    }
    table.print();
    return 0;
}
