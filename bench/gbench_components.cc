/**
 * @file
 * Google-benchmark microbenchmarks of the infrastructure itself: how
 * fast the simulator, enumerator and scheduler run on the host. These
 * bound the real-world cost of Astra's online exploration machinery
 * (the compiler/runtime overhead, not the simulated GPU time).
 */
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "core/scheduler.h"
#include "runtime/dispatcher.h"
#include "runtime/native.h"

using namespace astra;
using namespace astra::bench;

namespace {

const BuiltModel&
model()
{
    static BuiltModel m = build_model(
        ModelKind::SubLstm, paper_config(ModelKind::SubLstm, 16));
    return m;
}

void
BM_SimulateNativeMinibatch(benchmark::State& state)
{
    const BuiltModel& m = model();
    SimMemory mem(graph_tensor_bytes(m.graph()) + (1 << 20));
    TensorMap tmap(m.graph(), mem);
    GpuConfig cfg;
    cfg.execute_kernels = false;
    const ExecutionPlan plan = native_plan(m.graph());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dispatch_plan(plan, m.graph(), tmap, cfg).total_ns);
}
BENCHMARK(BM_SimulateNativeMinibatch)->Unit(benchmark::kMillisecond);

void
BM_EnumerateSearchSpace(benchmark::State& state)
{
    const BuiltModel& m = model();
    for (auto _ : state) {
        const SearchSpace space = enumerate_search_space(m.graph());
        benchmark::DoNotOptimize(space.groups.size());
    }
}
BENCHMARK(BM_EnumerateSearchSpace)->Unit(benchmark::kMillisecond);

void
BM_BuildStreamedPlan(benchmark::State& state)
{
    const BuiltModel& m = model();
    static const SearchSpace space = enumerate_search_space(m.graph());
    const Scheduler scheduler(m.graph(), space);
    ScheduleConfig cfg;
    cfg.group_chunk.assign(space.groups.size(), 1);
    cfg.group_lib.assign(space.groups.size(), GemmLib::Cublas);
    for (const FusionGroup& g : space.groups)
        cfg.group_chunk[static_cast<size_t>(g.id)] =
            g.chunk_options.back();
    cfg.use_streams = true;
    for (auto _ : state) {
        const ExecutionPlan plan = scheduler.build(cfg);
        benchmark::DoNotOptimize(plan.steps.size());
    }
}
BENCHMARK(BM_BuildStreamedPlan)->Unit(benchmark::kMillisecond);

void
BM_DependencyOracle(benchmark::State& state)
{
    const BuiltModel& m = model();
    for (auto _ : state) {
        const DependencyOracle oracle(m.graph());
        benchmark::DoNotOptimize(
            oracle.depends_on(m.graph().size() - 1, 0));
    }
}
BENCHMARK(BM_DependencyOracle)->Unit(benchmark::kMillisecond);

}  // namespace

int
main(int argc, char** argv)
{
    // --trace-out / ASTRA_TRACE capture the whole benchmark run on the
    // observability timeline; with neither, tracing compiles down to a
    // relaxed atomic load per probe (which is what these benches must
    // show: no regression vs the untraced seed).
    bench::init_observability(&argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
