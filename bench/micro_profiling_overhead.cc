/**
 * @file
 * Reproduces the §6.4 claim: fine-grained cudaEvent profiling costs
 * < 0.5% of mini-batch time for all models, so it can be always on.
 * Measures each model's mini-batch with zero instrumentation and with
 * every fusion group profiled (the densest instrumentation the custom
 * wirer ever applies in one mini-batch). Each event now carries two
 * real costs in the simulator — a host/front-end enqueue charge per
 * cudaEventRecord call (GpuConfig::event_enqueue_ns) on top of the
 * device-side timestamp write (event_record_ns) — so the overhead
 * column reflects both, and staying under the paper's bound depends on
 * the wirer's profiling discipline (profile only unfrozen groups, stop
 * once decisions are final).
 */
#include "bench/common.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    Env env;
    TextTable table(
        "Micro (paper §6.4): always-on profiling overhead per model "
        "(paper: < 0.5% for all models)");
    table.set_header({"Model", "plain ms", "profiled ms", "overhead %"});
    const ModelKind kinds[] = {ModelKind::Scrnn, ModelKind::MiLstm,
                               ModelKind::SubLstm,
                               ModelKind::StackedLstm, ModelKind::Gnmt};
    for (ModelKind kind : kinds) {
        const BuiltModel model =
            build_model(kind, paper_config(kind, 16));
        AstraOptions opts;
        opts.gpu = env.gpu;
        opts.sched = env.sched;
        AstraSession session(model.graph(), opts);
        ScheduleConfig cfg;
        cfg.group_chunk.assign(session.space().groups.size(), 1);
        cfg.group_lib.assign(session.space().groups.size(),
                             GemmLib::Cublas);
        const double plain = session.run(cfg).total_ns;
        ScheduleConfig profiled = cfg;
        for (const FusionGroup& g : session.space().groups)
            profiled.group_keys[g.id] = "p|" + g.key;
        const double instrumented = session.run(profiled).total_ns;
        table.add_row(model.name,
                      {plain / 1e6, instrumented / 1e6,
                       100.0 * (instrumented - plain) / plain});
    }
    table.print();
    return 0;
}
