/**
 * @file
 * Reproduces paper Table 7: size of the exploration state space after
 * pruning, in configurations (= exploration mini-batches), for
 * Astra_FKS and Astra_all. Paper shape: a few hundred to a few
 * thousand per model; GNMT stays in the same range as much smaller
 * models thanks to barrier exploration (parallel super-epochs), and
 * models without allocation conflicts have identical FKS/all counts.
 */
#include "bench/common.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    Env env;
    TextTable table(
        "Table 7: exploration state space post-pruning, in configs "
        "(paper FKS/all: SCRNN 303/1672, StackedLSTM 1219/1219, "
        "MI-LSTM 1191/1191, SubLSTM 3207/5439, GNMT 2280/9303; "
        "Astra_whatif = Astra_all mini-batches with the what-if "
        "engine masking dominated options, same final config)");
    table.set_header({"Model", "Astra_FKS", "Astra_all", "Astra_whatif",
                      "groups", "strategies"});
    const ModelKind kinds[] = {ModelKind::Scrnn, ModelKind::StackedLstm,
                               ModelKind::MiLstm, ModelKind::SubLstm,
                               ModelKind::Gnmt};
    for (ModelKind kind : kinds) {
        const BuiltModel model =
            build_model(kind, paper_config(kind, 16));
        const AstraOutcome fks =
            astra_ns(model, features_fks(), env);
        const AstraOutcome all =
            astra_ns(model, features_all(), env);
        WhatIfOptions wi;
        wi.enabled = true;
        const AstraOutcome whatif =
            astra_ns(model, features_all(), env, wi);
        const SearchSpace space =
            enumerate_search_space(model.graph());
        table.add_row({model.name, std::to_string(fks.configs),
                       std::to_string(all.configs),
                       std::to_string(whatif.configs),
                       std::to_string(space.groups.size()),
                       std::to_string(space.strategies.size())});
        if (whatif.config_text != all.config_text)
            std::cerr << "  [" << model.name
                      << " WARNING: whatif config differs from "
                         "exhaustive]\n";
        std::cerr << "  [" << model.name << " done]\n";
    }
    table.print();
    return 0;
}
