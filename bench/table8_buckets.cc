/**
 * @file
 * Reproduces paper Table 8: bucketed adaptation vs dynamic graphs in
 * native PyTorch (§5.5 / §6.5). Inputs have variable sentence lengths
 * (PTB-like distribution); Astra buckets lengths into 5 buckets
 * (paper: 13, 18, 24, 30, 83), explores each independently, and maps
 * each mini-batch to the smallest covering bucket — paying a little
 * padded compute but keeping all its optimizations. Native executes
 * the exact-length graph per mini-batch with no adaptation.
 *
 * Paper shape: 1.4-2.5x despite the padding.
 */
#include "bench/common.h"

#include "core/bucketed.h"
#include "models/data.h"
#include "runtime/dispatcher.h"
#include "runtime/native.h"

using namespace astra;
using namespace astra::bench;

namespace {

/** Average native per-mini-batch time over the length sample. */
double
dynamic_native_ns(ModelKind kind, int64_t batch,
                  const std::vector<int>& lengths, const Env& env)
{
    // A dynamic-graph framework rebuilds and runs the exact-length
    // graph per mini-batch; cache per distinct length.
    std::map<int, double> per_len;
    double total = 0.0;
    for (int len : lengths) {
        auto it = per_len.find(len);
        if (it == per_len.end()) {
            ModelConfig cfg = paper_config(kind, batch);
            cfg.seq_len = len;
            const BuiltModel model = build_model(kind, cfg);
            it = per_len.emplace(len, native_ns(model, env)).first;
        }
        total += it->second;
    }
    return total / static_cast<double>(lengths.size());
}

double
bucketed_astra_ns(ModelKind kind, int64_t batch,
                  const std::vector<int>& lengths,
                  const std::vector<int>& buckets, const Env& env)
{
    AstraOptions opts;
    opts.gpu = env.gpu;
    opts.sched = env.sched;
    BucketedAstra bucketed(
        buckets,
        [&](GraphBuilder& b, int length) {
            ModelConfig cfg = paper_config(kind, batch);
            cfg.seq_len = length;
            BuiltModel m = build_model(kind, cfg);
            b = std::move(*m.builder);
        },
        opts);
    bucketed.optimize();
    double total = 0.0;
    for (int len : lengths)
        total += bucketed.step_ns(len);
    return total / static_cast<double>(lengths.size());
}

}  // namespace

int
main()
{
    Env env;
    // Scaled-down PTB length buckets (graphs unroll per step; the
    // simulated run uses a 1:4 scale of the paper's 13/18/24/30/83).
    const std::vector<int> buckets = {4, 5, 7, 9, 16};
    Rng rng(2026);
    std::vector<int> lengths;
    for (int i = 0; i < 40; ++i)
        lengths.push_back(
            std::max(2, sample_ptb_length(rng) / 4));

    TextTable table(
        "Table 8: speedup of Astra+bucketing over native dynamic "
        "graphs (paper: SCRNN 1.61/1.43, subLSTM 2.47/2.13, "
        "StackedLSTM 2.44/2.22 at batch 16/32)");
    table.set_header({"Model", "Dynamic Graph", "Astra + bucketing",
                      "paper"});
    struct Row
    {
        ModelKind kind;
        int64_t batch;
        double paper;
    };
    const Row rows[] = {
        {ModelKind::Scrnn, 16, 1.61},   {ModelKind::Scrnn, 32, 1.43},
        {ModelKind::SubLstm, 16, 2.47}, {ModelKind::SubLstm, 32, 2.13},
        {ModelKind::StackedLstm, 16, 2.44},
        {ModelKind::StackedLstm, 32, 2.22},
    };
    for (const Row& r : rows) {
        Env row_env = env;
        const double native =
            dynamic_native_ns(r.kind, r.batch, lengths, row_env);
        const double astra =
            bucketed_astra_ns(r.kind, r.batch, lengths, buckets,
                              row_env);
        table.add_row(model_name(r.kind) + "-" + std::to_string(r.batch),
                      {1.0, native / astra, r.paper});
        std::cerr << "  [" << model_name(r.kind) << "-" << r.batch
                  << " done]\n";
    }
    table.print();
    return 0;
}
