/**
 * @file
 * Micro-benchmark: what the plan/profile knowledge base buys and what
 * it costs.
 *
 * The value side is the fleet contract: a second sighting of a wired
 * workload must be answered from the store's L1 rung for one measured
 * verification mini-batch, >= 10x fewer than the cold exploration, and
 * with a bit-identical configuration. The cost side is the store
 * machinery itself: entry serialization, checksummed parsing, and the
 * full ladder lookup against a populated directory — all host-side
 * work that sits on the job-launch path, so it is measured in
 * microseconds next to the mini-batches it replaces.
 *
 * Exits non-zero when the warm sighting misses L1, spends more than
 * one mini-batch, diverges from the cold configuration, or falls short
 * of the 10x reduction. `--smoke` shrinks the model for CI.
 */
#include <chrono>
#include <cstring>
#include <filesystem>

#include "bench/common.h"
#include "core/config_io.h"
#include "core/plan_store.h"

using namespace astra;
using namespace astra::bench;

namespace {

double
now_us()
{
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
                   .count()) /
           1000.0;
}

}  // namespace

int
main(int argc, char** argv)
{
    init_observability(&argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "astra_micro_plan_store";
    fs::remove_all(dir);
    fs::create_directories(dir);

    Env env;
    env.gpu.autoboost = false;  // bit-identical reuse needs base clock
    const BuiltModel model = build_model(
        ModelKind::Scrnn,
        smoke ? ModelConfig{.batch = 8, .seq_len = 4, .hidden = 32,
                            .embed_dim = 32, .vocab = 50}
              : paper_config(ModelKind::Scrnn, 32));
    AstraOptions opts;
    opts.gpu = env.gpu;
    opts.sched = env.sched;
    opts.plan_store = dir.string();

    // Cold sighting: full exploration, write-through to the store.
    AstraSession cold(model.graph(), opts);
    const double t0 = now_us();
    const WirerResult first = cold.optimize();
    const double cold_us = now_us() - t0;

    // Warm sighting: a fresh session (cold in-process caches), the
    // store is the only carried-over state.
    AstraSession warm(model.graph(), opts);
    const double t1 = now_us();
    const WirerResult second = warm.optimize();
    const double warm_us = now_us() - t1;

    TextTable table("Plan store: cold vs warm sighting");
    table.set_header({"sighting", "tier", "mini-batches", "wall us"});
    table.add_row({"cold", first.convergence.store_tier,
                   std::to_string(first.minibatches),
                   TextTable::fmt(cold_us, 0)});
    table.add_row({"warm", second.convergence.store_tier,
                   std::to_string(second.minibatches),
                   TextTable::fmt(warm_us, 0)});
    table.print();

    // Store-machinery costs, amortized over repetitions.
    const PlanStoreKey key = make_plan_store_key(model.graph(), opts.gpu);
    PlanStoreEntry entry;
    entry.key = key;
    entry.config = first.best_config;
    entry.best_ns = first.best_ns;
    entry.minibatches = first.minibatches;
    entry.termination = "complete";
    entry.profile = first.index;
    const int reps = smoke ? 50 : 1000;

    double t = now_us();
    std::string text;
    for (int i = 0; i < reps; ++i)
        text = PlanStore::entry_to_string(entry);
    const double ser_us = (now_us() - t) / reps;

    t = now_us();
    PlanStoreEntry parsed;
    for (int i = 0; i < reps; ++i)
        PlanStore::entry_from_string(text, &parsed);
    const double parse_us = (now_us() - t) / reps;

    PlanStore store(dir);
    t = now_us();
    for (int i = 0; i < reps; ++i)
        store.lookup(key);
    const double lookup_us = (now_us() - t) / reps;

    TextTable costs("Store machinery (host-side, per call)");
    costs.set_header({"operation", "us", "entry bytes"});
    costs.add_row({"entry_to_string", TextTable::fmt(ser_us, 1),
                   std::to_string(text.size())});
    costs.add_row({"entry_from_string (checksummed)",
                   TextTable::fmt(parse_us, 1), ""});
    costs.add_row({"ladder lookup (L1 hit)",
                   TextTable::fmt(lookup_us, 1), ""});
    costs.print();

    fs::remove_all(dir);

    if (second.convergence.store_tier != "l1")
        fatal("warm sighting answered from ",
              second.convergence.store_tier, ", expected l1");
    if (second.minibatches != 1)
        fatal("warm sighting spent ", second.minibatches,
              " mini-batches, expected 1");
    if (first.minibatches < 10 * second.minibatches)
        fatal("reduction below 10x: ", first.minibatches, " cold vs ",
              second.minibatches, " warm");
    if (config_to_string(first.best_config) !=
        config_to_string(second.best_config))
        fatal("warm configuration is not bit-identical to cold");
    std::cout << "\nOK: warm sighting L1, 1 mini-batch ("
              << first.minibatches << " cold), config bit-identical\n";
    return 0;
}
