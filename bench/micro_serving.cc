/**
 * @file
 * Gates the online serving loop (src/serve) end to end:
 *
 *  1. Calm traffic: p99 latency under the SLO, zero requests dropped
 *     or missed, on Poisson arrivals with a diurnal burst.
 *  2. Armed-but-silent watcher: arming the drift watcher on a calm
 *     device must cost <= 1% p99 versus a no-watcher baseline (it
 *     observes completed batches, it never adds simulated work).
 *  3. Forced drift: a mid-trace thermal-throttle step (0.7x clocks)
 *     must be detected from window statistics within a bounded
 *     request budget, trigger an off-path re-wire warm-started from
 *     the plan store, and hot-swap the new wired blob with ZERO
 *     dropped requests — and the installed configuration must be
 *     FNV-bit-identical to an offline re-wire on the same throttled
 *     device (the refreshed store entry answers both).
 *
 * Exits non-zero on any gate failure so CI runs it as a check
 * (--smoke shortens the traffic).
 */
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"
#include "serve/server.h"

using namespace astra;
using namespace astra::bench;

namespace {

/** Simulated-seconds scale of the generated traces (batch times). */
double g_duration_batches = 400.0;

/** Bound on requests served between drift onset and detection. */
constexpr int64_t kDetectBudget = 64;

LengthGraphFn
scrnn_builder()
{
    return [](GraphBuilder& b, int length) {
        ModelConfig cfg;
        cfg.batch = 4;
        cfg.seq_len = length;
        cfg.hidden = 32;
        cfg.embed_dim = 32;
        cfg.vocab = 50;
        BuiltModel m = build_model(ModelKind::Scrnn, cfg);
        b = std::move(*m.builder);
    };
}

serve::ServeOptions
base_options(const Env& env, const std::string& store)
{
    serve::ServeOptions so;
    so.bucket_lengths = {4, 6, 8};
    so.build = scrnn_builder();
    so.astra.gpu = env.gpu;
    so.astra.sched = env.sched;
    so.astra.features = features_fk();
    // The serving gates assert exact properties (bit-identical
    // configs, zero drops); pin out the environment's noise and fault
    // matrices like every other identity bench.
    so.astra.gpu.autoboost = false;
    so.astra.gpu.faults = FaultPlan();
    so.astra.plan_store = store;
    so.max_batch = 4;
    return so;
}

std::string
fresh_store(const char* name)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

serve::TrafficConfig
calibrated_traffic(const serve::BucketedServer& server, uint64_t seed)
{
    // Self-calibrate to the measured plans so the gates track the
    // timing model instead of hard-coding nanoseconds: a base load of
    // ~35% of the largest bucket's batch capacity (the 2x burst then
    // peaks at ~70%, loaded but stable), SLO at 30 batches.
    const int last =
        static_cast<int>(server.router().bucket_lengths().size()) - 1;
    const double batch_ns = server.plan(last).baseline_ns;
    serve::TrafficConfig cfg;
    cfg.duration_ns = g_duration_batches * batch_ns;
    cfg.base_rps = 0.35 * 4.0 * 1e9 / batch_ns;
    cfg.slo_ns = 30.0 * batch_ns;
    cfg.length_div = 10;  // PTB lengths scaled into the {4,6,8} buckets
    cfg.min_length = 2;
    cfg.seed = seed;
    // One diurnal burst: 2x traffic over the middle fifth.
    cfg.bursts.push_back(
        {0.4 * cfg.duration_ns, 0.6 * cfg.duration_ns, 2.0});
    return cfg;
}

bool
gate(bool ok, const char* what)
{
    if (!ok)
        std::printf("FAIL: %s\n", what);
    return ok;
}

}  // namespace

int
main(int argc, char** argv)
{
    init_observability(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            g_duration_batches = 200.0;

    Env env;
    bool ok = true;

    // ---- calm traffic, watcher armed ---------------------------------
    serve::ServeOptions armed_opts =
        base_options(env, fresh_store("astra_bench_serve_calm"));
    serve::BucketedServer armed(armed_opts);
    const int64_t explored = armed.optimize();
    const serve::TrafficConfig tcfg = calibrated_traffic(armed, 23);
    const auto traffic = serve::generate_traffic(tcfg);
    const serve::ServeReport calm = armed.serve(traffic);
    std::printf("%s\n",
                calm.to_text("calm traffic (watcher armed)").c_str());

    // ---- same trace, watcher disarmed --------------------------------
    serve::ServeOptions disarmed_opts =
        base_options(env, fresh_store("astra_bench_serve_off"));
    disarmed_opts.watcher.enabled = false;
    serve::BucketedServer disarmed(disarmed_opts);
    disarmed.optimize();
    const serve::ServeReport baseline = disarmed.serve(traffic);

    // ---- forced drift mid-trace --------------------------------------
    // Give the drifting run headroom: 0.7x clocks stretch service by
    // ~1.43x, so the queue deepens until the refreshed plans land.
    serve::TrafficConfig dcfg = calibrated_traffic(armed, 23);
    dcfg.slo_ns *= 2.0;
    const double drift_at = 0.5 * dcfg.duration_ns;
    serve::ServeOptions drift_opts =
        base_options(env, fresh_store("astra_bench_serve_drift"));
    drift_opts.record_batches = true;
    drift_opts.watcher.min_window = 4;
    drift_opts.clock_schedule.push_back({drift_at, 0.7});
    serve::BucketedServer drifting(drift_opts);
    drifting.optimize();
    const auto dtraffic = serve::generate_traffic(dcfg);
    const serve::ServeReport drift = drifting.serve(dtraffic);
    std::printf("%s\n", drift.to_text("forced drift (0.7x clocks)")
                            .c_str());

    // ---- summary table -----------------------------------------------
    TextTable table(
        "Micro: online serving over bucketed wired plans "
        "(gates: p99 <= SLO calm, watcher <= 1% p99, zero drops + "
        "bounded detection + FNV identity under drift)");
    table.set_header({"Scenario", "p99 ms", "goodput rps", "drops",
                      "swaps", "detect budget"});
    const auto row = [&](const char* name,
                         const serve::ServeReport& r) {
        table.add_row(name,
                      {r.p99_ns / 1e6, r.goodput_rps,
                       static_cast<double>(r.dropped),
                       static_cast<double>(r.swaps),
                       static_cast<double>(r.detection_request_budget)});
    };
    row("calm / watcher armed", calm);
    row("calm / watcher off", baseline);
    row("drift 0.7x / live re-wire", drift);
    table.print();
    std::printf("exploration mini-batches (calm server): %lld\n",
                static_cast<long long>(explored));

    // ---- gates -------------------------------------------------------
    ok &= gate(calm.served == calm.offered && calm.dropped == 0,
               "calm traffic dropped requests");
    ok &= gate(calm.deadline_misses == 0,
               "calm traffic missed deadlines");
    ok &= gate(calm.p99_ns <= tcfg.slo_ns, "calm p99 above the SLO");
    ok &= gate(calm.drift_detections == 0 && calm.swaps == 0,
               "watcher fired on a calm device");

    ok &= gate(baseline.p99_ns > 0.0 &&
                   calm.p99_ns <= 1.01 * baseline.p99_ns,
               "armed watcher cost more than 1% p99");

    ok &= gate(drift.dropped == 0,
               "requests dropped across the hot swap");
    ok &= gate(drift.drift_detections >= 1 && drift.rewires >= 1 &&
                   drift.swaps >= 1,
               "drift never detected / no re-wire installed");
    ok &= gate(drift.detection_request_budget >= 0 &&
                   drift.detection_request_budget <= kDetectBudget,
               "drift detection exceeded the request budget");

    // FNV bit-identity: the installed plan of every swapped bucket
    // must match an offline re-wire on the same throttled device.
    GpuConfig throttled = drift_opts.astra.gpu;
    throttled.forced_clock_multiplier = 0.7;
    bool any_swapped = false;
    for (int b = 0; b < drifting.router().num_buckets(); ++b) {
        const auto installed = drifting.plan(b);
        if (installed.epoch == 0)
            continue;
        any_swapped = true;
        const auto offline = drifting.rewire(b, throttled);
        ok &= gate(offline.config_fnv == installed.config_fnv,
                   "live re-wire config differs from offline re-wire");
    }
    ok &= gate(any_swapped, "no bucket was ever hot-swapped");

    // The swap must land between batches: epochs never regress and
    // batches never overlap.
    bool log_ok = !drift.batch_log.empty();
    for (size_t i = 1; i < drift.batch_log.size(); ++i) {
        log_ok &= drift.batch_log[i].start_ns >=
                  drift.batch_log[i - 1].end_ns;
    }
    ok &= gate(log_ok, "hot swap landed inside a mini-batch");

    return ok ? 0 : 1;
}
