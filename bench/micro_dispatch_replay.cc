/**
 * @file
 * Gates the compiled steady-state dispatch path (runtime/wired.h): for
 * every zoo model, replaying the wired binary must (a) reproduce the
 * generic dispatcher's simulated results bit-exactly — makespan,
 * clock multiplier, device counters and the full profile map — and
 * (b) cut the measured *wall-clock* host enqueue time
 * (DispatchResult::host_enqueue_ns) by at least 2x in aggregate. The
 * generic path re-resolves dependencies, hashes profile keys and
 * builds kernel descriptors on every mini-batch; the wired binary did
 * all of that once at lowering time, so steady state walks a
 * contiguous command array. Each model is exercised at its densest
 * steady-state configuration (max fusion chunks, every group and
 * epoch profiled, two streams) plus a plain single-stream config, and
 * one recompute-rewritten graph rides along. Exits non-zero on any
 * identity mismatch or if the aggregate speedup falls below 2x, so CI
 * can run it as a check (--smoke shortens the step count).
 */
#include <cstring>
#include <map>
#include <string>

#include "bench/common.h"
#include "autodiff/recompute.h"

using namespace astra;
using namespace astra::bench;

namespace {

/** Steps timed per row (after one untimed warm-up of each path). */
int g_steps = 20;

bool
identical(const DispatchResult& a, const DispatchResult& b)
{
    return a.total_ns == b.total_ns &&
           a.clock_multiplier == b.clock_multiplier &&
           a.stats.kernels_launched == b.stats.kernels_launched &&
           a.stats.events_recorded == b.stats.events_recorded &&
           a.stats.busy_sm_ns == b.stats.busy_sm_ns &&
           a.profile_ns == b.profile_ns;
}

struct RowTotals
{
    double generic_ns = 0.0;
    double replay_ns = 0.0;
    bool ok = true;
};

/**
 * Time g_steps mini-batches through the generic dispatcher and the
 * wired replay over the same graph/config, checking bit-identity of
 * every step pair.
 */
RowTotals
measure(const Graph& graph, const Env& env, const ScheduleConfig& cfg)
{
    AstraOptions opts;
    opts.gpu = env.gpu;
    opts.sched = env.sched;
    // Bit-identity is a base-clock, fault-free property: the generic
    // and replay transactions draw independent process-wide
    // autoboost/fault salts, which is exactly the nondeterminism this
    // comparison must exclude.
    opts.gpu.autoboost = false;
    opts.gpu.faults = FaultPlan();
    AstraSession generic(graph, opts);
    AstraOptions copts = opts;
    copts.compiled_dispatch = true;
    AstraSession compiled(graph, copts);

    // Warm both caches: the generic path builds its plan, the
    // compiled path lowers and verifies the wired binary. Steady
    // state is what the bench times.
    (void)generic.run(cfg);
    (void)compiled.run(cfg);

    RowTotals t;
    for (int i = 0; i < g_steps; ++i) {
        const DispatchResult a = generic.run(cfg);
        const DispatchResult b = compiled.run(cfg);
        t.generic_ns += a.host_enqueue_ns;
        t.replay_ns += b.host_enqueue_ns;
        if (!identical(a, b))
            t.ok = false;
    }
    return t;
}

/** Densest steady-state config: fused, two streams, fully profiled. */
ScheduleConfig
steady_config(const AstraSession& session)
{
    const SearchSpace& space = session.space();
    ScheduleConfig cfg;
    cfg.group_chunk.assign(space.groups.size(), 1);
    cfg.group_lib.assign(space.groups.size(), GemmLib::Cublas);
    for (const FusionGroup& g : space.groups) {
        cfg.group_chunk[static_cast<size_t>(g.id)] =
            g.chunk_options.back();
        cfg.group_keys[g.id] = "w|" + g.key;
    }
    cfg.use_streams = true;
    cfg.num_streams = 2;
    const StreamSpace ss = session.scheduler().stream_space(
        session.scheduler().build_units(cfg), 2);
    for (const EpochInfo& e : ss.epochs)
        cfg.epoch_keys[{e.super_epoch, e.level}] =
            "ep|" + std::to_string(e.super_epoch) + "." +
            std::to_string(e.level);
    return cfg;
}

ScheduleConfig
plain_config(const AstraSession& session)
{
    ScheduleConfig cfg;
    cfg.group_chunk.assign(session.space().groups.size(), 1);
    cfg.group_lib.assign(session.space().groups.size(),
                         GemmLib::Cublas);
    return cfg;
}

}  // namespace

int
main(int argc, char** argv)
{
    init_observability(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            g_steps = 4;

    Env env;
    TextTable table(
        "Micro: compiled steady-state dispatch (wired binary) vs "
        "generic per-step dispatch — host enqueue wall time "
        "(gate: bit-identical metrics, aggregate >= 2x)");
    table.set_header({"Model / config", "generic us/step",
                      "replay us/step", "speedup", "identical"});

    double generic_total = 0.0;
    double replay_total = 0.0;
    bool all_identical = true;
    const auto add_row = [&](const std::string& name,
                             const RowTotals& t) {
        generic_total += t.generic_ns;
        replay_total += t.replay_ns;
        all_identical = all_identical && t.ok;
        table.add_row(name + (t.ok ? "" : "  [MISMATCH]"),
                      {t.generic_ns / g_steps / 1e3,
                       t.replay_ns / g_steps / 1e3,
                       t.generic_ns / t.replay_ns, t.ok ? 1.0 : 0.0});
    };

    const ModelKind kinds[] = {ModelKind::Scrnn, ModelKind::MiLstm,
                               ModelKind::SubLstm,
                               ModelKind::StackedLstm, ModelKind::Gnmt};
    for (ModelKind kind : kinds) {
        const BuiltModel model =
            build_model(kind, paper_config(kind, 16));
        AstraOptions opts;
        opts.gpu = env.gpu;
        opts.sched = env.sched;
        const AstraSession probe(model.graph(), opts);
        add_row(model.name + " plain",
                measure(model.graph(), env, plain_config(probe)));
        add_row(model.name + " fused+streamed",
                measure(model.graph(), env, steady_config(probe)));
    }

    // Recompute rewrites restructure the graph (checkpoint segments
    // re-executed in backward); the lowered binary must still match.
    const BuiltModel sub =
        build_model(ModelKind::SubLstm,
                    paper_config(ModelKind::SubLstm, 16));
    const RecomputePlan rp = apply_recompute(sub.graph(), sub.grads);
    {
        AstraOptions opts;
        opts.gpu = env.gpu;
        opts.sched = env.sched;
        const AstraSession probe(rp.graph(), opts);
        add_row(sub.name + " recompute",
                measure(rp.graph(), env, plain_config(probe)));
    }

    table.print();
    const double speedup = generic_total / replay_total;
    std::printf("aggregate host-enqueue speedup: %.2fx "
                "(generic %.1f us/step, replay %.1f us/step)\n",
                speedup, generic_total / g_steps / 1e3,
                replay_total / g_steps / 1e3);
    if (!all_identical) {
        std::printf("FAIL: replay diverged from generic dispatch\n");
        return 1;
    }
    if (speedup < 2.0) {
        std::printf("FAIL: aggregate speedup %.2fx below the 2x gate\n",
                    speedup);
        return 1;
    }
    return 0;
}
