/**
 * @file
 * Reproduces paper Table 4: subLSTM speedup over native PyTorch.
 * Paper shape: up to 3x at batch 8, decaying to ~1.29x at 256.
 */
#include "bench/common.h"

int
main()
{
    astra::bench::Env env;
    astra::bench::print_speedup_table(
        "Table 4: subLSTM, factor speedup vs native (paper Astra_all: "
        "3.00 / 2.75 / 2.40 / 1.95 / 1.54 / 1.29)",
        astra::ModelKind::SubLstm,
        {{8, 3.0}, {16, 2.75}, {32, 2.4}, {64, 1.95}, {128, 1.54},
         {256, 1.29}},
        env);
    return 0;
}
