/**
 * @file
 * Gates the multi-replica serving fleet (src/serve/router.h) under
 * injected replica faults — all deterministic under fixed seeds, so
 * every count below is pinned, not approximate:
 *
 *  1. Armed-but-silent fleet: a 1-replica fleet whose replica-death
 *     spec never fires inside the trace must match the single-server
 *     PR-8 path within 1% p99 (the routing layer is free when nothing
 *     fails).
 *  2. Replica death: a 3-replica fleet loses one replica mid-burst.
 *     Zero requests lost, zero double-served, the death detected
 *     within a pinned completion budget of the heartbeat deadline.
 *  3. Overload shedding: a 2-replica fleet under ~2x capacity with a
 *     bounded queue — the EDF/goodput-aware drop rule must beat FIFO
 *     strict-overflow goodput strictly.
 *  4. Determinism: repeating the death scenario on the same fleet
 *     reproduces every counter bit-identically.
 *
 * Exits non-zero on any gate failure so CI runs it as a check
 * (--smoke shortens the traffic).
 */
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"
#include "serve/router.h"

using namespace astra;
using namespace astra::bench;

namespace {

/** Simulated-seconds scale of the generated traces (batch times). */
double g_duration_batches = 300.0;

/** Completions allowed between a down edge and its detection. */
constexpr int64_t kFailoverBudget = 48;

LengthGraphFn
scrnn_builder()
{
    return [](GraphBuilder& b, int length) {
        ModelConfig cfg;
        cfg.batch = 4;
        cfg.seq_len = length;
        cfg.hidden = 32;
        cfg.embed_dim = 32;
        cfg.vocab = 50;
        BuiltModel m = build_model(ModelKind::Scrnn, cfg);
        b = std::move(*m.builder);
    };
}

std::string
fresh_store(const char* name)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

serve::ServeOptions
base_options(const Env& env, const std::string& store)
{
    serve::ServeOptions so;
    so.bucket_lengths = {4, 6, 8};
    so.build = scrnn_builder();
    so.astra.gpu = env.gpu;
    so.astra.sched = env.sched;
    so.astra.features = features_fk();
    // The chaos gates assert exact counts; pin out the environment's
    // noise and fault matrices — replica faults arrive through
    // FleetOptions::faults, never through the device injector.
    so.astra.gpu.autoboost = false;
    so.astra.gpu.faults = FaultPlan();
    so.astra.plan_store = store;
    so.max_batch = 4;
    return so;
}

serve::TrafficConfig
calibrated_traffic(double batch_ns, double load_frac, uint64_t seed)
{
    serve::TrafficConfig cfg;
    cfg.duration_ns = g_duration_batches * batch_ns;
    cfg.base_rps = load_frac * 4.0 * 1e9 / batch_ns;
    cfg.slo_ns = 30.0 * batch_ns;
    cfg.length_div = 10;
    cfg.min_length = 2;
    cfg.seed = seed;
    cfg.bursts.push_back(
        {0.4 * cfg.duration_ns, 0.6 * cfg.duration_ns, 2.0});
    return cfg;
}

bool
gate(bool ok, const char* what)
{
    if (!ok)
        std::printf("FAIL: %s\n", what);
    return ok;
}

}  // namespace

int
main(int argc, char** argv)
{
    init_observability(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            g_duration_batches = 160.0;

    Env env;
    bool ok = true;

    // ---- scenario 1: armed-but-silent fleet vs single server ---------
    serve::ServeOptions single_opts =
        base_options(env, fresh_store("astra_chaos_single"));
    serve::BucketedServer single(single_opts);
    const int64_t explored = single.optimize();
    const double batch_ns =
        single
            .plan(static_cast<int>(
                      single_opts.bucket_lengths.size()) -
                  1)
            .baseline_ns;

    const serve::TrafficConfig calm_cfg =
        calibrated_traffic(batch_ns, 0.35, 23);
    const auto calm_traffic = serve::generate_traffic(calm_cfg);
    const serve::ServeReport single_rep = single.serve(calm_traffic);

    serve::FleetOptions silent_opts;
    silent_opts.base =
        base_options(env, fresh_store("astra_chaos_silent"));
    silent_opts.replicas = 1;
    // Armed: a death spec exists, but fires far past the trace.
    std::string err;
    bool parsed = FaultPlan::parse("replica_death:r=0,at_ns=1e17",
                                   &silent_opts.faults, &err);
    ok &= gate(parsed, "silent-fleet fault spec failed to parse");
    serve::ReplicaFleet silent(silent_opts);
    silent.optimize();
    const serve::FleetReport silent_rep = silent.serve(calm_traffic);
    std::printf("%s\n",
                silent_rep.to_text("armed-but-silent fleet (1 replica)")
                    .c_str());

    // ---- scenario 2: replica death mid-burst --------------------------
    serve::FleetOptions death_opts;
    death_opts.base =
        base_options(env, fresh_store("astra_chaos_death"));
    death_opts.replicas = 3;
    // ~70% per replica at base rate, ~140% through the burst: every
    // replica carries a strictly growing backlog when the death lands
    // mid-burst, so replica 1 is mid-batch and the failover path (not
    // just detection) is exercised.
    const serve::TrafficConfig fleet_cfg =
        calibrated_traffic(batch_ns, 0.7 * 3.0, 29);
    const double death_at = 0.45 * fleet_cfg.duration_ns;
    parsed = FaultPlan::parse(
        "replica_death:r=1,at_ns=" + std::to_string(death_at),
        &death_opts.faults, &err);
    ok &= gate(parsed, "death fault spec failed to parse");
    serve::ReplicaFleet fleet(death_opts);
    fleet.optimize();
    const auto fleet_traffic = serve::generate_traffic(fleet_cfg);
    const serve::FleetReport death_rep = fleet.serve(fleet_traffic);
    std::printf("%s\n",
                death_rep.to_text("replica 1 death mid-burst "
                                  "(3 replicas)")
                    .c_str());

    // ---- scenario 4 (same fleet): bit-identical repeat ----------------
    const serve::FleetReport repeat_rep = fleet.serve(fleet_traffic);

    // ---- scenario 3: overload, EDF shed vs FIFO overflow --------------
    // 2x the 2-replica fleet's capacity, a queue deep enough to hold
    // ~16 batches of backlog, and an SLO of only 8 batch times: a
    // request admitted at the tail of a full queue is already doomed.
    // FIFO dutifully serves it late (a miss that burned a slot); EDF
    // sheds it and spends the slot on a request that can still win.
    serve::TrafficConfig load_cfg =
        calibrated_traffic(batch_ns, 2.0 * 2.0, 31);
    load_cfg.slo_ns = 8.0 * batch_ns;
    const auto load_traffic = serve::generate_traffic(load_cfg);

    serve::FleetOptions edf_opts;
    edf_opts.base = base_options(env, fresh_store("astra_chaos_edf"));
    edf_opts.replicas = 2;
    edf_opts.queue_capacity = 64;
    edf_opts.queue_policy = serve::QueuePolicy::EdfShed;
    serve::ReplicaFleet edf(edf_opts);
    edf.optimize();
    const serve::FleetReport edf_rep = edf.serve(load_traffic);
    std::printf("%s\n",
                edf_rep.to_text("overload 2x, EDF shed").c_str());

    serve::FleetOptions fifo_opts;
    fifo_opts.base =
        base_options(env, fresh_store("astra_chaos_fifo"));
    fifo_opts.replicas = 2;
    fifo_opts.queue_capacity = 64;
    fifo_opts.queue_policy = serve::QueuePolicy::FifoOverflow;
    serve::ReplicaFleet fifo(fifo_opts);
    fifo.optimize();
    const serve::FleetReport fifo_rep = fifo.serve(load_traffic);
    std::printf("%s\n",
                fifo_rep.to_text("overload 2x, FIFO overflow").c_str());

    // ---- summary table -----------------------------------------------
    TextTable table(
        "Micro: multi-replica serving chaos (gates: silent fleet "
        "<= 1% p99 vs single server; death -> zero lost / zero "
        "double-served / bounded detection; EDF goodput > FIFO; "
        "bit-identical repeat)");
    table.set_header({"Scenario", "p99 ms", "goodput rps", "lost",
                      "failed", "detect budget"});
    const auto row = [&](const char* name,
                         const serve::FleetReport& r) {
        table.add_row(
            name,
            {r.total.p99_ns / 1e6, r.total.goodput_rps,
             static_cast<double>(r.total.dropped),
             static_cast<double>(r.failed),
             static_cast<double>(r.failover_detect_budget)});
    };
    table.add_row("single server (PR-8 path)",
                  {single_rep.p99_ns / 1e6, single_rep.goodput_rps,
                   static_cast<double>(single_rep.dropped), 0.0,
                   -1.0});
    row("armed-but-silent fleet", silent_rep);
    row("replica death (3 replicas)", death_rep);
    row("overload EDF shed", edf_rep);
    row("overload FIFO overflow", fifo_rep);
    table.print();
    std::printf("exploration mini-batches (single server): %lld\n",
                static_cast<long long>(explored));

    // ---- gates: silent fleet parity -----------------------------------
    ok &= gate(silent_rep.total.served == single_rep.served &&
                   silent_rep.total.dropped == 0,
               "silent fleet served a different request count");
    ok &= gate(silent_rep.deaths_detected == 0 &&
                   silent_rep.retries == 0,
               "silent fleet saw phantom failures");
    ok &= gate(single_rep.p99_ns > 0.0 &&
                   silent_rep.total.p99_ns <=
                       1.01 * single_rep.p99_ns &&
                   silent_rep.total.p99_ns >=
                       0.99 * single_rep.p99_ns,
               "silent fleet p99 drifted >1% from the single server");

    // ---- gates: replica death -----------------------------------------
    ok &= gate(death_rep.total.dropped == 0,
               "death scenario lost requests");
    ok &= gate(death_rep.double_served == 0,
               "death scenario double-served requests");
    ok &= gate(death_rep.failed == 0,
               "death scenario exhausted retries");
    ok &= gate(death_rep.deaths_detected == 1,
               "death never detected (or detected twice)");
    ok &= gate(death_rep.failed_batches >= 1 &&
                   death_rep.retries >= 1,
               "death scenario never exercised failover");
    ok &= gate(death_rep.failover_detect_budget >= 0 &&
                   death_rep.failover_detect_budget <= kFailoverBudget,
               "failover detection exceeded the completion budget");
    ok &= gate(death_rep.total.served + death_rep.total.rejected +
                       death_rep.shed + death_rep.evicted +
                       death_rep.failed ==
                   death_rep.total.offered,
               "death scenario resolution accounting does not add up");

    // ---- gates: overload shedding -------------------------------------
    ok &= gate(edf_rep.shed + edf_rep.evicted > 0,
               "EDF scenario never shed under 2x overload");
    ok &= gate(edf_rep.total.goodput_rps > fifo_rep.total.goodput_rps,
               "EDF shed goodput not above FIFO overflow");
    ok &= gate(edf_rep.total.dropped == 0 &&
                   fifo_rep.total.dropped == 0,
               "overload scenario lost requests outside the shed path");

    // ---- gates: bit-identical repeat ----------------------------------
    const bool identical =
        repeat_rep.total.served == death_rep.total.served &&
        repeat_rep.total.p99_ns == death_rep.total.p99_ns &&
        repeat_rep.total.makespan_ns == death_rep.total.makespan_ns &&
        repeat_rep.retries == death_rep.retries &&
        repeat_rep.failed_batches == death_rep.failed_batches &&
        repeat_rep.deaths_detected == death_rep.deaths_detected &&
        repeat_rep.failover_detect_budget ==
            death_rep.failover_detect_budget &&
        repeat_rep.shed == death_rep.shed &&
        repeat_rep.evicted == death_rep.evicted &&
        repeat_rep.failed == death_rep.failed &&
        repeat_rep.double_served == death_rep.double_served;
    ok &= gate(identical, "repeat run diverged (lost determinism)");
    bool replicas_identical =
        repeat_rep.replicas.size() == death_rep.replicas.size();
    for (size_t i = 0;
         replicas_identical && i < death_rep.replicas.size(); ++i) {
        replicas_identical =
            repeat_rep.replicas[i].batches ==
                death_rep.replicas[i].batches &&
            repeat_rep.replicas[i].served ==
                death_rep.replicas[i].served &&
            repeat_rep.replicas[i].failed_batches ==
                death_rep.replicas[i].failed_batches &&
            repeat_rep.replicas[i].deaths ==
                death_rep.replicas[i].deaths;
    }
    ok &= gate(replicas_identical,
               "per-replica counters diverged across repeats");

    return ok ? 0 : 1;
}
