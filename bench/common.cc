#include "bench/common.h"

#include <iostream>
#include <string>

#include "runtime/dispatcher.h"
#include "runtime/native.h"

namespace astra::bench {

void
init_observability(int* argc, char** argv)
{
    for (int i = 1; i + 1 < *argc; ++i) {
        if (std::string(argv[i]) != "--trace-out")
            continue;
        obs::set_trace_path(argv[i + 1]);
        for (int j = i; j + 2 < *argc; ++j)
            argv[j] = argv[j + 2];
        *argc -= 2;
        return;
    }
    obs::init_from_env();
}

ModelConfig
paper_config(ModelKind kind, int64_t batch, bool embedding)
{
    ModelConfig cfg;
    cfg.batch = batch;
    cfg.seq_len = 10;
    cfg.hidden = 512;
    cfg.embed_dim = 512;
    cfg.vocab = 4000;
    cfg.include_embedding = embedding;
    switch (kind) {
      case ModelKind::StackedLstm:
        // PTB "large" configuration: input/hidden size 1500 (§6.3).
        cfg.hidden = 1500;
        cfg.embed_dim = 1500;
        cfg.layers = 2;
        break;
      case ModelKind::Gnmt:
        cfg.hidden = 512;
        cfg.embed_dim = 512;
        cfg.seq_len = 6;   // 8x layers already multiply the graph
        cfg.layers = 1;    // -> 4 encoder + 4 decoder layers
        break;
      default:
        break;
    }
    return cfg;
}

double
native_ns(const BuiltModel& model, const Env& env)
{
    SimMemory mem(graph_tensor_bytes(model.graph()) + (1 << 20), false);
    TensorMap tmap(model.graph(), mem);
    return dispatch_plan(native_plan(model.graph()), model.graph(), tmap,
                         env.gpu).total_ns;
}

AstraOutcome
astra_ns(const BuiltModel& model, const AstraFeatures& f, const Env& env,
         const WhatIfOptions& whatif, int wirer_threads,
         const std::string& plan_store)
{
    AstraOptions opts;
    opts.features = f;
    opts.gpu = env.gpu;
    opts.sched = env.sched;
    opts.whatif = whatif;
    opts.wirer_threads = wirer_threads;
    opts.plan_store = plan_store;
    AstraSession session(model.graph(), opts);
    const WirerResult r = session.optimize();
    AstraOutcome out;
    out.ns = r.best_ns;
    out.configs = r.minibatches;
    out.whatif_evals = r.convergence.whatif_evals;
    out.predictor_pruned = r.convergence.predictor_pruned;
    out.measured_configs = r.convergence.measured_configs;
    out.config_text = config_to_string(r.best_config);
    return out;
}

double
cudnn_ns(const BuiltModel& model, const Env& env)
{
    SimMemory mem(graph_tensor_bytes(model.graph()) + (1 << 20), false);
    TensorMap tmap(model.graph(), mem);
    return dispatch_plan(cudnn_plan(model.graph(), model.cudnn_layers,
                                    env.gpu),
                         model.graph(), tmap, env.gpu).total_ns;
}

double
xla_ns(const BuiltModel& model, const Env& env)
{
    const SearchSpace space = enumerate_search_space(model.graph());
    SimMemory mem(graph_tensor_bytes(model.graph()) + (1 << 20), false);
    TensorMap tmap(model.graph(), mem, space.strategies[0].runs);
    return dispatch_plan(xla_plan(model.graph(), space), model.graph(),
                         tmap, env.gpu).total_ns;
}

void
print_speedup_table(const std::string& title, ModelKind kind,
                    const std::map<int64_t, double>& paper,
                    const Env& env)
{
    TextTable table(title);
    table.set_header({"Mini-batch", "PyT", "Astra_F", "Astra_FK",
                      "Astra_FKS", "Astra_all", "paper Astra_all"});
    for (int64_t batch : kBatches) {
        const BuiltModel model =
            build_model(kind, paper_config(kind, batch));
        const double base = native_ns(model, env);
        const double f = astra_ns(model, features_f(), env).ns;
        const double fk = astra_ns(model, features_fk(), env).ns;
        const double fks = astra_ns(model, features_fks(), env).ns;
        const double all = astra_ns(model, features_all(), env).ns;
        std::vector<double> row = {1.0, base / f, base / fk, base / fks,
                                   base / all};
        const auto it = paper.find(batch);
        if (it != paper.end())
            row.push_back(it->second);
        table.add_row(std::to_string(batch), row);
        std::cerr << "  [batch " << batch << " done]\n";
    }
    table.print();
}

}  // namespace astra::bench
