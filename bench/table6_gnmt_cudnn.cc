/**
 * @file
 * Reproduces paper Table 6: GNMT relative to cuDNN. The recurrent
 * layers are cuDNN-covered but the attention module is not, so cuDNN
 * dominates at small batch (paper PyT 0.19-0.31 of cuDNN; Astra_all
 * 0.65 at batch 8, crossing above 1.0 by batch 32).
 */
#include "bench/common.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    Env env;
    TextTable table(
        "Table 6: GNMT, performance relative to cuDNN (paper "
        "Astra_all: 0.65 / 0.75 / 1.71 / 1.17 / 1.00 / 1.02)");
    table.set_header({"Mini-batch", "PyT", "cuDNN", "Astra_F",
                      "Astra_FK", "Astra_all", "paper Astra_all"});
    const std::map<int64_t, double> paper = {
        {8, 0.65}, {16, 0.75}, {32, 1.71},
        {64, 1.17}, {128, 1.0}, {256, 1.02}};
    for (int64_t batch : kBatches) {
        const BuiltModel model = build_model(
            ModelKind::Gnmt, paper_config(ModelKind::Gnmt, batch));
        const double cudnn = cudnn_ns(model, env);
        const double native = native_ns(model, env);
        const double f = astra_ns(model, features_f(), env).ns;
        const double fk = astra_ns(model, features_fk(), env).ns;
        const double all = astra_ns(model, features_all(), env).ns;
        table.add_row(std::to_string(batch),
                      {cudnn / native, 1.0, cudnn / f, cudnn / fk,
                       cudnn / all, paper.at(batch)});
        std::cerr << "  [batch " << batch << " done]\n";
    }
    table.print();
    return 0;
}
