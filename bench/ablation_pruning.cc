/**
 * @file
 * Ablation (DESIGN.md / paper §4.5.1): how much do Astra's pruning
 * techniques shrink the exploration state space?
 *
 * For each model we contrast three counts:
 *  - the naive product space a mutation-at-a-time tuner faces (one
 *    change per trial: the product of every variable's options —
 *    reported as log10, it is astronomically large);
 *  - the per-dimension additive bound Astra's parallel exploration
 *    achieves in theory (max options per stage, summed over stages);
 *  - the mini-batches Astra actually spends (measured).
 *
 * The paper's example: 5 fusion groups x (3 chunk x 2 kernel) options
 * = 7776 mutation trials vs 6 with fine-grained profiling.
 */
#include <cmath>
#include <filesystem>

#include "bench/common.h"

using namespace astra;
using namespace astra::bench;

int
main(int argc, char** argv)
{
    // --smoke: two small models only, for CI-speed runs.
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke")
            smoke = true;

    Env env;
    TextTable table(
        "Ablation: exploration-space pruning (paper §4.5.1: additive, "
        "not multiplicative, in the number of dimensions; "
        "predictor-pruned = options masked by the what-if engine's "
        "tier-1 nomination + tier-2 replay confirm)");
    table.set_header({"Model", "log10(naive product)",
                      "additive bound", "measured mini-batches",
                      "predictor-pruned"});
    const std::vector<ModelKind> kinds =
        smoke ? std::vector<ModelKind>{ModelKind::Scrnn, ModelKind::Rhn}
              : std::vector<ModelKind>{ModelKind::Scrnn,
                                       ModelKind::SubLstm,
                                       ModelKind::StackedLstm,
                                       ModelKind::Rhn};
    for (ModelKind kind : kinds) {
        const BuiltModel model =
            build_model(kind, paper_config(kind, smoke ? 8 : 16));
        const SearchSpace space =
            enumerate_search_space(model.graph());

        // Naive product: every chunk and library variable multiplies.
        double log10_product = 0.0;
        int64_t additive = 0;
        int64_t max_chunk_opts = 1, lib_opts = 1;
        for (const FusionGroup& g : space.groups) {
            log10_product +=
                std::log10(static_cast<double>(g.chunk_options.size()));
            log10_product += std::log10(double(kNumGemmLibs));
            max_chunk_opts = std::max<int64_t>(
                max_chunk_opts,
                static_cast<int64_t>(g.chunk_options.size()));
            lib_opts = kNumGemmLibs;
        }
        for (size_t i = 0; i < space.single_mms.size(); ++i)
            log10_product += std::log10(double(kNumGemmLibs));
        additive = max_chunk_opts + lib_opts;

        WhatIfOptions wi;
        wi.enabled = true;
        const AstraOutcome run =
            astra_ns(model, features_fk(), env, wi);
        table.add_row({model.name, TextTable::fmt(log10_product, 1),
                       std::to_string(additive),
                       std::to_string(run.configs),
                       std::to_string(run.predictor_pruned)});
        std::cerr << "  [" << model.name << " done]\n";
    }
    table.print();

    // ---- tier-1 in action: cold sighting vs plan-store warm start --------
    // The predictor only nominates once it has a track record; a cold
    // run has none before the first stage, so the column above is
    // honest zeros. A plan-store neighbor (same shape class, different
    // batch) trains it before the walk: the warm row shows options
    // masked by nomination + replay confirmation.
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "astra_ablation_pruning_store";
    fs::remove_all(dir);
    fs::create_directories(dir);

    WhatIfOptions wi;
    wi.enabled = true;
    const ModelKind kind = ModelKind::Scrnn;
    const BuiltModel cold_model =
        build_model(kind, paper_config(kind, smoke ? 8 : 16));
    const BuiltModel warm_model =
        build_model(kind, paper_config(kind, smoke ? 12 : 24));
    const AstraOutcome cold =
        astra_ns(cold_model, features_fk(), env, wi, 1, dir.string());
    const AstraOutcome warm =
        astra_ns(warm_model, features_fk(), env, wi, 1, dir.string());
    fs::remove_all(dir);

    TextTable demo(
        "Tier-1 nomination needs a trained predictor: cold sighting "
        "vs warm start from a shape-class neighbor");
    demo.set_header({"sighting", "mini-batches", "replays",
                     "predictor-pruned"});
    demo.add_row({"cold (empty store)", std::to_string(cold.configs),
                  std::to_string(cold.whatif_evals),
                  std::to_string(cold.predictor_pruned)});
    demo.add_row({"warm (neighbor entry)", std::to_string(warm.configs),
                  std::to_string(warm.whatif_evals),
                  std::to_string(warm.predictor_pruned)});
    demo.print();
    if (warm.predictor_pruned <= cold.predictor_pruned) {
        std::cerr << "FAIL: warm start masked no extra options "
                     "(tier-1 never fired)\n";
        return 1;
    }
    return 0;
}
