/**
 * @file
 * Ablation (DESIGN.md / paper §4.5.1): how much do Astra's pruning
 * techniques shrink the exploration state space?
 *
 * For each model we contrast three counts:
 *  - the naive product space a mutation-at-a-time tuner faces (one
 *    change per trial: the product of every variable's options —
 *    reported as log10, it is astronomically large);
 *  - the per-dimension additive bound Astra's parallel exploration
 *    achieves in theory (max options per stage, summed over stages);
 *  - the mini-batches Astra actually spends (measured).
 *
 * The paper's example: 5 fusion groups x (3 chunk x 2 kernel) options
 * = 7776 mutation trials vs 6 with fine-grained profiling.
 */
#include <cmath>

#include "bench/common.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    Env env;
    TextTable table(
        "Ablation: exploration-space pruning (paper §4.5.1: additive, "
        "not multiplicative, in the number of dimensions)");
    table.set_header({"Model", "log10(naive product)",
                      "additive bound", "measured mini-batches"});
    const ModelKind kinds[] = {ModelKind::Scrnn, ModelKind::SubLstm,
                               ModelKind::StackedLstm, ModelKind::Rhn};
    for (ModelKind kind : kinds) {
        const BuiltModel model =
            build_model(kind, paper_config(kind, 16));
        const SearchSpace space =
            enumerate_search_space(model.graph());

        // Naive product: every chunk and library variable multiplies.
        double log10_product = 0.0;
        int64_t additive = 0;
        int64_t max_chunk_opts = 1, lib_opts = 1;
        for (const FusionGroup& g : space.groups) {
            log10_product +=
                std::log10(static_cast<double>(g.chunk_options.size()));
            log10_product += std::log10(double(kNumGemmLibs));
            max_chunk_opts = std::max<int64_t>(
                max_chunk_opts,
                static_cast<int64_t>(g.chunk_options.size()));
            lib_opts = kNumGemmLibs;
        }
        for (size_t i = 0; i < space.single_mms.size(); ++i)
            log10_product += std::log10(double(kNumGemmLibs));
        additive = max_chunk_opts + lib_opts;

        const AstraOutcome run = astra_ns(model, features_fk(), env);
        table.add_row({model.name, TextTable::fmt(log10_product, 1),
                       std::to_string(additive),
                       std::to_string(run.configs)});
        std::cerr << "  [" << model.name << " done]\n";
    }
    table.print();
    return 0;
}
