/**
 * @file
 * Ablation (DESIGN.md / paper §3.3): number of GPU streams.
 *
 * The paper uses "multiple streams" without fixing a count; this sweep
 * shows where the returns flatten — once either the SM pool or the
 * host launch pipeline saturates, extra streams stop helping.
 */
#include "bench/common.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    Env env;
    TextTable table(
        "Ablation: stream count (Astra_FKS speedup vs native)");
    table.set_header({"Model", "1 stream", "2 streams", "3 streams",
                      "4 streams"});
    for (ModelKind kind : {ModelKind::Scrnn, ModelKind::SubLstm}) {
        const BuiltModel model =
            build_model(kind, paper_config(kind, 16));
        const double native = native_ns(model, env);
        std::vector<double> row;
        for (int streams = 1; streams <= 4; ++streams) {
            AstraOptions opts;
            opts.features = streams == 1 ? features_fk()
                                         : features_fks();
            opts.gpu = env.gpu;
            opts.sched = env.sched;
            opts.num_streams = streams;
            AstraSession session(model.graph(), opts);
            const WirerResult r = session.optimize();
            row.push_back(native / r.best_ns);
            std::cerr << "  [" << model.name << " x" << streams
                      << " done]\n";
        }
        table.add_row(model.name, row);
    }
    table.print();
    return 0;
}
