/**
 * @file
 * Reproduces the §4.1 predictability premise and the §7 hardware
 * requirement: at base clock, repeated mini-batches of the same
 * configuration measure identically (one measurement suffices per
 * configuration); with GPU autoboost enabled, the same kernel's
 * measurements jitter, which is why the paper pins the clock via
 * nvidia-smi. This repo's alternative is to *measure* the clock
 * instead of pinning it: the device reports its DVFS multiplier (the
 * NVML query), the measurement policy normalizes samples by it, and
 * statistics (mean-of-k, MAD outlier rejection, noise-aware ties)
 * absorb the residual — table two shows the naive one-measurement
 * wirer losing the base-clock configuration under jitter while the
 * noise-robust policy recovers it exactly.
 */
#include "bench/common.h"
#include "core/config_io.h"
#include "support/stats.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    Env env;
    const BuiltModel model = build_model(
        ModelKind::SubLstm, paper_config(ModelKind::SubLstm, 16));

    TextTable table(
        "Micro (paper §4.1/§7): mini-batch repeatability, coefficient "
        "of variation over 16 identical mini-batches (paper: base "
        "clock repeatable; autoboost breaks the predictability "
        "assumption; the NVML clock query wins it back)");
    table.set_header({"clock mode", "mean ms", "CoV %"});

    for (const int mode : {0, 1, 2}) {
        AstraOptions opts;
        opts.gpu = env.gpu;
        opts.gpu.autoboost = mode != 0;
        opts.sched = env.sched;
        AstraSession session(model.graph(), opts);
        ScheduleConfig cfg;
        cfg.group_chunk.assign(session.space().groups.size(), 1);
        cfg.group_lib.assign(session.space().groups.size(),
                             GemmLib::Cublas);
        RunningStats stats;
        for (int i = 0; i < 16; ++i) {
            const DispatchResult r = session.run(cfg);
            // Mode 2: compensate each sample by the clock the device
            // reports having run it at.
            stats.add(mode == 2 ? r.total_ns * r.clock_multiplier
                                : r.total_ns);
        }
        table.add_row(mode == 0   ? "base clock"
                      : mode == 1 ? "autoboost"
                                  : "autoboost + clock query",
                      {stats.mean() / 1e6, 100.0 * stats.cov()});
    }
    table.print();

    // Second experiment: does exploration still converge to the
    // base-clock configuration when the clock jitters underneath it?
    const BuiltModel small = build_model(
        ModelKind::SubLstm,
        {.batch = 8, .seq_len = 4, .hidden = 32, .embed_dim = 32,
         .vocab = 50});
    TextTable wirer_table(
        "Custom wirer under autoboost: the paper's one-measurement "
        "regime vs the noise-robust measurement policy (reference: "
        "the same policy at base clock)");
    wirer_table.set_header({"policy (autoboost on)", "matches ref",
                            "minibatches", "outliers rejected"});

    AstraOptions ref_opts;
    ref_opts.gpu = env.gpu;
    ref_opts.gpu.autoboost = false;
    ref_opts.gpu.execute_kernels = false;
    ref_opts.sched = env.sched;
    ref_opts.measurement = MeasurementPolicy::noise_robust();
    AstraSession ref_session(small.graph(), ref_opts);
    const WirerResult ref = ref_session.optimize();
    const std::string want = config_to_string(ref.best_config);

    struct Case
    {
        const char* name;
        bool robust;
    };
    for (const Case c : {Case{"one-measurement", false},
                         Case{"noise-robust", true}}) {
        AstraOptions opts = ref_opts;
        opts.gpu.autoboost = true;
        opts.measurement = c.robust ? MeasurementPolicy::noise_robust()
                                    : MeasurementPolicy{};
        AstraSession session(small.graph(), opts);
        const WirerResult r = session.optimize();
        wirer_table.add_row(
            {c.name,
             config_to_string(r.best_config) == want ? "yes" : "no",
             std::to_string(r.minibatches),
             std::to_string(r.index.total_rejected())});
    }
    wirer_table.print();
    return 0;
}
