/**
 * @file
 * Reproduces the §4.1 predictability premise and the §7 hardware
 * requirement: at base clock, repeated mini-batches of the same
 * configuration measure identically (one measurement suffices per
 * configuration); with GPU autoboost enabled, the same kernel's
 * measurements jitter, which is why the paper pins the clock via
 * nvidia-smi.
 */
#include "bench/common.h"
#include "support/stats.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    Env env;
    const BuiltModel model = build_model(
        ModelKind::SubLstm, paper_config(ModelKind::SubLstm, 16));

    TextTable table(
        "Micro (paper §4.1/§7): mini-batch repeatability, coefficient "
        "of variation over 16 identical mini-batches (paper: base "
        "clock repeatable; autoboost breaks the predictability "
        "assumption)");
    table.set_header({"clock mode", "mean ms", "CoV %"});

    for (const bool boost : {false, true}) {
        AstraOptions opts;
        opts.gpu = env.gpu;
        opts.gpu.autoboost = boost;
        opts.sched = env.sched;
        AstraSession session(model.graph(), opts);
        ScheduleConfig cfg;
        cfg.group_chunk.assign(session.space().groups.size(), 1);
        cfg.group_lib.assign(session.space().groups.size(),
                             GemmLib::Cublas);
        RunningStats stats;
        for (int i = 0; i < 16; ++i)
            stats.add(session.run(cfg).total_ns);
        table.add_row(boost ? "autoboost" : "base clock",
                      {stats.mean() / 1e6, 100.0 * stats.cov()});
    }
    table.print();
    return 0;
}
