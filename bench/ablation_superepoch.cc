/**
 * @file
 * Ablation (DESIGN.md / paper §4.5.3): super-epoch granularity.
 *
 * Barrier exploration resets cross-stream history so super-epochs can
 * explore in parallel. Smaller super-epochs mean more parallelism (and
 * fewer trials) but more barrier synchronizations in steady state;
 * huge super-epochs degenerate toward one long prefix exploration.
 * This sweep shows both effects on one model.
 */
#include "bench/common.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    Env env;
    const BuiltModel model = build_model(
        ModelKind::SubLstm, paper_config(ModelKind::SubLstm, 16));
    const double native = native_ns(model, env);

    TextTable table(
        "Ablation: super-epoch target size vs exploration cost "
        "(Astra_FKS on subLSTM-16)");
    table.set_header({"super-epoch target", "configs explored",
                      "speedup vs native"});
    for (const double se_ns :
         {100e3, 200e3, 400e3, 800e3, 1.6e6, 1e15}) {
        Env swept = env;
        swept.sched.super_epoch_ns = se_ns;
        const AstraOutcome run =
            astra_ns(model, features_fks(), swept);
        const std::string label =
            se_ns > 1e12 ? "single super-epoch"
                         : TextTable::fmt(se_ns / 1e3, 0) + " us";
        table.add_row({label, std::to_string(run.configs),
                       TextTable::fmt(native / run.ns, 2)});
        std::cerr << "  [" << label << " done]\n";
    }
    table.print();
    return 0;
}
