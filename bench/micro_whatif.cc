/**
 * @file
 * Gate for the trace-driven what-if engine (core/whatif.h, §5.13):
 * across the five paper models, wiring with the engine armed must
 * converge to the *FNV-bit-identical* configuration the exhaustive
 * wirer finds, while cutting measured exploration mini-batches by at
 * least 3x in aggregate. Also gates the off-path (zero what-if
 * counters, same config) and thread-count determinism (wirer_threads=4
 * reproduces the serial counters and config exactly).
 *
 * Exit status is the gate: 0 = all invariants hold. CI runs
 * `micro_whatif --smoke` (smaller shapes, same checks).
 */
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/plan_store.h"

using namespace astra;
using namespace astra::bench;

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke")
            smoke = true;

    Env env;
    TextTable table(
        "micro_whatif: what-if engine vs exhaustive wiring "
        "(gate: identical FNV config, >= 3x aggregate mini-batch cut, "
        "thread-deterministic counters)");
    table.set_header({"Model", "exhaustive mb", "whatif mb", "cut",
                      "replays", "pruned", "fnv match"});

    const ModelKind kinds[] = {ModelKind::Scrnn, ModelKind::StackedLstm,
                               ModelKind::MiLstm, ModelKind::SubLstm,
                               ModelKind::Gnmt};
    bool ok = true;
    int64_t total_off = 0, total_on = 0;
    for (ModelKind kind : kinds) {
        ModelConfig cfg = paper_config(kind, smoke ? 8 : 16);
        if (smoke) {
            // Same graphs, smaller shapes: every gate below is a
            // determinism property, not a scale property.
            cfg.hidden = std::min<int64_t>(cfg.hidden, 128);
            cfg.embed_dim = std::min<int64_t>(cfg.embed_dim, 128);
            cfg.vocab = std::min<int64_t>(cfg.vocab, 500);
        }
        const BuiltModel model = build_model(kind, cfg);

        const AstraOutcome off =
            astra_ns(model, features_all(), env);
        WhatIfOptions wi;
        wi.enabled = true;
        const AstraOutcome on =
            astra_ns(model, features_all(), env, wi);
        const AstraOutcome on4 =
            astra_ns(model, features_all(), env, wi, 4);

        const uint64_t fnv_off = fnv1a64(off.config_text);
        const uint64_t fnv_on = fnv1a64(on.config_text);
        const uint64_t fnv_on4 = fnv1a64(on4.config_text);

        bool model_ok = true;
        if (off.whatif_evals != 0 || off.predictor_pruned != 0) {
            std::cerr << model.name
                      << ": FAIL: what-if counters nonzero with the "
                         "engine off\n";
            model_ok = false;
        }
        if (fnv_on != fnv_off) {
            std::cerr << model.name
                      << ": FAIL: whatif config differs from "
                         "exhaustive (fnv " << hash_hex(fnv_on)
                      << " vs " << hash_hex(fnv_off) << ")\n";
            model_ok = false;
        }
        if (fnv_on4 != fnv_on || on4.configs != on.configs ||
            on4.whatif_evals != on.whatif_evals ||
            on4.predictor_pruned != on.predictor_pruned ||
            on4.measured_configs != on.measured_configs) {
            std::cerr << model.name
                      << ": FAIL: wirer_threads=4 is not "
                         "bit-identical to serial (config/counters)\n";
            model_ok = false;
        }
        if (on.configs >= off.configs) {
            std::cerr << model.name
                      << ": FAIL: what-if engine saved no "
                         "mini-batches (" << on.configs << " vs "
                      << off.configs << ")\n";
            model_ok = false;
        }
        ok = ok && model_ok;
        total_off += off.configs;
        total_on += on.configs;

        const double cut = on.configs > 0
                               ? static_cast<double>(off.configs) /
                                     static_cast<double>(on.configs)
                               : 0.0;
        table.add_row({model.name, std::to_string(off.configs),
                       std::to_string(on.configs),
                       TextTable::fmt(cut, 2) + "x",
                       std::to_string(on.whatif_evals),
                       std::to_string(on.predictor_pruned),
                       fnv_on == fnv_off ? "yes" : "NO"});
        std::cerr << "  [" << model.name << " done]\n";
    }
    table.print();

    const double aggregate =
        total_on > 0 ? static_cast<double>(total_off) /
                           static_cast<double>(total_on)
                     : 0.0;
    std::cout << "aggregate mini-batch cut: " << total_off << " -> "
              << total_on << " (" << TextTable::fmt(aggregate, 2)
              << "x)\n";
    if (aggregate < 3.0) {
        std::cerr << "FAIL: aggregate cut " << TextTable::fmt(aggregate, 2)
                  << "x below the 3x gate\n";
        ok = false;
    }
    std::cout << (ok ? "micro_whatif: PASS\n" : "micro_whatif: FAIL\n");
    return ok ? 0 : 1;
}
