/**
 * @file
 * Reproduces paper Table 1: the best GEMM library depends on the
 * problem shape. Times two LSTM-run GEMM shapes under each simulated
 * library and checks the winner inversion (OAI_1 wins the wide-N
 * forward fused GEMM; cuBLAS wins the deep-K backward GEMM; OAI_2
 * collapses on wide N).
 */
#include "bench/common.h"
#include "runtime/dispatcher.h"

using namespace astra;

namespace {

double
time_gemm(GemmLib lib, int64_t m, int64_t n, int64_t k)
{
    GraphBuilder b;
    const NodeId x = b.input({m, k});
    const NodeId w = b.param({k, n});
    const NodeId mm = b.matmul(x, w);
    SimMemory mem(graph_tensor_bytes(b.graph()) + (1 << 20));
    TensorMap tmap(b.graph(), mem);
    ExecutionPlan plan;
    PlanStep step;
    step.nodes = {mm};
    step.lib = lib;
    plan.steps = {step};
    GpuConfig cfg;
    cfg.execute_kernels = false;
    return dispatch_plan(plan, b.graph(), tmap, cfg).total_ns / 1e6;
}

}  // namespace

int
main()
{
    TextTable table(
        "Table 1: GEMM time in ms per library (paper, P100: row1 "
        "cublas 0.156 / oai_1 0.125 / oai_2 0.938; row2 cublas 0.138 "
        "/ oai_1 0.172 / oai_2 0.141)");
    table.set_header({"Size (MxKxN)", "cuBlas", "OAI_1", "OAI_2",
                      "winner"});
    struct Row
    {
        int64_t m, k, n;
    };
    for (const Row r : {Row{64, 1024, 4096}, Row{64, 4096, 1024}}) {
        const double c = time_gemm(GemmLib::Cublas, r.m, r.n, r.k);
        const double o1 = time_gemm(GemmLib::Oai1, r.m, r.n, r.k);
        const double o2 = time_gemm(GemmLib::Oai2, r.m, r.n, r.k);
        std::string winner = "cublas";
        if (o1 < c && o1 <= o2)
            winner = "oai_1";
        else if (o2 < c && o2 < o1)
            winner = "oai_2";
        table.add_row({std::to_string(r.m) + "x" + std::to_string(r.k) +
                           "x" + std::to_string(r.n),
                       TextTable::fmt(c, 3), TextTable::fmt(o1, 3),
                       TextTable::fmt(o2, 3), winner});
    }
    table.print();
    return 0;
}
