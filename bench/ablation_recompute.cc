/**
 * @file
 * Ablation (paper §3.4): recompute-for-memory as a measured trade.
 *
 * "An example is to dynamically trade off computation for memory;
 * saving part of the memory used for forward-pass activations by
 * redoing the computation, thus accommodating a bigger model ... if
 * the cost of recomputation of some layers of the forward pass is
 * lower than the parallelism benefit from supporting say a 2x larger
 * mini-batch size, again a complex dynamic that needs measurement."
 *
 * This bench measures exactly that dynamic: per batch size, the
 * mini-batch time and peak activation memory with and without
 * recompute (under the liveness-based planner), then — given a device
 * memory budget — picks the fastest *feasible* configuration per
 * throughput (samples/second), the measurement-driven choice Astra's
 * approach generalizes to.
 */
#include "autodiff/recompute.h"
#include "bench/common.h"
#include "runtime/dispatcher.h"
#include "runtime/native.h"

using namespace astra;
using namespace astra::bench;

namespace {

struct Variant
{
    double ns = 0.0;
    int64_t peak = 0;
};

Variant
measure(const Graph& graph, const Env& env)
{
    SimMemory mem(graph_tensor_bytes(graph) * 2 + (1 << 20), false);
    TensorMap tmap(graph, mem, {}, MemoryPlanMode::Reuse);
    Variant v;
    v.peak = tmap.peak_bytes();
    v.ns = dispatch_plan(native_plan(graph), graph, tmap, env.gpu)
               .total_ns;
    return v;
}

}  // namespace

int
main()
{
    Env env;
    // Long unroll, small vocab: activations dominate parameters, as in
    // real training. The budget sits between the plain footprints of
    // the larger batches, so they only fit with recompute enabled.
    const int64_t budget = 40ll << 20;

    TextTable table(
        "Ablation (paper §3.4): recompute vs keep, subLSTM, memory "
        "budget " + std::to_string(budget >> 20) + " MiB (peak = "
        "liveness-planned activation memory)");
    table.set_header({"batch", "keep ms", "keep MiB", "recomp ms",
                      "recomp MiB", "best feasible"});
    double best_throughput = 0.0;
    std::string best_label = "-";
    for (const int64_t batch : {32, 64, 128, 256}) {
        ModelConfig cfg;
        cfg.batch = batch;
        cfg.seq_len = 24;
        cfg.hidden = 256;
        cfg.embed_dim = 256;
        cfg.vocab = 400;
        const BuiltModel model = build_model(ModelKind::SubLstm, cfg);
        RecomputePlan plan =
            apply_recompute(model.graph(), model.grads);

        const Variant keep = measure(model.graph(), env);
        const Variant recomp = measure(plan.graph(), env);

        std::string pick = "-";
        const bool keep_fits = keep.peak <= budget;
        const bool recomp_fits = recomp.peak <= budget;
        if (keep_fits && (!recomp_fits || keep.ns <= recomp.ns))
            pick = "keep";
        else if (recomp_fits)
            pick = "recompute";
        if (keep_fits) {
            const double tput = double(batch) / keep.ns;
            if (tput > best_throughput) {
                best_throughput = tput;
                best_label = "keep @ batch " + std::to_string(batch);
            }
        }
        if (recomp_fits) {
            const double tput = double(batch) / recomp.ns;
            if (tput > best_throughput) {
                best_throughput = tput;
                best_label =
                    "recompute @ batch " + std::to_string(batch);
            }
        }
        table.add_row({std::to_string(batch),
                       TextTable::fmt(keep.ns / 1e6, 2),
                       std::to_string(keep.peak >> 20),
                       TextTable::fmt(recomp.ns / 1e6, 2),
                       std::to_string(recomp.peak >> 20), pick});
    }
    table.print();
    std::cout << "measured best throughput: " << best_label << "\n";
    return 0;
}
