/**
 * @file
 * Reproduces paper Table 9: the TensorFlow-side comparison against
 * XLA. The TF Astra prototype supports only fusion + kernel selection
 * (Astra_FK, §5.4), and the models run with embeddings removed because
 * XLA's embedding handling is pathological (§6.6 — also demonstrated
 * here). Paper shape: XLA helps embedding-free models ~1.1-1.45x;
 * Astra_FK beats XLA by ~25-70%; cuDNN where applicable.
 */
#include "bench/common.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    Env env;

    // First, the robustness pathology: with embeddings present XLA is
    // *worse* than native (paper: 3x worse for SCRNN).
    {
        const BuiltModel with_emb = build_model(
            ModelKind::Scrnn, paper_config(ModelKind::Scrnn, 16, true));
        const double native = native_ns(with_emb, env);
        const double xla = xla_ns(with_emb, env);
        TextTable table(
            "Table 9 preamble: XLA embedding pathology, SCRNN-16 with "
            "embeddings (paper: XLA ~3x WORSE than native TF)");
        table.set_header({"backend", "relative speed"});
        table.add_row({"native TF", "1.00"});
        table.add_row({"TF + XLA", TextTable::fmt(native / xla, 2)});
        table.print();
    }

    TextTable table(
        "Table 9: embeddings removed; factor speedups vs native TF "
        "(paper Astra_FK: SCRNN 1.58/1.66, MI-LSTM 1.69/1.51, SubLSTM "
        "1.92/1.71, Stacked 1.45/1.32, GNMT 2.00/1.49)");
    table.set_header({"Model (batch)", "TF", "TF + XLA", "Astra_FK",
                      "cuDNN", "paper Astra_FK"});
    struct Row
    {
        ModelKind kind;
        int64_t batch;
        double paper_fk;
    };
    const Row rows[] = {
        {ModelKind::Scrnn, 16, 1.58},       {ModelKind::Scrnn, 32, 1.66},
        {ModelKind::MiLstm, 16, 1.69},      {ModelKind::MiLstm, 32, 1.51},
        {ModelKind::SubLstm, 16, 1.92},     {ModelKind::SubLstm, 32, 1.71},
        {ModelKind::StackedLstm, 16, 1.45}, {ModelKind::StackedLstm, 32, 1.32},
        {ModelKind::Gnmt, 16, 2.0},         {ModelKind::Gnmt, 32, 1.49},
    };
    for (const Row& r : rows) {
        const BuiltModel model = build_model(
            r.kind, paper_config(r.kind, r.batch, /*embedding=*/false));
        const double native = native_ns(model, env);
        const double xla = xla_ns(model, env);
        const double fk = astra_ns(model, features_fk(), env).ns;
        std::vector<std::string> cells = {
            model_name(r.kind) + " (" + std::to_string(r.batch) + ")",
            "1.00", TextTable::fmt(native / xla, 2),
            TextTable::fmt(native / fk, 2)};
        if (!model.cudnn_layers.empty())
            cells.push_back(
                TextTable::fmt(native / cudnn_ns(model, env), 2));
        else
            cells.push_back("-");
        cells.push_back(TextTable::fmt(r.paper_fk, 2));
        table.add_row(std::move(cells));
        std::cerr << "  [" << model.name << "-" << r.batch << " done]\n";
    }
    table.print();
    return 0;
}
