/**
 * @file
 * Ablation (paper §3.4 / §6.7): measured data-parallel execution.
 *
 * "The deterministic adaptation aspect of Astra can be extended to
 * explore dimensions such as ... data partitioning in multi-GPU jobs."
 * For each degree G the tuned per-device plan is *executed* on G
 * co-simulated devices with ring-allreduce chunk transfers on a comm
 * stream per device (runtime/dispatcher_dp.h), while gradient bucket
 * capacity and flush schedule are explored as adaptive variables. The
 * table reports the measured serial and overlapped step times next to
 * the closed-form ring estimate — which survives only as this printed
 * cross-check — and a second table shows the adaptively-chosen bucket
 * capacity beating both fixed extremes (one bucket, per-tensor).
 *
 * `--smoke` runs a tiny stacked LSTM at degrees {1,2} for CI.
 */
#include <cstring>

#include "bench/common.h"
#include "core/data_parallel.h"
#include "core/search_space.h"

using namespace astra;
using namespace astra::bench;

namespace {

std::string
bucket_label(int64_t bucket_bytes)
{
    if (bucket_bytes == 0)
        return "per-tensor";
    return TextTable::fmt(static_cast<double>(bucket_bytes) / 1024.0, 0) +
           " KiB";
}

}  // namespace

int
main(int argc, char** argv)
{
    init_observability(&argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    Env env;
    AstraOptions opts;
    opts.gpu = env.gpu;
    opts.sched = env.sched;
    opts.features = features_fk();
    InterconnectConfig net;  // PCIe-class ring, gigabits/s

    ModelConfig cfg;
    cfg.layers = 2;
    if (smoke) {
        cfg.seq_len = 2;
        cfg.hidden = 64;
        cfg.embed_dim = 64;
        cfg.vocab = 200;
    } else {
        cfg.seq_len = 8;
        cfg.hidden = 512;
        cfg.embed_dim = 512;
        cfg.vocab = 2000;
    }
    const BatchGraphFn build = [&cfg](GraphBuilder& b, int64_t batch) {
        ModelConfig c = cfg;
        c.batch = batch;
        BuiltModel m = build_model(ModelKind::StackedLstm, c);
        b = std::move(*m.builder);
    };

    const std::vector<int> degrees =
        smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    const int64_t global = smoke ? 16 : 128;

    TextTable table(
        "Ablation (paper §3.4): measured multi-GPU step, stacked LSTM "
        "(hidden " + std::to_string(cfg.hidden) + "), global batch " +
        std::to_string(global) + ", ring at " +
        TextTable::fmt(net.link_gbps, 0) + " Gbit/s");
    table.set_header({"G", "compute ms", "serial ms", "overlap ms",
                      "analytic AR ms", "bucket", "flush", "hidden ms",
                      "overlap<serial"});

    const auto points = measure_scaling(build, global, degrees, opts, net);
    bool overlap_ok = true;
    for (const ScalePoint& p : points) {
        const bool win =
            p.degree == 1 || p.step_ns < p.compute_ns + p.allreduce_ns;
        if (p.degree >= 2)
            overlap_ok = overlap_ok && win;
        table.add_row({std::to_string(p.degree),
                       TextTable::fmt(p.compute_ns / 1e6, 2),
                       TextTable::fmt(p.serial_ns / 1e6, 2),
                       TextTable::fmt(p.step_ns / 1e6, 2),
                       TextTable::fmt(p.allreduce_ns / 1e6, 2),
                       p.degree == 1 ? "-" : bucket_label(p.bucket_bytes),
                       p.degree == 1 ? "-" : flush_schedule_name(p.flush),
                       TextTable::fmt(p.overlap_ns / 1e6, 2),
                       p.degree == 1 ? "-" : (win ? "yes" : "NO")});
    }
    const size_t best = best_degree(points, global);
    table.print();
    std::cout << "  measured best degree: G=" << points[best].degree
              << "  (" << TextTable::fmt(
                     points[best].throughput(global) / 1e3, 1)
              << "k samples/s)\n\n";

    // ---- chosen bucket capacity vs the fixed extremes ------------------
    // Re-dispatch the tuned plan at one degree under (a) a single
    // bucket, (b) one bucket per tensor, (c) the adaptively-chosen
    // capacity — all eager — to show the adaptive choice is not just
    // "between" the extremes but better than both.
    const int G = smoke ? 2 : 4;
    const ScalePoint* chosen = nullptr;
    for (const ScalePoint& p : points)
        if (p.degree == G)
            chosen = &p;
    ASTRA_ASSERT(chosen, "degree sweep must include G=", G);

    GraphBuilder b;
    build(b, global / G);
    AstraSession session(b.graph(), opts);
    const WirerResult wr = session.optimize();
    const ExecutionPlan plan = session.scheduler().build(wr.best_config);
    const TensorMap& tmap = session.tensor_map(wr.best_config.strategy);
    const DataParallelSpace dp = enumerate_dp_space(b.graph());

    TextTable extremes("Gradient-bucket capacity at G=" +
                       std::to_string(G) + " (eager flush)");
    extremes.set_header({"capacity", "buckets", "step ms", "hidden ms"});
    const int64_t caps[] = {dp.grad_bytes, 0, chosen->bucket_bytes};
    const char* labels[] = {"one bucket", "per-tensor", "(chosen)"};
    double steps[3] = {};
    for (int i = 0; i < 3; ++i) {
        DpOptions dopts;
        dopts.degree = G;
        dopts.link = net;
        dopts.bucket_bytes = caps[i];
        dopts.flush = FlushSchedule::Eager;
        const DpResult r = dispatch_plan_dp(plan, b.graph(), tmap,
                                            opts.gpu, dp.grad_nodes,
                                            dopts);
        steps[i] = r.step_ns;
        const std::string label =
            i == 2 ? bucket_label(caps[i]) + " (chosen)"
                   : std::string(labels[i]);
        extremes.add_row({label, std::to_string(r.num_buckets),
                          TextTable::fmt(r.step_ns / 1e6, 2),
                          TextTable::fmt(r.overlap_ns / 1e6, 2)});
    }
    extremes.print();

    const bool beats_extremes = steps[2] < steps[0] && steps[2] < steps[1];
    std::cout << "  overlapped < compute+allreduce for all G>=2: "
              << (overlap_ok ? "yes" : "NO") << "\n"
              << "  chosen capacity beats both fixed extremes: "
              << (beats_extremes ? "yes" : "NO") << "\n";
    return overlap_ok && beats_extremes ? 0 : 1;
}
