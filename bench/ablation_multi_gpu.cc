/**
 * @file
 * Ablation (paper §3.4 / §6.7): measurement-driven choice of the
 * data-parallelism degree.
 *
 * "The deterministic adaptation aspect of Astra can be extended to
 * explore dimensions such as ... data partitioning in multi-GPU jobs."
 * For each global batch size, every feasible degree is *run* (tuned
 * per-device mini-batch on the simulator + ring allreduce of the
 * gradients over a PCIe-class link) and the best-throughput degree is
 * picked from measurements. Small models with big gradient volumes
 * stop scaling early; the crossover moves with the global batch.
 */
#include "bench/common.h"
#include "core/data_parallel.h"

using namespace astra;
using namespace astra::bench;

int
main()
{
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.features = features_fk();
    InterconnectConfig net;  // PCIe-class ring

    TextTable table(
        "Ablation (paper §3.4): measured data-parallel scaling, "
        "subLSTM (hidden 512), ring allreduce at " +
        TextTable::fmt(net.link_gbps, 0) + " GB/s");
    table.set_header({"global batch", "G=1 ms", "G=2 ms", "G=4 ms",
                      "G=8 ms", "measured best"});
    const BatchGraphFn build = [](GraphBuilder& b, int64_t batch) {
        ModelConfig cfg;
        cfg.batch = batch;
        cfg.seq_len = 8;
        cfg.hidden = 512;
        cfg.embed_dim = 512;
        cfg.vocab = 2000;
        BuiltModel m = build_model(ModelKind::SubLstm, cfg);
        b = std::move(*m.builder);
    };
    for (const int64_t global : {32, 64, 128, 256}) {
        const auto points =
            measure_scaling(build, global, {1, 2, 4, 8}, opts, net);
        std::vector<std::string> cells = {std::to_string(global)};
        for (const ScalePoint& p : points)
            cells.push_back(TextTable::fmt(p.step_ns / 1e6, 2));
        while (cells.size() < 5)
            cells.push_back("-");
        const size_t best = best_degree(points, global);
        cells.push_back("G=" + std::to_string(points[best].degree));
        table.add_row(std::move(cells));
        std::cerr << "  [global batch " << global << " done]\n";
    }
    table.print();
    return 0;
}
