/**
 * @file
 * Tests for measurement-driven data-parallel scaling (§3.4 extension):
 * the allreduce model's algebra, scaling measurement mechanics, and
 * the communication/computation crossover that makes the degree a
 * quantity worth *measuring*.
 */
#include <gtest/gtest.h>

#include "core/data_parallel.h"
#include "models/models.h"

namespace astra {
namespace {

TEST(RingAllreduce, Algebra)
{
    InterconnectConfig net;
    net.link_gbps = 10.0;
    net.latency_us = 5.0;
    EXPECT_DOUBLE_EQ(ring_allreduce_ns(1 << 20, 1, net), 0.0);
    // 2 devices: 2*(1/2)*bytes/bw + 2*1*lat.
    const double two = ring_allreduce_ns(1 << 20, 2, net);
    EXPECT_DOUBLE_EQ(two, (1 << 20) / 10.0 + 2 * 5000.0);
    // Bandwidth term approaches 2x bytes/bw as G grows; latency grows
    // linearly, so time is monotone in G for fixed bytes.
    double prev = two;
    for (int g = 4; g <= 32; g *= 2) {
        const double t = ring_allreduce_ns(1 << 20, g, net);
        EXPECT_GT(t, prev);
        prev = t;
    }
    // More bytes, more time.
    EXPECT_GT(ring_allreduce_ns(2 << 20, 4, net),
              ring_allreduce_ns(1 << 20, 4, net));
}

BatchGraphFn
model_builder()
{
    return [](GraphBuilder& b, int64_t batch) {
        ModelConfig cfg;
        cfg.batch = batch;
        cfg.seq_len = 4;
        cfg.hidden = 64;
        cfg.embed_dim = 64;
        cfg.vocab = 100;
        BuiltModel m = build_model(ModelKind::SubLstm, cfg);
        b = std::move(*m.builder);
    };
}

TEST(DataParallel, MeasuresEveryFeasibleDegree)
{
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.features = features_fk();
    InterconnectConfig net;
    const auto points =
        measure_scaling(model_builder(), 32, {1, 2, 4, 3}, opts, net);
    // Degree 3 does not divide 32 and is skipped.
    ASSERT_EQ(points.size(), 3u);
    for (const ScalePoint& p : points) {
        EXPECT_GT(p.compute_ns, 0.0);
        EXPECT_GT(p.grad_bytes, 0);
        EXPECT_DOUBLE_EQ(p.step_ns, p.compute_ns + p.allreduce_ns);
    }
    EXPECT_DOUBLE_EQ(points[0].allreduce_ns, 0.0);  // G = 1
    // Gradient volume is batch-independent (parameters only).
    EXPECT_EQ(points[0].grad_bytes, points[2].grad_bytes);
    // Per-device compute shrinks with the per-device batch.
    EXPECT_LT(points[2].compute_ns, points[0].compute_ns);
}

TEST(DataParallel, CommunicationCreatesACrossover)
{
    // On a fast link, scaling out wins; on a very slow link, the
    // allreduce swamps the smaller per-device compute and the measured
    // best degree collapses back toward 1 — the cost-benefit dynamic
    // the paper says must be measured, not modelled.
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.features = features_fk();

    InterconnectConfig fast;
    fast.link_gbps = 100.0;
    fast.latency_us = 1.0;
    const auto fast_points =
        measure_scaling(model_builder(), 64, {1, 2, 4}, opts, fast);
    const size_t fast_best = best_degree(fast_points, 64);

    InterconnectConfig slow;
    slow.link_gbps = 0.05;
    slow.latency_us = 300.0;
    const auto slow_points =
        measure_scaling(model_builder(), 64, {1, 2, 4}, opts, slow);
    const size_t slow_best = best_degree(slow_points, 64);

    EXPECT_GT(fast_points[fast_best].degree,
              slow_points[slow_best].degree);
    EXPECT_EQ(slow_points[slow_best].degree, 1);
}

}  // namespace
}  // namespace astra
