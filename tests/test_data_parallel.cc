/**
 * @file
 * Tests for measured data-parallel execution (§3.4 extension): the
 * analytic ring formula's algebra (bit/byte units pinned by hand), the
 * multi-device measurement mechanics, allreduce/backward overlap, the
 * adaptive gradient-bucket choice, and the communication/computation
 * crossover that makes the degree a quantity worth *measuring*.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "core/data_parallel.h"
#include "core/search_space.h"
#include "models/models.h"
#include "sim/faults.h"

namespace astra {
namespace {

TEST(RingAllreduce, Algebra)
{
    InterconnectConfig net;
    net.link_gbps = 10.0;  // gigabits/s: 10 bits per ns
    net.latency_us = 5.0;
    EXPECT_DOUBLE_EQ(ring_allreduce_ns(1 << 20, 1, net), 0.0);
    // Hand-computed, 2 devices: the bandwidth term moves
    // 2*(G-1)/G = 1x the payload. 1 MiB = 2^20 bytes = 8*2^20 bits;
    // at 10 Gbit/s (10 bits/ns) that is 8*2^20/10 = 838860.8 ns, plus
    // 2*(G-1) = 2 latency hops of 5000 ns. A bytes/gbps formula (the
    // GB/s misreading this pins against) would claim 104857.6 ns —
    // 8x optimistic.
    const double two = ring_allreduce_ns(1 << 20, 2, net);
    EXPECT_DOUBLE_EQ(two, (1 << 20) * 8.0 / 10.0 + 2 * 5000.0);
    // Bandwidth term approaches 2x bytes/bw as G grows; latency grows
    // linearly, so time is monotone in G for fixed bytes.
    double prev = two;
    for (int g = 4; g <= 32; g *= 2) {
        const double t = ring_allreduce_ns(1 << 20, g, net);
        EXPECT_GT(t, prev);
        prev = t;
    }
    // More bytes, more time.
    EXPECT_GT(ring_allreduce_ns(2 << 20, 4, net),
              ring_allreduce_ns(1 << 20, 4, net));
}

BatchGraphFn
model_builder()
{
    return [](GraphBuilder& b, int64_t batch) {
        ModelConfig cfg;
        cfg.batch = batch;
        cfg.seq_len = 4;
        cfg.hidden = 64;
        cfg.embed_dim = 64;
        cfg.vocab = 100;
        BuiltModel m = build_model(ModelKind::SubLstm, cfg);
        b = std::move(*m.builder);
    };
}

AstraOptions
quiet_opts()
{
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    // Measured-overlap comparisons are exact only at base clock; the
    // noise CI job (ASTRA_SIM_AUTOBOOST) has its own suites.
    opts.gpu.autoboost = false;
    opts.features = features_fk();
    return opts;
}

TEST(DataParallel, MeasuresEveryFeasibleDegree)
{
    const AstraOptions opts = quiet_opts();
    InterconnectConfig net;
    const auto points =
        measure_scaling(model_builder(), 32, {1, 2, 4, 3}, opts, net);
    // Degree 3 does not divide 32 and is skipped.
    ASSERT_EQ(points.size(), 3u);
    for (const ScalePoint& p : points) {
        EXPECT_GT(p.compute_ns, 0.0);
        EXPECT_GT(p.grad_bytes, 0);
        // The step is executed, not summed from parts: it can never
        // beat pure compute, and the overlapped schedule the adaptive
        // layer picked can never lose to the serial baseline.
        EXPECT_GE(p.step_ns, p.compute_ns);
        EXPECT_LE(p.step_ns, p.serial_ns);
        if (p.degree == 1) {
            EXPECT_DOUBLE_EQ(p.step_ns, p.compute_ns);
            EXPECT_DOUBLE_EQ(p.comm_ns, 0.0);
        } else {
            EXPECT_GT(p.comm_ns, 0.0);
            EXPECT_GT(p.num_buckets, 0);
            EXPECT_GT(p.minibatches, 0);
        }
    }
    EXPECT_DOUBLE_EQ(points[0].allreduce_ns, 0.0);  // G = 1
    // Gradient volume is batch-independent (parameters only).
    EXPECT_EQ(points[0].grad_bytes, points[2].grad_bytes);
    // Per-device compute shrinks with the per-device batch.
    EXPECT_LT(points[2].compute_ns, points[0].compute_ns);
}

TEST(DataParallel, SkippedDegreesAreReportedNotJustLogged)
{
    // A sweep asked for degrees {3, 4} at global batch 16: degree 3
    // does not divide and must surface in the convergence report, not
    // vanish behind a log line someone scrolled past.
    const AstraOptions opts = quiet_opts();
    InterconnectConfig net;
    ConvergenceReport report;
    const auto points =
        measure_scaling(model_builder(), 16, {3, 4}, opts, net, &report);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].degree, 4);
    ASSERT_EQ(report.dp_skipped.size(), 1u);
    EXPECT_NE(report.dp_skipped[0].find("degree 3"), std::string::npos)
        << report.dp_skipped[0];
    EXPECT_NE(report.dp_skipped[0].find("16"), std::string::npos)
        << report.dp_skipped[0];

    // The diagnostics ride the report's JSON dump for fleet consumers.
    std::ostringstream os;
    report.write_json(os);
    EXPECT_NE(os.str().find("\"dp_skipped\""), std::string::npos);

    // Null report (the default) keeps the old warn-only behavior.
    const auto again =
        measure_scaling(model_builder(), 16, {3, 4}, opts, net);
    EXPECT_EQ(again.size(), 1u);
}

TEST(DataParallel, OverlapBeatsSerialAndAnalyticSum)
{
    const AstraOptions opts = quiet_opts();
    InterconnectConfig net;  // 12 Gbit/s: comm is worth hiding
    const auto points =
        measure_scaling(model_builder(), 32, {2}, opts, net);
    ASSERT_EQ(points.size(), 1u);
    const ScalePoint& p = points[0];
    // The tentpole claim: measured overlapped execution strictly beats
    // both the measured serial baseline and the analytic
    // compute-plus-allreduce sum the old model reported.
    EXPECT_LT(p.step_ns, p.serial_ns);
    EXPECT_LT(p.step_ns, p.compute_ns + p.allreduce_ns);
    EXPECT_GT(p.overlap_ns, 0.0);
    // The analytic formula stays honest as a cross-check: the measured
    // link busy time brackets it (same chunks, plus per-chunk launch
    // serialization on the comm stream).
    EXPECT_GT(p.comm_ns, 0.9 * p.allreduce_ns);
}

TEST(DataParallel, AdaptiveBucketChoiceIsNotWorseThanExtremes)
{
    const AstraOptions opts = quiet_opts();
    InterconnectConfig net;
    const int G = 2;
    const auto points =
        measure_scaling(model_builder(), 32, {G}, opts, net);
    ASSERT_EQ(points.size(), 1u);
    const ScalePoint& p = points[0];

    // Re-dispatch the fixed extremes through the same pipeline the
    // exploration used; the adaptively-chosen capacity can't lose to
    // either (it was picked by measured argmin over a superset).
    GraphBuilder b;
    model_builder()(b, 32 / G);
    AstraSession session(b.graph(), opts);
    const WirerResult wr = session.optimize();
    const ExecutionPlan plan = session.scheduler().build(wr.best_config);
    const TensorMap& tmap = session.tensor_map(wr.best_config.strategy);
    const DataParallelSpace dp = enumerate_dp_space(b.graph());
    ASSERT_GE(dp.bucket_options.size(), 2u);
    EXPECT_EQ(dp.grad_bytes, p.grad_bytes);

    auto run = [&](int64_t cap, FlushSchedule flush) {
        DpOptions dopts;
        dopts.degree = G;
        dopts.link = net;
        dopts.bucket_bytes = cap;
        dopts.flush = flush;
        return dispatch_plan_dp(plan, b.graph(), tmap, opts.gpu,
                                dp.grad_nodes, dopts);
    };
    const double one_bucket =
        run(dp.grad_bytes, FlushSchedule::Eager).step_ns;
    const double per_tensor = run(0, FlushSchedule::Eager).step_ns;
    EXPECT_LE(p.step_ns, one_bucket);
    EXPECT_LE(p.step_ns, per_tensor);
}

TEST(DataParallel, CommunicationCreatesACrossover)
{
    // On a fast link, scaling out wins; on a very slow link, the
    // allreduce swamps the smaller per-device compute and the measured
    // best degree collapses back toward 1 — the cost-benefit dynamic
    // the paper says must be measured, not modelled.
    const AstraOptions opts = quiet_opts();

    InterconnectConfig fast;
    fast.link_gbps = 400.0;
    fast.latency_us = 1.0;
    const auto fast_points =
        measure_scaling(model_builder(), 64, {1, 2, 4}, opts, fast);
    const size_t fast_best = best_degree(fast_points, 64);

    InterconnectConfig slow;
    slow.link_gbps = 0.05;
    slow.latency_us = 300.0;
    const auto slow_points =
        measure_scaling(model_builder(), 64, {1, 2, 4}, opts, slow);
    const size_t slow_best = best_degree(slow_points, 64);

    EXPECT_GT(fast_points[fast_best].degree,
              slow_points[slow_best].degree);
    EXPECT_EQ(slow_points[slow_best].degree, 1);
}

/** Tuned plan + map + gradient nodes for direct dp dispatches. */
struct DpHarness
{
    GraphBuilder b;
    std::unique_ptr<AstraSession> session;
    ExecutionPlan plan;
    DataParallelSpace dp;

    explicit DpHarness(const AstraOptions& opts)
    {
        model_builder()(b, 16);
        session = std::make_unique<AstraSession>(b.graph(), opts);
        const WirerResult wr = session->optimize();
        plan = session->scheduler().build(wr.best_config);
        dp = enumerate_dp_space(b.graph());
        strategy = wr.best_config.strategy;
    }

    DpResult
    run(const GpuConfig& cfg, const DpOptions& dopts) const
    {
        return dispatch_plan_dp(plan, b.graph(),
                                session->tensor_map(strategy), cfg,
                                dp.grad_nodes, dopts);
    }

    int strategy = 0;
};

TEST(DataParallel, CommFaultDegradesMeasuredLink)
{
    // A degraded interconnect (comm:x=4 on every hop) must show up in
    // the *measured* link busy time — same payload, slower chunks —
    // without perturbing compute or tripping the straggler machinery.
    const AstraOptions opts = quiet_opts();
    const DpHarness h(opts);
    DpOptions dopts;
    dopts.degree = 2;
    dopts.flush = FlushSchedule::Eager;
    const DpResult clean = h.run(opts.gpu, dopts);
    ASSERT_GT(clean.comm_ns, 0.0);

    GpuConfig degraded_cfg = opts.gpu;
    ASSERT_TRUE(
        FaultPlan::parse("seed=5;comm:p=1,x=4", &degraded_cfg.faults));
    const DpResult degraded = h.run(degraded_cfg, dopts);
    EXPECT_GT(degraded.comm_ns, clean.comm_ns);
    EXPECT_GE(degraded.step_ns, clean.step_ns);
    // The payload is a property of the model, not of link health.
    EXPECT_DOUBLE_EQ(degraded.comm_bytes, clean.comm_bytes);
    EXPECT_EQ(degraded.num_buckets, clean.num_buckets);
    EXPECT_FALSE(degraded.fell_back_serial);
}

TEST(DataParallel, PersistentStragglersTriggerSerialFallback)
{
    // One device salted into repeated latency spikes leaves its ring
    // neighbours waiting: the watchdog counts the late mirrors, and
    // past the threshold the dispatcher re-runs the step under the
    // serial (EndOfStep) schedule. With the fallback disabled the same
    // dispatch merely reports what it saw.
    const AstraOptions opts = quiet_opts();
    const DpHarness h(opts);
    GpuConfig cfg = opts.gpu;
    ASSERT_TRUE(
        FaultPlan::parse("seed=9;straggler:p=0.3,x=25", &cfg.faults));
    cfg.fault_salt = 5;  // nonzero: per-device salts diverge -> skew

    DpOptions dopts;
    dopts.degree = 4;
    dopts.flush = FlushSchedule::Eager;
    dopts.straggler_timeout_ns = 2000.0;
    dopts.straggler_fallback_threshold = 3;
    const DpResult r = h.run(cfg, dopts);
    EXPECT_GE(r.stragglers, 3);
    EXPECT_TRUE(r.fell_back_serial);
    EXPECT_GT(r.step_ns, 0.0);

    DpOptions detect_only = dopts;
    detect_only.serial_fallback = false;
    const DpResult d = h.run(cfg, detect_only);
    EXPECT_GE(d.stragglers, 3);
    EXPECT_FALSE(d.fell_back_serial);
}

TEST(DataParallel, BestDegreeAssertsOnEmptyInput)
{
    EXPECT_DEATH(best_degree({}, 32), "no scaling points");
}

TEST(DataParallel, DpSpaceBracketsTheExtremes)
{
    GraphBuilder b;
    model_builder()(b, 16);
    const DataParallelSpace dp = enumerate_dp_space(b.graph());
    EXPECT_FALSE(dp.grad_nodes.empty());
    EXPECT_GT(dp.grad_bytes, 0);
    ASSERT_GE(dp.bucket_options.size(), 2u);
    EXPECT_EQ(dp.bucket_options.front(), 0);          // per-tensor
    EXPECT_EQ(dp.bucket_options.back(), dp.grad_bytes);  // one bucket
    EXPECT_TRUE(std::is_sorted(dp.bucket_options.begin(),
                               dp.bucket_options.end()));
}

}  // namespace
}  // namespace astra
