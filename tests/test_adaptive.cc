/**
 * @file
 * Tests for the adaptive-variable / update-tree machinery (paper
 * §4.4.2) and the profile index with context-mangled keys (§4.6).
 * The trial-count assertions encode the paper's §4.5.1 arithmetic:
 * Parallel is additive (max), Exhaustive multiplicative, Prefix
 * summed.
 */
#include <gtest/gtest.h>

#include "core/adaptive.h"

namespace astra {
namespace {

TEST(ProfileIndex, RecordLookup)
{
    ProfileIndex idx;
    EXPECT_FALSE(idx.lookup("a").has_value());
    idx.record("a", 5.0);
    EXPECT_DOUBLE_EQ(*idx.lookup("a"), 5.0);
    // Repeated records accumulate; the default policy statistic is
    // the minimum (the paper's repeatable-at-base-clock value).
    idx.record("a", 3.0);
    EXPECT_DOUBLE_EQ(*idx.lookup("a"), 3.0);
    idx.record("a", 9.0);
    EXPECT_DOUBLE_EQ(*idx.lookup("a"), 3.0);
    EXPECT_TRUE(idx.contains("a"));
    EXPECT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx.samples("a"), 3);
    EXPECT_EQ(idx.total_samples(), 3);
}

TEST(ProfileIndex, BestChoice)
{
    ProfileIndex idx;
    EXPECT_EQ(idx.best_choice("k=", 3), -1);
    idx.record("k=0", 10.0);
    idx.record("k=2", 4.0);
    EXPECT_EQ(idx.best_choice("k=", 3), 2);
    idx.record("k=1", 1.0);
    EXPECT_EQ(idx.best_choice("k=", 3), 1);
}

TEST(ProfileIndex, ContextPrefixesIsolate)
{
    // §4.6: changing a higher-level binding changes the prefix, so
    // measurements under the old binding never alias the new ones.
    ProfileIndex idx;
    idx.record("s0|g1|lib=0", 7.0);
    EXPECT_FALSE(idx.contains("s1|g1|lib=0"));
    EXPECT_EQ(idx.best_choice("s1|g1|lib=", 3), -1);
    EXPECT_EQ(idx.best_choice("s0|g1|lib=", 3), 0);
}

TEST(AdaptiveVariable, IterateVisitsEveryOptionOnce)
{
    AdaptiveVariable v("x", 4, 1);
    v.initialize();
    std::vector<int> seen{v.current()};
    while (v.iterate())
        seen.push_back(v.current());
    seen.push_back(v.current());  // last iterate() still advanced? no:
    // iterate() returns false once all options are visited.
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_TRUE(v.finished());
    EXPECT_FALSE(v.iterate());
}

TEST(AdaptiveVariable, SingleOptionFinishesImmediately)
{
    AdaptiveVariable v("x", 1);
    v.initialize();
    EXPECT_TRUE(v.finished());
    EXPECT_FALSE(v.iterate());
}

TEST(AdaptiveVariable, ProfileKeysAndBestBinding)
{
    AdaptiveVariable v("g3|chunk", 3);
    v.set_context("s1|");
    EXPECT_EQ(v.profile_key_for(2), "s1|g3|chunk=2");
    ProfileIndex idx;
    idx.record("s1|g3|chunk=0", 9.0);
    idx.record("s1|g3|chunk=1", 2.0);
    idx.record("s1|g3|chunk=2", 5.0);
    EXPECT_TRUE(v.bind_best(idx));
    EXPECT_EQ(v.current(), 1);
    EXPECT_DOUBLE_EQ(v.get_profile_value(idx), 2.0);
}

TEST(AdaptiveVariable, BindBestWithoutDataKeepsDefault)
{
    AdaptiveVariable v("x", 3, 2);
    ProfileIndex idx;
    EXPECT_FALSE(v.bind_best(idx));
    EXPECT_EQ(v.current(), 2);
}

/**
 * Drives a tree the way the custom wirer does, recording a synthetic
 * metric for the current assignment each "mini-batch".
 */
struct Driver
{
    ProfileIndex idx;
    int trials = 0;

    /** metric(var) -> value recorded under the var's current key. */
    void
    run(UpdateNode& tree,
        const std::function<double(const AdaptiveVariable&)>& metric,
        int max_trials = 1000)
    {
        tree.initialize();
        while (trials < max_trials) {
            ++trials;
            tree.for_each_var([&](AdaptiveVariable& v) {
                idx.record(v.profile_key(), metric(v));
            });
            if (tree.finished())
                break;
            tree.advance(idx);
        }
        tree.bind_best(idx);
    }
};

TEST(UpdateTree, ParallelTrialsAreMaxNotProduct)
{
    // §4.5.1: 5 independent groups x (3 chunk options) explored in
    // parallel need 3 trials, not 3^5.
    std::vector<std::unique_ptr<UpdateNode>> leaves;
    std::vector<VarPtr> vars;
    for (int g = 0; g < 5; ++g) {
        auto v = std::make_shared<AdaptiveVariable>(
            "g" + std::to_string(g), 3);
        vars.push_back(v);
        leaves.push_back(UpdateNode::leaf(v));
    }
    auto tree = UpdateNode::composite(UpdateNode::Mode::Parallel,
                                      std::move(leaves));
    EXPECT_EQ(tree->max_trials(), 3);

    Driver d;
    // Best option differs per variable: g0 likes 0, g1 likes 1, ...
    d.run(*tree, [](const AdaptiveVariable& v) {
        const int want = v.key()[1] - '0';
        return v.current() == want % 3 ? 1.0 : 10.0;
    });
    EXPECT_EQ(d.trials, 3);
    for (int g = 0; g < 5; ++g)
        EXPECT_EQ(vars[static_cast<size_t>(g)]->current(), g % 3)
            << "g" << g;
}

TEST(UpdateTree, ExhaustiveCoversTheProduct)
{
    auto a = std::make_shared<AdaptiveVariable>("a", 2);
    auto bb = std::make_shared<AdaptiveVariable>("b", 3);
    std::vector<std::unique_ptr<UpdateNode>> leaves;
    leaves.push_back(UpdateNode::leaf(a));
    leaves.push_back(UpdateNode::leaf(bb));
    auto tree = UpdateNode::composite(UpdateNode::Mode::Exhaustive,
                                      std::move(leaves));
    EXPECT_EQ(tree->max_trials(), 6);
    std::set<std::pair<int, int>> combos;
    Driver d;
    tree->initialize();
    while (true) {
        ++d.trials;
        combos.insert({a->current(), bb->current()});
        d.idx.record(a->profile_key(), a->current() == 1 ? 1.0 : 5.0);
        d.idx.record(bb->profile_key(), bb->current() == 2 ? 1.0 : 5.0);
        if (tree->finished())
            break;
        tree->advance(d.idx);
    }
    EXPECT_EQ(combos.size(), 6u);
}

TEST(UpdateTree, PrefixFreezesLeftToRight)
{
    // §4.5.4: epochs explored in order; each frozen at its best before
    // the next starts, and the binding extends later contexts.
    auto e0 = std::make_shared<AdaptiveVariable>("e0", 3);
    auto e1 = std::make_shared<AdaptiveVariable>("e1", 3);
    std::vector<std::unique_ptr<UpdateNode>> leaves;
    leaves.push_back(UpdateNode::leaf(e0));
    leaves.push_back(UpdateNode::leaf(e1));
    auto tree = UpdateNode::composite(UpdateNode::Mode::Prefix,
                                      std::move(leaves));
    std::vector<int> bound_order;
    tree->set_on_child_bound([&](int idx) {
        bound_order.push_back(idx);
        if (idx == 0)
            e1->set_context("e0b" + std::to_string(e0->current()) + "|");
    });
    EXPECT_EQ(tree->max_trials(), 6);

    Driver d;
    d.run(*tree, [&](const AdaptiveVariable& v) {
        if (v.key() == "e0")
            return v.current() == 2 ? 1.0 : 5.0;
        // e1's best depends on nothing here; pick option 1.
        return v.current() == 1 ? 1.0 : 5.0;
    });
    ASSERT_EQ(bound_order.size(), 2u);
    EXPECT_EQ(bound_order[0], 0);
    EXPECT_EQ(e0->current(), 2);
    EXPECT_EQ(e1->current(), 1);
    // e1's measurements were taken under the frozen-e0 context.
    EXPECT_TRUE(d.idx.contains("e0b2|e1=1"));
    // Total trials: 3 (e0) + handoff + 3 (e1) — bounded by a small
    // constant over the sum.
    EXPECT_LE(d.trials, 8);
}

TEST(UpdateTree, NestedParallelOfPrefixes)
{
    // The stream stage shape: Parallel over super-epochs, each a
    // Prefix of epochs. Trials = max over SEs of the summed options.
    std::vector<std::unique_ptr<UpdateNode>> ses;
    for (int se = 0; se < 3; ++se) {
        std::vector<std::unique_ptr<UpdateNode>> epochs;
        for (int e = 0; e < 2 + se; ++e)
            epochs.push_back(UpdateNode::leaf(
                std::make_shared<AdaptiveVariable>(
                    "se" + std::to_string(se) + "e" + std::to_string(e),
                    2)));
        ses.push_back(UpdateNode::composite(UpdateNode::Mode::Prefix,
                                            std::move(epochs)));
    }
    auto tree = UpdateNode::composite(UpdateNode::Mode::Parallel,
                                      std::move(ses));
    EXPECT_EQ(tree->max_trials(), 8);  // largest SE: 4 epochs x 2
    Driver d;
    d.run(*tree, [](const AdaptiveVariable& v) {
        return v.current() == 0 ? 1.0 : 2.0;
    });
    // Parallel across SEs: bounded by the largest prefix plus the
    // per-child handoff steps, far below the 2^9 flat product.
    EXPECT_LE(d.trials, 12);
}

TEST(UpdateTree, BindBestRecursive)
{
    auto a = std::make_shared<AdaptiveVariable>("a", 3);
    std::vector<std::unique_ptr<UpdateNode>> leaves;
    leaves.push_back(UpdateNode::leaf(a));
    auto tree = UpdateNode::composite(UpdateNode::Mode::Parallel,
                                      std::move(leaves));
    ProfileIndex idx;
    idx.record("a=2", 0.5);
    idx.record("a=0", 3.0);
    tree->bind_best(idx);
    EXPECT_EQ(a->current(), 2);
}

}  // namespace
}  // namespace astra
