/**
 * @file
 * Tests for the persistent plan/profile knowledge base: key
 * canonicalization, bit-exact entry round-trips, rejection of corrupt
 * or truncated entries (never a silent accept), the L1/L2/L3 lookup
 * ladder, the checked-in v1 compatibility fixture, and the end-to-end
 * warm-start story — a second process reuses a stored plan for the
 * price of one measured mini-batch, bit-identical to the cold winner.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/astra.h"
#include "core/config_io.h"
#include "core/plan_store.h"
#include "models/models.h"

namespace astra {
namespace {

namespace fs = std::filesystem;

/** Fresh per-test store directory under the test temp dir. */
fs::path
fresh_store_dir(const std::string& name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

BuiltModel
small_scrnn(int64_t hidden, int64_t seq = 4)
{
    return build_model(ModelKind::Scrnn,
                       {.batch = 8, .seq_len = seq, .hidden = hidden,
                        .embed_dim = hidden, .vocab = 50});
}

/** A representative entry exercising every serialized field. */
PlanStoreEntry
sample_entry()
{
    PlanStoreEntry e;
    e.key = {0x1111, 0x2222, 0x3333, 0x4444, 1.5e9};
    e.config.strategy = 1;
    e.config.elementwise_fusion = false;
    e.config.use_streams = true;
    e.config.num_streams = 3;
    e.config.group_chunk = {1, 4, 2};
    e.config.group_lib = {GemmLib::Oai2, GemmLib::Oai2, GemmLib::Cublas};
    e.config.single_lib[17] = GemmLib::Oai1;
    e.config.epoch_choice[{0, 2}] = 3;
    e.best_ns = 1.0 / 3.0;  // not representable in decimal
    e.minibatches = 1234;
    e.termination = "complete";
    MeasurementPolicy noisy;
    noisy.outlier_mad_k = 3.0;
    e.profile = ProfileIndex(noisy);
    e.profile.record("s0|fmm.x2|1", 100.25);
    e.profile.record("s0|fmm.x2|1", 101.5);
    e.profile.record("s0|fmm.x2|1", 99.875);
    e.profile.record("s0|lib g7|2", 0.1);  // key with spaces survives
    e.profile.record_fault("s0|bad|0");    // quarantined key
    return e;
}

void
expect_entries_equal(const PlanStoreEntry& a, const PlanStoreEntry& b)
{
    EXPECT_TRUE(a.key == b.key);
    EXPECT_EQ(a.key.total_flops, b.key.total_flops);  // bit-exact
    EXPECT_EQ(config_to_string(a.config), config_to_string(b.config));
    EXPECT_EQ(a.best_ns, b.best_ns);
    EXPECT_EQ(a.minibatches, b.minibatches);
    EXPECT_EQ(a.termination, b.termination);
    ASSERT_EQ(a.profile.size(), b.profile.size());
    EXPECT_EQ(a.profile.total_samples(), b.profile.total_samples());
    EXPECT_EQ(a.profile.total_faults(), b.profile.total_faults());
    EXPECT_EQ(a.profile.quarantined_keys(),
              b.profile.quarantined_keys());
    auto ita = a.profile.entries().begin();
    auto itb = b.profile.entries().begin();
    for (; ita != a.profile.entries().end(); ++ita, ++itb) {
        EXPECT_EQ(ita->first, itb->first);
        EXPECT_EQ(ita->second.count, itb->second.count);
        EXPECT_EQ(ita->second.rejected, itb->second.rejected);
        EXPECT_EQ(ita->second.faults, itb->second.faults);
        EXPECT_EQ(ita->second.min, itb->second.min);
        EXPECT_EQ(ita->second.max, itb->second.max);
        EXPECT_EQ(ita->second.mean, itb->second.mean);
        EXPECT_EQ(ita->second.m2, itb->second.m2);
        EXPECT_EQ(ita->second.window(), itb->second.window());
    }
}

TEST(PlanStoreKey, SameGraphSameKey)
{
    const BuiltModel a = small_scrnn(32);
    const BuiltModel b = small_scrnn(32);
    GpuConfig gpu;
    EXPECT_TRUE(make_plan_store_key(a.graph(), gpu) ==
                make_plan_store_key(b.graph(), gpu));
}

TEST(PlanStoreKey, WidthNeighborSharesShapeClassNotGraphSig)
{
    GpuConfig gpu;
    const PlanStoreKey k32 =
        make_plan_store_key(small_scrnn(32).graph(), gpu);
    const PlanStoreKey k48 =
        make_plan_store_key(small_scrnn(48).graph(), gpu);
    EXPECT_NE(k32.graph_sig, k48.graph_sig);
    EXPECT_EQ(k32.shape_class, k48.shape_class);
    EXPECT_EQ(k32.gpu_sig, k48.gpu_sig);
    EXPECT_EQ(k32.lib_sig, k48.lib_sig);
    EXPECT_LT(k32.total_flops, k48.total_flops);
}

TEST(PlanStoreKey, SeqLenChangesShapeClass)
{
    // A longer sequence unrolls to more nodes: a structurally
    // different graph, not a shape neighbor (documented limit).
    GpuConfig gpu;
    EXPECT_NE(make_plan_store_key(small_scrnn(32, 4).graph(), gpu)
                  .shape_class,
              make_plan_store_key(small_scrnn(32, 6).graph(), gpu)
                  .shape_class);
}

TEST(PlanStoreKey, TimingModelChangesGpuSigNoiseKnobsDoNot)
{
    const BuiltModel m = small_scrnn(32);
    GpuConfig gpu;
    const PlanStoreKey base = make_plan_store_key(m.graph(), gpu);

    GpuConfig faster = gpu;
    faster.hbm_gbps = gpu.hbm_gbps * 2;
    EXPECT_NE(base.gpu_sig,
              make_plan_store_key(m.graph(), faster).gpu_sig);

    // Noise/observability knobs perturb the exploration journey, not
    // the converged plan: same device class, same knowledge.
    GpuConfig noisy = gpu;
    noisy.autoboost = !gpu.autoboost;
    noisy.execute_kernels = !gpu.execute_kernels;
    noisy.collect_trace = !gpu.collect_trace;
    EXPECT_EQ(base.gpu_sig,
              make_plan_store_key(m.graph(), noisy).gpu_sig);
}

TEST(PlanStoreEntry, RoundTripBitExact)
{
    const PlanStoreEntry e = sample_entry();
    const std::string text = PlanStore::entry_to_string(e);
    PlanStoreEntry back;
    std::string error;
    ASSERT_TRUE(PlanStore::entry_from_string(text, &back, &error))
        << error;
    expect_entries_equal(e, back);
}

TEST(PlanStoreEntry, RoundTripMergedAndRejectedStats)
{
    // Statistics that went through the outlier test and a parallel
    // merge must survive persistence exactly: the warm-started wirer
    // trusts the restored Welford state as if it had measured itself.
    MeasurementPolicy noisy;
    noisy.outlier_mad_k = 3.0;
    noisy.outlier_min_window = 5;
    ProfileIndex shard_a(noisy), shard_b(noisy);
    for (int i = 0; i < 8; ++i)
        shard_a.record("s0|k|0", 100.0 + 0.125 * i);
    EXPECT_FALSE(shard_a.record("s0|k|0", 5000.0));  // rejected
    for (int i = 0; i < 4; ++i)
        shard_b.record("s1|k|0", 200.0 + 0.25 * i);
    shard_a.merge(shard_b);

    PlanStoreEntry e = sample_entry();
    e.profile = shard_a;
    PlanStoreEntry back;
    ASSERT_TRUE(PlanStore::entry_from_string(
        PlanStore::entry_to_string(e), &back));
    expect_entries_equal(e, back);
    EXPECT_EQ(back.profile.total_rejected(), 1);
    const ProfileStats* s = back.profile.stats("s0|k|0");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->count, 8);
    EXPECT_EQ(s->rejected, 1);
}

TEST(PlanStoreEntry, RejectsCorruptionTruncationAndVersionSkew)
{
    const PlanStoreEntry e = sample_entry();
    const std::string good = PlanStore::entry_to_string(e);

    // Every single-byte flip in the payload must fail the checksum
    // (sample a spread of offsets to keep the test fast).
    const size_t header_end = good.find('\n') + 1;
    for (size_t off = header_end; off < good.size();
         off += 1 + good.size() / 23) {
        std::string bad = good;
        bad[off] ^= 0x20;
        PlanStoreEntry probe;
        std::string error;
        EXPECT_FALSE(PlanStore::entry_from_string(bad, &probe, &error))
            << "flip at offset " << off << " accepted";
        EXPECT_NE(error.find("line"), std::string::npos) << error;
    }

    // Truncation at any point must fail (declared length unsatisfied).
    for (const size_t len :
         {size_t{0}, header_end / 2, header_end, good.size() / 2,
          good.size() - 1}) {
        PlanStoreEntry probe;
        probe.minibatches = 77;  // canary
        EXPECT_FALSE(PlanStore::entry_from_string(good.substr(0, len),
                                                  &probe));
        EXPECT_EQ(probe.minibatches, 77);  // untouched on failure
    }

    // Trailing garbage is not "close enough".
    PlanStoreEntry probe;
    EXPECT_FALSE(PlanStore::entry_from_string(good + "x", &probe));

    // A future version must be rejected, not misparsed.
    std::string v2 = good;
    v2.replace(v2.find("v1"), 2, "v2");
    EXPECT_FALSE(PlanStore::entry_from_string(v2, &probe));
}

TEST(PlanStore, LadderMissThenL3ThenL2ThenL1)
{
    const fs::path dir = fresh_store_dir("plan_store_ladder");
    PlanStore store(dir);

    const PlanStoreKey key = sample_entry().key;
    EXPECT_EQ(store.lookup(key).tier, StoreTier::Miss);

    ASSERT_TRUE(store.put(sample_entry()));

    // Exact key: L1, entry returned bit-exact — and via a *fresh*
    // instance, as a second process would see it.
    PlanStore fresh(dir);
    StoreLookup l1 = fresh.lookup(key);
    EXPECT_EQ(l1.tier, StoreTier::L1);
    EXPECT_TRUE(l1.errors.empty());
    expect_entries_equal(sample_entry(), l1.entry);

    // Same shape class / device / libraries, different graph: L2,
    // with the neighbor's entry and the library prior (Oai2 holds the
    // most wins in sample_entry's config).
    PlanStoreKey neighbor = key;
    neighbor.graph_sig = 0x9999;
    neighbor.total_flops = 2.5e9;
    StoreLookup l2 = fresh.lookup(neighbor);
    EXPECT_EQ(l2.tier, StoreTier::L2);
    EXPECT_EQ(l2.preferred_lib, static_cast<int>(GemmLib::Oai2));
    EXPECT_TRUE(sample_entry().key == l2.entry.key);

    // Different shape class on the same device/libraries: only the
    // per-library priors carry over.
    PlanStoreKey other = key;
    other.graph_sig = 0xaaaa;
    other.shape_class = 0xbbbb;
    StoreLookup l3 = fresh.lookup(other);
    EXPECT_EQ(l3.tier, StoreTier::L3);
    EXPECT_EQ(l3.preferred_lib, static_cast<int>(GemmLib::Oai2));

    // A different device class shares nothing.
    PlanStoreKey elsewhere = other;
    elsewhere.gpu_sig = 0xcccc;
    EXPECT_EQ(fresh.lookup(elsewhere).tier, StoreTier::Miss);
}

TEST(PlanStore, L2PicksNearestNeighborByFlops)
{
    const fs::path dir = fresh_store_dir("plan_store_nearest");
    PlanStore store(dir);
    PlanStoreEntry near = sample_entry();
    near.minibatches = 1;  // marker
    near.key.total_flops = 1.0e9;
    PlanStoreEntry far = sample_entry();
    far.minibatches = 2;  // marker
    far.key.graph_sig = 0x5555;
    far.key.total_flops = 64.0e9;
    ASSERT_TRUE(store.put(near));
    ASSERT_TRUE(store.put(far));

    PlanStoreKey probe = sample_entry().key;
    probe.graph_sig = 0x7777;
    probe.total_flops = 2.0e9;
    const StoreLookup hit = store.lookup(probe);
    EXPECT_EQ(hit.tier, StoreTier::L2);
    EXPECT_EQ(hit.entry.minibatches, 1);
}

TEST(PlanStore, CorruptEntryIsSurfacedNotSilentlyUsed)
{
    const fs::path dir = fresh_store_dir("plan_store_corrupt");
    PlanStore store(dir);
    const PlanStoreEntry e = sample_entry();
    ASSERT_TRUE(store.put(e));

    // Corrupt the entry on disk (flip one payload byte).
    const fs::path path = dir / PlanStore::entry_filename(e.key);
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        text.assign(std::istreambuf_iterator<char>(in), {});
    }
    text[text.size() - 2] ^= 0x01;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text;
    }

    const StoreLookup hit = store.lookup(e.key);
    EXPECT_NE(hit.tier, StoreTier::L1);
    ASSERT_FALSE(hit.errors.empty());
    EXPECT_NE(hit.errors[0].find(".plan"), std::string::npos)
        << hit.errors[0];
}

#ifdef ASTRA_TEST_DATA_DIR
TEST(PlanStoreCompat, GoldenV1FixtureLoads)
{
    // The checked-in fixture was written by the v1 writer when the
    // format was introduced; every future reader must keep loading it.
    const fs::path fixture =
        fs::path(ASTRA_TEST_DATA_DIR) / "plan_store_v1";
    std::ifstream in(fixture / "entry.plan", std::ios::binary);
    ASSERT_TRUE(in) << "missing fixture " << (fixture / "entry.plan");
    const std::string text(std::istreambuf_iterator<char>(in), {});

    PlanStoreEntry entry;
    std::string error;
    ASSERT_TRUE(PlanStore::entry_from_string(text, &entry, &error))
        << error;
    expect_entries_equal(sample_entry(), entry);
}

TEST(PlanStoreCompat, GoldenCorruptAndTruncatedFixturesRejected)
{
    const fs::path fixture =
        fs::path(ASTRA_TEST_DATA_DIR) / "plan_store_v1";
    for (const char* name : {"entry.corrupt", "entry.truncated"}) {
        std::ifstream in(fixture / name, std::ios::binary);
        ASSERT_TRUE(in) << "missing fixture " << (fixture / name);
        const std::string text(std::istreambuf_iterator<char>(in), {});
        PlanStoreEntry probe;
        std::string error;
        EXPECT_FALSE(
            PlanStore::entry_from_string(text, &probe, &error))
            << name << " accepted";
        EXPECT_FALSE(error.empty()) << name;
    }
}
#endif

TEST(PlanStoreWarmStart, SecondSessionHitsL1BitIdentical)
{
    const fs::path dir = fresh_store_dir("plan_store_warm");
    const BuiltModel m = small_scrnn(32);
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.gpu.autoboost = false;  // bit-exact reuse needs base clock
    opts.plan_store = dir.string();

    AstraSession cold(m.graph(), opts);
    const WirerResult first = cold.optimize();
    EXPECT_GT(first.minibatches, 10);
    EXPECT_TRUE(first.convergence.store_tier == "miss" ||
                first.convergence.store_tier == "l3");

    AstraSession warm(m.graph(), opts);
    const WirerResult second = warm.optimize();
    EXPECT_EQ(second.convergence.store_tier, "l1");
    EXPECT_EQ(second.minibatches, 1);
    EXPECT_EQ(config_to_string(second.best_config),
              config_to_string(first.best_config));
    EXPECT_DOUBLE_EQ(second.best_ns, first.best_ns);
}

TEST(PlanStoreWarmStart, L1VerificationDriftDemotesToWarmStart)
{
    const fs::path dir = fresh_store_dir("plan_store_drift");
    const BuiltModel m = small_scrnn(32);
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.gpu.autoboost = false;
    opts.plan_store = dir.string();

    AstraSession cold(m.graph(), opts);
    const WirerResult first = cold.optimize();
    EXPECT_GT(first.minibatches, 1);

    // Poison the stored timing: as if the entry was recorded on a
    // device whose clocks no longer match this one. The entry itself
    // stays structurally valid, so only the verification mini-batch
    // can notice.
    PlanStore store(dir.string());
    const PlanStoreKey key = make_plan_store_key(m.graph(), opts.gpu);
    StoreLookup hit = store.lookup(key);
    ASSERT_EQ(hit.tier, StoreTier::L1);
    hit.entry.best_ns *= 10.0;
    std::string err;
    ASSERT_TRUE(store.put(hit.entry, &err)) << err;

    AstraSession warm(m.graph(), opts);
    const WirerResult second = warm.optimize();
    // Drift beyond MeasurementPolicy::store_drift_rel must demote the
    // exact hit to a warm start instead of pinning the stale plan.
    EXPECT_EQ(second.convergence.store_tier, "l2");
    EXPECT_GT(second.minibatches, 1);
    EXPECT_EQ(second.convergence.store_drift_demotions, 1);
    bool mentioned = false;
    for (const std::string& e : second.convergence.store_errors)
        mentioned |= e.find("drift") != std::string::npos;
    EXPECT_TRUE(mentioned) << "store_errors must diagnose the drift";

    // The re-wiring writes the refreshed winner back: a third session
    // gets a clean L1 hit again.
    AstraSession third(m.graph(), opts);
    const WirerResult again = third.optimize();
    EXPECT_EQ(again.convergence.store_tier, "l1");
    EXPECT_EQ(again.convergence.store_drift_demotions, 0);
    EXPECT_EQ(again.minibatches, 1);
}

TEST(PlanStoreWarmStart, DriftCheckDisabledByNonPositiveMargin)
{
    const fs::path dir = fresh_store_dir("plan_store_drift_off");
    const BuiltModel m = small_scrnn(32);
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.gpu.autoboost = false;
    opts.plan_store = dir.string();
    opts.measurement.store_drift_rel = 0.0;  // trust any verified run

    AstraSession cold(m.graph(), opts);
    cold.optimize();
    PlanStore store(dir.string());
    StoreLookup hit =
        store.lookup(make_plan_store_key(m.graph(), opts.gpu));
    ASSERT_EQ(hit.tier, StoreTier::L1);
    hit.entry.best_ns *= 10.0;
    ASSERT_TRUE(store.put(hit.entry));

    AstraSession warm(m.graph(), opts);
    const WirerResult second = warm.optimize();
    EXPECT_EQ(second.convergence.store_tier, "l1");
    EXPECT_EQ(second.minibatches, 1);
    EXPECT_EQ(second.convergence.store_drift_demotions, 0);
}

TEST(PlanStoreWarmStart, WidthNeighborTransfersAtL2)
{
    const fs::path dir = fresh_store_dir("plan_store_l2");
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.gpu.autoboost = false;
    opts.plan_store = dir.string();

    const BuiltModel seen = small_scrnn(32);
    AstraSession first(seen.graph(), opts);
    const WirerResult cold = first.optimize();

    const BuiltModel neighbor = small_scrnn(48);
    AstraSession second(neighbor.graph(), opts);
    const WirerResult warm = second.optimize();
    EXPECT_EQ(warm.convergence.store_tier, "l2");
    EXPECT_GT(warm.convergence.store_transferred_bindings, 0);
    // Transfer must beat cold wiring by a wide margin.
    EXPECT_LT(warm.minibatches * 10, cold.minibatches);

    // Transfer freezes the neighbor's bindings and explores only the
    // residual space, so the config need not be bit-identical to a
    // cold wiring of the neighbor (that is L1's contract, not L2's) —
    // but the transferred plan must be competitive with it.
    AstraOptions no_store = opts;
    no_store.plan_store.clear();
    AstraSession ref(neighbor.graph(), no_store);
    const WirerResult gold = ref.optimize();
    EXPECT_LE(warm.best_ns, gold.best_ns * 1.05);
}

// ---- crash-safe / multi-writer atomicity -----------------------------

TEST(PlanStoreAtomicity, ConcurrentPutsNeverTearAnEntry)
{
    // Regression for the shared-temp-file hazard: with a path-derived
    // temp name, two concurrent writers of the same key open the SAME
    // temp file; after one renames it live, the other keeps appending
    // into the now-live inode, and every peer loads a torn entry.
    // Unique per-writer temp names make the last whole write win.
    const fs::path dir = fresh_store_dir("plan_store_concurrent");

    constexpr int kWriters = 4;
    constexpr int kRounds = 25;
    std::vector<std::thread> writers;
    std::atomic<int> put_failures{0};
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            PlanStore store(dir);  // one instance per "process"
            for (int i = 0; i < kRounds; ++i) {
                PlanStoreEntry e = sample_entry();
                e.minibatches = w * 1000 + i;  // writer-tagged payload
                std::string err;
                if (!store.put(e, &err))
                    put_failures.fetch_add(1);
            }
        });
    }
    // A concurrent reader must only ever observe Miss (before the
    // first rename lands) or a whole, checksum-valid entry.
    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread reader([&] {
        PlanStore store(dir);
        const PlanStoreKey key = sample_entry().key;
        while (!stop.load(std::memory_order_relaxed)) {
            const StoreLookup l = store.lookup(key);
            if (!l.errors.empty())
                torn.fetch_add(1);
        }
    });
    for (auto& t : writers)
        t.join();
    stop.store(true);
    reader.join();

    EXPECT_EQ(put_failures.load(), 0);
    EXPECT_EQ(torn.load(), 0);

    // The surviving entry is whole and carries one writer's tag.
    PlanStore fresh(dir);
    const StoreLookup final_hit = fresh.lookup(sample_entry().key);
    ASSERT_EQ(final_hit.tier, StoreTier::L1);
    EXPECT_TRUE(final_hit.errors.empty());
    const int tag = static_cast<int>(final_hit.entry.minibatches);
    EXPECT_GE(tag % 1000, 0);
    EXPECT_LT(tag % 1000, kRounds);
    EXPECT_LT(tag / 1000, kWriters);

    // No temp residue: every writer either renamed or cleaned up.
    for (const auto& f : fs::directory_iterator(dir))
        EXPECT_EQ(f.path().string().find(".tmp."), std::string::npos)
            << f.path();
}

TEST(PlanStoreAtomicity, CrashedWriterLeavesStoreReadableAndWritable)
{
    // A writer that dies between temp-write and rename leaves a
    // *.tmp.* orphan (possibly a partial prefix of a valid entry).
    // The ladder must not read it, and later writers are unaffected.
    const fs::path dir = fresh_store_dir("plan_store_crashed");
    PlanStore store(dir);

    const std::string name =
        PlanStore::entry_filename(sample_entry().key);
    const std::string whole =
        PlanStore::entry_to_string(sample_entry());
    {
        std::ofstream os(dir / (name + ".tmp.deadbeefdeadbeef"),
                         std::ios::binary);
        os << whole.substr(0, whole.size() / 2);  // died mid-write
    }

    // The orphan is invisible at every tier (its name is not an entry
    // filename, so even the L2 directory scan skips it).
    StoreLookup l = store.lookup(sample_entry().key);
    EXPECT_EQ(l.tier, StoreTier::Miss);
    EXPECT_TRUE(l.errors.empty());

    // And a healthy writer simply supersedes the wreckage.
    ASSERT_TRUE(store.put(sample_entry()));
    l = store.lookup(sample_entry().key);
    ASSERT_EQ(l.tier, StoreTier::L1);
    expect_entries_equal(sample_entry(), l.entry);
}

}  // namespace
}  // namespace astra
