/**
 * @file
 * Unit tests for the support library: RNG determinism, statistics,
 * table rendering.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace astra {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = r.next_range(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    RunningStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(r.next_gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.05);
    EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStats, Percentile)
{
    RunningStats s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
    EXPECT_NEAR(s.percentile(0.99), 99.0, 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(RunningStats, CovZeroMean)
{
    RunningStats s;
    s.add(0.0);
    s.add(0.0);
    EXPECT_DOUBLE_EQ(s.cov(), 0.0);
}

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("Title");
    t.set_header({"name", "a", "b"});
    t.add_row("row1", {1.25, 2.5});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("row1"), std::string::npos);
    EXPECT_NE(out.find("1.25"), std::string::npos);
    EXPECT_NE(out.find("2.50"), std::string::npos);
}

TEST(TextTable, FmtDigits)
{
    EXPECT_EQ(TextTable::fmt(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace astra
