/**
 * @file
 * Unit tests for the support library: RNG determinism, statistics,
 * table rendering, thread pool.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace astra {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = r.next_range(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    RunningStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(r.next_gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.05);
    EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStats, Percentile)
{
    RunningStats s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
    EXPECT_NEAR(s.percentile(0.99), 99.0, 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(RunningStats, CovZeroMean)
{
    RunningStats s;
    s.add(0.0);
    s.add(0.0);
    EXPECT_DOUBLE_EQ(s.cov(), 0.0);
}

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("Title");
    t.set_header({"name", "a", "b"});
    t.add_row("row1", {1.25, 2.5});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("row1"), std::string::npos);
    EXPECT_NE(out.find("1.25"), std::string::npos);
    EXPECT_NE(out.find("2.50"), std::string::npos);
}

TEST(TextTable, FmtDigits)
{
    EXPECT_EQ(TextTable::fmt(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 4, 7}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threads(), std::max(1, threads));
        constexpr int64_t kN = 1000;
        std::vector<std::atomic<int>> hits(kN);
        pool.parallel_for(kN, [&](int64_t i) {
            hits[static_cast<size_t>(i)].fetch_add(1);
        });
        for (int64_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
                << "index " << i << " at " << threads << " threads";
    }
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    // With no workers the body must run on the calling thread, in
    // index order — the property that makes threads=1 the exact serial
    // loop.
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<int64_t> order;
    pool.parallel_for(16, [&](int64_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (int64_t i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // A strategy task batching its repeat measurements issues a nested
    // parallel_for on the same pool; caller-helping must keep it live
    // even when every worker is parked inside an outer task.
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    pool.parallel_for(8, [&](int64_t) {
        pool.parallel_for(8, [&](int64_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, FirstExceptionPropagates)
{
    ThreadPool pool(4);
    std::atomic<int64_t> ran{0};
    try {
        pool.parallel_for(64, [&](int64_t i) {
            ran.fetch_add(1);
            if (i == 13)
                throw std::runtime_error("boom");
        });
        FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom");
    }
    // The rest of the batch still completes (no partial abandon).
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ReusableAfterException)
{
    // Regression for the wirer's fault path: a shard that throws (a
    // dispatch whose fault budget is exhausted, a bind callback error)
    // must not deadlock or poison the pool — the same pool must run
    // subsequent batches to completion.
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        std::atomic<int64_t> ran{0};
        EXPECT_THROW(pool.parallel_for(32,
                                       [&](int64_t i) {
                                           ran.fetch_add(1);
                                           if (i % 7 == 0)
                                               throw std::runtime_error(
                                                   "shard failure");
                                       }),
                     std::runtime_error);
        EXPECT_EQ(ran.load(), 32);  // whole batch still drained
        std::atomic<int64_t> ok{0};
        pool.parallel_for(32, [&](int64_t) { ok.fetch_add(1); });
        EXPECT_EQ(ok.load(), 32);
    }
}

TEST(ThreadPool, EmptyAndSingleBatches)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallel_for(0, [&](int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallel_for(1, [&](int64_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace astra
