/**
 * @file
 * Custom-wirer tests: online exploration converges, is work-conserving
 * (every trial is a dispatched mini-batch), never regresses below the
 * default configuration, respects feature subsets (F/FK/FKS/all), and
 * keeps the exploration state space at the paper's few-hundred-to-
 * few-thousand scale (Table 7).
 */
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/astra.h"
#include "core/config_io.h"
#include "models/data.h"
#include "models/models.h"
#include "sim/faults.h"

namespace astra {
namespace {

BuiltModel
small_model(int64_t batch = 8)
{
    return build_model(ModelKind::SubLstm,
                       {.batch = batch, .seq_len = 4, .hidden = 32,
                        .embed_dim = 32, .vocab = 50});
}

AstraOptions
timing_only(AstraFeatures f)
{
    AstraOptions o;
    o.features = f;
    o.gpu.execute_kernels = false;
    // These tests assert exact convergence properties of the default
    // (one-measurement) policy, which the paper only claims at base
    // clock (§4.1/§7) — pin it even under the CI noise job. The
    // noise-robust policy is covered by test_profile_stats.
    o.gpu.autoboost = false;
    o.sched.super_epoch_ns = 150000.0;
    return o;
}

TEST(CustomWirer, BeatsNativeOnLaunchBoundModel)
{
    const BuiltModel m = small_model();
    AstraSession session(m.graph(), timing_only(features_all()));
    const double native = session.run_native().total_ns;
    const WirerResult r = session.optimize();
    EXPECT_LT(r.best_ns, native);
    EXPECT_GT(native / r.best_ns, 1.5);  // launch-bound: big headroom
}

TEST(CustomWirer, BestConfigReproducible)
{
    const BuiltModel m = small_model();
    AstraSession session(m.graph(), timing_only(features_all()));
    const WirerResult r = session.optimize();
    // The device is deterministic at base clock: re-running the best
    // config reproduces its measured time exactly (§4.1).
    EXPECT_DOUBLE_EQ(session.run(r.best_config).total_ns, r.best_ns);
}

TEST(CustomWirer, FeatureLadderMonotoneOnAverage)
{
    const BuiltModel m = small_model();
    double best_f, best_fk, best_fks, best_all;
    {
        AstraSession s(m.graph(), timing_only(features_f()));
        best_f = s.optimize().best_ns;
    }
    {
        AstraSession s(m.graph(), timing_only(features_fk()));
        best_fk = s.optimize().best_ns;
    }
    {
        AstraSession s(m.graph(), timing_only(features_fks()));
        best_fks = s.optimize().best_ns;
    }
    {
        AstraSession s(m.graph(), timing_only(features_all()));
        best_all = s.optimize().best_ns;
    }
    // More dimensions can only widen the explored space; the winner
    // can't get meaningfully slower (tiny profiling noise allowed).
    EXPECT_LE(best_fk, best_f * 1.02);
    EXPECT_LE(best_fks, best_fk * 1.02);
    EXPECT_LE(best_all, best_fks * 1.02);
}

TEST(CustomWirer, StateSpaceAtPaperScale)
{
    // Table 7: a few hundred to a few thousand configurations, each
    // explored in one mini-batch.
    const BuiltModel m = small_model();
    AstraSession fks(m.graph(), timing_only(features_fks()));
    const WirerResult r_fks = fks.optimize();
    AstraSession all(m.graph(), timing_only(features_all()));
    const WirerResult r_all = all.optimize();
    EXPECT_GT(r_fks.minibatches, 10);
    EXPECT_LT(r_fks.minibatches, 10000);
    // The alloc fork multiplies exploration (unless 1 strategy).
    EXPECT_GE(r_all.minibatches, r_fks.minibatches);
    EXPECT_EQ(r_all.strategy_ns.size(), all.space().strategies.size());
    for (double ns : r_all.strategy_ns)
        EXPECT_GT(ns, 0.0);
}

TEST(CustomWirer, WorkConservingBindCalledEveryTrial)
{
    const BuiltModel m = small_model();
    AstraSession session(m.graph(), timing_only(features_fk()));
    int64_t calls = 0;
    const WirerResult r = session.optimize(
        [&](const TensorMap&, int64_t mb) {
            EXPECT_EQ(mb, calls);
            ++calls;
        });
    EXPECT_EQ(calls, r.minibatches);
}

TEST(CustomWirer, ProfileIndexUsesContextPrefixes)
{
    const BuiltModel m = small_model();
    AstraOptions o = timing_only(features_all());
    o.context_prefix = "b42|";
    AstraSession session(m.graph(), o);
    const WirerResult r = session.optimize();
    EXPECT_GT(r.index.size(), 0u);
    for (const auto& [key, stats] : r.index.entries()) {
        EXPECT_EQ(key.rfind("b42|", 0), 0u)
            << "key missing bucket prefix: " << key;
        EXPECT_GT(stats.count, 0);
        EXPECT_GT(stats.min, 0.0);
    }
    // Keys under different strategies must be distinct (alloc fork).
    bool saw_s0 = false, saw_s1 = false;
    for (const auto& [key, stats] : r.index.entries()) {
        (void)stats;
        saw_s0 |= key.find("|s0|") != std::string::npos;
        saw_s1 |= key.find("|s1|") != std::string::npos;
    }
    EXPECT_TRUE(saw_s0);
    if (session.space().strategies.size() > 1) {
        EXPECT_TRUE(saw_s1);
    }
}

TEST(CustomWirer, KernelSelectionPicksMeasuredBest)
{
    // A single standalone GEMM with a strongly shape-biased winner:
    // the wirer must bind the library that measures fastest.
    GraphBuilder b;
    const NodeId x = b.input({64, 4096});
    const NodeId w = b.param({4096, 1024});
    const NodeId mm = b.matmul(x, w);  // deep-K: cuBLAS split-K wins
    b.graph().mark_output(mm);
    AstraOptions o = timing_only(features_fk());
    AstraSession session(b.graph(), o);
    ASSERT_EQ(session.space().single_mms.size(), 1u);
    const WirerResult r = session.optimize();
    const GemmLib chosen = r.best_config.single_lib.at(mm);
    // Verify against ground truth by measuring all three.
    double best = 1e30;
    GemmLib truth = GemmLib::Cublas;
    for (int lib = 0; lib < kNumGemmLibs; ++lib) {
        ScheduleConfig cfg = r.best_config;
        cfg.single_lib[mm] = static_cast<GemmLib>(lib);
        const double t = session.run(cfg).total_ns;
        if (t < best) {
            best = t;
            truth = static_cast<GemmLib>(lib);
        }
    }
    EXPECT_EQ(chosen, truth);
}

TEST(CustomWirer, StrategyComparisonPicksFastest)
{
    const BuiltModel m = small_model();
    AstraSession session(m.graph(), timing_only(features_all()));
    const WirerResult r = session.optimize();
    double manual_best = 1e30;
    for (double ns : r.strategy_ns)
        manual_best = std::min(manual_best, ns);
    EXPECT_DOUBLE_EQ(r.best_ns, manual_best);
}

std::string
report_json(const ConvergenceReport& rep)
{
    std::ostringstream os;
    rep.write_json(os);
    return os.str();
}

/** Two results must be the same bits, not merely close. */
void
expect_identical_results(const WirerResult& a, const WirerResult& b)
{
    EXPECT_EQ(config_to_string(a.best_config),
              config_to_string(b.best_config));
    EXPECT_DOUBLE_EQ(a.best_ns, b.best_ns);
    EXPECT_EQ(a.minibatches, b.minibatches);
    EXPECT_EQ(a.truncated, b.truncated);
    ASSERT_EQ(a.strategy_ns.size(), b.strategy_ns.size());
    for (size_t i = 0; i < a.strategy_ns.size(); ++i)
        EXPECT_DOUBLE_EQ(a.strategy_ns[i], b.strategy_ns[i]);
    // The merged profile index entry-for-entry, to the last bit.
    ASSERT_EQ(a.index.size(), b.index.size());
    EXPECT_EQ(a.index.total_samples(), b.index.total_samples());
    EXPECT_EQ(a.index.total_rejected(), b.index.total_rejected());
    auto it = b.index.entries().begin();
    for (const auto& [key, stats] : a.index.entries()) {
        ASSERT_EQ(key, it->first);
        EXPECT_EQ(stats.count, it->second.count);
        EXPECT_DOUBLE_EQ(stats.mean, it->second.mean);
        EXPECT_DOUBLE_EQ(stats.min, it->second.min);
        EXPECT_DOUBLE_EQ(stats.max, it->second.max);
        ++it;
    }
    // Full convergence history including the plan-cache tally.
    EXPECT_EQ(report_json(a.convergence), report_json(b.convergence));
}

TEST(CustomWirer, ParallelExplorationBitIdenticalToSerial)
{
    // The tentpole contract: exploration with worker threads must
    // reproduce the serial result exactly — winning configuration,
    // measured times, mini-batch accounting, profile index and the
    // whole convergence report.
    const BuiltModel m = build_model(
        ModelKind::StackedLstm, {.batch = 8, .seq_len = 4, .hidden = 32,
                                 .embed_dim = 32, .vocab = 50});
    AstraOptions serial_opts = timing_only(features_all());
    serial_opts.wirer_threads = 1;
    AstraSession serial_session(m.graph(), serial_opts);
    const WirerResult serial = serial_session.optimize();

    // The plan cache must be visibly exercised (warm fetch + one fetch
    // per dispatch: at least one hit per mini-batch after the first).
    EXPECT_GT(serial.convergence.plan_cache_misses, 0);
    EXPECT_GT(serial.convergence.plan_cache_hits, 0);
    EXPECT_GT(serial.convergence.plan_cache_hit_rate(), 0.5);

    for (int threads : {4, 7}) {
        AstraOptions opts = timing_only(features_all());
        opts.wirer_threads = threads;
        AstraSession session(m.graph(), opts);
        const WirerResult parallel = session.optimize();
        expect_identical_results(serial, parallel);
    }
}

TEST(CustomWirer, ParallelExplorationIdenticalWithBind)
{
    // With a bind callback repeats stay sequential within a strategy,
    // but distinct strategies still fan out; per-strategy mini-batch
    // numbering keeps the callback sequence deterministic.
    const BuiltModel m = small_model();
    auto run_with = [&](int threads) {
        AstraOptions o = timing_only(features_all());
        o.wirer_threads = threads;
        AstraSession session(m.graph(), o);
        return session.optimize([](const TensorMap&, int64_t) {});
    };
    const WirerResult serial = run_with(1);
    const WirerResult parallel = run_with(4);
    expect_identical_results(serial, parallel);
}

TEST(CustomWirer, ParallelSafetyValveDeterministic)
{
    // Truncation decisions come from the per-strategy budget quotas,
    // so even a budget-bound exploration is interleaving-independent.
    const BuiltModel m = small_model();
    auto run_with = [&](int threads) {
        AstraOptions o = timing_only(features_all());
        o.max_minibatches = 7;
        o.wirer_threads = threads;
        AstraSession session(m.graph(), o);
        return session.optimize();
    };
    const WirerResult serial = run_with(1);
    EXPECT_TRUE(serial.truncated);
    const WirerResult parallel = run_with(4);
    expect_identical_results(serial, parallel);
}

TEST(CustomWirer, BudgetTerminationSurfacesInReport)
{
    const BuiltModel m = small_model();
    AstraOptions o = timing_only(features_all());
    o.max_minibatches = 7;
    AstraSession session(m.graph(), o);
    const WirerResult r = session.optimize();
    EXPECT_TRUE(r.truncated);
    EXPECT_EQ(r.termination, WirerTermination::Budget);
    EXPECT_EQ(r.convergence.termination, "budget");
}

TEST(CustomWirer, FaultInjectionDeterministicAcrossThreads)
{
    // Fault draws are a pure function of (plan seed, strategy id,
    // per-strategy dispatch sequence) — never of thread interleaving —
    // so exploration under an armed plan keeps the parallel wirer's
    // bit-identity contract, fault accounting included (the fault
    // report rides in the convergence JSON compared below).
    const BuiltModel m = small_model();
    auto run_with = [&](int threads) {
        AstraOptions o = timing_only(features_all());
        EXPECT_TRUE(FaultPlan::parse(
            "seed=7;retries=4;kernel:p=0.01;straggler:p=0.002,x=5",
            &o.gpu.faults));
        o.wirer_threads = threads;
        AstraSession session(m.graph(), o);
        return session.optimize();
    };
    const WirerResult serial = run_with(1);
    EXPECT_GT(serial.convergence.faults.injected_kernel_faults, 0);
    EXPECT_GT(serial.convergence.faults.dispatch_retries, 0);
    for (int threads : {4, 7})
        expect_identical_results(serial, run_with(threads));
}

TEST(CustomWirer, FaultySweepConvergesToFaultFreeConfig)
{
    // The acceptance smoke: a full sweep under transient kernel
    // faults, one injected allocation failure and a rare straggler
    // spike completes without aborting, degrades allocation one rung
    // (bump -> reuse), quarantines nothing, and binds the same
    // configuration the fault-free sweep binds.
    const BuiltModel m = build_model(
        ModelKind::StackedLstm, {.batch = 8, .seq_len = 4, .hidden = 32,
                                 .embed_dim = 32, .vocab = 50});
    AstraOptions clean_opts = timing_only(features_all());
    clean_opts.gpu.faults = FaultPlan();  // pin against ASTRA_FAULTS
    AstraSession clean_session(m.graph(), clean_opts);
    const WirerResult clean = clean_session.optimize();
    EXPECT_EQ(clean.termination, WirerTermination::Complete);

    AstraOptions o = timing_only(features_all());
    ASSERT_TRUE(FaultPlan::parse(
        "seed=11;kernel:p=0.0005;alloc:at=0;straggler:p=0.00002,x=6",
        &o.gpu.faults));
    AstraSession session(m.graph(), o);
    // The injected allocation fault kills the bump plan; liveness-based
    // reuse (the next rung) absorbs it on every strategy.
    for (size_t s = 0; s < session.space().strategies.size(); ++s)
        EXPECT_EQ(session.plan_mode(static_cast<int>(s)),
                  MemoryPlanMode::Reuse);
    EXPECT_FALSE(session.used_recompute());

    const WirerResult r = session.optimize();
    EXPECT_EQ(config_to_string(r.best_config),
              config_to_string(clean.best_config));
    EXPECT_EQ(r.termination, WirerTermination::Complete);
    const FaultReport& fr = r.convergence.faults;
    EXPECT_GT(fr.injected_kernel_faults, 0);
    EXPECT_GT(fr.straggler_events, 0);
    EXPECT_GT(fr.dispatch_retries, 0);
    EXPECT_GT(fr.backoff_ns, 0.0);
    EXPECT_EQ(fr.faulted_minibatches, 0);  // retries recovered them all
    EXPECT_EQ(fr.quarantined_keys, 0);
}

TEST(CustomWirer, QuarantineTargetsOnlyFaultingKernels)
{
    // A kernel library that faults deterministically (p=1, filtered by
    // name) exhausts the dispatcher's and the wirer's retry budgets;
    // its profile keys must end up quarantined — marked, sample-free,
    // never bound — while every other library measures clean and the
    // fault-free winner still wins.
    GraphBuilder b;
    const NodeId x = b.input({64, 4096});
    const NodeId w = b.param({4096, 1024});
    const NodeId mm = b.matmul(x, w);
    b.graph().mark_output(mm);
    AstraSession clean_session(b.graph(), timing_only(features_fk()));
    const WirerResult clean = clean_session.optimize();
    const GemmLib winner = clean.best_config.single_lib.at(mm);
    ASSERT_NE(winner, GemmLib::Oai1) << "test premise: fault a loser";

    AstraOptions o = timing_only(features_fk());
    ASSERT_TRUE(FaultPlan::parse("seed=3;retries=2;kernel:name=oai_1,p=1",
                                 &o.gpu.faults));
    AstraSession session(b.graph(), o);
    const WirerResult r = session.optimize();
    EXPECT_EQ(r.best_config.single_lib.at(mm), winner);
    EXPECT_EQ(r.termination, WirerTermination::FaultQuarantine);
    EXPECT_EQ(r.convergence.termination, "fault_quarantine");

    // Profile keys encode the library choice as "lib=<enum>"; only
    // Oai1's keys (lib=1) may appear on the quarantine list.
    const std::vector<std::string> quarantined = r.index.quarantined_keys();
    ASSERT_FALSE(quarantined.empty());
    for (const std::string& key : quarantined)
        EXPECT_NE(key.find("lib=1"), std::string::npos)
            << "clean config quarantined: " << key;
    const FaultReport& fr = r.convergence.faults;
    EXPECT_EQ(fr.quarantined_keys,
              static_cast<int64_t>(quarantined.size()));
    EXPECT_GT(fr.faulted_minibatches, 0);
    EXPECT_GT(fr.wirer_retries, 0);
}

TEST(CustomWirer, CheckpointResumeBitIdenticalToUninterrupted)
{
    const BuiltModel m = small_model();
    const AstraOptions o = timing_only(features_all());
    AstraSession ref_session(m.graph(), o);
    const WirerResult ref = ref_session.optimize();

    // Kill exploration mid-run: the bind callback dies on its 11th
    // call. The per-strategy journals survive the unwind.
    AstraSession session(m.graph(), o);
    std::unique_ptr<CustomWirer> wirer = session.make_wirer();
    int64_t calls = 0;
    EXPECT_THROW(wirer->explore([&](const TensorMap&, int64_t) {
        if (++calls > 10)
            throw std::runtime_error("killed mid-exploration");
    }),
                 std::runtime_error);

    std::ostringstream os;
    wirer->checkpoint(os);
    WirerCheckpoint cp;
    ASSERT_TRUE(checkpoint_from_string(os.str(), &cp));
    ASSERT_FALSE(cp.empty());

    // A fresh process: new session, new wirer, replay the journal,
    // continue live. The resumed-and-completed run must be
    // indistinguishable from the uninterrupted one.
    AstraSession fresh(m.graph(), o);
    std::unique_ptr<CustomWirer> resumed = fresh.make_wirer();
    resumed->resume(std::move(cp));
    const WirerResult r = resumed->explore();
    EXPECT_GT(r.replayed_minibatches, 0);
    EXPECT_EQ(r.termination, WirerTermination::Complete);
    EXPECT_EQ(r.convergence.termination, "complete");
    expect_identical_results(ref, r);
}

}  // namespace
}  // namespace astra
