/**
 * @file
 * Custom-wirer tests: online exploration converges, is work-conserving
 * (every trial is a dispatched mini-batch), never regresses below the
 * default configuration, respects feature subsets (F/FK/FKS/all), and
 * keeps the exploration state space at the paper's few-hundred-to-
 * few-thousand scale (Table 7).
 */
#include <gtest/gtest.h>

#include <sstream>

#include "core/astra.h"
#include "core/config_io.h"
#include "models/data.h"
#include "models/models.h"

namespace astra {
namespace {

BuiltModel
small_model(int64_t batch = 8)
{
    return build_model(ModelKind::SubLstm,
                       {.batch = batch, .seq_len = 4, .hidden = 32,
                        .embed_dim = 32, .vocab = 50});
}

AstraOptions
timing_only(AstraFeatures f)
{
    AstraOptions o;
    o.features = f;
    o.gpu.execute_kernels = false;
    // These tests assert exact convergence properties of the default
    // (one-measurement) policy, which the paper only claims at base
    // clock (§4.1/§7) — pin it even under the CI noise job. The
    // noise-robust policy is covered by test_profile_stats.
    o.gpu.autoboost = false;
    o.sched.super_epoch_ns = 150000.0;
    return o;
}

TEST(CustomWirer, BeatsNativeOnLaunchBoundModel)
{
    const BuiltModel m = small_model();
    AstraSession session(m.graph(), timing_only(features_all()));
    const double native = session.run_native().total_ns;
    const WirerResult r = session.optimize();
    EXPECT_LT(r.best_ns, native);
    EXPECT_GT(native / r.best_ns, 1.5);  // launch-bound: big headroom
}

TEST(CustomWirer, BestConfigReproducible)
{
    const BuiltModel m = small_model();
    AstraSession session(m.graph(), timing_only(features_all()));
    const WirerResult r = session.optimize();
    // The device is deterministic at base clock: re-running the best
    // config reproduces its measured time exactly (§4.1).
    EXPECT_DOUBLE_EQ(session.run(r.best_config).total_ns, r.best_ns);
}

TEST(CustomWirer, FeatureLadderMonotoneOnAverage)
{
    const BuiltModel m = small_model();
    double best_f, best_fk, best_fks, best_all;
    {
        AstraSession s(m.graph(), timing_only(features_f()));
        best_f = s.optimize().best_ns;
    }
    {
        AstraSession s(m.graph(), timing_only(features_fk()));
        best_fk = s.optimize().best_ns;
    }
    {
        AstraSession s(m.graph(), timing_only(features_fks()));
        best_fks = s.optimize().best_ns;
    }
    {
        AstraSession s(m.graph(), timing_only(features_all()));
        best_all = s.optimize().best_ns;
    }
    // More dimensions can only widen the explored space; the winner
    // can't get meaningfully slower (tiny profiling noise allowed).
    EXPECT_LE(best_fk, best_f * 1.02);
    EXPECT_LE(best_fks, best_fk * 1.02);
    EXPECT_LE(best_all, best_fks * 1.02);
}

TEST(CustomWirer, StateSpaceAtPaperScale)
{
    // Table 7: a few hundred to a few thousand configurations, each
    // explored in one mini-batch.
    const BuiltModel m = small_model();
    AstraSession fks(m.graph(), timing_only(features_fks()));
    const WirerResult r_fks = fks.optimize();
    AstraSession all(m.graph(), timing_only(features_all()));
    const WirerResult r_all = all.optimize();
    EXPECT_GT(r_fks.minibatches, 10);
    EXPECT_LT(r_fks.minibatches, 10000);
    // The alloc fork multiplies exploration (unless 1 strategy).
    EXPECT_GE(r_all.minibatches, r_fks.minibatches);
    EXPECT_EQ(r_all.strategy_ns.size(), all.space().strategies.size());
    for (double ns : r_all.strategy_ns)
        EXPECT_GT(ns, 0.0);
}

TEST(CustomWirer, WorkConservingBindCalledEveryTrial)
{
    const BuiltModel m = small_model();
    AstraSession session(m.graph(), timing_only(features_fk()));
    int64_t calls = 0;
    const WirerResult r = session.optimize(
        [&](const TensorMap&, int64_t mb) {
            EXPECT_EQ(mb, calls);
            ++calls;
        });
    EXPECT_EQ(calls, r.minibatches);
}

TEST(CustomWirer, ProfileIndexUsesContextPrefixes)
{
    const BuiltModel m = small_model();
    AstraOptions o = timing_only(features_all());
    o.context_prefix = "b42|";
    AstraSession session(m.graph(), o);
    const WirerResult r = session.optimize();
    EXPECT_GT(r.index.size(), 0u);
    for (const auto& [key, stats] : r.index.entries()) {
        EXPECT_EQ(key.rfind("b42|", 0), 0u)
            << "key missing bucket prefix: " << key;
        EXPECT_GT(stats.count, 0);
        EXPECT_GT(stats.min, 0.0);
    }
    // Keys under different strategies must be distinct (alloc fork).
    bool saw_s0 = false, saw_s1 = false;
    for (const auto& [key, stats] : r.index.entries()) {
        (void)stats;
        saw_s0 |= key.find("|s0|") != std::string::npos;
        saw_s1 |= key.find("|s1|") != std::string::npos;
    }
    EXPECT_TRUE(saw_s0);
    if (session.space().strategies.size() > 1) {
        EXPECT_TRUE(saw_s1);
    }
}

TEST(CustomWirer, KernelSelectionPicksMeasuredBest)
{
    // A single standalone GEMM with a strongly shape-biased winner:
    // the wirer must bind the library that measures fastest.
    GraphBuilder b;
    const NodeId x = b.input({64, 4096});
    const NodeId w = b.param({4096, 1024});
    const NodeId mm = b.matmul(x, w);  // deep-K: cuBLAS split-K wins
    b.graph().mark_output(mm);
    AstraOptions o = timing_only(features_fk());
    AstraSession session(b.graph(), o);
    ASSERT_EQ(session.space().single_mms.size(), 1u);
    const WirerResult r = session.optimize();
    const GemmLib chosen = r.best_config.single_lib.at(mm);
    // Verify against ground truth by measuring all three.
    double best = 1e30;
    GemmLib truth = GemmLib::Cublas;
    for (int lib = 0; lib < kNumGemmLibs; ++lib) {
        ScheduleConfig cfg = r.best_config;
        cfg.single_lib[mm] = static_cast<GemmLib>(lib);
        const double t = session.run(cfg).total_ns;
        if (t < best) {
            best = t;
            truth = static_cast<GemmLib>(lib);
        }
    }
    EXPECT_EQ(chosen, truth);
}

TEST(CustomWirer, StrategyComparisonPicksFastest)
{
    const BuiltModel m = small_model();
    AstraSession session(m.graph(), timing_only(features_all()));
    const WirerResult r = session.optimize();
    double manual_best = 1e30;
    for (double ns : r.strategy_ns)
        manual_best = std::min(manual_best, ns);
    EXPECT_DOUBLE_EQ(r.best_ns, manual_best);
}

std::string
report_json(const ConvergenceReport& rep)
{
    std::ostringstream os;
    rep.write_json(os);
    return os.str();
}

/** Two results must be the same bits, not merely close. */
void
expect_identical_results(const WirerResult& a, const WirerResult& b)
{
    EXPECT_EQ(config_to_string(a.best_config),
              config_to_string(b.best_config));
    EXPECT_DOUBLE_EQ(a.best_ns, b.best_ns);
    EXPECT_EQ(a.minibatches, b.minibatches);
    EXPECT_EQ(a.truncated, b.truncated);
    ASSERT_EQ(a.strategy_ns.size(), b.strategy_ns.size());
    for (size_t i = 0; i < a.strategy_ns.size(); ++i)
        EXPECT_DOUBLE_EQ(a.strategy_ns[i], b.strategy_ns[i]);
    // The merged profile index entry-for-entry, to the last bit.
    ASSERT_EQ(a.index.size(), b.index.size());
    EXPECT_EQ(a.index.total_samples(), b.index.total_samples());
    EXPECT_EQ(a.index.total_rejected(), b.index.total_rejected());
    auto it = b.index.entries().begin();
    for (const auto& [key, stats] : a.index.entries()) {
        ASSERT_EQ(key, it->first);
        EXPECT_EQ(stats.count, it->second.count);
        EXPECT_DOUBLE_EQ(stats.mean, it->second.mean);
        EXPECT_DOUBLE_EQ(stats.min, it->second.min);
        EXPECT_DOUBLE_EQ(stats.max, it->second.max);
        ++it;
    }
    // Full convergence history including the plan-cache tally.
    EXPECT_EQ(report_json(a.convergence), report_json(b.convergence));
}

TEST(CustomWirer, ParallelExplorationBitIdenticalToSerial)
{
    // The tentpole contract: exploration with worker threads must
    // reproduce the serial result exactly — winning configuration,
    // measured times, mini-batch accounting, profile index and the
    // whole convergence report.
    const BuiltModel m = build_model(
        ModelKind::StackedLstm, {.batch = 8, .seq_len = 4, .hidden = 32,
                                 .embed_dim = 32, .vocab = 50});
    AstraOptions serial_opts = timing_only(features_all());
    serial_opts.wirer_threads = 1;
    AstraSession serial_session(m.graph(), serial_opts);
    const WirerResult serial = serial_session.optimize();

    // The plan cache must be visibly exercised (warm fetch + one fetch
    // per dispatch: at least one hit per mini-batch after the first).
    EXPECT_GT(serial.convergence.plan_cache_misses, 0);
    EXPECT_GT(serial.convergence.plan_cache_hits, 0);
    EXPECT_GT(serial.convergence.plan_cache_hit_rate(), 0.5);

    for (int threads : {4, 7}) {
        AstraOptions opts = timing_only(features_all());
        opts.wirer_threads = threads;
        AstraSession session(m.graph(), opts);
        const WirerResult parallel = session.optimize();
        expect_identical_results(serial, parallel);
    }
}

TEST(CustomWirer, ParallelExplorationIdenticalWithBind)
{
    // With a bind callback repeats stay sequential within a strategy,
    // but distinct strategies still fan out; per-strategy mini-batch
    // numbering keeps the callback sequence deterministic.
    const BuiltModel m = small_model();
    auto run_with = [&](int threads) {
        AstraOptions o = timing_only(features_all());
        o.wirer_threads = threads;
        AstraSession session(m.graph(), o);
        return session.optimize([](const TensorMap&, int64_t) {});
    };
    const WirerResult serial = run_with(1);
    const WirerResult parallel = run_with(4);
    expect_identical_results(serial, parallel);
}

TEST(CustomWirer, ParallelSafetyValveDeterministic)
{
    // Truncation decisions come from the per-strategy budget quotas,
    // so even a budget-bound exploration is interleaving-independent.
    const BuiltModel m = small_model();
    auto run_with = [&](int threads) {
        AstraOptions o = timing_only(features_all());
        o.max_minibatches = 7;
        o.wirer_threads = threads;
        AstraSession session(m.graph(), o);
        return session.optimize();
    };
    const WirerResult serial = run_with(1);
    EXPECT_TRUE(serial.truncated);
    const WirerResult parallel = run_with(4);
    expect_identical_results(serial, parallel);
}

}  // namespace
}  // namespace astra
