/**
 * @file
 * Autodiff tests: numeric gradient checks (finite differences vs the
 * generated backward pass, executed end-to-end through the simulator)
 * and structural properties (provenance mirroring, accumulation-chain
 * generation that the enumerator later mines as fusion ladders).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/autodiff.h"
#include "tests/util.h"

namespace astra {
namespace {

using testutil::Runner;

/** Tiny MLP with embedding-free inputs; returns loss + grads. */
struct TinyModel
{
    GraphBuilder b;
    NodeId x, w1, w2, labels, loss;
    BackwardResult grads;
};

TinyModel
make_tiny()
{
    TinyModel m;
    m.x = m.b.input({3, 4});
    m.w1 = m.b.param({4, 5});
    m.w2 = m.b.param({5, 6});
    const NodeId h = m.b.sigmoid(m.b.matmul(m.x, m.w1));
    const NodeId logits = m.b.matmul(h, m.w2);
    m.labels = m.b.input_ids(3, 6);
    m.loss = m.b.cross_entropy(logits, m.labels);
    m.grads = append_backward(m.b, m.loss);
    return m;
}

void
fill_tiny(const TinyModel& m, const Runner& r, Rng& rng)
{
    const Graph& g = m.b.graph();
    for (NodeId id : {m.x, m.w1, m.w2}) {
        float* p = r.tmap().f32(id);
        for (int64_t i = 0; i < g.node(id).desc.shape.numel(); ++i)
            p[i] = rng.next_float(-0.8f, 0.8f);
    }
    int32_t* lab = r.tmap().i32(m.labels);
    for (int64_t i = 0; i < 3; ++i)
        lab[i] = static_cast<int32_t>(rng.next_below(6));
}

TEST(Autodiff, EveryParamGetsAGradient)
{
    TinyModel m = make_tiny();
    EXPECT_EQ(m.grads.param_grads.size(), 2u);
    EXPECT_TRUE(m.grads.param_grads.count(m.w1));
    EXPECT_TRUE(m.grads.param_grads.count(m.w2));
    // Gradients are marked as graph outputs (kept live).
    const auto& outs = m.b.graph().outputs();
    for (const auto& [param, grad] : m.grads.param_grads) {
        (void)param;
        EXPECT_NE(std::find(outs.begin(), outs.end(), grad), outs.end());
    }
}

TEST(Autodiff, NumericGradientCheck)
{
    TinyModel m = make_tiny();
    Runner r(m.b.graph());
    Rng rng(99);
    fill_tiny(m, r, rng);
    r.run_native();
    const float base_loss = r.scalar(m.loss);
    ASSERT_TRUE(std::isfinite(base_loss));

    for (NodeId param : {m.w1, m.w2}) {
        const std::vector<float> grad =
            r.values(m.grads.param_grads.at(param));
        float* p = r.tmap().f32(param);
        const int64_t numel =
            m.b.graph().node(param).desc.shape.numel();
        // Spot-check several elements with central differences.
        for (int64_t i = 0; i < numel; i += numel / 5 + 1) {
            const float eps = 2e-3f;
            const float saved = p[i];
            p[i] = saved + eps;
            r.run_native();
            const float up = r.scalar(m.loss);
            p[i] = saved - eps;
            r.run_native();
            const float down = r.scalar(m.loss);
            p[i] = saved;
            const double numeric = (up - down) / (2.0 * eps);
            EXPECT_NEAR(grad[static_cast<size_t>(i)], numeric,
                        5e-2 * std::max(1.0, std::abs(numeric)))
                << "param %" << param << " elem " << i;
        }
    }
}

TEST(Autodiff, BackwardNodesInheritForwardScope)
{
    GraphBuilder b;
    NodeId x, w, mm;
    {
        GraphBuilder::Scoped s(b, "cell/t0");
        x = b.input({2, 3});
        w = b.param({3, 4});
        mm = b.matmul(x, w);
    }
    const NodeId logits = b.matmul(b.sigmoid(mm), b.param({4, 5}));
    const NodeId labels = b.input_ids(2, 5);
    const NodeId loss = b.cross_entropy(logits, labels);
    append_backward(b, loss);
    // Find a backward MatMul whose scope matches the forward cell.
    bool found = false;
    for (const Node& n : b.graph().nodes())
        if (n.pass == Pass::Backward && n.is_matmul() &&
            n.scope == "cell/t0")
            found = true;
    EXPECT_TRUE(found);
}

TEST(Autodiff, RecurrenceCreatesAccumulationChains)
{
    // Two timesteps sharing one weight: dW must be the sum of two
    // contributions, i.e. an Add over two backward MatMuls — the
    // pattern the enumerator mines as a fusion ladder (§4.4.1).
    GraphBuilder b;
    const NodeId w = b.param({4, 4});
    NodeId h = b.input({2, 4});
    for (int t = 0; t < 3; ++t) {
        GraphBuilder::Scoped s(b, "t" + std::to_string(t));
        h = b.tanh(b.matmul(h, w));
    }
    const NodeId labels = b.input_ids(2, 4);
    const NodeId loss = b.cross_entropy(h, labels);
    const BackwardResult grads = append_backward(b, loss);
    const NodeId dw = grads.param_grads.at(w);
    const Node& dw_node = b.graph().node(dw);
    ASSERT_EQ(dw_node.kind, OpKind::Add);
    // Walk the chain: expect >= 2 MatMul leaves.
    int mm_leaves = 0;
    std::vector<NodeId> stack{dw};
    while (!stack.empty()) {
        const Node& n = b.graph().node(stack.back());
        stack.pop_back();
        if (n.kind == OpKind::Add) {
            stack.push_back(n.inputs[0]);
            stack.push_back(n.inputs[1]);
        } else if (n.is_matmul()) {
            ++mm_leaves;
        }
    }
    EXPECT_EQ(mm_leaves, 3);
}

TEST(Autodiff, ConcatGradientIsSlices)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 3});
    const NodeId w1 = b.param({3, 2});
    const NodeId w2 = b.param({3, 3});
    const NodeId cat = b.concat({b.matmul(x, w1), b.matmul(x, w2)});
    const NodeId labels = b.input_ids(2, 5);
    const NodeId loss = b.cross_entropy(cat, labels);
    append_backward(b, loss);
    int slices = 0;
    for (const Node& n : b.graph().nodes())
        if (n.kind == OpKind::Slice && n.pass == Pass::Backward)
            ++slices;
    EXPECT_EQ(slices, 2);
}

TEST(Autodiff, EmbeddingGradNumeric)
{
    GraphBuilder b;
    const NodeId table = b.param({6, 4});
    const NodeId ids = b.input_ids(3, 6);
    const NodeId e = b.embedding(table, ids);
    const NodeId w = b.param({4, 5});
    const NodeId logits = b.matmul(e, w);
    const NodeId labels = b.input_ids(3, 5);
    const NodeId loss = b.cross_entropy(logits, labels);
    const BackwardResult grads = append_backward(b, loss);

    Runner r(b.graph());
    Rng rng(5);
    for (NodeId id : {table, w}) {
        float* p = r.tmap().f32(id);
        for (int64_t i = 0; i < b.graph().node(id).desc.shape.numel();
             ++i)
            p[i] = rng.next_float(-0.5f, 0.5f);
    }
    int32_t* idv = r.tmap().i32(ids);
    idv[0] = 2;
    idv[1] = 2;  // duplicate id: scatter-add must accumulate
    idv[2] = 4;
    int32_t* lab = r.tmap().i32(labels);
    lab[0] = 1;
    lab[1] = 0;
    lab[2] = 3;

    r.run_native();
    const std::vector<float> dtable =
        r.values(grads.param_grads.at(table));
    float* p = r.tmap().f32(table);
    const float eps = 2e-3f;
    // Row 2 col 1 (touched twice) and row 0 (untouched -> zero grad).
    const int64_t idx = 2 * 4 + 1;
    const float saved = p[idx];
    p[idx] = saved + eps;
    r.run_native();
    const float up = r.scalar(loss);
    p[idx] = saved - eps;
    r.run_native();
    const float down = r.scalar(loss);
    p[idx] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(dtable[idx], numeric,
                5e-2 * std::max(1.0, std::abs(numeric)));
    EXPECT_FLOAT_EQ(dtable[0], 0.0f);
}

}  // namespace
}  // namespace astra
