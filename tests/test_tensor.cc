/**
 * @file
 * Tests for shapes, host tensors, and the reference math routines.
 * Includes the parameterized GEMM sweep that validates all four
 * transpose specializations against the naive triple loop — and
 * asserts bit-identical accumulation order (the foundation of
 * Astra's value-preservation guarantees).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.h"
#include "tensor/math.h"
#include "tensor/tensor.h"

namespace astra {
namespace {

TEST(Shape, Basics)
{
    const Shape s{4, 8, 3};
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.numel(), 96);
    EXPECT_EQ(s.rows(), 32);
    EXPECT_EQ(s.cols(), 3);
    EXPECT_EQ(s.dim(0), 4);
    EXPECT_EQ(s.dim(-1), 3);
    EXPECT_EQ(s.key(), "4x8x3");
    EXPECT_EQ(s.to_string(), "[4, 8, 3]");
}

TEST(Shape, Equality)
{
    EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
    EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
}

TEST(TensorDesc, Bytes)
{
    const TensorDesc d{Shape{4, 4}, DType::F32};
    EXPECT_EQ(d.bytes(), 64u);
    const TensorDesc i{Shape{4}, DType::I64};
    EXPECT_EQ(i.bytes(), 32u);
}

TEST(DType, SizesAndNames)
{
    EXPECT_EQ(dtype_size(DType::F32), 4u);
    EXPECT_EQ(dtype_size(DType::F16), 2u);
    EXPECT_EQ(dtype_size(DType::I32), 4u);
    EXPECT_EQ(dtype_name(DType::F32), "f32");
}

TEST(HostTensor, FillAndDiff)
{
    HostTensor a({2, 3}), b({2, 3});
    a.fill(1.0f);
    b.fill(1.0f);
    EXPECT_TRUE(HostTensor::allclose(a, b));
    b.at(1, 2) = 2.0f;
    EXPECT_DOUBLE_EQ(HostTensor::max_abs_diff(a, b), 1.0);
    EXPECT_FALSE(HostTensor::allclose(a, b));
}

TEST(HostTensor, ShapeMismatchIsInfinite)
{
    HostTensor a({2, 2}), b({2, 3});
    EXPECT_TRUE(std::isinf(HostTensor::max_abs_diff(a, b)));
}

/** Naive reference used to cross-check the specialized kernels. */
void
naive_gemm(const float* a, bool ta, const float* b, bool tb, float* c,
           int64_t m, int64_t n, int64_t k, bool acc)
{
    for (int64_t r = 0; r < m; ++r)
        for (int64_t col = 0; col < n; ++col) {
            float s = acc ? c[r * n + col] : 0.0f;
            for (int64_t kk = 0; kk < k; ++kk) {
                const float av = ta ? a[kk * m + r] : a[r * k + kk];
                const float bv = tb ? b[col * k + kk] : b[kk * n + col];
                s += av * bv;
            }
            c[r * n + col] = s;
        }
}

struct GemmCase
{
    int64_t m, n, k;
    bool ta, tb, acc;
};

class GemmParam : public ::testing::TestWithParam<GemmCase>
{};

TEST_P(GemmParam, MatchesNaiveBitExactly)
{
    const GemmCase p = GetParam();
    Rng rng(static_cast<uint64_t>(p.m * 131 + p.n * 17 + p.k +
                                  p.ta * 2 + p.tb * 3 + p.acc * 5));
    std::vector<float> a(static_cast<size_t>(p.m * p.k));
    std::vector<float> b(static_cast<size_t>(p.k * p.n));
    std::vector<float> c1(static_cast<size_t>(p.m * p.n));
    std::vector<float> c2(static_cast<size_t>(p.m * p.n));
    for (auto& x : a)
        x = rng.next_float(-1, 1);
    for (auto& x : b)
        x = rng.next_float(-1, 1);
    for (size_t i = 0; i < c1.size(); ++i)
        c1[i] = c2[i] = rng.next_float(-1, 1);

    math::gemm(a.data(), p.ta, b.data(), p.tb, c1.data(), p.m, p.n, p.k,
               p.acc);
    naive_gemm(a.data(), p.ta, b.data(), p.tb, c2.data(), p.m, p.n, p.k,
               p.acc);
    for (size_t i = 0; i < c1.size(); ++i)
        ASSERT_EQ(c1[i], c2[i]) << "element " << i;  // bit-identical
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposeCases, GemmParam,
    ::testing::Values(GemmCase{4, 5, 6, false, false, false},
                      GemmCase{4, 5, 6, false, true, false},
                      GemmCase{4, 5, 6, true, false, false},
                      GemmCase{4, 5, 6, true, true, false},
                      GemmCase{7, 3, 9, false, false, true},
                      GemmCase{7, 3, 9, false, true, true},
                      GemmCase{7, 3, 9, true, false, true},
                      GemmCase{7, 3, 9, true, true, true},
                      GemmCase{1, 1, 1, false, false, false},
                      GemmCase{16, 16, 16, true, true, true},
                      GemmCase{2, 32, 8, true, false, false},
                      GemmCase{32, 2, 8, false, true, false}));

TEST(Math, Elementwise)
{
    const float a[4] = {1, -2, 3, -4};
    const float b[4] = {0.5, 0.5, 0.5, 0.5};
    float c[4];
    math::add(a, b, c, 4);
    EXPECT_FLOAT_EQ(c[1], -1.5f);
    math::sub(a, b, c, 4);
    EXPECT_FLOAT_EQ(c[0], 0.5f);
    math::mul(a, b, c, 4);
    EXPECT_FLOAT_EQ(c[2], 1.5f);
    math::scale(a, 2.0f, c, 4);
    EXPECT_FLOAT_EQ(c[3], -8.0f);
    math::relu(a, c, 4);
    EXPECT_FLOAT_EQ(c[1], 0.0f);
    EXPECT_FLOAT_EQ(c[2], 3.0f);
}

TEST(Math, SigmoidTanhRange)
{
    const float a[3] = {-10.0f, 0.0f, 10.0f};
    float c[3];
    math::sigmoid(a, c, 3);
    EXPECT_NEAR(c[0], 0.0f, 1e-4);
    EXPECT_FLOAT_EQ(c[1], 0.5f);
    EXPECT_NEAR(c[2], 1.0f, 1e-4);
    math::tanh(a, c, 3);
    EXPECT_NEAR(c[0], -1.0f, 1e-4);
    EXPECT_FLOAT_EQ(c[1], 0.0f);
}

TEST(Math, SoftmaxRowsSumToOne)
{
    Rng rng(3);
    std::vector<float> a(24), c(24);
    for (auto& x : a)
        x = rng.next_float(-5, 5);
    math::softmax_rows(a.data(), c.data(), 4, 6);
    for (int r = 0; r < 4; ++r) {
        float sum = 0;
        for (int j = 0; j < 6; ++j) {
            EXPECT_GT(c[r * 6 + j], 0.0f);
            sum += c[r * 6 + j];
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(Math, SoftmaxShiftInvariant)
{
    std::vector<float> a = {1, 2, 3, 1001, 1002, 1003};
    std::vector<float> c(6);
    math::softmax_rows(a.data(), c.data(), 2, 3);
    for (int j = 0; j < 3; ++j)
        EXPECT_NEAR(c[j], c[3 + j], 1e-6);
}

TEST(Math, EmbeddingGather)
{
    const float table[6] = {0, 1, 10, 11, 20, 21};  // 3 rows, width 2
    const int32_t ids[2] = {2, 0};
    float out[4];
    math::embedding(table, ids, out, 2, 2);
    EXPECT_FLOAT_EQ(out[0], 20.0f);
    EXPECT_FLOAT_EQ(out[1], 21.0f);
    EXPECT_FLOAT_EQ(out[2], 0.0f);
    EXPECT_FLOAT_EQ(out[3], 1.0f);
}

}  // namespace
}  // namespace astra
