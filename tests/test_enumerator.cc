/**
 * @file
 * Enumerator tests (paper §4.4.1): common-argument fusion-set mining,
 * fusion-ladder detection, provenance/independence filters, 2-D fusion
 * conflicts, single-tensor static resolution and allocation-strategy
 * forking (§4.5.2).
 */
#include <gtest/gtest.h>

#include <set>

#include "core/search_space.h"
#include "models/models.h"

namespace astra {
namespace {

TEST(Enumerator, MinesCommonArgumentSiblings)
{
    // The paper's own example: %10 = mm(%1, %5); %11 = mm(%1, %6).
    GraphBuilder b;
    const NodeId x = b.input({8, 16});
    const NodeId w1 = b.param({16, 32});
    const NodeId w2 = b.param({16, 32});
    const NodeId m1 = b.matmul(x, w1);
    const NodeId m2 = b.matmul(x, w2);
    const SearchSpace space = enumerate_search_space(b.graph());
    ASSERT_EQ(space.groups.size(), 1u);
    const FusionGroup& g = space.groups[0];
    EXPECT_EQ(g.kind, GroupKind::Batch);
    EXPECT_EQ(g.shared_pos, 0);
    EXPECT_EQ(g.shared_node, x);
    EXPECT_EQ(g.mms, (std::vector<NodeId>{m1, m2}));
    // Runs: the non-shared weights and the outputs.
    ASSERT_EQ(g.runs.size(), 2u);
    EXPECT_EQ(g.runs[0].members, (std::vector<NodeId>{w1, w2}));
    EXPECT_EQ(g.runs[1].members, (std::vector<NodeId>{m1, m2}));
    EXPECT_TRUE(space.single_mms.empty());
}

TEST(Enumerator, DependentSiblingsAreNotFused)
{
    // mm2 consumes mm1's output (transitively): no fusion.
    GraphBuilder b;
    const NodeId x = b.input({8, 8});
    const NodeId m1 = b.matmul(x, b.param({8, 8}));
    const NodeId h = b.sigmoid(m1);
    const NodeId m2 = b.matmul(x, b.matmul(h, b.param({8, 8})));
    (void)m2;
    const SearchSpace space = enumerate_search_space(b.graph());
    for (const FusionGroup& g : space.groups) {
        const bool has_m1 =
            std::count(g.mms.begin(), g.mms.end(), m1) > 0;
        const bool has_m2 =
            std::count(g.mms.begin(), g.mms.end(), m2) > 0;
        EXPECT_FALSE(has_m1 && has_m2);
    }
}

TEST(Enumerator, DifferentScopesAreNotFused)
{
    GraphBuilder b;
    const NodeId x = b.input({8, 16});
    NodeId m1, m2;
    {
        GraphBuilder::Scoped s(b, "encoder");
        m1 = b.matmul(x, b.param({16, 16}));
    }
    {
        GraphBuilder::Scoped s(b, "decoder");
        m2 = b.matmul(x, b.param({16, 16}));
    }
    (void)m1;
    (void)m2;
    const SearchSpace space = enumerate_search_space(b.graph());
    EXPECT_TRUE(space.groups.empty());
    EXPECT_EQ(space.single_mms.size(), 2u);
}

TEST(Enumerator, TimestepScopesDoFuse)
{
    // Provenance ignores unrolled-timestep components: the same cell
    // at t0/t1 is one provenance, enabling cross-timestep fusion sets
    // (the input-projection trick cuDNN uses for LSTMs).
    GraphBuilder b;
    const NodeId w = b.param({16, 16});
    NodeId m1, m2;
    {
        GraphBuilder::Scoped s(b, "cell/t0");
        m1 = b.matmul(b.input({8, 16}), w);
    }
    {
        GraphBuilder::Scoped s(b, "cell/t1");
        m2 = b.matmul(b.input({8, 16}), w);
    }
    const SearchSpace space = enumerate_search_space(b.graph());
    ASSERT_EQ(space.groups.size(), 1u);
    EXPECT_EQ(space.groups[0].mms, (std::vector<NodeId>{m1, m2}));
    // Shared second operand, no transpose: one tall GEMM.
    EXPECT_EQ(space.groups[0].axis, FusionAxis::MStack);
}

TEST(Enumerator, DifferentShapesAreNotFused)
{
    GraphBuilder b;
    const NodeId x = b.input({8, 16});
    b.matmul(x, b.param({16, 16}));
    b.matmul(x, b.param({16, 32}));
    const SearchSpace space = enumerate_search_space(b.graph());
    EXPECT_TRUE(space.groups.empty());
}

TEST(Enumerator, MinesFusionLadders)
{
    // %12 = add(%10, %11) over mm leaves (§4.4.1 ladder example).
    GraphBuilder b;
    const NodeId m1 = b.matmul(b.input({4, 8}), b.param({8, 8}));
    const NodeId m2 = b.matmul(b.input({4, 8}), b.param({8, 8}));
    const NodeId m3 = b.matmul(b.input({4, 8}), b.param({8, 8}));
    const NodeId s1 = b.add(m1, m2);
    const NodeId s2 = b.add(s1, m3);
    b.graph().mark_output(s2);
    const SearchSpace space = enumerate_search_space(b.graph());
    const FusionGroup* ladder = nullptr;
    for (const FusionGroup& g : space.groups)
        if (g.kind == GroupKind::Ladder)
            ladder = &g;
    ASSERT_NE(ladder, nullptr);
    EXPECT_EQ(ladder->mms, (std::vector<NodeId>{m1, m2, m3}));
    EXPECT_EQ(ladder->adds, (std::vector<NodeId>{s1, s2}));
}

TEST(Enumerator, LadderRejectedWhenLeafReused)
{
    GraphBuilder b;
    const NodeId m1 = b.matmul(b.input({4, 8}), b.param({8, 8}));
    const NodeId m2 = b.matmul(b.input({4, 8}), b.param({8, 8}));
    const NodeId s1 = b.add(m1, m2);
    b.sigmoid(m1);  // m1 escapes: fusing would lose its value
    b.graph().mark_output(s1);
    const SearchSpace space = enumerate_search_space(b.graph());
    for (const FusionGroup& g : space.groups)
        EXPECT_NE(g.kind, GroupKind::Ladder);
}

TEST(Enumerator, ChunkOptionsAscendWithOne)
{
    GraphBuilder b;
    const NodeId x = b.input({8, 16});
    std::vector<NodeId> mms;
    for (int i = 0; i < 8; ++i)
        mms.push_back(b.matmul(x, b.param({16, 16})));
    const SearchSpace space = enumerate_search_space(b.graph());
    ASSERT_EQ(space.groups.size(), 1u);
    const auto& opts = space.groups[0].chunk_options;
    ASSERT_GE(opts.size(), 2u);
    EXPECT_EQ(opts.front(), 1);
    EXPECT_EQ(opts.back(), 8);
    EXPECT_TRUE(std::is_sorted(opts.begin(), opts.end()));
    EXPECT_LE(opts.size(), 4u);
}

TEST(Enumerator, MaxGroupSizeCaps)
{
    GraphBuilder b;
    const NodeId x = b.input({8, 16});
    for (int i = 0; i < 30; ++i)
        b.matmul(x, b.param({16, 16}));
    EnumeratorOptions opts;
    opts.max_group_size = 6;
    const SearchSpace space = enumerate_search_space(b.graph(), opts);
    for (const FusionGroup& g : space.groups)
        EXPECT_LE(g.mms.size(), 6u);
}

TEST(Enumerator, TwoDimensionalConflictForksStrategies)
{
    // The Fig. 1 situation: the same tensors are groupable along two
    // axes. Rows: mm(x_t, W_g) shares x_t across g (per-t batch);
    // columns: an add-chain per g across t (per-g ladder). The ladders
    // want {y_g_t for t} adjacent; the batches want outputs {y_g_t for
    // g} adjacent -> overlap of 2+ tensors -> strategy fork.
    GraphBuilder b;
    constexpr int kT = 3, kG = 3;
    NodeId x[kT];
    NodeId w[kG];
    for (int t = 0; t < kT; ++t)
        x[t] = b.input({4, 8});
    for (int g = 0; g < kG; ++g)
        w[g] = b.param({8, 8});
    NodeId y[kT][kG];
    for (int t = 0; t < kT; ++t) {
        GraphBuilder::Scoped s(b, "t" + std::to_string(t));
        for (int g = 0; g < kG; ++g)
            y[t][g] = b.matmul(x[t], w[g]);
    }
    // Ladder per g across t (like dW accumulation).
    for (int g = 0; g < kG; ++g) {
        NodeId acc = b.add(y[0][g], y[1][g]);
        acc = b.add(acc, y[2][g]);
        b.graph().mark_output(acc);
    }
    const SearchSpace space = enumerate_search_space(b.graph());
    int batches = 0, ladders = 0;
    for (const FusionGroup& g : space.groups) {
        batches += g.kind == GroupKind::Batch;
        ladders += g.kind == GroupKind::Ladder;
    }
    EXPECT_GE(batches, kT);
    EXPECT_GE(ladders, kG);
    // The member-sharing conflict must fork the allocation space.
    EXPECT_GE(space.strategies.size(), 2u);
    // And within any one strategy, enabled groups never share a GEMM.
    for (const AllocStrategy& s : space.strategies) {
        std::set<NodeId> used;
        for (const FusionGroup& g : space.groups) {
            if (!s.group_enabled[static_cast<size_t>(g.id)])
                continue;
            for (NodeId mm : g.mms) {
                EXPECT_FALSE(used.count(mm));
                used.insert(mm);
            }
        }
    }
}

TEST(Enumerator, StrategyRunsAreDisjoint)
{
    const BuiltModel m =
        build_model(ModelKind::SubLstm,
                    {.batch = 8, .seq_len = 4, .hidden = 64,
                     .embed_dim = 64, .vocab = 100});
    const SearchSpace space = enumerate_search_space(m.graph());
    for (const AllocStrategy& s : space.strategies) {
        std::set<NodeId> seen;
        for (const AdjacencyRun& r : s.runs)
            for (NodeId id : r.members) {
                EXPECT_FALSE(seen.count(id)) << "node %" << id;
                seen.insert(id);
            }
    }
}

TEST(Enumerator, LstmGateGroupsFound)
{
    const BuiltModel m =
        build_model(ModelKind::StackedLstm,
                    {.batch = 8, .seq_len = 3, .hidden = 64,
                     .embed_dim = 64, .vocab = 100, .layers = 2});
    const SearchSpace space = enumerate_search_space(m.graph());
    // Forward: per (layer, t) there is an x-gates group and an h-gates
    // group of 4 GEMMs each; plus backward groups/ladders.
    int forward_batch4 = 0;
    for (const FusionGroup& g : space.groups) {
        if (g.kind == GroupKind::Batch && g.mms.size() == 4 &&
            m.graph().node(g.mms[0]).pass == Pass::Forward)
            ++forward_batch4;
    }
    EXPECT_GE(forward_batch4, 2 * 3 * 2);  // layers x steps x {x,h}
    // Backward accumulation ladders across time must exist.
    int ladders = 0;
    for (const FusionGroup& g : space.groups)
        ladders += g.kind == GroupKind::Ladder;
    EXPECT_GT(ladders, 0);
}

TEST(Enumerator, GroupFlopsPopulated)
{
    GraphBuilder b;
    const NodeId x = b.input({8, 16});
    b.matmul(x, b.param({16, 32}));
    b.matmul(x, b.param({16, 32}));
    const SearchSpace space = enumerate_search_space(b.graph());
    ASSERT_EQ(space.groups.size(), 1u);
    EXPECT_DOUBLE_EQ(space.groups[0].flops, 2.0 * 2 * 8 * 32 * 16);
}

}  // namespace
}  // namespace astra
