/**
 * @file
 * Tests for the statistics-bearing profile index and measurement
 * policy: Welford accumulation, statistic selection (min vs mean), MAD
 * outlier rejection, noise-aware decisions, the wirer's graceful
 * safety-valve truncation, and the headline property — with autoboost
 * jitter enabled, the noise-robust policy converges to the same
 * configuration as a jitter-free run (paper §7's predictability
 * assumption, recovered by measurement instead of clock pinning).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/astra.h"
#include "core/config_io.h"
#include "core/profile_index.h"
#include "models/models.h"

namespace astra {
namespace {

TEST(ProfileStats, WelfordAccumulation)
{
    ProfileStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count, 8);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);  // population variance
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
    EXPECT_NEAR(s.cov(), 0.4, 1e-12);
}

TEST(ProfileStats, SingleSampleHasZeroVariance)
{
    ProfileStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean, 42.0);
    EXPECT_DOUBLE_EQ(s.min, 42.0);
    EXPECT_DOUBLE_EQ(s.max, 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(ProfileStats, MedianAndMadAreRobust)
{
    ProfileStats s;
    for (double x : {1.0, 2.0, 3.0, 4.0, 100.0})
        s.add(x);
    // The 100.0 outlier moves the mean but not the median/MAD.
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    EXPECT_DOUBLE_EQ(s.mad(), 1.0);  // |x - 3| = {2,1,0,1,97} -> 1
}

TEST(ProfileIndex, StatisticSelectsMinOrMean)
{
    MeasurementPolicy min_pol;  // default: Statistic::Min
    MeasurementPolicy mean_pol;
    mean_pol.statistic = Statistic::Mean;
    ProfileIndex by_min(min_pol);
    ProfileIndex by_mean(mean_pol);
    for (double x : {10.0, 20.0, 30.0}) {
        by_min.record("k", x);
        by_mean.record("k", x);
    }
    EXPECT_DOUBLE_EQ(*by_min.lookup("k"), 10.0);
    EXPECT_DOUBLE_EQ(*by_mean.lookup("k"), 20.0);
}

TEST(ProfileIndex, MadOutlierRejection)
{
    MeasurementPolicy p;
    p.outlier_mad_k = 3.5;
    p.outlier_min_window = 5;
    ProfileIndex idx(p);
    // Median 100, MAD 1 -> rejection threshold ~ 3.5 * 1.4826.
    for (double x : {100.0, 102.0, 98.0, 101.0, 99.0})
        EXPECT_TRUE(idx.record("k", x));
    // Window full: a wild sample is rejected, a nearby one accepted.
    EXPECT_FALSE(idx.record("k", 1000.0));
    EXPECT_EQ(idx.samples("k"), 5);
    EXPECT_EQ(idx.total_rejected(), 1);
    EXPECT_EQ(idx.stats("k")->rejected, 1);
    EXPECT_TRUE(idx.record("k", 100.5));
    EXPECT_EQ(idx.samples("k"), 6);
    // The rejected sample never contaminated the statistics.
    EXPECT_LT(idx.stats("k")->max, 200.0);
}

TEST(ProfileIndex, ExactRepeatsNeverRejected)
{
    // Base clock: every repeat is identical, MAD is exactly zero. The
    // relative floor must keep accepting them.
    MeasurementPolicy p;
    p.outlier_mad_k = 3.5;
    p.outlier_min_window = 5;
    ProfileIndex idx(p);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(idx.record("k", 7777.0));
    EXPECT_EQ(idx.samples("k"), 10);
    EXPECT_EQ(idx.total_rejected(), 0);
}

TEST(ProfileIndex, DecideRequiresMinSamples)
{
    MeasurementPolicy p;
    p.statistic = Statistic::Mean;
    p.min_samples = 3;
    p.noise_margin_sigmas = 1.0;
    ProfileIndex idx(p);
    idx.record("k=0", 10.0);
    idx.record("k=1", 20.0);
    ChoiceDecision d = idx.decide("k=", 2);
    EXPECT_EQ(d.choice, 0);
    EXPECT_EQ(d.runner_up, 1);
    EXPECT_FALSE(d.decisive);  // only one sample each
    // Two more samples each: deterministic values, zero noise -> the
    // ranking cannot change, so it becomes decisive.
    for (int i = 0; i < 2; ++i) {
        idx.record("k=0", 10.0);
        idx.record("k=1", 20.0);
    }
    d = idx.decide("k=", 2);
    EXPECT_TRUE(d.decisive);
    EXPECT_DOUBLE_EQ(d.separation, 10.0);
    EXPECT_DOUBLE_EQ(d.noise, 0.0);
}

TEST(ProfileIndex, DecideComparesSeparationToNoise)
{
    MeasurementPolicy p;
    p.statistic = Statistic::Mean;
    p.min_samples = 2;
    p.noise_margin_sigmas = 1.0;
    ProfileIndex idx(p);
    // Means 12 vs 13, each with variance 4 over 2 samples: the noise
    // scale is the standard error of the difference,
    // sqrt(4/2 + 4/2) = 2, and separation 1 is below it.
    idx.record("n=0", 10.0);
    idx.record("n=0", 14.0);
    idx.record("n=1", 11.0);
    idx.record("n=1", 15.0);
    ChoiceDecision d = idx.decide("n=", 2);
    EXPECT_EQ(d.choice, 0);
    EXPECT_NEAR(d.noise, 2.0, 1e-12);
    EXPECT_FALSE(d.decisive);
    // Same noise, wide separation: decisive.
    idx.record("w=0", 10.0);
    idx.record("w=0", 14.0);
    idx.record("w=1", 20.0);
    idx.record("w=1", 24.0);
    d = idx.decide("w=", 2);
    EXPECT_EQ(d.choice, 0);
    EXPECT_NEAR(d.separation, 10.0, 1e-12);
    EXPECT_TRUE(d.decisive);
}

TEST(ProfileIndex, DecideZeroNoiseTieIsDecisive)
{
    // A dead tie at zero observed noise must not demand endless
    // re-measurement: more samples cannot change the ranking.
    MeasurementPolicy p;
    p.min_samples = 2;
    p.noise_margin_sigmas = 2.0;
    ProfileIndex idx(p);
    for (int i = 0; i < 2; ++i) {
        idx.record("t=0", 5.0);
        idx.record("t=1", 5.0);
    }
    const ChoiceDecision d = idx.decide("t=", 2);
    EXPECT_EQ(d.choice, 0);
    EXPECT_DOUBLE_EQ(d.separation, 0.0);
    EXPECT_TRUE(d.decisive);
}

TEST(ProfileIndex, ResolutionFloorMergesSubEpsilonTies)
{
    // Two choices separated by 5 parts in 1e10 — real (nonzero, zero
    // observed noise) but far below the 1e-9 resolution floor. The
    // strict rule would chase the last ulp; with the floor the pair is
    // a tie, merged onto the lowest index, and settled.
    MeasurementPolicy p;
    p.statistic = Statistic::Mean;
    p.min_samples = 2;
    p.noise_margin_sigmas = 3.0;
    p.tie_epsilon_rel = 1e-9;
    ProfileIndex idx(p);
    for (int i = 0; i < 2; ++i) {
        idx.record("e=0", 100.0 * (1.0 + 5e-10));
        idx.record("e=1", 100.0);
    }
    const ChoiceDecision d = idx.decide("e=", 2);
    EXPECT_EQ(d.choice, 0);  // lowest index wins the tie
    EXPECT_TRUE(d.decisive);
    // A separation above the floor is not merged: the better choice
    // keeps winning regardless of index order.
    for (int i = 0; i < 2; ++i) {
        idx.record("f=0", 100.0 * (1.0 + 1e-6));
        idx.record("f=1", 100.0);
    }
    const ChoiceDecision real = idx.decide("f=", 2);
    EXPECT_EQ(real.choice, 1);
    EXPECT_TRUE(real.decisive);  // zero noise
}

TEST(ProfileStats, ParallelMergeMatchesSequentialAdds)
{
    // Chan et al. pairwise combine: merging two accumulators must give
    // the same moments as feeding all samples into one.
    const std::vector<double> left{2.0, 4.0, 4.0, 4.0};
    const std::vector<double> right{5.0, 5.0, 7.0, 9.0};
    ProfileStats a, b, all;
    for (double x : left) {
        a.add(x);
        all.add(x);
    }
    for (double x : right) {
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count, all.count);
    EXPECT_DOUBLE_EQ(a.min, all.min);
    EXPECT_DOUBLE_EQ(a.max, all.max);
    EXPECT_DOUBLE_EQ(a.mean, all.mean);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
    EXPECT_EQ(a.window().size(), all.window().size());
}

TEST(ProfileStats, MergeIntoEmptyAndFromEmpty)
{
    ProfileStats filled;
    filled.add(3.0);
    filled.add(5.0);

    ProfileStats empty;
    empty.merge(filled);
    EXPECT_EQ(empty.count, 2);
    EXPECT_DOUBLE_EQ(empty.mean, 4.0);

    ProfileStats copy = filled;
    copy.merge(ProfileStats{});
    EXPECT_EQ(copy.count, 2);
    EXPECT_DOUBLE_EQ(copy.mean, 4.0);
}

TEST(ProfileIndex, MergeOfDisjointShardsEqualsSerialIndex)
{
    // The parallel wirer's reduction: per-strategy shards have
    // disjoint keys (strategy context prefixes), so the merged index
    // must equal the one a serial run would have built.
    MeasurementPolicy p;
    ProfileIndex s0(p), s1(p), serial(p);
    s0.record("s0|a|0", 10.0);
    s0.record("s0|a|1", 12.0);
    s0.record("s0|a|0", 10.0);
    s1.record("s1|a|0", 20.0);
    serial.record("s0|a|0", 10.0);
    serial.record("s0|a|1", 12.0);
    serial.record("s0|a|0", 10.0);
    serial.record("s1|a|0", 20.0);

    ProfileIndex merged(p);
    merged.merge(s0);
    merged.merge(s1);
    EXPECT_EQ(merged.size(), serial.size());
    EXPECT_EQ(merged.total_samples(), serial.total_samples());
    EXPECT_EQ(merged.total_rejected(), serial.total_rejected());
    auto it = serial.entries().begin();
    for (const auto& [key, stats] : merged.entries()) {
        ASSERT_EQ(key, it->first);
        EXPECT_EQ(stats.count, it->second.count);
        EXPECT_DOUBLE_EQ(stats.mean, it->second.mean);
        EXPECT_DOUBLE_EQ(stats.min, it->second.min);
        EXPECT_DOUBLE_EQ(stats.max, it->second.max);
        ++it;
    }
}

TEST(ProfileIndex, DecideWithFewerThanTwoMeasured)
{
    MeasurementPolicy p;
    p.noise_margin_sigmas = 1.0;
    ProfileIndex idx(p);
    ChoiceDecision d = idx.decide("x=", 3);
    EXPECT_EQ(d.choice, -1);
    EXPECT_TRUE(d.decisive);
    idx.record("x=1", 4.0);
    d = idx.decide("x=", 3);
    EXPECT_EQ(d.choice, 1);
    EXPECT_EQ(d.runner_up, -1);
    EXPECT_TRUE(d.decisive);
}

BuiltModel
zoo_model(ModelKind kind)
{
    return build_model(kind,
                       {.batch = 8, .seq_len = 4, .hidden = 32,
                        .embed_dim = 32, .vocab = 50});
}

AstraOptions
timing_only()
{
    AstraOptions o;
    o.features = features_all();
    o.gpu.execute_kernels = false;
    o.gpu.autoboost = false;
    o.sched.super_epoch_ns = 150000.0;
    return o;
}

TEST(CustomWirer, SafetyValveTruncatesGracefully)
{
    // A tiny mini-batch budget used to trip an assertion mid-training;
    // now exploration stops, the best of what was measured is bound,
    // and the result is flagged.
    const BuiltModel m = zoo_model(ModelKind::SubLstm);
    AstraOptions o = timing_only();
    o.max_minibatches = 5;
    AstraSession session(m.graph(), o);
    const WirerResult r = session.optimize();
    EXPECT_TRUE(r.truncated);
    EXPECT_GT(r.best_ns, 0.0);
    // The truncated configuration is still dispatchable.
    EXPECT_GT(session.run(r.best_config).total_ns, 0.0);
}

TEST(CustomWirer, FullBudgetIsNotTruncated)
{
    const BuiltModel m = zoo_model(ModelKind::SubLstm);
    AstraSession session(m.graph(), timing_only());
    const WirerResult r = session.optimize();
    EXPECT_FALSE(r.truncated);
}

TEST(CustomWirer, NoiseRobustMatchesBaseClockOnStackedLstm)
{
    // The headline regression (ISSUE acceptance): under autoboost
    // clock jitter, the noise-robust wirer converges to exactly the
    // configuration the same wirer finds jitter-free. (The jitter-free
    // reference runs the same policy: its resolution floor settles
    // sub-rounding FP "preferences" identically in both runs, which a
    // strict last-ulp comparison by construction cannot.)
    const BuiltModel m = zoo_model(ModelKind::StackedLstm);

    AstraOptions ref_opts = timing_only();
    ref_opts.measurement = MeasurementPolicy::noise_robust();
    AstraSession ref_session(m.graph(), ref_opts);
    const WirerResult ref = ref_session.optimize();

    AstraOptions noisy = timing_only();
    noisy.gpu.autoboost = true;
    noisy.measurement = MeasurementPolicy::noise_robust();
    AstraSession noisy_session(m.graph(), noisy);
    const WirerResult got = noisy_session.optimize();

    EXPECT_EQ(config_to_string(got.best_config),
              config_to_string(ref.best_config));
    EXPECT_FALSE(got.truncated);

    // Robustness is bought with re-measurement mini-batches relative
    // to the paper's one-measurement regime.
    AstraOptions paper = timing_only();
    AstraSession paper_session(m.graph(), paper);
    const WirerResult once = paper_session.optimize();
    EXPECT_GE(got.minibatches, once.minibatches);
}

TEST(CustomWirer, ParallelExplorationIdenticalUnderAutoboost)
{
    // Determinism must also hold with clock jitter live: each strategy
    // owns a ClockDomain whose draw sequence depends only on that
    // strategy's measurement history, so the jittered measurements —
    // and everything downstream of them — are the same at any thread
    // count.
    const BuiltModel m = zoo_model(ModelKind::StackedLstm);
    auto run_with = [&](int threads) {
        AstraOptions o = timing_only();
        o.gpu.autoboost = true;
        o.measurement = MeasurementPolicy::noise_robust();
        o.wirer_threads = threads;
        AstraSession session(m.graph(), o);
        return session.optimize();
    };
    const WirerResult serial = run_with(1);
    const WirerResult parallel = run_with(4);
    EXPECT_EQ(config_to_string(parallel.best_config),
              config_to_string(serial.best_config));
    EXPECT_DOUBLE_EQ(parallel.best_ns, serial.best_ns);
    EXPECT_EQ(parallel.minibatches, serial.minibatches);
    EXPECT_EQ(parallel.index.total_samples(),
              serial.index.total_samples());
    EXPECT_EQ(parallel.index.total_rejected(),
              serial.index.total_rejected());
    ASSERT_EQ(parallel.strategy_ns.size(), serial.strategy_ns.size());
    for (size_t i = 0; i < serial.strategy_ns.size(); ++i)
        EXPECT_DOUBLE_EQ(parallel.strategy_ns[i],
                         serial.strategy_ns[i]);
    EXPECT_EQ(parallel.convergence.plan_cache_hits,
              serial.convergence.plan_cache_hits);
    EXPECT_EQ(parallel.convergence.plan_cache_misses,
              serial.convergence.plan_cache_misses);
}

}  // namespace
}  // namespace astra
