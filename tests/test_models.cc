/**
 * @file
 * Model-zoo tests: all five paper models build and validate, expose
 * the expected structure (per-gate GEMMs, embeddings, losses, cuDNN
 * coverage metadata), and train (loss decreases under SGD).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "models/data.h"
#include "models/models.h"
#include "tests/util.h"

namespace astra {
namespace {

using testutil::Runner;

class AllModels : public ::testing::TestWithParam<ModelKind>
{};

TEST_P(AllModels, BuildsAndValidates)
{
    ModelConfig cfg;
    cfg.batch = 4;
    cfg.seq_len = 3;
    cfg.hidden = 16;
    cfg.embed_dim = 16;
    cfg.vocab = 30;
    const BuiltModel m = build_model(GetParam(), cfg);
    m.graph().validate();
    EXPECT_GT(m.graph().size(), 20);
    EXPECT_NE(m.loss, kInvalidNode);
    EXPECT_FALSE(m.grads.param_grads.empty());
    // Backward exists and is bigger than forward (paper §5.1: ~2/3 of
    // compute is the backward pass).
    int fwd = 0, bwd = 0;
    for (const Node& n : m.graph().nodes())
        (n.pass == Pass::Forward ? fwd : bwd) += 1;
    EXPECT_GT(bwd, fwd / 2);
}

TEST_P(AllModels, ForwardBackwardProducesFiniteValues)
{
    ModelConfig cfg;
    cfg.batch = 4;
    cfg.seq_len = 3;
    cfg.hidden = 16;
    cfg.embed_dim = 16;
    cfg.vocab = 30;
    const BuiltModel m = build_model(GetParam(), cfg);
    Runner r(m.graph());
    Rng rng(3);
    bind_all(m.graph(), r.tmap(), rng);
    r.run_native();
    EXPECT_TRUE(std::isfinite(r.scalar(m.loss)));
    EXPECT_GT(r.scalar(m.loss), 0.0f);
    for (const auto& [param, grad] : m.grads.param_grads) {
        (void)param;
        for (float v : r.values(grad))
            ASSERT_TRUE(std::isfinite(v));
    }
}

TEST_P(AllModels, LossDecreasesUnderSgd)
{
    ModelConfig cfg;
    cfg.batch = 4;
    cfg.seq_len = 3;
    cfg.hidden = 16;
    cfg.embed_dim = 16;
    cfg.vocab = 20;
    const BuiltModel m = build_model(GetParam(), cfg);
    Runner r(m.graph());
    Rng rng(17);
    bind_all(m.graph(), r.tmap(), rng);  // one fixed batch, overfit it
    r.run_native();
    const float first = r.scalar(m.loss);
    for (int step = 0; step < 30; ++step) {
        apply_sgd(m.graph(), r.tmap(), m.grads.param_grads, 0.25f);
        r.run_native();
    }
    const float last = r.scalar(m.loss);
    EXPECT_LT(last, first * 0.9f) << model_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Zoo, AllModels,
                         ::testing::Values(ModelKind::Scrnn,
                                           ModelKind::MiLstm,
                                           ModelKind::SubLstm,
                                           ModelKind::StackedLstm,
                                           ModelKind::Gnmt,
                                           ModelKind::Rhn,
                                           ModelKind::AttnLstm),
                         [](const auto& info) {
                             std::string n = model_name(info.param);
                             std::erase(n, '-');
                             std::erase(n, '+');
                             return n;
                         });

TEST(Models, EmbeddingCanBeRemoved)
{
    ModelConfig cfg;
    cfg.batch = 4;
    cfg.seq_len = 3;
    cfg.hidden = 16;
    cfg.embed_dim = 16;
    cfg.include_embedding = false;
    const BuiltModel m = build_model(ModelKind::Scrnn, cfg);
    for (const Node& n : m.graph().nodes())
        EXPECT_NE(n.kind, OpKind::Embedding);
}

TEST(Models, CudnnCoverageMetadata)
{
    ModelConfig cfg;
    cfg.batch = 4;
    cfg.seq_len = 3;
    cfg.hidden = 16;
    cfg.embed_dim = 16;
    cfg.layers = 2;
    EXPECT_TRUE(build_model(ModelKind::Scrnn, cfg).cudnn_layers.empty());
    EXPECT_TRUE(build_model(ModelKind::MiLstm, cfg).cudnn_layers.empty());
    EXPECT_TRUE(
        build_model(ModelKind::SubLstm, cfg).cudnn_layers.empty());
    EXPECT_EQ(build_model(ModelKind::StackedLstm, cfg)
                  .cudnn_layers.size(), 2u);
    // GNMT: 4x encoder + 4x decoder layers ("8x more layers", §6.4).
    cfg.layers = 1;
    EXPECT_EQ(build_model(ModelKind::Gnmt, cfg).cudnn_layers.size(), 8u);
}

TEST(Models, LstmHasPerGateGemms)
{
    ModelConfig cfg;
    cfg.batch = 4;
    cfg.seq_len = 2;
    cfg.hidden = 16;
    cfg.embed_dim = 16;
    cfg.layers = 2;
    const BuiltModel m = build_model(ModelKind::StackedLstm, cfg);
    // 8 GEMMs (4 gates x {x,h}) per layer-step in the forward pass.
    int fwd_mms = 0;
    for (const Node& n : m.graph().nodes())
        if (n.is_matmul() && n.pass == Pass::Forward &&
            n.scope.find("layer") == 0)
            ++fwd_mms;
    EXPECT_EQ(fwd_mms, 8 * 2 * 2);
}

TEST(Models, RhnStructure)
{
    ModelConfig cfg;
    cfg.batch = 4;
    cfg.seq_len = 2;
    cfg.hidden = 16;
    cfg.embed_dim = 16;
    cfg.rhn_depth = 3;
    const BuiltModel m = build_model(ModelKind::Rhn, cfg);
    // Depth 0 has 4 GEMMs (x and s into h and t); deeper micro-steps
    // have 2 each: 4 + 2*(D-1) per timestep.
    int fwd_mms = 0;
    for (const Node& n : m.graph().nodes())
        if (n.is_matmul() && n.pass == Pass::Forward &&
            n.scope.rfind("rhn/", 0) == 0)
            ++fwd_mms;
    EXPECT_EQ(fwd_mms, 2 * (4 + 2 * 2));
    // Highway carry uses OneMinus.
    int one_minus = 0;
    for (const Node& n : m.graph().nodes())
        one_minus += n.kind == OpKind::OneMinus;
    EXPECT_GE(one_minus, 2 * 3);
    EXPECT_TRUE(m.cudnn_layers.empty());  // long tail: not covered
}

TEST(Data, PtbLengthsInRange)
{
    Rng rng(5);
    double mean = 0.0;
    int max_len = 0;
    constexpr int kN = 5000;
    for (int i = 0; i < kN; ++i) {
        const int len = sample_ptb_length(rng);
        EXPECT_GE(len, 4);
        EXPECT_LE(len, 83);
        mean += len;
        max_len = std::max(max_len, len);
    }
    mean /= kN;
    EXPECT_GT(mean, 15.0);
    EXPECT_LT(mean, 28.0);
    EXPECT_GT(max_len, 50);  // the tail exists
}

TEST(Data, BindInputsRespectsIdRange)
{
    GraphBuilder b;
    const NodeId ids = b.input_ids(100, 7);
    SimMemory mem(1 << 16);
    TensorMap tmap(b.graph(), mem);
    Rng rng(9);
    bind_inputs(b.graph(), tmap, rng);
    const int32_t* p = tmap.i32(ids);
    for (int i = 0; i < 100; ++i) {
        EXPECT_GE(p[i], 0);
        EXPECT_LT(p[i], 7);
    }
}

}  // namespace
}  // namespace astra
