/**
 * @file
 * Shared helpers for the test suite: a minimal value-executing runner
 * over the native plan, and tolerance-based comparisons.
 */
#pragma once

#include <memory>

#include "core/astra.h"
#include "runtime/dispatcher.h"
#include "runtime/native.h"

namespace astra::testutil {

/** Owns memory + tensor map for one graph and runs the native plan. */
class Runner
{
  public:
    explicit Runner(const Graph& graph,
                    std::vector<AdjacencyRun> runs = {})
        : graph_(graph),
          mem_(graph_tensor_bytes(graph) + (1 << 20)),
          tmap_(graph, mem_, runs)
    {
        cfg_.execute_kernels = true;
    }

    const TensorMap& tmap() const { return tmap_; }
    GpuConfig& config() { return cfg_; }

    DispatchResult
    run_native()
    {
        return dispatch_plan(native_plan(graph_), graph_, tmap_, cfg_);
    }

    DispatchResult
    run(const ExecutionPlan& plan)
    {
        return dispatch_plan(plan, graph_, tmap_, cfg_);
    }

    /** Scalar value of a [1]-shaped node (e.g. the loss). */
    float
    scalar(NodeId id) const
    {
        return tmap_.f32(id)[0];
    }

    /** Copy of a node's buffer. */
    std::vector<float>
    values(NodeId id) const
    {
        const int64_t n = graph_.node(id).desc.shape.numel();
        const float* p = tmap_.f32(id);
        return std::vector<float>(p, p + n);
    }

  private:
    const Graph& graph_;
    SimMemory mem_;
    TensorMap tmap_;
    GpuConfig cfg_;
};

/** Max absolute difference between two equally-sized vectors. */
inline double
max_abs_diff(const std::vector<float>& a, const std::vector<float>& b)
{
    if (a.size() != b.size())
        return 1e30;
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst,
                         std::abs(static_cast<double>(a[i]) - b[i]));
    return worst;
}

}  // namespace astra::testutil
