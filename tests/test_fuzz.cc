/**
 * @file
 * Randomized structural testing: generate random dataflow graphs
 * (seeded, reproducible), push them through the full pipeline —
 * enumerate, schedule under random configurations, dispatch with
 * values — and check the global invariants: every plan covers every
 * node exactly once in topological order, and every configuration is
 * bit-identical to the native dispatch. This is where grouping edge
 * cases the hand-written models never produce get caught.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "autodiff/autodiff.h"
#include "core/astra.h"
#include "graph/builder.h"
#include "models/data.h"
#include "tests/util.h"

namespace astra {
namespace {

/** Random layered DAG with fusable sibling GEMMs and add chains. */
GraphBuilder
random_graph(uint64_t seed)
{
    Rng rng(seed);
    GraphBuilder b;
    const int64_t dim = 8 << rng.next_below(2);  // 8 or 16
    const int64_t batch = 4;

    std::vector<NodeId> live;
    live.push_back(b.input({batch, dim}));
    live.push_back(b.input({batch, dim}));

    const int layers = 3 + static_cast<int>(rng.next_below(3));
    for (int layer = 0; layer < layers; ++layer) {
        GraphBuilder::Scoped scope(b, "L" + std::to_string(layer));
        const NodeId x =
            live[rng.next_below(live.size())];
        switch (rng.next_below(4)) {
          case 0: {  // sibling GEMMs off one operand (batch-fusable)
            const int n = 2 + static_cast<int>(rng.next_below(3));
            for (int i = 0; i < n; ++i)
                live.push_back(
                    b.sigmoid(b.matmul(x, b.param({dim, dim}))));
            break;
          }
          case 1: {  // accumulation ladder (ladder-fusable)
            const int n = 2 + static_cast<int>(rng.next_below(3));
            NodeId acc = b.matmul(x, b.param({dim, dim}));
            for (int i = 1; i < n; ++i)
                acc = b.add(acc, b.matmul(
                                     live[rng.next_below(live.size())],
                                     b.param({dim, dim})));
            live.push_back(acc);
            break;
          }
          case 2: {  // elementwise chain
            NodeId t = b.tanh(x);
            t = b.mul(t, x);
            t = b.scale(t, 0.5f);
            live.push_back(t);
            break;
          }
          default: {  // binary mix of two live values
            const NodeId y = live[rng.next_below(live.size())];
            live.push_back(b.add(x, y));
            break;
          }
        }
        if (live.size() > 6)
            live.erase(live.begin(),
                       live.begin() + static_cast<long>(live.size()) - 6);
    }
    // Loss head so autodiff applies.
    const NodeId logits = b.matmul(live.back(), b.param({dim, 24}));
    const NodeId labels = b.input_ids(batch, 24);
    const NodeId loss = b.cross_entropy(logits, labels);
    b.graph().mark_output(loss);
    append_backward(b, loss);
    return b;
}

class FuzzPipeline : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzPipeline, EveryConfigurationIsValueIdentical)
{
    GraphBuilder gb = random_graph(GetParam());
    const Graph& g = gb.graph();
    g.validate();

    // Native reference values.
    testutil::Runner native(g);
    Rng data_rng(GetParam() ^ 0xabcdef);
    bind_all(g, native.tmap(), data_rng);
    native.run_native();
    NodeId loss = kInvalidNode;
    for (const Node& n : g.nodes())
        if (n.kind == OpKind::CrossEntropy)
            loss = n.id;
    ASSERT_NE(loss, kInvalidNode);
    const float expect = native.scalar(loss);
    ASSERT_TRUE(std::isfinite(expect));

    const SearchSpace space = enumerate_search_space(g);
    SchedulerOptions sopts;
    sopts.super_epoch_ns = 50000.0;
    const Scheduler sched(g, space, sopts);

    Rng cfg_rng(GetParam() * 31 + 7);
    for (int trial = 0; trial < 6; ++trial) {
        ScheduleConfig cfg;
        cfg.strategy = static_cast<int>(
            cfg_rng.next_below(space.strategies.size()));
        cfg.elementwise_fusion = cfg_rng.next_below(2) == 0;
        cfg.use_streams = cfg_rng.next_below(2) == 0;
        cfg.group_chunk.assign(space.groups.size(), 1);
        cfg.group_lib.assign(space.groups.size(), GemmLib::Cublas);
        for (const FusionGroup& grp : space.groups) {
            cfg.group_chunk[static_cast<size_t>(grp.id)] =
                grp.chunk_options[cfg_rng.next_below(
                    grp.chunk_options.size())];
            cfg.group_lib[static_cast<size_t>(grp.id)] =
                static_cast<GemmLib>(cfg_rng.next_below(kNumGemmLibs));
        }

        // Coverage + order invariant.
        const auto units = sched.build_units(cfg);
        std::set<NodeId> covered;
        for (const PlanStep& u : units)
            for (NodeId id : u.nodes) {
                ASSERT_FALSE(covered.count(id));
                covered.insert(id);
            }
        for (const Node& n : g.nodes())
            if (!op_is_source(n.kind)) {
                ASSERT_TRUE(covered.count(n.id)) << "node %" << n.id;
            }

        // Value invariant, on the strategy's own layout.
        testutil::Runner cand(
            g, space.strategies[static_cast<size_t>(cfg.strategy)].runs);
        Rng data_rng2(GetParam() ^ 0xabcdef);
        bind_all(g, cand.tmap(), data_rng2);
        cand.run(sched.build(cfg));
        ASSERT_EQ(cand.scalar(loss), expect)
            << "seed " << GetParam() << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace astra
