/**
 * @file
 * Runtime tests: memory planning with adjacency runs, native-plan
 * value correctness, dispatcher cross-stream synchronization, fused
 * step value preservation, and profiling measurements.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/builder.h"
#include "models/data.h"
#include "runtime/executor.h"
#include "runtime/plan_utils.h"
#include "tests/util.h"

namespace astra {
namespace {

using testutil::Runner;

TEST(TensorMap, DefaultAllocationInNodeOrder)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 2});
    const NodeId y = b.sigmoid(x);
    SimMemory mem(1 << 16);
    TensorMap tmap(b.graph(), mem);
    EXPECT_GE(tmap.ptr(y), tmap.ptr(x));
}

TEST(TensorMap, AdjacencyRunsAreContiguous)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 4});
    const NodeId w1 = b.param({4, 4});
    const NodeId w2 = b.param({4, 4});
    const NodeId w3 = b.param({4, 4});
    (void)x;
    SimMemory mem(1 << 16);
    AdjacencyRun run;
    run.members = {w1, w3, w2};  // specific (non-id) order
    TensorMap tmap(b.graph(), mem, {run});
    EXPECT_TRUE(tmap.adjacent({w1, w3, w2}));
    EXPECT_FALSE(tmap.adjacent({w1, w2, w3}));
    EXPECT_EQ(tmap.ptr(w3), tmap.ptr(w1) + 64);
    EXPECT_EQ(tmap.ptr(w2), tmap.ptr(w1) + 128);
}

TEST(TensorMap, OverlappingRunsPanic)
{
    GraphBuilder b;
    const NodeId w1 = b.param({4, 4});
    const NodeId w2 = b.param({4, 4});
    const NodeId w3 = b.param({4, 4});
    SimMemory mem(1 << 16);
    AdjacencyRun r1{{w1, w2}};
    AdjacencyRun r2{{w2, w3}};
    EXPECT_DEATH(TensorMap(b.graph(), mem, {r1, r2}), "two adjacency");
}

/** Small forward graph exercising most op kinds. */
struct OpSoup
{
    GraphBuilder b;
    NodeId out;
};

OpSoup
make_soup()
{
    OpSoup s;
    GraphBuilder& b = s.b;
    const NodeId table = b.param({20, 8});
    const NodeId ids = b.input_ids(4, 20);
    const NodeId e = b.embedding(table, ids);
    const NodeId w = b.param({8, 8});
    const NodeId mm = b.matmul(e, w);
    const NodeId bias = b.param({8});
    const NodeId act = b.tanh(b.bias_add(mm, bias));
    const NodeId soft = b.softmax(act);
    const NodeId cat = b.concat({act, soft});
    const NodeId sl = b.slice(cat, 4, 8);
    const NodeId sum = b.sum_rows(sl);
    (void)sum;
    s.out = sl;
    b.graph().mark_output(sl);
    return s;
}

TEST(NativePlan, CoversEveryComputeNodeOnce)
{
    OpSoup s = make_soup();
    const ExecutionPlan plan = native_plan(s.b.graph());
    std::vector<int> seen(static_cast<size_t>(s.b.graph().size()), 0);
    for (const PlanStep& step : plan.steps) {
        EXPECT_EQ(step.kind, StepKind::Single);
        EXPECT_EQ(step.stream, 0);
        for (NodeId id : step.nodes)
            ++seen[static_cast<size_t>(id)];
    }
    for (const Node& n : s.b.graph().nodes())
        EXPECT_EQ(seen[static_cast<size_t>(n.id)],
                  op_is_source(n.kind) ? 0 : 1);
}

TEST(Dispatcher, NativeValuesMatchDirectReference)
{
    OpSoup s = make_soup();
    Runner r(s.b.graph());
    Rng rng(21);
    bind_all(s.b.graph(), r.tmap(), rng);
    r.run_native();
    // Recompute the final slice by hand through reference math.
    const Graph& g = s.b.graph();
    std::vector<float> expect;
    {
        // Re-run each node compute directly in topo order on a second
        // memory arena.
        SimMemory mem2(graph_tensor_bytes(g) + (1 << 20));
        TensorMap t2(g, mem2);
        Rng rng2(21);
        bind_all(g, t2, rng2);
        for (const Node& n : g.nodes()) {
            if (op_is_source(n.kind))
                continue;
            auto f = make_node_compute(g, n.id, t2);
            ASSERT_TRUE(static_cast<bool>(f));
            f();
        }
        const float* p = t2.f32(s.out);
        expect.assign(p, p + g.node(s.out).desc.shape.numel());
    }
    EXPECT_EQ(testutil::max_abs_diff(r.values(s.out), expect), 0.0);
}

TEST(Dispatcher, CrossStreamDependencyIsSynchronized)
{
    GraphBuilder b;
    const NodeId x = b.input({8, 8});
    const NodeId y = b.sigmoid(x);   // producer
    const NodeId z = b.tanh(y);      // consumer on another stream
    ExecutionPlan plan;
    plan.num_streams = 2;
    PlanStep p1;
    p1.nodes = {y};
    p1.stream = 0;
    PlanStep p2;
    p2.nodes = {z};
    p2.stream = 1;
    plan.steps = {p1, p2};

    SimMemory mem(1 << 16);
    TensorMap tmap(b.graph(), mem);
    float* xp = tmap.f32(x);
    for (int i = 0; i < 64; ++i)
        xp[i] = 0.3f;
    GpuConfig cfg;
    const DispatchResult res = dispatch_plan(plan, b.graph(), tmap, cfg);
    // Correct value implies the consumer saw the producer's output.
    const float expect = std::tanh(1.0f / (1.0f + std::exp(-0.3f)));
    EXPECT_NEAR(tmap.f32(z)[0], expect, 1e-6);
    // And the makespan serializes the two kernels.
    EXPECT_GT(res.total_ns, 2 * cfg.launch_overhead_ns);
}

TEST(Dispatcher, OutOfOrderPlanPanics)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 2});
    const NodeId y = b.sigmoid(x);
    const NodeId z = b.tanh(y);
    ExecutionPlan plan;
    PlanStep p1;
    p1.nodes = {z};
    PlanStep p2;
    p2.nodes = {y};
    plan.steps = {p1, p2};
    SimMemory mem(1 << 16);
    TensorMap tmap(b.graph(), mem);
    EXPECT_DEATH(dispatch_plan(plan, b.graph(), tmap, GpuConfig{}),
                 "plan order");
}

TEST(Dispatcher, IndependentStreamsOverlap)
{
    // Two medium GEMMs that each fill under half the SM pool and run
    // far longer than a launch: streams genuinely overlap them.
    GraphBuilder b;
    const NodeId x = b.input({64, 512});
    const NodeId a = b.matmul(x, b.param({512, 1536}));
    const NodeId c = b.matmul(x, b.param({512, 1536}));
    auto timed = [&](int streams) {
        ExecutionPlan plan;
        plan.num_streams = streams;
        PlanStep p1;
        p1.nodes = {a};
        p1.stream = 0;
        PlanStep p2;
        p2.nodes = {c};
        p2.stream = streams > 1 ? 1 : 0;
        plan.steps = {p1, p2};
        SimMemory mem(8 << 20);
        TensorMap tmap(b.graph(), mem);
        GpuConfig cfg;
        cfg.execute_kernels = false;
        return dispatch_plan(plan, b.graph(), tmap, cfg).total_ns;
    };
    EXPECT_LT(timed(2), timed(1));
}

TEST(Dispatcher, ProfileSumsOverSteps)
{
    GraphBuilder b;
    const NodeId x = b.input({64, 64});
    const NodeId a = b.sigmoid(x);
    const NodeId c = b.tanh(a);
    ExecutionPlan plan;
    PlanStep p1;
    p1.nodes = {a};
    p1.profile = true;
    p1.profile_key = "grp";
    PlanStep p2;
    p2.nodes = {c};
    p2.profile = true;
    p2.profile_key = "grp";
    plan.steps = {p1, p2};
    SimMemory mem(1 << 20);
    TensorMap tmap(b.graph(), mem);
    GpuConfig cfg;
    cfg.execute_kernels = false;
    const DispatchResult res = dispatch_plan(plan, b.graph(), tmap, cfg);
    ASSERT_TRUE(res.profile_ns.count("grp"));
    // Two kernels, each at least one launch overhead long.
    EXPECT_GT(res.profile_ns.at("grp"), 2 * cfg.launch_overhead_ns);
    EXPECT_LE(res.profile_ns.at("grp"), res.total_ns);
}

TEST(Dispatcher, BarrierResetsEpochMetricBase)
{
    GraphBuilder b;
    const NodeId x = b.input({64, 64});
    const NodeId a = b.sigmoid(x);
    const NodeId c = b.tanh(a);
    ExecutionPlan plan;
    plan.num_streams = 2;
    PlanStep p1;
    p1.nodes = {a};
    plan.steps.push_back(p1);
    PlanStep barrier;
    barrier.kind = StepKind::Barrier;
    plan.steps.push_back(barrier);
    PlanStep p2;
    p2.nodes = {c};
    p2.profile = true;
    p2.epoch_metric = true;
    p2.profile_key = "epoch0";
    plan.steps.push_back(p2);
    SimMemory mem(1 << 20);
    TensorMap tmap(b.graph(), mem);
    GpuConfig cfg;
    cfg.execute_kernels = false;
    const DispatchResult res = dispatch_plan(plan, b.graph(), tmap, cfg);
    ASSERT_TRUE(res.profile_ns.count("epoch0"));
    // Metric is measured from the barrier, not from time zero.
    EXPECT_LT(res.profile_ns.at("epoch0"), res.total_ns);
    EXPECT_GT(res.profile_ns.at("epoch0"), 0.0);
}

TEST(Dispatcher, EpochMetricMatchesHandComputedEventTimes)
{
    // Pin the epoch_metric measurement (barrier-anchored max over a
    // key) against exactly composed sim times. All host/event
    // overheads are zeroed so every dispatch is pure kernel time, and
    // the kernels are tiny enough to hold their SMs without contention
    // — durations compose additively and exactly.
    GpuConfig cfg;
    cfg.execute_kernels = false;
    cfg.autoboost = false;
    cfg.launch_overhead_ns = 0.0;
    cfg.event_enqueue_ns = 0.0;
    cfg.event_record_ns = 0.0;

    GraphBuilder b;
    const NodeId x = b.input({8, 8});
    const NodeId y = b.input({16, 16});
    const NodeId a = b.sigmoid(x);   // pre-barrier, stream 0
    const NodeId c = b.tanh(a);      // post-barrier, stream 0
    const NodeId d = b.tanh(y);      // post-barrier, stream 1...
    const NodeId e = b.sigmoid(d);   // ...a two-kernel chain
    SimMemory mem(1 << 20);
    TensorMap tmap(b.graph(), mem);

    // Duration of a serial chain of single-node steps, alone under the
    // same config.
    const auto solo = [&](std::vector<NodeId> nodes) {
        ExecutionPlan p;
        p.num_streams = 1;
        for (NodeId id : nodes) {
            PlanStep s;
            s.nodes = {id};
            p.steps.push_back(s);
        }
        return dispatch_plan(p, b.graph(), tmap, cfg).total_ns;
    };
    const double d1 = solo({a});
    const double d2 = solo({c});
    const double d3 = solo({d, e});
    ASSERT_GT(d1, 0.0);
    ASSERT_GT(d3, d2);  // the chain is longer: the max is meaningful

    ExecutionPlan plan;
    plan.num_streams = 2;
    PlanStep p1;
    p1.nodes = {a};
    plan.steps.push_back(p1);
    PlanStep barrier;
    barrier.kind = StepKind::Barrier;
    plan.steps.push_back(barrier);
    PlanStep p2;
    p2.nodes = {c};
    p2.profile = true;
    p2.epoch_metric = true;
    p2.profile_key = "e";
    plan.steps.push_back(p2);
    PlanStep p3;
    p3.nodes = {d};
    p3.stream = 1;
    plan.steps.push_back(p3);
    PlanStep p4;  // chain tail: its epoch metric spans d + e
    p4.nodes = {e};
    p4.stream = 1;
    p4.profile = true;
    p4.epoch_metric = true;
    p4.profile_key = "e";
    plan.steps.push_back(p4);

    const DispatchResult res = dispatch_plan(plan, b.graph(), tmap, cfg);
    ASSERT_TRUE(res.profile_ns.count("e"));
    // Hand-composed timeline: the barrier arrives when p1 ends (d1);
    // both epoch steps start there and run concurrently, so the
    // barrier-anchored max-over-key metric is max(d2, d3) and the
    // whole dispatch is d1 + max(d2, d3).
    EXPECT_DOUBLE_EQ(res.profile_ns.at("e"), std::max(d2, d3));
    EXPECT_DOUBLE_EQ(res.total_ns, d1 + std::max(d2, d3));
}

TEST(FusedSteps, BatchGemmBitIdenticalToSingles)
{
    GraphBuilder b;
    const NodeId x = b.input({4, 8});
    const NodeId w1 = b.param({8, 8});
    const NodeId w2 = b.param({8, 8});
    const NodeId m1 = b.matmul(x, w1);
    const NodeId m2 = b.matmul(x, w2);
    b.graph().mark_output(m1);
    b.graph().mark_output(m2);

    Runner single(b.graph());
    Rng rng(7);
    bind_all(b.graph(), single.tmap(), rng);
    single.run_native();

    Runner fused(b.graph(), {AdjacencyRun{{w1, w2}},
                             AdjacencyRun{{m1, m2}}});
    Rng rng2(7);
    bind_all(b.graph(), fused.tmap(), rng2);
    ExecutionPlan plan;
    PlanStep step;
    step.kind = StepKind::FusedGemm;
    step.nodes = {m1, m2};
    plan.steps = {step};
    fused.run(plan);

    EXPECT_EQ(testutil::max_abs_diff(single.values(m1),
                                     fused.values(m1)), 0.0);
    EXPECT_EQ(testutil::max_abs_diff(single.values(m2),
                                     fused.values(m2)), 0.0);
}

TEST(FusedSteps, LadderGemmBitIdenticalToAddChain)
{
    GraphBuilder b;
    const NodeId a1 = b.input({4, 8});
    const NodeId a2 = b.input({4, 8});
    const NodeId a3 = b.input({4, 8});
    const NodeId w1 = b.param({8, 8});
    const NodeId w2 = b.param({8, 8});
    const NodeId w3 = b.param({8, 8});
    const NodeId m1 = b.matmul(a1, w1);
    const NodeId m2 = b.matmul(a2, w2);
    const NodeId m3 = b.matmul(a3, w3);
    const NodeId s1 = b.add(m1, m2);
    const NodeId s2 = b.add(s1, m3);
    b.graph().mark_output(s2);

    Runner chain(b.graph());
    Rng rng(11);
    bind_all(b.graph(), chain.tmap(), rng);
    chain.run_native();

    Runner ladder(b.graph());
    Rng rng2(11);
    bind_all(b.graph(), ladder.tmap(), rng2);
    ExecutionPlan plan;
    PlanStep step;
    step.kind = StepKind::LadderGemm;
    step.nodes = {m1, m2, m3, s1, s2};
    plan.steps = {step};
    ladder.run(plan);

    EXPECT_EQ(testutil::max_abs_diff(chain.values(s2),
                                     ladder.values(s2)), 0.0);
}

TEST(FusedSteps, PartialLadderChunkUsesBase)
{
    GraphBuilder b;
    std::vector<NodeId> mms;
    for (int i = 0; i < 4; ++i)
        mms.push_back(b.matmul(b.input({2, 4}), b.param({4, 4})));
    const NodeId s1 = b.add(mms[0], mms[1]);
    const NodeId s2 = b.add(s1, mms[2]);
    const NodeId s3 = b.add(s2, mms[3]);
    b.graph().mark_output(s3);

    Runner chain(b.graph());
    Rng rng(13);
    bind_all(b.graph(), chain.tmap(), rng);
    chain.run_native();

    Runner part(b.graph());
    Rng rng2(13);
    bind_all(b.graph(), part.tmap(), rng2);
    ExecutionPlan plan;
    PlanStep c1;
    c1.kind = StepKind::LadderGemm;
    c1.nodes = {mms[0], mms[1], s1};  // chunk [0,2)
    PlanStep c2;
    c2.kind = StepKind::LadderGemm;
    c2.nodes = {mms[2], mms[3], s2, s3};  // chunk [2,4), base = s1
    plan.steps = {c1, c2};
    part.run(plan);
    EXPECT_EQ(testutil::max_abs_diff(chain.values(s3),
                                     part.values(s3)), 0.0);
}

TEST(FusedSteps, ElementwiseChainIdentical)
{
    GraphBuilder b;
    const NodeId x = b.input({4, 16});
    const NodeId y = b.input({4, 16});
    const NodeId a = b.add(x, y);
    const NodeId s = b.sigmoid(a);
    const NodeId m = b.mul(s, x);
    b.graph().mark_output(m);

    Runner singles(b.graph());
    Rng rng(17);
    bind_all(b.graph(), singles.tmap(), rng);
    singles.run_native();

    Runner fused(b.graph());
    Rng rng2(17);
    bind_all(b.graph(), fused.tmap(), rng2);
    ExecutionPlan plan;
    PlanStep step;
    step.kind = StepKind::FusedElementwise;
    step.nodes = {a, s, m};
    plan.steps = {step};
    fused.run(plan);
    EXPECT_EQ(testutil::max_abs_diff(singles.values(m),
                                     fused.values(m)), 0.0);
}

TEST(Dispatcher, TransientKernelFaultRetriesAndRestoresValues)
{
    // The mini-batch transaction: a kernel fault skips its compute
    // callback (wrong values), the dispatcher replays the whole
    // mini-batch on a fresh device with a re-salted injector, and the
    // surviving attempt's values are bit-identical to a fault-free run.
    GraphBuilder b;
    const NodeId x = b.input({8, 8});
    const NodeId y = b.sigmoid(x);
    const NodeId z = b.tanh(y);
    const NodeId w = b.relu(z);
    b.graph().mark_output(w);

    Runner clean(b.graph());
    Rng rng(31);
    bind_all(b.graph(), clean.tmap(), rng);
    clean.run_native();

    SimMemory mem(1 << 20);
    TensorMap tmap(b.graph(), mem);
    Rng rng2(31);
    bind_all(b.graph(), tmap, rng2);
    GpuConfig cfg;
    ASSERT_TRUE(FaultPlan::parse("seed=2;kernel:p=0.4", &cfg.faults));
    cfg.fault_salt = 9;  // pin the draw strand: deterministic test
    const DispatchResult res =
        dispatch_plan(native_plan(b.graph()), b.graph(), tmap, cfg);

    EXPECT_FALSE(res.faulted);        // a clean attempt survived
    EXPECT_GE(res.fault_attempts, 1); // ...and at least one did not
    EXPECT_GE(res.faults_seen, 1);
    EXPECT_GT(res.backoff_ns, 0.0);
    const float* p = tmap.f32(w);
    const std::vector<float> got(
        p, p + b.graph().node(w).desc.shape.numel());
    EXPECT_EQ(testutil::max_abs_diff(clean.values(w), got), 0.0);
}

TEST(Dispatcher, FaultBudgetExhaustionReportsFaulted)
{
    GraphBuilder b;
    const NodeId x = b.input({8, 8});
    const NodeId y = b.sigmoid(x);
    b.graph().mark_output(y);
    SimMemory mem(1 << 20);
    TensorMap tmap(b.graph(), mem);
    GpuConfig cfg;
    cfg.execute_kernels = false;
    ASSERT_TRUE(FaultPlan::parse("retries=2;kernel:p=1", &cfg.faults));
    cfg.fault_salt = 1;
    const DispatchResult res =
        dispatch_plan(native_plan(b.graph()), b.graph(), tmap, cfg);
    EXPECT_TRUE(res.faulted);
    EXPECT_EQ(res.fault_attempts, 3);  // retries + 1, all faulted
    EXPECT_GE(res.faults_seen, 3);
    // Exponential backoff: 50us * (1 + 2 + 4).
    EXPECT_DOUBLE_EQ(res.backoff_ns, 50.0 * 1e3 * 7.0);
    // The faulted result still carries timing (kernel faults are
    // timing-invisible): the caller can account the mini-batch.
    EXPECT_GT(res.total_ns, 0.0);
}

TEST(Dispatcher, ArmedButSilentPlanChangesNothing)
{
    GraphBuilder b;
    const NodeId x = b.input({8, 8});
    const NodeId y = b.sigmoid(x);
    b.graph().mark_output(y);
    SimMemory mem(1 << 20);
    TensorMap tmap(b.graph(), mem);
    GpuConfig cfg;
    cfg.execute_kernels = false;
    cfg.faults = FaultPlan();  // ASTRA_FAULTS arms every default config
    cfg.autoboost = false;     // cross-dispatch clock drift would differ
    const double plain =
        dispatch_plan(native_plan(b.graph()), b.graph(), tmap, cfg)
            .total_ns;
    ASSERT_TRUE(FaultPlan::parse("kernel:p=0", &cfg.faults));
    cfg.fault_salt = 3;
    const DispatchResult res =
        dispatch_plan(native_plan(b.graph()), b.graph(), tmap, cfg);
    EXPECT_FALSE(res.faulted);
    EXPECT_EQ(res.fault_attempts, 0);
    EXPECT_EQ(res.faults_seen, 0);
    EXPECT_DOUBLE_EQ(res.backoff_ns, 0.0);
    EXPECT_DOUBLE_EQ(res.total_ns, plain);
}

TEST(PlanUtils, TopoSortRepairsProgramOrder)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 2});
    const NodeId y = b.sigmoid(x);
    const NodeId z = b.tanh(y);
    std::vector<PlanStep> steps(2);
    steps[0].nodes = {z};
    steps[1].nodes = {y};
    const auto sorted = topo_sort_steps(std::move(steps), b.graph());
    EXPECT_EQ(sorted[0].nodes[0], y);
    EXPECT_EQ(sorted[1].nodes[0], z);
}

TEST(FusedElementwisePasses, CountsExternalTensors)
{
    GraphBuilder b;
    const NodeId x = b.input({4, 4});
    const NodeId y = b.input({4, 4});
    const NodeId a = b.add(x, y);
    const NodeId s = b.sigmoid(a);   // a is internal (single use)
    b.graph().mark_output(s);
    PlanStep step;
    step.kind = StepKind::FusedElementwise;
    step.nodes = {a, s};
    // 2 external inputs (x, y) + 1 escaping output (s).
    EXPECT_EQ(fused_elementwise_passes(step, b.graph()), 3);
}

}  // namespace
}  // namespace astra
