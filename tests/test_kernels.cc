/**
 * @file
 * Cost-model property tests: the kernel libraries must exhibit the
 * phenomena the paper's adaptation exploits — shape-dependent library
 * winners (Table 1), tile-quantization cliffs, launch amortization
 * from fusion, split-K as a cuBLAS-only capability, and the compound
 * RNN kernel's tiling penalty for odd hidden sizes.
 */
#include <gtest/gtest.h>

#include "kernels/cost.h"

namespace astra {
namespace {

GpuConfig cfg_;

double
est_ns(const KernelCost& c, const GpuConfig& cfg)
{
    const double sms =
        c.max_sms > 0 ? std::min(c.max_sms, cfg.num_sms) : cfg.num_sms;
    const double par = std::min(static_cast<double>(c.blocks), sms);
    return cfg.launch_overhead_ns + c.setup_ns +
           static_cast<double>(c.blocks) / par * c.block_ns;
}

double
gemm_ns(GemmLib lib, int64_t m, int64_t n, int64_t k)
{
    return est_ns(gemm_cost(lib, {m, n, k}, cfg_), cfg_);
}

TEST(GemmCost, PositiveAndFinite)
{
    for (int lib = 0; lib < kNumGemmLibs; ++lib) {
        const KernelCost c = gemm_cost(static_cast<GemmLib>(lib),
                                       {64, 1024, 1024}, cfg_);
        EXPECT_GT(c.blocks, 0);
        EXPECT_GT(c.block_ns, 0.0);
        EXPECT_GE(c.setup_ns, 0.0);
    }
}

TEST(GemmCost, MonotonicInProblemSize)
{
    for (int lib = 0; lib < kNumGemmLibs; ++lib) {
        const GemmLib l = static_cast<GemmLib>(lib);
        EXPECT_LE(gemm_ns(l, 64, 512, 512), gemm_ns(l, 256, 512, 512))
            << gemm_lib_name(l);
        EXPECT_LE(gemm_ns(l, 64, 512, 512), gemm_ns(l, 64, 2048, 512));
        EXPECT_LE(gemm_ns(l, 64, 512, 512), gemm_ns(l, 64, 512, 2048));
    }
}

TEST(GemmCost, Table1ShapeDependentWinner)
{
    // Paper Table 1: OAI_1 wins 64x1024x4096 (forward fused GEMM),
    // cuBLAS wins 64x4096x1024 (backward), OAI_2 is far behind on the
    // wide-N shape. The library ranking must invert with the shape.
    const double cublas_row1 = gemm_ns(GemmLib::Cublas, 64, 4096, 1024);
    const double oai1_row1 = gemm_ns(GemmLib::Oai1, 64, 4096, 1024);
    const double oai2_row1 = gemm_ns(GemmLib::Oai2, 64, 4096, 1024);
    const double cublas_row2 = gemm_ns(GemmLib::Cublas, 64, 1024, 4096);
    const double oai1_row2 = gemm_ns(GemmLib::Oai1, 64, 1024, 4096);

    EXPECT_LT(oai1_row1, cublas_row1) << "OAI_1 should win wide-N";
    EXPECT_LT(cublas_row2, oai1_row2) << "cuBLAS should win deep-K";
    EXPECT_GT(oai2_row1, 2.0 * oai1_row1) << "OAI_2 poor on wide N";
}

TEST(GemmCost, TileQuantizationCliff)
{
    // Crossing a tile boundary must not make the kernel cheaper, and
    // one row past the boundary costs a visible step once the block
    // count exceeds the SM pool (wide N keeps every SM busy).
    const double at64 = gemm_ns(GemmLib::Oai1, 64, 4096, 512);
    const double at65 = gemm_ns(GemmLib::Oai1, 65, 4096, 512);
    EXPECT_GT(at65, at64 * 1.2);
}

TEST(GemmCost, CublasSplitKHelpsDeepSkinny)
{
    // For m=64, n=256, k=8192 a no-split kernel would leave most SMs
    // idle; cuBLAS's split-K should keep it within a reasonable factor
    // of the OAI library, which cannot split.
    const double cublas = gemm_ns(GemmLib::Cublas, 64, 256, 8192);
    const double naive_one_wave =
        gemm_cost(GemmLib::Cublas, {64, 256, 8192}, cfg_).block_ns;
    (void)naive_one_wave;
    const double oai = gemm_ns(GemmLib::Oai1, 64, 256, 8192);
    EXPECT_LT(cublas, oai);
}

TEST(FusedGemmCost, OneLaunchManyBlocks)
{
    const GemmShape s{16, 256, 256};
    const KernelCost single = gemm_cost(GemmLib::Cublas, s, cfg_);
    const KernelCost fused = fused_gemm_cost(GemmLib::Cublas, s, 4, cfg_);
    // Batching multiplies the available parallelism (the library may
    // re-tile for the batched problem, so only a lower bound holds).
    EXPECT_GE(fused.blocks, single.blocks);
    // Four sequential launches vs one fused launch: fusion must win
    // when blocks are few (launch-bound regime, §2.3).
    const double sequential = 4.0 * est_ns(single, cfg_);
    const double together = est_ns(fused, cfg_);
    EXPECT_LT(together, sequential * 0.5);
}

TEST(FusedGemmCost, DiminishingReturnsAtLargeBatch)
{
    // When blocks already saturate the SM pool, fusing more saves only
    // the launch overhead — the relative gain shrinks (paper §3.2).
    const GemmShape big{512, 1024, 1024};
    const double single = est_ns(gemm_cost(GemmLib::Cublas, big, cfg_),
                                 cfg_);
    const double fused4 =
        est_ns(fused_gemm_cost(GemmLib::Cublas, big, 4, cfg_), cfg_);
    const double gain = 4.0 * single / fused4;
    EXPECT_LT(gain, 1.2);
    EXPECT_GE(gain, 0.99);
}

TEST(ElementwiseCost, ScalesWithBytesAndPasses)
{
    const KernelCost small = elementwise_cost(1024, 2, cfg_);
    const KernelCost big = elementwise_cost(1 << 20, 2, cfg_);
    EXPECT_GT(est_ns(big, cfg_), est_ns(small, cfg_));
    const KernelCost more_passes = elementwise_cost(1 << 20, 6, cfg_);
    EXPECT_GT(est_ns(more_passes, cfg_), est_ns(big, cfg_));
}

TEST(ElementwiseCost, TinyOpIsLaunchBound)
{
    // An RNN-sized elementwise op must cost far less than its launch
    // overhead — the root cause of framework inefficiency on small
    // models (§2.3).
    const KernelCost c = elementwise_cost(4096, 3, cfg_);
    EXPECT_LT(c.block_ns * static_cast<double>(c.blocks) + c.setup_ns,
              cfg_.launch_overhead_ns);
}

TEST(CompoundRnnCost, OddHiddenPenalty)
{
    // Same flops budget: the off-tiling hidden size pads and spills.
    const double aligned =
        est_ns(compound_rnn_cost(1e9, 10, 32, 1536, cfg_), cfg_);
    const double odd =
        est_ns(compound_rnn_cost(1e9, 10, 32, 1500, cfg_), cfg_);
    EXPECT_GT(odd, 1.02 * aligned);
}

TEST(CompoundRnnCost, PersistentAlgorithmCutoff)
{
    // Past hidden=1024 the persistent algorithm no longer fits shared
    // memory and the fallback path is markedly less efficient (the
    // Table 5 PTB-large situation).
    const double fits =
        est_ns(compound_rnn_cost(1e9, 10, 32, 1024, cfg_), cfg_);
    const double spills =
        est_ns(compound_rnn_cost(1e9, 10, 32, 1088, cfg_), cfg_);
    EXPECT_GT(spills, 1.25 * fits);
}

TEST(CompoundRnnCost, SmallBatchLessEfficient)
{
    const double b32 =
        est_ns(compound_rnn_cost(1e9, 10, 32, 1024, cfg_), cfg_);
    const double b4 =
        est_ns(compound_rnn_cost(1e9, 10, 4, 1024, cfg_), cfg_);
    EXPECT_GT(b4, b32);
}

TEST(GemmLibNames, Stable)
{
    EXPECT_EQ(gemm_lib_name(GemmLib::Cublas), "cublas");
    EXPECT_EQ(gemm_lib_name(GemmLib::Oai1), "oai_1");
    EXPECT_EQ(gemm_lib_name(GemmLib::Oai2), "oai_2");
}

/** Parameterized sweep: costs stay sane across a shape grid. */
class GemmCostSweep
    : public ::testing::TestWithParam<std::tuple<int, int64_t, int64_t,
                                                 int64_t>>
{};

TEST_P(GemmCostSweep, SaneEverywhere)
{
    const auto [lib, m, n, k] = GetParam();
    const KernelCost c =
        gemm_cost(static_cast<GemmLib>(lib), {m, n, k}, cfg_);
    EXPECT_GT(c.blocks, 0);
    EXPECT_GT(c.block_ns, 0.0);
    EXPECT_LT(c.block_ns, 1e9);
    // The estimated efficiency can never exceed the device peak.
    const double flops = 2.0 * static_cast<double>(m * n * k);
    const double best_ns = est_ns(c, cfg_) - cfg_.launch_overhead_ns;
    const double peak_ns =
        flops / (cfg_.flops_per_sm_ns * cfg_.num_sms);
    EXPECT_GE(best_ns, peak_ns * 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GemmCostSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<int64_t>(8, 64, 300, 1024),
                       ::testing::Values<int64_t>(32, 256, 1500),
                       ::testing::Values<int64_t>(64, 512, 4096)));

}  // namespace
}  // namespace astra
