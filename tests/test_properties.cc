/**
 * @file
 * Cross-model property sweeps (parameterized): the value-preservation
 * invariant over the whole model zoo, cycle repair under adversarial
 * fusion structure, exploration determinism, and simulator
 * conservation laws.
 */
#include <gtest/gtest.h>

#include "core/astra.h"
#include "models/data.h"
#include "models/models.h"
#include "runtime/dispatcher.h"
#include "runtime/native.h"
#include "tests/util.h"

namespace astra {
namespace {

class ZooValuePreservation : public ::testing::TestWithParam<ModelKind>
{};

TEST_P(ZooValuePreservation, AstraBestMatchesNativeBitExactly)
{
    ModelConfig cfg;
    cfg.batch = 4;
    cfg.seq_len = 3;
    cfg.hidden = 16;
    cfg.embed_dim = 16;
    cfg.vocab = 20;
    const BuiltModel m = build_model(GetParam(), cfg);

    AstraOptions opts;
    opts.features = features_all();
    opts.gpu.execute_kernels = true;
    opts.sched.super_epoch_ns = 100000.0;
    AstraSession session(m.graph(), opts);
    const WirerResult r = session.optimize();

    const TensorMap& tuned = session.tensor_map(r.best_config.strategy);
    Rng rng(77);
    bind_all(m.graph(), tuned, rng);
    session.run(r.best_config);
    const float tuned_loss = tuned.f32(m.loss)[0];

    testutil::Runner native(m.graph());
    Rng rng2(77);
    bind_all(m.graph(), native.tmap(), rng2);
    native.run_native();
    EXPECT_EQ(native.scalar(m.loss), tuned_loss)
        << model_name(GetParam());

    // Gradients too: training trajectories stay identical.
    for (const auto& [param, grad] : m.grads.param_grads) {
        (void)param;
        const float* a = native.tmap().f32(grad);
        const float* b = tuned.f32(grad);
        const int64_t numel = m.graph().node(grad).desc.shape.numel();
        for (int64_t i = 0; i < numel; ++i)
            ASSERT_EQ(a[i], b[i]) << model_name(GetParam())
                                  << " grad %" << grad << "[" << i
                                  << "]";
    }
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooValuePreservation,
                         ::testing::Values(ModelKind::Scrnn,
                                           ModelKind::MiLstm,
                                           ModelKind::SubLstm,
                                           ModelKind::StackedLstm,
                                           ModelKind::Rhn,
                                           ModelKind::AttnLstm),
                         [](const auto& info) {
                             std::string n = model_name(info.param);
                             std::erase(n, '-');
                             std::erase(n, '+');
                             return n;
                         });

TEST(CycleRepair, InterlockedGroupsStillSchedule)
{
    // Two fusion groups whose members feed each other crosswise: a1
    // feeds b1 while b2 feeds a2. Contracting both maximally is
    // cyclic; the scheduler must repair by shrinking chunks, not die.
    GraphBuilder b;
    const NodeId x = b.input({4, 8});
    NodeId a1, a2, b1, b2;
    {
        GraphBuilder::Scoped s(b, "ga");
        a1 = b.matmul(x, b.param({8, 8}));
    }
    {
        GraphBuilder::Scoped s(b, "gb");
        b1 = b.matmul(b.sigmoid(a1), b.param({8, 8}));
        b2 = b.matmul(x, b.param({8, 8}));
    }
    {
        GraphBuilder::Scoped s(b, "ga");
        a2 = b.matmul(b.sigmoid(b2), b.param({8, 8}));
    }
    b.graph().mark_output(b1);
    b.graph().mark_output(a2);

    const SearchSpace space = enumerate_search_space(b.graph());
    const Scheduler sched(b.graph(), space);
    ScheduleConfig cfg;
    cfg.group_chunk.assign(space.groups.size(), 1);
    cfg.group_lib.assign(space.groups.size(), GemmLib::Cublas);
    for (const FusionGroup& g : space.groups)
        cfg.group_chunk[static_cast<size_t>(g.id)] =
            g.chunk_options.back();
    // Must not panic; must cover everything exactly once, in order.
    const auto units = sched.build_units(cfg);
    std::set<NodeId> covered;
    for (const PlanStep& u : units)
        for (NodeId id : u.nodes) {
            EXPECT_FALSE(covered.count(id));
            covered.insert(id);
        }
    for (const Node& n : b.graph().nodes())
        if (!op_is_source(n.kind)) {
            EXPECT_TRUE(covered.count(n.id));
        }
}

TEST(Determinism, ExplorationIsFullyReproducible)
{
    const BuiltModel m =
        build_model(ModelKind::SubLstm,
                    {.batch = 8, .seq_len = 4, .hidden = 32,
                     .embed_dim = 32, .vocab = 50});
    auto run = [&] {
        AstraOptions opts;
        opts.gpu.execute_kernels = false;
        // Reproducibility is a base-clock property (§4.1): autoboost
        // deliberately breaks it, so pin it off for the CI noise job.
        opts.gpu.autoboost = false;
        AstraSession session(m.graph(), opts);
        return session.optimize();
    };
    const WirerResult a = run();
    const WirerResult c = run();
    EXPECT_EQ(a.minibatches, c.minibatches);
    EXPECT_DOUBLE_EQ(a.best_ns, c.best_ns);
    EXPECT_EQ(a.index.entries().size(), c.index.entries().size());
    for (auto ita = a.index.entries().begin(),
              itc = c.index.entries().begin();
         ita != a.index.entries().end(); ++ita, ++itc) {
        EXPECT_EQ(ita->first, itc->first);
        EXPECT_EQ(ita->second.count, itc->second.count);
        EXPECT_DOUBLE_EQ(ita->second.min, itc->second.min);
        EXPECT_DOUBLE_EQ(ita->second.mean, itc->second.mean);
    }
}

TEST(Conservation, BusySmTimeNeverExceedsPoolCapacity)
{
    const BuiltModel m =
        build_model(ModelKind::Scrnn,
                    {.batch = 8, .seq_len = 4, .hidden = 64,
                     .embed_dim = 64, .vocab = 100});
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    AstraSession session(m.graph(), opts);
    const DispatchResult r = session.run_native();
    EXPECT_LE(r.stats.busy_sm_ns,
              r.total_ns * opts.gpu.num_sms * (1.0 + 1e-9));
    EXPECT_GT(r.stats.busy_sm_ns, 0.0);
    EXPECT_EQ(r.stats.kernels_launched,
              static_cast<int64_t>(native_plan(m.graph()).steps.size()));
}

TEST(Conservation, StreamsNeverChangeTotalWork)
{
    // Same configuration with 1 vs 2 streams: identical kernel count
    // and identical busy-SM integral (streams move work, not create it).
    const BuiltModel m =
        build_model(ModelKind::Scrnn,
                    {.batch = 8, .seq_len = 4, .hidden = 64,
                     .embed_dim = 64, .vocab = 100});
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    // The two dispatches would see different DVFS draws; the invariant
    // is about work, so pin the clock.
    opts.gpu.autoboost = false;
    AstraSession session(m.graph(), opts);
    ScheduleConfig cfg;
    cfg.group_chunk.assign(session.space().groups.size(), 1);
    cfg.group_lib.assign(session.space().groups.size(),
                         GemmLib::Cublas);
    const DispatchResult serial = session.run(cfg);
    cfg.use_streams = true;
    const DispatchResult streamed = session.run(cfg);
    EXPECT_NEAR(serial.stats.busy_sm_ns, streamed.stats.busy_sm_ns,
                serial.stats.busy_sm_ns * 1e-9);
}

}  // namespace
}  // namespace astra
