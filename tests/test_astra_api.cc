/**
 * @file
 * Facade- and robustness-level tests: the AstraSession public API,
 * wider stream counts, builder misuse diagnostics, and failure
 * injection (a schedule with a missing dependency must produce wrong
 * values — the property that makes the value tests meaningful).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/astra.h"
#include "models/data.h"
#include "models/models.h"
#include "sim/gpu.h"
#include "tensor/math.h"

namespace astra {
namespace {

BuiltModel
tiny()
{
    return build_model(ModelKind::Scrnn,
                       {.batch = 4, .seq_len = 3, .hidden = 16,
                        .embed_dim = 16, .vocab = 20});
}

TEST(AstraSession, AutoSizesDeviceMemoryPerStrategy)
{
    const BuiltModel m = tiny();
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    AstraSession session(m.graph(), opts);
    for (size_t s = 0; s < session.space().strategies.size(); ++s) {
        const TensorMap& tmap = session.tensor_map(static_cast<int>(s));
        // Every node is addressable.
        for (const Node& n : m.graph().nodes())
            EXPECT_GE(tmap.ptr(n.id), 0);
        // Strategy runs are realized as physical adjacency.
        for (const AdjacencyRun& run :
             session.space().strategies[s].runs)
            EXPECT_TRUE(tmap.adjacent(run.members));
    }
}

TEST(AstraSession, RunNativeMatchesDispatchEveryTime)
{
    const BuiltModel m = tiny();
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.gpu.autoboost = false;  // repeatability is a base-clock property
    AstraSession session(m.graph(), opts);
    const double a = session.run_native().total_ns;
    const double b = session.run_native().total_ns;
    EXPECT_DOUBLE_EQ(a, b);  // deterministic device, same plan
}

TEST(AstraSession, ExplicitHbmBytesHonored)
{
    const BuiltModel m = tiny();
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.hbm_bytes = 64 << 20;
    AstraSession session(m.graph(), opts);
    EXPECT_GE(session.tensor_map(0).memory().capacity(), 64 << 20);
}

TEST(AstraSession, WorksOnRhn)
{
    const BuiltModel m =
        build_model(ModelKind::Rhn,
                    {.batch = 8, .seq_len = 4, .hidden = 32,
                     .embed_dim = 32, .vocab = 40});
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    AstraSession session(m.graph(), opts);
    const double native = session.run_native().total_ns;
    const WirerResult r = session.optimize();
    EXPECT_LT(r.best_ns, native);
    EXPECT_GT(session.space().groups.size(), 0u);
}

TEST(Scheduler, FourStreamPlansAreValidAndValuePreserving)
{
    const BuiltModel m = tiny();
    AstraOptions opts;
    opts.gpu.execute_kernels = true;
    opts.num_streams = 4;
    opts.sched.super_epoch_ns = 100000.0;
    AstraSession session(m.graph(), opts);

    Rng rng(3);
    bind_all(m.graph(), session.tensor_map(0), rng);
    session.run_native();
    const float expect = session.tensor_map(0).f32(m.loss)[0];

    const WirerResult r = session.optimize();
    EXPECT_LE(r.best_config.num_streams, 4);
    session.run(r.best_config);
    const TensorMap& best =
        session.tensor_map(r.best_config.strategy);
    Rng rng2(3);
    bind_all(m.graph(), best, rng2);
    session.run(r.best_config);
    EXPECT_EQ(best.f32(m.loss)[0], expect);
}

TEST(FailureInjection, MissingSyncReadsStaleData)
{
    // The property the whole value-test suite rests on: if a schedule
    // launches a consumer on another stream WITHOUT waiting for its
    // producer, the consumer reads stale data — like a real race.
    GpuConfig cfg;
    SimGpu gpu(cfg);
    const StreamId s1 = gpu.create_stream();

    std::vector<float> buf_a(16, 0.0f);
    std::vector<float> buf_b(16, -1.0f);

    KernelDesc producer;
    producer.name = "producer";
    producer.blocks = 10;
    producer.block_ns = 5000.0;
    producer.compute = [&] {
        for (auto& v : buf_a)
            v = 7.0f;
    };
    KernelDesc consumer;
    consumer.name = "consumer";
    consumer.blocks = 10;
    consumer.block_ns = 1000.0;
    consumer.compute = [&] {
        for (size_t i = 0; i < buf_b.size(); ++i)
            buf_b[i] = buf_a[i] * 2.0f;
    };
    // No wait_event between them, and the consumer is even enqueued
    // first: it begins executing before the producer has run.
    gpu.launch(s1, std::move(consumer));
    gpu.launch(0, std::move(producer));
    gpu.synchronize();
    // The consumer observed the pre-producer value of buf_a.
    EXPECT_EQ(buf_b[0], 0.0f);
}

TEST(BuilderMisuse, ShapeMismatchDies)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 3});
    const NodeId w = b.param({4, 5});
    EXPECT_DEATH(b.matmul(x, w), "inner dims");
    const NodeId y = b.input({3, 3});
    EXPECT_DEATH(b.add(x, y), "elementwise shape mismatch");
    EXPECT_DEATH(b.slice(x, 2, 5), "slice out of range");
    EXPECT_DEATH(b.pop_scope(), "pop_scope without");
}

TEST(BuilderMisuse, CrossEntropyLabelCountMismatchDies)
{
    GraphBuilder b;
    const NodeId logits = b.input({4, 10});
    const NodeId labels = b.input_ids(3, 10);
    EXPECT_DEATH(b.cross_entropy(logits, labels), "one label");
}

TEST(ProfileIndexIntegration, EntriesAreContextDisjointAcrossBuckets)
{
    const BuiltModel m = tiny();
    AstraOptions a;
    a.gpu.execute_kernels = false;
    a.context_prefix = "b13|";
    AstraSession s1(m.graph(), a);
    const WirerResult r1 = s1.optimize();
    AstraOptions b;
    b.gpu.execute_kernels = false;
    b.context_prefix = "b24|";
    AstraSession s2(m.graph(), b);
    const WirerResult r2 = s2.optimize();
    for (const auto& [k, v] : r1.index.entries()) {
        (void)v;
        EXPECT_FALSE(r2.index.contains(k))
            << "bucketed keys must not alias: " << k;
    }
}

}  // namespace
}  // namespace astra
