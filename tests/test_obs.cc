/**
 * @file
 * Tests for the observability layer (src/obs): span collection and
 * nesting, thread safety, counter aggregation, disabled-mode silence,
 * Chrome trace-event JSON well-formedness (validated with a small
 * in-test JSON parser), and the wirer's convergence report.
 */
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <thread>
#include <vector>

#include "core/astra.h"
#include "models/models.h"
#include "obs/convergence.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace astra {
namespace {

// ---- minimal JSON parser (validation only) ---------------------------
//
// Parses the full JSON grammar into a tiny DOM so tests can assert
// structure of emitted documents. Fails the parse by returning null.

struct JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

struct JsonValue
{
    enum class Kind { Object, Array, String, Number, Bool, Null };
    Kind kind = Kind::Null;
    std::map<std::string, JsonPtr> object;
    std::vector<JsonPtr> array;
    std::string string;
    double number = 0.0;
    bool boolean = false;
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    JsonPtr
    parse()
    {
        JsonPtr v = value();
        skip_ws();
        if (pos_ != s_.size())
            return nullptr;  // trailing garbage
        return v;
    }

  private:
    void
    skip_ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    eat(char c)
    {
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonPtr
    value()
    {
        skip_ws();
        if (pos_ >= s_.size())
            return nullptr;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string_value();
          case 't': return literal("true", JsonValue::Kind::Bool, true);
          case 'f':
            return literal("false", JsonValue::Kind::Bool, false);
          case 'n': return literal("null", JsonValue::Kind::Null, false);
          default: return number();
        }
    }

    JsonPtr
    literal(const std::string& word, JsonValue::Kind kind, bool b)
    {
        if (s_.compare(pos_, word.size(), word) != 0)
            return nullptr;
        pos_ += word.size();
        auto v = std::make_shared<JsonValue>();
        v->kind = kind;
        v->boolean = b;
        return v;
    }

    JsonPtr
    object()
    {
        if (!eat('{'))
            return nullptr;
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::Object;
        if (eat('}'))
            return v;
        do {
            JsonPtr key = string_value();
            if (!key || !eat(':'))
                return nullptr;
            JsonPtr val = value();
            if (!val)
                return nullptr;
            v->object[key->string] = val;
        } while (eat(','));
        return eat('}') ? v : nullptr;
    }

    JsonPtr
    array()
    {
        if (!eat('['))
            return nullptr;
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::Array;
        if (eat(']'))
            return v;
        do {
            JsonPtr val = value();
            if (!val)
                return nullptr;
            v->array.push_back(val);
        } while (eat(','));
        return eat(']') ? v : nullptr;
    }

    JsonPtr
    string_value()
    {
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return nullptr;
        ++pos_;
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::String;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return nullptr;
            }
            v->string += s_[pos_++];
        }
        if (pos_ >= s_.size())
            return nullptr;
        ++pos_;  // closing quote
        return v;
    }

    JsonPtr
    number()
    {
        skip_ws();
        const size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return nullptr;
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::Number;
        try {
            v->number = std::stod(s_.substr(start, pos_ - start));
        } catch (...) {
            return nullptr;
        }
        return v;
    }

    const std::string& s_;
    size_t pos_ = 0;
};

JsonPtr
parse_json(const std::string& text)
{
    return JsonParser(text).parse();
}

/** RAII: enable tracing on a clean recorder, restore on exit. */
class TracingScope
{
  public:
    TracingScope()
    {
        obs::reset();
        obs::set_enabled(true);
    }
    ~TracingScope()
    {
        obs::set_enabled(false);
        obs::reset();
    }
};

// ---- span collection -------------------------------------------------

TEST(ObsSpans, NestedSpansRecorded)
{
    TracingScope tracing;
    {
        obs::ScopedSpan outer(obs::Category::Wire, "outer");
        {
            obs::ScopedSpan inner(obs::Category::Dispatch, "inner");
        }
    }
    const std::vector<obs::Span> spans = obs::host_spans();
    ASSERT_EQ(spans.size(), 2u);
    // Inner closes first; both are well-formed and properly nested.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[1].name, "outer");
    EXPECT_LE(spans[0].start_ns, spans[0].end_ns);
    EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
    EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
    EXPECT_EQ(spans[0].cat, obs::Category::Dispatch);
    EXPECT_EQ(spans[1].cat, obs::Category::Wire);
}

TEST(ObsSpans, DisabledEmitsNothing)
{
    obs::reset();
    obs::set_enabled(false);
    {
        obs::ScopedSpan span(obs::Category::Wire, "ghost");
        obs::counter("ghost.counter").add(42);
        obs::observe("ghost.hist", 1.0);
        obs::add_kernel_spans({TraceSpan{"k", 0, 0.0, 1.0}}, 0.0);
    }
    EXPECT_TRUE(obs::host_spans().empty());
    EXPECT_TRUE(obs::kernel_spans().empty());
    EXPECT_EQ(obs::counter("ghost.counter").value(), 0);
    EXPECT_TRUE(obs::histogram_values().empty());
}

TEST(ObsSpans, EnabledMidwayOnlyRecordsFromThen)
{
    obs::reset();
    obs::set_enabled(false);
    { obs::ScopedSpan before(obs::Category::Wire, "before"); }
    obs::set_enabled(true);
    { obs::ScopedSpan after(obs::Category::Wire, "after"); }
    obs::set_enabled(false);
    const auto spans = obs::host_spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "after");
    obs::reset();
}

TEST(ObsSpans, ThreadSafety)
{
    TracingScope tracing;
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 200;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                obs::ScopedSpan span(
                    obs::Category::Wire,
                    "t" + std::to_string(t) + ".s" + std::to_string(i));
                obs::counter("threads.total").add();
                obs::observe("threads.hist", static_cast<double>(i));
            }
        });
    }
    for (auto& w : workers)
        w.join();
    const auto spans = obs::host_spans();
    ASSERT_EQ(spans.size(),
              static_cast<size_t>(kThreads * kSpansPerThread));
    for (const obs::Span& s : spans) {
        EXPECT_FALSE(s.name.empty());
        EXPECT_LE(s.start_ns, s.end_ns);
    }
    EXPECT_EQ(obs::counter("threads.total").value(),
              kThreads * kSpansPerThread);
    const auto hists = obs::histogram_values();
    ASSERT_EQ(hists.count("threads.hist"), 1u);
    EXPECT_EQ(hists.at("threads.hist").count(),
              static_cast<size_t>(kThreads * kSpansPerThread));
}

// ---- counters --------------------------------------------------------

TEST(ObsCounters, AggregateAndReset)
{
    TracingScope tracing;
    obs::Counter& c = obs::counter("test.counter");
    c.add();
    c.add(9);
    EXPECT_EQ(c.value(), 10);
    // Same name -> same counter object.
    EXPECT_EQ(&obs::counter("test.counter"), &c);
    const auto values = obs::counter_values();
    EXPECT_EQ(values.at("test.counter"), 10);
    obs::reset();
    EXPECT_EQ(c.value(), 0);
    obs::set_enabled(true);  // reset() keeps the enabled flag
    c.add(3);
    EXPECT_EQ(c.value(), 3);
}

TEST(ObsCounters, ConcurrentRegistrationAndLookup)
{
    // The registry sits on the parallel wirer's trial path: many
    // threads race first-time registrations (exclusive lock) against
    // hot-path lookups (shared lock) and snapshot reads. Every add
    // must land exactly once.
    TracingScope tracing;
    constexpr int kThreads = 8;
    constexpr int kIters = 500;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < kIters; ++i) {
                // Shared name: all threads race the same registration.
                obs::counter("reg.shared").add();
                // Per-thread name: distinct registrations interleave.
                obs::counter("reg.t" + std::to_string(t)).add();
                if (i % 64 == 0)
                    (void)obs::counter_values();  // concurrent snapshot
            }
        });
    }
    for (auto& w : workers)
        w.join();
    EXPECT_EQ(obs::counter("reg.shared").value(), kThreads * kIters);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(obs::counter("reg.t" + std::to_string(t)).value(),
                  kIters);
}

// ---- exporters -------------------------------------------------------

TEST(ObsExport, KernelOnlyTraceIsValidJson)
{
    std::vector<TraceSpan> spans;
    spans.push_back({"gemm \"odd\\name\"", 0, 1000.0, 5000.0});
    spans.push_back({"ew", 1, 2000.0, 3000.0});
    std::ostringstream os;
    write_chrome_trace(os, spans);
    const JsonPtr doc = parse_json(os.str());
    ASSERT_TRUE(doc);
    ASSERT_EQ(doc->kind, JsonValue::Kind::Object);
    const JsonPtr events = doc->object.at("traceEvents");
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);
    ASSERT_EQ(events->array.size(), 2u);
    for (const JsonPtr& e : events->array) {
        EXPECT_EQ(e->object.at("cat")->string, "kernel");
        EXPECT_EQ(e->object.at("ph")->string, "X");
        EXPECT_GE(e->object.at("dur")->number, 0.0);
    }
}

TEST(ObsExport, MergedTraceHasHostAndKernelSpans)
{
    TracingScope tracing;
    { obs::ScopedSpan s1(obs::Category::Enumerate, "enumerate_x"); }
    { obs::ScopedSpan s2(obs::Category::Wire, "wire_x"); }
    { obs::ScopedSpan s3(obs::Category::Dispatch, "dispatch_x"); }
    obs::add_kernel_spans({TraceSpan{"kern_x", 2, 100.0, 200.0}}, 50.0);

    std::ostringstream os;
    obs::write_chrome_trace(os);
    const JsonPtr doc = parse_json(os.str());
    ASSERT_TRUE(doc);
    const JsonPtr events = doc->object.at("traceEvents");
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);

    std::map<std::string, int> by_cat;
    bool found_kernel = false;
    for (const JsonPtr& e : events->array) {
        if (e->object.count("cat"))
            ++by_cat[e->object.at("cat")->string];
        if (e->object.count("name") &&
            e->object.at("name")->string == "kern_x") {
            found_kernel = true;
            // Anchored: sim 100ns + host 50ns anchor = 150ns = 0.15us.
            EXPECT_DOUBLE_EQ(e->object.at("ts")->number, 0.15);
            EXPECT_EQ(e->object.at("pid")->number, 0.0);
            EXPECT_EQ(e->object.at("tid")->number, 2.0);
        }
    }
    EXPECT_TRUE(found_kernel);
    EXPECT_EQ(by_cat["enumerate"], 1);
    EXPECT_EQ(by_cat["wire"], 1);
    EXPECT_EQ(by_cat["dispatch"], 1);
    EXPECT_EQ(by_cat["kernel"], 1);
}

TEST(ObsExport, FullStackTraceFromRealSession)
{
    TracingScope tracing;

    ModelConfig cfg;
    cfg.batch = 8;
    cfg.seq_len = 3;
    cfg.hidden = 64;
    cfg.embed_dim = 64;
    cfg.vocab = 50;
    const BuiltModel model = build_model(ModelKind::Scrnn, cfg);
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    // Report self-consistency (best_ns reproducible at re-measure) is
    // a base-clock property.
    opts.gpu.autoboost = false;
    AstraSession session(model.graph(), opts);
    session.optimize();

    std::ostringstream os;
    obs::write_chrome_trace(os);
    const JsonPtr doc = parse_json(os.str());
    ASSERT_TRUE(doc) << "emitted trace is not valid JSON";
    std::map<std::string, int> by_cat;
    for (const JsonPtr& e :
         doc->object.at("traceEvents")->array)
        if (e->object.count("cat"))
            ++by_cat[e->object.at("cat")->string];
    // Whole-stack coverage: every layer shows up on one timeline.
    EXPECT_GT(by_cat["enumerate"], 0);
    EXPECT_GT(by_cat["wire"], 0);
    EXPECT_GT(by_cat["dispatch"], 0);
    EXPECT_GT(by_cat["alloc"], 0);
    EXPECT_GT(by_cat["kernel"], 0);

    // Counters fed from every layer.
    const auto counters = obs::counter_values();
    EXPECT_GT(counters.at("wire.minibatches"), 0);
    EXPECT_GT(counters.at("profile_index.records"), 0);
    EXPECT_GT(counters.at("sim.kernels_launched"), 0);
    EXPECT_GT(counters.at("alloc.bytes_planned"), 0);

    std::ostringstream summary;
    obs::write_text_summary(summary);
    EXPECT_NE(summary.str().find("wire.minibatches"),
              std::string::npos);
}

// ---- convergence report ----------------------------------------------

TEST(ObsConvergence, WirerEmitsReport)
{
    ModelConfig cfg;
    cfg.batch = 8;
    cfg.seq_len = 4;
    cfg.hidden = 64;
    cfg.embed_dim = 64;
    cfg.vocab = 50;
    const BuiltModel model = build_model(ModelKind::Scrnn, cfg);
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    // The report's monotone best-so-far and final-winner identities
    // hold for comparable measurements, i.e. at a pinned clock.
    opts.gpu.autoboost = false;
    // This test asserts the all-zero fault report of a fault-free
    // exploration — pin the plan empty even under the CI fault matrix
    // (ASTRA_FAULTS arms every default-constructed GpuConfig).
    opts.gpu.faults = FaultPlan();
    AstraSession session(model.graph(), opts);
    const WirerResult r = session.optimize();

    const ConvergenceReport& rep = r.convergence;
    ASSERT_FALSE(rep.epochs.empty());
    EXPECT_DOUBLE_EQ(rep.best_ns, r.best_ns);
    EXPECT_EQ(rep.minibatches, r.minibatches);

    int64_t last_total = 0;
    double prev_best = -1.0;
    bool saw_parallel = false;
    for (const ConvergenceEpoch& e : rep.epochs) {
        EXPECT_GE(e.trials, 0);
        EXPECT_GE(e.pruned, 0);
        EXPECT_EQ(e.pruned, std::max<int64_t>(0, e.exhaustive - e.trials));
        EXPECT_GE(e.minibatches_total, last_total);
        last_total = e.minibatches_total;
        // Best-so-far time never gets worse as exploration proceeds.
        if (prev_best >= 0.0 && e.best_ns >= 0.0) {
            EXPECT_LE(e.best_ns, prev_best + 1e-9);
        }
        if (e.best_ns >= 0.0)
            prev_best = e.best_ns;
        saw_parallel |= e.mode == "parallel";
    }
    EXPECT_TRUE(saw_parallel);
    // Parallel exploration is the paper's big pruning lever (§4.5.1):
    // the report must attribute savings to it on a multi-group model.
    EXPECT_GT(rep.pruned_by("parallel"), 0);
    EXPECT_GE(rep.exhaustive_total(), rep.minibatches);
    // The final best-so-far equals the overall winner.
    EXPECT_DOUBLE_EQ(rep.epochs.back().best_ns, r.best_ns);

    // Fault-free exploration: machine-readable termination reason says
    // so, and the fault report is all zeros.
    EXPECT_EQ(r.termination, WirerTermination::Complete);
    EXPECT_EQ(rep.termination, "complete");
    EXPECT_EQ(rep.faults.injected_kernel_faults, 0);
    EXPECT_EQ(rep.faults.faulted_minibatches, 0);
    EXPECT_EQ(rep.faults.quarantined_keys, 0);
}

TEST(ObsConvergence, JsonAndCsvExports)
{
    ConvergenceReport rep;
    rep.best_ns = 123.5;
    rep.minibatches = 7;
    rep.plan_cache_hits = 9;
    rep.plan_cache_misses = 3;
    ConvergenceEpoch e;
    e.strategy = 1;
    e.stage = "chunks";
    e.mode = "parallel";
    e.trials = 4;
    e.exhaustive = 16;
    e.pruned = 12;
    e.best_ns = 123.5;
    e.minibatches_total = 4;
    rep.epochs.push_back(e);

    std::ostringstream js;
    rep.write_json(js);
    const JsonPtr doc = parse_json(js.str());
    ASSERT_TRUE(doc);
    EXPECT_DOUBLE_EQ(doc->object.at("best_ns")->number, 123.5);
    EXPECT_DOUBLE_EQ(doc->object.at("minibatches")->number, 7.0);
    EXPECT_DOUBLE_EQ(doc->object.at("plan_cache_hits")->number, 9.0);
    EXPECT_DOUBLE_EQ(doc->object.at("plan_cache_misses")->number, 3.0);
    EXPECT_DOUBLE_EQ(rep.plan_cache_hit_rate(), 0.75);
    const JsonPtr epochs = doc->object.at("epochs");
    ASSERT_EQ(epochs->array.size(), 1u);
    EXPECT_EQ(epochs->array[0]->object.at("mode")->string, "parallel");
    EXPECT_DOUBLE_EQ(epochs->array[0]->object.at("pruned")->number,
                     12.0);

    std::ostringstream csv;
    rep.write_csv(csv);
    const std::string text = csv.str();
    EXPECT_NE(text.find("strategy,stage,mode"), std::string::npos);
    EXPECT_NE(text.find("1,chunks,parallel,4,16,12"),
              std::string::npos);
}

TEST(ObsConvergence, TerminationAndFaultReportInJson)
{
    ConvergenceReport rep;
    rep.termination = "fault_quarantine";
    rep.faults.injected_kernel_faults = 4;
    rep.faults.straggler_events = 2;
    rep.faults.faulted_minibatches = 3;
    rep.faults.dispatch_retries = 5;
    rep.faults.wirer_retries = 1;
    rep.faults.quarantined_keys = 2;
    rep.faults.backoff_ns = 350000.0;

    std::ostringstream js;
    rep.write_json(js);
    const JsonPtr doc = parse_json(js.str());
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->object.at("termination")->string, "fault_quarantine");
    const JsonPtr fr = doc->object.at("fault_report");
    ASSERT_TRUE(fr);
    EXPECT_DOUBLE_EQ(fr->object.at("injected_kernel_faults")->number,
                     4.0);
    EXPECT_DOUBLE_EQ(fr->object.at("straggler_events")->number, 2.0);
    EXPECT_DOUBLE_EQ(fr->object.at("faulted_minibatches")->number, 3.0);
    EXPECT_DOUBLE_EQ(fr->object.at("dispatch_retries")->number, 5.0);
    EXPECT_DOUBLE_EQ(fr->object.at("wirer_retries")->number, 1.0);
    EXPECT_DOUBLE_EQ(fr->object.at("quarantined_keys")->number, 2.0);
    EXPECT_DOUBLE_EQ(fr->object.at("backoff_ns")->number, 350000.0);

    // Every termination value has a stable machine-readable name.
    EXPECT_STREQ(wirer_termination_name(WirerTermination::Complete),
                 "complete");
    EXPECT_STREQ(wirer_termination_name(WirerTermination::Budget),
                 "budget");
    EXPECT_STREQ(
        wirer_termination_name(WirerTermination::FaultQuarantine),
        "fault_quarantine");
    EXPECT_STREQ(wirer_termination_name(WirerTermination::Resume),
                 "resume");
}

}  // namespace
}  // namespace astra
