/**
 * @file
 * Tests for the online serving loop (src/serve) and the concurrency
 * contract of the bucketed routing path it leans on: race-free
 * concurrent bucket_for/step_ns, single-count overflow accounting,
 * strict-overflow rejection at admission, deterministic open-loop
 * traffic, and the live re-wiring story — drift detection from window
 * statistics, an off-path re-wire, and a hot swap that lets the
 * in-flight mini-batch finish on the old wired blob while the next
 * one runs the new configuration, bit-identical (by FNV fingerprint)
 * to an offline re-wire on the same throttled device.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/bucketed.h"
#include "models/models.h"
#include "serve/metrics.h"
#include "serve/queue.h"
#include "serve/replica.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/traffic.h"
#include "sim/faults.h"

namespace astra {
namespace {

namespace fs = std::filesystem;

/** Fresh per-test store directory under the test temp dir. */
std::string
fresh_store_dir(const std::string& name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/**
 * Deterministic base options: timing-only device at a pinned base
 * clock with faults disarmed and no ambient plan store — the serve
 * tests assert exact reproduction properties, which the CI noise and
 * fault matrices would otherwise perturb through the environment
 * defaults.
 */
AstraOptions
serve_astra_opts()
{
    AstraOptions o;
    o.features = features_fk();
    o.gpu.execute_kernels = false;
    o.gpu.autoboost = false;
    o.gpu.faults = FaultPlan();
    o.plan_store = "";
    return o;
}

LengthGraphFn
scrnn_builder()
{
    return [](GraphBuilder& b, int length) {
        ModelConfig cfg;
        cfg.batch = 4;
        cfg.seq_len = length;
        cfg.hidden = 32;
        cfg.embed_dim = 32;
        cfg.vocab = 50;
        BuiltModel m = build_model(ModelKind::Scrnn, cfg);
        b = std::move(*m.builder);
    };
}

BucketedAstra
make_router(std::vector<int> lengths)
{
    return BucketedAstra(std::move(lengths), scrnn_builder(),
                         serve_astra_opts());
}

/** Evenly spaced single-length traffic (drift tests pin every knob). */
std::vector<serve::ServeRequest>
steady_traffic(int count, int length, double gap_ns, double slo_ns)
{
    std::vector<serve::ServeRequest> out;
    for (int i = 0; i < count; ++i) {
        serve::ServeRequest r;
        r.id = i;
        r.arrival_ns = static_cast<double>(i + 1) * gap_ns;
        r.length = length;
        r.deadline_ns = r.arrival_ns + slo_ns;
        out.push_back(r);
    }
    return out;
}

// ---- bucketed routing concurrency (the serving fast path) ------------

TEST(BucketedRouting, ConcurrentRoutingAndServingIsRaceFree)
{
    // Serving threads route (bucket_for) and serve (step_ns)
    // concurrently through one const router. Under TSan this pins the
    // two fixed races: the once-per-instance overflow warning flag is
    // atomic, and overflow tallying happens exactly once per *routing*
    // — step_ns's non-counting lookup never double-counts.
    BucketedAstra router = make_router({3, 4});
    router.optimize();

    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    std::atomic<int> routed_overflows{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&router, &routed_overflows, t] {
            for (int i = 0; i < kPerThread; ++i) {
                // Half the threads route overflowing lengths, half
                // route in-range ones; everyone serves what it routed.
                const int len = (t % 2 == 0) ? 99 : 3;
                const int bucket = router.bucket_for(len);
                EXPECT_EQ(bucket, (t % 2 == 0) ? 1 : 0);
                if (len > 4)
                    routed_overflows.fetch_add(1);
                const double ns = router.step_ns(len);
                EXPECT_GT(ns, 0.0);
            }
        });
    }
    for (auto& th : threads)
        th.join();

    // Every overflow was counted exactly once: by bucket_for at
    // routing time, never again when step_ns served the same length.
    EXPECT_EQ(router.overflow_count(), routed_overflows.load());
    EXPECT_EQ(router.overflow_count(), 2 * kPerThread);
}

TEST(BucketedRouting, OverflowCountedOncePerRoutingDecision)
{
    // The regression this pins: step_ns used to re-invoke the counting
    // bucket_for, so one routed-then-served request tallied twice.
    BucketedAstra router = make_router({3, 4});
    router.optimize();

    ASSERT_EQ(router.overflow_count(), 0);
    const int bucket = router.bucket_for(50);
    EXPECT_EQ(bucket, 1);
    EXPECT_EQ(router.overflow_count(), 1);

    (void)router.step_ns(50);
    EXPECT_EQ(router.overflow_count(), 1);  // serving must not re-count

    // An unrouted in-range length is never an overflow from any path.
    (void)router.step_ns(3);
    EXPECT_EQ(router.overflow_count(), 1);
}

TEST(BucketedRouting, StrictOverflowRejectsInsteadOfClamping)
{
    BucketedAstra router = make_router({3, 4});
    router.optimize();
    router.set_strict_overflow(true);

    EXPECT_THROW((void)router.bucket_for(5), std::out_of_range);
    EXPECT_THROW((void)router.step_ns(5), std::out_of_range);
    EXPECT_EQ(router.bucket_for(4), 1);
    // Rejected lengths are not clamps; the overflow tally stays clean.
    EXPECT_EQ(router.overflow_count(), 0);
}

// ---- admission queue -------------------------------------------------

TEST(AdmissionQueue, StrictOverflowRejectsAtAdmission)
{
    BucketedAstra router = make_router({3, 4});
    router.set_strict_overflow(true);
    serve::AdmissionQueue queue(router);

    serve::ServeRequest ok;
    ok.length = 3;
    ok.deadline_ns = 10.0;
    serve::ServeRequest too_long;
    too_long.length = 9;
    too_long.deadline_ns = 5.0;

    EXPECT_TRUE(queue.admit(ok));
    EXPECT_FALSE(queue.admit(too_long));  // refused, not truncated
    EXPECT_EQ(queue.admitted(), 1);
    EXPECT_EQ(queue.rejected(), 1);
    EXPECT_EQ(queue.depth(), 1u);
}

TEST(AdmissionQueue, RoutesToSmallestCoveringBucketAndBatchesFifo)
{
    BucketedAstra router = make_router({3, 4});
    serve::AdmissionQueue queue(router);

    for (int i = 0; i < 5; ++i) {
        serve::ServeRequest r;
        r.id = i;
        r.length = (i < 3) ? 2 : 4;
        r.deadline_ns = 100.0 - i;  // later arrivals, tighter deadlines
        ASSERT_TRUE(queue.admit(r));
    }
    EXPECT_EQ(queue.depth(0), 3u);
    EXPECT_EQ(queue.depth(1), 2u);

    // Head deadlines: bucket 0 holds id 0 (100), bucket 1 id 3 (97).
    EXPECT_EQ(queue.most_urgent_bucket(), 1);
    const auto batch = queue.pop_batch(1, 8);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].id, 3);  // FIFO within the bucket
    EXPECT_EQ(batch[1].id, 4);
    EXPECT_EQ(queue.most_urgent_bucket(), 0);
}

// ---- traffic generation ----------------------------------------------

TEST(Traffic, DeterministicPoissonWithBursts)
{
    serve::TrafficConfig cfg;
    cfg.duration_ns = 2e8;
    cfg.base_rps = 400.0;
    cfg.slo_ns = 10e6;
    cfg.seed = 7;
    cfg.bursts.push_back({5e7, 1e8, 3.0});

    const auto a = serve::generate_traffic(cfg);
    const auto b = serve::generate_traffic(cfg);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, static_cast<int64_t>(i));
        EXPECT_DOUBLE_EQ(a[i].arrival_ns, b[i].arrival_ns);
        EXPECT_EQ(a[i].length, b[i].length);
        EXPECT_DOUBLE_EQ(a[i].deadline_ns, a[i].arrival_ns + cfg.slo_ns);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_ns, a[i - 1].arrival_ns);
        }
        EXPECT_GE(a[i].length, cfg.min_length);
    }

    // The burst phase triples the rate over [50ms, 100ms): that
    // window must be visibly denser than the preceding calm one.
    int calm = 0, burst = 0;
    for (const auto& r : a) {
        if (r.arrival_ns < 5e7)
            ++calm;
        else if (r.arrival_ns < 1e8)
            ++burst;
    }
    EXPECT_GT(burst, calm * 3 / 2);

    serve::TrafficConfig other = cfg;
    other.seed = 8;
    const auto c = serve::generate_traffic(other);
    ASSERT_FALSE(c.empty());
    EXPECT_TRUE(c.size() != a.size() ||
                c[0].arrival_ns != a[0].arrival_ns);
}

TEST(Traffic, PeakMultiplierCoversPhaseEndChangePoints)
{
    // Overlapping phases: [0,100)x2.0 dimmed by [0,50)x0.1. The rate
    // *rises* when the sub-unity phase ends, so the true peak (2.0 on
    // [50,100)) is only visible at an end_ns change point. Probing
    // starts alone would report 1.0 and break the thinning bound.
    serve::TrafficConfig cfg;
    cfg.bursts.push_back({0.0, 100.0, 2.0});
    cfg.bursts.push_back({0.0, 50.0, 0.1});
    EXPECT_DOUBLE_EQ(cfg.rate_multiplier_at(25.0), 0.2);
    EXPECT_DOUBLE_EQ(cfg.rate_multiplier_at(75.0), 2.0);
    EXPECT_DOUBLE_EQ(cfg.peak_multiplier(), 2.0);

    // The thinning invariant behind the fix: peak bounds the rate at
    // every change point, so acceptance probabilities never exceed 1.
    const double peak = cfg.peak_multiplier();
    for (const serve::BurstPhase& p : cfg.bursts) {
        EXPECT_LE(cfg.rate_multiplier_at(p.start_ns), peak);
        EXPECT_LE(cfg.rate_multiplier_at(p.end_ns), peak);
    }
}

TEST(Traffic, RejectsDegenerateLengthConfig)
{
    serve::TrafficConfig cfg;
    cfg.duration_ns = 1e6;
    cfg.base_rps = 1000.0;
    cfg.slo_ns = 1e6;

    serve::TrafficConfig zero_div = cfg;
    zero_div.length_div = 0;  // would be integer division by zero
    EXPECT_DEATH((void)serve::generate_traffic(zero_div),
                 "length_div");

    serve::TrafficConfig zero_min = cfg;
    zero_min.min_length = 0;  // would emit zero-length requests
    EXPECT_DEATH((void)serve::generate_traffic(zero_min),
                 "min_length");
}

// ---- serving loop ----------------------------------------------------

TEST(Serve, CalmTrafficMeetsSloAndDropsNothing)
{
    serve::ServeOptions so;
    so.bucket_lengths = {3, 4};
    so.build = scrnn_builder();
    so.astra = serve_astra_opts();
    so.max_batch = 4;
    so.strict_overflow = false;
    serve::BucketedServer server(std::move(so));
    ASSERT_GT(server.optimize(), 0);

    // Self-calibrate against the measured plan: arrivals at half the
    // per-request service capacity, SLO at 20 batch times.
    const double batch_ns = server.plan(1).baseline_ns;
    serve::TrafficConfig cfg;
    cfg.duration_ns = 400.0 * batch_ns;
    cfg.base_rps = 0.5 * 4.0 * 1e9 / batch_ns;
    cfg.slo_ns = 20.0 * batch_ns;
    cfg.length_div = 20;  // PTB lengths scaled into the {3,4} buckets
    cfg.seed = 11;
    const auto traffic = serve::generate_traffic(cfg);
    ASSERT_GT(traffic.size(), 50u);

    const serve::ServeReport rep = server.serve(traffic);
    EXPECT_EQ(rep.offered, static_cast<int64_t>(traffic.size()));
    EXPECT_EQ(rep.served, rep.offered);
    EXPECT_EQ(rep.dropped, 0);
    EXPECT_EQ(rep.rejected, 0);
    EXPECT_EQ(rep.deadline_misses, 0);
    EXPECT_LE(rep.p99_ns, cfg.slo_ns);
    EXPECT_GT(rep.goodput_rps, 0.0);
    EXPECT_GT(rep.batches, 0);
    // Padded slots exist (variable lengths in fixed buckets) but the
    // accounting stays a fraction.
    EXPECT_GE(rep.padded_token_frac, 0.0);
    EXPECT_LT(rep.padded_token_frac, 1.0);
    // Calm device: the armed watcher must stay silent.
    EXPECT_EQ(rep.drift_detections, 0);
    EXPECT_EQ(rep.swaps, 0);
}

TEST(Serve, ArmedWatcherIsFreeInSimulatedTime)
{
    // The watcher observes completed batches; it never adds simulated
    // work. On a calm device the whole latency distribution must be
    // bit-identical with the watcher armed or disarmed.
    auto run = [](bool watcher_on) {
        serve::ServeOptions so;
        so.bucket_lengths = {4};
        so.build = scrnn_builder();
        so.astra = serve_astra_opts();
        so.max_batch = 2;
        so.watcher.enabled = watcher_on;
        serve::BucketedServer server(std::move(so));
        server.optimize();
        const double b = server.plan(0).baseline_ns;
        return server.serve(
            steady_traffic(40, 4, 1.5 * b, 30.0 * b));
    };

    const serve::ServeReport armed = run(true);
    const serve::ServeReport disarmed = run(false);
    EXPECT_DOUBLE_EQ(armed.p50_ns, disarmed.p50_ns);
    EXPECT_DOUBLE_EQ(armed.p99_ns, disarmed.p99_ns);
    EXPECT_DOUBLE_EQ(armed.makespan_ns, disarmed.makespan_ns);
    EXPECT_EQ(armed.batches, disarmed.batches);
    EXPECT_EQ(armed.drift_detections, 0);
}

TEST(Serve, DriftTriggersRewireAndHotSwapWithoutDrops)
{
    serve::ServeOptions so;
    so.bucket_lengths = {4};
    so.build = scrnn_builder();
    so.astra = serve_astra_opts();
    // The full knowledge-base story: optimize() writes the base-clock
    // entry; the re-wire under throttled clocks L1-hits it (gpu_sig
    // ignores the forced multiplier), fails drift verification, warm
    // starts, and writes the refreshed entry back.
    so.astra.plan_store = fresh_store_dir("serve_drift_store");
    so.max_batch = 2;
    so.watcher.min_window = 3;
    so.record_batches = true;
    serve::BucketedServer server(std::move(so));
    server.optimize();

    const double b = server.plan(0).baseline_ns;
    ASSERT_GT(b, 0.0);
    const double gap = 1.5 * b;
    const double drift_at = 20.0 * gap;

    // The drifting run: same workload, but with a thermal-throttle
    // step injected mid-trace (the schedule is fixed at construction,
    // so this is a second server).
    serve::ServeOptions so2;
    so2.bucket_lengths = {4};
    so2.build = scrnn_builder();
    so2.astra = serve_astra_opts();
    so2.astra.plan_store = fresh_store_dir("serve_drift_store2");
    so2.max_batch = 2;
    so2.watcher.min_window = 3;
    so2.record_batches = true;
    so2.rewire_latency_ns = 5.0 * b;
    // 0.7x clocks stretch every batch by ~1.43x — beyond the default
    // 0.25 drift margin, so the watcher must fire.
    so2.clock_schedule.push_back({drift_at, 0.7});
    serve::BucketedServer drifting(std::move(so2));
    drifting.optimize();

    const auto traffic = steady_traffic(60, 4, gap, 40.0 * b);
    const serve::ServeReport rep = drifting.serve(traffic);

    EXPECT_EQ(rep.offered, 60);
    EXPECT_EQ(rep.served, 60);
    EXPECT_EQ(rep.dropped, 0);
    EXPECT_GE(rep.drift_detections, 1);
    EXPECT_GE(rep.rewires, 1);
    EXPECT_GE(rep.swaps, 1);
    // Detection within a bounded request budget after drift onset.
    EXPECT_GE(rep.detection_request_budget, 1);
    EXPECT_LE(rep.detection_request_budget, 20);

    // Hot-swap contract over the batch log: epochs only move forward,
    // the swap lands between batches (never inside one), and at least
    // one batch still ran on the old blob *after* drift onset — the
    // off-path re-wire did not stall serving.
    ASSERT_FALSE(rep.batch_log.empty());
    EXPECT_EQ(rep.batch_log.front().plan_epoch, 0);
    EXPECT_GE(rep.batch_log.back().plan_epoch, 1);
    bool old_blob_served_during_rewire = false;
    for (size_t i = 1; i < rep.batch_log.size(); ++i) {
        const auto& prev = rep.batch_log[i - 1];
        const auto& cur = rep.batch_log[i];
        EXPECT_GE(cur.plan_epoch, prev.plan_epoch);
        EXPECT_GE(cur.start_ns, prev.end_ns);  // batches serialize
        if (cur.plan_epoch == 0 && cur.start_ns > drift_at)
            old_blob_served_during_rewire = true;
    }
    EXPECT_TRUE(old_blob_served_during_rewire);
    EXPECT_EQ(drifting.plan(0).epoch, 1);

    // Bit-identity: an offline re-wire on the same throttled device
    // resolves to the exact configuration the live swap installed
    // (the refreshed store entry answers it at L1).
    GpuConfig throttled = serve_astra_opts().gpu;
    throttled.forced_clock_multiplier = 0.7;
    const auto offline = drifting.rewire(0, throttled);
    EXPECT_EQ(offline.config_fnv, drifting.plan(0).config_fnv);
    EXPECT_NE(offline.config_fnv, 0u);

    // The unused calm server pins the no-schedule default: no drift
    // ever detected on a base-clock device.
    const serve::ServeReport calm = server.serve(traffic);
    EXPECT_EQ(calm.drift_detections, 0);
    EXPECT_EQ(calm.swaps, 0);
    EXPECT_EQ(server.plan(0).epoch, 0);
}

TEST(Serve, StrictOverflowSurfacesRejectionsInReport)
{
    serve::ServeOptions so;
    so.bucket_lengths = {3, 4};
    so.build = scrnn_builder();
    so.astra = serve_astra_opts();
    so.strict_overflow = true;
    serve::BucketedServer server(std::move(so));
    server.optimize();

    const double b = server.plan(1).baseline_ns;
    auto traffic = steady_traffic(10, 4, 2.0 * b, 30.0 * b);
    traffic[3].length = 50;  // beyond the largest bucket
    traffic[7].length = 50;

    const serve::ServeReport rep = server.serve(traffic);
    EXPECT_EQ(rep.offered, 10);
    EXPECT_EQ(rep.rejected, 2);
    EXPECT_EQ(rep.admitted, 8);
    EXPECT_EQ(rep.served, 8);
    EXPECT_EQ(rep.dropped, 0);
    // Rejections are refusals, not clamps: the router's truncation
    // tally stays clean.
    EXPECT_EQ(server.router().overflow_count(), 0);
}

TEST(Serve, StrictOverflowRejectedTrailingRequestsEndLoopCleanly)
{
    // Regression: when the *final* arrivals are all strict-overflow
    // rejected while the queue is drained, the loop used to advance
    // past the trace and read traffic[traffic.size()] in the idle
    // branch. It must terminate cleanly instead.
    serve::ServeOptions so;
    so.bucket_lengths = {3, 4};
    so.build = scrnn_builder();
    so.astra = serve_astra_opts();
    so.strict_overflow = true;
    serve::BucketedServer server(std::move(so));
    server.optimize();

    const double b = server.plan(1).baseline_ns;
    auto traffic = steady_traffic(10, 4, 2.0 * b, 30.0 * b);
    traffic[8].length = 50;  // beyond the largest bucket
    traffic[9].length = 50;

    const serve::ServeReport rep = server.serve(traffic);
    EXPECT_EQ(rep.offered, 10);
    EXPECT_EQ(rep.rejected, 2);
    EXPECT_EQ(rep.admitted, 8);
    EXPECT_EQ(rep.served, 8);
    EXPECT_EQ(rep.dropped, 0);

    // Degenerate variant from the review: a trace whose *only*
    // request exceeds the largest bucket.
    auto lone = steady_traffic(1, 4, 2.0 * b, 30.0 * b);
    lone[0].length = 50;
    const serve::ServeReport none = server.serve(lone);
    EXPECT_EQ(none.offered, 1);
    EXPECT_EQ(none.rejected, 1);
    EXPECT_EQ(none.served, 0);
    EXPECT_EQ(none.dropped, 0);
}

// ---- bounded queue policies (fleet shedding building blocks) ---------

TEST(AdmissionQueue, EdfShedEvictsLatestDeadlineNotNewestArrival)
{
    BucketedAstra router = make_router({4});
    serve::AdmissionQueue q(router, 2, serve::QueuePolicy::EdfShed);

    serve::ServeRequest a{0, 10.0, 4, 500.0};
    serve::ServeRequest b{1, 20.0, 4, 900.0};  // most slack: the victim
    serve::ServeRequest c{2, 30.0, 4, 400.0};
    ASSERT_TRUE(q.admit_bounded(a).admitted);
    ASSERT_TRUE(q.admit_bounded(b).admitted);

    const serve::AdmitResult r = q.admit_bounded(c);
    EXPECT_TRUE(r.admitted);  // the arrival wins a slot...
    ASSERT_TRUE(r.evicted);   // ...by evicting the laziest deadline
    EXPECT_EQ(r.victim.id, 1);
    EXPECT_EQ(q.depth(0), 2u);
    EXPECT_EQ(q.overflowed(), 1);

    // An arrival with the latest deadline of all is its own victim:
    // rejected outright, nothing queued is disturbed.
    serve::ServeRequest d{3, 40.0, 4, 2000.0};
    const serve::AdmitResult r2 = q.admit_bounded(d);
    EXPECT_FALSE(r2.admitted);
    EXPECT_FALSE(r2.evicted);
    EXPECT_EQ(q.depth(0), 2u);

    // FIFO tail-drop under the same pressure refuses the newcomer even
    // though it has less slack than everything queued.
    serve::AdmissionQueue fifo(router, 2,
                               serve::QueuePolicy::FifoOverflow);
    ASSERT_TRUE(fifo.admit_bounded(a).admitted);
    ASSERT_TRUE(fifo.admit_bounded(b).admitted);
    const serve::AdmitResult r3 = fifo.admit_bounded(c);
    EXPECT_FALSE(r3.admitted);
    EXPECT_FALSE(r3.evicted);
}

TEST(AdmissionQueue, ShedHopelessDropsOnlyDoomedRequests)
{
    BucketedAstra router = make_router({4});
    serve::AdmissionQueue q(router);
    q.admit(serve::ServeRequest{0, 0.0, 4, 100.0});   // doomed
    q.admit(serve::ServeRequest{1, 0.0, 4, 1000.0});  // can still win
    q.admit(serve::ServeRequest{2, 0.0, 4, 140.0});   // doomed

    const auto shed = q.shed_hopeless(0, 50.0, 100.0);
    ASSERT_EQ(shed.size(), 2u);
    EXPECT_EQ(shed[0].id, 0);
    EXPECT_EQ(shed[1].id, 2);
    ASSERT_EQ(q.depth(0), 1u);
    EXPECT_EQ(q.head(0).id, 1);
}

TEST(AdmissionQueue, RequeuePreservesAgeOrderWithoutRecounting)
{
    BucketedAstra router = make_router({4});
    serve::AdmissionQueue q(router, 2, serve::QueuePolicy::EdfShed);
    q.admit_bounded(serve::ServeRequest{0, 10.0, 4, 500.0});
    q.admit_bounded(serve::ServeRequest{1, 20.0, 4, 600.0});
    const int64_t admitted_before = q.admitted();

    // A failed-over request re-enters at the *front* (it is the oldest
    // work in the bucket), is not a second admission, and is exempt
    // from the capacity bound: its slot was granted at admission.
    q.requeue(serve::ServeRequest{7, 1.0, 4, 450.0});
    EXPECT_EQ(q.admitted(), admitted_before);
    EXPECT_EQ(q.depth(0), 3u);
    EXPECT_EQ(q.head(0).id, 7);
}

// ---- multi-replica fleet: failover, degradation, exactly-once --------

serve::FleetOptions
fleet_options(std::vector<int> lengths, const std::string& store,
              int replicas)
{
    serve::FleetOptions fo;
    fo.base.bucket_lengths = std::move(lengths);
    fo.base.build = scrnn_builder();
    fo.base.astra = serve_astra_opts();
    fo.base.astra.plan_store = store;
    fo.base.max_batch = 2;
    fo.replicas = replicas;
    return fo;
}

TEST(Fleet, ArmedButSilentSingleReplicaMatchesSingleServer)
{
    const std::string store = fresh_store_dir("fleet_silent_store");
    serve::ServeOptions so;
    so.bucket_lengths = {4};
    so.build = scrnn_builder();
    so.astra = serve_astra_opts();
    so.astra.plan_store = store;
    so.max_batch = 2;
    serve::BucketedServer server(std::move(so));
    server.optimize();

    const double b = server.plan(0).baseline_ns;
    ASSERT_GT(b, 0.0);
    const auto traffic = steady_traffic(40, 4, 1.5 * b, 40.0 * b);
    const serve::ServeReport single = server.serve(traffic);

    // The fleet carries a death spec that never fires inside the
    // trace: detection machinery armed, failure path silent. The DES
    // must reproduce the single-server loop bit-for-bit.
    serve::FleetOptions fo = fleet_options({4}, store, 1);
    ASSERT_TRUE(FaultPlan::parse("replica_death:r=0,at_ns=1e17",
                                 &fo.faults));
    serve::ReplicaFleet fleet(std::move(fo));
    fleet.optimize();
    const serve::FleetReport rep = fleet.serve(traffic);

    EXPECT_EQ(rep.total.offered, single.offered);
    EXPECT_EQ(rep.total.served, single.served);
    EXPECT_EQ(rep.total.dropped, 0);
    EXPECT_EQ(rep.total.batches, single.batches);
    EXPECT_EQ(rep.total.p99_ns, single.p99_ns);
    EXPECT_EQ(rep.total.makespan_ns, single.makespan_ns);
    EXPECT_EQ(rep.deaths_detected, 0);
    EXPECT_EQ(rep.failed_batches, 0);
    EXPECT_EQ(rep.retries, 0);
    EXPECT_EQ(rep.failover_detect_budget, -1);
}

TEST(Fleet, ReplicaDeathFailsOverExactlyOnce)
{
    serve::ReplicaFleet probe(fleet_options(
        {4}, fresh_store_dir("fleet_death_probe"), 2));
    probe.optimize();
    const double b = probe.replica(0).plan(0).baseline_ns;
    ASSERT_GT(b, 0.0);
    // 125% of fleet capacity: both replicas are continuously busy
    // from early in the trace, so the death lands mid-batch and the
    // failover path (not just detection) runs.
    const double gap = 0.2 * b;
    const double death_at = 80.0 * gap;

    serve::FleetOptions fo =
        fleet_options({4}, fresh_store_dir("fleet_death_store"), 2);
    ASSERT_TRUE(FaultPlan::parse(
        "replica_death:r=1,at_ns=" + std::to_string(death_at),
        &fo.faults));
    serve::ReplicaFleet fleet(std::move(fo));
    fleet.optimize();

    // TSan value: a health-checker thread polls plan snapshots while
    // the DES loop routes — the slot mutex is the only thing between
    // them.
    std::atomic<bool> stop{false};
    std::thread poller([&] {
        uint64_t sink = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            for (int i = 0; i < fleet.num_replicas(); ++i) {
                const auto p = fleet.replica(i).plan(0);
                sink ^= p.config_fnv + static_cast<uint64_t>(p.epoch);
            }
        }
        (void)sink;
    });

    const auto traffic = steady_traffic(200, 4, gap, 500.0 * b);
    const serve::FleetReport rep = fleet.serve(traffic);
    stop.store(true);
    poller.join();

    EXPECT_EQ(rep.total.offered, 200);
    EXPECT_EQ(rep.total.dropped, 0);
    EXPECT_EQ(rep.double_served, 0);
    EXPECT_EQ(rep.failed, 0);  // the survivor absorbed every retry
    EXPECT_EQ(rep.total.served, 200);
    EXPECT_EQ(rep.deaths_detected, 1);
    EXPECT_GE(rep.failed_batches, 1);
    EXPECT_GE(rep.retries, 1);
    EXPECT_GE(rep.failover_detect_budget, 0);
    ASSERT_EQ(rep.replicas.size(), 2u);
    EXPECT_EQ(rep.replicas[1].deaths, 1);
    EXPECT_EQ(rep.replicas[0].deaths, 0);
    // Repeat on the same fleet: counters are bit-identical (the fault
    // schedule is simulated time, not wall time).
    const serve::FleetReport again = fleet.serve(traffic);
    EXPECT_EQ(again.total.served, rep.total.served);
    EXPECT_EQ(again.retries, rep.retries);
    EXPECT_EQ(again.failed_batches, rep.failed_batches);
    EXPECT_EQ(again.failover_detect_budget,
              rep.failover_detect_budget);
    EXPECT_EQ(again.total.makespan_ns, rep.total.makespan_ns);
}

TEST(Fleet, FlapBlipShorterThanHeartbeatIsNotADeath)
{
    serve::ReplicaFleet probe(fleet_options(
        {4}, fresh_store_dir("fleet_flap_probe"), 2));
    probe.optimize();
    const double b = probe.replica(0).plan(0).baseline_ns;
    const double gap = 0.2 * b;

    serve::FleetOptions fo =
        fleet_options({4}, fresh_store_dir("fleet_flap_store"), 2);
    // One blip much shorter than the heartbeat deadline (auto: 2x the
    // bucket baseline): the in-flight batch dies, but the replica is
    // back before its heartbeat deadline passes — a retry, not a
    // declared death.
    ASSERT_TRUE(FaultPlan::parse(
        "replica_flap:r=1,at_ns=" + std::to_string(80.0 * gap) +
            ",down_ns=" + std::to_string(0.2 * b) + ",count=1",
        &fo.faults));
    serve::ReplicaFleet fleet(std::move(fo));
    fleet.optimize();
    ASSERT_GT(fleet.heartbeat_timeout_ns(), 0.2 * b);

    const auto traffic = steady_traffic(200, 4, gap, 500.0 * b);
    const serve::FleetReport rep = fleet.serve(traffic);

    EXPECT_EQ(rep.total.dropped, 0);
    EXPECT_EQ(rep.double_served, 0);
    EXPECT_EQ(rep.total.served, 200);
    EXPECT_EQ(rep.deaths_detected, 0);  // blip suppressed
    EXPECT_EQ(rep.rejoins, 0);
    EXPECT_GE(rep.failed_batches, 1);  // but the batch still failed
    EXPECT_GE(rep.retries, 1);
    ASSERT_EQ(rep.replicas.size(), 2u);
    EXPECT_EQ(rep.replicas[1].deaths, 0);
}

TEST(Fleet, FleetExtinctionFailsQueuedRequestsInsteadOfLosingThem)
{
    serve::ReplicaFleet probe(fleet_options(
        {4}, fresh_store_dir("fleet_extinct_probe"), 1));
    probe.optimize();
    const double b = probe.replica(0).plan(0).baseline_ns;
    const double gap = 0.6 * b;

    serve::FleetOptions fo =
        fleet_options({4}, fresh_store_dir("fleet_extinct_store"), 1);
    ASSERT_TRUE(FaultPlan::parse(
        "replica_death:r=0,at_ns=" + std::to_string(30.0 * gap),
        &fo.faults));
    serve::ReplicaFleet fleet(std::move(fo));
    fleet.optimize();

    const auto traffic = steady_traffic(60, 4, gap, 500.0 * b);
    const serve::FleetReport rep = fleet.serve(traffic);

    // The only replica died mid-trace: everything already served
    // stays served, everything else resolves Failed — audited, never
    // silently dropped.
    EXPECT_EQ(rep.total.offered, 60);
    EXPECT_EQ(rep.total.dropped, 0);
    EXPECT_EQ(rep.double_served, 0);
    EXPECT_EQ(rep.deaths_detected, 1);
    EXPECT_GT(rep.total.served, 0);
    EXPECT_GT(rep.failed, 0);
    EXPECT_EQ(rep.total.served + rep.failed, rep.total.admitted);
}

TEST(Fleet, DriftDegradesToGenericDispatchThenSwapsBack)
{
    serve::ReplicaFleet probe(fleet_options(
        {4}, fresh_store_dir("fleet_degrade_probe"), 2));
    probe.optimize();
    const double b = probe.replica(0).plan(0).baseline_ns;
    const double gap = 0.3 * b;

    serve::FleetOptions fo =
        fleet_options({4}, fresh_store_dir("fleet_degrade_store"), 2);
    fo.base.watcher.min_window = 3;
    fo.base.rewire_latency_ns = 4.0 * b;
    // Replica 1 throttles mid-trace; replica 0 stays calm. The drift
    // watcher must invalidate replica 1's blob (generic dispatch, same
    // simulated semantics), re-wire off-path, and hot-swap back.
    fo.replica_clocks = {{}, {{30.0 * gap, 0.7}}};
    serve::ReplicaFleet fleet(std::move(fo));
    fleet.optimize();

    const auto traffic = steady_traffic(200, 4, gap, 500.0 * b);
    const serve::FleetReport rep = fleet.serve(traffic);

    EXPECT_EQ(rep.total.dropped, 0);
    EXPECT_EQ(rep.double_served, 0);
    EXPECT_EQ(rep.total.served, 200);
    EXPECT_EQ(rep.deaths_detected, 0);
    ASSERT_EQ(rep.replicas.size(), 2u);
    EXPECT_GE(rep.replicas[1].rewires, 1);
    EXPECT_GE(rep.replicas[1].swaps, 1);
    EXPECT_GE(rep.generic_batches, 1);  // degraded window served
    EXPECT_GE(rep.swap_backs, 1);       // and recovered
    EXPECT_EQ(rep.replicas[0].rewires, 0);
    EXPECT_EQ(rep.replicas[0].generic_batches, 0);
    // The swap landed: replica 1 runs a later plan epoch now.
    EXPECT_GE(fleet.replica(1).plan(0).epoch, 1);
}

TEST(Fleet, DeathBetweenRewireReadyAndSwapInstallLosesNothing)
{
    // Satellite chaos scenario: replica 1 drifts, the off-path re-wire
    // completes, and the replica is killed before the swap installs.
    // The pending plan must simply never install; queued and in-flight
    // work fails over with zero losses and zero duplicates. The gap
    // [re-wire ready, swap installed] is a simulated-time window, so
    // we scan death times across the re-wire region deterministically
    // and require at least one landing inside the gap.
    const std::string store = fresh_store_dir("fleet_gap_store");
    serve::ReplicaFleet probe(fleet_options({4}, store, 2));
    probe.optimize();
    const double b = probe.replica(0).plan(0).baseline_ns;
    const double gap = 0.25 * b;
    const double drift_at = 40.0 * gap;

    bool hit_gap = false;
    for (int k = 0; k <= 10 && !hit_gap; ++k) {
        const double death_at = drift_at + (4.0 + 2.0 * k) * b;
        serve::FleetOptions fo = fleet_options({4}, store, 2);
        fo.base.watcher.min_window = 3;
        fo.base.rewire_latency_ns = 6.0 * b;
        fo.replica_clocks = {{}, {{drift_at, 0.7}}};
        ASSERT_TRUE(FaultPlan::parse(
            "replica_death:r=1,at_ns=" + std::to_string(death_at),
            &fo.faults));
        serve::ReplicaFleet fleet(std::move(fo));
        fleet.optimize();

        // TSan value: concurrent plan-snapshot polling while the DES
        // loop installs/abandons pending swaps.
        std::atomic<bool> stop{false};
        std::thread poller([&] {
            uint64_t sink = 0;
            while (!stop.load(std::memory_order_relaxed))
                sink ^= fleet.replica(1).plan(0).config_fnv;
            (void)sink;
        });
        const auto traffic = steady_traffic(200, 4, gap, 500.0 * b);
        const serve::FleetReport rep = fleet.serve(traffic);
        stop.store(true);
        poller.join();

        // Exactly-once holds at *every* death position...
        EXPECT_EQ(rep.total.dropped, 0) << "death_at=" << death_at;
        EXPECT_EQ(rep.double_served, 0) << "death_at=" << death_at;
        EXPECT_EQ(rep.deaths_detected, 1) << "death_at=" << death_at;
        ASSERT_EQ(rep.replicas.size(), 2u);
        // ...and we keep scanning until one lands in the window where
        // the re-wire finished but the swap never got to install.
        if (rep.replicas[1].rewires >= 1 &&
            rep.replicas[1].swaps == 0) {
            hit_gap = true;
            EXPECT_EQ(fleet.replica(1).plan(0).epoch, 0);
        }
    }
    EXPECT_TRUE(hit_gap)
        << "no scanned death time landed between re-wire-ready and "
           "swap-install; widen the scan";
}

}  // namespace
}  // namespace astra
