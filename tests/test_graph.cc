/**
 * @file
 * Tests for the dataflow-graph IR: builder shape inference, provenance
 * scopes, users/dependency queries, validation, printing.
 */
#include <gtest/gtest.h>

#include "graph/builder.h"

namespace astra {
namespace {

TEST(Builder, MatMulShapeInference)
{
    GraphBuilder b;
    const NodeId x = b.input({4, 8});
    const NodeId w = b.param({8, 16});
    const NodeId y = b.matmul(x, w);
    EXPECT_EQ(b.graph().node(y).desc.shape, (Shape{4, 16}));
}

TEST(Builder, MatMulTransposeShapes)
{
    GraphBuilder b;
    const NodeId a = b.input({8, 4});   // A^T is 4x8
    const NodeId w = b.param({16, 8});  // B^T is 8x16
    const NodeId y = b.matmul(a, w, true, true);
    EXPECT_EQ(b.graph().node(y).desc.shape, (Shape{4, 16}));
}

TEST(Builder, ElementwiseAndActivations)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 3});
    const NodeId y = b.input({2, 3});
    EXPECT_EQ(b.graph().node(b.add(x, y)).desc.shape, (Shape{2, 3}));
    EXPECT_EQ(b.graph().node(b.mul(x, y)).kind, OpKind::Mul);
    EXPECT_EQ(b.graph().node(b.sigmoid(x)).kind, OpKind::Sigmoid);
    EXPECT_EQ(b.graph().node(b.one_minus(x)).kind, OpKind::OneMinus);
    const NodeId s = b.scale(x, 2.5f);
    EXPECT_FLOAT_EQ(b.graph().node(s).scalar, 2.5f);
}

TEST(Builder, BiasAddSumRows)
{
    GraphBuilder b;
    const NodeId x = b.input({4, 6});
    const NodeId bias = b.param({6});
    EXPECT_EQ(b.graph().node(b.bias_add(x, bias)).desc.shape,
              (Shape{4, 6}));
    EXPECT_EQ(b.graph().node(b.sum_rows(x)).desc.shape, (Shape{6}));
}

TEST(Builder, ConcatSlice)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 3});
    const NodeId y = b.input({2, 5});
    const NodeId c = b.concat({x, y});
    EXPECT_EQ(b.graph().node(c).desc.shape, (Shape{2, 8}));
    const NodeId s = b.slice(c, 3, 5);
    EXPECT_EQ(b.graph().node(s).desc.shape, (Shape{2, 5}));
    EXPECT_EQ(b.graph().node(s).offset, 3);
}

TEST(Builder, EmbeddingAndLoss)
{
    GraphBuilder b;
    const NodeId table = b.param({100, 16});
    const NodeId ids = b.input_ids(8, 100);
    const NodeId e = b.embedding(table, ids);
    EXPECT_EQ(b.graph().node(e).desc.shape, (Shape{8, 16}));
    const NodeId w = b.param({16, 100});
    const NodeId logits = b.matmul(e, w);
    const NodeId labels = b.input_ids(8, 100);
    const NodeId loss = b.cross_entropy(logits, labels);
    EXPECT_EQ(b.graph().node(loss).desc.shape, (Shape{1}));
}

TEST(Builder, ScopeStack)
{
    GraphBuilder b;
    NodeId inner;
    {
        GraphBuilder::Scoped l0(b, "layer0");
        {
            GraphBuilder::Scoped t0(b, "t0");
            inner = b.input({1, 1});
        }
    }
    EXPECT_EQ(b.graph().node(inner).scope, "layer0/t0");
    const NodeId outer = b.input({1, 1});
    EXPECT_EQ(b.graph().node(outer).scope, "");
}

TEST(Graph, UsersAndCounts)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 2});
    const NodeId y = b.input({2, 2});
    const NodeId s = b.add(x, y);
    const NodeId t = b.mul(x, s);
    const auto users = b.graph().users(x);
    EXPECT_EQ(users.size(), 2u);
    EXPECT_EQ(b.graph().user_count(s), 1);
    EXPECT_EQ(b.graph().user_count(t), 0);
}

TEST(Graph, ParamsAndInputs)
{
    GraphBuilder b;
    b.input({1, 1});
    b.param({1, 1});
    b.input_ids(4, 10);
    b.param({2, 2});
    EXPECT_EQ(b.graph().params().size(), 2u);
    EXPECT_EQ(b.graph().graph_inputs().size(), 2u);
}

TEST(Graph, TotalMatmulFlops)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 4});
    const NodeId w = b.param({4, 8});
    b.matmul(x, w);  // 2*2*8*4 = 128 flops
    EXPECT_DOUBLE_EQ(b.graph().total_matmul_flops(), 128.0);
}

TEST(Graph, ToStringDump)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 4});
    const NodeId w = b.param({4, 8});
    b.matmul(x, w);
    const std::string dump = b.graph().to_string();
    EXPECT_NE(dump.find("mm(%0, %1)"), std::string::npos);
    EXPECT_NE(dump.find("[2, 8]"), std::string::npos);
}

TEST(DependencyOracle, TransitiveReachability)
{
    GraphBuilder b;
    const NodeId a = b.input({2, 2});
    const NodeId c = b.sigmoid(a);
    const NodeId d = b.tanh(c);
    const NodeId e = b.input({2, 2});
    const DependencyOracle oracle(b.graph());
    EXPECT_TRUE(oracle.depends_on(d, a));   // via c
    EXPECT_TRUE(oracle.depends_on(d, c));
    EXPECT_FALSE(oracle.depends_on(a, d));
    EXPECT_TRUE(oracle.independent(d, e));
    EXPECT_FALSE(oracle.independent(d, d));
}

TEST(DependencyOracle, SiblingsIndependent)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 4});
    const NodeId w1 = b.param({4, 4});
    const NodeId w2 = b.param({4, 4});
    const NodeId m1 = b.matmul(x, w1);
    const NodeId m2 = b.matmul(x, w2);
    const DependencyOracle oracle(b.graph());
    EXPECT_TRUE(oracle.independent(m1, m2));
}

TEST(Graph, MarkOutputs)
{
    GraphBuilder b;
    const NodeId x = b.input({1, 1});
    const NodeId y = b.sigmoid(x);
    b.graph().mark_output(y);
    ASSERT_EQ(b.graph().outputs().size(), 1u);
    EXPECT_EQ(b.graph().outputs()[0], y);
}

TEST(Op, Predicates)
{
    EXPECT_TRUE(op_is_elementwise(OpKind::Add));
    EXPECT_TRUE(op_is_elementwise(OpKind::SigmoidGrad));
    EXPECT_FALSE(op_is_elementwise(OpKind::MatMul));
    EXPECT_FALSE(op_is_elementwise(OpKind::Softmax));
    EXPECT_TRUE(op_is_grad(OpKind::TanhGrad));
    EXPECT_FALSE(op_is_grad(OpKind::Tanh));
    EXPECT_TRUE(op_is_source(OpKind::Param));
    EXPECT_FALSE(op_is_source(OpKind::Copy));
}

}  // namespace
}  // namespace astra
