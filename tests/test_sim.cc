/**
 * @file
 * Tests for the discrete-event GPU simulator: stream FIFO semantics,
 * event record/wait, launch overhead, SM-pool sharing across streams,
 * occupancy caps, determinism, autoboost-induced variance (§7), and
 * profiling-event cost.
 */
#include <gtest/gtest.h>

#include "sim/gpu.h"
#include <sstream>

#include "sim/memory.h"
#include "sim/multi.h"
#include "sim/trace.h"
#include "support/stats.h"

namespace astra {
namespace {

KernelDesc
kernel(const std::string& name, int64_t blocks, double block_ns,
       double setup_ns = 0.0, int max_sms = 0)
{
    KernelDesc k;
    k.name = name;
    k.blocks = blocks;
    k.block_ns = block_ns;
    k.setup_ns = setup_ns;
    k.max_sms = max_sms;
    return k;
}

GpuConfig
quiet_config()
{
    GpuConfig cfg;
    cfg.execute_kernels = false;
    // These tests assert exact simulator arithmetic, which only holds
    // at base clock — pin it even under the CI noise job
    // (ASTRA_SIM_AUTOBOOST). Jitter behaviour has its own test below.
    cfg.autoboost = false;
    return cfg;
}

TEST(SimGpu, SingleKernelTiming)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    // 10 blocks fit the 56-SM pool: one wave. The device waits for
    // the host's enqueue, then pays setup + one wave.
    gpu.launch(0, kernel("k", 10, 1000.0, 500.0));
    gpu.synchronize();
    EXPECT_DOUBLE_EQ(gpu.now_ns(),
                     cfg.launch_overhead_ns + 500.0 + 1000.0);
}

TEST(SimGpu, BlocksBeyondSmPoolTakeLonger)
{
    GpuConfig cfg = quiet_config();
    SimGpu a(cfg), b(cfg);
    a.launch(0, kernel("small", 56, 1000.0));
    a.synchronize();
    b.launch(0, kernel("big", 112, 1000.0));
    b.synchronize();
    EXPECT_NEAR(b.now_ns() - a.now_ns(), 1000.0, 1e-6);  // second wave
}

TEST(SimGpu, TinyKernelsAreLaunchBound)
{
    // Kernels far shorter than the enqueue cost: the device starves on
    // the host and the makespan is dominated by launch overhead.
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    for (int i = 0; i < 4; ++i)
        gpu.launch(0, kernel("k", 1, 100.0));
    gpu.synchronize();
    EXPECT_DOUBLE_EQ(gpu.now_ns(), 4 * cfg.launch_overhead_ns + 100.0);
}

TEST(SimGpu, LaunchOverheadHidesUnderLongKernels)
{
    // Kernels much longer than the enqueue cost: the host pipeline
    // runs ahead and only the first launch's overhead is exposed.
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    for (int i = 0; i < 4; ++i)
        gpu.launch(0, kernel("k", 10, 50000.0));
    gpu.synchronize();
    EXPECT_DOUBLE_EQ(gpu.now_ns(), cfg.launch_overhead_ns + 4 * 50000.0);
}

TEST(SimGpu, TwoStreamsOverlapIndependentKernels)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    const StreamId s1 = gpu.create_stream();
    // Each kernel uses 20 of 56 SMs: they fit side by side. The
    // second launch's enqueue trails the first by one overhead.
    gpu.launch(0, kernel("a", 20, 10000.0));
    gpu.launch(s1, kernel("b", 20, 10000.0));
    gpu.synchronize();
    EXPECT_DOUBLE_EQ(gpu.now_ns(), 2 * cfg.launch_overhead_ns + 10000.0);
}

TEST(SimGpu, SmContentionSlowsConcurrentKernels)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    const StreamId s1 = gpu.create_stream();
    // Two 56-block kernels share the pool; with contention the pair
    // takes clearly longer than one alone, but far less than serial.
    gpu.launch(0, kernel("a", 56, 50000.0));
    gpu.launch(s1, kernel("b", 56, 50000.0));
    gpu.synchronize();
    const double together = gpu.now_ns();
    SimGpu solo(cfg);
    solo.launch(0, kernel("a", 56, 50000.0));
    solo.synchronize();
    const double alone = solo.now_ns();
    EXPECT_GT(together, 1.5 * alone);
    EXPECT_LT(together, 2.2 * alone);
}

TEST(SimGpu, OccupancyCapLimitsSingleKernel)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    // 56 blocks but capped at 28 SMs: two waves.
    gpu.launch(0, kernel("capped", 56, 1000.0, 0.0, 28));
    gpu.synchronize();
    EXPECT_NEAR(gpu.now_ns(), cfg.launch_overhead_ns + 2000.0, 1.0);
}

TEST(SimGpu, EventElapsedMeasuresKernel)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    const EventId start = gpu.create_event();
    const EventId end = gpu.create_event();
    gpu.record_event(0, start);
    gpu.launch(0, kernel("k", 10, 2000.0));
    gpu.record_event(0, end);
    gpu.synchronize();
    EXPECT_TRUE(gpu.event_recorded(start));
    // Elapsed covers the enqueue stall + compute + one record cost.
    EXPECT_NEAR(gpu.elapsed_ns(start, end),
                cfg.launch_overhead_ns + 2000.0,
                2 * cfg.event_record_ns);
}

TEST(SimGpu, EventEnqueueCostIsCharged)
{
    // Event commands share the host enqueue pipeline: profiling is
    // cheap but not free (§5.1). Four back-to-back records starve the
    // device on the host, exactly like tiny kernels do on launches.
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    for (int i = 0; i < 4; ++i)
        gpu.record_event(0, gpu.create_event());
    gpu.synchronize();
    EXPECT_DOUBLE_EQ(gpu.now_ns(),
                     4 * cfg.event_enqueue_ns + cfg.event_record_ns);
}

TEST(SimGpu, WaitEventOrdersAcrossStreams)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    const StreamId s1 = gpu.create_stream();
    const EventId done = gpu.create_event();
    const EventId b_end = gpu.create_event();
    gpu.launch(0, kernel("producer", 10, 5000.0));
    gpu.record_event(0, done);
    gpu.wait_event(s1, done);
    gpu.launch(s1, kernel("consumer", 10, 1000.0));
    gpu.record_event(s1, b_end);
    gpu.synchronize();
    // Consumer could not start before the producer's event.
    EXPECT_GE(gpu.event_time_ns(b_end),
              gpu.event_time_ns(done) + 1000.0);
}

TEST(SimGpu, ComputeCallbackRunsAtKernelStart)
{
    GpuConfig cfg = quiet_config();
    cfg.execute_kernels = true;
    SimGpu gpu(cfg);
    std::vector<int> order;
    KernelDesc a = kernel("a", 10, 1000.0);
    a.compute = [&] { order.push_back(1); };
    KernelDesc b = kernel("b", 10, 1000.0);
    b.compute = [&] { order.push_back(2); };
    gpu.launch(0, std::move(a));
    gpu.launch(0, std::move(b));
    gpu.synchronize();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(SimGpu, TimingOnlyModeSkipsCompute)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    bool ran = false;
    KernelDesc k = kernel("k", 1, 100.0);
    k.compute = [&] { ran = true; };
    gpu.launch(0, std::move(k));
    gpu.synchronize();
    EXPECT_FALSE(ran);
}

TEST(SimGpu, DeterministicAcrossRuns)
{
    auto run = [] {
        GpuConfig cfg = quiet_config();
        SimGpu gpu(cfg);
        const StreamId s1 = gpu.create_stream();
        for (int i = 0; i < 20; ++i) {
            gpu.launch(i % 2 ? s1 : 0,
                       kernel("k", 10 + i, 500.0 + i * 10));
        }
        gpu.synchronize();
        return gpu.now_ns();
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(SimGpu, AutoboostBreaksRepeatability)
{
    // Paper §7: boost makes identical kernels measure differently;
    // base clock is required for Astra's predictability assumption.
    GpuConfig cfg = quiet_config();
    cfg.autoboost = true;
    SimGpu gpu(cfg);
    RunningStats stats;
    for (int i = 0; i < 32; ++i) {
        const EventId s = gpu.create_event();
        const EventId e = gpu.create_event();
        gpu.record_event(0, s);
        gpu.launch(0, kernel("same", 10, 10000.0));
        gpu.record_event(0, e);
        gpu.synchronize();
        stats.add(gpu.elapsed_ns(s, e));
    }
    EXPECT_GT(stats.cov(), 0.01);  // visible variance

    GpuConfig base = quiet_config();
    SimGpu gpu2(base);
    RunningStats stable;
    // Skip the first measurement: it alone includes the initial host
    // enqueue stall (a warm-up artifact, not clock jitter).
    for (int i = -1; i < 8; ++i) {
        const EventId s = gpu2.create_event();
        const EventId e = gpu2.create_event();
        gpu2.record_event(0, s);
        gpu2.launch(0, kernel("same", 10, 10000.0));
        gpu2.record_event(0, e);
        gpu2.synchronize();
        if (i >= 0)
            stable.add(gpu2.elapsed_ns(s, e));
    }
    EXPECT_LT(stable.cov(), 1e-9);  // perfectly repeatable
}

TEST(SimGpu, ClockQueryNormalizesJitter)
{
    // The boost clock is sampled once per launch sequence, held until
    // the drain, and queryable afterwards (the NVML analog). Because
    // every time constant rides the same clock, multiplying a measured
    // span by the queried multiplier recovers the base-clock span to
    // FP rounding — the mechanism MeasurementPolicy::normalize_clock
    // relies on.
    auto measure = [](SimGpu& gpu) {
        const EventId s = gpu.create_event();
        const EventId e = gpu.create_event();
        gpu.record_event(0, s);
        gpu.launch(0, kernel("same", 10, 10000.0, 700.0));
        gpu.record_event(0, e);
        gpu.synchronize();
        return gpu.elapsed_ns(s, e);
    };
    GpuConfig base_cfg = quiet_config();
    SimGpu base_gpu(base_cfg);
    measure(base_gpu);  // discard the enqueue-stall warm-up
    const double base = measure(base_gpu);

    GpuConfig cfg = quiet_config();
    cfg.autoboost = true;
    SimGpu gpu(cfg);
    EXPECT_DOUBLE_EQ(gpu.clock_multiplier(), 1.0);  // nothing enqueued
    measure(gpu);
    bool boosted = false;
    for (int i = 0; i < 8; ++i) {
        const double span = measure(gpu);
        const double m = gpu.clock_multiplier();
        EXPECT_GE(m, 1.0);
        EXPECT_LE(m, 1.0 + cfg.autoboost_amplitude);
        boosted = boosted || m > 1.0;
        EXPECT_NEAR(span * m, base, 1e-9 * base);
    }
    EXPECT_TRUE(boosted);  // amplitude 0.12: 8 draws of 1.0 impossible
}

TEST(SimGpu, ForcedClockMultiplierOverridesDvfs)
{
    // The parallel wirer pre-draws a multiplier per dispatch and
    // forces it onto the device; the device must hold exactly that
    // clock for the launch sequence, even with autoboost on.
    auto measure = [](SimGpu& gpu) {
        const EventId s = gpu.create_event();
        const EventId e = gpu.create_event();
        gpu.record_event(0, s);
        gpu.launch(0, kernel("same", 10, 10000.0, 700.0));
        gpu.record_event(0, e);
        gpu.synchronize();
        return gpu.elapsed_ns(s, e);
    };
    GpuConfig base_cfg = quiet_config();
    SimGpu base_gpu(base_cfg);
    measure(base_gpu);  // discard the enqueue-stall warm-up
    const double base = measure(base_gpu);

    GpuConfig cfg = quiet_config();
    cfg.autoboost = true;
    cfg.forced_clock_multiplier = 1.07;
    SimGpu gpu(cfg);
    measure(gpu);
    for (int i = 0; i < 4; ++i) {
        const double span = measure(gpu);
        EXPECT_DOUBLE_EQ(gpu.clock_multiplier(), 1.07);
        EXPECT_NEAR(span * 1.07, base, 1e-9 * base);
    }
}

TEST(ClockDomain, DrawSequenceIsSeededAndSalted)
{
    GpuConfig cfg = quiet_config();
    cfg.autoboost = true;
    ClockDomain a(cfg, 3);
    ClockDomain b(cfg, 3);
    ClockDomain other(cfg, 4);
    bool salt_differs = false;
    for (int i = 0; i < 32; ++i) {
        const double m = a.draw();
        EXPECT_DOUBLE_EQ(m, b.draw());  // same (seed, salt): same run
        EXPECT_GE(m, 1.0);
        EXPECT_LE(m, 1.0 + cfg.autoboost_amplitude);
        salt_differs = salt_differs || m != other.draw();
    }
    EXPECT_TRUE(salt_differs);  // distinct strands see distinct jitter
}

TEST(ClockDomain, DrawsZeroWhenAutoboostOff)
{
    GpuConfig cfg = quiet_config();
    cfg.autoboost = false;
    ClockDomain domain(cfg, 1);
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(domain.draw(), 0.0);  // "do not force"
}

TEST(SimGpu, StatsCounters)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    const EventId e = gpu.create_event();
    gpu.launch(0, kernel("k", 56, 1000.0));
    gpu.record_event(0, e);
    gpu.synchronize();
    EXPECT_EQ(gpu.stats().kernels_launched, 1);
    EXPECT_EQ(gpu.stats().events_recorded, 1);
    EXPECT_NEAR(gpu.stats().busy_sm_ns, 56.0 * 1000.0, 1.0);
    EXPECT_GT(gpu.utilization(), 0.0);
    EXPECT_LE(gpu.utilization(), 1.0);
}

TEST(SimGpu, DeadlockPanics)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    const EventId never = gpu.create_event();
    gpu.wait_event(0, never);
    gpu.launch(0, kernel("stuck", 1, 100.0));
    EXPECT_DEATH(gpu.synchronize(), "deadlock");
}

TEST(SimGpu, TraceCollection)
{
    GpuConfig cfg = quiet_config();
    cfg.collect_trace = true;
    SimGpu gpu(cfg);
    const StreamId s1 = gpu.create_stream();
    gpu.launch(0, kernel("alpha", 10, 1000.0));
    gpu.launch(s1, kernel("beta", 10, 1000.0));
    gpu.synchronize();
    ASSERT_EQ(gpu.trace().size(), 2u);
    const TraceSpan& a = gpu.trace()[0];
    EXPECT_EQ(a.name, "alpha");
    EXPECT_EQ(a.stream, 0);
    EXPECT_LT(a.start_ns, a.end_ns);
    EXPECT_EQ(gpu.trace()[1].stream, 1);
}

TEST(SimGpu, TraceOffByDefault)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    gpu.launch(0, kernel("k", 1, 100.0));
    gpu.synchronize();
    EXPECT_TRUE(gpu.trace().empty());
}

TEST(Trace, ChromeJsonFormat)
{
    std::vector<TraceSpan> spans = {
        {"mm.\"x\"", 0, 1000.0, 3000.0},
        {"few", 1, 2000.0, 2500.0},
    };
    std::ostringstream os;
    write_chrome_trace(os, spans);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2"), std::string::npos);  // us
    // The quote in the kernel name must be escaped.
    EXPECT_NE(json.find("mm.\\\""), std::string::npos);
}

TEST(SimGpu, RunUntilPausesAtHorizonAndResumes)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    gpu.launch(0, kernel("k", 10, 1000.0, 500.0));
    const double total = cfg.launch_overhead_ns + 500.0 + 1000.0;
    // Stop mid-kernel: the device reports Paused and where its next
    // event lies; resuming to infinity must land exactly where an
    // uninterrupted synchronize() would (linear partial advance).
    EXPECT_EQ(gpu.run_until(total / 2), SimGpu::RunState::Paused);
    EXPECT_DOUBLE_EQ(gpu.now_ns(), total / 2);
    EXPECT_GT(gpu.next_event_ns(), total / 2);
    EXPECT_EQ(gpu.run_until(1e18), SimGpu::RunState::Drained);
    EXPECT_DOUBLE_EQ(gpu.now_ns(), total);
}

TEST(SimGpu, RunUntilReportsBlockedOnForeignEvent)
{
    GpuConfig cfg = quiet_config();
    SimGpu gpu(cfg);
    const EventId foreign = gpu.create_event();
    gpu.wait_event(0, foreign);
    gpu.launch(0, kernel("gated", 10, 1000.0));
    EXPECT_EQ(gpu.run_until(1e18), SimGpu::RunState::Blocked);
    // An external record (a cross-device signal) unblocks it; the
    // timestamp may lie in the device's future and the stream stalls
    // until the clock reaches it.
    const double t = gpu.now_ns() + 40000.0;
    gpu.record_external(foreign, t);
    EXPECT_EQ(gpu.run_until(1e18), SimGpu::RunState::Drained);
    EXPECT_GE(gpu.now_ns(), t + 1000.0);
}

TEST(MultiSim, MirroredEventOrdersAcrossDevices)
{
    GpuConfig cfg = quiet_config();
    MultiSim multi(2, cfg);
    // Device 0 runs a long producer; device 1's consumer is gated on
    // the mirrored completion event.
    const EventId produced = multi.device(0).create_event();
    const EventId arrived = multi.device(1).create_event();
    const EventId consumed = multi.device(1).create_event();
    multi.mirror(0, produced, 1, arrived);
    multi.device(0).launch(0, kernel("producer", 10, 50000.0));
    multi.device(0).record_event(0, produced);
    multi.device(1).wait_event(0, arrived);
    multi.device(1).launch(0, kernel("consumer", 10, 1000.0));
    multi.device(1).record_event(0, consumed);
    multi.run();
    EXPECT_GE(multi.device(1).event_time_ns(consumed),
              multi.device(0).event_time_ns(produced) + 1000.0);
    EXPECT_DOUBLE_EQ(multi.now_ns(),
                     std::max(multi.device(0).now_ns(),
                              multi.device(1).now_ns()));
}

TEST(MultiSim, SymmetricExchangeRunsConcurrently)
{
    // Two devices compute, signal each other, then each runs a second
    // kernel gated on the peer — the allreduce hop pattern. Cross
    // traffic must overlap: the makespan is two kernels, not four.
    GpuConfig cfg = quiet_config();
    MultiSim multi(2, cfg);
    EventId sent[2];
    EventId got[2];
    for (int d = 0; d < 2; ++d) {
        sent[d] = multi.device(d).create_event();
        got[d] = multi.device(d).create_event();
    }
    multi.mirror(0, sent[0], 1, got[1]);
    multi.mirror(1, sent[1], 0, got[0]);
    for (int d = 0; d < 2; ++d) {
        SimGpu& gpu = multi.device(d);
        gpu.launch(0, kernel("phase1", 10, 30000.0));
        gpu.record_event(0, sent[d]);
        gpu.wait_event(0, got[d]);
        gpu.launch(0, kernel("phase2", 10, 30000.0));
    }
    multi.run();
    // phase1 starts after its enqueue, records (one event_record_ns),
    // the mirrored signals land at the same instant on both devices,
    // and phase2 runs immediately — one exposed launch overhead total.
    const double expected =
        cfg.launch_overhead_ns + 2 * 30000.0 + cfg.event_record_ns;
    EXPECT_NEAR(multi.now_ns(), expected, 1.0);
}

TEST(MultiSim, CrossDeviceDeadlockPanics)
{
    GpuConfig cfg = quiet_config();
    MultiSim multi(2, cfg);
    // Both devices wait on events that are never recorded anywhere.
    for (int d = 0; d < 2; ++d) {
        const EventId never = multi.device(d).create_event();
        multi.device(d).wait_event(0, never);
        multi.device(d).launch(0, kernel("stuck", 1, 100.0));
    }
    EXPECT_DEATH(multi.run(), "deadlock");
}

TEST(MultiSim, LinkTransferAlgebra)
{
    LinkConfig link;
    link.link_gbps = 8.0;  // 8 bits per ns: 1 ns per byte
    link.latency_us = 2.0;
    // 4096 bytes = 32768 bits at 8 Gbit/s -> 4096 ns, plus 2000 ns
    // latency. Hand-computed to pin the bits-vs-bytes unit.
    EXPECT_DOUBLE_EQ(link_transfer_ns(4096.0, link), 4096.0 + 2000.0);
}

TEST(SimMemory, BumpAllocationAndAdjacency)
{
    SimMemory mem(1 << 20);
    const DevPtr a = mem.allocate(100);
    const DevPtr b = mem.allocate(100, 1);  // packed right after
    EXPECT_TRUE(SimMemory::adjacent(a, 100, b));
    const DevPtr c = mem.allocate(100, 256);  // aligned: leaves a gap
    EXPECT_FALSE(SimMemory::adjacent(b, 100, c));
    EXPECT_GE(mem.used(), 300);
    mem.reset();
    EXPECT_EQ(mem.used(), 0);
}

TEST(SimMemory, HostBackingIsZeroed)
{
    SimMemory mem(4096);
    const DevPtr p = mem.allocate(64);
    const float* f = mem.f32(p);
    for (int i = 0; i < 16; ++i)
        EXPECT_FLOAT_EQ(f[i], 0.0f);
}

TEST(SimMemory, ExhaustionIsRecoverable)
{
    // Allocation failure must be a typed, catchable error — the OOM
    // degradation ladder (core/astra.h) depends on it — and the pool
    // must stay usable after the throw.
    SimMemory mem(1024);
    try {
        mem.allocate(4096);
        FAIL() << "allocation beyond capacity did not throw";
    } catch (const MemoryError& e) {
        EXPECT_EQ(e.kind(), MemoryError::Kind::Exhausted);
        EXPECT_EQ(e.requested(), 4096);
        EXPECT_EQ(e.capacity(), 1024);
    }
    EXPECT_NE(mem.allocate(512), kNullDev);  // still alive
}

TEST(SimMemory, BadPointerThrows)
{
    SimMemory mem(1024);
    EXPECT_THROW(mem.f32(4096), MemoryError);
    EXPECT_THROW(mem.f32(-1), MemoryError);
}

TEST(SimMemory, InjectedAllocFaultFiresOnce)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("alloc:at=0", &plan));
    SimMemory mem(1 << 20);
    mem.arm_faults(&plan, 7);
    try {
        mem.allocate(64);
        FAIL() << "one-shot alloc fault did not fire";
    } catch (const MemoryError& e) {
        EXPECT_EQ(e.kind(), MemoryError::Kind::Injected);
    }
    // The draw sequence advanced past the one-shot: the retry (what the
    // degradation ladder does after reset()) succeeds.
    mem.reset();
    EXPECT_NE(mem.allocate(64), kNullDev);
}

TEST(SimMemory, FragmentationHeadroomShrinksPool)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("alloc:p=0,x=2", &plan));
    SimMemory mem(1024);
    EXPECT_EQ(mem.effective_capacity(), 1024);
    mem.arm_faults(&plan, 1);
    EXPECT_EQ(mem.effective_capacity(), 512);
    EXPECT_THROW(mem.allocate(600), MemoryError);
    EXPECT_NE(mem.allocate(400), kNullDev);
}

TEST(FaultPlan, ParseAndRoundTrip)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(
        "seed=7;retries=3;backoff_us=10;kernel:p=0.5,name=gemm;"
        "straggler:p=0.1,x=4;alloc:at=2;comm:p=0.25,x=3",
        &plan));
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_EQ(plan.max_retries, 3);
    EXPECT_DOUBLE_EQ(plan.backoff_us, 10.0);
    ASSERT_EQ(plan.specs.size(), 4u);
    EXPECT_EQ(plan.specs[0].kind, FaultKind::Kernel);
    EXPECT_DOUBLE_EQ(plan.specs[0].p, 0.5);
    EXPECT_EQ(plan.specs[0].name, "gemm");
    EXPECT_EQ(plan.specs[1].kind, FaultKind::Straggler);
    EXPECT_DOUBLE_EQ(plan.specs[1].factor, 4.0);
    EXPECT_EQ(plan.specs[2].kind, FaultKind::Alloc);
    EXPECT_EQ(plan.specs[2].at, 2);
    EXPECT_TRUE(plan.has(FaultKind::Comm));
    EXPECT_FALSE(FaultPlan().has(FaultKind::Comm));

    // to_string() must reparse to the same plan.
    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(plan.to_string(), &again));
    EXPECT_EQ(again.to_string(), plan.to_string());
}

TEST(FaultPlan, ParseRejectsMalformed)
{
    FaultPlan plan;
    plan.seed = 99;  // canary: a failed parse must leave *out untouched
    EXPECT_FALSE(FaultPlan::parse("kernel", &plan));        // no p / at
    EXPECT_FALSE(FaultPlan::parse("kernel:x=2", &plan));    // no p / at
    EXPECT_FALSE(FaultPlan::parse("bogus:p=1", &plan));     // unknown kind
    EXPECT_FALSE(FaultPlan::parse("kernel:p=2", &plan));    // p > 1
    EXPECT_FALSE(FaultPlan::parse("straggler:p=0.1,x=0.5", &plan));
    EXPECT_FALSE(FaultPlan::parse("retries=2000", &plan));  // over cap
    EXPECT_FALSE(FaultPlan::parse("comm:p=nope", &plan));
    EXPECT_EQ(plan.seed, 99u);
}

TEST(FaultPlan, DiagnosticsNameTheOffendingToken)
{
    // Every rejection names the 1-based ';'-separated clause and says
    // why — a chaos matrix with a typo'd spec should point at the
    // typo, not shrug.
    FaultPlan plan;
    std::string err;

    EXPECT_FALSE(FaultPlan::parse("seed=1;kernel:p=2", &plan, &err));
    EXPECT_EQ(err.rfind("token 2:", 0), 0u) << err;
    EXPECT_NE(err.find("p out of range"), std::string::npos) << err;

    EXPECT_FALSE(
        FaultPlan::parse("kernel:p=0.5,pp=0.5", &plan, &err));
    EXPECT_EQ(err.rfind("token 1:", 0), 0u) << err;
    EXPECT_NE(err.find("unknown key 'pp'"), std::string::npos) << err;

    // Duplicate keys are rejected, not last-writer-wins.
    EXPECT_FALSE(
        FaultPlan::parse("kernel:p=0.5,p=0.9", &plan, &err));
    EXPECT_NE(err.find("duplicate key 'p'"), std::string::npos) << err;
    EXPECT_FALSE(FaultPlan::parse("seed=1;seed=2", &plan, &err));
    EXPECT_EQ(err.rfind("token 2:", 0), 0u) << err;
    EXPECT_NE(err.find("duplicate key 'seed'"), std::string::npos)
        << err;

    // A clause that can never fire is a configuration bug, not a
    // silently-inert matrix entry.
    EXPECT_FALSE(FaultPlan::parse("kernel:name=gemm", &plan, &err));
    EXPECT_NE(err.find("never fires"), std::string::npos) << err;

    EXPECT_FALSE(FaultPlan::parse("retries=2000", &plan, &err));
    EXPECT_EQ(err.rfind("token 1:", 0), 0u) << err;
    EXPECT_NE(err.find("retries out of range"), std::string::npos)
        << err;

    EXPECT_EQ(plan.seed, 1u);  // default-constructed plan untouched
}

TEST(FaultPlan, ReplicaSpecsParseValidateAndRoundTrip)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse(
        "replica_death:r=1,at_ns=5e6;"
        "replica_flap:r=0,at_ns=1e6,down_ns=2e5,up_ns=8e5,count=3",
        &plan, &err))
        << err;
    ASSERT_EQ(plan.replica_faults.size(), 2u);
    EXPECT_FALSE(plan.replica_faults[0].flap);
    EXPECT_EQ(plan.replica_faults[0].replica, 1);
    EXPECT_DOUBLE_EQ(plan.replica_faults[0].at_ns, 5e6);
    EXPECT_TRUE(plan.replica_faults[1].flap);
    EXPECT_EQ(plan.replica_faults[1].count, 3);
    EXPECT_FALSE(plan.empty());

    // to_string() must reparse to the same schedule.
    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(plan.to_string(), &again, &err))
        << err;
    EXPECT_EQ(again.to_string(), plan.to_string());

    // Structural validation: a death needs a time, a flap needs a
    // down duration, and a one-way "flap" must say count=1.
    EXPECT_FALSE(FaultPlan::parse("replica_death:r=1", &plan, &err));
    EXPECT_NE(err.find("needs r= and at_ns="), std::string::npos)
        << err;
    EXPECT_FALSE(FaultPlan::parse("replica_flap:r=0,at_ns=1e6",
                                  &plan, &err));
    EXPECT_NE(err.find("needs down_ns="), std::string::npos) << err;
    EXPECT_FALSE(FaultPlan::parse(
        "replica_flap:r=0,at_ns=1e6,down_ns=1e5,up_ns=0,count=4",
        &plan, &err));
    EXPECT_NE(err.find("never revives"), std::string::npos) << err;
    EXPECT_FALSE(FaultPlan::parse("replica_death:r=9999,at_ns=1",
                                  &plan, &err));
    EXPECT_NE(err.find("r out of range"), std::string::npos) << err;
}

TEST(ReplicaLiveness, DeathIsDownForever)
{
    FaultPlan plan;
    ASSERT_TRUE(
        FaultPlan::parse("replica_death:r=1,at_ns=100", &plan));
    EXPECT_TRUE(replica_alive(plan, 1, 0.0));
    EXPECT_TRUE(replica_alive(plan, 1, 99.9));
    EXPECT_FALSE(replica_alive(plan, 1, 100.0));
    EXPECT_FALSE(replica_alive(plan, 1, 1e18));
    // Other replicas are untouched.
    EXPECT_TRUE(replica_alive(plan, 0, 1e18));

    const auto edges = replica_transitions(plan, 1, 1e6);
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_DOUBLE_EQ(edges[0], 100.0);
    EXPECT_TRUE(replica_transitions(plan, 0, 1e6).empty());
}

TEST(ReplicaLiveness, FlapCyclesAndCountBound)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(
        "replica_flap:r=0,at_ns=100,down_ns=10,up_ns=90,count=2",
        &plan));
    // Two cycles: down [100,110), up [110,200), down [200,210), then
    // alive forever.
    EXPECT_TRUE(replica_alive(plan, 0, 99.0));
    EXPECT_FALSE(replica_alive(plan, 0, 105.0));
    EXPECT_TRUE(replica_alive(plan, 0, 150.0));
    EXPECT_FALSE(replica_alive(plan, 0, 205.0));
    EXPECT_TRUE(replica_alive(plan, 0, 210.0));
    EXPECT_TRUE(replica_alive(plan, 0, 1e18));

    const auto edges = replica_transitions(plan, 0, 1e6);
    ASSERT_EQ(edges.size(), 4u);
    EXPECT_DOUBLE_EQ(edges[0], 100.0);
    EXPECT_DOUBLE_EQ(edges[1], 110.0);
    EXPECT_DOUBLE_EQ(edges[2], 200.0);
    EXPECT_DOUBLE_EQ(edges[3], 210.0);
}

TEST(ReplicaLiveness, OverlappingSpecsOrTheirDownIntervals)
{
    // A flap blip inside a death's shadow changes nothing; a blip
    // before it adds its own edges. Net liveness is the OR of all
    // down intervals, and transitions only report *net* flips.
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(
        "replica_death:r=2,at_ns=500;"
        "replica_flap:r=2,at_ns=100,down_ns=50,up_ns=1000,count=1",
        &plan));
    EXPECT_TRUE(replica_alive(plan, 2, 50.0));
    EXPECT_FALSE(replica_alive(plan, 2, 120.0));  // blip
    EXPECT_TRUE(replica_alive(plan, 2, 200.0));   // revived
    EXPECT_FALSE(replica_alive(plan, 2, 600.0));  // dead for good

    const auto edges = replica_transitions(plan, 2, 1e6);
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_DOUBLE_EQ(edges[0], 100.0);
    EXPECT_DOUBLE_EQ(edges[1], 150.0);
    EXPECT_DOUBLE_EQ(edges[2], 500.0);
}

TEST(FaultInjector, DrawsAreSaltDeterministic)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("seed=3;kernel:p=0.3", &plan));
    FaultInjector a(&plan, 11);
    FaultInjector b(&plan, 11);
    FaultInjector other(&plan, 12);
    bool salt_differs = false;
    for (int i = 0; i < 64; ++i) {
        const bool fa = a.on_kernel("k").fail;
        EXPECT_EQ(fa, b.on_kernel("k").fail);  // pure function of salt
        salt_differs = salt_differs || fa != other.on_kernel("k").fail;
    }
    EXPECT_TRUE(salt_differs);
}

TEST(FaultInjector, OneShotFiresAtExactSequence)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("kernel:at=3", &plan));
    FaultInjector inj(&plan, 42);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(inj.on_kernel("k").fail, i == 3) << "draw " << i;
}

TEST(FaultInjector, NameFilterTargetsKernels)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("kernel:p=1,name=gemm", &plan));
    FaultInjector inj(&plan, 1);
    EXPECT_TRUE(inj.on_kernel("gemm.%3.cublas").fail);
    EXPECT_FALSE(inj.on_kernel("add.%4.cublas").fail);
}

TEST(SimGpu, KernelFaultSkipsComputeButKeepsTiming)
{
    // The sticky-error model: a faulted kernel completes timing-wise
    // (and records events) but its host compute callback is skipped, so
    // injection is invisible to profiling and only the replayed
    // mini-batch restores values.
    GpuConfig clean_cfg = quiet_config();
    clean_cfg.execute_kernels = true;
    SimGpu clean(clean_cfg);
    bool clean_ran = false;
    KernelDesc ck = kernel("k", 10, 1000.0, 500.0);
    ck.compute = [&] { clean_ran = true; };
    clean.launch(0, std::move(ck));
    clean.synchronize();
    ASSERT_TRUE(clean_ran);

    GpuConfig cfg = clean_cfg;
    ASSERT_TRUE(FaultPlan::parse("kernel:at=0", &cfg.faults));
    SimGpu gpu(cfg);
    bool ran = false;
    KernelDesc k = kernel("k", 10, 1000.0, 500.0);
    k.compute = [&] { ran = true; };
    gpu.launch(0, std::move(k));
    gpu.synchronize();
    EXPECT_FALSE(ran);
    EXPECT_EQ(gpu.stats().faults_injected, 1);
    EXPECT_DOUBLE_EQ(gpu.now_ns(), clean.now_ns());
}

TEST(SimGpu, StragglerSpikeScalesKernelTime)
{
    GpuConfig cfg = quiet_config();
    SimGpu clean(cfg);
    clean.launch(0, kernel("k", 10, 1000.0, 500.0));
    clean.synchronize();

    GpuConfig slow_cfg = quiet_config();
    ASSERT_TRUE(FaultPlan::parse("straggler:at=0,x=3", &slow_cfg.faults));
    SimGpu slow(slow_cfg);
    slow.launch(0, kernel("k", 10, 1000.0, 500.0));
    slow.synchronize();
    EXPECT_EQ(slow.stats().straggler_events, 1);
    // setup + block time tripled; launch overhead is host-side.
    EXPECT_DOUBLE_EQ(slow.now_ns() - cfg.launch_overhead_ns,
                     3.0 * (clean.now_ns() - cfg.launch_overhead_ns));
}

TEST(MultiSim, StragglerWatchdogCountsLateMirrors)
{
    GpuConfig cfg = quiet_config();
    MultiSim multi(2, cfg);
    multi.set_straggler_timeout(10000.0);
    const EventId produced = multi.device(0).create_event();
    const EventId arrived = multi.device(1).create_event();
    multi.mirror(0, produced, 1, arrived);
    multi.device(0).launch(0, kernel("slow_producer", 10, 50000.0));
    multi.device(0).record_event(0, produced);
    multi.device(1).wait_event(0, arrived);
    multi.device(1).launch(0, kernel("consumer", 10, 1000.0));
    multi.run();
    // The consumer idled ~50 us past its last local progress — far
    // beyond the 10 us watchdog.
    EXPECT_EQ(multi.straggler_events(), 1);

    MultiSim patient(2, cfg);
    patient.set_straggler_timeout(1e9);
    const EventId p2 = patient.device(0).create_event();
    const EventId a2 = patient.device(1).create_event();
    patient.mirror(0, p2, 1, a2);
    patient.device(0).launch(0, kernel("slow_producer", 10, 50000.0));
    patient.device(0).record_event(0, p2);
    patient.device(1).wait_event(0, a2);
    patient.device(1).launch(0, kernel("consumer", 10, 1000.0));
    patient.run();
    EXPECT_EQ(patient.straggler_events(), 0);
}

}  // namespace
}  // namespace astra
