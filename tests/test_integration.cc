/**
 * @file
 * End-to-end integration tests: the whole Astra stack on real models —
 * value-preserving exploration while training makes progress (the
 * paper's work-conservation claim), bucketed dynamic-shape handling
 * (§5.5), and profiling-overhead accounting (§6.4).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/astra.h"
#include "core/bucketed.h"
#include "models/data.h"
#include "models/models.h"
#include "runtime/native.h"

namespace astra {
namespace {

TEST(Integration, TrainingProgressesDuringExploration)
{
    // Work conservation (§4.2): the exploration mini-batches are real
    // training steps. We train on one fixed batch while Astra
    // explores; the loss after exploration must be well below the
    // starting loss, and every explored configuration must produce
    // value-identical results (checked implicitly: SGD diverges fast
    // if any configuration computes wrong gradients).
    const BuiltModel m =
        build_model(ModelKind::Scrnn,
                    {.batch = 4, .seq_len = 3, .hidden = 16,
                     .embed_dim = 16, .vocab = 20});
    AstraOptions opts;
    opts.features = features_all();
    opts.gpu.execute_kernels = true;
    AstraSession session(m.graph(), opts);

    Rng rng(7);
    // Params must exist in every strategy's memory; bind lazily.
    std::vector<bool> bound(session.space().strategies.size(), false);
    std::vector<float> first_loss(session.space().strategies.size(),
                                  -1.0f);
    const WirerResult r = session.optimize(
        [&](const TensorMap& tmap, int64_t) {
            // Identify the strategy by its tensor map address.
            for (size_t s = 0; s < bound.size(); ++s) {
                if (&session.tensor_map(static_cast<int>(s)) != &tmap)
                    continue;
                if (!bound[s]) {
                    Rng fresh(7);
                    bind_all(m.graph(), tmap, fresh);
                    bound[s] = true;
                } else {
                    // SGD on the gradients of the previous mini-batch.
                    apply_sgd(m.graph(), tmap, m.grads.param_grads,
                              0.3f);
                }
            }
        });
    EXPECT_GT(r.minibatches, 20);

    // After exploration, the winning strategy's parameters have been
    // trained the whole time.
    const TensorMap& best_map =
        session.tensor_map(r.best_config.strategy);
    const DispatchResult final = session.run(r.best_config);
    (void)final;
    const float trained_loss = best_map.f32(m.loss)[0];
    ASSERT_TRUE(std::isfinite(trained_loss));

    // Reference: untrained loss on the same data.
    SimMemory mem(graph_tensor_bytes(m.graph()) + (1 << 20));
    TensorMap fresh_map(m.graph(), mem);
    Rng fresh(7);
    bind_all(m.graph(), fresh_map, fresh);
    GpuConfig gcfg;
    dispatch_plan(native_plan(m.graph()), m.graph(), fresh_map, gcfg);
    const float untrained_loss = fresh_map.f32(m.loss)[0];
    EXPECT_LT(trained_loss, untrained_loss * 0.8f);
}

TEST(Integration, ExploredBestMatchesNativeValues)
{
    // Strict end-to-end value preservation: run the full exploration,
    // then compare the best configuration's outputs bit-for-bit
    // against the native dispatch on identical data.
    const BuiltModel m =
        build_model(ModelKind::MiLstm,
                    {.batch = 4, .seq_len = 3, .hidden = 16,
                     .embed_dim = 16, .vocab = 20});
    AstraOptions opts;
    opts.features = features_all();
    opts.gpu.execute_kernels = true;
    AstraSession session(m.graph(), opts);
    const WirerResult r = session.optimize();

    const TensorMap& tmap = session.tensor_map(r.best_config.strategy);
    Rng rng(55);
    bind_all(m.graph(), tmap, rng);
    session.run(r.best_config);
    const float astra_loss = tmap.f32(m.loss)[0];

    SimMemory mem(graph_tensor_bytes(m.graph()) + (1 << 20));
    TensorMap native_map(m.graph(), mem);
    Rng rng2(55);
    bind_all(m.graph(), native_map, rng2);
    GpuConfig gcfg;
    dispatch_plan(native_plan(m.graph()), m.graph(), native_map, gcfg);
    EXPECT_EQ(astra_loss, native_map.f32(m.loss)[0]);
}

TEST(Integration, ProfilingOverheadBelowHalfPercent)
{
    // §6.4: "The overhead of our profiling is <0.5% for all the models
    // evaluated. Hence it can be always on."
    const BuiltModel m =
        build_model(ModelKind::SubLstm,
                    {.batch = 8, .seq_len = 6, .hidden = 64,
                     .embed_dim = 64, .vocab = 100});
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    AstraSession session(m.graph(), opts);
    const SearchSpace& space = session.space();

    ScheduleConfig cfg;
    cfg.group_chunk.assign(space.groups.size(), 1);
    cfg.group_lib.assign(space.groups.size(), GemmLib::Cublas);
    const double plain = session.run(cfg).total_ns;

    // Same configuration with every group profiled.
    ScheduleConfig profiled = cfg;
    for (const FusionGroup& g : space.groups)
        profiled.group_keys[g.id] = "p|" + g.key;
    const double instrumented = session.run(profiled).total_ns;
    EXPECT_LT((instrumented - plain) / plain, 0.005);
}

TEST(Integration, BucketedAstraHandlesDynamicShapes)
{
    // §5.5 / Table 8: bucket the input lengths, explore per bucket,
    // serve each true length from the smallest covering bucket.
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    // Asserts exact per-bucket time reproduction: a base-clock property.
    opts.gpu.autoboost = false;
    opts.features = features_fk();
    BucketedAstra bucketed(
        {4, 6, 8},
        [](GraphBuilder& b, int length) {
            ModelConfig cfg;
            cfg.batch = 8;
            cfg.seq_len = length;
            cfg.hidden = 32;
            cfg.embed_dim = 32;
            cfg.vocab = 50;
            BuiltModel m = build_model(ModelKind::Scrnn, cfg);
            b = std::move(*m.builder);
        },
        opts);
    const int64_t total = bucketed.optimize();
    EXPECT_GT(total, 0);

    EXPECT_EQ(bucketed.bucket_for(3), 0);
    EXPECT_EQ(bucketed.bucket_for(4), 0);
    EXPECT_EQ(bucketed.bucket_for(5), 1);
    EXPECT_EQ(bucketed.bucket_for(8), 2);
    EXPECT_EQ(bucketed.bucket_for(99), 2);  // clamp to largest

    // A length-5 batch pays for the length-6 bucket.
    EXPECT_DOUBLE_EQ(bucketed.step_ns(5), bucketed.step_ns(6));
    // Longer buckets cost more.
    EXPECT_LT(bucketed.step_ns(4), bucketed.step_ns(8));
}

TEST(Integration, BucketForWarnsOnceOnOverflowClamp)
{
    // Clamping into the last bucket truncates tokens on a real serving
    // path; the condition must be loud, but exactly once per instance
    // so a skewed length distribution can't flood the log.
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.features = features_fk();
    BucketedAstra bucketed({4, 6, 8}, [](GraphBuilder&, int) {}, opts);

    testing::internal::CaptureStderr();
    EXPECT_EQ(bucketed.bucket_for(99), 2);
    const std::string first = testing::internal::GetCapturedStderr();
    EXPECT_NE(first.find("exceeds largest bucket"), std::string::npos);

    testing::internal::CaptureStderr();
    EXPECT_EQ(bucketed.bucket_for(100), 2);  // still clamps, silently
    EXPECT_EQ(bucketed.bucket_for(5), 1);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Integration, BucketOverflowsAreTalliedAndReportable)
{
    // The warn-once log line above is easy to lose in a long serving
    // run; every clamp must also land in a queryable tally so the
    // operator can see "how many batches were truncated", and the
    // tally must surface in the per-bucket convergence report.
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.features = features_fk();
    BucketedAstra bucketed(
        {4, 6, 8},
        [](GraphBuilder& b, int length) {
            ModelConfig cfg;
            cfg.batch = 8;
            cfg.seq_len = length;
            cfg.hidden = 16;
            cfg.embed_dim = 16;
            cfg.vocab = 20;
            BuiltModel m = build_model(ModelKind::Scrnn, cfg);
            b = std::move(*m.builder);
        },
        opts);
    EXPECT_EQ(bucketed.overflow_count(), 0);
    EXPECT_EQ(bucketed.bucket_for(9), 2);
    EXPECT_EQ(bucketed.bucket_for(99), 2);
    EXPECT_EQ(bucketed.bucket_for(8), 2);  // exact fit: not an overflow
    EXPECT_EQ(bucketed.overflow_count(), 2);

    bucketed.optimize();
    ConvergenceReport rep = bucketed.convergence_report(0);
    EXPECT_EQ(rep.bucket_overflows, 2);
    std::ostringstream os;
    rep.write_json(os);
    EXPECT_NE(os.str().find("\"bucket_overflows\":2"), std::string::npos);
}

TEST(Integration, StrictOverflowModeRejectsTruncation)
{
    // Serving stacks that would rather fail a request than silently
    // truncate it opt into strict mode: an over-length batch throws
    // instead of clamping.
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.features = features_fk();
    BucketedAstra bucketed({4, 6, 8}, [](GraphBuilder&, int) {}, opts);
    bucketed.set_strict_overflow(true);
    EXPECT_EQ(bucketed.bucket_for(8), 2);  // in range: unaffected
    EXPECT_THROW(bucketed.bucket_for(9), std::out_of_range);
    bucketed.set_strict_overflow(false);
    EXPECT_EQ(bucketed.bucket_for(9), 2);  // back to clamping
    EXPECT_EQ(bucketed.overflow_count(), 1);
}

TEST(Integration, AutoboostDegradesAdaptationQuality)
{
    // §7: predictable execution is a hardware requirement. With boost
    // jitter on, repeated runs of the same config disagree.
    const BuiltModel m =
        build_model(ModelKind::Scrnn,
                    {.batch = 8, .seq_len = 4, .hidden = 32,
                     .embed_dim = 32, .vocab = 50});
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.gpu.autoboost = true;
    AstraSession session(m.graph(), opts);
    ScheduleConfig cfg;
    cfg.group_chunk.assign(session.space().groups.size(), 1);
    cfg.group_lib.assign(session.space().groups.size(),
                         GemmLib::Cublas);
    const double t1 = session.run(cfg).total_ns;
    const double t2 = session.run(cfg).total_ns;
    EXPECT_NE(t1, t2);
}

}  // namespace
}  // namespace astra
