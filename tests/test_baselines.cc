/**
 * @file
 * Baseline tests: the cuDNN-style compound path (coverage, value
 * equivalence, speedup over native at small batch) and the XLA-like
 * static optimizer (fusion without measurement, the embedding
 * host-sync pathology of §6.6).
 */
#include <gtest/gtest.h>

#include "baselines/cudnn.h"
#include "baselines/xla.h"
#include "models/data.h"
#include "models/models.h"
#include "tests/util.h"

namespace astra {
namespace {

using testutil::Runner;

BuiltModel
lstm_model(int64_t batch, int64_t hidden, bool embedding = true)
{
    ModelConfig cfg;
    cfg.batch = batch;
    cfg.seq_len = 4;
    cfg.hidden = hidden;
    cfg.embed_dim = hidden;
    cfg.vocab = 60;
    cfg.layers = 2;
    cfg.include_embedding = embedding;
    return build_model(ModelKind::StackedLstm, cfg);
}

TEST(Cudnn, PlanAbsorbsRecurrentLayers)
{
    const BuiltModel m = lstm_model(8, 32);
    GpuConfig cfg;
    const ExecutionPlan plan =
        cudnn_plan(m.graph(), m.cudnn_layers, cfg);
    int compound = 0;
    size_t compound_nodes = 0;
    for (const PlanStep& s : plan.steps)
        if (s.kind == StepKind::CompoundRnn) {
            ++compound;
            compound_nodes += s.nodes.size();
        }
    // One forward + one backward compound per layer.
    EXPECT_EQ(compound, 4);
    // The compound kernels absorb the bulk of the graph.
    EXPECT_GT(compound_nodes, static_cast<size_t>(m.graph().size()) / 2);
}

TEST(Cudnn, ValuesMatchNative)
{
    const BuiltModel m = lstm_model(4, 16);
    Runner native(m.graph());
    Rng rng(31);
    bind_all(m.graph(), native.tmap(), rng);
    native.run_native();

    Runner compound(m.graph());
    Rng rng2(31);
    bind_all(m.graph(), compound.tmap(), rng2);
    compound.run(cudnn_plan(m.graph(), m.cudnn_layers,
                            compound.config()));
    EXPECT_EQ(testutil::max_abs_diff(native.values(m.loss),
                                     compound.values(m.loss)), 0.0);
}

TEST(Cudnn, MuchFasterThanNativeAtSmallBatch)
{
    // §2.4: hand-optimized compound kernels are up to ~6x faster than
    // the launch-bound native dispatch for recurrent layers.
    const BuiltModel m = lstm_model(8, 64);
    Runner r(m.graph());
    r.config().execute_kernels = false;
    const double native = r.run_native().total_ns;
    const double cudnn =
        r.run(cudnn_plan(m.graph(), m.cudnn_layers, r.config()))
            .total_ns;
    EXPECT_GT(native / cudnn, 2.0);
}

TEST(Cudnn, OddHiddenSizeHurts)
{
    // PTB-large's hidden size of 1500 is tiling-hostile (Table 5's
    // explanation for Astra beating cuDNN).
    const BuiltModel aligned = lstm_model(32, 512);
    const BuiltModel odd = lstm_model(32, 500);
    Runner ra(aligned.graph());
    ra.config().execute_kernels = false;
    Runner ro(odd.graph());
    ro.config().execute_kernels = false;
    // Cross-run time comparison: pin the clock so tiling, not DVFS,
    // is the difference being measured.
    ra.config().autoboost = false;
    ro.config().autoboost = false;
    const double ta =
        ra.run(cudnn_plan(aligned.graph(), aligned.cudnn_layers,
                          ra.config())).total_ns;
    const double to =
        ro.run(cudnn_plan(odd.graph(), odd.cudnn_layers, ro.config()))
            .total_ns;
    // The odd model does *less* math (60 < 64) yet runs slower.
    EXPECT_GT(to, ta);
}

TEST(Xla, StaticPlanFusesWithoutMeasurement)
{
    const BuiltModel m = lstm_model(8, 32, /*embedding=*/false);
    const SearchSpace space = enumerate_search_space(m.graph());
    const ExecutionPlan plan = xla_plan(m.graph(), space);
    int ew_fused = 0, gemm_fused = 0;
    for (const PlanStep& s : plan.steps) {
        ew_fused += s.kind == StepKind::FusedElementwise;
        gemm_fused += s.kind == StepKind::FusedGemm ||
                      s.kind == StepKind::LadderGemm;
    }
    // Era-accurate XLA: loop/elementwise fusion yes, GEMM batching no.
    EXPECT_GT(ew_fused, 0);
    EXPECT_EQ(gemm_fused, 0);
    // Static = single stream, default library everywhere.
    for (const PlanStep& s : plan.steps) {
        EXPECT_EQ(s.stream, 0);
        EXPECT_EQ(s.lib, GemmLib::Cublas);
    }
}

TEST(Xla, OptionalGemmFusionStillAvailable)
{
    const BuiltModel m = lstm_model(8, 32, /*embedding=*/false);
    const SearchSpace space = enumerate_search_space(m.graph());
    XlaOptions opts;
    opts.gemm_fusion = true;
    const ExecutionPlan plan = xla_plan(m.graph(), space, opts);
    int gemm_fused = 0;
    for (const PlanStep& s : plan.steps)
        gemm_fused += s.kind == StepKind::FusedGemm ||
                      s.kind == StepKind::LadderGemm;
    EXPECT_GT(gemm_fused, 0);
}

TEST(Xla, ValuesMatchNative)
{
    const BuiltModel m = lstm_model(4, 16, /*embedding=*/false);
    const SearchSpace space = enumerate_search_space(m.graph());
    Runner native(m.graph());
    Rng rng(41);
    bind_all(m.graph(), native.tmap(), rng);
    native.run_native();

    Runner xla(m.graph(), space.strategies[0].runs);
    Rng rng2(41);
    bind_all(m.graph(), xla.tmap(), rng2);
    xla.run(xla_plan(m.graph(), space));
    EXPECT_EQ(native.scalar(m.loss), xla.scalar(m.loss));
}

TEST(Xla, HelpsWithoutEmbeddings)
{
    const BuiltModel m = lstm_model(8, 32, /*embedding=*/false);
    const SearchSpace space = enumerate_search_space(m.graph());
    Runner r(m.graph(), space.strategies[0].runs);
    r.config().execute_kernels = false;
    const double native = r.run_native().total_ns;
    const double xla = r.run(xla_plan(m.graph(), space)).total_ns;
    EXPECT_LT(xla, native);
}

TEST(Xla, EmbeddingPathologyMakesItWorseThanNative)
{
    // §6.6: "the XLA implementation was *worse* than native for many
    // of the models ... because XLA handles embeddings poorly" (3x
    // worse for SC-RNN, whose per-step compute is small relative to
    // the per-step lookup).
    ModelConfig scrnn_cfg;
    scrnn_cfg.batch = 8;
    scrnn_cfg.seq_len = 6;
    scrnn_cfg.hidden = 32;
    scrnn_cfg.embed_dim = 32;
    scrnn_cfg.vocab = 60;
    const BuiltModel m = build_model(ModelKind::Scrnn, scrnn_cfg);
    const SearchSpace space = enumerate_search_space(m.graph());
    Runner r(m.graph(), space.strategies[0].runs);
    r.config().execute_kernels = false;
    const double native = r.run_native().total_ns;
    const double xla = r.run(xla_plan(m.graph(), space)).total_ns;
    EXPECT_GT(xla, native);
}

TEST(Xla, PenaltyOnlyOnEmbeddingSteps)
{
    const BuiltModel m = lstm_model(4, 16, /*embedding=*/true);
    const SearchSpace space = enumerate_search_space(m.graph());
    const ExecutionPlan plan = xla_plan(m.graph(), space);
    for (const PlanStep& s : plan.steps) {
        if (s.extra_setup_ns > 0.0) {
            ASSERT_EQ(s.nodes.size(), 1u);
            const OpKind k = m.graph().node(s.nodes[0]).kind;
            EXPECT_TRUE(k == OpKind::Embedding ||
                        k == OpKind::EmbeddingGrad);
        }
    }
}

}  // namespace
}  // namespace astra
