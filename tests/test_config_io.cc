/**
 * @file
 * Tests for configuration persistence: round-trip fidelity, rejection
 * of malformed input, and the end-to-end restart story — a reloaded
 * configuration reproduces the tuned mini-batch time exactly.
 */
#include <gtest/gtest.h>

#include <locale>
#include <string>

#include "core/astra.h"
#include "core/config_io.h"
#include "models/models.h"

namespace astra {
namespace {

TEST(ConfigIo, RoundTripAllFields)
{
    ScheduleConfig cfg;
    cfg.strategy = 2;
    cfg.elementwise_fusion = false;
    cfg.use_streams = true;
    cfg.num_streams = 3;
    cfg.group_chunk = {1, 4, 2};
    cfg.group_lib = {GemmLib::Oai1, GemmLib::Cublas, GemmLib::Oai2};
    cfg.single_lib[17] = GemmLib::Oai2;
    cfg.single_lib[99] = GemmLib::Cublas;
    cfg.epoch_choice[{0, 2}] = 3;
    cfg.epoch_choice[{4, 0}] = 1;

    ScheduleConfig back;
    ASSERT_TRUE(config_from_string(config_to_string(cfg), &back));
    EXPECT_EQ(back.strategy, 2);
    EXPECT_FALSE(back.elementwise_fusion);
    EXPECT_TRUE(back.use_streams);
    EXPECT_EQ(back.num_streams, 3);
    EXPECT_EQ(back.group_chunk, cfg.group_chunk);
    EXPECT_EQ(back.group_lib, cfg.group_lib);
    EXPECT_EQ(back.single_lib, cfg.single_lib);
    EXPECT_EQ(back.epoch_choice, cfg.epoch_choice);
}

TEST(ConfigIo, RoundTripEmptyConfig)
{
    ScheduleConfig cfg;
    ScheduleConfig back;
    ASSERT_TRUE(config_from_string(config_to_string(cfg), &back));
    EXPECT_EQ(back.strategy, 0);
    EXPECT_TRUE(back.group_chunk.empty());
    EXPECT_TRUE(back.epoch_choice.empty());
}

TEST(ConfigIo, RejectsMalformedInput)
{
    ScheduleConfig cfg;
    cfg.strategy = 7;
    ScheduleConfig probe = cfg;
    EXPECT_FALSE(config_from_string("", &probe));
    EXPECT_FALSE(config_from_string("not-a-config\n", &probe));
    EXPECT_FALSE(config_from_string(
        "astra-config v1\nbogus_key 3\n", &probe));
    EXPECT_FALSE(config_from_string(
        "astra-config v1\ngroup_lib 99\n", &probe));
    EXPECT_FALSE(config_from_string(
        "astra-config v1\nsingle_lib nocolon\n", &probe));
    // Failed parses leave the destination untouched.
    EXPECT_EQ(probe.strategy, 7);
}

TEST(ConfigIo, MalformedNumbersReturnFalseNeverThrow)
{
    // Config files are untrusted input: a corrupted token must fail
    // the load, never escape as std::invalid_argument/out_of_range.
    const char* cases[] = {
        "astra-config v1\nsingle_lib x:y\n",
        "astra-config v1\nsingle_lib :\n",
        "astra-config v1\nsingle_lib 5:\n",
        "astra-config v1\nsingle_lib :2\n",
        "astra-config v1\nsingle_lib 5:two\n",
        "astra-config v1\nsingle_lib -1:0\n",
        "astra-config v1\nsingle_lib 5:3\n",  // lib out of range
        "astra-config v1\nsingle_lib 99999999999999999999:0\n",
        "astra-config v1\nsingle_lib 5:99999999999999999999\n",
        "astra-config v1\nepoch_choice 1,:2\n",
        "astra-config v1\nepoch_choice ,1:2\n",
        "astra-config v1\nepoch_choice 1,2\n",   // no colon
        "astra-config v1\nepoch_choice 1:2,3\n", // colon before comma
        "astra-config v1\nepoch_choice a,b:c\n",
        "astra-config v1\nepoch_choice 1,99999999999999999999:2\n",
    };
    for (const char* text : cases) {
        ScheduleConfig probe;
        EXPECT_NO_THROW(
            EXPECT_FALSE(config_from_string(text, &probe)) << text);
    }
}

TEST(ConfigIo, FailureDiagnosisNamesTheLine)
{
    // Loaders are fed untrusted files; the CLI surfaces the returned
    // error verbatim, so it must carry the line and the reason.
    ScheduleConfig probe;
    std::string error;
    EXPECT_FALSE(config_from_string(
        "astra-config v1\nstrategy 1\nbogus_key 3\n", &probe, &error));
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;
    EXPECT_NE(error.find("bogus_key"), std::string::npos) << error;

    error.clear();
    EXPECT_FALSE(config_from_string("not-a-config\n", &probe, &error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(ProfileIo, RoundTripBitExact)
{
    MeasurementPolicy noisy = MeasurementPolicy::noise_robust();
    ProfileIndex idx(noisy);
    idx.record("s0|fmm.x4|0", 123.456789);
    idx.record("s0|fmm.x4|0", 124.0);
    idx.record("s0|fmm.x4|0", 1.0 / 3.0);
    idx.record("s0|key with spaces|2", 0.5);
    idx.record_fault("s0|quarantined|1");
    idx.record_fault("s0|quarantined|1");

    ProfileIndex back(noisy);
    std::string error;
    ASSERT_TRUE(profile_index_from_string(profile_index_to_string(idx),
                                          &back, &error))
        << error;
    ASSERT_EQ(back.size(), idx.size());
    EXPECT_EQ(back.total_samples(), idx.total_samples());
    EXPECT_EQ(back.total_rejected(), idx.total_rejected());
    EXPECT_EQ(back.total_faults(), idx.total_faults());
    EXPECT_EQ(back.quarantined_keys(), idx.quarantined_keys());
    auto it = idx.entries().begin();
    auto bt = back.entries().begin();
    for (; it != idx.entries().end(); ++it, ++bt) {
        EXPECT_EQ(it->first, bt->first);
        EXPECT_EQ(it->second.count, bt->second.count);
        EXPECT_EQ(it->second.min, bt->second.min);    // bit-exact
        EXPECT_EQ(it->second.mean, bt->second.mean);  // bit-exact
        EXPECT_EQ(it->second.m2, bt->second.m2);      // bit-exact
        EXPECT_EQ(it->second.window(), bt->second.window());
    }
}

TEST(ProfileIo, RoundTripMergedAndOutlierRejectedState)
{
    // A parallel exploration merges per-strategy shards and rejects
    // outliers; the persisted index must reproduce that exact state so
    // a warm-started wirer ranks choices identically.
    MeasurementPolicy policy;
    policy.outlier_mad_k = 3.0;
    policy.outlier_min_window = 5;
    ProfileIndex a(policy), b(policy);
    for (int i = 0; i < 12; ++i)
        a.record("shared|k|0", 100.0 + 0.0625 * i);
    EXPECT_FALSE(a.record("shared|k|0", 1e6));  // outlier, rejected
    for (int i = 0; i < 7; ++i)
        b.record("shared|k|0", 101.0 + 0.125 * i);
    b.record_fault("s1|only|3");
    a.merge(b);

    ProfileIndex back;
    ASSERT_TRUE(
        profile_index_from_string(profile_index_to_string(a), &back));
    const ProfileStats* s = back.stats("shared|k|0");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->count, 19);
    EXPECT_EQ(s->rejected, 1);
    EXPECT_EQ(s->mean, a.stats("shared|k|0")->mean);
    EXPECT_EQ(s->m2, a.stats("shared|k|0")->m2);
    EXPECT_EQ(back.total_rejected(), 1);
    EXPECT_EQ(back.quarantined_keys(), a.quarantined_keys());
}

TEST(ProfileIo, PropertyRandomRoundTrips)
{
    // Property-style sweep: random indices (deterministic LCG) must
    // round-trip bit-exactly, whatever the sample values look like.
    uint64_t state = 0x243f6a8885a308d3ull;
    auto rnd = [&]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 11;
    };
    for (int trial = 0; trial < 20; ++trial) {
        ProfileIndex idx;
        const int keys = static_cast<int>(rnd() % 8);
        for (int k = 0; k < keys; ++k) {
            const std::string key = "s" + std::to_string(rnd() % 3) +
                                    "|v" + std::to_string(k) + "|" +
                                    std::to_string(rnd() % 4);
            const int samples = 1 + static_cast<int>(rnd() % 40);
            for (int s = 0; s < samples; ++s)
                idx.record(key,
                           static_cast<double>(rnd()) *
                               (1.0 + 1e-9 * static_cast<double>(s)));
            if (rnd() % 4 == 0)
                idx.record_fault(key);
        }
        ProfileIndex back;
        std::string error;
        ASSERT_TRUE(profile_index_from_string(
            profile_index_to_string(idx), &back, &error))
            << "trial " << trial << ": " << error;
        ASSERT_EQ(back.size(), idx.size()) << "trial " << trial;
        EXPECT_EQ(back.total_samples(), idx.total_samples());
        auto it = idx.entries().begin();
        auto bt = back.entries().begin();
        for (; it != idx.entries().end(); ++it, ++bt) {
            EXPECT_EQ(it->first, bt->first);
            EXPECT_EQ(it->second.min, bt->second.min);
            EXPECT_EQ(it->second.max, bt->second.max);
            EXPECT_EQ(it->second.mean, bt->second.mean);
            EXPECT_EQ(it->second.m2, bt->second.m2);
            EXPECT_EQ(it->second.window(), bt->second.window());
        }
    }
}

TEST(ProfileIo, RejectsMalformedWithLineDiagnosis)
{
    const struct
    {
        const char* text;
        const char* expect;  // substring of the diagnosis
    } cases[] = {
        {"", "line 1"},
        {"not-a-profile\n", "line 1"},
        {"astra-profile v2\nentries 0\n", "line 1"},
        {"astra-profile v1\n", "line 2"},
        {"astra-profile v1\nentries x\n", "line 2"},
        {"astra-profile v1\nentries 1\n", "line 3"},
        {"astra-profile v1\nentries 1\nstat 1 0 0\n", "line 3"},
        {"astra-profile v1\nentries 1\n"
         "stat z 0 0 0x0p+0 0x0p+0 0x0p+0 0x0p+0 0 key\n",
         "line 3"},
        {"astra-profile v1\nentries 2\n"
         "stat 1 0 0 0x1p+0 0x1p+0 0x1p+0 0x0p+0 1 0x1p+0 k\n",
         "line 4"},  // fewer entries than declared
    };
    for (const auto& c : cases) {
        ProfileIndex probe;
        probe.record("canary", 1.0);
        std::string error;
        EXPECT_FALSE(
            profile_index_from_string(c.text, &probe, &error))
            << c.text;
        EXPECT_NE(error.find(c.expect), std::string::npos)
            << "input: " << c.text << "\ndiagnosis: " << error;
        // Failed parses leave the destination untouched.
        EXPECT_EQ(probe.size(), 1u);
        EXPECT_TRUE(probe.contains("canary"));
    }
}

TEST(CheckpointIo, RoundTripIsBitExact)
{
    WirerCheckpoint cp;
    cp.strategies.resize(2);
    DispatchRecord r0;
    r0.total_ns = 1.0 / 3.0;  // not representable in decimal
    r0.clock_multiplier = 1.0 + 0.12 * (1.0 / 7.0);
    r0.profile = {{"g0", 12345.678901234567}, {"fmm.x2.%5.oai_1", 0.1}};
    DispatchRecord r1;
    r1.total_ns = 9.87654e12;
    r1.faulted = true;
    r1.fault_attempts = 3;
    r1.faults_seen = 5;
    r1.straggler_events = 2;
    r1.backoff_ns = 50.0 * 1e3 * 7.0;
    cp.strategies[0] = {r0, r1};
    // Strategy 1 left empty: shards may not have dispatched yet.

    WirerCheckpoint back;
    ASSERT_TRUE(checkpoint_from_string(checkpoint_to_string(cp), &back));
    ASSERT_EQ(back.strategies.size(), 2u);
    ASSERT_EQ(back.strategies[0].size(), 2u);
    EXPECT_TRUE(back.strategies[1].empty());
    const DispatchRecord& b0 = back.strategies[0][0];
    EXPECT_EQ(b0.total_ns, r0.total_ns);  // bit-exact, not NEAR
    EXPECT_EQ(b0.clock_multiplier, r0.clock_multiplier);
    EXPECT_FALSE(b0.faulted);
    ASSERT_EQ(b0.profile.size(), 2u);
    EXPECT_EQ(b0.profile[0].first, "g0");
    EXPECT_EQ(b0.profile[0].second, r0.profile[0].second);
    EXPECT_EQ(b0.profile[1].first, "fmm.x2.%5.oai_1");
    EXPECT_EQ(b0.profile[1].second, 0.1);
    const DispatchRecord& b1 = back.strategies[0][1];
    EXPECT_EQ(b1.total_ns, r1.total_ns);
    EXPECT_TRUE(b1.faulted);
    EXPECT_EQ(b1.fault_attempts, 3);
    EXPECT_EQ(b1.faults_seen, 5);
    EXPECT_EQ(b1.straggler_events, 2);
    EXPECT_EQ(b1.backoff_ns, r1.backoff_ns);
}

TEST(CheckpointIo, RoundTripEmpty)
{
    WirerCheckpoint cp;
    EXPECT_TRUE(cp.empty());
    WirerCheckpoint back;
    ASSERT_TRUE(checkpoint_from_string(checkpoint_to_string(cp), &back));
    EXPECT_TRUE(back.empty());
}

TEST(CheckpointIo, RejectsMalformedInput)
{
    WirerCheckpoint probe;
    probe.strategies.resize(3);  // canary
    const char* cases[] = {
        "",
        "not-a-checkpoint\n",
        "astra-checkpoint v2\nstrategies 0\n",
        "astra-checkpoint v1\nstrategies x\n",
        "astra-checkpoint v1\nstrategies 1\n",  // missing strategy line
        "astra-checkpoint v1\nstrategies 1\nstrategy 1 0\n",  // sid wrong
        "astra-checkpoint v1\nstrategies 1\nstrategy 0 1\n",  // no record
        "astra-checkpoint v1\nstrategies 1\nstrategy 0 1\n"
        "record zzz 0x1p+0 0 0 0 0 0x0p+0 0\n",
        "astra-checkpoint v1\nstrategies 1\nstrategy 0 1\n"
        "record 0x1p+0 0x1p+0 0 0 0 0 0x0p+0 1\n",  // missing prof
        "astra-checkpoint v1\nstrategies 1\nstrategy 0 1\n"
        "record 0x1p+0 0x1p+0 0 0 0 0 0x0p+0 1\nprof nope key\n",
    };
    for (const char* text : cases) {
        WirerCheckpoint copy = probe;
        EXPECT_FALSE(checkpoint_from_string(text, &copy)) << text;
        EXPECT_EQ(copy.strategies.size(), 3u) << text;  // untouched
    }
}

TEST(ConfigIo, RestartReproducesTunedTime)
{
    const BuiltModel m =
        build_model(ModelKind::Scrnn,
                    {.batch = 8, .seq_len = 4, .hidden = 32,
                     .embed_dim = 32, .vocab = 50});
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    // Exact reproduction requires base clock (§4.1) — pin it so the
    // CI noise job doesn't inject jitter between the two sessions.
    opts.gpu.autoboost = false;
    AstraSession session(m.graph(), opts);
    const WirerResult r = session.optimize();

    // "Restart": a fresh session + the persisted configuration.
    const std::string saved = config_to_string(r.best_config);
    AstraSession restarted(m.graph(), opts);
    ScheduleConfig loaded;
    ASSERT_TRUE(config_from_string(saved, &loaded));
    EXPECT_DOUBLE_EQ(restarted.run(loaded).total_ns, r.best_ns);
}

/** numpunct facet of a de_DE-style locale: ',' decimal, '.' grouping. */
class CommaDecimal : public std::numpunct<char>
{
  protected:
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

/** RAII global-locale override (restored even on ASSERT failure). */
class ScopedGlobalLocale
{
  public:
    explicit ScopedGlobalLocale(const std::locale& loc)
        : prev_(std::locale::global(loc))
    {
    }
    ~ScopedGlobalLocale() { std::locale::global(prev_); }

  private:
    std::locale prev_;
};

TEST(ConfigIo, RoundTripsUnderCommaDecimalGlobalLocale)
{
    // A checkpoint written on one host must load on a host whose
    // global locale writes "1,5" for 1.5 and groups thousands as
    // "1.234": the persistence layer pins the classic locale on its
    // own streams and parses numbers with std::from_chars, so the
    // ambient locale must not matter in either direction.
    const ScopedGlobalLocale guard(
        std::locale(std::locale::classic(), new CommaDecimal));

    ScheduleConfig cfg;
    cfg.strategy = 1;
    cfg.num_streams = 2;
    cfg.group_chunk = {1234, 4};  // > 3 digits: grouping bait
    cfg.group_lib = {GemmLib::Cublas, GemmLib::Oai1};
    cfg.single_lib[1001] = GemmLib::Oai2;
    cfg.epoch_choice[{0, 1}] = 2;
    ScheduleConfig cback;
    std::string error;
    ASSERT_TRUE(config_from_string(config_to_string(cfg), &cback, &error))
        << error;
    EXPECT_EQ(cback.group_chunk, cfg.group_chunk);
    EXPECT_EQ(cback.single_lib, cfg.single_lib);
    EXPECT_EQ(config_to_string(cback), config_to_string(cfg));

    ProfileIndex idx;
    idx.record("k|0", 1.0 / 3.0);
    idx.record("k|0", 123456.789);
    ProfileIndex iback;
    ASSERT_TRUE(profile_index_from_string(profile_index_to_string(idx),
                                          &iback, &error))
        << error;
    EXPECT_EQ(iback.stats("k|0")->mean, idx.stats("k|0")->mean);
    EXPECT_EQ(iback.stats("k|0")->m2, idx.stats("k|0")->m2);

    WirerCheckpoint cp;
    cp.strategies.resize(1);
    DispatchRecord r;
    r.total_ns = 1234567.25;
    r.clock_multiplier = 1.0 + 1.0 / 7.0;
    r.profile = {{"g0", 1.0 / 3.0}};
    cp.strategies[0] = {r};
    WirerCheckpoint wback;
    ASSERT_TRUE(checkpoint_from_string(checkpoint_to_string(cp), &wback,
                                       &error))
        << error;
    EXPECT_EQ(wback.strategies[0][0].total_ns, r.total_ns);
    EXPECT_EQ(wback.strategies[0][0].clock_multiplier,
              r.clock_multiplier);
    EXPECT_EQ(wback.strategies[0][0].profile[0].second, 1.0 / 3.0);
}

TEST(ProfileIo, HexfloatParsesWithAndWithoutPrefixAndSign)
{
    // "%a"-style fixtures written by other tools may drop the "0x"
    // prefix; both spellings (and an explicit sign) must parse to the
    // same bits. 0x1.8p+3 == 12.0.
    const char* variants[] = {
        "astra-profile v1\nentries 1\n"
        "stat 1 0 0 0x1.8p+3 0x1.8p+3 0x1.8p+3 0x0p+0 0 k\n",
        "astra-profile v1\nentries 1\n"
        "stat 1 0 0 1.8p+3 1.8p+3 1.8p+3 0x0p+0 0 k\n",
        "astra-profile v1\nentries 1\n"
        "stat 1 0 0 +0x1.8p+3 0X1.8P+3 0x1.8p+3 0x0p+0 0 k\n",
    };
    for (const char* text : variants) {
        ProfileIndex back;
        std::string error;
        ASSERT_TRUE(profile_index_from_string(text, &back, &error))
            << error << "\n" << text;
        EXPECT_EQ(back.stats("k")->mean, 12.0) << text;
    }
    // Negative values keep their sign through the manual strip.
    ProfileIndex neg;
    ASSERT_TRUE(profile_index_from_string(
        "astra-profile v1\nentries 1\n"
        "stat 1 0 0 -0x1.8p+3 -0x1.8p+3 -0x1.8p+3 0x0p+0 0 k\n",
        &neg));
    EXPECT_EQ(neg.stats("k")->mean, -12.0);
    // A comma decimal separator is never silently accepted — the token
    // must fail whole-string parsing, not truncate at the comma.
    ProfileIndex comma;
    EXPECT_FALSE(profile_index_from_string(
        "astra-profile v1\nentries 1\n"
        "stat 1 0 0 1,5 1,5 1,5 0x0p+0 0 k\n",
        &comma));
}

}  // namespace
}  // namespace astra
