/**
 * @file
 * Tests for configuration persistence: round-trip fidelity, rejection
 * of malformed input, and the end-to-end restart story — a reloaded
 * configuration reproduces the tuned mini-batch time exactly.
 */
#include <gtest/gtest.h>

#include "core/astra.h"
#include "core/config_io.h"
#include "models/models.h"

namespace astra {
namespace {

TEST(ConfigIo, RoundTripAllFields)
{
    ScheduleConfig cfg;
    cfg.strategy = 2;
    cfg.elementwise_fusion = false;
    cfg.use_streams = true;
    cfg.num_streams = 3;
    cfg.group_chunk = {1, 4, 2};
    cfg.group_lib = {GemmLib::Oai1, GemmLib::Cublas, GemmLib::Oai2};
    cfg.single_lib[17] = GemmLib::Oai2;
    cfg.single_lib[99] = GemmLib::Cublas;
    cfg.epoch_choice[{0, 2}] = 3;
    cfg.epoch_choice[{4, 0}] = 1;

    ScheduleConfig back;
    ASSERT_TRUE(config_from_string(config_to_string(cfg), &back));
    EXPECT_EQ(back.strategy, 2);
    EXPECT_FALSE(back.elementwise_fusion);
    EXPECT_TRUE(back.use_streams);
    EXPECT_EQ(back.num_streams, 3);
    EXPECT_EQ(back.group_chunk, cfg.group_chunk);
    EXPECT_EQ(back.group_lib, cfg.group_lib);
    EXPECT_EQ(back.single_lib, cfg.single_lib);
    EXPECT_EQ(back.epoch_choice, cfg.epoch_choice);
}

TEST(ConfigIo, RoundTripEmptyConfig)
{
    ScheduleConfig cfg;
    ScheduleConfig back;
    ASSERT_TRUE(config_from_string(config_to_string(cfg), &back));
    EXPECT_EQ(back.strategy, 0);
    EXPECT_TRUE(back.group_chunk.empty());
    EXPECT_TRUE(back.epoch_choice.empty());
}

TEST(ConfigIo, RejectsMalformedInput)
{
    ScheduleConfig cfg;
    cfg.strategy = 7;
    ScheduleConfig probe = cfg;
    EXPECT_FALSE(config_from_string("", &probe));
    EXPECT_FALSE(config_from_string("not-a-config\n", &probe));
    EXPECT_FALSE(config_from_string(
        "astra-config v1\nbogus_key 3\n", &probe));
    EXPECT_FALSE(config_from_string(
        "astra-config v1\ngroup_lib 99\n", &probe));
    EXPECT_FALSE(config_from_string(
        "astra-config v1\nsingle_lib nocolon\n", &probe));
    // Failed parses leave the destination untouched.
    EXPECT_EQ(probe.strategy, 7);
}

TEST(ConfigIo, MalformedNumbersReturnFalseNeverThrow)
{
    // Config files are untrusted input: a corrupted token must fail
    // the load, never escape as std::invalid_argument/out_of_range.
    const char* cases[] = {
        "astra-config v1\nsingle_lib x:y\n",
        "astra-config v1\nsingle_lib :\n",
        "astra-config v1\nsingle_lib 5:\n",
        "astra-config v1\nsingle_lib :2\n",
        "astra-config v1\nsingle_lib 5:two\n",
        "astra-config v1\nsingle_lib -1:0\n",
        "astra-config v1\nsingle_lib 5:3\n",  // lib out of range
        "astra-config v1\nsingle_lib 99999999999999999999:0\n",
        "astra-config v1\nsingle_lib 5:99999999999999999999\n",
        "astra-config v1\nepoch_choice 1,:2\n",
        "astra-config v1\nepoch_choice ,1:2\n",
        "astra-config v1\nepoch_choice 1,2\n",   // no colon
        "astra-config v1\nepoch_choice 1:2,3\n", // colon before comma
        "astra-config v1\nepoch_choice a,b:c\n",
        "astra-config v1\nepoch_choice 1,99999999999999999999:2\n",
    };
    for (const char* text : cases) {
        ScheduleConfig probe;
        EXPECT_NO_THROW(
            EXPECT_FALSE(config_from_string(text, &probe)) << text);
    }
}

TEST(CheckpointIo, RoundTripIsBitExact)
{
    WirerCheckpoint cp;
    cp.strategies.resize(2);
    DispatchRecord r0;
    r0.total_ns = 1.0 / 3.0;  // not representable in decimal
    r0.clock_multiplier = 1.0 + 0.12 * (1.0 / 7.0);
    r0.profile = {{"g0", 12345.678901234567}, {"fmm.x2.%5.oai_1", 0.1}};
    DispatchRecord r1;
    r1.total_ns = 9.87654e12;
    r1.faulted = true;
    r1.fault_attempts = 3;
    r1.faults_seen = 5;
    r1.straggler_events = 2;
    r1.backoff_ns = 50.0 * 1e3 * 7.0;
    cp.strategies[0] = {r0, r1};
    // Strategy 1 left empty: shards may not have dispatched yet.

    WirerCheckpoint back;
    ASSERT_TRUE(checkpoint_from_string(checkpoint_to_string(cp), &back));
    ASSERT_EQ(back.strategies.size(), 2u);
    ASSERT_EQ(back.strategies[0].size(), 2u);
    EXPECT_TRUE(back.strategies[1].empty());
    const DispatchRecord& b0 = back.strategies[0][0];
    EXPECT_EQ(b0.total_ns, r0.total_ns);  // bit-exact, not NEAR
    EXPECT_EQ(b0.clock_multiplier, r0.clock_multiplier);
    EXPECT_FALSE(b0.faulted);
    ASSERT_EQ(b0.profile.size(), 2u);
    EXPECT_EQ(b0.profile[0].first, "g0");
    EXPECT_EQ(b0.profile[0].second, r0.profile[0].second);
    EXPECT_EQ(b0.profile[1].first, "fmm.x2.%5.oai_1");
    EXPECT_EQ(b0.profile[1].second, 0.1);
    const DispatchRecord& b1 = back.strategies[0][1];
    EXPECT_EQ(b1.total_ns, r1.total_ns);
    EXPECT_TRUE(b1.faulted);
    EXPECT_EQ(b1.fault_attempts, 3);
    EXPECT_EQ(b1.faults_seen, 5);
    EXPECT_EQ(b1.straggler_events, 2);
    EXPECT_EQ(b1.backoff_ns, r1.backoff_ns);
}

TEST(CheckpointIo, RoundTripEmpty)
{
    WirerCheckpoint cp;
    EXPECT_TRUE(cp.empty());
    WirerCheckpoint back;
    ASSERT_TRUE(checkpoint_from_string(checkpoint_to_string(cp), &back));
    EXPECT_TRUE(back.empty());
}

TEST(CheckpointIo, RejectsMalformedInput)
{
    WirerCheckpoint probe;
    probe.strategies.resize(3);  // canary
    const char* cases[] = {
        "",
        "not-a-checkpoint\n",
        "astra-checkpoint v2\nstrategies 0\n",
        "astra-checkpoint v1\nstrategies x\n",
        "astra-checkpoint v1\nstrategies 1\n",  // missing strategy line
        "astra-checkpoint v1\nstrategies 1\nstrategy 1 0\n",  // sid wrong
        "astra-checkpoint v1\nstrategies 1\nstrategy 0 1\n",  // no record
        "astra-checkpoint v1\nstrategies 1\nstrategy 0 1\n"
        "record zzz 0x1p+0 0 0 0 0 0x0p+0 0\n",
        "astra-checkpoint v1\nstrategies 1\nstrategy 0 1\n"
        "record 0x1p+0 0x1p+0 0 0 0 0 0x0p+0 1\n",  // missing prof
        "astra-checkpoint v1\nstrategies 1\nstrategy 0 1\n"
        "record 0x1p+0 0x1p+0 0 0 0 0 0x0p+0 1\nprof nope key\n",
    };
    for (const char* text : cases) {
        WirerCheckpoint copy = probe;
        EXPECT_FALSE(checkpoint_from_string(text, &copy)) << text;
        EXPECT_EQ(copy.strategies.size(), 3u) << text;  // untouched
    }
}

TEST(ConfigIo, RestartReproducesTunedTime)
{
    const BuiltModel m =
        build_model(ModelKind::Scrnn,
                    {.batch = 8, .seq_len = 4, .hidden = 32,
                     .embed_dim = 32, .vocab = 50});
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    // Exact reproduction requires base clock (§4.1) — pin it so the
    // CI noise job doesn't inject jitter between the two sessions.
    opts.gpu.autoboost = false;
    AstraSession session(m.graph(), opts);
    const WirerResult r = session.optimize();

    // "Restart": a fresh session + the persisted configuration.
    const std::string saved = config_to_string(r.best_config);
    AstraSession restarted(m.graph(), opts);
    ScheduleConfig loaded;
    ASSERT_TRUE(config_from_string(saved, &loaded));
    EXPECT_DOUBLE_EQ(restarted.run(loaded).total_ns, r.best_ns);
}

}  // namespace
}  // namespace astra
