/**
 * @file
 * Tests for the liveness-based memory planner (buffer reuse) and the
 * §3.4 recompute-for-memory rewrite: value preservation, peak-memory
 * reduction, and the compute-vs-memory trade itself.
 */
#include <gtest/gtest.h>

#include "autodiff/recompute.h"
#include "models/data.h"
#include "models/models.h"
#include "runtime/dispatcher.h"
#include "runtime/native.h"
#include "tests/util.h"

namespace astra {
namespace {

TEST(ReusePlanner, RecyclesDeadBuffers)
{
    // x -> a -> b -> c: 'a' dies once 'b' executed, so 'c' can reuse
    // its slot; peak is well below the bump total.
    GraphBuilder b;
    const NodeId x = b.input({64, 64});
    const NodeId a = b.sigmoid(x);
    const NodeId c = b.tanh(a);
    const NodeId d = b.relu(c);
    b.graph().mark_output(d);

    SimMemory bump_mem(1 << 22);
    TensorMap bump(b.graph(), bump_mem, {}, MemoryPlanMode::Bump);
    SimMemory reuse_mem(1 << 22);
    TensorMap reuse(b.graph(), reuse_mem, {}, MemoryPlanMode::Reuse);
    EXPECT_LT(reuse.peak_bytes(), bump.peak_bytes());
    // x (live forever) + d (output) + two interior slots at most.
    EXPECT_LE(reuse.peak_bytes(), 3 * 64 * 64 * 4 + 3 * 256);
}

TEST(ReusePlanner, NeverAliasesLiveBuffers)
{
    // Random-ish DAG: check no two simultaneously-live buffers overlap.
    const BuiltModel m =
        build_model(ModelKind::SubLstm,
                    {.batch = 4, .seq_len = 3, .hidden = 16,
                     .embed_dim = 16, .vocab = 30});
    const Graph& g = m.graph();
    SimMemory mem(64 << 20);
    TensorMap tmap(g, mem, {}, MemoryPlanMode::Reuse);

    // last_use computation mirroring the planner.
    std::vector<NodeId> last(static_cast<size_t>(g.size()), 0);
    for (const Node& n : g.nodes()) {
        last[static_cast<size_t>(n.id)] = n.id;
        for (NodeId in : n.inputs)
            last[static_cast<size_t>(in)] =
                std::max(last[static_cast<size_t>(in)], n.id);
    }
    for (const Node& n : g.nodes())
        if (op_is_source(n.kind))
            last[static_cast<size_t>(n.id)] = g.size();
    for (NodeId out : g.outputs())
        last[static_cast<size_t>(out)] = g.size();

    for (const Node& a : g.nodes()) {
        for (const Node& c : g.nodes()) {
            if (a.id >= c.id)
                continue;
            // Overlapping lifetimes?
            const bool live_together =
                c.id <= last[static_cast<size_t>(a.id)];
            if (!live_together)
                continue;
            const int64_t a0 = tmap.ptr(a.id);
            const int64_t a1 = a0 + static_cast<int64_t>(a.desc.bytes());
            const int64_t c0 = tmap.ptr(c.id);
            const int64_t c1 = c0 + static_cast<int64_t>(c.desc.bytes());
            ASSERT_TRUE(a1 <= c0 || c1 <= a0)
                << "live buffers %" << a.id << " and %" << c.id
                << " overlap";
        }
    }
}

TEST(ReusePlanner, ValuesStillCorrect)
{
    const BuiltModel m =
        build_model(ModelKind::Scrnn,
                    {.batch = 4, .seq_len = 3, .hidden = 16,
                     .embed_dim = 16, .vocab = 30});
    // Bump reference.
    testutil::Runner bump(m.graph());
    Rng rng(5);
    bind_all(m.graph(), bump.tmap(), rng);
    bump.run_native();

    // Reuse arena.
    SimMemory mem(graph_tensor_bytes(m.graph()) + (1 << 20));
    TensorMap reuse(m.graph(), mem, {}, MemoryPlanMode::Reuse);
    Rng rng2(5);
    bind_all(m.graph(), reuse, rng2);
    GpuConfig cfg;
    dispatch_plan(native_plan(m.graph()), m.graph(), reuse, cfg);
    EXPECT_EQ(bump.tmap().f32(m.loss)[0], reuse.f32(m.loss)[0]);
}

TEST(ReusePlanner, HonorsAdjacencyRuns)
{
    GraphBuilder b;
    const NodeId x = b.input({2, 4});
    const NodeId w1 = b.param({4, 4});
    const NodeId w2 = b.param({4, 4});
    (void)x;
    SimMemory mem(1 << 16);
    TensorMap tmap(b.graph(), mem, {AdjacencyRun{{w1, w2}}},
                   MemoryPlanMode::Reuse);
    EXPECT_TRUE(tmap.adjacent({w1, w2}));
}

/** T-timestep model: recompute shrinks peak roughly with T. */
BuiltModel
rnn(int64_t t)
{
    return build_model(ModelKind::SubLstm,
                       {.batch = 8, .seq_len = t, .hidden = 32,
                        .embed_dim = 32, .vocab = 40});
}

TEST(Recompute, ValueIdenticalToOriginal)
{
    const BuiltModel m = rnn(4);
    RecomputePlan plan = apply_recompute(m.graph(), m.grads);
    EXPECT_GT(plan.cloned_nodes, 0);
    EXPECT_GT(plan.graph().size(), m.graph().size());

    testutil::Runner original(m.graph());
    Rng rng(19);
    bind_all(m.graph(), original.tmap(), rng);
    original.run_native();

    testutil::Runner rewritten(plan.graph());
    Rng rng2(19);
    bind_all(plan.graph(), rewritten.tmap(), rng2);
    rewritten.run_native();

    const NodeId new_loss = plan.remap[static_cast<size_t>(m.loss)];
    EXPECT_EQ(original.scalar(m.loss), rewritten.scalar(new_loss));
    // Every parameter gradient must match bit for bit.
    for (const auto& [param, grad] : m.grads.param_grads) {
        const NodeId new_grad = plan.param_grads.at(
            plan.remap[static_cast<size_t>(param)]);
        EXPECT_EQ(testutil::max_abs_diff(original.values(grad),
                                         rewritten.values(new_grad)),
                  0.0)
            << "grad of param %" << param;
    }
}

TEST(Recompute, ShrinksPeakMemoryUnderReusePlanner)
{
    const BuiltModel m = rnn(10);
    RecomputePlan plan = apply_recompute(m.graph(), m.grads);

    SimMemory mem1(256 << 20);
    TensorMap original(m.graph(), mem1, {}, MemoryPlanMode::Reuse);
    SimMemory mem2(256 << 20);
    TensorMap rewritten(plan.graph(), mem2, {}, MemoryPlanMode::Reuse);

    // Interior forward activations no longer survive to the backward
    // pass, so the high-water mark drops despite the larger graph.
    EXPECT_LT(rewritten.peak_bytes(), original.peak_bytes() * 0.85);
}

TEST(Recompute, CostsExtraComputeTime)
{
    const BuiltModel m = rnn(6);
    RecomputePlan plan = apply_recompute(m.graph(), m.grads);

    GpuConfig cfg;
    cfg.execute_kernels = false;
    SimMemory mem1(64 << 20, false);
    TensorMap t1(m.graph(), mem1);
    const double original =
        dispatch_plan(native_plan(m.graph()), m.graph(), t1, cfg)
            .total_ns;
    SimMemory mem2(64 << 20, false);
    TensorMap t2(plan.graph(), mem2);
    const double rewritten =
        dispatch_plan(native_plan(plan.graph()), plan.graph(), t2, cfg)
            .total_ns;
    // The trade: recompute must cost time (that is the whole point of
    // adapting over it instead of always enabling it).
    EXPECT_GT(rewritten, original * 1.1);
}

TEST(Recompute, AstraOptimizesRewrittenGraph)
{
    // The rewrite composes with the whole pipeline: the enumerator
    // mines the clone region too (it carries forward provenance), the
    // wirer explores, and the tuned result still matches the original
    // graph's native values bit for bit.
    const BuiltModel m = rnn(4);
    RecomputePlan plan = apply_recompute(m.graph(), m.grads);

    AstraOptions opts;
    opts.features = features_fk();
    opts.gpu.execute_kernels = true;
    AstraSession session(plan.graph(), opts);
    const WirerResult r = session.optimize();
    EXPECT_GT(r.minibatches, 3);

    const TensorMap& tuned = session.tensor_map(r.best_config.strategy);
    Rng rng(23);
    bind_all(plan.graph(), tuned, rng);
    session.run(r.best_config);

    testutil::Runner native(m.graph());
    Rng rng2(23);
    bind_all(m.graph(), native.tmap(), rng2);
    native.run_native();

    const NodeId new_loss = plan.remap[static_cast<size_t>(m.loss)];
    EXPECT_EQ(native.scalar(m.loss), tuned.f32(new_loss)[0]);
}

TEST(OomLadder, InjectedAllocFaultDegradesToReuse)
{
    // An injected allocation failure (the simulated cudaMalloc error)
    // must not abort the session: the ladder retries the strategy with
    // liveness-based reuse. `at=0` fires once per strategy's injector,
    // so every strategy degrades exactly one rung.
    const BuiltModel m = rnn(4);
    AstraOptions opts;
    ASSERT_TRUE(FaultPlan::parse("alloc:at=0", &opts.gpu.faults));
    AstraSession session(m.graph(), opts);
    ASSERT_GT(session.space().strategies.size(), 0u);
    for (size_t s = 0; s < session.space().strategies.size(); ++s)
        EXPECT_EQ(session.plan_mode(static_cast<int>(s)),
                  MemoryPlanMode::Reuse);
    EXPECT_FALSE(session.used_recompute());
}

TEST(OomLadder, GenuineExhaustionDegradesToReuse)
{
    // Size the pool between the bump total and the reuse peak: rung 1
    // cannot fit, rung 2 can.
    const BuiltModel m = rnn(10);
    SimMemory probe(256 << 20, false);
    TensorMap bump(m.graph(), probe, {}, MemoryPlanMode::Bump);
    SimMemory probe2(256 << 20, false);
    TensorMap reuse(m.graph(), probe2, {}, MemoryPlanMode::Reuse);
    ASSERT_LT(reuse.peak_bytes(), bump.peak_bytes());

    AstraOptions opts;
    opts.hbm_bytes =
        (bump.peak_bytes() + reuse.peak_bytes()) / 2;
    AstraSession session(m.graph(), opts);
    EXPECT_EQ(session.plan_mode(0), MemoryPlanMode::Reuse);
    EXPECT_FALSE(session.used_recompute());
}

TEST(OomLadder, RecomputeRungWhenReuseCannotFit)
{
    // Pool smaller than even the reuse peak: only the §3.4 recompute
    // rewrite (smaller activation footprint) can fit the device. Probe
    // both peaks under the exact strategy the session will use (the
    // enumerator's first greedy order, including its adjacency runs)
    // and size the pool between them.
    const BuiltModel m = rnn(10);
    EnumeratorOptions eopts;
    eopts.max_strategies = 1;
    const SearchSpace orig_space =
        enumerate_search_space(m.graph(), eopts);
    SimMemory probe(256 << 20, false);
    TensorMap reuse(m.graph(), probe, orig_space.strategies[0].runs,
                    MemoryPlanMode::Reuse);

    RecomputePlan plan = apply_recompute(m.graph(), m.grads);
    const SearchSpace rew_space =
        enumerate_search_space(plan.graph(), eopts);
    SimMemory probe2(256 << 20, false);
    TensorMap rew_reuse(plan.graph(), probe2,
                        rew_space.strategies[0].runs,
                        MemoryPlanMode::Reuse);
    ASSERT_LT(rew_reuse.peak_bytes(), reuse.peak_bytes());

    AstraOptions opts;
    opts.enumerator = eopts;
    opts.hbm_bytes = (reuse.peak_bytes() + rew_reuse.peak_bytes()) / 2;

    // Without the backward structure the last rung is disabled and the
    // failure propagates as a typed, catchable error.
    EXPECT_THROW(AstraSession(m.graph(), opts), MemoryError);

    opts.grads = &m.grads;
    AstraSession session(m.graph(), opts);
    EXPECT_TRUE(session.used_recompute());
    EXPECT_GT(session.graph().size(), m.graph().size());
}

TEST(Recompute, CheckpointsAreStateTensors)
{
    const BuiltModel m = rnn(3);
    RecomputePlan plan = apply_recompute(m.graph(), m.grads);
    // The rewrite clones strictly less than the whole forward pass:
    // checkpoints (recurrent states crossing timestep scopes) stay.
    int fwd = 0;
    for (const Node& n : m.graph().nodes())
        fwd += n.pass == Pass::Forward && !op_is_source(n.kind);
    EXPECT_LT(plan.cloned_nodes, fwd);
    EXPECT_GT(plan.cloned_nodes, fwd / 3);
}

}  // namespace
}  // namespace astra
