/**
 * @file
 * Scheduler tests: unit building (chunked fusion, elementwise chains,
 * coverage exactly-once, topological validity), super-epoch/epoch
 * partitioning, equivalence-class stream options, and full streamed
 * plans that remain value-preserving.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/scheduler.h"
#include "models/data.h"
#include "models/models.h"
#include "tests/util.h"

namespace astra {
namespace {

using testutil::Runner;

/** Small LSTM-ish workload with real fusion opportunities. */
BuiltModel
small_model()
{
    return build_model(ModelKind::SubLstm,
                       {.batch = 8, .seq_len = 4, .hidden = 32,
                        .embed_dim = 32, .vocab = 50});
}

ScheduleConfig
default_config(const SearchSpace& space, int chunk_option = 0)
{
    ScheduleConfig cfg;
    cfg.group_chunk.assign(space.groups.size(), 1);
    cfg.group_lib.assign(space.groups.size(), GemmLib::Cublas);
    for (const FusionGroup& g : space.groups) {
        const size_t pick = std::min<size_t>(
            static_cast<size_t>(chunk_option),
            g.chunk_options.size() - 1);
        cfg.group_chunk[static_cast<size_t>(g.id)] =
            g.chunk_options[pick];
    }
    return cfg;
}

void
check_cover_and_order(const std::vector<PlanStep>& units, const Graph& g)
{
    std::vector<int> covered(static_cast<size_t>(g.size()), -1);
    for (size_t i = 0; i < units.size(); ++i)
        for (NodeId id : units[i].nodes) {
            ASSERT_EQ(covered[static_cast<size_t>(id)], -1)
                << "node %" << id << " covered twice";
            covered[static_cast<size_t>(id)] = static_cast<int>(i);
        }
    for (const Node& n : g.nodes()) {
        if (op_is_source(n.kind))
            continue;
        ASSERT_GE(covered[static_cast<size_t>(n.id)], 0)
            << "node %" << n.id << " (" << op_name(n.kind)
            << ") uncovered";
    }
    // Each step's external inputs must be produced by earlier steps.
    for (size_t i = 0; i < units.size(); ++i)
        for (NodeId id : units[i].nodes)
            for (NodeId in : g.node(id).inputs) {
                const int p = covered[static_cast<size_t>(in)];
                if (p >= 0 && static_cast<size_t>(p) != i) {
                    ASSERT_LT(p, static_cast<int>(i));
                }
            }
}

TEST(Scheduler, UnfusedUnitsCoverEachNodeOnce)
{
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    const Scheduler sched(m.graph(), space);
    ScheduleConfig cfg = default_config(space);
    cfg.elementwise_fusion = false;
    const auto units = sched.build_units(cfg);
    check_cover_and_order(units, m.graph());
    for (const PlanStep& u : units)
        EXPECT_EQ(u.kind, StepKind::Single);
}

TEST(Scheduler, MaxChunkUnitsCoverEachNodeOnce)
{
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    const Scheduler sched(m.graph(), space);
    for (size_t chunk_opt = 0; chunk_opt < 4; ++chunk_opt) {
        const auto units = sched.build_units(
            default_config(space, static_cast<int>(chunk_opt)));
        check_cover_and_order(units, m.graph());
    }
}

TEST(Scheduler, FusionReducesUnitCount)
{
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    const Scheduler sched(m.graph(), space);
    ScheduleConfig unfused = default_config(space, 0);
    unfused.elementwise_fusion = false;
    ScheduleConfig fused = default_config(space, 3);
    const size_t n_unfused = sched.build_units(unfused).size();
    const size_t n_fused = sched.build_units(fused).size();
    EXPECT_LT(n_fused, n_unfused * 0.6);
}

TEST(Scheduler, PlanCacheHitsOnEqualConfigs)
{
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    const Scheduler sched(m.graph(), space);
    const int64_t hits0 = sched.plan_cache_hits();
    const int64_t misses0 = sched.plan_cache_misses();

    const ScheduleConfig cfg = default_config(space, 1);
    const auto first = sched.build_cached(cfg);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(sched.plan_cache_misses() - misses0, 1);
    EXPECT_EQ(sched.plan_cache_hits() - hits0, 0);

    // An equal (even if separately constructed) config reuses the
    // lowered plan object itself.
    const auto again = sched.build_cached(default_config(space, 1));
    EXPECT_EQ(again.get(), first.get());
    EXPECT_EQ(sched.plan_cache_hits() - hits0, 1);
    EXPECT_EQ(sched.plan_cache_misses() - misses0, 1);

    // The cached plan is the same lowering build() produces.
    const ExecutionPlan direct = sched.build(cfg);
    ASSERT_EQ(first->steps.size(), direct.steps.size());
    for (size_t i = 0; i < direct.steps.size(); ++i)
        EXPECT_EQ(first->steps[i].nodes, direct.steps[i].nodes);
}

TEST(Scheduler, PlanCacheDistinguishesConfigs)
{
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    const Scheduler sched(m.graph(), space);
    const int64_t misses0 = sched.plan_cache_misses();

    // Every field of the signature must keep distinct configurations
    // apart: chunking, library, elementwise fusion and streaming each
    // produce a different plan object.
    const auto base = sched.build_cached(default_config(space, 0));
    ScheduleConfig chunked = default_config(space, 3);
    const auto with_chunks = sched.build_cached(chunked);
    ScheduleConfig libbed = default_config(space, 0);
    libbed.group_lib.assign(space.groups.size(), GemmLib::Oai1);
    const auto with_lib = sched.build_cached(libbed);
    ScheduleConfig unfused = default_config(space, 0);
    unfused.elementwise_fusion = false;
    const auto without_ew = sched.build_cached(unfused);
    ScheduleConfig streamed = default_config(space, 0);
    streamed.use_streams = true;
    streamed.num_streams = 2;
    const auto with_streams = sched.build_cached(streamed);

    const std::set<const ExecutionPlan*> distinct{
        base.get(), with_chunks.get(), with_lib.get(), without_ew.get(),
        with_streams.get()};
    EXPECT_EQ(distinct.size(), 5u);
    EXPECT_EQ(sched.plan_cache_misses() - misses0, 5);
}

TEST(Scheduler, DisabledGroupsForcedUnfused)
{
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    const Scheduler sched(m.graph(), space);
    // Find a strategy under which some group is disabled.
    int sid = -1, gid = -1;
    for (const AllocStrategy& s : space.strategies)
        for (const FusionGroup& g : space.groups)
            if (!s.group_enabled[static_cast<size_t>(g.id)] &&
                g.chunk_options.back() > 1) {
                sid = s.id;
                gid = g.id;
            }
    if (sid < 0)
        GTEST_SKIP() << "no disabled group in this space";
    ScheduleConfig cfg = default_config(space, 3);
    cfg.strategy = sid;
    const auto units = sched.build_units(cfg);
    // The disabled group itself must not fuse: no fused step may be a
    // contiguous chunk of its member list. (Members may still appear
    // inside *other* enabled groups' fused steps — 2-D fusion sets
    // share GEMMs across groups.)
    const FusionGroup& g = space.groups[static_cast<size_t>(gid)];
    for (const PlanStep& u : units) {
        if (u.kind != StepKind::FusedGemm && u.kind != StepKind::LadderGemm)
            continue;
        for (size_t lo = 0; lo + 1 < g.mms.size(); ++lo) {
            if (u.nodes.size() > g.mms.size() - lo)
                continue;
            bool matches = true;
            for (size_t j = 0; j < u.nodes.size() && matches; ++j)
                matches = g.mms[lo + j] == u.nodes[j];
            EXPECT_FALSE(matches && u.nodes.size() >= 2)
                << "disabled group g" << gid << " fused anyway";
        }
    }
}

TEST(Scheduler, ElementwiseChainsFormed)
{
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    const Scheduler sched(m.graph(), space);
    const auto units = sched.build_units(default_config(space));
    int chains = 0;
    for (const PlanStep& u : units)
        if (u.kind == StepKind::FusedElementwise) {
            ++chains;
            EXPECT_GE(u.nodes.size(), 2u);
            EXPECT_LE(u.nodes.size(), 10u);
        }
    EXPECT_GT(chains, 0);
}

TEST(Scheduler, StreamSpaceStructure)
{
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    SchedulerOptions opts;
    opts.super_epoch_ns = 150000.0;  // force several super-epochs
    const Scheduler sched(m.graph(), space, opts);
    const auto units = sched.build_units(default_config(space, 2));
    const StreamSpace ss = sched.stream_space(units);
    EXPECT_GT(ss.num_super_epochs, 1);
    std::set<size_t> seen;
    for (const EpochInfo& e : ss.epochs) {
        EXPECT_FALSE(e.options.empty());
        // Every option assigns a stream in {0,1} to every unit.
        for (const auto& opt : e.options) {
            ASSERT_EQ(opt.size(), e.units.size());
            for (int s : opt)
                EXPECT_TRUE(s == 0 || s == 1);
        }
        // Default option (index 0) is the near-balanced split.
        for (size_t u : e.units) {
            EXPECT_FALSE(seen.count(u));
            seen.insert(u);
        }
        EXPECT_LE(e.options.size(), 24u);
    }
    EXPECT_EQ(seen.size(), units.size());
}

TEST(Scheduler, EpochUnitsAreMutuallyIndependent)
{
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    const Scheduler sched(m.graph(), space);
    const auto units = sched.build_units(default_config(space, 2));
    const StreamSpace ss = sched.stream_space(units);
    // Producer map.
    std::vector<int> producer(static_cast<size_t>(m.graph().size()), -1);
    for (size_t i = 0; i < units.size(); ++i)
        for (NodeId id : units[i].nodes)
            producer[static_cast<size_t>(id)] = static_cast<int>(i);
    for (const EpochInfo& e : ss.epochs) {
        std::set<size_t> in_epoch(e.units.begin(), e.units.end());
        for (size_t u : e.units)
            for (NodeId id : units[u].nodes)
                for (NodeId in : m.graph().node(id).inputs) {
                    const int p = producer[static_cast<size_t>(in)];
                    if (p >= 0 && static_cast<size_t>(p) != u) {
                        EXPECT_FALSE(in_epoch.count(
                            static_cast<size_t>(p)))
                            << "dependent units share an epoch";
                    }
                }
    }
}

TEST(Scheduler, StreamedPlanHasBarriersAndTwoStreams)
{
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    SchedulerOptions opts;
    opts.super_epoch_ns = 150000.0;
    const Scheduler sched(m.graph(), space, opts);
    ScheduleConfig cfg = default_config(space, 2);
    cfg.use_streams = true;
    const ExecutionPlan plan = sched.build(cfg);
    EXPECT_EQ(plan.num_streams, 2);
    int barriers = 0;
    std::set<int> streams_used;
    for (const PlanStep& s : plan.steps) {
        if (s.kind == StepKind::Barrier)
            ++barriers;
        else
            streams_used.insert(s.stream);
    }
    EXPECT_GT(barriers, 0);
    EXPECT_EQ(streams_used.size(), 2u);
}

/**
 * The central invariant: EVERY configuration the scheduler can produce
 * computes exactly the same values as the native dispatch.
 */
class SchedulerValuePreservation
    : public ::testing::TestWithParam<std::tuple<int, bool, int>>
{};

TEST_P(SchedulerValuePreservation, MatchesNative)
{
    const auto [chunk_opt, streams, strategy] = GetParam();
    const BuiltModel m = small_model();
    const SearchSpace space = enumerate_search_space(m.graph());
    if (strategy >= static_cast<int>(space.strategies.size()))
        GTEST_SKIP() << "fewer strategies in this space";
    SchedulerOptions opts;
    opts.super_epoch_ns = 150000.0;
    const Scheduler sched(m.graph(), space, opts);

    // Reference: native single-stream execution.
    Runner native(m.graph());
    Rng rng(1234);
    bind_all(m.graph(), native.tmap(), rng);
    native.run_native();

    // Candidate: scheduled under the parameterized configuration, on
    // the strategy's own memory layout.
    ScheduleConfig cfg = default_config(space, chunk_opt);
    cfg.strategy = strategy;
    cfg.use_streams = streams;
    // Vary kernel libraries too: they must not change values.
    for (size_t g = 0; g < cfg.group_lib.size(); ++g)
        cfg.group_lib[g] = static_cast<GemmLib>(g % kNumGemmLibs);
    Runner cand(m.graph(),
                space.strategies[static_cast<size_t>(strategy)].runs);
    Rng rng2(1234);
    bind_all(m.graph(), cand.tmap(), rng2);
    cand.run(sched.build(cfg));

    for (NodeId out : m.graph().outputs()) {
        EXPECT_EQ(testutil::max_abs_diff(native.values(out),
                                         cand.values(out)), 0.0)
            << "output %" << out << " diverged";
    }
    EXPECT_EQ(native.scalar(m.loss), cand.scalar(m.loss));
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, SchedulerValuePreservation,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Bool(),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace astra
