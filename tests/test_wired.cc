/**
 * @file
 * Compiled-dispatch tests: WiredProgram compilation structure, static
 * arena planning, replay-vs-generic bit-identity across the model zoo
 * (fused, streamed, profiled and recompute variants), value
 * preservation with executing kernels, the scheduler's wired-binary
 * cache, and — critically — *non-vacuous* adversarial checks that the
 * verifier rejects each class of illegal lowering it claims to catch
 * (cross-stream reuse without a control edge, stale event slots,
 * use-before-def, arena overlap while live).
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "autodiff/recompute.h"
#include "core/astra.h"
#include "models/data.h"
#include "models/models.h"
#include "runtime/memory_static.h"
#include "runtime/wired.h"
#include "tests/util.h"

namespace astra {
namespace {

/**
 * Identity tests pin autoboost and fault injection: the generic and
 * compiled paths draw independent process-wide salts, so bit-identity
 * is a base-clock, fault-free property (the CI fault/autoboost matrix
 * re-runs everything else under jitter).
 */
GpuConfig
pinned_gpu()
{
    GpuConfig g;
    g.execute_kernels = false;
    g.autoboost = false;
    g.faults = FaultPlan();
    return g;
}

void
expect_bit_identical(const DispatchResult& generic,
                     const DispatchResult& wired)
{
    EXPECT_EQ(generic.total_ns, wired.total_ns);
    EXPECT_EQ(generic.clock_multiplier, wired.clock_multiplier);
    EXPECT_EQ(generic.stats.kernels_launched,
              wired.stats.kernels_launched);
    EXPECT_EQ(generic.stats.events_recorded, wired.stats.events_recorded);
    EXPECT_EQ(generic.stats.busy_sm_ns, wired.stats.busy_sm_ns);
    ASSERT_EQ(generic.profile_ns.size(), wired.profile_ns.size());
    for (const auto& [key, v] : generic.profile_ns) {
        const auto it = wired.profile_ns.find(key);
        ASSERT_NE(it, wired.profile_ns.end()) << "missing key " << key;
        EXPECT_EQ(v, it->second) << "profile key " << key;
    }
}

// ---- compile_plan structure ----------------------------------------------

TEST(CompilePlan, CrossStreamDependencyEmitsRecordWaitPair)
{
    GraphBuilder b;
    const NodeId x = b.input({4, 4});
    const NodeId a = b.sigmoid(x);
    const NodeId c = b.tanh(a);
    ExecutionPlan plan;
    plan.num_streams = 2;
    PlanStep s0;
    s0.nodes = {a};
    s0.stream = 0;
    PlanStep s1;
    s1.nodes = {c};
    s1.stream = 1;
    plan.steps = {s0, s1};

    const WiredProgram prog =
        compile_plan(plan, b.graph(), /*profiling=*/false);
    ASSERT_EQ(prog.step_begin.size(), 3u);
    EXPECT_EQ(prog.num_streams, 2);
    EXPECT_EQ(prog.num_events, 1);
    // Step 0: one launch, then the done-event record.
    ASSERT_EQ(prog.step_begin[1] - prog.step_begin[0], 2);
    EXPECT_EQ(prog.cmds[0].op, WiredOp::Launch);
    EXPECT_EQ(prog.cmds[0].stream, 0);
    EXPECT_EQ(prog.cmds[1].op, WiredOp::Record);
    EXPECT_EQ(prog.cmds[1].stream, 0);
    // Step 1: wait on the producer's slot, then launch on stream 1.
    ASSERT_EQ(prog.step_begin[2] - prog.step_begin[1], 2);
    EXPECT_EQ(prog.cmds[2].op, WiredOp::Wait);
    EXPECT_EQ(prog.cmds[2].stream, 1);
    EXPECT_EQ(prog.cmds[2].arg, prog.cmds[1].arg);
    EXPECT_EQ(prog.cmds[3].op, WiredOp::Launch);
    EXPECT_EQ(prog.cmds[3].stream, 1);
}

TEST(CompilePlan, BarrierRendezvousesEveryStreamPair)
{
    GraphBuilder b;
    const NodeId x = b.input({4, 4});
    const NodeId a = b.sigmoid(x);
    const NodeId c = b.tanh(x);
    ExecutionPlan plan;
    plan.num_streams = 2;
    PlanStep s0;
    s0.nodes = {a};
    s0.stream = 0;
    PlanStep bar;
    bar.kind = StepKind::Barrier;
    PlanStep s1;
    s1.nodes = {c};
    s1.stream = 1;
    plan.steps = {s0, bar, s1};

    const WiredProgram prog =
        compile_plan(plan, b.graph(), /*profiling=*/false);
    ASSERT_EQ(prog.is_barrier.size(), 3u);
    EXPECT_EQ(prog.is_barrier[1], 1);
    // Per stream one rendezvous record, then all-pairs waits (2 for
    // 2 streams).
    EXPECT_EQ(prog.barrier_slots.size(), 2u);
    int records = 0, waits = 0;
    for (int32_t i = prog.step_begin[1]; i < prog.step_begin[2]; ++i) {
        const WiredCmd& cmd = prog.cmds[static_cast<size_t>(i)];
        records += cmd.op == WiredOp::Record;
        waits += cmd.op == WiredOp::Wait;
    }
    EXPECT_EQ(records, 2);
    EXPECT_EQ(waits, 2);
}

// ---- static arena planner ------------------------------------------------

TEST(StaticArena, DisjointLifetimesShareBytes)
{
    StaticBuffer a;
    a.bytes = 1000;
    a.def_step = 0;
    a.last_use_step = 1;
    a.use_steps = {1};
    StaticBuffer b;
    b.bytes = 1000;
    b.def_step = 2;
    b.last_use_step = 3;
    b.use_steps = {3};
    // Single-stream program order: everything is ordered.
    const auto ordered = [](int from, int to) { return from < to; };
    const StaticArenaResult r = plan_static_arena({a, b}, ordered);
    EXPECT_EQ(r.offsets[0], r.offsets[1]);
    EXPECT_EQ(r.high_water, 1024);  // one aligned slot, not two
    EXPECT_TRUE(r.control_edges.empty());
}

TEST(StaticArena, UnprovenReuseEmitsControlEdge)
{
    StaticBuffer a;
    a.bytes = 512;
    a.def_step = 0;
    a.last_use_step = 1;
    a.use_steps = {1};
    StaticBuffer b;
    b.bytes = 512;
    b.def_step = 2;
    b.last_use_step = 3;
    b.use_steps = {3};
    // Oracle that can prove nothing: the reuse still happens (that is
    // what keeps the packing tight) but must be fenced explicitly.
    const auto unordered = [](int, int) { return false; };
    const StaticArenaResult r = plan_static_arena({a, b}, unordered);
    EXPECT_EQ(r.offsets[0], r.offsets[1]);
    ASSERT_FALSE(r.control_edges.empty());
    bool guards_last_use = false;
    for (const ControlEdge& e : r.control_edges) {
        EXPECT_EQ(e.to_step, 2);
        guards_last_use |= e.from_step == 1;
    }
    EXPECT_TRUE(guards_last_use)
        << "previous occupant's last access must gate the reuse";
}

TEST(StaticArena, LiveBuffersNeverShareBytes)
{
    // Entry-live parameter (never recycled) plus two overlapping-
    // lifetime activations: three distinct extents.
    StaticBuffer p;
    p.bytes = 256;
    p.def_step = -1;
    p.last_use_step = 4;  // one-past-last step: survives the batch
    StaticBuffer a;
    a.bytes = 256;
    a.def_step = 0;
    a.last_use_step = 2;
    a.use_steps = {1, 2};
    StaticBuffer b;
    b.bytes = 256;
    b.def_step = 1;
    b.last_use_step = 3;
    b.use_steps = {3};
    const auto ordered = [](int from, int to) { return from < to; };
    const StaticArenaResult r = plan_static_arena({p, a, b}, ordered);
    const std::set<int64_t> offsets(r.offsets.begin(), r.offsets.end());
    EXPECT_EQ(offsets.size(), 3u);
    EXPECT_EQ(r.high_water, 3 * 256);
    EXPECT_TRUE(r.control_edges.empty());
}

// ---- adversarial verifier checks (must be non-vacuous) -------------------

/**
 * Hand-built two-step binary: steps 0 and 1 launch on different
 * streams with no synchronization; both define 1 KiB at arena offset
 * 0. Without a control edge this is exactly the cross-stream reuse the
 * verifier exists to reject.
 */
WiredBinary
cross_stream_reuse_binary()
{
    WiredBinary bin;
    WiredProgram& p = bin.program;
    p.num_streams = 2;
    p.cmds = {{WiredOp::Launch, 0, 0}, {WiredOp::Launch, 1, 1}};
    p.step_begin = {0, 1, 2};
    p.is_barrier = {0, 0};
    bin.kernels.resize(2);
    bin.kernels[0].name = "k0";
    bin.kernels[1].name = "k1";
    ArenaInterval i0;
    i0.node = 0;
    i0.offset = 0;
    i0.bytes = 1024;
    i0.def_step = 0;
    i0.last_use_step = 0;
    ArenaInterval i1 = i0;
    i1.node = 1;
    i1.def_step = 1;
    i1.last_use_step = 1;
    bin.intervals = {i0, i1};
    bin.defs = {0, 1};
    bin.access = {{0, 0, 0, 1}, {0, 0, 1, 2}};
    bin.arena_bytes = 1024;
    return bin;
}

TEST(VerifyWired, CatchesCrossStreamReuseWithoutControlEdge)
{
    WiredBinary bin = cross_stream_reuse_binary();
    const WiredVerdict bad = verify_wired(bin);
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.why.find("overlap"), std::string::npos) << bad.why;

    // The fix lowering would apply — an explicit control edge — must
    // flip the verdict, proving the check keys on the ordering and not
    // on some structural accident.
    insert_control_edges(bin.program, {{0, 1}});
    const WiredVerdict good = verify_wired(bin);
    EXPECT_TRUE(good.ok) << good.why;
}

TEST(VerifyWired, CatchesStaleEventSlot)
{
    WiredBinary bin;
    WiredProgram& p = bin.program;
    p.num_streams = 2;
    p.num_events = 1;
    // Stream 1 waits on slot 0, which nothing ever records: deadlock.
    p.cmds = {{WiredOp::Launch, 0, 0},
              {WiredOp::Wait, 1, 0},
              {WiredOp::Launch, 1, 1}};
    p.step_begin = {0, 1, 3};
    p.is_barrier = {0, 0};
    bin.kernels.resize(2);
    const WiredVerdict v = verify_wired(bin);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.why.find("stale event slot"), std::string::npos) << v.why;
}

TEST(VerifyWired, CatchesUseBeforeDef)
{
    WiredBinary bin = cross_stream_reuse_binary();
    // Step 1 now *reads* interval 0 (defined by step 0 on the other
    // stream) instead of overlapping it.
    bin.intervals[1].offset = 4096;
    bin.uses = {0};
    bin.access = {{0, 0, 0, 1}, {0, 1, 1, 2}};
    const WiredVerdict bad = verify_wired(bin);
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.why.find("use-before-def"), std::string::npos)
        << bad.why;

    insert_control_edges(bin.program, {{0, 1}});
    const WiredVerdict good = verify_wired(bin);
    EXPECT_TRUE(good.ok) << good.why;
}

TEST(VerifyWired, CatchesArenaOverlapWhileLive)
{
    // Single stream, fully ordered — yet interval 0 is still live
    // (step 2 reads it) when step 1 defines overlapping bytes. Program
    // order alone cannot make this legal.
    WiredBinary bin;
    WiredProgram& p = bin.program;
    p.num_streams = 1;
    p.cmds = {{WiredOp::Launch, 0, 0},
              {WiredOp::Launch, 0, 1},
              {WiredOp::Launch, 0, 2}};
    p.step_begin = {0, 1, 2, 3};
    p.is_barrier = {0, 0, 0};
    bin.kernels.resize(3);
    ArenaInterval i0;
    i0.node = 0;
    i0.offset = 0;
    i0.bytes = 512;
    i0.def_step = 0;
    i0.last_use_step = 2;
    ArenaInterval i1 = i0;
    i1.node = 1;
    i1.def_step = 1;
    i1.last_use_step = 1;
    bin.intervals = {i0, i1};
    bin.defs = {0, 1};
    bin.uses = {0};
    bin.access = {{0, 0, 0, 1}, {0, 0, 1, 2}, {0, 1, 2, 2}};
    bin.arena_bytes = 512;
    const WiredVerdict v = verify_wired(bin);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.why.find("overlap-while-live"), std::string::npos)
        << v.why;
}

// ---- replay bit-identity across the zoo ----------------------------------

ModelConfig
tiny_config()
{
    ModelConfig cfg;
    cfg.batch = 8;
    cfg.seq_len = 4;
    cfg.hidden = 32;
    cfg.embed_dim = 32;
    cfg.vocab = 50;
    return cfg;
}

/** Dispatch both paths for one config and assert bit-identity. */
void
check_identity(AstraSession& session, const ScheduleConfig& cfg)
{
    const auto plan = session.scheduler().build_cached(cfg);
    const TensorMap& tmap = session.tensor_map(cfg.strategy);
    const DispatchResult generic = dispatch_plan(
        *plan, session.graph(), tmap, session.options().gpu);

    const WiredBinary bin = lower_plan(*plan, session.graph(), tmap,
                                       session.options().gpu);
    const WiredVerdict v = verify_wired(bin);
    ASSERT_TRUE(v.ok) << v.why;
    // Real layouts are dependency-ordered by construction (Bump, or
    // the ancestor-guarded Reuse planner): no control edge needed.
    EXPECT_EQ(bin.control_edges, 0);
    const DispatchResult wired =
        replay_wired(bin, session.options().gpu);
    expect_bit_identical(generic, wired);
}

TEST(ReplayWired, BitIdenticalAcrossZooFusedStreamedProfiled)
{
    const ModelKind kinds[] = {ModelKind::Scrnn, ModelKind::MiLstm,
                               ModelKind::SubLstm,
                               ModelKind::StackedLstm, ModelKind::Gnmt};
    for (ModelKind kind : kinds) {
        SCOPED_TRACE(model_name(kind));
        const BuiltModel m = build_model(kind, tiny_config());
        AstraOptions opts;
        opts.gpu = pinned_gpu();
        AstraSession session(m.graph(), opts);
        const SearchSpace& space = session.space();

        // Plain: single stream, no fusion.
        ScheduleConfig plain;
        plain.group_chunk.assign(space.groups.size(), 1);
        plain.group_lib.assign(space.groups.size(), GemmLib::Cublas);
        check_identity(session, plain);

        // Fused + profiled: max chunk per group, every group keyed.
        ScheduleConfig fused = plain;
        for (const FusionGroup& g : space.groups) {
            fused.group_chunk[static_cast<size_t>(g.id)] =
                g.chunk_options.back();
            fused.group_keys[g.id] = "w|" + g.key;
        }
        check_identity(session, fused);

        // Streamed + epoch metrics: two streams, every epoch keyed so
        // the barrier-relative readout path is exercised.
        ScheduleConfig streamed = fused;
        streamed.use_streams = true;
        streamed.num_streams = 2;
        const StreamSpace ss = session.scheduler().stream_space(
            session.scheduler().build_units(streamed), 2);
        for (const EpochInfo& e : ss.epochs)
            streamed.epoch_keys[{e.super_epoch, e.level}] =
                "ep|" + std::to_string(e.super_epoch) + "." +
                std::to_string(e.level);
        check_identity(session, streamed);
    }
}

TEST(ReplayWired, BitIdenticalOnRecomputeRewrite)
{
    const BuiltModel m = build_model(ModelKind::SubLstm, tiny_config());
    const RecomputePlan rp = apply_recompute(m.graph(), m.grads);
    AstraOptions opts;
    opts.gpu = pinned_gpu();
    AstraSession session(rp.graph(), opts);
    ScheduleConfig cfg;
    cfg.group_chunk.assign(session.space().groups.size(), 1);
    cfg.group_lib.assign(session.space().groups.size(),
                         GemmLib::Cublas);
    check_identity(session, cfg);
}

TEST(ReplayWired, ValuesMatchGenericDispatchExactly)
{
    // Two independent sessions over the same graph, identically
    // seeded; one dispatches generically, one replays the wired
    // binary with kernels executing. Outputs must agree bit-exactly.
    const BuiltModel m = build_model(ModelKind::Scrnn, tiny_config());
    AstraOptions gopts;
    gopts.gpu = pinned_gpu();
    gopts.gpu.execute_kernels = true;
    AstraSession generic(m.graph(), gopts);
    AstraOptions copts = gopts;
    copts.compiled_dispatch = true;
    AstraSession compiled(m.graph(), copts);

    Rng r1(33), r2(33);
    bind_all(m.graph(), generic.tensor_map(0), r1);
    bind_all(m.graph(), compiled.tensor_map(0), r2);

    ScheduleConfig cfg;
    cfg.group_chunk.assign(generic.space().groups.size(), 1);
    cfg.group_lib.assign(generic.space().groups.size(),
                         GemmLib::Cublas);
    const DispatchResult a = generic.run(cfg);
    const DispatchResult b = compiled.run(cfg);
    EXPECT_EQ(a.total_ns, b.total_ns);

    ASSERT_FALSE(m.graph().outputs().empty());
    for (NodeId out : m.graph().outputs()) {
        const int64_t n = m.graph().node(out).desc.shape.numel();
        const float* pa = generic.tensor_map(0).f32(out);
        const float* pb = compiled.tensor_map(0).f32(out);
        for (int64_t i = 0; i < n; ++i)
            ASSERT_EQ(pa[i], pb[i]) << "output %" << out << "[" << i
                                    << "]";
    }
}

// ---- session wiring ------------------------------------------------------

TEST(CompiledDispatch, SessionCachesLoweredBinary)
{
    const BuiltModel m = build_model(ModelKind::Scrnn, tiny_config());
    AstraOptions opts;
    opts.gpu = pinned_gpu();
    opts.compiled_dispatch = true;
    AstraSession session(m.graph(), opts);
    ScheduleConfig cfg;
    cfg.group_chunk.assign(session.space().groups.size(), 1);
    cfg.group_lib.assign(session.space().groups.size(),
                         GemmLib::Cublas);

    const DispatchResult first = session.run(cfg);
    const DispatchResult second = session.run(cfg);
    EXPECT_EQ(first.total_ns, second.total_ns);
    EXPECT_EQ(session.scheduler().wired_cache_misses(), 1);
    EXPECT_EQ(session.scheduler().wired_cache_hits(), 1);

    // A different configuration lowers its own binary.
    ScheduleConfig other = cfg;
    other.elementwise_fusion = false;
    session.run(other);
    EXPECT_EQ(session.scheduler().wired_cache_misses(), 2);
}

TEST(CompiledDispatch, MatchesGenericSessionPath)
{
    const BuiltModel m = build_model(ModelKind::MiLstm, tiny_config());
    AstraOptions opts;
    opts.gpu = pinned_gpu();
    AstraSession generic(m.graph(), opts);
    AstraOptions copts = opts;
    copts.compiled_dispatch = true;
    AstraSession compiled(m.graph(), copts);

    ScheduleConfig cfg;
    cfg.group_chunk.assign(generic.space().groups.size(), 1);
    cfg.group_lib.assign(generic.space().groups.size(),
                         GemmLib::Cublas);
    for (const FusionGroup& g : generic.space().groups)
        cfg.group_keys[g.id] = "w|" + g.key;
    expect_bit_identical(generic.run(cfg), compiled.run(cfg));
}

}  // namespace
}  // namespace astra
