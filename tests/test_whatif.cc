/**
 * @file
 * What-if engine tests (§5.13): host replay must be bit-exact against
 * a real dispatch of the same configuration (that equivalence is what
 * lets the wirer rank candidates without spending mini-batches), a
 * per-key cost substitution on a serial trace must shift the replayed
 * total by exactly the substituted delta, trace serialization must
 * round-trip and reject malformed input with line-precise diagnostics,
 * and the armed wirer must converge to the exhaustive wirer's
 * configuration — deterministically across thread counts — while
 * reporting its decision-tier counters through JSON and CSV.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/adaptive.h"
#include "core/astra.h"
#include "core/whatif.h"
#include "models/models.h"
#include "runtime/dispatcher.h"
#include "sim/memory.h"

namespace astra {
namespace {

/** Replay exactness is a base-clock, fault-free property. */
GpuConfig
pinned_gpu()
{
    GpuConfig g;
    g.execute_kernels = false;
    g.autoboost = false;
    g.faults = FaultPlan();
    return g;
}

BuiltModel
tiny_model()
{
    return build_model(ModelKind::Scrnn,
                       ModelConfig{.batch = 8, .seq_len = 4,
                                   .hidden = 32, .embed_dim = 32,
                                   .vocab = 50});
}

/** Everything one engine evaluation needs, wired like a StrategyRun. */
struct EngineRig
{
    BuiltModel model = tiny_model();
    SearchSpace space = enumerate_search_space(model.graph());
    Scheduler sched;
    SimMemory mem;
    TensorMap tmap;
    GpuConfig gpu = pinned_gpu();
    WhatIfEngine engine;

    EngineRig()
        : sched(model.graph(), space,
                [] {
                    SchedulerOptions o;
                    o.super_epoch_ns = 400000.0;
                    return o;
                }()),
          mem(graph_tensor_bytes(model.graph()) + (1 << 20), false),
          tmap(model.graph(), mem, space.strategies[0].runs),
          engine(model.graph(), tmap, sched, gpu)
    {
    }

    ScheduleConfig
    config(bool with_streams) const
    {
        ScheduleConfig cfg;
        cfg.strategy = 0;
        cfg.group_chunk.assign(space.groups.size(), 1);
        cfg.group_lib.assign(space.groups.size(), GemmLib::Cublas);
        for (NodeId id : space.single_mms)
            cfg.single_lib[id] = GemmLib::Cublas;
        // Keyed steps exercise the profile-metric side of the replay.
        if (!space.groups.empty())
            cfg.group_keys[space.groups[0].id] = "t|g0";
        if (!space.single_mms.empty())
            cfg.single_keys[space.single_mms[0]] = "t|s0";
        cfg.use_streams = with_streams;
        return cfg;
    }
};

void
expect_replay_matches_dispatch(const EngineRig& rig,
                               const ScheduleConfig& cfg)
{
    const ReplayResult r = rig.engine.evaluate(cfg);
    const DispatchResult d =
        dispatch_plan(*rig.sched.build_cached(cfg), rig.model.graph(),
                      rig.tmap, rig.gpu);
    EXPECT_EQ(r.total_ns, d.total_ns);
    ASSERT_EQ(r.profile_ns.size(), d.profile_ns.size());
    for (const auto& [key, v] : d.profile_ns) {
        const auto it = r.profile_ns.find(key);
        ASSERT_NE(it, r.profile_ns.end()) << "missing key " << key;
        EXPECT_EQ(v, it->second) << "profile key " << key;
    }
}

// ---- replay exactness ----------------------------------------------------

TEST(WhatIf, SerialReplayBitExactAgainstDispatch)
{
    EngineRig rig;
    expect_replay_matches_dispatch(rig, rig.config(false));
}

TEST(WhatIf, StreamedReplayBitExactAgainstDispatch)
{
    EngineRig rig;
    expect_replay_matches_dispatch(rig, rig.config(true));
}

TEST(WhatIf, CaptureAgreesWithEvaluateAndKeepsSpans)
{
    EngineRig rig;
    const ScheduleConfig cfg = rig.config(false);
    const ReplayResult r = rig.engine.evaluate(cfg);
    const RecordedTrace t = rig.engine.capture(cfg);
    EXPECT_EQ(t.total_ns, r.total_ns);
    EXPECT_EQ(t.profile_ns, r.profile_ns);
    EXPECT_FALSE(t.spans.empty());
    EXPECT_EQ(t.kernels.size(), t.step_keys.size());
}

// ---- per-key cost substitution -------------------------------------------

/**
 * Two pure-serial keyed kernels on one stream: substituting one key
 * must shift the replayed total by exactly the substituted delta
 * (blocks = 0 holds no SMs; launch overheads are identical on both
 * sides and cancel). Durations are chosen large enough that the
 * timeline is device-bound — a host-enqueue-bound trace absorbs kernel
 * deltas into enqueue latency and the property would be vacuous.
 */
TEST(WhatIf, SerialOverrideShiftsTotalByExactDelta)
{
    GraphBuilder b;
    const NodeId x = b.input({4, 4});
    const NodeId a = b.sigmoid(x);
    const NodeId c = b.tanh(a);

    ExecutionPlan plan;
    plan.num_streams = 1;
    PlanStep s0;
    s0.nodes = {a};
    s0.stream = 0;
    s0.profile = true;
    s0.profile_key = "k.a";
    PlanStep s1;
    s1.nodes = {c};
    s1.stream = 0;
    s1.profile = true;
    s1.profile_key = "k.b";
    plan.steps = {s0, s1};

    RecordedTrace trace;
    trace.gpu = pinned_gpu();
    trace.num_streams = 1;
    trace.program = compile_plan(plan, b.graph(), /*profiling=*/true);
    trace.kernels.resize(2);
    trace.step_keys = {"k.a", "k.b"};
    for (size_t i = 0; i < 2; ++i) {
        KernelDesc& k = trace.kernels[i];
        k.name = i == 0 ? "a" : "b";
        k.key = i == 0 ? "k.a" : "k.b";
        k.blocks = 0;
        k.setup_ns = i == 0 ? 100000.0 : 200000.0;
    }

    const ReplayResult base = replay_trace(trace);
    const ReplayResult shifted =
        replay_trace(trace, {{"k.a", 350000.0}});
    EXPECT_EQ(shifted.total_ns - base.total_ns, 250000.0);
    // The untouched key's metric is unchanged bit-for-bit.
    ASSERT_TRUE(base.profile_ns.count("k.b"));
    EXPECT_EQ(shifted.profile_ns.at("k.b"), base.profile_ns.at("k.b"));
}

// ---- trace serialization -------------------------------------------------

TEST(WhatIf, TraceRoundTripsThroughText)
{
    EngineRig rig;
    const RecordedTrace t = rig.engine.capture(rig.config(false));
    const std::string text = trace_to_string(t);

    RecordedTrace back;
    std::string error;
    ASSERT_TRUE(trace_from_string(text, &back, &error)) << error;
    // Canonical form: re-serializing the parse reproduces the text.
    EXPECT_EQ(trace_to_string(back), text);
    // And the parse replays identically to the original record.
    const ReplayResult a = replay_trace(t);
    const ReplayResult b = replay_trace(back);
    EXPECT_EQ(a.total_ns, b.total_ns);
    EXPECT_EQ(a.profile_ns, b.profile_ns);
    EXPECT_EQ(back.total_ns, t.total_ns);
}

TEST(WhatIf, MalformedTracesRejectedWithLineDiagnostics)
{
    EngineRig rig;
    const RecordedTrace t = rig.engine.capture(rig.config(false));
    const std::string text = trace_to_string(t);

    const auto expect_rejected = [](const std::string& bad,
                                    const std::string& what) {
        RecordedTrace out;
        std::string error;
        EXPECT_FALSE(trace_from_string(bad, &out, &error)) << what;
        EXPECT_NE(error.find("line "), std::string::npos)
            << what << ": diagnostic '" << error
            << "' carries no line number";
    };

    expect_rejected("bogus header\n", "wrong magic");
    expect_rejected("", "empty input");
    // Truncation anywhere must be caught, not zero-filled.
    expect_rejected(text.substr(0, text.size() / 2), "truncated body");
    {
        // A hostile count cannot make the reader allocate unbounded.
        std::string bad = text;
        const size_t pos = bad.find("steps ");
        ASSERT_NE(pos, std::string::npos);
        bad.replace(pos, bad.find('\n', pos) - pos,
                    "steps 999999999999");
        expect_rejected(bad, "hostile step count");
    }
    {
        RecordedTrace out;
        std::string error;
        std::string bad = text;
        bad.replace(0, bad.find('\n'), "astra-whatif-trace v2");
        EXPECT_FALSE(trace_from_string(bad, &out, &error));
        EXPECT_NE(error.find("line 1"), std::string::npos)
            << "version mismatch should point at line 1, got: "
            << error;
    }
}

// ---- option masking (tier-2 substrate) -----------------------------------

TEST(WhatIf, MaskingNarrowsTheWalkButNeverTheAnchor)
{
    AdaptiveVariable v("g0|lib", 4, 1);
    EXPECT_EQ(v.allowed_count(), 4);
    v.disallow(3);
    EXPECT_EQ(v.allowed_count(), 3);
    EXPECT_FALSE(v.is_allowed(3));
    EXPECT_TRUE(v.is_allowed(1));
    v.disallow(3);  // idempotent
    EXPECT_EQ(v.allowed_count(), 3);

    // The masked walk visits exactly the surviving options. iterate()
    // both advances and reports whether more remain, so the walk is
    // bounded by finished(), not by iterate()'s return value.
    std::vector<int> seen = {v.current()};
    while (!v.finished()) {
        v.iterate();
        seen.push_back(v.current());
    }
    EXPECT_EQ(seen.size(), 3u);
    for (int o : seen)
        EXPECT_TRUE(v.is_allowed(o));

    // restrict_to re-anchors on the current choice.
    AdaptiveVariable w("g0|chunk", 5, 0);
    w.set(2);
    w.restrict_to({2, 4});
    EXPECT_EQ(w.allowed_count(), 2);
    std::vector<int> walk = {w.current()};
    while (!w.finished()) {
        w.iterate();
        walk.push_back(w.current());
    }
    EXPECT_EQ(walk, (std::vector<int>{2, 4}));
    EXPECT_TRUE(w.finished());
}

// ---- the armed wirer -----------------------------------------------------

TEST(WhatIf, ArmedWirerMatchesExhaustiveConfigWithFewerMinibatches)
{
    const BuiltModel model = tiny_model();
    AstraOptions opts;
    opts.gpu = pinned_gpu();
    opts.sched.super_epoch_ns = 400000.0;

    AstraSession off_session(model.graph(), opts);
    const WirerResult off = off_session.optimize();
    EXPECT_EQ(off.convergence.whatif_evals, 0);
    EXPECT_EQ(off.convergence.predictor_pruned, 0);

    opts.whatif.enabled = true;
    AstraSession on_session(model.graph(), opts);
    const WirerResult on = on_session.optimize();

    EXPECT_EQ(config_to_string(on.best_config),
              config_to_string(off.best_config));
    EXPECT_EQ(on.best_ns, off.best_ns);
    EXPECT_GT(on.convergence.whatif_evals, 0);
    EXPECT_GT(on.convergence.measured_configs, 0);
    EXPECT_LT(on.minibatches, off.minibatches);
}

TEST(WhatIf, ArmedWirerDeterministicAcrossThreadCounts)
{
    const BuiltModel model = tiny_model();
    AstraOptions opts;
    opts.gpu = pinned_gpu();
    opts.sched.super_epoch_ns = 400000.0;
    opts.whatif.enabled = true;

    AstraSession serial(model.graph(), opts);
    const WirerResult one = serial.optimize();
    opts.wirer_threads = 4;
    AstraSession fanned(model.graph(), opts);
    const WirerResult four = fanned.optimize();

    EXPECT_EQ(config_to_string(four.best_config),
              config_to_string(one.best_config));
    EXPECT_EQ(four.minibatches, one.minibatches);
    EXPECT_EQ(four.convergence.whatif_evals,
              one.convergence.whatif_evals);
    EXPECT_EQ(four.convergence.predictor_pruned,
              one.convergence.predictor_pruned);
    EXPECT_EQ(four.convergence.measured_configs,
              one.convergence.measured_configs);
}

// ---- counter reporting ---------------------------------------------------

TEST(WhatIf, CountersSurfaceInJsonAndCsv)
{
    const BuiltModel model = tiny_model();
    AstraOptions opts;
    opts.gpu = pinned_gpu();
    opts.sched.super_epoch_ns = 400000.0;
    opts.whatif.enabled = true;
    AstraSession session(model.graph(), opts);
    const WirerResult r = session.optimize();
    ASSERT_GT(r.convergence.whatif_evals, 0);

    std::ostringstream js;
    r.convergence.write_json(js);
    const std::string json = js.str();
    EXPECT_NE(json.find("\"whatif_evals\":" +
                        std::to_string(r.convergence.whatif_evals)),
              std::string::npos);
    EXPECT_NE(json.find("\"predictor_pruned\":" +
                        std::to_string(r.convergence.predictor_pruned)),
              std::string::npos);
    EXPECT_NE(json.find("\"measured_configs\":" +
                        std::to_string(r.convergence.measured_configs)),
              std::string::npos);

    std::ostringstream csv;
    r.convergence.write_csv(csv);
    const std::string text = csv.str();
    EXPECT_NE(text.find("whatif_evals,predictor_pruned,"
                        "measured_configs"),
              std::string::npos);
}

}  // namespace
}  // namespace astra
