/**
 * @file
 * Backend shoot-out on one model: native framework dispatch, the
 * XLA-like static optimizer, the cuDNN-style hand-optimized compound
 * path, and Astra's online adaptation — the paper's §6 comparison in
 * one program.
 *
 * Usage: compare_backends [model] [batch]
 *   model in {scrnn, milstm, sublstm, stacked, gnmt}
 */
#include <cstdlib>
#include <iostream>
#include <string>

#include "baselines/cudnn.h"
#include "baselines/xla.h"
#include "core/astra.h"
#include "models/models.h"
#include "runtime/dispatcher.h"
#include "support/table.h"

using namespace astra;

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "stacked";
    ModelKind kind = ModelKind::StackedLstm;
    if (name == "scrnn")
        kind = ModelKind::Scrnn;
    else if (name == "milstm")
        kind = ModelKind::MiLstm;
    else if (name == "sublstm")
        kind = ModelKind::SubLstm;
    else if (name == "gnmt")
        kind = ModelKind::Gnmt;
    else if (name != "stacked")
        fatal("unknown model '", name,
              "' (use scrnn|milstm|sublstm|stacked|gnmt)");

    ModelConfig cfg;
    cfg.batch = argc > 2 ? std::atoll(argv[2]) : 16;
    cfg.seq_len = 8;
    cfg.hidden = 512;
    cfg.embed_dim = 512;
    cfg.vocab = 2000;
    const BuiltModel model = build_model(kind, cfg);

    AstraOptions opts;
    opts.gpu.execute_kernels = false;  // timing comparison
    AstraSession session(model.graph(), opts);

    const double native = session.run_native().total_ns;

    SimMemory xla_mem(graph_tensor_bytes(model.graph()) + (1 << 20));
    TensorMap xla_map(model.graph(), xla_mem,
                      session.space().strategies[0].runs);
    const double xla =
        dispatch_plan(xla_plan(model.graph(), session.space()),
                      model.graph(), xla_map, opts.gpu).total_ns;

    double cudnn = -1.0;
    if (!model.cudnn_layers.empty()) {
        SimMemory cm(graph_tensor_bytes(model.graph()) + (1 << 20));
        TensorMap cmap(model.graph(), cm);
        cudnn = dispatch_plan(
                    cudnn_plan(model.graph(), model.cudnn_layers,
                               opts.gpu),
                    model.graph(), cmap, opts.gpu).total_ns;
    }

    const WirerResult astra = session.optimize();

    TextTable table("Backend comparison: " + model.name + ", batch " +
                    std::to_string(cfg.batch));
    table.set_header({"backend", "mini-batch ms", "speedup vs native"});
    auto row = [&](const std::string& label, double ns) {
        table.add_row({label, TextTable::fmt(ns / 1e6, 3),
                       TextTable::fmt(native / ns, 2)});
    };
    row("native framework", native);
    row("XLA-like static", xla);
    if (cudnn > 0)
        row("cuDNN compound", cudnn);
    else
        table.add_row({"cuDNN compound", "-", "not covered"});
    row("Astra (" + std::to_string(astra.minibatches) +
            " configs explored)",
        astra.best_ns);
    table.print();
    return 0;
}
