/**
 * @file
 * Work-conserving training demo: train an SC-RNN language model while
 * Astra explores the optimization state space online (paper §4.2).
 *
 * Every exploration mini-batch is a real SGD step; after the
 * exploration converges, training continues at the tuned
 * configuration. The run prints the loss trajectory to show training
 * never paused, plus the before/after mini-batch time.
 *
 * Usage: train_scrnn [steps]
 */
#include <cstdlib>
#include <iostream>

#include "core/astra.h"
#include "models/data.h"
#include "models/models.h"
#include "support/table.h"

using namespace astra;

int
main(int argc, char** argv)
{
    const int64_t extra_steps = argc > 1 ? std::atoll(argv[1]) : 40;

    ModelConfig cfg;
    cfg.batch = 8;
    cfg.seq_len = 5;
    cfg.hidden = 64;
    cfg.embed_dim = 64;
    cfg.vocab = 120;
    BuiltModel model = build_model(ModelKind::Scrnn, cfg);

    AstraOptions opts;
    opts.features = features_all();
    opts.gpu.execute_kernels = true;  // real math: this is training
    AstraSession session(model.graph(), opts);

    const double native_ms = session.run_native().total_ns / 1e6;

    // Exploration phase. The bind callback feeds one fixed batch (we
    // overfit it so the loss trend is visible) and applies SGD on the
    // previous step's gradients: normal training, different schedule
    // under the hood every mini-batch.
    Rng data_rng(7);
    std::vector<bool> bound(session.space().strategies.size(), false);
    std::vector<float> loss_log;
    const WirerResult result = session.optimize(
        [&](const TensorMap& tmap, int64_t mb) {
            for (size_t s = 0; s < bound.size(); ++s) {
                if (&session.tensor_map(static_cast<int>(s)) != &tmap)
                    continue;
                if (!bound[s]) {
                    Rng fresh(7);
                    bind_all(model.graph(), tmap, fresh);
                    bound[s] = true;
                } else {
                    apply_sgd(model.graph(), tmap,
                              model.grads.param_grads, 0.2f);
                }
            }
            if (mb % 25 == 0 && bound[0]) {
                loss_log.push_back(
                    session.tensor_map(0).f32(model.loss)[0]);
            }
        });

    // Steady state: keep training at the tuned configuration.
    const TensorMap& tmap =
        session.tensor_map(result.best_config.strategy);
    for (int64_t i = 0; i < extra_steps; ++i) {
        apply_sgd(model.graph(), tmap, model.grads.param_grads, 0.2f);
        session.run(result.best_config);
    }

    std::cout << "loss during exploration (every 25 mini-batches):";
    for (float l : loss_log)
        std::cout << " " << l;
    std::cout << "\nloss after " << extra_steps
              << " more tuned steps: " << tmap.f32(model.loss)[0]
              << "\n";

    TextTable table("Work-conserving exploration (SC-RNN)");
    table.set_header({"metric", "value"});
    table.add_row({"exploration mini-batches (all were SGD steps)",
                   std::to_string(result.minibatches)});
    table.add_row({"native mini-batch ms", TextTable::fmt(native_ms, 3)});
    table.add_row({"tuned mini-batch ms",
                   TextTable::fmt(result.best_ns / 1e6, 3)});
    table.add_row({"speedup",
                   TextTable::fmt(native_ms * 1e6 / result.best_ns, 2)});
    table.print();
    return 0;
}
