/**
 * @file
 * Command-line driver: run any model of the zoo through any backend
 * with explicit hyper-parameters; optionally persist / reuse the tuned
 * configuration and dump a Chrome trace.
 *
 * Usage:
 *   astra_cli --model sublstm --batch 16 --seq 8 --hidden 256
 *             [--features f|fk|fks|all] [--streams N]
 *             [--wirer-threads N] [--fault-spec SPEC]
 *             [--save-config FILE | --load-config FILE]
 *             [--plan-store DIR] [--compiled-dispatch] [--whatif]
 *             [--trace FILE.json] [--trace-out FILE.json]
 *             [--no-embedding]
 *
 * --plan-store points exploration at the persistent knowledge base
 * (core/plan_store.h; defaults to $ASTRA_PLAN_STORE): a previously
 * wired workload is reused instead of re-explored, and this run's
 * winner is written back for the next process.
 *
 * --compiled-dispatch runs the steady-state mini-batch through the
 * wired-binary path (runtime/wired.h): the tuned configuration is
 * lowered once into a preresolved command array and replayed,
 * bit-identical to the generic dispatcher at a fraction of the host
 * overhead.
 *
 * --whatif turns on the wirer's three-tier decision path
 * (core/whatif.h): a cost predictor nominates dominated options, exact
 * host replays confirm them, and only the survivors spend measured
 * mini-batches. The converged configuration is unchanged; a summary of
 * replays/prunes/measurements goes to stderr.
 *
 * --fault-spec injects deterministic faults (sim/faults.h grammar,
 * e.g. "seed=3;kernel:p=0.01;alloc:at=0;straggler:p=0.001,x=4") into
 * every dispatch; exploration retries, quarantines and degrades
 * instead of aborting.
 *
 * --trace dumps the tuned run's kernel spans alone; --trace-out (or
 * ASTRA_TRACE=FILE.json) captures the whole invocation through the
 * observability layer -- enumeration, exploration, dispatch and device
 * kernels on one merged Chrome-trace timeline.
 */
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/astra.h"
#include "core/config_io.h"
#include "models/models.h"
#include "obs/export.h"
#include "sim/trace.h"
#include "support/table.h"

using namespace astra;

namespace {

ModelKind
parse_model(const std::string& name)
{
    if (name == "scrnn")
        return ModelKind::Scrnn;
    if (name == "milstm")
        return ModelKind::MiLstm;
    if (name == "sublstm")
        return ModelKind::SubLstm;
    if (name == "stacked")
        return ModelKind::StackedLstm;
    if (name == "gnmt")
        return ModelKind::Gnmt;
    if (name == "rhn")
        return ModelKind::Rhn;
    if (name == "attnlstm")
        return ModelKind::AttnLstm;
    fatal("unknown model '", name,
          "' (scrnn|milstm|sublstm|stacked|gnmt|rhn|attnlstm)");
}

AstraFeatures
parse_features(const std::string& name)
{
    if (name == "f")
        return features_f();
    if (name == "fk")
        return features_fk();
    if (name == "fks")
        return features_fks();
    if (name == "all")
        return features_all();
    fatal("unknown feature preset '", name, "' (f|fk|fks|all)");
}

}  // namespace

int
main(int argc, char** argv)
{
    ModelKind kind = ModelKind::SubLstm;
    ModelConfig cfg;
    cfg.batch = 16;
    cfg.seq_len = 8;
    cfg.hidden = 256;
    cfg.embed_dim = 256;
    cfg.vocab = 1000;
    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    std::string save_path, load_path, trace_path, trace_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--model")
            kind = parse_model(next());
        else if (arg == "--batch")
            cfg.batch = std::atoll(next().c_str());
        else if (arg == "--seq")
            cfg.seq_len = std::atoll(next().c_str());
        else if (arg == "--hidden")
            cfg.hidden = cfg.embed_dim = std::atoll(next().c_str());
        else if (arg == "--vocab")
            cfg.vocab = std::atoll(next().c_str());
        else if (arg == "--features")
            opts.features = parse_features(next());
        else if (arg == "--streams")
            opts.num_streams = std::atoi(next().c_str());
        else if (arg == "--wirer-threads")
            opts.wirer_threads = std::atoi(next().c_str());
        else if (arg == "--fault-spec") {
            const std::string spec = next();
            if (!FaultPlan::parse(spec, &opts.gpu.faults))
                fatal("malformed --fault-spec '", spec,
                      "' (see sim/faults.h for the grammar)");
        }
        else if (arg == "--save-config")
            save_path = next();
        else if (arg == "--load-config")
            load_path = next();
        else if (arg == "--plan-store")
            opts.plan_store = next();
        else if (arg == "--compiled-dispatch")
            opts.compiled_dispatch = true;
        else if (arg == "--whatif")
            opts.whatif.enabled = true;
        else if (arg == "--trace")
            trace_path = next();
        else if (arg == "--trace-out")
            trace_out = next();
        else if (arg == "--no-embedding")
            cfg.include_embedding = false;
        else
            fatal("unknown flag ", arg);
    }

    if (!trace_out.empty())
        obs::set_enabled(true);
    else
        obs::init_from_env();

    const BuiltModel model = build_model(kind, cfg);
    std::cout << model.name << ": " << model.graph().size()
              << " graph nodes, batch " << cfg.batch << ", seq "
              << cfg.seq_len << ", hidden " << cfg.hidden << "\n";
    if (!opts.gpu.faults.empty())
        std::cout << "fault injection armed: "
                  << opts.gpu.faults.to_string() << "\n";

    opts.gpu.collect_trace = !trace_path.empty();
    // Arm the full OOM degradation ladder: injected (or genuine)
    // allocation failures degrade Bump -> Reuse -> recompute.
    opts.grads = &model.grads;
    AstraSession session(model.graph(), opts);
    const double native = session.run_native().total_ns;

    ScheduleConfig best;
    int64_t explored = 0;
    if (!load_path.empty()) {
        std::ifstream in(load_path);
        std::string load_error;
        if (!in)
            fatal("cannot open config file ", load_path);
        if (!read_config(in, &best, &load_error))
            fatal("cannot load config from ", load_path, ": ",
                  load_error);
        std::cout << "loaded tuned configuration from " << load_path
                  << " (skipping exploration)\n";
    } else {
        const WirerResult r = session.optimize();
        best = r.best_config;
        explored = r.minibatches;
        if (r.convergence.whatif_evals > 0)
            std::cerr << "whatif: " << r.convergence.whatif_evals
                      << " host replays, "
                      << r.convergence.predictor_pruned
                      << " options predictor-pruned, "
                      << r.convergence.measured_configs
                      << " configs measured (" << r.minibatches
                      << " mini-batches)\n";
        if (!r.convergence.store_tier.empty()) {
            std::cout << "plan store: tier " << r.convergence.store_tier
                      << ", " << r.minibatches
                      << " measured mini-batches";
            if (r.convergence.store_transferred_bindings > 0)
                std::cout << ", "
                          << r.convergence.store_transferred_bindings
                          << " bindings transferred";
            std::cout << "\n";
            for (const std::string& e : r.convergence.store_errors)
                std::cerr << "plan store: rejected entry: " << e
                          << "\n";
        }
        if (!save_path.empty()) {
            std::ofstream out(save_path);
            write_config(out, best);
            std::cout << "saved tuned configuration to " << save_path
                      << "\n";
        }
    }

    const DispatchResult tuned = session.run(best);
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        write_chrome_trace(out, tuned.trace);
        std::cout << "wrote " << tuned.trace.size() << " kernel spans to "
                  << trace_path << "\n";
    }

    if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        if (!out)
            fatal("cannot open ", trace_out, " for writing");
        obs::write_chrome_trace(out);
        std::cout << "wrote merged host+device trace ("
                  << obs::host_spans().size() << " host spans, "
                  << obs::kernel_spans().size() << " kernel spans) to "
                  << trace_out << "\n";
    }

    TextTable table("Result");
    table.set_header({"backend", "mini-batch ms", "speedup"});
    table.add_row({"native", TextTable::fmt(native / 1e6, 3), "1.00"});
    table.add_row(
        {explored > 0 ? "Astra (" + std::to_string(explored) +
                            " configs explored)"
                      : "Astra (preloaded config)",
         TextTable::fmt(tuned.total_ns / 1e6, 3),
         TextTable::fmt(native / tuned.total_ns, 2)});
    table.print();
    return 0;
}
