/**
 * @file
 * Quickstart: define a small LSTM-variant training job, let Astra
 * explore the optimization state space online, and compare against the
 * native framework dispatch.
 *
 * Usage: quickstart [batch]
 */
#include <cstdlib>
#include <iostream>

#include "core/astra.h"
#include "models/data.h"
#include "models/models.h"
#include "support/table.h"

using namespace astra;

int
main(int argc, char** argv)
{
    ModelConfig cfg;
    cfg.batch = argc > 1 ? std::atoll(argv[1]) : 16;
    cfg.seq_len = 6;
    cfg.hidden = 128;
    cfg.embed_dim = 128;

    // 1. Build the model the way a researcher would: per-gate GEMMs,
    //    explicit elementwise gating, loss, autodiff backward pass.
    BuiltModel model = build_model(ModelKind::SubLstm, cfg);
    std::cout << "model: " << model.name << ", graph nodes: "
              << model.graph().size() << "\n";

    // 2. Create a session. The enumerator mines fusion sets, ladders
    //    and allocation strategies; memory is planned per strategy.
    AstraOptions opts;
    opts.gpu.execute_kernels = true;  // real values: work-conserving
    AstraSession session(model.graph(), opts);
    std::cout << "enumerator: " << session.space().groups.size()
              << " fusion groups, " << session.space().single_mms.size()
              << " standalone GEMMs, "
              << session.space().strategies.size()
              << " allocation strategies\n";

    // 3. Native framework baseline (single stream, no fusion).
    Rng rng(42);
    bind_all(model.graph(), session.tensor_map(0), rng);
    const DispatchResult native = session.run_native();

    // 4. Online exploration: every trial is a real training mini-batch
    //    (the bind callback loads fresh data = work conservation).
    WirerResult result = session.optimize(
        [&](const TensorMap& tmap, int64_t mb) {
            (void)mb;
            bind_inputs(model.graph(), tmap, rng);
        });

    // 5. Steady state: keep training with the winning configuration.
    const DispatchResult tuned = session.run(result.best_config);

    TextTable table("Astra quickstart (" + model.name + ", batch " +
                    std::to_string(cfg.batch) + ")");
    table.set_header({"configuration", "mini-batch ms", "speedup"});
    table.add_row({"native framework",
                   TextTable::fmt(native.total_ns / 1e6, 3), "1.00"});
    table.add_row({"Astra (explored " +
                       std::to_string(result.minibatches) +
                       " configs)",
                   TextTable::fmt(tuned.total_ns / 1e6, 3),
                   TextTable::fmt(native.total_ns / tuned.total_ns, 2)});
    table.print();
    return 0;
}
