/**
 * @file
 * Multi-job fleet driver: replays a stream of heterogeneous training
 * jobs against a shared plan store and reports how the knowledge base
 * amortizes wiring cost across sightings.
 *
 * Usage:
 *   fleet --store DIR [--rounds N] [--smoke] [--report FILE]
 *         [--wirer-threads N]
 *
 * Every job is a fresh AstraSession (the in-process plan cache starts
 * cold each time); the store directory is the only channel between
 * sightings, exactly as it is between fleet processes. Round 1 wires
 * every workload cold and writes the winners back; round 2 should
 * answer every workload from the store's L1 rung with a single
 * measured verification mini-batch — the >= 10x reduction the
 * warm-start CI job gates. The stream deliberately includes a
 * shape-neighbor pair (same model, different width) so the L2 transfer
 * rung is exercised too when only one of the pair has been seen.
 *
 * --report appends one machine-readable line per sighting:
 *   sighting round=R workload=W tier=T minibatches=M config_fnv=H
 * which the CI gate parses to check the reduction ratio and that the
 * warm final configuration is bit-identical to the cold one.
 */
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/astra.h"
#include "core/config_io.h"
#include "core/plan_store.h"
#include "models/models.h"
#include "support/table.h"

using namespace astra;

namespace {

struct Workload
{
    std::string name;
    ModelKind kind;
    ModelConfig cfg;
};

std::vector<Workload>
make_stream(bool smoke)
{
    // Each entry keeps embed_dim == hidden so the neighbor pair
    // differs in exactly one width. scrnn-h32 / scrnn-h48 share a
    // shape class (same structure, different dimension values): the
    // store's L2 rung answers whichever of the two arrives second.
    auto wl = [](std::string name, ModelKind kind, int64_t batch,
                 int64_t seq, int64_t hidden) {
        Workload w;
        w.name = std::move(name);
        w.kind = kind;
        w.cfg = {.batch = batch, .seq_len = seq, .hidden = hidden,
                 .embed_dim = hidden, .vocab = 50};
        return w;
    };
    std::vector<Workload> stream = {
        wl("scrnn-h32", ModelKind::Scrnn, 8, 4, 32),
        wl("scrnn-h48", ModelKind::Scrnn, 8, 4, 48),
        wl("milstm-h32", ModelKind::MiLstm, 8, 4, 32),
    };
    if (!smoke) {
        stream.push_back(wl("sublstm-h64", ModelKind::SubLstm, 16, 8, 64));
        stream.push_back(wl("scrnn-h64", ModelKind::Scrnn, 16, 4, 64));
    }
    return stream;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string store_dir = plan_store_dir_from_env();
    std::string report_path;
    int rounds = 2;
    int wirer_threads = 1;
    bool smoke = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--store")
            store_dir = next();
        else if (arg == "--rounds")
            rounds = std::atoi(next().c_str());
        else if (arg == "--report")
            report_path = next();
        else if (arg == "--wirer-threads")
            wirer_threads = std::atoi(next().c_str());
        else if (arg == "--smoke")
            smoke = true;
        else
            fatal("unknown flag ", arg);
    }
    if (store_dir.empty())
        fatal("no store directory (pass --store DIR or set "
              "ASTRA_PLAN_STORE)");
    if (rounds < 1)
        fatal("--rounds must be >= 1");

    std::ofstream report;
    if (!report_path.empty()) {
        report.open(report_path, std::ios::app);
        if (!report)
            fatal("cannot open ", report_path, " for writing");
    }

    const std::vector<Workload> stream = make_stream(smoke);
    std::cout << "fleet: " << stream.size() << " workloads x " << rounds
              << " rounds, store " << store_dir << "\n";

    TextTable table("Fleet");
    table.set_header({"round", "workload", "tier", "mini-batches",
                      "mini-batch ms", "config fnv"});
    std::vector<int64_t> round_minibatches(
        static_cast<size_t>(rounds), 0);
    for (int round = 1; round <= rounds; ++round) {
        for (const Workload& w : stream) {
            const BuiltModel model = build_model(w.kind, w.cfg);
            AstraOptions opts;
            opts.plan_store = store_dir;
            opts.wirer_threads = wirer_threads;
            opts.gpu.execute_kernels = false;
            // Bit-identical warm/cold configs require the base clock
            // (§4.1): pin it so an autoboost environment (the CI
            // noise job's ASTRA_SIM_AUTOBOOST) cannot make the gate
            // flaky.
            opts.gpu.autoboost = false;
            AstraSession session(model.graph(), opts);
            const WirerResult r = session.optimize();
            const std::string tier = r.convergence.store_tier;
            const std::string config_fnv =
                hash_hex(fnv1a64(config_to_string(r.best_config)));
            round_minibatches[static_cast<size_t>(round - 1)] +=
                r.minibatches;
            table.add_row({std::to_string(round), w.name, tier,
                           std::to_string(r.minibatches),
                           TextTable::fmt(r.best_ns / 1e6, 3),
                           config_fnv});
            for (const std::string& e : r.convergence.store_errors)
                std::cerr << "plan store: rejected entry: " << e
                          << "\n";
            if (report)
                report << "sighting round=" << round << " workload="
                       << w.name << " tier=" << tier
                       << " minibatches=" << r.minibatches
                       << " config_fnv=" << config_fnv << "\n";
        }
    }
    table.print();

    // Amortization summary: wiring cost per round, and how far the
    // store cut it versus the cold first round.
    std::cout << "\namortized wiring cost (measured mini-batches per "
                 "round):\n";
    for (int round = 1; round <= rounds; ++round) {
        const int64_t mb =
            round_minibatches[static_cast<size_t>(round - 1)];
        std::cout << "  round " << round << ": " << mb;
        if (round > 1 && mb > 0)
            std::cout << "  ("
                      << TextTable::fmt(
                             static_cast<double>(round_minibatches[0]) /
                                 static_cast<double>(mb),
                             1)
                      << "x fewer than cold)";
        std::cout << "\n";
    }
    return 0;
}
