/**
 * @file
 * Timeline dump: execute one mini-batch under the native dispatch and
 * under Astra's tuned configuration, writing Chrome-trace JSON for
 * both so the schedules can be compared visually in chrome://tracing
 * or Perfetto (streams appear as separate tracks).
 *
 * Usage: timeline [out_prefix]
 *   writes <out_prefix>_native.json and <out_prefix>_astra.json
 */
#include <fstream>
#include <iostream>
#include <string>

#include "core/astra.h"
#include "models/models.h"
#include "runtime/dispatcher.h"
#include "runtime/native.h"
#include "sim/trace.h"

using namespace astra;

int
main(int argc, char** argv)
{
    const std::string prefix = argc > 1 ? argv[1] : "timeline";

    ModelConfig cfg;
    cfg.batch = 16;
    cfg.seq_len = 6;
    cfg.hidden = 256;
    cfg.embed_dim = 256;
    cfg.vocab = 500;
    const BuiltModel model = build_model(ModelKind::SubLstm, cfg);

    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.gpu.collect_trace = true;
    AstraSession session(model.graph(), opts);

    const DispatchResult native = session.run_native();
    {
        std::ofstream out(prefix + "_native.json");
        write_chrome_trace(out, native.trace);
    }

    const WirerResult r = session.optimize();
    const DispatchResult tuned = session.run(r.best_config);
    {
        std::ofstream out(prefix + "_astra.json");
        write_chrome_trace(out, tuned.trace);
    }

    std::cout << "native: " << native.trace.size() << " kernels, "
              << native.total_ns / 1e6 << " ms -> " << prefix
              << "_native.json\n";
    std::cout << "astra:  " << tuned.trace.size() << " kernels, "
              << tuned.total_ns / 1e6 << " ms -> " << prefix
              << "_astra.json\n";
    std::cout << "open either file in chrome://tracing to inspect the "
                 "schedule\n";
    return 0;
}
