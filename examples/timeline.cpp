/**
 * @file
 * Timeline dump: execute one mini-batch under the native dispatch and
 * under Astra's tuned configuration, writing Chrome-trace JSON for
 * both so the schedules can be compared visually in chrome://tracing
 * or Perfetto (streams appear as separate tracks).
 *
 * Usage: timeline [out_prefix] [--trace-out FILE.json]
 *   writes <out_prefix>_native.json and <out_prefix>_astra.json
 *
 * With --trace-out (or ASTRA_TRACE=FILE.json in the environment) the
 * whole run is additionally captured through the observability layer:
 * FILE.json holds host-side spans (enumerate / wire / dispatch /
 * alloc) and every simulated kernel span on one merged timeline, plus
 * a text summary of the counters on stdout.
 */
#include <fstream>
#include <iostream>
#include <string>

#include "core/astra.h"
#include "models/models.h"
#include "obs/export.h"
#include "runtime/dispatcher.h"
#include "runtime/native.h"
#include "sim/trace.h"

using namespace astra;

int
main(int argc, char** argv)
{
    std::string prefix = "timeline";
    std::string trace_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trace-out") {
            if (i + 1 >= argc) {
                std::cerr << "error: --trace-out requires a file argument\n";
                return 2;
            }
            trace_out = argv[++i];
        } else {
            prefix = arg;
        }
    }
    if (!trace_out.empty())
        obs::set_enabled(true);
    else
        obs::init_from_env();

    ModelConfig cfg;
    cfg.batch = 16;
    cfg.seq_len = 6;
    cfg.hidden = 256;
    cfg.embed_dim = 256;
    cfg.vocab = 500;
    const BuiltModel model = build_model(ModelKind::SubLstm, cfg);

    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.gpu.collect_trace = true;
    AstraSession session(model.graph(), opts);

    const DispatchResult native = session.run_native();
    {
        std::ofstream out(prefix + "_native.json");
        write_chrome_trace(out, native.trace);
    }

    const WirerResult r = session.optimize();
    const DispatchResult tuned = session.run(r.best_config);
    {
        std::ofstream out(prefix + "_astra.json");
        write_chrome_trace(out, tuned.trace);
    }

    std::cout << "native: " << native.trace.size() << " kernels, "
              << native.total_ns / 1e6 << " ms -> " << prefix
              << "_native.json\n";
    std::cout << "astra:  " << tuned.trace.size() << " kernels, "
              << tuned.total_ns / 1e6 << " ms -> " << prefix
              << "_astra.json\n";

    if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        if (!out) {
            std::cerr << "error: cannot open " << trace_out
                      << " for writing\n";
            return 1;
        }
        obs::write_chrome_trace(out);
        std::cout << "merged host+device trace ("
                  << obs::host_spans().size() << " host spans, "
                  << obs::kernel_spans().size() << " kernel spans) -> "
                  << trace_out << "\n";
        obs::write_text_summary(std::cout);
    }
    std::cout << "open any trace file in chrome://tracing or "
                 "https://ui.perfetto.dev to inspect the schedule\n";
    return 0;
}
