/**
 * @file
 * Dynamic-shape demo (paper §5.5): variable-length inputs break the
 * mini-batch-predictability assumption, so Astra buckets the lengths,
 * explores each bucket independently (profile keys prefixed with the
 * bucket id), and serves every mini-batch from the smallest covering
 * bucket.
 *
 * Usage: dynamic_buckets [minibatches]
 */
#include <cstdlib>
#include <iostream>

#include "core/bucketed.h"
#include "models/data.h"
#include "models/models.h"
#include "support/stats.h"
#include "support/table.h"

using namespace astra;

int
main(int argc, char** argv)
{
    const int minibatches = argc > 1 ? std::atoi(argv[1]) : 50;

    AstraOptions opts;
    opts.gpu.execute_kernels = false;
    opts.features = features_fk();

    const std::vector<int> buckets = {4, 6, 8, 12, 20};
    BucketedAstra bucketed(
        buckets,
        [](GraphBuilder& b, int length) {
            ModelConfig cfg;
            cfg.batch = 16;
            cfg.seq_len = length;
            cfg.hidden = 128;
            cfg.embed_dim = 128;
            cfg.vocab = 500;
            BuiltModel m = build_model(ModelKind::Scrnn, cfg);
            b = std::move(*m.builder);
        },
        opts);

    std::cout << "exploring " << buckets.size() << " buckets...\n";
    const int64_t explored = bucketed.optimize();
    std::cout << "total exploration mini-batches: " << explored << "\n";

    TextTable per_bucket("Per-bucket tuned mini-batch time");
    per_bucket.set_header({"bucket length", "tuned ms"});
    for (size_t i = 0; i < buckets.size(); ++i)
        per_bucket.add_row(std::to_string(buckets[i]),
                           {bucketed.bucket_best_ns(static_cast<int>(i)) /
                            1e6});
    per_bucket.print();

    // Steady state over a PTB-like length stream.
    Rng rng(11);
    RunningStats stats;
    std::map<int, int> hits;
    for (int i = 0; i < minibatches; ++i) {
        const int len = std::max(2, sample_ptb_length(rng) / 4);
        ++hits[bucketed.bucket_for(len)];
        stats.add(bucketed.step_ns(len));
    }
    TextTable table("Steady state over " + std::to_string(minibatches) +
                    " variable-length mini-batches");
    table.set_header({"metric", "value"});
    table.add_row({"mean mini-batch ms",
                   TextTable::fmt(stats.mean() / 1e6, 3)});
    table.add_row({"min / max ms",
                   TextTable::fmt(stats.min() / 1e6, 3) + " / " +
                       TextTable::fmt(stats.max() / 1e6, 3)});
    std::string dist;
    for (const auto& [bucket, count] : hits)
        dist += "b" + std::to_string(buckets[static_cast<size_t>(
                    bucket)]) + ":" + std::to_string(count) + " ";
    table.add_row({"bucket hit counts", dist});
    table.print();
    return 0;
}
