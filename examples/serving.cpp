/**
 * @file
 * Online serving demo: bucketed wired plans behind an open-loop
 * request stream, with live re-wiring under clock drift.
 *
 * The training-side story (examples/dynamic_buckets.cpp) buckets
 * variable-length inputs and explores each bucket offline. This demo
 * takes the next step and *serves*: Poisson traffic with a diurnal
 * burst arrives on its own clock, a deadline-aware queue batches
 * requests per bucket, and every mini-batch replays the bucket's
 * wired binary. Mid-trace, the device thermally throttles to 70%
 * clocks; the drift watcher notices from window statistics, a re-wire
 * runs off-path (warm-started from the plan store when one is
 * configured), and the refreshed blob is hot-swapped between
 * mini-batches — no queued request is dropped.
 *
 * Usage: serving [--trace-out FILE]
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "models/models.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "serve/server.h"

using namespace astra;

int
main(int argc, char** argv)
{
    std::string trace_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trace-out" && i + 1 < argc)
            trace_out = argv[++i];
    }
    if (!trace_out.empty())
        obs::set_enabled(true);
    else
        obs::init_from_env();

    serve::ServeOptions so;
    so.bucket_lengths = {4, 6, 8};
    so.build = [](GraphBuilder& b, int length) {
        ModelConfig cfg;
        cfg.batch = 4;
        cfg.seq_len = length;
        cfg.hidden = 32;
        cfg.embed_dim = 32;
        cfg.vocab = 50;
        BuiltModel m = build_model(ModelKind::Scrnn, cfg);
        b = std::move(*m.builder);
    };
    so.astra.features = features_fk();
    so.astra.gpu.execute_kernels = false;
    so.astra.gpu.autoboost = false;
    so.max_batch = 4;
    so.record_batches = true;

    std::printf("exploring %zu buckets offline...\n",
                so.bucket_lengths.size());
    serve::BucketedServer server(so);
    const int64_t explored = server.optimize();
    std::printf("exploration mini-batches: %lld\n\n",
                static_cast<long long>(explored));

    // Self-calibrated open-loop traffic: ~40% of the largest bucket's
    // batch capacity, one 2x burst, SLO at 30 batch times.
    const double batch_ns = server.plan(2).baseline_ns;
    serve::TrafficConfig tcfg;
    tcfg.duration_ns = 600.0 * batch_ns;
    tcfg.base_rps = 0.4 * so.max_batch * 1e9 / batch_ns;
    tcfg.slo_ns = 30.0 * batch_ns;
    tcfg.length_div = 10;
    tcfg.bursts.push_back(
        {0.2 * tcfg.duration_ns, 0.4 * tcfg.duration_ns, 2.0});
    const auto traffic = serve::generate_traffic(tcfg);

    const serve::ServeReport calm = server.serve(traffic);
    std::printf("%s\n", calm.to_text("calm device").c_str());

    // Same workload, but the device throttles to 70% clocks at the
    // halfway mark. Watch the report: drift detected, one off-path
    // re-wire, one hot swap, still zero drops.
    serve::ServeOptions drift_opts = so;
    drift_opts.clock_schedule.push_back(
        {0.5 * tcfg.duration_ns, 0.7});
    serve::BucketedServer drifting(drift_opts);
    drifting.optimize();
    const serve::ServeReport drift = drifting.serve(traffic);
    std::printf("%s\n",
                drift.to_text("thermal throttle at t/2 (0.7x clocks)")
                    .c_str());

    int swapped_batches = 0;
    for (const auto& rec : drift.batch_log)
        if (rec.plan_epoch > 0)
            ++swapped_batches;
    std::printf("batches on re-wired plans: %d of %lld\n",
                swapped_batches,
                static_cast<long long>(drift.batches));

    if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        if (!out) {
            std::cerr << "error: cannot open " << trace_out << "\n";
            return 1;
        }
        obs::write_chrome_trace(out);
        std::cout << "serving trace (serve lane + host/device spans) -> "
                  << trace_out << "\n";
    }
    return 0;
}
