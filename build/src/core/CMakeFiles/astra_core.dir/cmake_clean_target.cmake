file(REMOVE_RECURSE
  "libastra_core.a"
)
