
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/astra_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/astra.cc" "src/core/CMakeFiles/astra_core.dir/astra.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/astra.cc.o.d"
  "/root/repo/src/core/bucketed.cc" "src/core/CMakeFiles/astra_core.dir/bucketed.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/bucketed.cc.o.d"
  "/root/repo/src/core/config_io.cc" "src/core/CMakeFiles/astra_core.dir/config_io.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/config_io.cc.o.d"
  "/root/repo/src/core/data_parallel.cc" "src/core/CMakeFiles/astra_core.dir/data_parallel.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/data_parallel.cc.o.d"
  "/root/repo/src/core/profile_index.cc" "src/core/CMakeFiles/astra_core.dir/profile_index.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/profile_index.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/astra_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/search_space.cc" "src/core/CMakeFiles/astra_core.dir/search_space.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/search_space.cc.o.d"
  "/root/repo/src/core/wirer.cc" "src/core/CMakeFiles/astra_core.dir/wirer.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/wirer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/astra_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/astra_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/astra_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/astra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/astra_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/astra_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/astra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
