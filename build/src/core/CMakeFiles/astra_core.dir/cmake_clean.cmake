file(REMOVE_RECURSE
  "CMakeFiles/astra_core.dir/adaptive.cc.o"
  "CMakeFiles/astra_core.dir/adaptive.cc.o.d"
  "CMakeFiles/astra_core.dir/astra.cc.o"
  "CMakeFiles/astra_core.dir/astra.cc.o.d"
  "CMakeFiles/astra_core.dir/bucketed.cc.o"
  "CMakeFiles/astra_core.dir/bucketed.cc.o.d"
  "CMakeFiles/astra_core.dir/config_io.cc.o"
  "CMakeFiles/astra_core.dir/config_io.cc.o.d"
  "CMakeFiles/astra_core.dir/data_parallel.cc.o"
  "CMakeFiles/astra_core.dir/data_parallel.cc.o.d"
  "CMakeFiles/astra_core.dir/profile_index.cc.o"
  "CMakeFiles/astra_core.dir/profile_index.cc.o.d"
  "CMakeFiles/astra_core.dir/scheduler.cc.o"
  "CMakeFiles/astra_core.dir/scheduler.cc.o.d"
  "CMakeFiles/astra_core.dir/search_space.cc.o"
  "CMakeFiles/astra_core.dir/search_space.cc.o.d"
  "CMakeFiles/astra_core.dir/wirer.cc.o"
  "CMakeFiles/astra_core.dir/wirer.cc.o.d"
  "libastra_core.a"
  "libastra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
