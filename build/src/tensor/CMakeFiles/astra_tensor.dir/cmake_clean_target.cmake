file(REMOVE_RECURSE
  "libastra_tensor.a"
)
