file(REMOVE_RECURSE
  "CMakeFiles/astra_tensor.dir/math.cc.o"
  "CMakeFiles/astra_tensor.dir/math.cc.o.d"
  "CMakeFiles/astra_tensor.dir/shape.cc.o"
  "CMakeFiles/astra_tensor.dir/shape.cc.o.d"
  "CMakeFiles/astra_tensor.dir/tensor.cc.o"
  "CMakeFiles/astra_tensor.dir/tensor.cc.o.d"
  "libastra_tensor.a"
  "libastra_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
