# Empty dependencies file for astra_tensor.
# This may be replaced when dependencies are built.
