# Empty compiler generated dependencies file for astra_kernels.
# This may be replaced when dependencies are built.
