file(REMOVE_RECURSE
  "libastra_kernels.a"
)
