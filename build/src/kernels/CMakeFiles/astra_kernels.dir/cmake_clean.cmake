file(REMOVE_RECURSE
  "CMakeFiles/astra_kernels.dir/cost.cc.o"
  "CMakeFiles/astra_kernels.dir/cost.cc.o.d"
  "libastra_kernels.a"
  "libastra_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
