# Empty dependencies file for astra_baselines.
# This may be replaced when dependencies are built.
