file(REMOVE_RECURSE
  "libastra_baselines.a"
)
