file(REMOVE_RECURSE
  "CMakeFiles/astra_baselines.dir/cudnn.cc.o"
  "CMakeFiles/astra_baselines.dir/cudnn.cc.o.d"
  "CMakeFiles/astra_baselines.dir/xla.cc.o"
  "CMakeFiles/astra_baselines.dir/xla.cc.o.d"
  "libastra_baselines.a"
  "libastra_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
