file(REMOVE_RECURSE
  "libastra_runtime.a"
)
