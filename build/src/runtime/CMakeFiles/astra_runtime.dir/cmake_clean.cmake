file(REMOVE_RECURSE
  "CMakeFiles/astra_runtime.dir/dispatcher.cc.o"
  "CMakeFiles/astra_runtime.dir/dispatcher.cc.o.d"
  "CMakeFiles/astra_runtime.dir/executor.cc.o"
  "CMakeFiles/astra_runtime.dir/executor.cc.o.d"
  "CMakeFiles/astra_runtime.dir/native.cc.o"
  "CMakeFiles/astra_runtime.dir/native.cc.o.d"
  "CMakeFiles/astra_runtime.dir/plan_utils.cc.o"
  "CMakeFiles/astra_runtime.dir/plan_utils.cc.o.d"
  "CMakeFiles/astra_runtime.dir/tensor_map.cc.o"
  "CMakeFiles/astra_runtime.dir/tensor_map.cc.o.d"
  "libastra_runtime.a"
  "libastra_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
