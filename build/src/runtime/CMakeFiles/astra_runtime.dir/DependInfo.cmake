
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/dispatcher.cc" "src/runtime/CMakeFiles/astra_runtime.dir/dispatcher.cc.o" "gcc" "src/runtime/CMakeFiles/astra_runtime.dir/dispatcher.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "src/runtime/CMakeFiles/astra_runtime.dir/executor.cc.o" "gcc" "src/runtime/CMakeFiles/astra_runtime.dir/executor.cc.o.d"
  "/root/repo/src/runtime/native.cc" "src/runtime/CMakeFiles/astra_runtime.dir/native.cc.o" "gcc" "src/runtime/CMakeFiles/astra_runtime.dir/native.cc.o.d"
  "/root/repo/src/runtime/plan_utils.cc" "src/runtime/CMakeFiles/astra_runtime.dir/plan_utils.cc.o" "gcc" "src/runtime/CMakeFiles/astra_runtime.dir/plan_utils.cc.o.d"
  "/root/repo/src/runtime/tensor_map.cc" "src/runtime/CMakeFiles/astra_runtime.dir/tensor_map.cc.o" "gcc" "src/runtime/CMakeFiles/astra_runtime.dir/tensor_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/astra_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/astra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/astra_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/astra_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/astra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
