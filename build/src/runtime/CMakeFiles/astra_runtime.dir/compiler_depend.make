# Empty compiler generated dependencies file for astra_runtime.
# This may be replaced when dependencies are built.
