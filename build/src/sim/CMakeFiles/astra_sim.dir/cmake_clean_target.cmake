file(REMOVE_RECURSE
  "libastra_sim.a"
)
