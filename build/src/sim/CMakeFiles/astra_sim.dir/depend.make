# Empty dependencies file for astra_sim.
# This may be replaced when dependencies are built.
