file(REMOVE_RECURSE
  "CMakeFiles/astra_sim.dir/gpu.cc.o"
  "CMakeFiles/astra_sim.dir/gpu.cc.o.d"
  "CMakeFiles/astra_sim.dir/memory.cc.o"
  "CMakeFiles/astra_sim.dir/memory.cc.o.d"
  "CMakeFiles/astra_sim.dir/trace.cc.o"
  "CMakeFiles/astra_sim.dir/trace.cc.o.d"
  "libastra_sim.a"
  "libastra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
