file(REMOVE_RECURSE
  "libastra_autodiff.a"
)
