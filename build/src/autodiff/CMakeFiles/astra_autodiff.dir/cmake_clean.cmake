file(REMOVE_RECURSE
  "CMakeFiles/astra_autodiff.dir/autodiff.cc.o"
  "CMakeFiles/astra_autodiff.dir/autodiff.cc.o.d"
  "CMakeFiles/astra_autodiff.dir/recompute.cc.o"
  "CMakeFiles/astra_autodiff.dir/recompute.cc.o.d"
  "libastra_autodiff.a"
  "libastra_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
