
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodiff/autodiff.cc" "src/autodiff/CMakeFiles/astra_autodiff.dir/autodiff.cc.o" "gcc" "src/autodiff/CMakeFiles/astra_autodiff.dir/autodiff.cc.o.d"
  "/root/repo/src/autodiff/recompute.cc" "src/autodiff/CMakeFiles/astra_autodiff.dir/recompute.cc.o" "gcc" "src/autodiff/CMakeFiles/astra_autodiff.dir/recompute.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/astra_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/astra_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/astra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
