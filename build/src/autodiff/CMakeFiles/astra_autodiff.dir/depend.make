# Empty dependencies file for astra_autodiff.
# This may be replaced when dependencies are built.
