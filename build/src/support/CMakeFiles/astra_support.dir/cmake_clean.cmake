file(REMOVE_RECURSE
  "CMakeFiles/astra_support.dir/logging.cc.o"
  "CMakeFiles/astra_support.dir/logging.cc.o.d"
  "CMakeFiles/astra_support.dir/table.cc.o"
  "CMakeFiles/astra_support.dir/table.cc.o.d"
  "libastra_support.a"
  "libastra_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
