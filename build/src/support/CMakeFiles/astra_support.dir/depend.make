# Empty dependencies file for astra_support.
# This may be replaced when dependencies are built.
