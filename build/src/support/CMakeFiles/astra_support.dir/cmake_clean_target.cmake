file(REMOVE_RECURSE
  "libastra_support.a"
)
