# Empty compiler generated dependencies file for astra_models.
# This may be replaced when dependencies are built.
