file(REMOVE_RECURSE
  "CMakeFiles/astra_models.dir/data.cc.o"
  "CMakeFiles/astra_models.dir/data.cc.o.d"
  "CMakeFiles/astra_models.dir/models.cc.o"
  "CMakeFiles/astra_models.dir/models.cc.o.d"
  "libastra_models.a"
  "libastra_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
