file(REMOVE_RECURSE
  "libastra_models.a"
)
