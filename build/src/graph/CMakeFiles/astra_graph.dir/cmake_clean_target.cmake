file(REMOVE_RECURSE
  "libastra_graph.a"
)
