# Empty compiler generated dependencies file for astra_graph.
# This may be replaced when dependencies are built.
