file(REMOVE_RECURSE
  "CMakeFiles/astra_graph.dir/builder.cc.o"
  "CMakeFiles/astra_graph.dir/builder.cc.o.d"
  "CMakeFiles/astra_graph.dir/graph.cc.o"
  "CMakeFiles/astra_graph.dir/graph.cc.o.d"
  "CMakeFiles/astra_graph.dir/op.cc.o"
  "CMakeFiles/astra_graph.dir/op.cc.o.d"
  "libastra_graph.a"
  "libastra_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
