file(REMOVE_RECURSE
  "CMakeFiles/test_astra_api.dir/test_astra_api.cc.o"
  "CMakeFiles/test_astra_api.dir/test_astra_api.cc.o.d"
  "test_astra_api"
  "test_astra_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_astra_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
