# Empty dependencies file for test_astra_api.
# This may be replaced when dependencies are built.
