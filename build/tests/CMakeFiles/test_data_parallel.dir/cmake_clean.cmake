file(REMOVE_RECURSE
  "CMakeFiles/test_data_parallel.dir/test_data_parallel.cc.o"
  "CMakeFiles/test_data_parallel.dir/test_data_parallel.cc.o.d"
  "test_data_parallel"
  "test_data_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
