file(REMOVE_RECURSE
  "CMakeFiles/test_wirer.dir/test_wirer.cc.o"
  "CMakeFiles/test_wirer.dir/test_wirer.cc.o.d"
  "test_wirer"
  "test_wirer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wirer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
