# Empty compiler generated dependencies file for test_wirer.
# This may be replaced when dependencies are built.
