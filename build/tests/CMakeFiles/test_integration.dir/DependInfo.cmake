
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/test_integration.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/astra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/astra_models.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/astra_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/astra_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/astra_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/astra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/astra_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/astra_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/astra_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/astra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
