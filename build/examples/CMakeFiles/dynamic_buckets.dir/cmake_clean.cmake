file(REMOVE_RECURSE
  "CMakeFiles/dynamic_buckets.dir/dynamic_buckets.cpp.o"
  "CMakeFiles/dynamic_buckets.dir/dynamic_buckets.cpp.o.d"
  "dynamic_buckets"
  "dynamic_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
