# Empty compiler generated dependencies file for dynamic_buckets.
# This may be replaced when dependencies are built.
