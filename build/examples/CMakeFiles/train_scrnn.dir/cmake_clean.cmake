file(REMOVE_RECURSE
  "CMakeFiles/train_scrnn.dir/train_scrnn.cpp.o"
  "CMakeFiles/train_scrnn.dir/train_scrnn.cpp.o.d"
  "train_scrnn"
  "train_scrnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_scrnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
