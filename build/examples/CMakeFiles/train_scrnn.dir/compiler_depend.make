# Empty compiler generated dependencies file for train_scrnn.
# This may be replaced when dependencies are built.
