file(REMOVE_RECURSE
  "CMakeFiles/astra_cli.dir/astra_cli.cpp.o"
  "CMakeFiles/astra_cli.dir/astra_cli.cpp.o.d"
  "astra_cli"
  "astra_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
