# Empty compiler generated dependencies file for astra_cli.
# This may be replaced when dependencies are built.
