file(REMOVE_RECURSE
  "CMakeFiles/table9_xla.dir/table9_xla.cc.o"
  "CMakeFiles/table9_xla.dir/table9_xla.cc.o.d"
  "table9_xla"
  "table9_xla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_xla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
