# Empty dependencies file for table9_xla.
# This may be replaced when dependencies are built.
