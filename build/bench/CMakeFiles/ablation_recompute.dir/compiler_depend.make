# Empty compiler generated dependencies file for ablation_recompute.
# This may be replaced when dependencies are built.
