# Empty compiler generated dependencies file for table8_buckets.
# This may be replaced when dependencies are built.
