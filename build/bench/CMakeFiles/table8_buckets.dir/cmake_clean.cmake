file(REMOVE_RECURSE
  "CMakeFiles/table8_buckets.dir/table8_buckets.cc.o"
  "CMakeFiles/table8_buckets.dir/table8_buckets.cc.o.d"
  "table8_buckets"
  "table8_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
