file(REMOVE_RECURSE
  "CMakeFiles/astra_benchcommon.dir/common.cc.o"
  "CMakeFiles/astra_benchcommon.dir/common.cc.o.d"
  "libastra_benchcommon.a"
  "libastra_benchcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
