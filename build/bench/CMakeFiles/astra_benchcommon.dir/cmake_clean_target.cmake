file(REMOVE_RECURSE
  "libastra_benchcommon.a"
)
