# Empty compiler generated dependencies file for astra_benchcommon.
# This may be replaced when dependencies are built.
