file(REMOVE_RECURSE
  "CMakeFiles/micro_fusion_vs_streams.dir/micro_fusion_vs_streams.cc.o"
  "CMakeFiles/micro_fusion_vs_streams.dir/micro_fusion_vs_streams.cc.o.d"
  "micro_fusion_vs_streams"
  "micro_fusion_vs_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fusion_vs_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
