# Empty compiler generated dependencies file for micro_fusion_vs_streams.
# This may be replaced when dependencies are built.
