file(REMOVE_RECURSE
  "CMakeFiles/table4_sublstm.dir/table4_sublstm.cc.o"
  "CMakeFiles/table4_sublstm.dir/table4_sublstm.cc.o.d"
  "table4_sublstm"
  "table4_sublstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sublstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
