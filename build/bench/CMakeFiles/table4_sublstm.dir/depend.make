# Empty dependencies file for table4_sublstm.
# This may be replaced when dependencies are built.
