file(REMOVE_RECURSE
  "CMakeFiles/table6_gnmt_cudnn.dir/table6_gnmt_cudnn.cc.o"
  "CMakeFiles/table6_gnmt_cudnn.dir/table6_gnmt_cudnn.cc.o.d"
  "table6_gnmt_cudnn"
  "table6_gnmt_cudnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_gnmt_cudnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
