# Empty dependencies file for table6_gnmt_cudnn.
# This may be replaced when dependencies are built.
