file(REMOVE_RECURSE
  "CMakeFiles/ablation_superepoch.dir/ablation_superepoch.cc.o"
  "CMakeFiles/ablation_superepoch.dir/ablation_superepoch.cc.o.d"
  "ablation_superepoch"
  "ablation_superepoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_superepoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
