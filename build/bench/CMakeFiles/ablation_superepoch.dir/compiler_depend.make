# Empty compiler generated dependencies file for ablation_superepoch.
# This may be replaced when dependencies are built.
