file(REMOVE_RECURSE
  "CMakeFiles/micro_predictability.dir/micro_predictability.cc.o"
  "CMakeFiles/micro_predictability.dir/micro_predictability.cc.o.d"
  "micro_predictability"
  "micro_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
