# Empty compiler generated dependencies file for micro_predictability.
# This may be replaced when dependencies are built.
