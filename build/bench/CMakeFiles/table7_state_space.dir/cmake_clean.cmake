file(REMOVE_RECURSE
  "CMakeFiles/table7_state_space.dir/table7_state_space.cc.o"
  "CMakeFiles/table7_state_space.dir/table7_state_space.cc.o.d"
  "table7_state_space"
  "table7_state_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_state_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
