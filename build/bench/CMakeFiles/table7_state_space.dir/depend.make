# Empty dependencies file for table7_state_space.
# This may be replaced when dependencies are built.
