file(REMOVE_RECURSE
  "CMakeFiles/gbench_components.dir/gbench_components.cc.o"
  "CMakeFiles/gbench_components.dir/gbench_components.cc.o.d"
  "gbench_components"
  "gbench_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
