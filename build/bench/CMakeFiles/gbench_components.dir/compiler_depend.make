# Empty compiler generated dependencies file for gbench_components.
# This may be replaced when dependencies are built.
