file(REMOVE_RECURSE
  "CMakeFiles/table1_gemm_libraries.dir/table1_gemm_libraries.cc.o"
  "CMakeFiles/table1_gemm_libraries.dir/table1_gemm_libraries.cc.o.d"
  "table1_gemm_libraries"
  "table1_gemm_libraries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_gemm_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
