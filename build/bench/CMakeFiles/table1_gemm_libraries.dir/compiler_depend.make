# Empty compiler generated dependencies file for table1_gemm_libraries.
# This may be replaced when dependencies are built.
