file(REMOVE_RECURSE
  "CMakeFiles/table3_milstm.dir/table3_milstm.cc.o"
  "CMakeFiles/table3_milstm.dir/table3_milstm.cc.o.d"
  "table3_milstm"
  "table3_milstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_milstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
