# Empty dependencies file for table3_milstm.
# This may be replaced when dependencies are built.
