# Empty compiler generated dependencies file for table5_stackedlstm_cudnn.
# This may be replaced when dependencies are built.
