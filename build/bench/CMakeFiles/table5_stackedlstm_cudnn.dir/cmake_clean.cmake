file(REMOVE_RECURSE
  "CMakeFiles/table5_stackedlstm_cudnn.dir/table5_stackedlstm_cudnn.cc.o"
  "CMakeFiles/table5_stackedlstm_cudnn.dir/table5_stackedlstm_cudnn.cc.o.d"
  "table5_stackedlstm_cudnn"
  "table5_stackedlstm_cudnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_stackedlstm_cudnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
