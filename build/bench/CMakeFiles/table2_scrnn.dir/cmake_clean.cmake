file(REMOVE_RECURSE
  "CMakeFiles/table2_scrnn.dir/table2_scrnn.cc.o"
  "CMakeFiles/table2_scrnn.dir/table2_scrnn.cc.o.d"
  "table2_scrnn"
  "table2_scrnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_scrnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
