# Empty dependencies file for table2_scrnn.
# This may be replaced when dependencies are built.
