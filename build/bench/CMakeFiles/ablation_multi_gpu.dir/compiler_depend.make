# Empty compiler generated dependencies file for ablation_multi_gpu.
# This may be replaced when dependencies are built.
