file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_gpu.dir/ablation_multi_gpu.cc.o"
  "CMakeFiles/ablation_multi_gpu.dir/ablation_multi_gpu.cc.o.d"
  "ablation_multi_gpu"
  "ablation_multi_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
