/**
 * @file
 * Performance cost models for the simulated kernel libraries.
 *
 * These constants are the simulated hardware's ground truth — the
 * counterpart of cuBLAS/OpenAI-GEMM microarchitectural behaviour on a
 * P100 (paper §3.1, Table 1). Astra never reads them; it measures.
 *
 * Library characters:
 *  - `cublas`: large tiles, efficiency grows with K, supports split-K,
 *    occupancy-capped (register pressure). Best for deep-K GEMMs.
 *  - `oai_1`: 64x64 tiles, quick ramp-up, no split-K. Best for wide-N
 *    GEMMs with moderate K.
 *  - `oai_2`: skinny 32x128 tiles, low peak, penalized on wide N.
 *    Occasionally best for very small or narrow GEMMs.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/gpu.h"

namespace astra {

/** Which GEMM library implementation to use. */
enum class GemmLib
{
    Cublas,
    Oai1,
    Oai2,
};

/** Number of GEMM libraries (for exploration loops). */
constexpr int kNumGemmLibs = 3;

/** Short display name ("cublas", "oai_1", "oai_2"). */
std::string gemm_lib_name(GemmLib lib);

/** Problem size of a single GEMM: C[m,n] = A[m,k] * B[k,n]. */
struct GemmShape
{
    int64_t m = 0;
    int64_t n = 0;
    int64_t k = 0;
};

/** Device cost of one kernel, in simulator units. */
struct KernelCost
{
    int64_t blocks = 1;
    double block_ns = 0.0;
    double setup_ns = 0.0;
    int max_sms = 0;  ///< 0 = uncapped
};

/**
 * Cost of a single GEMM under the given library. The library performs
 * its own internal tile / split-K selection (static vendor knowledge),
 * so the returned cost is the best that library can do for the shape.
 */
KernelCost gemm_cost(GemmLib lib, const GemmShape& shape,
                     const GpuConfig& cfg);

/**
 * How a fused kernel combines its member GEMMs (paper §3.2).
 *
 * MStack/KStack are the "one large GEMM" forms: the members' operands
 * are contiguous in memory, so the fused kernel addresses them as one
 * taller (M) or deeper (K) matrix and the tile padding of the small
 * members amortizes away. Batched is a strided-batched kernel: one
 * launch and full concurrency, but per-member padding remains.
 */
enum class FusionAxis
{
    Batched,
    MStack,
    KStack,
};

/**
 * Cost of a fused GEMM over `batch` sub-GEMMs of equal shape launched
 * as one kernel, combined along the given axis.
 */
KernelCost fused_gemm_cost(GemmLib lib, const GemmShape& shape,
                           int64_t batch, const GpuConfig& cfg,
                           FusionAxis axis = FusionAxis::Batched);

/**
 * Cost of a memory-bound elementwise-style kernel that moves
 * `numel * 4 * passes` bytes (passes = input tensors + output tensors).
 * @param flops_per_elem extra arithmetic per element (e.g. exp()).
 */
KernelCost elementwise_cost(int64_t numel, int passes,
                            const GpuConfig& cfg,
                            double flops_per_elem = 1.0);

/**
 * Cost of a cuDNN-style compound recurrent-layer kernel processing
 * `steps` timesteps of `gemm_flops_per_step` in one launch.
 *
 * The efficiency curve mirrors cuDNN's observable behaviour: small
 * batches underfill the pipes; at batch >= 64 an algorithm switch
 * recovers efficiency; hidden sizes above 1024 lose the persistent
 * algorithm (shared-memory limit) — the paper's PTB-large hidden=1500
 * case; off-64 hidden sizes pad; and single-step calls cannot amortize
 * streaming the weights in.
 */
KernelCost compound_rnn_cost(double gemm_flops_per_step, int64_t steps,
                             int64_t batch, int64_t hidden,
                             const GpuConfig& cfg);

/**
 * Cost of one interconnect transfer of `bytes` over a ring link
 * (a ring-allreduce chunk send+reduce). `link_gbps` is giga*bits* per
 * second; `latency_us` is per-message software + wire latency.
 *
 * The transfer occupies zero SMs (copy/NIC engines do the work on real
 * hardware), so it is all setup: a serial phase on the comm stream that
 * overlaps freely with compute kernels but serializes against other
 * transfers on the same link — exactly the FIFO semantics of a stream.
 */
KernelCost comm_transfer_cost(double bytes, double link_gbps,
                              double latency_us);

}  // namespace astra
