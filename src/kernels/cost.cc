#include "kernels/cost.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace astra {

std::string
gemm_lib_name(GemmLib lib)
{
    switch (lib) {
      case GemmLib::Cublas: return "cublas";
      case GemmLib::Oai1: return "oai_1";
      case GemmLib::Oai2: return "oai_2";
    }
    return "?";
}

namespace {

/** One internal tile configuration of a GEMM library. */
struct Tile
{
    int64_t tm;
    int64_t tn;
    double peak_eff;     ///< efficiency at K -> infinity
    double k_half;       ///< K at which efficiency reaches half of peak
    int max_sms;         ///< occupancy cap (register/smem pressure)
    double setup_ns;
    double n_penalty;    ///< 0 = none; else eff /= (1 + n/n_penalty)
    bool split_k;        ///< library supports split-K for this tile
};

/** Analytic best-case runtime used for the library's internal choice. */
double
estimate_ns(const KernelCost& c, const GpuConfig& cfg)
{
    const double sms = static_cast<double>(
        c.max_sms > 0 ? std::min(c.max_sms, cfg.num_sms) : cfg.num_sms);
    const double waves =
        static_cast<double>(c.blocks) / std::min(static_cast<double>(
                                            c.blocks), sms);
    return c.setup_ns + waves * c.block_ns;
}

/** Cost of the shape under one tile with a given split-K factor. */
KernelCost
tile_cost(const Tile& t, const GemmShape& s, int64_t split,
          const GpuConfig& cfg, int64_t batch)
{
    KernelCost c;
    const int64_t k_chunk = (s.k + split - 1) / split;
    double eff = t.peak_eff * static_cast<double>(s.k) /
                 (static_cast<double>(s.k) + t.k_half);
    if (t.n_penalty > 0.0)
        eff /= 1.0 + static_cast<double>(s.n) / t.n_penalty;
    eff = std::max(eff, 0.01);
    const int64_t blocks_per =
        ((s.m + t.tm - 1) / t.tm) * ((s.n + t.tn - 1) / t.tn) * split;
    c.blocks = blocks_per * batch;
    const double block_flops =
        2.0 * static_cast<double>(t.tm) * static_cast<double>(t.tn) *
        static_cast<double>(k_chunk);
    c.block_ns = block_flops / (eff * cfg.flops_per_sm_ns);
    // Split-K pays a cross-block reduction at the end.
    c.setup_ns = t.setup_ns + (split > 1 ? 2500.0 : 0.0);
    c.max_sms = t.max_sms;
    return c;
}

/** Library's own tile + split-K selection (vendor static knowledge). */
KernelCost
library_cost(GemmLib lib, const GemmShape& s, const GpuConfig& cfg,
             int64_t batch)
{
    // Tile menus. cuBLAS carries several tiles and split-K; the OpenAI
    // libraries each ship one specialized tile without split-K.
    // No library ships tiles narrower than 32 rows (and cuBLAS none
    // below 64): small mini-batches pad heavily, which is what makes
    // per-gate GEMMs slow and batched fusion profitable (§3.2).
    static const Tile cublas_tiles[] = {
        {128, 64, 0.88, 900.0, 48, 1800.0, 0.0, true},
        {64, 64, 0.74, 320.0, 52, 1500.0, 0.0, true},
    };
    static const Tile oai1_tiles[] = {
        {64, 64, 0.83, 360.0, 56, 1000.0, 0.0, false},
        {32, 64, 0.38, 280.0, 56, 900.0, 0.0, false},
    };
    static const Tile oai2_tiles[] = {
        {32, 128, 0.62, 240.0, 56, 900.0, 1400.0, false},
    };

    const Tile* tiles = nullptr;
    size_t count = 0;
    switch (lib) {
      case GemmLib::Cublas:
        tiles = cublas_tiles;
        count = std::size(cublas_tiles);
        break;
      case GemmLib::Oai1:
        tiles = oai1_tiles;
        count = std::size(oai1_tiles);
        break;
      case GemmLib::Oai2:
        tiles = oai2_tiles;
        count = std::size(oai2_tiles);
        break;
    }

    KernelCost best;
    double best_ns = 0.0;
    bool first = true;
    for (size_t i = 0; i < count; ++i) {
        const Tile& t = tiles[i];
        for (int64_t split : {1, 2, 4, 8}) {
            if (split > 1 && (!t.split_k || s.k / split < 64))
                continue;
            const KernelCost c = tile_cost(t, s, split, cfg, batch);
            const double est = estimate_ns(c, cfg);
            if (first || est < best_ns) {
                best = c;
                best_ns = est;
                first = false;
            }
        }
    }
    return best;
}

}  // namespace

KernelCost
gemm_cost(GemmLib lib, const GemmShape& shape, const GpuConfig& cfg)
{
    ASTRA_ASSERT(shape.m > 0 && shape.n > 0 && shape.k > 0,
                 "bad gemm shape");
    return library_cost(lib, shape, cfg, 1);
}

KernelCost
fused_gemm_cost(GemmLib lib, const GemmShape& shape, int64_t batch,
                const GpuConfig& cfg, FusionAxis axis)
{
    ASTRA_ASSERT(batch >= 1);
    switch (axis) {
      case FusionAxis::MStack:
        return library_cost(
            lib, {shape.m * batch, shape.n, shape.k}, cfg, 1);
      case FusionAxis::KStack:
        return library_cost(
            lib, {shape.m, shape.n, shape.k * batch}, cfg, 1);
      case FusionAxis::Batched:
        break;
    }
    return library_cost(lib, shape, cfg, batch);
}

KernelCost
elementwise_cost(int64_t numel, int passes, const GpuConfig& cfg,
                 double flops_per_elem)
{
    ASTRA_ASSERT(numel >= 0 && passes >= 1);
    constexpr int64_t kBlockElems = 4096;
    KernelCost c;
    c.blocks = std::max<int64_t>(1, (numel + kBlockElems - 1) / kBlockElems);
    // A single block streams from HBM at a few times its fair bandwidth
    // share (it cannot saturate the device alone).
    const double per_sm_bytes_ns =
        4.0 * cfg.hbm_gbps / static_cast<double>(cfg.num_sms);
    const double bytes_per_block =
        static_cast<double>(kBlockElems) * 4.0 * passes;
    const double mem_ns = bytes_per_block / per_sm_bytes_ns;
    const double alu_ns = static_cast<double>(kBlockElems) *
                          flops_per_elem / cfg.flops_per_sm_ns;
    c.block_ns = std::max(mem_ns, alu_ns);
    c.setup_ns = 400.0;
    c.max_sms = 0;
    return c;
}

KernelCost
compound_rnn_cost(double gemm_flops_per_step, int64_t steps, int64_t batch,
                  int64_t hidden, const GpuConfig& cfg)
{
    double eff = 0.75;
    // Small batches underfill the math pipes...
    eff *= static_cast<double>(batch) / (static_cast<double>(batch) + 40.0);
    // ...until the large-batch algorithm switch recovers efficiency.
    if (batch >= 64)
        eff *= 1.35;
    // Hidden sizes beyond the shared-memory budget lose the persistent
    // algorithm (the Table 5 PTB-large situation).
    if (hidden > 1024)
        eff *= 0.75;
    // Off-tiling hidden sizes pad and spill.
    const double pad64 =
        static_cast<double>((hidden + 63) / 64 * 64);
    const double fit = static_cast<double>(hidden) / pad64;
    eff *= fit * fit;
    // Short calls pay the weight stream-in without amortizing it.
    eff *= static_cast<double>(steps) / (static_cast<double>(steps) + 0.5);
    const double total_flops =
        gemm_flops_per_step * static_cast<double>(steps);
    KernelCost c;
    c.blocks = cfg.num_sms;
    c.block_ns = total_flops /
                 (eff * cfg.flops_per_sm_ns *
                  static_cast<double>(cfg.num_sms));
    c.setup_ns = 3000.0;
    c.max_sms = 0;
    return c;
}

KernelCost
comm_transfer_cost(double bytes, double link_gbps, double latency_us)
{
    ASTRA_ASSERT(link_gbps > 0.0);
    KernelCost c;
    c.blocks = 0;  // no SMs: DMA/NIC engine does the transfer
    c.block_ns = 0.0;
    // Gigabits/s: 1 Gbit/s moves one bit per ns, so ns = bits / gbps.
    c.setup_ns = bytes * 8.0 / link_gbps + latency_us * 1e3;
    c.max_sms = 0;
    return c;
}

}  // namespace astra
