/**
 * @file
 * The model zoo: the five models of the paper's evaluation (§6.1),
 * written the way a researcher writes a long-tail model — separate
 * small GEMMs per gate, explicit elementwise gating — because that
 * naive form is exactly what Astra's enumerator mines for fusion sets.
 *
 *  (a) MI-LSTM (Wu et al.)          — multiplicative integration LSTM
 *  (b) SC-RNN (Mikolov et al.)      — structurally constrained RNN
 *  (c) subLSTM (Costa et al.)       — subtractive-gating LSTM
 *  (d) Stacked LSTM (PTB "large")   — fully cuDNN-coverable
 *  (e) GNMT-style encoder/decoder   — cuDNN-coverable except attention
 *  (f) RHN (Zilly et al.)           — recurrent highway network
 *  (g) LSTM with Attention          — per-step attention readout; the
 *      remaining long-tail structure the paper's introduction names
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autodiff/autodiff.h"
#include "baselines/cudnn.h"
#include "graph/builder.h"

namespace astra {

/** Which model to build. */
enum class ModelKind
{
    Scrnn,
    MiLstm,
    SubLstm,
    StackedLstm,
    Gnmt,
    Rhn,
    AttnLstm,
};

/** Display name ("SC-RNN", ...). */
std::string model_name(ModelKind kind);

/** Hyper-parameters of a model instance. */
struct ModelConfig
{
    int64_t batch = 16;
    int64_t seq_len = 10;
    int64_t hidden = 256;
    int64_t embed_dim = 256;    ///< input width (embedding width)
    int64_t vocab = 1000;
    int64_t layers = 1;         ///< recurrent depth (StackedLstm: 2)
    int64_t rhn_depth = 3;      ///< RHN: highway micro-steps per step

    /** Include the embedding front end (§6.6 removes it for XLA). */
    bool include_embedding = true;

    /** Append loss and the autodiff backward pass. */
    bool backward = true;
};

/** A constructed model: graph + metadata. */
struct BuiltModel
{
    std::unique_ptr<GraphBuilder> builder;
    NodeId loss = kInvalidNode;
    BackwardResult grads;

    /** Layers absorbable by the cuDNN compound baseline (may be empty). */
    std::vector<RnnLayerSpec> cudnn_layers;

    std::string name;
    ModelConfig config;

    const Graph& graph() const { return builder->graph(); }
};

/** Build one of the five evaluation models. */
BuiltModel build_model(ModelKind kind, const ModelConfig& config);

}  // namespace astra
