/**
 * @file
 * Synthetic training data and binding helpers.
 *
 * The optimization behaviour of a DNN training job depends only on
 * tensor shapes, never values (paper §4.1), so random tokens stand in
 * for PTB/Hutter. The sentence-length sampler mimics the PTB length
 * distribution the paper calibrated its five buckets on (§6.5).
 */
#pragma once

#include <map>

#include "graph/graph.h"
#include "runtime/tensor_map.h"
#include "support/rng.h"

namespace astra {

/** Fill every Param node's buffer with scaled random values. */
void bind_params(const Graph& graph, const TensorMap& tmap, Rng& rng);

/** Fill every Input / InputIds node with a fresh random mini-batch. */
void bind_inputs(const Graph& graph, const TensorMap& tmap, Rng& rng);

/** bind_params + bind_inputs. */
void bind_all(const Graph& graph, const TensorMap& tmap, Rng& rng);

/**
 * Sample a sentence length from a PTB-like distribution (mean ~21,
 * heavy right tail to ~80).
 */
int sample_ptb_length(Rng& rng);

/** SGD step: param -= lr * grad, on the host (between mini-batches). */
void apply_sgd(const Graph& graph, const TensorMap& tmap,
               const std::map<NodeId, NodeId>& param_grads, float lr);

}  // namespace astra
