#include "models/data.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace astra {

void
bind_params(const Graph& graph, const TensorMap& tmap, Rng& rng)
{
    for (const Node& n : graph.nodes()) {
        if (n.kind != OpKind::Param)
            continue;
        float* p = tmap.f32(n.id);
        // Glorot-ish scaling keeps activations in a sane range so the
        // value-preservation tests compare meaningful numbers.
        const float scale =
            0.7f / std::sqrt(static_cast<float>(n.desc.shape.cols()));
        for (int64_t i = 0; i < n.desc.shape.numel(); ++i)
            p[i] = rng.next_float(-scale, scale);
    }
}

void
bind_inputs(const Graph& graph, const TensorMap& tmap, Rng& rng)
{
    for (const Node& n : graph.nodes()) {
        if (n.kind == OpKind::Input) {
            float* p = tmap.f32(n.id);
            for (int64_t i = 0; i < n.desc.shape.numel(); ++i)
                p[i] = rng.next_float(-0.5f, 0.5f);
        } else if (n.kind == OpKind::InputIds) {
            int32_t* p = tmap.i32(n.id);
            const int64_t range = std::max<int64_t>(n.length, 1);
            for (int64_t i = 0; i < n.desc.shape.numel(); ++i)
                p[i] = static_cast<int32_t>(rng.next_below(
                    static_cast<uint64_t>(range)));
        }
    }
}

void
bind_all(const Graph& graph, const TensorMap& tmap, Rng& rng)
{
    bind_params(graph, tmap, rng);
    bind_inputs(graph, tmap, rng);
}

int
sample_ptb_length(Rng& rng)
{
    // Log-normal-ish: exp(mu + sigma * z), clipped to [4, 83].
    const double z = rng.next_gaussian();
    const double len = std::exp(2.95 + 0.45 * z);
    return static_cast<int>(std::clamp(len, 4.0, 83.0));
}

void
apply_sgd(const Graph& graph, const TensorMap& tmap,
          const std::map<NodeId, NodeId>& param_grads, float lr)
{
    for (const auto& [param, grad] : param_grads) {
        float* p = tmap.f32(param);
        const float* g = tmap.f32(grad);
        const int64_t numel = graph.node(param).desc.shape.numel();
        for (int64_t i = 0; i < numel; ++i)
            p[i] -= lr * g[i];
    }
}

}  // namespace astra
