#include "models/models.h"

#include "support/logging.h"

namespace astra {

std::string
model_name(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Scrnn: return "SC-RNN";
      case ModelKind::MiLstm: return "MI-LSTM";
      case ModelKind::SubLstm: return "subLSTM";
      case ModelKind::StackedLstm: return "StackedLSTM";
      case ModelKind::Gnmt: return "GNMT";
      case ModelKind::Rhn: return "RHN";
      case ModelKind::AttnLstm: return "LSTM+Attn";
    }
    return "?";
}

namespace {

/** Per-gate parameters of a recurrent cell. */
struct GateParams
{
    NodeId w = kInvalidNode;  ///< input weights  [in, H]
    NodeId u = kInvalidNode;  ///< recurrent weights [H, H]
    NodeId b = kInvalidNode;  ///< bias [H]
};

GateParams
make_gate(GraphBuilder& b, int64_t in_dim, int64_t hidden,
          const std::string& name)
{
    GateParams g;
    g.w = b.param({in_dim, hidden}, name + ".w");
    g.u = b.param({hidden, hidden}, name + ".u");
    g.b = b.param({hidden}, name + ".b");
    return g;
}

/** x*W + h*U + b: the naive two-GEMM gate preactivation. */
NodeId
gate_pre(GraphBuilder& b, NodeId x, NodeId h, const GateParams& g)
{
    return b.bias_add(b.add(b.matmul(x, g.w), b.matmul(h, g.u)), g.b);
}

struct LstmParams
{
    GateParams i, f, o, c;
};

LstmParams
make_lstm_params(GraphBuilder& b, int64_t in_dim, int64_t hidden,
                 const std::string& prefix)
{
    LstmParams p;
    p.i = make_gate(b, in_dim, hidden, prefix + ".i");
    p.f = make_gate(b, in_dim, hidden, prefix + ".f");
    p.o = make_gate(b, in_dim, hidden, prefix + ".o");
    p.c = make_gate(b, in_dim, hidden, prefix + ".c");
    return p;
}

struct RnnState
{
    NodeId h = kInvalidNode;
    NodeId c = kInvalidNode;  ///< cell (LSTM variants) or context (SCRN)
};

/** Standard LSTM cell, separate GEMMs per gate. */
RnnState
lstm_cell(GraphBuilder& b, NodeId x, const RnnState& prev,
          const LstmParams& p)
{
    const NodeId i = b.sigmoid(gate_pre(b, x, prev.h, p.i));
    const NodeId f = b.sigmoid(gate_pre(b, x, prev.h, p.f));
    const NodeId o = b.sigmoid(gate_pre(b, x, prev.h, p.o));
    const NodeId g = b.tanh(gate_pre(b, x, prev.h, p.c));
    const NodeId c = b.add(b.mul(f, prev.c), b.mul(i, g));
    const NodeId h = b.mul(o, b.tanh(c));
    return {h, c};
}

/** MI-LSTM gate: multiplicative integration of xW and hU [36]. */
NodeId
mi_gate_pre(GraphBuilder& b, NodeId x, NodeId h, const GateParams& g)
{
    const NodeId xw = b.matmul(x, g.w);
    const NodeId hu = b.matmul(h, g.u);
    const NodeId second_order = b.mul(xw, hu);
    const NodeId first_order =
        b.add(b.scale(xw, 0.5f), b.scale(hu, 0.5f));
    return b.bias_add(b.add(second_order, first_order), g.b);
}

RnnState
milstm_cell(GraphBuilder& b, NodeId x, const RnnState& prev,
            const LstmParams& p)
{
    const NodeId i = b.sigmoid(mi_gate_pre(b, x, prev.h, p.i));
    const NodeId f = b.sigmoid(mi_gate_pre(b, x, prev.h, p.f));
    const NodeId o = b.sigmoid(mi_gate_pre(b, x, prev.h, p.o));
    const NodeId g = b.tanh(mi_gate_pre(b, x, prev.h, p.c));
    const NodeId c = b.add(b.mul(f, prev.c), b.mul(i, g));
    const NodeId h = b.mul(o, b.tanh(c));
    return {h, c};
}

/** subLSTM cell: subtractive gating [8]. */
RnnState
sublstm_cell(GraphBuilder& b, NodeId x, const RnnState& prev,
             const LstmParams& p)
{
    const NodeId i = b.sigmoid(gate_pre(b, x, prev.h, p.i));
    const NodeId f = b.sigmoid(gate_pre(b, x, prev.h, p.f));
    const NodeId z = b.sigmoid(gate_pre(b, x, prev.h, p.o));
    const NodeId c = b.add(b.mul(f, prev.c), b.sub(z, i));
    const NodeId h = b.sub(b.sigmoid(c), b.sigmoid(gate_pre(
                                             b, x, prev.h, p.c)));
    return {h, c};
}

/** One highway micro-step of an RHN cell [39]. */
struct RhnDepthParams
{
    NodeId wh = kInvalidNode;  ///< input -> h proposal (depth 0 only)
    NodeId wt = kInvalidNode;  ///< input -> transform gate (depth 0)
    NodeId rh = kInvalidNode;  ///< state -> h proposal
    NodeId rt = kInvalidNode;  ///< state -> transform gate
    NodeId bh = kInvalidNode;
    NodeId bt = kInvalidNode;
};

/**
 * RHN cell: a stack of highway micro-steps inside every timestep.
 * s <- h*t + s*(1-t), with the input injected at depth 0 only.
 */
NodeId
rhn_cell(GraphBuilder& b, NodeId x, NodeId state,
         const std::vector<RhnDepthParams>& depths)
{
    NodeId s = state;
    for (size_t d = 0; d < depths.size(); ++d) {
        const RhnDepthParams& p = depths[d];
        NodeId pre_h = b.matmul(s, p.rh);
        NodeId pre_t = b.matmul(s, p.rt);
        if (d == 0) {
            pre_h = b.add(pre_h, b.matmul(x, p.wh));
            pre_t = b.add(pre_t, b.matmul(x, p.wt));
        }
        const NodeId h = b.tanh(b.bias_add(pre_h, p.bh));
        const NodeId t = b.sigmoid(b.bias_add(pre_t, p.bt));
        s = b.add(b.mul(h, t), b.mul(s, b.one_minus(t)));
    }
    return s;
}

struct ScrnnParams
{
    NodeId a = kInvalidNode;  ///< input -> hidden     [D, H]
    NodeId bc = kInvalidNode; ///< input -> context    [D, H]
    NodeId pp = kInvalidNode; ///< context -> hidden   [H, H]
    NodeId r = kInvalidNode;  ///< hidden recurrence   [H, H]
};

/** SC-RNN cell: slow context unit + fast hidden unit [22]. */
RnnState
scrnn_cell(GraphBuilder& b, NodeId x, const RnnState& prev,
           const ScrnnParams& p)
{
    constexpr float kAlpha = 0.95f;
    const NodeId s = b.add(b.scale(b.matmul(x, p.bc), 1.0f - kAlpha),
                           b.scale(prev.c, kAlpha));
    const NodeId h = b.sigmoid(
        b.add(b.add(b.matmul(s, p.pp), b.matmul(x, p.a)),
              b.matmul(prev.h, p.r)));
    return {h, s};
}

/** Front end: per-timestep inputs, embedded or direct. */
std::vector<NodeId>
make_inputs(GraphBuilder& b, const ModelConfig& cfg, NodeId* table_out)
{
    std::vector<NodeId> xs;
    NodeId table = kInvalidNode;
    if (cfg.include_embedding)
        table = b.param({cfg.vocab, cfg.embed_dim}, "embed");
    for (int64_t t = 0; t < cfg.seq_len; ++t) {
        GraphBuilder::Scoped scope(b, "in/t" + std::to_string(t));
        if (cfg.include_embedding) {
            const NodeId ids = b.input_ids(cfg.batch, cfg.vocab,
                                           "ids" + std::to_string(t));
            xs.push_back(b.embedding(table, ids));
        } else {
            xs.push_back(b.input({cfg.batch, cfg.embed_dim},
                                 "x" + std::to_string(t)));
        }
    }
    *table_out = table;
    return xs;
}

/** Output head + loss + backward pass. */
void
finish_model(BuiltModel* m, NodeId final_h, int64_t width)
{
    GraphBuilder& b = *m->builder;
    const ModelConfig& cfg = m->config;
    NodeId logits;
    {
        GraphBuilder::Scoped scope(b, "out");
        const NodeId wout = b.param({width, cfg.vocab}, "w_out");
        const NodeId bout = b.param({cfg.vocab}, "b_out");
        logits = b.bias_add(b.matmul(final_h, wout), bout);
    }
    b.graph().mark_output(logits);
    if (!cfg.backward)
        return;
    const NodeId labels = b.input_ids(cfg.batch, cfg.vocab, "labels");
    m->loss = b.cross_entropy(logits, labels);
    b.graph().mark_output(m->loss);
    m->grads = append_backward(b, m->loss);
}

/** Zero-initialized recurrent state sources. */
RnnState
make_state(GraphBuilder& b, int64_t batch, int64_t hidden,
           const std::string& name)
{
    return {b.input({batch, hidden}, name + ".h0"),
            b.input({batch, hidden}, name + ".c0")};
}

/** Stack of LSTM layers over the input sequence; returns top states. */
std::vector<NodeId>
run_lstm_stack(GraphBuilder& b, const ModelConfig& cfg,
               const std::vector<NodeId>& xs, int64_t layers,
               const std::string& scope_base,
               std::vector<RnnLayerSpec>* cudnn,
               std::vector<RnnState>* final_states)
{
    std::vector<LstmParams> params;
    std::vector<RnnState> states;
    for (int64_t l = 0; l < layers; ++l) {
        const int64_t in_dim = l == 0 ? cfg.embed_dim : cfg.hidden;
        params.push_back(make_lstm_params(
            b, in_dim, cfg.hidden,
            scope_base + std::to_string(l)));
        states.push_back(make_state(b, cfg.batch, cfg.hidden,
                                    scope_base + std::to_string(l)));
        if (cudnn) {
            RnnLayerSpec spec;
            spec.scope_prefix = scope_base + std::to_string(l) + "/";
            spec.fwd_gemm_flops_per_step =
                2.0 * static_cast<double>(cfg.batch) *
                (static_cast<double>(in_dim) + cfg.hidden) * 4.0 *
                static_cast<double>(cfg.hidden);
            spec.steps = cfg.seq_len;
            spec.batch = cfg.batch;
            spec.hidden = cfg.hidden;
            cudnn->push_back(std::move(spec));
        }
    }
    std::vector<NodeId> top;
    for (int64_t t = 0; t < cfg.seq_len; ++t) {
        NodeId x = xs[static_cast<size_t>(t)];
        for (int64_t l = 0; l < layers; ++l) {
            GraphBuilder::Scoped scope(
                b, scope_base + std::to_string(l) + "/t" +
                       std::to_string(t));
            states[static_cast<size_t>(l)] =
                lstm_cell(b, x, states[static_cast<size_t>(l)],
                          params[static_cast<size_t>(l)]);
            x = states[static_cast<size_t>(l)].h;
        }
        top.push_back(x);
    }
    if (final_states)
        *final_states = states;
    return top;
}

}  // namespace

BuiltModel
build_model(ModelKind kind, const ModelConfig& config)
{
    BuiltModel m;
    m.builder = std::make_unique<GraphBuilder>();
    m.name = model_name(kind);
    m.config = config;
    GraphBuilder& b = *m.builder;

    NodeId table = kInvalidNode;
    const std::vector<NodeId> xs = make_inputs(b, config, &table);

    switch (kind) {
      case ModelKind::Scrnn: {
        ScrnnParams p;
        p.a = b.param({config.embed_dim, config.hidden}, "scrnn.a");
        p.bc = b.param({config.embed_dim, config.hidden}, "scrnn.b");
        p.pp = b.param({config.hidden, config.hidden}, "scrnn.p");
        p.r = b.param({config.hidden, config.hidden}, "scrnn.r");
        RnnState s = make_state(b, config.batch, config.hidden, "scrnn");
        for (int64_t t = 0; t < config.seq_len; ++t) {
            GraphBuilder::Scoped scope(b, "scrnn/t" + std::to_string(t));
            s = scrnn_cell(b, xs[static_cast<size_t>(t)], s, p);
        }
        finish_model(&m, s.h, config.hidden);
        break;
      }
      case ModelKind::MiLstm: {
        const LstmParams p = make_lstm_params(b, config.embed_dim,
                                              config.hidden, "milstm");
        RnnState s = make_state(b, config.batch, config.hidden,
                                "milstm");
        for (int64_t t = 0; t < config.seq_len; ++t) {
            GraphBuilder::Scoped scope(b, "milstm/t" +
                                              std::to_string(t));
            s = milstm_cell(b, xs[static_cast<size_t>(t)], s, p);
        }
        finish_model(&m, s.h, config.hidden);
        break;
      }
      case ModelKind::SubLstm: {
        const LstmParams p = make_lstm_params(b, config.embed_dim,
                                              config.hidden, "sublstm");
        RnnState s = make_state(b, config.batch, config.hidden,
                                "sublstm");
        for (int64_t t = 0; t < config.seq_len; ++t) {
            GraphBuilder::Scoped scope(b, "sublstm/t" +
                                              std::to_string(t));
            s = sublstm_cell(b, xs[static_cast<size_t>(t)], s, p);
        }
        finish_model(&m, s.h, config.hidden);
        break;
      }
      case ModelKind::StackedLstm: {
        const std::vector<NodeId> top = run_lstm_stack(
            b, config, xs, std::max<int64_t>(config.layers, 2), "layer",
            &m.cudnn_layers, nullptr);
        finish_model(&m, top.back(), config.hidden);
        break;
      }
      case ModelKind::Rhn: {
        std::vector<RhnDepthParams> depths;
        for (int64_t d = 0; d < config.rhn_depth; ++d) {
            RhnDepthParams p;
            const std::string prefix = "rhn.d" + std::to_string(d);
            if (d == 0) {
                p.wh = b.param({config.embed_dim, config.hidden},
                               prefix + ".wh");
                p.wt = b.param({config.embed_dim, config.hidden},
                               prefix + ".wt");
            }
            p.rh = b.param({config.hidden, config.hidden},
                           prefix + ".rh");
            p.rt = b.param({config.hidden, config.hidden},
                           prefix + ".rt");
            p.bh = b.param({config.hidden}, prefix + ".bh");
            p.bt = b.param({config.hidden}, prefix + ".bt");
            depths.push_back(p);
        }
        NodeId s = b.input({config.batch, config.hidden}, "rhn.s0");
        for (int64_t t = 0; t < config.seq_len; ++t) {
            GraphBuilder::Scoped scope(b, "rhn/t" + std::to_string(t));
            s = rhn_cell(b, xs[static_cast<size_t>(t)], s, depths);
        }
        finish_model(&m, s, config.hidden);
        break;
      }
      case ModelKind::AttnLstm: {
        // Single LSTM layer with a Luong-style attention readout per
        // timestep over a learned memory (paper intro's "LSTM with
        // Attention" long-tail structure; cuDNN covers neither the
        // per-step readout nor its gradients).
        const LstmParams p = make_lstm_params(b, config.embed_dim,
                                              config.hidden, "attn_lstm");
        RnnState s = make_state(b, config.batch, config.hidden,
                                "attn_lstm");
        const int64_t attn = std::max<int64_t>(config.seq_len, 4);
        const NodeId ka = b.param({config.hidden, attn}, "attn.k");
        const NodeId va = b.param({attn, config.hidden}, "attn.v");
        const NodeId wc = b.param({2 * config.hidden, config.hidden},
                                  "attn.c");
        NodeId combined = kInvalidNode;
        for (int64_t t = 0; t < config.seq_len; ++t) {
            {
                GraphBuilder::Scoped scope(
                    b, "attn_lstm/t" + std::to_string(t));
                s = lstm_cell(b, xs[static_cast<size_t>(t)], s, p);
            }
            GraphBuilder::Scoped scope(b, "attn/t" + std::to_string(t));
            const NodeId scores = b.softmax(b.matmul(s.h, ka));
            const NodeId ctx = b.matmul(scores, va);
            combined = b.tanh(b.matmul(b.concat({s.h, ctx}), wc));
        }
        finish_model(&m, combined, config.hidden);
        break;
      }
      case ModelKind::Gnmt: {
        // Encoder stack.
        std::vector<RnnState> enc_final;
        const std::vector<NodeId> enc_top = run_lstm_stack(
            b, config, xs, config.layers * 4, "enc", &m.cudnn_layers,
            &enc_final);
        (void)enc_top;

        // Decoder inputs: target-side embeddings.
        std::vector<NodeId> dec_xs;
        for (int64_t t = 0; t < config.seq_len; ++t) {
            GraphBuilder::Scoped scope(b, "dec_in/t" +
                                              std::to_string(t));
            if (config.include_embedding) {
                const NodeId ids = b.input_ids(
                    config.batch, config.vocab,
                    "tgt" + std::to_string(t));
                dec_xs.push_back(b.embedding(table, ids));
            } else {
                dec_xs.push_back(b.input(
                    {config.batch, config.embed_dim},
                    "tgt" + std::to_string(t)));
            }
        }

        // Decoder stack, initialized from the encoder's final states.
        const int64_t dec_layers = config.layers * 4;
        std::vector<LstmParams> dparams;
        std::vector<RnnState> dstates;
        for (int64_t l = 0; l < dec_layers; ++l) {
            const int64_t in_dim = l == 0 ? config.embed_dim
                                          : config.hidden;
            dparams.push_back(make_lstm_params(
                b, in_dim, config.hidden, "dec" + std::to_string(l)));
            const RnnState& src = enc_final[static_cast<size_t>(
                l % static_cast<int64_t>(enc_final.size()))];
            dstates.push_back({b.copy(src.h), b.copy(src.c)});
            RnnLayerSpec spec;
            spec.scope_prefix = "dec" + std::to_string(l) + "/";
            spec.fwd_gemm_flops_per_step =
                2.0 * static_cast<double>(config.batch) *
                (static_cast<double>(in_dim) + config.hidden) * 4.0 *
                static_cast<double>(config.hidden);
            spec.steps = config.seq_len;
            spec.batch = config.batch;
            spec.hidden = config.hidden;
            // Attention decoders run cuDNN step-by-step in production
            // (the context feeds back); mirror that in the baseline.
            spec.per_step = true;
            m.cudnn_layers.push_back(std::move(spec));
        }

        // Attention over a projected encoder memory (Luong-style,
        // applied at the decoder output so cuDNN can still absorb the
        // recurrent layers; see DESIGN.md substitutions).
        const int64_t attn = config.seq_len;
        const NodeId ka = b.param({config.hidden, attn}, "attn.k");
        const NodeId va = b.param({attn, config.hidden}, "attn.v");
        const NodeId wc = b.param({2 * config.hidden, config.hidden},
                                  "attn.c");

        NodeId combined = kInvalidNode;
        for (int64_t t = 0; t < config.seq_len; ++t) {
            NodeId x = dec_xs[static_cast<size_t>(t)];
            for (int64_t l = 0; l < dec_layers; ++l) {
                GraphBuilder::Scoped scope(
                    b, "dec" + std::to_string(l) + "/t" +
                           std::to_string(t));
                dstates[static_cast<size_t>(l)] = lstm_cell(
                    b, x, dstates[static_cast<size_t>(l)],
                    dparams[static_cast<size_t>(l)]);
                x = dstates[static_cast<size_t>(l)].h;
            }
            GraphBuilder::Scoped scope(b, "attn/t" + std::to_string(t));
            const NodeId scores = b.softmax(b.matmul(x, ka));
            const NodeId ctx = b.matmul(scores, va);
            combined = b.tanh(b.matmul(b.concat({x, ctx}), wc));
        }
        finish_model(&m, combined, config.hidden);
        break;
      }
    }
    m.builder->graph().validate();
    return m;
}

}  // namespace astra
