/**
 * @file
 * An XLA-like static whole-graph optimizer (paper §6.6).
 *
 * XLA compiles ahead of time with heuristics and no measurement: it
 * fuses elementwise chains, fuses GEMM siblings maximally (always the
 * largest chunk), always uses the default library, and runs one
 * stream. Its known robustness failure is reproduced: embedding
 * lookups fall off the fast path and incur host round-trips, which is
 * why the paper evaluates XLA on embedding-free model variants.
 */
#pragma once

#include "core/search_space.h"
#include "runtime/plan.h"

namespace astra {

/** Tunables of the XLA-like baseline. */
struct XlaOptions
{
    /**
     * Host round-trip charged around each embedding op (ns). XLA's
     * fallback path for lookups blocks the stream, copies indices to
     * the host and gathers there (§6.6: "multiple transitions between
     * CPU and GPU for lookups"); a blocking sync + PCIe round trip
     * costs hundreds of microseconds, which is what made XLA up to 3x
     * slower than native TF on embedding models.
     */
    double embedding_host_sync_ns = 300000.0;

    /** Fuse elementwise chains (XLA's primary strength). */
    bool elementwise_fusion = true;

    /**
     * Statically fuse GEMM siblings at maximal chunk. Off by default:
     * the XLA of the paper's era fused elementwise/loop computations
     * but did not batch sibling GEMMs — which is exactly the gap
     * Astra_FK exploits in Table 9.
     */
    bool gemm_fusion = false;
};

/**
 * Build the XLA plan for a graph. Reuses the enumerator's structural
 * mining (the heuristics operate on the same patterns) but makes every
 * choice statically: maximal fusion, default library, single stream.
 */
ExecutionPlan xla_plan(const Graph& graph, const SearchSpace& space,
                       const XlaOptions& opts = {});

}  // namespace astra
