/**
 * @file
 * The cuDNN-style hand-optimized baseline (paper §2.4, §6.3).
 *
 * For models whose recurrent layers match a supported structure, the
 * whole layer (all timesteps) executes as one compound persistent
 * kernel per pass, like cudnnRNNForward / cudnnRNNBackward. Everything
 * outside covered layers (embeddings, loss, attention) dispatches as
 * native single kernels — exactly the paper's "GNMT is mostly covered
 * by cuDNN except the Attention module" situation.
 */
#pragma once

#include <string>
#include <vector>

#include "runtime/plan.h"
#include "sim/gpu.h"

namespace astra {

/** One recurrent layer that a compound kernel can absorb. */
struct RnnLayerSpec
{
    /** All nodes whose scope starts with this prefix belong here. */
    std::string scope_prefix;

    /** GEMM flops of one forward timestep of the layer. */
    double fwd_gemm_flops_per_step = 0.0;

    int64_t steps = 0;
    int64_t batch = 0;
    int64_t hidden = 0;

    /**
     * Launch one compound per timestep instead of per layer. Real
     * attention decoders feed the context back into the recurrence, so
     * cuDNN can only be called step-by-step there; our GNMT keeps the
     * whole-layer call legal, but the baseline mirrors the production
     * per-step pattern for decoder layers.
     */
    bool per_step = false;
};

/**
 * Build the cuDNN-path plan: one CompoundRnn step per (layer, pass),
 * native singles elsewhere, single stream.
 */
ExecutionPlan cudnn_plan(const Graph& graph,
                         const std::vector<RnnLayerSpec>& layers,
                         const GpuConfig& cfg);

}  // namespace astra
