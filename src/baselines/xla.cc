#include "baselines/xla.h"

#include "core/scheduler.h"
#include "support/logging.h"

namespace astra {

ExecutionPlan
xla_plan(const Graph& graph, const SearchSpace& space,
         const XlaOptions& opts)
{
    // Static choice: strategy 0 (greedy-by-flops layout), maximal
    // chunks, default library everywhere — no measurement anywhere.
    ScheduleConfig cfg;
    cfg.strategy = 0;
    cfg.elementwise_fusion = opts.elementwise_fusion;
    cfg.use_streams = false;
    cfg.group_chunk.assign(space.groups.size(), 1);
    cfg.group_lib.assign(space.groups.size(), GemmLib::Cublas);
    if (opts.gemm_fusion)
        for (const FusionGroup& g : space.groups)
            cfg.group_chunk[static_cast<size_t>(g.id)] =
                g.chunk_options.back();

    Scheduler scheduler(graph, space);
    ExecutionPlan plan = scheduler.build(cfg);

    // The embedding pathology: lookups bounce through the host.
    for (PlanStep& step : plan.steps) {
        if (step.nodes.size() != 1)
            continue;
        const OpKind kind = graph.node(step.nodes[0]).kind;
        if (kind == OpKind::Embedding || kind == OpKind::EmbeddingGrad)
            step.extra_setup_ns += opts.embedding_host_sync_ns;
    }
    return plan;
}

}  // namespace astra
