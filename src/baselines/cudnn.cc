#include "baselines/cudnn.h"

#include "kernels/cost.h"
#include "runtime/plan_utils.h"
#include "support/logging.h"

namespace astra {

ExecutionPlan
cudnn_plan(const Graph& graph, const std::vector<RnnLayerSpec>& layers,
           const GpuConfig& cfg)
{
    std::vector<bool> covered(static_cast<size_t>(graph.size()), false);
    std::vector<PlanStep> steps;

    auto starts_with = [](const std::string& s, const std::string& p) {
        return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
    };

    for (const RnnLayerSpec& layer : layers) {
        // Forward and backward halves of the layer each become one
        // compound launch (cudnnRNNForward / cudnnRNNBackward; the
        // backward fuses data- and weight-gradients, ~2x the flops) —
        // or one per timestep for per_step layers.
        std::vector<std::string> prefixes;
        if (layer.per_step) {
            for (int64_t t = 0; t < layer.steps; ++t)
                prefixes.push_back(layer.scope_prefix + "t" +
                                   std::to_string(t));
        } else {
            prefixes.push_back(layer.scope_prefix);
        }
        for (const Pass pass : {Pass::Forward, Pass::Backward}) {
            for (const std::string& prefix : prefixes) {
                PlanStep step;
                step.kind = StepKind::CompoundRnn;
                for (const Node& n : graph.nodes()) {
                    if (n.pass != pass || op_is_source(n.kind))
                        continue;
                    if (!starts_with(n.scope, prefix))
                        continue;
                    if (covered[static_cast<size_t>(n.id)])
                        continue;
                    covered[static_cast<size_t>(n.id)] = true;
                    step.nodes.push_back(n.id);
                }
                if (step.nodes.empty())
                    continue;
                const double flops =
                    layer.fwd_gemm_flops_per_step *
                    (pass == Pass::Forward ? 1.0 : 2.0);
                const int64_t steps_per_call =
                    layer.per_step ? 1 : layer.steps;
                step.compound_cost =
                    compound_rnn_cost(flops, steps_per_call,
                                      layer.batch, layer.hidden, cfg);
                step.compound_name =
                    "cudnn_rnn." + prefix +
                    (pass == Pass::Forward ? ".fwd" : ".bwd");
                steps.push_back(std::move(step));
            }
        }
    }

    for (const Node& n : graph.nodes()) {
        if (covered[static_cast<size_t>(n.id)] || op_is_source(n.kind))
            continue;
        PlanStep step;
        step.kind = StepKind::Single;
        step.nodes = {n.id};
        steps.push_back(std::move(step));
    }

    ExecutionPlan plan;
    plan.num_streams = 1;
    plan.steps = topo_sort_steps(std::move(steps), graph);
    return plan;
}

}  // namespace astra
