/**
 * @file
 * Element types for tensors. The reproduction computes in FP32 on the
 * host; other entries exist so descriptors can express mixed-precision
 * models and so the simulator can charge bandwidth correctly.
 */
#pragma once

#include <cstddef>
#include <string>

namespace astra {

/** Tensor element type. */
enum class DType
{
    F32,
    F16,
    I32,
    I64,
};

/** Size in bytes of one element of the given type. */
inline size_t
dtype_size(DType t)
{
    switch (t) {
      case DType::F32: return 4;
      case DType::F16: return 2;
      case DType::I32: return 4;
      case DType::I64: return 8;
    }
    return 4;
}

/** Human-readable name. */
inline std::string
dtype_name(DType t)
{
    switch (t) {
      case DType::F32: return "f32";
      case DType::F16: return "f16";
      case DType::I32: return "i32";
      case DType::I64: return "i64";
    }
    return "?";
}

}  // namespace astra
