/**
 * @file
 * Host tensors. Simulated-GPU memory is backed by host buffers so that
 * every kernel actually computes its FP32 result; this is what lets the
 * test suite assert that Astra's optimizations are value-preserving
 * (paper §6.7) rather than trusting the claim.
 */
#pragma once

#include <vector>

#include "support/rng.h"
#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace astra {

/** Shape + dtype, without storage. The graph IR carries these. */
struct TensorDesc
{
    Shape shape;
    DType dtype = DType::F32;

    /** Total bytes of a dense tensor of this description. */
    size_t
    bytes() const
    {
        return static_cast<size_t>(shape.numel()) * dtype_size(dtype);
    }

    bool
    operator==(const TensorDesc& o) const
    {
        return shape == o.shape && dtype == o.dtype;
    }
};

/** A dense FP32 host tensor with storage. */
class HostTensor
{
  public:
    HostTensor() = default;
    explicit HostTensor(Shape shape)
        : shape_(std::move(shape)),
          data_(static_cast<size_t>(shape_.numel()), 0.0f)
    {}

    const Shape& shape() const { return shape_; }
    int64_t numel() const { return shape_.numel(); }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    float& at(int64_t i) { return data_[static_cast<size_t>(i)]; }
    float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

    /** 2-D accessor over the rows()/cols() matrix view. */
    float&
    at(int64_t r, int64_t c)
    {
        return data_[static_cast<size_t>(r * shape_.cols() + c)];
    }
    float
    at(int64_t r, int64_t c) const
    {
        return data_[static_cast<size_t>(r * shape_.cols() + c)];
    }

    /** Set every element to v. */
    void fill(float v);

    /** Fill with uniform values in [lo, hi) from rng. */
    void fill_random(Rng& rng, float lo = -1.0f, float hi = 1.0f);

    /** Largest absolute element-wise difference vs another tensor. */
    static double max_abs_diff(const HostTensor& a, const HostTensor& b);

    /** True when shapes match and elements differ by at most tol. */
    static bool allclose(const HostTensor& a, const HostTensor& b,
                         double tol = 1e-5);

  private:
    Shape shape_;
    std::vector<float> data_;
};

}  // namespace astra
