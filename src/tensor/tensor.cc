#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

namespace astra {

void
HostTensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
HostTensor::fill_random(Rng& rng, float lo, float hi)
{
    for (auto& x : data_)
        x = rng.next_float(lo, hi);
}

double
HostTensor::max_abs_diff(const HostTensor& a, const HostTensor& b)
{
    if (a.shape() != b.shape())
        return std::numeric_limits<double>::infinity();
    double worst = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i)
        worst = std::max(worst,
                         std::abs(static_cast<double>(a.at(i) - b.at(i))));
    return worst;
}

bool
HostTensor::allclose(const HostTensor& a, const HostTensor& b, double tol)
{
    return max_abs_diff(a, b) <= tol;
}

}  // namespace astra
