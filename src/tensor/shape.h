/**
 * @file
 * Tensor shapes. Shapes are the only property of a mini-batch that
 * influences cost (paper §4.1), so they appear everywhere: in graph
 * nodes, kernel descriptors and profile-index keys.
 */
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace astra {

/** An N-dimensional tensor shape (row-major). */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
    explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

    /** Number of dimensions. */
    int rank() const { return static_cast<int>(dims_.size()); }

    /** Size of dimension i (negative i counts from the back). */
    int64_t dim(int i) const;

    /** Total element count (1 for a scalar/rank-0 shape). */
    int64_t numel() const;

    /** Rows of a matrix view: product of all but the last dimension. */
    int64_t rows() const;

    /** Columns of a matrix view: the last dimension. */
    int64_t cols() const;

    const std::vector<int64_t>& dims() const { return dims_; }

    bool operator==(const Shape& o) const { return dims_ == o.dims_; }
    bool operator!=(const Shape& o) const { return dims_ != o.dims_; }

    /** e.g. "[64, 1024]". */
    std::string to_string() const;

    /** Stable key fragment for profile indexing, e.g. "64x1024". */
    std::string key() const;

  private:
    std::vector<int64_t> dims_;
};

}  // namespace astra
