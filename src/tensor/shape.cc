#include "tensor/shape.h"

#include <sstream>

#include "support/logging.h"

namespace astra {

int64_t
Shape::dim(int i) const
{
    if (i < 0)
        i += rank();
    ASTRA_ASSERT(i >= 0 && i < rank(), "dim index out of range");
    return dims_[static_cast<size_t>(i)];
}

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int64_t d : dims_)
        n *= d;
    return n;
}

int64_t
Shape::rows() const
{
    ASTRA_ASSERT(rank() >= 1);
    int64_t r = 1;
    for (int i = 0; i + 1 < rank(); ++i)
        r *= dims_[static_cast<size_t>(i)];
    return r;
}

int64_t
Shape::cols() const
{
    ASTRA_ASSERT(rank() >= 1);
    return dims_.back();
}

std::string
Shape::to_string() const
{
    std::ostringstream os;
    os << "[";
    for (int i = 0; i < rank(); ++i)
        os << (i ? ", " : "") << dims_[static_cast<size_t>(i)];
    os << "]";
    return os.str();
}

std::string
Shape::key() const
{
    std::ostringstream os;
    for (int i = 0; i < rank(); ++i)
        os << (i ? "x" : "") << dims_[static_cast<size_t>(i)];
    return os.str();
}

}  // namespace astra
