#include "tensor/math.h"

#include <algorithm>
#include <cmath>

namespace astra::math {

void
gemm(const float* a, bool trans_a, const float* b, bool trans_b, float* c,
     int64_t m, int64_t n, int64_t k, bool accumulate)
{
    // Every specialization below accumulates each C element over kk in
    // ascending order, so all four paths produce bit-identical results
    // to one another and to the naive triple loop — a requirement for
    // the value-preservation checks across fusion variants.
    if (!accumulate)
        for (int64_t i = 0; i < m * n; ++i)
            c[i] = 0.0f;
    if (!trans_a && !trans_b) {
        for (int64_t i = 0; i < m; ++i) {
            const float* arow = a + i * k;
            float* crow = c + i * n;
            for (int64_t kk = 0; kk < k; ++kk) {
                const float av = arow[kk];
                const float* brow = b + kk * n;
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    } else if (!trans_a && trans_b) {
        for (int64_t i = 0; i < m; ++i) {
            const float* arow = a + i * k;
            float* crow = c + i * n;
            for (int64_t j = 0; j < n; ++j) {
                const float* brow = b + j * k;
                float acc = crow[j];
                for (int64_t kk = 0; kk < k; ++kk)
                    acc += arow[kk] * brow[kk];
                crow[j] = acc;
            }
        }
    } else if (trans_a && !trans_b) {
        for (int64_t kk = 0; kk < k; ++kk) {
            const float* arow = a + kk * m;
            const float* brow = b + kk * n;
            for (int64_t i = 0; i < m; ++i) {
                const float av = arow[i];
                float* crow = c + i * n;
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    } else {
        for (int64_t i = 0; i < m; ++i) {
            float* crow = c + i * n;
            for (int64_t j = 0; j < n; ++j) {
                const float* brow = b + j * k;
                float acc = crow[j];
                for (int64_t kk = 0; kk < k; ++kk)
                    acc += a[kk * m + i] * brow[kk];
                crow[j] = acc;
            }
        }
    }
}

void
add(const float* a, const float* b, float* c, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        c[i] = a[i] + b[i];
}

void
sub(const float* a, const float* b, float* c, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        c[i] = a[i] - b[i];
}

void
mul(const float* a, const float* b, float* c, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        c[i] = a[i] * b[i];
}

void
sigmoid(const float* a, float* c, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        c[i] = 1.0f / (1.0f + std::exp(-a[i]));
}

void
tanh(const float* a, float* c, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        c[i] = std::tanh(a[i]);
}

void
relu(const float* a, float* c, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        c[i] = std::max(a[i], 0.0f);
}

void
scale(const float* a, float s, float* c, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        c[i] = a[i] * s;
}

void
softmax_rows(const float* a, float* c, int64_t rows, int64_t cols)
{
    for (int64_t r = 0; r < rows; ++r) {
        const float* row = a + r * cols;
        float* out = c + r * cols;
        float mx = row[0];
        for (int64_t i = 1; i < cols; ++i)
            mx = std::max(mx, row[i]);
        float sum = 0.0f;
        for (int64_t i = 0; i < cols; ++i) {
            out[i] = std::exp(row[i] - mx);
            sum += out[i];
        }
        for (int64_t i = 0; i < cols; ++i)
            out[i] /= sum;
    }
}

void
embedding(const float* table, const int32_t* ids, float* out, int64_t rows,
          int64_t width)
{
    for (int64_t r = 0; r < rows; ++r) {
        const float* src = table + static_cast<int64_t>(ids[r]) * width;
        std::copy(src, src + width, out + r * width);
    }
}

}  // namespace astra::math
