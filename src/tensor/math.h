/**
 * @file
 * Reference dense-math routines on host tensors. These are the ground
 * truth against which all simulated-GPU kernel implementations and all
 * Astra-optimized execution plans are checked.
 */
#pragma once

#include "tensor/tensor.h"

namespace astra::math {

/**
 * C = op_a(A) * op_b(B) (+ C if accumulate).
 *
 * A is (m x k) after optional transpose, B is (k x n) after optional
 * transpose; C is (m x n). Summation runs over k in ascending order so
 * the result is bit-stable across call sites.
 */
void gemm(const float* a, bool trans_a, const float* b, bool trans_b,
          float* c, int64_t m, int64_t n, int64_t k, bool accumulate);

/** C = A + B elementwise over n elements. */
void add(const float* a, const float* b, float* c, int64_t n);

/** C = A - B elementwise. */
void sub(const float* a, const float* b, float* c, int64_t n);

/** C = A * B elementwise (Hadamard). */
void mul(const float* a, const float* b, float* c, int64_t n);

/** C = sigmoid(A) elementwise. */
void sigmoid(const float* a, float* c, int64_t n);

/** C = tanh(A) elementwise. */
void tanh(const float* a, float* c, int64_t n);

/** C = max(A, 0) elementwise. */
void relu(const float* a, float* c, int64_t n);

/** C = A * scalar elementwise. */
void scale(const float* a, float s, float* c, int64_t n);

/** Row-wise softmax over a (rows x cols) matrix. */
void softmax_rows(const float* a, float* c, int64_t rows, int64_t cols);

/**
 * Embedding lookup: out[r, :] = table[ids[r], :].
 * @param ids row indices into the table, length rows.
 */
void embedding(const float* table, const int32_t* ids, float* out,
               int64_t rows, int64_t width);

}  // namespace astra::math
