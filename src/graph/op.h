/**
 * @file
 * Operator vocabulary of the dataflow-graph IR.
 *
 * The set is deliberately small (paper §2.2): dense layers and recurrent
 * cells reduce to GEMMs plus a handful of elementwise and reduction
 * operators. Backward-pass-only operators (the *Grad kinds) are emitted
 * by the autodiff module.
 */
#pragma once

#include <string>

namespace astra {

/** Kind of a dataflow-graph node. */
enum class OpKind
{
    // Graph sources.
    Input,        ///< mini-batch input tensor (fp32)
    InputIds,     ///< mini-batch input token ids (i32)
    Param,        ///< trainable parameter

    // Dense compute.
    MatMul,       ///< C = op(A) * op(B), with transpose flags

    // Elementwise.
    Add,
    Sub,
    Mul,          ///< Hadamard product
    Sigmoid,
    Tanh,
    Relu,
    Scale,        ///< multiply by a compile-time scalar
    OneMinus,     ///< 1 - x (used by gate derivatives and subLSTM)

    // Shape/bias/reduction.
    BiasAdd,      ///< [R,C] + [C] broadcast over rows
    SumRows,      ///< [R,C] -> [C] (bias gradients)
    Concat,       ///< along the last dimension
    Slice,        ///< along the last dimension
    Copy,         ///< identity materialization

    // Embedding + loss.
    Embedding,       ///< (table[V,D], ids[B]) -> [B,D]
    EmbeddingGrad,   ///< scatter-add of output grads into a [V,D] table grad
    Softmax,         ///< row-wise
    CrossEntropy,    ///< (logits[B,V], ids[B]) -> [1] mean NLL
    CrossEntropyGrad,///< d logits

    // Backward-only elementwise helpers.
    SigmoidGrad,  ///< dy * s * (1 - s), inputs (dy, s = sigmoid output)
    TanhGrad,     ///< dy * (1 - t^2), inputs (dy, t = tanh output)
    ReluGrad,     ///< dy * (y > 0), inputs (dy, y)
    SoftmaxGrad,  ///< row-wise Jacobian-vector product, inputs (dy, y)
};

/** Short mnemonic, used in graph dumps and profile keys. */
std::string op_name(OpKind kind);

/** True for elementwise kinds (fusable by the elementwise fuser). */
bool op_is_elementwise(OpKind kind);

/** True for the *Grad kinds that only appear in backward passes. */
bool op_is_grad(OpKind kind);

/** True for graph sources that carry no computation. */
bool op_is_source(OpKind kind);

}  // namespace astra
