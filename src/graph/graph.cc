#include "graph/graph.h"

#include <sstream>

#include "support/logging.h"

namespace astra {

NodeId
Graph::add(Node node)
{
    node.id = static_cast<NodeId>(nodes_.size());
    for (NodeId in : node.inputs) {
        ASTRA_ASSERT(in >= 0 && in < node.id,
                     "node inputs must reference earlier nodes");
        users_[static_cast<size_t>(in)].push_back(node.id);
    }
    users_.emplace_back();
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

const Node&
Graph::node(NodeId id) const
{
    ASTRA_ASSERT(id >= 0 && id < size());
    return nodes_[static_cast<size_t>(id)];
}

Node&
Graph::node(NodeId id)
{
    ASTRA_ASSERT(id >= 0 && id < size());
    return nodes_[static_cast<size_t>(id)];
}

std::vector<NodeId>
Graph::users(NodeId id) const
{
    ASTRA_ASSERT(id >= 0 && id < size());
    return users_[static_cast<size_t>(id)];
}

int
Graph::user_count(NodeId id) const
{
    ASTRA_ASSERT(id >= 0 && id < size());
    return static_cast<int>(users_[static_cast<size_t>(id)].size());
}

void
Graph::mark_output(NodeId id)
{
    ASTRA_ASSERT(id >= 0 && id < size());
    outputs_.push_back(id);
}

std::vector<NodeId>
Graph::params() const
{
    std::vector<NodeId> out;
    for (const Node& n : nodes_)
        if (n.kind == OpKind::Param)
            out.push_back(n.id);
    return out;
}

std::vector<NodeId>
Graph::graph_inputs() const
{
    std::vector<NodeId> out;
    for (const Node& n : nodes_)
        if (n.kind == OpKind::Input || n.kind == OpKind::InputIds)
            out.push_back(n.id);
    return out;
}

double
matmul_flops(const Node& node, const Graph& graph)
{
    ASTRA_ASSERT(node.is_matmul());
    const Node& a = graph.node(node.inputs[0]);
    const int64_t m = node.desc.shape.rows();
    const int64_t n = node.desc.shape.cols();
    const int64_t k = node.trans_a ? a.desc.shape.rows()
                                   : a.desc.shape.cols();
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
}

double
Graph::total_matmul_flops() const
{
    double total = 0.0;
    for (const Node& n : nodes_)
        if (n.is_matmul())
            total += matmul_flops(n, *this);
    return total;
}

void
Graph::validate() const
{
    for (const Node& n : nodes_) {
        ASTRA_ASSERT(n.desc.shape.rank() >= 1,
                     "node ", n.id, " (", op_name(n.kind),
                     ") has no shape");
        for (NodeId in : n.inputs)
            ASTRA_ASSERT(in >= 0 && in < n.id);
    }
}

std::string
Graph::to_string() const
{
    std::ostringstream os;
    for (const Node& n : nodes_) {
        os << "%" << n.id << " = " << op_name(n.kind) << "(";
        for (size_t i = 0; i < n.inputs.size(); ++i)
            os << (i ? ", " : "") << "%" << n.inputs[i];
        os << ") : " << n.desc.shape.to_string();
        if (n.is_matmul() && (n.trans_a || n.trans_b))
            os << " [" << (n.trans_a ? "T" : "N")
               << (n.trans_b ? "T" : "N") << "]";
        if (!n.scope.empty())
            os << "  @" << n.scope;
        if (n.pass == Pass::Backward)
            os << "  <bwd>";
        os << "\n";
    }
    return os.str();
}

DependencyOracle::DependencyOracle(const Graph& graph)
{
    const size_t n = static_cast<size_t>(graph.size());
    words_per_node_ = (n + 63) / 64;
    bits_.assign(n * words_per_node_, 0);
    for (const Node& node : graph.nodes()) {
        uint64_t* row = bits_.data() +
                        static_cast<size_t>(node.id) * words_per_node_;
        for (NodeId in : node.inputs) {
            // Mark the direct input...
            row[static_cast<size_t>(in) / 64] |=
                1ull << (static_cast<size_t>(in) % 64);
            // ...and union in all of its ancestors.
            const uint64_t* src = bits_.data() +
                                  static_cast<size_t>(in) * words_per_node_;
            for (size_t w = 0; w < words_per_node_; ++w)
                row[w] |= src[w];
        }
    }
}

bool
DependencyOracle::depends_on(NodeId descendant, NodeId ancestor) const
{
    return test(descendant, ancestor);
}

}  // namespace astra
