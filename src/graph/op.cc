#include "graph/op.h"

namespace astra {

std::string
op_name(OpKind kind)
{
    switch (kind) {
      case OpKind::Input: return "input";
      case OpKind::InputIds: return "input_ids";
      case OpKind::Param: return "param";
      case OpKind::MatMul: return "mm";
      case OpKind::Add: return "add";
      case OpKind::Sub: return "sub";
      case OpKind::Mul: return "mul";
      case OpKind::Sigmoid: return "sigmoid";
      case OpKind::Tanh: return "tanh";
      case OpKind::Relu: return "relu";
      case OpKind::Scale: return "scale";
      case OpKind::OneMinus: return "one_minus";
      case OpKind::BiasAdd: return "bias_add";
      case OpKind::SumRows: return "sum_rows";
      case OpKind::Concat: return "concat";
      case OpKind::Slice: return "slice";
      case OpKind::Copy: return "copy";
      case OpKind::Embedding: return "embedding";
      case OpKind::EmbeddingGrad: return "embedding_grad";
      case OpKind::Softmax: return "softmax";
      case OpKind::CrossEntropy: return "cross_entropy";
      case OpKind::CrossEntropyGrad: return "cross_entropy_grad";
      case OpKind::SigmoidGrad: return "sigmoid_grad";
      case OpKind::TanhGrad: return "tanh_grad";
      case OpKind::ReluGrad: return "relu_grad";
      case OpKind::SoftmaxGrad: return "softmax_grad";
    }
    return "?";
}

bool
op_is_elementwise(OpKind kind)
{
    switch (kind) {
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Sigmoid:
      case OpKind::Tanh:
      case OpKind::Relu:
      case OpKind::Scale:
      case OpKind::OneMinus:
      case OpKind::BiasAdd:
      case OpKind::SigmoidGrad:
      case OpKind::TanhGrad:
      case OpKind::ReluGrad:
        return true;
      default:
        return false;
    }
}

bool
op_is_grad(OpKind kind)
{
    switch (kind) {
      case OpKind::EmbeddingGrad:
      case OpKind::CrossEntropyGrad:
      case OpKind::SigmoidGrad:
      case OpKind::TanhGrad:
      case OpKind::ReluGrad:
      case OpKind::SoftmaxGrad:
        return true;
      default:
        return false;
    }
}

bool
op_is_source(OpKind kind)
{
    return kind == OpKind::Input || kind == OpKind::InputIds ||
           kind == OpKind::Param;
}

}  // namespace astra
