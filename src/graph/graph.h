/**
 * @file
 * The dataflow graph (DFG) IR.
 *
 * A Graph is an append-only list of nodes; because nodes can only
 * reference earlier nodes, node-id order is already a topological order.
 * Graphs are pure data: execution, differentiation and optimization all
 * live in other modules.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op.h"
#include "tensor/tensor.h"

namespace astra {

/** Index of a node within its graph. */
using NodeId = int32_t;

/** Sentinel for "no node". */
constexpr NodeId kInvalidNode = -1;

/** Which training pass a node belongs to (provenance for the enumerator). */
enum class Pass
{
    Forward,
    Backward,
};

/** One operator instance in the DFG. */
struct Node
{
    NodeId id = kInvalidNode;
    OpKind kind = OpKind::Input;
    std::vector<NodeId> inputs;
    TensorDesc desc;                 ///< description of the node's output

    // Operator attributes.
    bool trans_a = false;            ///< MatMul: transpose first operand
    bool trans_b = false;            ///< MatMul: transpose second operand
    float scalar = 0.0f;             ///< Scale factor
    int64_t offset = 0;              ///< Slice start (last dim)
    int64_t length = 0;              ///< Slice length (last dim)

    std::string name;                ///< debug label
    std::string scope;               ///< provenance, e.g. "layer1/t3"
    Pass pass = Pass::Forward;

    /** True when this node performs a matrix multiplication. */
    bool is_matmul() const { return kind == OpKind::MatMul; }
};

/** An immutable-once-built dataflow graph. */
class Graph
{
  public:
    /** Append a node; fills in its id and returns it. */
    NodeId add(Node node);

    const Node& node(NodeId id) const;
    Node& node(NodeId id);

    /** Number of nodes. */
    int size() const { return static_cast<int>(nodes_.size()); }

    const std::vector<Node>& nodes() const { return nodes_; }

    /** Ids of nodes that consume the given node's output. */
    std::vector<NodeId> users(NodeId id) const;

    /** Number of consumers of the given node's output. */
    int user_count(NodeId id) const;

    /** Mark a node as a graph output (kept live to the end of the step). */
    void mark_output(NodeId id);
    const std::vector<NodeId>& outputs() const { return outputs_; }

    /** All Param nodes, in creation order. */
    std::vector<NodeId> params() const;

    /** All Input/InputIds nodes, in creation order. */
    std::vector<NodeId> graph_inputs() const;

    /** Sum of multiply-add flops over all MatMul nodes (static estimate). */
    double total_matmul_flops() const;

    /** Check internal consistency (input ids valid and older, shapes set). */
    void validate() const;

    /** Multi-line dump for debugging. */
    std::string to_string() const;

  private:
    std::vector<Node> nodes_;
    std::vector<NodeId> outputs_;
    // users_[i] built lazily alongside adds.
    std::vector<std::vector<NodeId>> users_;
};

/**
 * Answers reachability queries ("does b depend on a?") in O(1) after an
 * O(N^2/64) precomputation pass. Used by the enumerator to verify that
 * fusion candidates are mutually independent.
 */
class DependencyOracle
{
  public:
    explicit DependencyOracle(const Graph& graph);

    /** True when `descendant` transitively consumes `ancestor`. */
    bool depends_on(NodeId descendant, NodeId ancestor) const;

    /** True when a and b are independent (neither reaches the other). */
    bool
    independent(NodeId a, NodeId b) const
    {
        return a != b && !depends_on(a, b) && !depends_on(b, a);
    }

  private:
    size_t words_per_node_ = 0;
    std::vector<uint64_t> bits_;   // ancestor bitsets, row per node

    bool
    test(NodeId node, NodeId ancestor) const
    {
        const size_t idx = static_cast<size_t>(node) * words_per_node_ +
                           static_cast<size_t>(ancestor) / 64;
        return (bits_[idx] >> (static_cast<size_t>(ancestor) % 64)) & 1u;
    }
};

/** Flops of one MatMul node (2*M*N*K). */
double matmul_flops(const Node& node, const Graph& graph);

}  // namespace astra
