/**
 * @file
 * Convenience layer for constructing dataflow graphs with shape
 * inference. Model definitions (src/models) use this exclusively; it
 * plays the role of the framework's tracing front end (paper §5.1).
 */
#pragma once

#include <string>

#include "graph/graph.h"

namespace astra {

/** Builds a Graph with per-op shape inference and provenance scoping. */
class GraphBuilder
{
  public:
    GraphBuilder() = default;

    /** The graph under construction (also usable after building). */
    Graph& graph() { return graph_; }
    const Graph& graph() const { return graph_; }

    // ---- provenance scope ------------------------------------------------

    /** Push a provenance scope component, e.g. "layer0" or "t12". */
    void push_scope(const std::string& s);
    void pop_scope();

    /** Replace the whole scope (autodiff mirrors forward provenance). */
    void set_scope(std::string s) { scope_ = std::move(s); }
    const std::string& scope() const { return scope_; }

    /** RAII helper for push/pop. */
    class Scoped
    {
      public:
        Scoped(GraphBuilder& b, const std::string& s) : b_(b)
        {
            b_.push_scope(s);
        }
        ~Scoped() { b_.pop_scope(); }
        Scoped(const Scoped&) = delete;
        Scoped& operator=(const Scoped&) = delete;

      private:
        GraphBuilder& b_;
    };

    /** Mark subsequently added nodes as backward-pass nodes. */
    void set_pass(Pass pass) { pass_ = pass; }
    Pass pass() const { return pass_; }

    // ---- sources ---------------------------------------------------------

    NodeId input(Shape shape, const std::string& name = "");

    /** @param max_id ids are in [0, max_id); stored for data binding. */
    NodeId input_ids(int64_t count, int64_t max_id = 1000,
                     const std::string& name = "");

    NodeId param(Shape shape, const std::string& name = "");

    // ---- dense -----------------------------------------------------------

    NodeId matmul(NodeId a, NodeId b, bool trans_a = false,
                  bool trans_b = false);

    // ---- elementwise -----------------------------------------------------

    NodeId add(NodeId a, NodeId b);
    NodeId sub(NodeId a, NodeId b);
    NodeId mul(NodeId a, NodeId b);
    NodeId sigmoid(NodeId a);
    NodeId tanh(NodeId a);
    NodeId relu(NodeId a);
    NodeId scale(NodeId a, float s);
    NodeId one_minus(NodeId a);

    // ---- shape / reduction ----------------------------------------------

    NodeId bias_add(NodeId a, NodeId bias);
    NodeId sum_rows(NodeId a);
    NodeId concat(const std::vector<NodeId>& parts);
    NodeId slice(NodeId a, int64_t offset, int64_t length);
    NodeId copy(NodeId a);

    // ---- embedding / loss ------------------------------------------------

    NodeId embedding(NodeId table, NodeId ids);
    NodeId softmax(NodeId a);
    NodeId cross_entropy(NodeId logits, NodeId label_ids);

    // ---- backward helpers (used by autodiff) ------------------------------

    NodeId sigmoid_grad(NodeId dy, NodeId y);
    NodeId tanh_grad(NodeId dy, NodeId y);
    NodeId relu_grad(NodeId dy, NodeId y);
    NodeId softmax_grad(NodeId dy, NodeId y);
    NodeId cross_entropy_grad(NodeId logits, NodeId label_ids);
    NodeId embedding_grad(NodeId dy, NodeId ids, Shape table_shape);

  private:
    NodeId emit(Node n);
    const TensorDesc& desc_of(NodeId id) const;

    Graph graph_;
    std::string scope_;
    std::vector<size_t> scope_stack_;  ///< scope_ lengths before pushes
    Pass pass_ = Pass::Forward;
};

}  // namespace astra
