#include "graph/builder.h"

#include "support/logging.h"

namespace astra {

void
GraphBuilder::push_scope(const std::string& s)
{
    scope_stack_.push_back(scope_.size());
    if (!scope_.empty())
        scope_ += "/";
    scope_ += s;
}

void
GraphBuilder::pop_scope()
{
    ASTRA_ASSERT(!scope_stack_.empty(), "pop_scope without push_scope");
    scope_.resize(scope_stack_.back());
    scope_stack_.pop_back();
}

NodeId
GraphBuilder::emit(Node n)
{
    n.scope = scope_;
    n.pass = pass_;
    return graph_.add(std::move(n));
}

const TensorDesc&
GraphBuilder::desc_of(NodeId id) const
{
    return graph_.node(id).desc;
}

NodeId
GraphBuilder::input(Shape shape, const std::string& name)
{
    Node n;
    n.kind = OpKind::Input;
    n.desc = {std::move(shape), DType::F32};
    n.name = name;
    return emit(std::move(n));
}

NodeId
GraphBuilder::input_ids(int64_t count, int64_t max_id,
                        const std::string& name)
{
    Node n;
    n.kind = OpKind::InputIds;
    n.desc = {Shape{count}, DType::I32};
    n.length = max_id;  // reused attribute: valid id range
    n.name = name;
    return emit(std::move(n));
}

NodeId
GraphBuilder::param(Shape shape, const std::string& name)
{
    Node n;
    n.kind = OpKind::Param;
    n.desc = {std::move(shape), DType::F32};
    n.name = name;
    return emit(std::move(n));
}

NodeId
GraphBuilder::matmul(NodeId a, NodeId b, bool trans_a, bool trans_b)
{
    const Shape& sa = desc_of(a).shape;
    const Shape& sb = desc_of(b).shape;
    const int64_t m = trans_a ? sa.cols() : sa.rows();
    const int64_t ka = trans_a ? sa.rows() : sa.cols();
    const int64_t kb = trans_b ? sb.cols() : sb.rows();
    const int64_t nn = trans_b ? sb.rows() : sb.cols();
    ASTRA_ASSERT(ka == kb, "matmul inner dims mismatch: ",
                 sa.to_string(), (trans_a ? "^T" : ""), " x ",
                 sb.to_string(), (trans_b ? "^T" : ""));
    Node n;
    n.kind = OpKind::MatMul;
    n.inputs = {a, b};
    n.trans_a = trans_a;
    n.trans_b = trans_b;
    n.desc = {Shape{m, nn}, DType::F32};
    return emit(std::move(n));
}

namespace {

void
check_same_shape(const TensorDesc& x, const TensorDesc& y)
{
    ASTRA_ASSERT(x.shape == y.shape, "elementwise shape mismatch: ",
                 x.shape.to_string(), " vs ", y.shape.to_string());
}

}  // namespace

NodeId
GraphBuilder::add(NodeId a, NodeId b)
{
    check_same_shape(desc_of(a), desc_of(b));
    Node n;
    n.kind = OpKind::Add;
    n.inputs = {a, b};
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::sub(NodeId a, NodeId b)
{
    check_same_shape(desc_of(a), desc_of(b));
    Node n;
    n.kind = OpKind::Sub;
    n.inputs = {a, b};
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::mul(NodeId a, NodeId b)
{
    check_same_shape(desc_of(a), desc_of(b));
    Node n;
    n.kind = OpKind::Mul;
    n.inputs = {a, b};
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::sigmoid(NodeId a)
{
    Node n;
    n.kind = OpKind::Sigmoid;
    n.inputs = {a};
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::tanh(NodeId a)
{
    Node n;
    n.kind = OpKind::Tanh;
    n.inputs = {a};
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::relu(NodeId a)
{
    Node n;
    n.kind = OpKind::Relu;
    n.inputs = {a};
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::scale(NodeId a, float s)
{
    Node n;
    n.kind = OpKind::Scale;
    n.inputs = {a};
    n.scalar = s;
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::one_minus(NodeId a)
{
    Node n;
    n.kind = OpKind::OneMinus;
    n.inputs = {a};
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::bias_add(NodeId a, NodeId bias)
{
    const Shape& sa = desc_of(a).shape;
    const Shape& sb = desc_of(bias).shape;
    ASTRA_ASSERT(sb.rank() == 1 && sb.cols() == sa.cols(),
                 "bias_add expects [C] bias matching last dim");
    Node n;
    n.kind = OpKind::BiasAdd;
    n.inputs = {a, bias};
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::sum_rows(NodeId a)
{
    Node n;
    n.kind = OpKind::SumRows;
    n.inputs = {a};
    n.desc = {Shape{desc_of(a).shape.cols()}, DType::F32};
    return emit(std::move(n));
}

NodeId
GraphBuilder::concat(const std::vector<NodeId>& parts)
{
    ASTRA_ASSERT(!parts.empty());
    const int64_t rows = desc_of(parts[0]).shape.rows();
    int64_t cols = 0;
    for (NodeId p : parts) {
        ASTRA_ASSERT(desc_of(p).shape.rows() == rows,
                     "concat row mismatch");
        cols += desc_of(p).shape.cols();
    }
    Node n;
    n.kind = OpKind::Concat;
    n.inputs = parts;
    n.desc = {Shape{rows, cols}, DType::F32};
    return emit(std::move(n));
}

NodeId
GraphBuilder::slice(NodeId a, int64_t offset, int64_t length)
{
    const Shape& sa = desc_of(a).shape;
    ASTRA_ASSERT(offset >= 0 && offset + length <= sa.cols(),
                 "slice out of range");
    Node n;
    n.kind = OpKind::Slice;
    n.inputs = {a};
    n.offset = offset;
    n.length = length;
    n.desc = {Shape{sa.rows(), length}, DType::F32};
    return emit(std::move(n));
}

NodeId
GraphBuilder::copy(NodeId a)
{
    Node n;
    n.kind = OpKind::Copy;
    n.inputs = {a};
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::embedding(NodeId table, NodeId ids)
{
    const Shape& st = desc_of(table).shape;
    ASTRA_ASSERT(st.rank() == 2, "embedding table must be [V, D]");
    ASTRA_ASSERT(desc_of(ids).dtype == DType::I32,
                 "embedding ids must be i32");
    Node n;
    n.kind = OpKind::Embedding;
    n.inputs = {table, ids};
    n.desc = {Shape{desc_of(ids).shape.numel(), st.cols()}, DType::F32};
    return emit(std::move(n));
}

NodeId
GraphBuilder::softmax(NodeId a)
{
    Node n;
    n.kind = OpKind::Softmax;
    n.inputs = {a};
    n.desc = desc_of(a);
    return emit(std::move(n));
}

NodeId
GraphBuilder::cross_entropy(NodeId logits, NodeId label_ids)
{
    ASTRA_ASSERT(desc_of(label_ids).dtype == DType::I32);
    ASTRA_ASSERT(desc_of(logits).shape.rows() ==
                 desc_of(label_ids).shape.numel(),
                 "one label per logits row");
    Node n;
    n.kind = OpKind::CrossEntropy;
    n.inputs = {logits, label_ids};
    n.desc = {Shape{1}, DType::F32};
    return emit(std::move(n));
}

NodeId
GraphBuilder::sigmoid_grad(NodeId dy, NodeId y)
{
    check_same_shape(desc_of(dy), desc_of(y));
    Node n;
    n.kind = OpKind::SigmoidGrad;
    n.inputs = {dy, y};
    n.desc = desc_of(dy);
    return emit(std::move(n));
}

NodeId
GraphBuilder::tanh_grad(NodeId dy, NodeId y)
{
    check_same_shape(desc_of(dy), desc_of(y));
    Node n;
    n.kind = OpKind::TanhGrad;
    n.inputs = {dy, y};
    n.desc = desc_of(dy);
    return emit(std::move(n));
}

NodeId
GraphBuilder::relu_grad(NodeId dy, NodeId y)
{
    check_same_shape(desc_of(dy), desc_of(y));
    Node n;
    n.kind = OpKind::ReluGrad;
    n.inputs = {dy, y};
    n.desc = desc_of(dy);
    return emit(std::move(n));
}

NodeId
GraphBuilder::softmax_grad(NodeId dy, NodeId y)
{
    check_same_shape(desc_of(dy), desc_of(y));
    Node n;
    n.kind = OpKind::SoftmaxGrad;
    n.inputs = {dy, y};
    n.desc = desc_of(dy);
    return emit(std::move(n));
}

NodeId
GraphBuilder::cross_entropy_grad(NodeId logits, NodeId label_ids)
{
    Node n;
    n.kind = OpKind::CrossEntropyGrad;
    n.inputs = {logits, label_ids};
    n.desc = desc_of(logits);
    return emit(std::move(n));
}

NodeId
GraphBuilder::embedding_grad(NodeId dy, NodeId ids, Shape table_shape)
{
    Node n;
    n.kind = OpKind::EmbeddingGrad;
    n.inputs = {dy, ids};
    n.desc = {std::move(table_shape), DType::F32};
    return emit(std::move(n));
}

}  // namespace astra
