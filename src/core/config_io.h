/**
 * @file
 * Persistence for tuned configurations and exploration checkpoints.
 *
 * The custom wirer spends a few thousand mini-batches finding the best
 * configuration; a restarted job should not repeat that. These
 * helpers serialize a ScheduleConfig to a small line-oriented text
 * format and load it back, so steady-state training resumes at the
 * tuned schedule immediately (profiling keys are transient and not
 * persisted).
 *
 * A WirerCheckpoint goes further: it is the wirer's measurement
 * journal — every dispatched mini-batch's raw timing, profile samples
 * and fault outcome, per strategy shard, in dispatch order. Resuming
 * from it replays the journal instead of re-dispatching, then
 * continues live, and because the journal holds the *raw* (pre
 * clock-normalization) values in hexfloat, a resumed exploration is
 * bit-identical to one that never stopped. All doubles round-trip
 * through hexfloat for exactly that reason.
 *
 * A ProfileIndex serializes too (the plan store persists each winning
 * configuration's full measurement statistics, core/plan_store.h):
 * every Welford accumulator — count, min, max, mean, M2, the retained
 * sample window, plus the rejection and fault tallies — round-trips
 * bit-exactly, so a rehydrated index ranks choices identically to the
 * live one that was saved.
 *
 * Every reader has an error-reporting overload: on malformed input it
 * fills *error with "line N: reason" so a corrupt on-disk entry is
 * diagnosable (which file, where, why) instead of silently falling
 * back to a cold start. The bool-only overloads remain for callers
 * that only need the verdict.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/profile_index.h"
#include "core/scheduler.h"

namespace astra {

/** Serialize the adapted dimensions of a configuration. */
void write_config(std::ostream& os, const ScheduleConfig& config);

/**
 * Parse a configuration written by write_config.
 * @return false (leaving *config untouched) on malformed input; when
 *         `error` is non-null it receives "line N: reason".
 */
bool read_config(std::istream& is, ScheduleConfig* config);
bool read_config(std::istream& is, ScheduleConfig* config,
                 std::string* error);

/** Convenience: round-trip through a string. */
std::string config_to_string(const ScheduleConfig& config);
bool config_from_string(const std::string& text,
                        ScheduleConfig* config);
bool config_from_string(const std::string& text, ScheduleConfig* config,
                        std::string* error);

/**
 * Serialize a profile index's accumulated statistics (hexfloat doubles:
 * the rehydrated index is bit-identical — Welford state, sample
 * windows, rejection and fault tallies included). The measurement
 * policy is *not* persisted: it is a property of the run consuming the
 * statistics, not of the measurements themselves.
 */
void write_profile_index(std::ostream& os, const ProfileIndex& index);

/**
 * Parse statistics written by write_profile_index into *index (whose
 * policy is preserved). @return false (leaving *index untouched) on
 * malformed input; `error` receives "line N: reason" when non-null.
 */
bool read_profile_index(std::istream& is, ProfileIndex* index,
                        std::string* error = nullptr);

/** Convenience: round-trip through a string. */
std::string profile_index_to_string(const ProfileIndex& index);
bool profile_index_from_string(const std::string& text,
                               ProfileIndex* index,
                               std::string* error = nullptr);

/**
 * One dispatched mini-batch as journaled by the custom wirer: the raw
 * measurement (before any clock normalization) plus its fault outcome.
 * Replaying the record through the wirer's accounting reproduces the
 * exact state the live dispatch produced.
 */
struct DispatchRecord
{
    double total_ns = 0.0;
    double clock_multiplier = 1.0;
    bool faulted = false;
    int fault_attempts = 0;
    int64_t faults_seen = 0;
    int64_t straggler_events = 0;
    double backoff_ns = 0.0;

    /** Raw per-key profile samples, in profile_ns iteration order. */
    std::vector<std::pair<std::string, double>> profile;
};

/** Exploration state: one dispatch journal per strategy shard. */
struct WirerCheckpoint
{
    std::vector<std::vector<DispatchRecord>> strategies;

    bool
    empty() const
    {
        for (const auto& s : strategies)
            if (!s.empty())
                return false;
        return true;
    }
};

/** Serialize a checkpoint (hexfloat doubles: bit-exact round-trip). */
void write_checkpoint(std::ostream& os, const WirerCheckpoint& cp);

/**
 * Parse a checkpoint written by write_checkpoint.
 * @return false (leaving *cp untouched) on malformed input; `error`
 *         receives "line N: reason" when non-null.
 */
bool read_checkpoint(std::istream& is, WirerCheckpoint* cp);
bool read_checkpoint(std::istream& is, WirerCheckpoint* cp,
                     std::string* error);

/** Convenience: round-trip through a string. */
std::string checkpoint_to_string(const WirerCheckpoint& cp);
bool checkpoint_from_string(const std::string& text,
                            WirerCheckpoint* cp);
bool checkpoint_from_string(const std::string& text, WirerCheckpoint* cp,
                            std::string* error);

}  // namespace astra
