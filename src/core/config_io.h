/**
 * @file
 * Persistence for tuned configurations.
 *
 * The custom wirer spends a few thousand mini-batches finding the best
 * configuration; a restarted job should not repeat that. These
 * helpers serialize a ScheduleConfig to a small line-oriented text
 * format and load it back, so steady-state training resumes at the
 * tuned schedule immediately (profiling keys are transient and not
 * persisted).
 */
#pragma once

#include <iosfwd>
#include <string>

#include "core/scheduler.h"

namespace astra {

/** Serialize the adapted dimensions of a configuration. */
void write_config(std::ostream& os, const ScheduleConfig& config);

/**
 * Parse a configuration written by write_config.
 * @return false (leaving *config untouched) on malformed input.
 */
bool read_config(std::istream& is, ScheduleConfig* config);

/** Convenience: round-trip through a string. */
std::string config_to_string(const ScheduleConfig& config);
bool config_from_string(const std::string& text,
                        ScheduleConfig* config);

}  // namespace astra
