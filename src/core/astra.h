/**
 * @file
 * Top-level Astra API: ties the enumerator, memory planner, scheduler
 * and custom wirer together for one training graph.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   GraphBuilder b;
 *   ... build forward graph, append_backward(b, loss) ...
 *   AstraSession session(b.graph(), options);
 *   WirerResult r = session.optimize();       // online exploration
 *   session.run(r.best_config);               // steady-state training
 */
#pragma once

#include <memory>
#include <string>

#include "core/plan_store.h"
#include "core/wirer.h"

namespace astra {

struct BackwardResult;
struct RecomputePlan;

/** All knobs of an Astra session. */
struct AstraOptions
{
    AstraFeatures features;
    GpuConfig gpu;
    SchedulerOptions sched;
    EnumeratorOptions enumerator;
    int num_streams = 2;

    /** Prefix for all profile keys (bucketed profiling sets this). */
    std::string context_prefix;

    /** Measurement accumulation / noise policy (see profile_index.h). */
    MeasurementPolicy measurement;

    /**
     * Three-tier what-if decisions in the wirer (core/whatif.h):
     * predictor-prune, replay-rank, measure survivors. Off by default.
     */
    WhatIfOptions whatif;

    /** Mini-batch safety valve (WirerResult::truncated when tripped). */
    int64_t max_minibatches = 200000;

    /**
     * Host threads for the wirer's exploration (WirerOptions::threads):
     * allocation strategies and independent repeat measurements fan out
     * across them, with results bit-identical to wirer_threads = 1.
     */
    int wirer_threads = 1;

    /**
     * Simulated HBM per allocation strategy; 0 = sized automatically
     * from the graph's tensor footprint.
     */
    int64_t hbm_bytes = 0;

    /**
     * Directory of the persistent plan/profile knowledge base
     * (core/plan_store.h). When non-empty, optimize() walks the store's
     * L1/L2/L3 ladder before exploring — an exact hit skips wiring
     * entirely (one measured mini-batch verifies the plan), a shape
     * neighbor warm-starts the wirer, library priors bias the ordering
     * — and writes the winner back for the next process. Defaults to
     * the ASTRA_PLAN_STORE environment variable; "" disables.
     */
    std::string plan_store = plan_store_dir_from_env();

    /**
     * Steady-state dispatch through the compiled path (runtime/wired.h):
     * run() lowers a configuration into a wired binary once (cached in
     * the scheduler next to its plan cache) and replays the blob for
     * every subsequent mini-batch — no per-step dependency analysis,
     * no kernel-descriptor construction, no hash lookups. Results are
     * bit-identical to the generic dispatcher; only host-side dispatch
     * overhead changes (bench/micro_dispatch_replay gates the ≥2×
     * reduction). Off by default while exploration dominates: lowering
     * pays off only once a configuration repeats.
     */
    bool compiled_dispatch = false;

    /**
     * Backward-pass structure of the graph, enabling the last rung of
     * the OOM degradation ladder: when even liveness-based buffer
     * reuse cannot fit the device, the session rewrites the graph with
     * recompute-for-memory (autodiff/recompute.h) and retries. Must
     * outlive the session. nullptr disables the rung (allocation
     * failure past the reuse rung then propagates as MemoryError).
     */
    const BackwardResult* grads = nullptr;
};

/**
 * One graph's compilation + adaptive-execution state.
 *
 * Device-memory pressure is handled with a graceful-degradation ladder
 * instead of a crash, mirroring what a training framework does when
 * cudaMalloc fails:
 *   1. Bump allocation (fastest planning, every tensor resident);
 *   2. liveness-based buffer reuse (MemoryPlanMode::Reuse);
 *   3. recompute-for-memory graph rewrite (only when options().grads
 *      is provided), then the ladder restarts at rung 1.
 * Each rung is tried per allocation strategy; plan_mode() and
 * used_recompute() report where the session landed. Injected
 * allocation faults (GpuConfig::faults, alloc: specs) exercise the
 * same rungs as genuine exhaustion.
 */
class AstraSession
{
  public:
    AstraSession(const Graph& graph, AstraOptions opts = {});
    ~AstraSession();

    AstraSession(const AstraSession&) = delete;
    AstraSession& operator=(const AstraSession&) = delete;

    /** The executed graph (the recompute rewrite when OOM forced it). */
    const Graph& graph() const { return *graph_; }
    const SearchSpace& space() const { return space_; }
    const Scheduler& scheduler() const { return *scheduler_; }
    const AstraOptions& options() const { return opts_; }

    /** Tensor map realized under the given allocation strategy. */
    const TensorMap& tensor_map(int strategy = 0) const;

    /** Memory-planning rung the strategy's tensor map landed on. */
    MemoryPlanMode plan_mode(int strategy = 0) const;

    /** True when OOM forced the recompute-for-memory rewrite. */
    bool used_recompute() const { return recompute_ != nullptr; }

    /**
     * Build a custom wirer over this session's graph, search space and
     * tensor maps (what optimize() runs). Exposed so callers can drive
     * exploration manually — checkpoint mid-run, resume, then explore
     * again (core/wirer.h). `warm` optionally carries plan-store
     * knowledge into the exploration (WirerOptions::warm).
     */
    std::unique_ptr<CustomWirer>
    make_wirer(WirerWarmStart warm = {}) const;

    /**
     * Run the online exploration; every trial is a real mini-batch.
     * With AstraOptions::plan_store set, first walks the knowledge
     * base's ladder: an L1 exact hit returns the stored configuration
     * after a single measured verification mini-batch; an L2 neighbor
     * or L3 priors warm-start the wirer; and the winner is written
     * back. The report's store_tier records which rung answered.
     */
    WirerResult optimize(const BindFn& bind = {});

    /** Dispatch one mini-batch with an explicit configuration. */
    DispatchResult run(const ScheduleConfig& config) const;

    /**
     * Native-framework baseline on this graph (single stream, one
     * kernel per node, default library), on strategy-0 allocation.
     */
    DispatchResult run_native(GemmLib lib = GemmLib::Cublas) const;

  private:
    /**
     * Build space/scheduler/memories/maps for the current graph_,
     * walking the Bump -> Reuse rungs per strategy. Throws MemoryError
     * when even reuse cannot fit — the ctor then takes the recompute
     * rung (if enabled) and calls init() again on the rewritten graph.
     */
    void init();

    const Graph* graph_;
    AstraOptions opts_;
    SearchSpace space_;
    std::unique_ptr<Scheduler> scheduler_;
    std::vector<std::unique_ptr<SimMemory>> memories_;
    std::vector<std::unique_ptr<TensorMap>> maps_;
    std::vector<MemoryPlanMode> plan_modes_;
    std::unique_ptr<RecomputePlan> recompute_;
};

/** Total dense-tensor footprint of a graph in bytes. */
int64_t graph_tensor_bytes(const Graph& graph);

}  // namespace astra
