/**
 * @file
 * Top-level Astra API: ties the enumerator, memory planner, scheduler
 * and custom wirer together for one training graph.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   GraphBuilder b;
 *   ... build forward graph, append_backward(b, loss) ...
 *   AstraSession session(b.graph(), options);
 *   WirerResult r = session.optimize();       // online exploration
 *   session.run(r.best_config);               // steady-state training
 */
#pragma once

#include <memory>

#include "core/wirer.h"

namespace astra {

/** All knobs of an Astra session. */
struct AstraOptions
{
    AstraFeatures features;
    GpuConfig gpu;
    SchedulerOptions sched;
    EnumeratorOptions enumerator;
    int num_streams = 2;

    /** Prefix for all profile keys (bucketed profiling sets this). */
    std::string context_prefix;

    /** Measurement accumulation / noise policy (see profile_index.h). */
    MeasurementPolicy measurement;

    /** Mini-batch safety valve (WirerResult::truncated when tripped). */
    int64_t max_minibatches = 200000;

    /**
     * Host threads for the wirer's exploration (WirerOptions::threads):
     * allocation strategies and independent repeat measurements fan out
     * across them, with results bit-identical to wirer_threads = 1.
     */
    int wirer_threads = 1;

    /**
     * Simulated HBM per allocation strategy; 0 = sized automatically
     * from the graph's tensor footprint.
     */
    int64_t hbm_bytes = 0;
};

/** One graph's compilation + adaptive-execution state. */
class AstraSession
{
  public:
    AstraSession(const Graph& graph, AstraOptions opts = {});
    ~AstraSession();

    AstraSession(const AstraSession&) = delete;
    AstraSession& operator=(const AstraSession&) = delete;

    const Graph& graph() const { return graph_; }
    const SearchSpace& space() const { return space_; }
    const Scheduler& scheduler() const { return *scheduler_; }
    const AstraOptions& options() const { return opts_; }

    /** Tensor map realized under the given allocation strategy. */
    const TensorMap& tensor_map(int strategy = 0) const;

    /** Run the online exploration; every trial is a real mini-batch. */
    WirerResult optimize(const BindFn& bind = {});

    /** Dispatch one mini-batch with an explicit configuration. */
    DispatchResult run(const ScheduleConfig& config) const;

    /**
     * Native-framework baseline on this graph (single stream, one
     * kernel per node, default library), on strategy-0 allocation.
     */
    DispatchResult run_native(GemmLib lib = GemmLib::Cublas) const;

  private:
    const Graph& graph_;
    AstraOptions opts_;
    SearchSpace space_;
    std::unique_ptr<Scheduler> scheduler_;
    std::vector<std::unique_ptr<SimMemory>> memories_;
    std::vector<std::unique_ptr<TensorMap>> maps_;
};

/** Total dense-tensor footprint of a graph in bytes. */
int64_t graph_tensor_bytes(const Graph& graph);

}  // namespace astra
