#include "core/adaptive.h"

#include <cmath>
#include <limits>

#include "support/logging.h"

namespace astra {

AdaptiveVariable::AdaptiveVariable(std::string key, int num_options,
                                   int default_option)
    : key_(std::move(key)), num_options_(num_options),
      default_(default_option), current_(default_option)
{
    ASTRA_ASSERT(num_options_ >= 1);
    ASTRA_ASSERT(default_ >= 0 && default_ < num_options_);
}

void
AdaptiveVariable::initialize()
{
    current_ = default_;
    visited_ = 1;
    disallowed_.clear();
}

bool
AdaptiveVariable::iterate()
{
    if (finished())
        return false;
    // Walk options in order, skipping the default (visited first) and
    // any masked-off options. visited_ counts distinct allowed options
    // seen so far; finished() bounds the loop, so the walk can never
    // spin with nothing left to visit.
    do {
        ++current_;
        if (current_ >= num_options_)
            current_ = 0;
    } while (current_ == default_ || !is_allowed(current_));
    ++visited_;
    return !finished();
}

void
AdaptiveVariable::disallow(int option)
{
    ASTRA_ASSERT(option >= 0 && option < num_options_,
                 "option out of range for ", key_);
    ASTRA_ASSERT(option != current_ && option != default_,
                 "cannot disallow the live walk anchor of ", key_);
    if (disallowed_.empty())
        disallowed_.assign(static_cast<size_t>(num_options_), 0);
    if (disallowed_[static_cast<size_t>(option)])
        return;
    disallowed_[static_cast<size_t>(option)] = 1;
    ASTRA_ASSERT(allowed_count() >= 1);
}

void
AdaptiveVariable::restrict_to(const std::vector<int>& allowed)
{
    disallowed_.assign(static_cast<size_t>(num_options_), 1);
    bool has_current = false;
    for (int o : allowed) {
        ASTRA_ASSERT(o >= 0 && o < num_options_,
                     "option out of range for ", key_);
        disallowed_[static_cast<size_t>(o)] = 0;
        has_current |= o == current_;
    }
    ASTRA_ASSERT(has_current, "restrict_to must keep the current choice of ",
                 key_);
    // Re-anchor: the walk restarts from the current choice, and a
    // nothing-measured bind_best falls back to it rather than to the
    // constructed default (which may now be masked).
    default_ = current_;
    visited_ = 1;
}

int
AdaptiveVariable::allowed_count() const
{
    if (disallowed_.empty())
        return num_options_;
    int n = 0;
    for (char d : disallowed_)
        n += d == 0;
    return n;
}

bool
AdaptiveVariable::is_allowed(int option) const
{
    return disallowed_.empty() ||
           disallowed_[static_cast<size_t>(option)] == 0;
}

double
AdaptiveVariable::get_profile_value(const ProfileIndex& index) const
{
    const auto v = index.lookup(profile_key());
    return v ? *v : std::numeric_limits<double>::quiet_NaN();
}

std::string
AdaptiveVariable::profile_key_for(int choice) const
{
    return context_ + key_ + "=" + std::to_string(choice);
}

void
AdaptiveVariable::set(int option)
{
    ASTRA_ASSERT(option >= 0 && option < num_options_,
                 "option out of range for ", key_);
    current_ = option;
}

bool
AdaptiveVariable::bind_best(const ProfileIndex& index)
{
    const int best =
        index.best_choice(context_ + key_ + "=", num_options_);
    if (best < 0) {
        current_ = default_;
        return false;
    }
    current_ = best;
    return true;
}

ChoiceDecision
AdaptiveVariable::decide(const ProfileIndex& index) const
{
    return index.decide(context_ + key_ + "=", num_options_);
}

std::unique_ptr<UpdateNode>
UpdateNode::leaf(VarPtr var)
{
    ASTRA_ASSERT(var != nullptr);
    auto node = std::unique_ptr<UpdateNode>(new UpdateNode());
    node->mode_ = Mode::Leaf;
    node->var_ = std::move(var);
    return node;
}

std::unique_ptr<UpdateNode>
UpdateNode::composite(Mode mode,
                      std::vector<std::unique_ptr<UpdateNode>> children)
{
    ASTRA_ASSERT(mode != Mode::Leaf);
    auto node = std::unique_ptr<UpdateNode>(new UpdateNode());
    node->mode_ = mode;
    node->children_ = std::move(children);
    if (mode == Mode::Exhaustive) {
        // The generic odometer is implemented over leaf children; for
        // coupled metrics over larger subtrees, flatten the product
        // into one variable instead.
        for (const auto& c : node->children_)
            ASTRA_ASSERT(c->mode_ == Mode::Leaf,
                         "Exhaustive nodes take leaf children");
    }
    return node;
}

void
UpdateNode::initialize()
{
    active_child_ = 0;
    exhausted_ = false;
    if (mode_ == Mode::Leaf) {
        var_->initialize();
        return;
    }
    for (auto& c : children_)
        c->initialize();
    if (mode_ == Mode::Exhaustive) {
        bool all_single = true;
        for (const auto& c : children_)
            all_single &= c->var_->num_options() == 1;
        exhausted_ = children_.empty() || all_single;
    }
}

bool
UpdateNode::finished() const
{
    switch (mode_) {
      case Mode::Leaf:
        return var_->finished();
      case Mode::Parallel:
        for (const auto& c : children_)
            if (!c->finished())
                return false;
        return true;
      case Mode::Exhaustive:
        return exhausted_;
      case Mode::Prefix:
        return active_child_ >= children_.size();
    }
    return true;
}

void
UpdateNode::advance(const ProfileIndex& index)
{
    switch (mode_) {
      case Mode::Leaf:
        // Advance only; binding to the best happens on the *next* step
        // (via the parent or the wirer), after the final option's
        // measurement has landed in the index.
        var_->iterate();
        return;
      case Mode::Parallel:
        // Every unfinished child advances in the same mini-batch;
        // fine-grained profiling keeps their measurements independent.
        // Children that are done run at their measured best while the
        // rest continue (work conservation).
        for (auto& c : children_)
            if (c->finished())
                c->bind_best(index);
            else
                c->advance(index);
        return;
      case Mode::Exhaustive: {
        // Odometer over the children's options (brute force).
        if (exhausted_)
            return;
        for (size_t i = 0; i < children_.size(); ++i) {
            AdaptiveVariable& v = *children_[i]->var_;
            if (v.current() + 1 < v.num_options()) {
                v.set(v.current() + 1);
                for (size_t j = 0; j < i; ++j)
                    children_[j]->var_->set(0);
                return;
            }
        }
        exhausted_ = true;
        bind_best(index);
        return;
      }
      case Mode::Prefix: {
        if (active_child_ >= children_.size())
            return;
        UpdateNode& child = *children_[active_child_];
        if (child.finished()) {
            // The child's final option was measured in the trial that
            // just completed; freeze it at its best and move right. The
            // next trial measures the successor's default under the
            // extended context — binding must not race ahead of that.
            child.bind_best(index);
            if (on_child_bound_)
                on_child_bound_(static_cast<int>(active_child_));
            ++active_child_;
            // Skip successors with nothing to explore.
            while (active_child_ < children_.size() &&
                   children_[active_child_]->finished()) {
                children_[active_child_]->bind_best(index);
                if (on_child_bound_)
                    on_child_bound_(static_cast<int>(active_child_));
                ++active_child_;
            }
            return;
        }
        child.advance(index);
        return;
      }
    }
}

void
UpdateNode::bind_best(const ProfileIndex& index)
{
    if (mode_ == Mode::Leaf) {
        var_->bind_best(index);
        return;
    }
    for (auto& c : children_)
        c->bind_best(index);
}

int64_t
UpdateNode::max_trials() const
{
    switch (mode_) {
      case Mode::Leaf:
        return var_->allowed_count();
      case Mode::Parallel: {
        int64_t worst = 1;
        for (const auto& c : children_)
            worst = std::max(worst, c->max_trials());
        return worst;
      }
      case Mode::Exhaustive: {
        int64_t product = 1;
        for (const auto& c : children_)
            product *= c->max_trials();
        return product;
      }
      case Mode::Prefix: {
        int64_t total = 0;
        for (const auto& c : children_)
            total += c->max_trials();
        return std::max<int64_t>(total, 1);
      }
    }
    return 1;
}

void
UpdateNode::for_each_var(
    const std::function<void(AdaptiveVariable&)>& fn) const
{
    if (mode_ == Mode::Leaf) {
        fn(*var_);
        return;
    }
    for (const auto& c : children_)
        c->for_each_var(fn);
}

}  // namespace astra
