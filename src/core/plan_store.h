/**
 * @file
 * Persistent plan/profile knowledge base (ROADMAP "wiring as a
 * service"): an on-disk store of winning configurations and their
 * measurement statistics, shared across processes.
 *
 * Astra's bet is that DL jobs are predictable across mini-batches; the
 * store extends that predictability across *process lifetimes*. A fleet
 * that has wired a workload once should not pay thousands of measured
 * mini-batches the next time the same workload — or a near neighbor —
 * shows up on the same device class.
 *
 * Entries are keyed by four canonical FNV-1a hashes:
 *
 *   graph_sig    every structural fact of the DFG a plan depends on
 *                (op kinds, edges, full shapes, dtypes, attributes,
 *                scope provenance, pass) — two graphs with equal
 *                signatures converge to the same plan on the same
 *                device;
 *   shape_class  the same walk with dimension *values* masked to rank,
 *                so jobs differing only in batch/hidden width share a
 *                class (a different seq_len unrolls to a different node
 *                count and so a different class — a known limit);
 *   gpu_sig      the GpuConfig timing model (SMs, flops, HBM,
 *                launch/event overheads). Measurement-affecting noise
 *                knobs (autoboost, faults, tracing) are excluded: they
 *                perturb the journey, not the converged answer;
 *   lib_sig      the kernel-library set the plan chose from.
 *
 * Lookup walks a three-tier ladder, L1 -> L2 -> L3 (the memory ->
 * knowledge -> golden-advice ladder of AMOS's SubScheduler):
 *
 *   L1  exact match on all four hashes: reuse the stored config
 *       outright — no wiring, one measured mini-batch to verify;
 *   L2  same (shape_class, gpu_sig, lib_sig), different graph_sig: a
 *       shape neighbor. Its config seeds the wirer's best-so-far and
 *       its statistics pre-bind the transferable variables; only the
 *       residual space is explored;
 *   L3  no per-graph entry at all: global per-library win counts for
 *       (gpu_sig, lib_sig) bias the initial library choice.
 *
 * Changing the GPU timing model or the library set changes gpu_sig /
 * lib_sig, so stale knowledge invalidates by key mismatch — the same
 * key-mangling-as-invalidation discipline the profile index uses for
 * context prefixes (§5.1).
 *
 * On disk, each entry is one file framed by a versioned header carrying
 * the payload length and an FNV-1a checksum; truncated or corrupted
 * files are rejected with a "line N" diagnosis and never silently
 * accepted (tests/data/plan_store_v1 is the compatibility fixture CI
 * replays). Writes go to a temp file then rename, so concurrent
 * readers see only whole entries.
 */
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config_io.h"
#include "core/profile_index.h"
#include "core/scheduler.h"
#include "graph/graph.h"
#include "sim/gpu.h"

namespace astra {

/** FNV-1a 64-bit over a byte string (store keys and checksums). */
uint64_t fnv1a64(const std::string& bytes);
uint64_t fnv1a64(const void* data, size_t len, uint64_t seed);

/** Fixed-width lowercase hex of a 64-bit hash (filenames, headers). */
std::string hash_hex(uint64_t h);

/** Canonical identity of one (workload, device, library-set) sighting. */
struct PlanStoreKey
{
    uint64_t graph_sig = 0;
    uint64_t shape_class = 0;
    uint64_t gpu_sig = 0;
    uint64_t lib_sig = 0;

    /**
     * Static matmul flop estimate of the graph — the L2 neighbor
     * distance (closest |log flops ratio| wins; deterministic filename
     * tie-break). Not part of the identity.
     */
    double total_flops = 0.0;

    bool
    operator==(const PlanStoreKey& o) const
    {
        return graph_sig == o.graph_sig && shape_class == o.shape_class &&
               gpu_sig == o.gpu_sig && lib_sig == o.lib_sig;
    }
};

/** Canonicalize a graph + device into a store key (see file header). */
PlanStoreKey make_plan_store_key(const Graph& graph,
                                 const GpuConfig& gpu);

/** One persisted wiring outcome. */
struct PlanStoreEntry
{
    PlanStoreKey key;

    /** The winning configuration. */
    ScheduleConfig config;

    /** Measured end-to-end time of the winner when stored (ns). */
    double best_ns = 0.0;

    /** Mini-batches the original exploration spent. */
    int64_t minibatches = 0;

    /** Termination reason of the original exploration ("complete"...). */
    std::string termination;

    /** Full measurement statistics of the exploration (bit-exact). */
    ProfileIndex profile;
};

/** Which rung of the lookup ladder answered (report labels). */
enum class StoreTier
{
    Miss,  ///< cold: nothing reusable, full exploration
    L3,    ///< per-library priors only (biased ordering)
    L2,    ///< shape-neighbor transfer (partial reuse)
    L1,    ///< exact hit (no wiring)
};

/** Stable string name ("miss", "l3", "l2", "l1") for reports. */
const char* store_tier_name(StoreTier t);

/** Outcome of one ladder walk. */
struct StoreLookup
{
    StoreTier tier = StoreTier::Miss;

    /** Valid when tier is L1 or L2 (the exact or neighbor entry). */
    PlanStoreEntry entry;

    /**
     * L3 prior: the library with the most stored wins under this
     * (gpu_sig, lib_sig), or -1 when no priors exist. Also filled on
     * L2 (the ladder is cumulative).
     */
    int preferred_lib = -1;

    /**
     * Diagnoses of entries that were present but rejected (corrupt,
     * truncated, wrong version) during the walk — surfaced to the
     * convergence report so a decaying store is visible, not silent.
     */
    std::vector<std::string> errors;
};

/**
 * Directory-backed knowledge base. Thread-compatible (distinct
 * instances may share a directory across processes; writes are atomic
 * via temp-file + rename).
 */
class PlanStore
{
  public:
    explicit PlanStore(std::filesystem::path dir);

    const std::filesystem::path& dir() const { return dir_; }

    /**
     * Persist one wiring outcome (overwriting any entry under the same
     * key) and fold its library wins into the per-(gpu,lib) priors.
     * @return false (with *error filled when non-null) on I/O failure.
     */
    bool put(const PlanStoreEntry& entry, std::string* error = nullptr);

    /** Walk the L1 -> L2 -> L3 ladder for a key. */
    StoreLookup lookup(const PlanStoreKey& key) const;

    /** Entry filename for a key ("<shape>.<gpu>.<lib>.<graph>.plan"). */
    static std::string entry_filename(const PlanStoreKey& key);

    /**
     * Serialize one entry with the versioned/checksummed framing.
     * Exposed (with read_entry) so tests can build golden fixtures and
     * corrupt them deliberately.
     */
    static std::string entry_to_string(const PlanStoreEntry& entry);

    /**
     * Parse a framed entry; rejects version mismatches, truncation
     * (payload shorter than the declared length) and checksum failures.
     * @return false (leaving *entry untouched) on malformed input;
     *         *error receives "line N: reason" when non-null.
     */
    static bool entry_from_string(const std::string& text,
                                  PlanStoreEntry* entry,
                                  std::string* error = nullptr);

  private:
    /** Load + verify one entry file. */
    bool read_entry_file(const std::filesystem::path& path,
                         PlanStoreEntry* entry, std::string* error) const;

    /** Atomically write `text` to `path` (temp + rename). */
    bool write_file(const std::filesystem::path& path,
                    const std::string& text, std::string* error) const;

    /** Per-library win counts for (gpu_sig, lib_sig); empty if none. */
    std::vector<int64_t> read_priors(uint64_t gpu_sig,
                                     uint64_t lib_sig) const;

    std::filesystem::path dir_;
};

/**
 * The ASTRA_PLAN_STORE environment variable, or "" when unset — the
 * default for AstraOptions::plan_store, so any driver joins the fleet
 * knowledge base without a flag.
 */
std::string plan_store_dir_from_env();

}  // namespace astra
