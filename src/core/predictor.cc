#include "core/predictor.h"

#include <cmath>

#include "support/logging.h"

namespace astra {

PredictorFeatures
make_features(double gflops, double mbytes, double launches, int lib)
{
    PredictorFeatures x{};
    x[0] = 1.0;
    x[1] = gflops;
    x[2] = mbytes;
    x[3] = launches;
    if (lib >= 0) {
        ASTRA_ASSERT(lib < kNumGemmLibs, "bad lib index ", lib);
        x[4 + lib] = 1.0;
    }
    return x;
}

CostPredictor::CostPredictor(double lambda, int min_rows)
    : lambda_(lambda), min_rows_(min_rows)
{
    ASTRA_ASSERT(lambda_ > 0.0 && min_rows_ >= 1);
}

void
CostPredictor::observe(const PredictorFeatures& x, double y)
{
    ASTRA_ASSERT(y >= 0.0 && std::isfinite(y), "bad observation ", y);
    // Track one-step-ahead accuracy before the update so the residual
    // reflects genuine generalization, not memorization.
    if (y > 0.0) {
        if (const auto p = predict(x)) {
            resid_sum_ += std::abs(*p - y) / y;
            ++resid_n_;
        }
    }
    for (int i = 0; i < kPredictorDim; ++i) {
        for (int j = 0; j < kPredictorDim; ++j)
            a_[static_cast<size_t>(i)][static_cast<size_t>(j)] +=
                x[static_cast<size_t>(i)] * x[static_cast<size_t>(j)];
        b_[static_cast<size_t>(i)] += x[static_cast<size_t>(i)] * y;
        if (x[static_cast<size_t>(i)] != 0.0)
            ++support_[static_cast<size_t>(i)];
    }
    ++rows_;
}

bool
CostPredictor::solve(std::array<double, kPredictorDim>* w) const
{
    // Gaussian elimination with partial pivoting over A + lambda*I.
    std::array<std::array<double, kPredictorDim + 1>, kPredictorDim> m{};
    for (int i = 0; i < kPredictorDim; ++i) {
        for (int j = 0; j < kPredictorDim; ++j)
            m[static_cast<size_t>(i)][static_cast<size_t>(j)] =
                a_[static_cast<size_t>(i)][static_cast<size_t>(j)] +
                (i == j ? lambda_ : 0.0);
        m[static_cast<size_t>(i)][kPredictorDim] =
            b_[static_cast<size_t>(i)];
    }
    for (int col = 0; col < kPredictorDim; ++col) {
        int pivot = col;
        for (int r = col + 1; r < kPredictorDim; ++r)
            if (std::abs(m[static_cast<size_t>(r)]
                          [static_cast<size_t>(col)]) >
                std::abs(m[static_cast<size_t>(pivot)]
                          [static_cast<size_t>(col)]))
                pivot = r;
        if (std::abs(m[static_cast<size_t>(pivot)]
                      [static_cast<size_t>(col)]) < 1e-12)
            return false;
        std::swap(m[static_cast<size_t>(pivot)],
                  m[static_cast<size_t>(col)]);
        for (int r = 0; r < kPredictorDim; ++r) {
            if (r == col)
                continue;
            const double f = m[static_cast<size_t>(r)]
                              [static_cast<size_t>(col)] /
                             m[static_cast<size_t>(col)]
                              [static_cast<size_t>(col)];
            for (int c = col; c <= kPredictorDim; ++c)
                m[static_cast<size_t>(r)][static_cast<size_t>(c)] -=
                    f * m[static_cast<size_t>(col)][static_cast<size_t>(c)];
        }
    }
    for (int i = 0; i < kPredictorDim; ++i)
        (*w)[static_cast<size_t>(i)] =
            m[static_cast<size_t>(i)][kPredictorDim] /
            m[static_cast<size_t>(i)][static_cast<size_t>(i)];
    return true;
}

std::optional<double>
CostPredictor::predict(const PredictorFeatures& x) const
{
    if (rows_ < min_rows_)
        return std::nullopt;
    // Support gating: extrapolating along a never-observed feature axis
    // (e.g. a library no measurement has used yet) is a guess, and the
    // predictor must never guess.
    for (int j = 0; j < kPredictorDim; ++j)
        if (x[static_cast<size_t>(j)] != 0.0 &&
            support_[static_cast<size_t>(j)] == 0)
            return std::nullopt;
    std::array<double, kPredictorDim> w{};
    if (!solve(&w))
        return std::nullopt;
    double y = 0.0;
    for (int j = 0; j < kPredictorDim; ++j)
        y += w[static_cast<size_t>(j)] * x[static_cast<size_t>(j)];
    if (!(y > 0.0) || !std::isfinite(y))
        return std::nullopt;
    return y;
}

double
CostPredictor::rel_residual() const
{
    if (resid_n_ == 0)
        return 1.0;  // no track record: maximally distrustful
    return resid_sum_ / static_cast<double>(resid_n_);
}

}  // namespace astra
