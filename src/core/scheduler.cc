#include "core/scheduler.h"

#include <algorithm>
#include <set>

#include "obs/obs.h"
#include "runtime/executor.h"
#include "runtime/wired.h"
#include "support/logging.h"

namespace astra {

Scheduler::Scheduler(const Graph& graph, const SearchSpace& space,
                     SchedulerOptions opts)
    : graph_(graph), space_(space), opts_(opts)
{}

namespace {

/** Equivalence-class signature of a unit (§4.5.5). */
std::string
unit_signature(const Graph& graph, const PlanStep& unit)
{
    std::string sig = std::to_string(static_cast<int>(unit.kind));
    sig += "|" + std::to_string(unit.nodes.size());
    const Node& first = graph.node(unit.nodes[0]);
    sig += "|" + op_name(first.kind) + "|" + first.desc.shape.key();
    if (first.is_matmul())
        sig += "|" + gemm_lib_name(unit.lib);
    return sig;
}

}  // namespace

std::vector<PlanStep>
Scheduler::assemble_units(const ScheduleConfig& config,
                          const std::map<int, int>& forced_chunk) const
{
    ASTRA_ASSERT(config.strategy >= 0 &&
                 config.strategy <
                     static_cast<int>(space_.strategies.size()));
    const AllocStrategy& strat =
        space_.strategies[static_cast<size_t>(config.strategy)];

    std::vector<PlanStep> steps;
    std::vector<int> covered(static_cast<size_t>(graph_.size()), -1);
    auto cover = [&](const std::vector<NodeId>& nodes, int step_idx) {
        for (NodeId id : nodes) {
            ASTRA_ASSERT(covered[static_cast<size_t>(id)] < 0,
                         "node %", id, " covered twice");
            covered[static_cast<size_t>(id)] = step_idx;
        }
    };

    // Group id of every grouped MatMul (for lib/profile lookup when it
    // executes unfused).
    std::vector<int> group_of(static_cast<size_t>(graph_.size()), -1);
    std::vector<int> ladder_add_group(static_cast<size_t>(graph_.size()),
                                      -1);
    for (const FusionGroup& g : space_.groups) {
        for (NodeId m : g.mms)
            if (group_of[static_cast<size_t>(m)] < 0)
                group_of[static_cast<size_t>(m)] = g.id;
        for (NodeId a : g.adds)
            if (ladder_add_group[static_cast<size_t>(a)] < 0)
                ladder_add_group[static_cast<size_t>(a)] = g.id;
    }

    // ---- fused GEMM chunks ------------------------------------------------
    for (const FusionGroup& g : space_.groups) {
        const bool enabled =
            strat.group_enabled[static_cast<size_t>(g.id)];
        int chunk = g.id < static_cast<int>(config.group_chunk.size())
                        ? config.group_chunk[static_cast<size_t>(g.id)]
                        : 1;
        const auto forced = forced_chunk.find(g.id);
        if (forced != forced_chunk.end())
            chunk = std::min(chunk, forced->second);
        if (!enabled)
            chunk = 1;
        if (chunk <= 1)
            continue;
        // A group only fuses if its members aren't claimed by another
        // (conflicting) group that was scheduled first; strategies keep
        // enabled groups disjoint, so first-come is safe.
        bool members_free = true;
        for (NodeId m : g.mms)
            members_free &= covered[static_cast<size_t>(m)] < 0;
        if (g.kind == GroupKind::Ladder)
            for (NodeId a : g.adds)
                members_free &= covered[static_cast<size_t>(a)] < 0;
        if (!members_free)
            continue;

        const int n = static_cast<int>(g.mms.size());
        for (int lo = 0; lo < n; lo += chunk) {
            const int hi = std::min(lo + chunk, n);
            PlanStep step;
            step.lib = g.id < static_cast<int>(config.group_lib.size())
                           ? config.group_lib[static_cast<size_t>(g.id)]
                           : GemmLib::Cublas;
            const auto key_it = config.group_keys.find(g.id);
            if (key_it != config.group_keys.end()) {
                step.profile = true;
                step.profile_key = key_it->second;
            }
            if (hi - lo == 1 && g.kind == GroupKind::Batch) {
                step.kind = StepKind::Single;
                step.nodes = {g.mms[static_cast<size_t>(lo)]};
            } else if (g.kind == GroupKind::Batch) {
                step.kind = StepKind::FusedGemm;
                step.fused_axis = g.axis;
                step.nodes.assign(g.mms.begin() + lo, g.mms.begin() + hi);
            } else {
                if (hi - lo == 1) {
                    // A lone ladder leaf stays a single GEMM; its Add
                    // executes as a normal elementwise node.
                    step.kind = StepKind::Single;
                    step.nodes = {g.mms[static_cast<size_t>(lo)]};
                } else {
                    step.kind = StepKind::LadderGemm;
                    step.fused_axis = g.axis;
                    step.nodes.assign(g.mms.begin() + lo,
                                      g.mms.begin() + hi);
                    const int add_lo = std::max(lo - 1, 0);
                    const int add_hi = hi - 1;  // exclusive index + 1
                    for (int a = add_lo; a < add_hi; ++a)
                        step.nodes.push_back(
                            g.adds[static_cast<size_t>(a)]);
                }
            }
            const int idx = static_cast<int>(steps.size());
            cover(step.nodes, idx);
            steps.push_back(std::move(step));
        }
    }

    // ---- fused elementwise chains (§5.3) -----------------------------------
    if (config.elementwise_fusion) {
        for (NodeId i = 0; i < graph_.size(); ++i) {
            const Node& n = graph_.node(i);
            if (covered[static_cast<size_t>(i)] >= 0 ||
                !op_is_elementwise(n.kind))
                continue;
            std::vector<NodeId> chain{i};
            std::set<NodeId> in_chain{i};
            // Scan ahead, skipping interleaved non-elementwise nodes,
            // within a bounded window past the last member. Joining is
            // safe exactly when every input predates the chain or is a
            // member: no skipped node can then sit on a path back into
            // the chain, so contracting it cannot create a cycle.
            for (NodeId j = i + 1;
                 j < graph_.size() &&
                 static_cast<int>(chain.size()) < opts_.max_ew_chain &&
                 j - chain.back() <= opts_.ew_chain_window;
                 ++j) {
                const Node& cand = graph_.node(j);
                if (covered[static_cast<size_t>(j)] >= 0 ||
                    !op_is_elementwise(cand.kind))
                    continue;
                bool ok = true;
                for (NodeId in : cand.inputs)
                    ok &= in < i || in_chain.count(in) > 0;
                if (!ok)
                    continue;
                chain.push_back(j);
                in_chain.insert(j);
            }
            if (chain.size() < 2)
                continue;
            PlanStep step;
            step.kind = StepKind::FusedElementwise;
            step.nodes = chain;
            const int idx = static_cast<int>(steps.size());
            cover(step.nodes, idx);
            steps.push_back(std::move(step));
        }
    }

    // ---- singles ------------------------------------------------------------
    for (const Node& n : graph_.nodes()) {
        if (covered[static_cast<size_t>(n.id)] >= 0 ||
            op_is_source(n.kind))
            continue;
        PlanStep step;
        step.kind = StepKind::Single;
        step.nodes = {n.id};
        if (n.is_matmul()) {
            const int g = group_of[static_cast<size_t>(n.id)];
            if (g >= 0) {
                step.lib =
                    g < static_cast<int>(config.group_lib.size())
                        ? config.group_lib[static_cast<size_t>(g)]
                        : GemmLib::Cublas;
                const auto key_it = config.group_keys.find(g);
                if (key_it != config.group_keys.end()) {
                    step.profile = true;
                    step.profile_key = key_it->second;
                }
            } else {
                const auto lib_it = config.single_lib.find(n.id);
                if (lib_it != config.single_lib.end())
                    step.lib = lib_it->second;
                const auto key_it = config.single_keys.find(n.id);
                if (key_it != config.single_keys.end()) {
                    step.profile = true;
                    step.profile_key = key_it->second;
                }
            }
        } else if (n.kind == OpKind::Add &&
                   ladder_add_group[static_cast<size_t>(n.id)] >= 0) {
            // Unfused ladder Adds count toward their group's metric so
            // chunk=1 is charged the accumulation cost fusion removes.
            const auto key_it = config.group_keys.find(
                ladder_add_group[static_cast<size_t>(n.id)]);
            if (key_it != config.group_keys.end()) {
                step.profile = true;
                step.profile_key = key_it->second;
            }
        }
        const int idx = static_cast<int>(steps.size());
        cover(step.nodes, idx);
        steps.push_back(std::move(step));
    }

    return steps;
}

std::vector<PlanStep>
Scheduler::build_units(const ScheduleConfig& config) const
{
    obs::ScopedSpan span(obs::Category::Wire, "scheduler.build_units");
    // Contracting independently-minable fusion groups can still create
    // cycles *between* two fused steps (member A1 feeds member B1
    // while member B2 feeds member A2). The repair loop halves the
    // fusion chunk of every group caught in a cycle and re-assembles —
    // the standard fusion-clustering cycle-breaking strategy.
    std::map<int, int> forced_chunk;
    for (int attempt = 0; attempt < 64; ++attempt) {
        std::vector<PlanStep> steps = assemble_units(config, forced_chunk);

        std::vector<int> covered(static_cast<size_t>(graph_.size()), -1);
        for (size_t si = 0; si < steps.size(); ++si)
            for (NodeId id : steps[si].nodes)
                covered[static_cast<size_t>(id)] = static_cast<int>(si);

        const size_t num_steps = steps.size();
        std::vector<std::vector<size_t>> consumers(num_steps);
        std::vector<int> indegree(num_steps, 0);
        for (size_t si = 0; si < num_steps; ++si) {
            std::set<size_t> deps;
            for (NodeId id : steps[si].nodes)
                for (NodeId in : graph_.node(id).inputs) {
                    const int p = covered[static_cast<size_t>(in)];
                    if (p >= 0 && static_cast<size_t>(p) != si)
                        deps.insert(static_cast<size_t>(p));
                }
            for (size_t d : deps) {
                consumers[d].push_back(si);
                ++indegree[si];
            }
        }
        // Kahn's algorithm, smallest anchor (max covered node id)
        // first so the order tracks program order.
        auto anchor = [&](size_t si) {
            NodeId a = -1;
            for (NodeId id : steps[si].nodes)
                a = std::max(a, id);
            return a;
        };
        std::set<std::pair<NodeId, size_t>> ready;
        for (size_t si = 0; si < num_steps; ++si)
            if (indegree[si] == 0)
                ready.insert({anchor(si), si});
        std::vector<bool> placed(num_steps, false);
        std::vector<PlanStep> ordered;
        ordered.reserve(num_steps);
        while (!ready.empty()) {
            const size_t si = ready.begin()->second;
            ready.erase(ready.begin());
            placed[si] = true;
            ordered.push_back(std::move(steps[si]));
            for (size_t c : consumers[si])
                if (--indegree[c] == 0)
                    ready.insert({anchor(c), c});
        }
        if (ordered.size() == num_steps)
            return ordered;

        // Cycle: shrink every fused group participating in it.
        bool shrunk = false;
        for (size_t si = 0; si < num_steps; ++si) {
            if (placed[si])
                continue;
            const PlanStep& step = steps[si];
            if (step.kind != StepKind::FusedGemm &&
                step.kind != StepKind::LadderGemm)
                continue;
            // Identify the group by its first member GEMM.
            for (const FusionGroup& g : space_.groups) {
                if (std::find(g.mms.begin(), g.mms.end(),
                              step.nodes[0]) == g.mms.end())
                    continue;
                const auto it = forced_chunk.find(g.id);
                int current = it != forced_chunk.end()
                                  ? it->second
                                  : static_cast<int>(g.mms.size());
                if (current > 1) {
                    forced_chunk[g.id] = current / 2;
                    shrunk = true;
                }
                break;
            }
        }
        ASTRA_ASSERT(shrunk,
                     "cycle in step graph not attributable to fusion");
    }
    panic("cycle repair failed to converge");
}

double
Scheduler::estimate_unit_ns(const PlanStep& unit) const
{
    // Purely static estimate (the paper's "static flops calculation"):
    // never measured, only used to calibrate super-epoch extents.
    double ns = opts_.est_launch_ns;
    for (NodeId id : unit.nodes) {
        const Node& n = graph_.node(id);
        if (n.is_matmul())
            ns += matmul_flops(n, graph_) / (0.4 * 166.0 * 56.0);
        else
            ns += static_cast<double>(n.desc.shape.numel()) * 12.0 / 650.0;
    }
    return ns;
}

StreamSpace
Scheduler::stream_space(const std::vector<PlanStep>& units,
                        int num_streams) const
{
    obs::ScopedSpan span(obs::Category::Wire, "scheduler.stream_space");
    ASTRA_ASSERT(num_streams >= 1);
    StreamSpace ss;
    const size_t n = units.size();
    if (n == 0)
        return ss;

    // Super-epoch partition by cumulative static cost.
    std::vector<int> se_of(n, 0);
    int se = 0;
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
        acc += estimate_unit_ns(units[i]);
        se_of[i] = se;
        if (acc >= opts_.super_epoch_ns) {
            ++se;
            acc = 0.0;
        }
    }
    ss.num_super_epochs = se_of[n - 1] + 1;

    // Producer unit of every node.
    std::vector<int> producer(static_cast<size_t>(graph_.size()), -1);
    for (size_t i = 0; i < n; ++i)
        for (NodeId id : units[i].nodes)
            producer[static_cast<size_t>(id)] = static_cast<int>(i);

    // Dependency level within each super-epoch.
    std::vector<int> level(n, 0);
    for (size_t i = 0; i < n; ++i) {
        int lv = 0;
        for (NodeId id : units[i].nodes) {
            for (NodeId in : graph_.node(id).inputs) {
                const int p = producer[static_cast<size_t>(in)];
                if (p >= 0 && static_cast<size_t>(p) != i &&
                    se_of[static_cast<size_t>(p)] == se_of[i])
                    lv = std::max(lv, level[static_cast<size_t>(p)] + 1);
            }
        }
        level[i] = lv;
    }

    // Epochs = (super-epoch, level) buckets, in order.
    std::map<std::pair<int, int>, EpochInfo> epochs;
    for (size_t i = 0; i < n; ++i) {
        EpochInfo& e = epochs[{se_of[i], level[i]}];
        e.super_epoch = se_of[i];
        e.level = level[i];
        e.units.push_back(i);
    }

    for (auto& [key, e] : epochs) {
        (void)key;
        // Equivalence classes inside the epoch.
        std::map<std::string, std::vector<size_t>> classes;
        std::vector<std::string> class_order;
        for (size_t local = 0; local < e.units.size(); ++local) {
            const std::string sig =
                unit_signature(graph_, units[e.units[local]]);
            if (!classes.count(sig))
                class_order.push_back(sig);
            classes[sig].push_back(local);
        }

        // Per-class split options (near-balanced first, §4.8). Each
        // option is a per-local-unit stream assignment for the class.
        std::vector<std::vector<std::vector<int>>> class_opts;
        for (const std::string& sig : class_order) {
            const auto& members = classes[sig];
            const int m = static_cast<int>(members.size());
            std::vector<std::vector<int>> opts_for_class;
            if (m == 1) {
                for (int s = 0; s < num_streams; ++s)
                    opts_for_class.push_back({s});
            } else if (num_streams == 1) {
                opts_for_class.push_back(
                    std::vector<int>(static_cast<size_t>(m), 0));
            } else if (num_streams == 2) {
                const int center = (m + 1) / 2;
                std::set<int> seen;
                // Near-balanced splits first (§4.8), plus the all-on-
                // one-stream opt-out so exploration can disable the
                // split where concurrency does not pay.
                for (int d : {0, -1, 1, -2, 2, m - center}) {
                    const int n0 = std::clamp(center + d, 0, m);
                    if (!seen.insert(n0).second)
                        continue;
                    std::vector<int> assign(
                        static_cast<size_t>(m), 1);
                    for (int j = 0; j < n0; ++j)
                        assign[static_cast<size_t>(j)] = 0;
                    opts_for_class.push_back(std::move(assign));
                }
            } else {
                // Wider machines: balanced round-robin over all S,
                // over two streams, and the serial opt-out.
                std::vector<int> over_s(static_cast<size_t>(m));
                std::vector<int> over_two(static_cast<size_t>(m));
                for (int j = 0; j < m; ++j) {
                    over_s[static_cast<size_t>(j)] = j % num_streams;
                    over_two[static_cast<size_t>(j)] = j % 2;
                }
                opts_for_class.push_back(std::move(over_s));
                opts_for_class.push_back(std::move(over_two));
                opts_for_class.push_back(
                    std::vector<int>(static_cast<size_t>(m), 0));
            }
            class_opts.push_back(std::move(opts_for_class));
        }

        // Cap the flattened product: trim the widest class until the
        // epoch fits the exhaustive budget.
        auto product = [&] {
            int64_t p = 1;
            for (const auto& c : class_opts)
                p *= static_cast<int64_t>(c.size());
            return p;
        };
        while (product() > opts_.max_epoch_options) {
            size_t widest = 0;
            for (size_t c = 1; c < class_opts.size(); ++c)
                if (class_opts[c].size() > class_opts[widest].size())
                    widest = c;
            if (class_opts[widest].size() <= 1)
                break;
            class_opts[widest].pop_back();
        }

        // Flatten (mixed radix) into per-epoch options.
        const int64_t total = product();
        for (int64_t o = 0; o < total; ++o) {
            std::vector<int> streams(e.units.size(), 0);
            int64_t rem = o;
            for (size_t c = 0; c < class_opts.size(); ++c) {
                const int64_t radix =
                    static_cast<int64_t>(class_opts[c].size());
                const auto& assign =
                    class_opts[c][static_cast<size_t>(rem % radix)];
                rem /= radix;
                const auto& members = classes[class_order[c]];
                for (size_t j = 0; j < members.size(); ++j)
                    streams[members[j]] = assign[j];
            }
            e.options.push_back(std::move(streams));
        }
    }

    for (auto& [key, e] : epochs) {
        (void)key;
        ss.epochs.push_back(std::move(e));
    }
    return ss;
}

ExecutionPlan
Scheduler::build(const ScheduleConfig& config) const
{
    obs::ScopedSpan span(obs::Category::Wire, "scheduler.build");
    std::vector<PlanStep> units = build_units(config);
    ExecutionPlan plan;
    if (!config.use_streams) {
        plan.num_streams = 1;
        plan.steps = std::move(units);
        return plan;
    }

    const StreamSpace ss = stream_space(units, config.num_streams);
    plan.num_streams = config.num_streams;

    int prev_se = 0;
    for (const EpochInfo& e : ss.epochs) {
        if (e.super_epoch != prev_se) {
            // Super-epoch boundary: reset stream history (§4.5.3).
            PlanStep barrier;
            barrier.kind = StepKind::Barrier;
            plan.steps.push_back(std::move(barrier));
            prev_se = e.super_epoch;
        }
        const auto choice_it =
            config.epoch_choice.find({e.super_epoch, e.level});
        int opt = choice_it != config.epoch_choice.end()
                      ? choice_it->second
                      : 0;
        ASTRA_ASSERT(!e.options.empty());
        opt = std::clamp(opt, 0,
                         static_cast<int>(e.options.size()) - 1);
        const auto& streams = e.options[static_cast<size_t>(opt)];

        const auto key_it = config.epoch_keys.find(
            {e.super_epoch, e.level});

        // Emit this epoch's units interleaved across streams so the
        // host enqueue pipeline feeds every stream promptly (issuing
        // one stream's whole epoch first would starve the others).
        std::vector<std::vector<size_t>> per_stream(
            static_cast<size_t>(plan.num_streams));
        for (size_t j = 0; j < e.units.size(); ++j)
            per_stream[static_cast<size_t>(streams[j])].push_back(
                e.units[j]);
        for (size_t rank = 0;; ++rank) {
            bool emitted = false;
            for (int s = 0; s < plan.num_streams; ++s) {
                const auto& list = per_stream[static_cast<size_t>(s)];
                if (rank >= list.size())
                    continue;
                PlanStep step = units[list[rank]];
                step.stream = s;
                if (key_it != config.epoch_keys.end()) {
                    step.profile = true;
                    step.epoch_metric = true;
                    step.profile_key = key_it->second;
                }
                plan.steps.push_back(std::move(step));
                emitted = true;
            }
            if (!emitted)
                break;
        }
    }
    return plan;
}

namespace {

/**
 * Serialize every plan-affecting field of a ScheduleConfig into a
 * cache key. Strings (profile keys) are length-prefixed so no key can
 * alias another by embedding a separator.
 */
std::string
plan_signature(const ScheduleConfig& c)
{
    std::string sig;
    sig.reserve(128);
    auto num = [&sig](int64_t v) {
        sig += std::to_string(v);
        sig += ',';
    };
    auto str = [&sig, &num](const std::string& s) {
        num(static_cast<int64_t>(s.size()));
        sig += s;
    };
    num(c.strategy);
    num(c.elementwise_fusion ? 1 : 0);
    num(c.use_streams ? 1 : 0);
    num(c.num_streams);
    sig += "ch;";
    for (int v : c.group_chunk)
        num(v);
    sig += "gl;";
    for (GemmLib lib : c.group_lib)
        num(static_cast<int>(lib));
    sig += "sl;";
    for (const auto& [id, lib] : c.single_lib) {
        num(id);
        num(static_cast<int>(lib));
    }
    sig += "ec;";
    for (const auto& [se, opt] : c.epoch_choice) {
        num(se.first);
        num(se.second);
        num(opt);
    }
    sig += "gk;";
    for (const auto& [id, key] : c.group_keys) {
        num(id);
        str(key);
    }
    sig += "sk;";
    for (const auto& [id, key] : c.single_keys) {
        num(id);
        str(key);
    }
    sig += "ek;";
    for (const auto& [se, key] : c.epoch_keys) {
        num(se.first);
        num(se.second);
        str(key);
    }
    return sig;
}

}  // namespace

std::shared_ptr<const ExecutionPlan>
Scheduler::build_cached(const ScheduleConfig& config) const
{
    const std::string sig = plan_signature(config);
    {
        std::lock_guard<std::mutex> lock(cache_mu_);
        const auto it = plan_cache_.find(sig);
        if (it != plan_cache_.end()) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            static obs::Counter& hits =
                obs::counter("scheduler.plan_cache.hits");
            hits.add();
            return it->second;
        }
    }
    // Lower outside the lock: concurrent misses on *different* keys
    // must not serialize (lowering dominates). Concurrent misses on
    // the same key are possible in principle; the first insert wins
    // and both count as misses — callers on the wirer path fetch a
    // config's plan once before fanning repeats out, so same-key races
    // never occur there and the counters stay deterministic.
    auto plan =
        std::make_shared<const ExecutionPlan>(build(config));
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto [it, inserted] = plan_cache_.emplace(sig, std::move(plan));
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& misses =
        obs::counter("scheduler.plan_cache.misses");
    misses.add();
    return it->second;
}

std::shared_ptr<const WiredBinary>
Scheduler::wire_cached(const ScheduleConfig& config, const TensorMap& tmap,
                       const GpuConfig& gpu) const
{
    const std::string sig = plan_signature(config);
    {
        std::lock_guard<std::mutex> lock(cache_mu_);
        const auto it = wired_cache_.find(sig);
        if (it != wired_cache_.end()) {
            wired_hits_.fetch_add(1, std::memory_order_relaxed);
            static obs::Counter& hits =
                obs::counter("scheduler.wired_cache.hits");
            hits.add();
            return it->second;
        }
    }
    // Lower outside the lock, reusing the plan cache for the schedule
    // itself. Lowering includes the reuse audit and the legality
    // verifier: a blob that would replay incorrectly must never enter
    // the cache.
    const std::shared_ptr<const ExecutionPlan> plan = build_cached(config);
    auto bin = std::make_shared<WiredBinary>(
        lower_plan(*plan, graph_, tmap, gpu));
    const WiredVerdict verdict = verify_wired(*bin);
    ASTRA_ASSERT(verdict.ok, "wired lowering failed verification: ",
                 verdict.why);
    std::shared_ptr<const WiredBinary> frozen = std::move(bin);
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto [it, inserted] = wired_cache_.emplace(sig, std::move(frozen));
    wired_misses_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& misses =
        obs::counter("scheduler.wired_cache.misses");
    misses.add();
    return it->second;
}

}  // namespace astra
