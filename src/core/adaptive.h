/**
 * @file
 * Adaptive variables and the update tree (paper §4.4.2).
 *
 * An AdaptiveVariable is the basic unit of adaptation: a named choice
 * with a small option set, a context prefix for profile-index keying,
 * and the paper's interface (initialize / iterate / get_profile_value).
 * Variables are organized into an update tree whose interior nodes are
 * annotated with an exploration mode:
 *
 *  - Parallel:   all children explored simultaneously, one option per
 *                mini-batch each — fine-grained profiling makes their
 *                measurements independent, so total trials are the MAX
 *                over children, not the product (§4.5.1).
 *  - Exhaustive: cartesian product of the children (history-sensitive
 *                choices inside an epoch, §4.5.3).
 *  - Prefix:     children explored left to right; each child is frozen
 *                at its measured best before the next starts (§4.5.4).
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/profile_index.h"

namespace astra {

/** One adaptive choice explored by the custom wirer. */
class AdaptiveVariable
{
  public:
    /**
     * @param key stable identity, e.g. "g3|chunk".
     * @param num_options number of choices (>= 1).
     * @param default_option the choice used before/without exploration.
     */
    AdaptiveVariable(std::string key, int num_options,
                     int default_option = 0);

    // ---- the paper's interface -------------------------------------------

    /** Reset to the default choice and forget visit progress. */
    void initialize();

    /**
     * Advance to the next unvisited option.
     * @return false when every option has been visited.
     */
    bool iterate();

    /** Measured metric of the current choice, or NaN if unmeasured. */
    double get_profile_value(const ProfileIndex& index) const;

    // ---- wiring ------------------------------------------------------------

    const std::string& key() const { return key_; }

    /** Set the higher-level-binding prefix mangled into profile keys. */
    void set_context(std::string prefix) { context_ = std::move(prefix); }
    const std::string& context() const { return context_; }

    /** Full profile-index key for a given choice of this variable. */
    std::string profile_key_for(int choice) const;

    /** Full profile-index key for the current choice. */
    std::string profile_key() const { return profile_key_for(current_); }

    int current() const { return current_; }
    void set(int option);
    int num_options() const { return num_options_; }

    // ---- option masking (what-if planning, §5.13) ---------------------------

    /**
     * Exclude one option from the remaining walk. The caller must have
     * decided the option is dominated *before* it was visited or
     * measured: disallowing a visited option would corrupt the visit
     * count, and a measured one could still win bind_best. The current
     * choice and the walk anchor (default) can never be disallowed.
     */
    void disallow(int option);

    /**
     * Keep only `allowed` (which must contain the current choice) and
     * re-anchor the walk at the current choice: the variable behaves as
     * if it were constructed over the surviving options with the
     * current one as default. Visit progress restarts.
     */
    void restrict_to(const std::vector<int>& allowed);

    /** Number of options still allowed. */
    int allowed_count() const;

    /** True unless `option` has been masked off. */
    bool is_allowed(int option) const;

    /** True once iterate() has walked every allowed option. */
    bool finished() const { return visited_ >= allowed_count(); }

    /**
     * Bind to the best measured option under the current context.
     * @return false when nothing has been measured (default retained).
     */
    bool bind_best(const ProfileIndex& index);

    /**
     * Noise-aware ranking of this variable's options under the current
     * context (ProfileIndex::decide with this variable's key prefix).
     * A non-decisive result means the top two candidates are within
     * the index policy's noise floor and deserve re-measurement.
     */
    ChoiceDecision decide(const ProfileIndex& index) const;

  private:
    std::string key_;
    std::string context_;
    int num_options_;
    int default_;
    int current_;
    int visited_ = 1;
    /** Per-option mask; empty means everything is allowed. */
    std::vector<char> disallowed_;
};

using VarPtr = std::shared_ptr<AdaptiveVariable>;

/** A node of the update tree. */
class UpdateNode
{
  public:
    enum class Mode
    {
        Leaf,
        Parallel,
        Exhaustive,
        Prefix,
    };

    /** Make a leaf holding one adaptive variable. */
    static std::unique_ptr<UpdateNode> leaf(VarPtr var);

    /** Make an interior node with the given exploration mode. */
    static std::unique_ptr<UpdateNode>
    composite(Mode mode, std::vector<std::unique_ptr<UpdateNode>> children);

    /**
     * Hook invoked by a Prefix node right after child `idx` is frozen
     * at its best; the custom wirer uses it to extend the contexts of
     * later children with the new binding (§4.6).
     */
    void
    set_on_child_bound(std::function<void(int)> hook)
    {
        on_child_bound_ = std::move(hook);
    }

    /** Reset the whole subtree to defaults. */
    void initialize();

    /** True when the subtree's exploration is complete. */
    bool finished() const;

    /**
     * Advance the exploration by one mini-batch step. Children that
     * complete are immediately bound to their measured best (the
     * exploration is work-conserving: finished parts run at their best
     * choice while the rest continues).
     */
    void advance(const ProfileIndex& index);

    /** Bind every variable in the subtree to its measured best. */
    void bind_best(const ProfileIndex& index);

    /** Upper bound on mini-batches this subtree needs (Table 7 math). */
    int64_t max_trials() const;

    /** Visit every variable in the subtree. */
    void
    for_each_var(const std::function<void(AdaptiveVariable&)>& fn) const;

    Mode mode() const { return mode_; }
    const std::vector<std::unique_ptr<UpdateNode>>& children() const
    {
        return children_;
    }
    const VarPtr& var() const { return var_; }

  private:
    UpdateNode() = default;

    Mode mode_ = Mode::Leaf;
    VarPtr var_;
    std::vector<std::unique_ptr<UpdateNode>> children_;
    std::function<void(int)> on_child_bound_;

    // Prefix state.
    size_t active_child_ = 0;
    // Exhaustive state.
    bool exhausted_ = false;
};

}  // namespace astra
