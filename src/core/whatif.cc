#include "core/whatif.h"

#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "core/config_io.h"
#include "runtime/dispatcher.h"
#include "runtime/executor.h"
#include "support/logging.h"

namespace astra {

namespace {

/**
 * Strip the device model down to a deterministic timing oracle: no
 * host compute, no fault draws, base clock. Replay exactness (and with
 * it the wirer's identity guarantee) holds against measurements taken
 * under the same conditions; the wirer's arming predicate enforces
 * that on the measuring side.
 */
GpuConfig
sanitize_device(const GpuConfig& gpu)
{
    GpuConfig g = gpu;
    g.execute_kernels = false;
    g.collect_trace = false;
    g.autoboost = false;
    g.forced_clock_multiplier = 0.0;
    g.faults = FaultPlan{};
    g.fault_salt = 0;
    return g;
}

ReplayResult
run_program(const WiredProgram& prog,
            const std::vector<KernelDesc>& kernels, const GpuConfig& cfg,
            const std::map<std::string, double>* override_ns,
            std::vector<TraceSpan>* spans_out)
{
    GpuConfig gpu_cfg = cfg;
    gpu_cfg.collect_trace = spans_out != nullptr;
    SimGpu gpu(gpu_cfg);
    for (int s = 1; s < prog.num_streams; ++s)
        gpu.create_stream();
    std::vector<EventId> events(static_cast<size_t>(prog.num_events));
    for (int32_t e = 0; e < prog.num_events; ++e)
        events[static_cast<size_t>(e)] = gpu.create_event();
    // The exact command walk of replay_wired (PR 7), which is gated
    // bit-identical to the generic dispatcher in CI — the replay and a
    // real dispatch diverge by construction nowhere.
    for (const WiredCmd& cmd : prog.cmds) {
        switch (cmd.op) {
          case WiredOp::Launch: {
            const KernelDesc& k = kernels[static_cast<size_t>(cmd.arg)];
            if (override_ns != nullptr && !k.key.empty()) {
                if (const auto it = override_ns->find(k.key);
                    it != override_ns->end()) {
                    // A substituted cost is a pure-serial kernel of
                    // exactly that duration: zero blocks hold no SMs,
                    // so on a serial schedule the total shifts by
                    // exactly the substituted delta.
                    KernelDesc sub;
                    sub.name = k.name;
                    sub.key = k.key;
                    sub.blocks = 0;
                    sub.setup_ns = it->second;
                    gpu.launch(cmd.stream, std::move(sub));
                    break;
                }
            }
            gpu.launch(cmd.stream, k);
            break;
          }
          case WiredOp::Record:
            gpu.record_event(cmd.stream,
                             events[static_cast<size_t>(cmd.arg)]);
            break;
          case WiredOp::Wait:
            gpu.wait_event(cmd.stream,
                           events[static_cast<size_t>(cmd.arg)]);
            break;
        }
    }
    gpu.synchronize();

    DispatchResult dres;
    collect_wired_profiles(prog, events, gpu, dres);
    ReplayResult r;
    r.total_ns = gpu.now_ns();
    r.profile_ns = std::move(dres.profile_ns);
    if (spans_out != nullptr)
        *spans_out = gpu.trace();
    return r;
}

}  // namespace

ReplayResult
replay_trace(const RecordedTrace& trace,
             const std::map<std::string, double>& override_ns)
{
    return run_program(trace.program, trace.kernels, trace.gpu,
                       override_ns.empty() ? nullptr : &override_ns,
                       nullptr);
}

WhatIfEngine::WhatIfEngine(const Graph& graph, const TensorMap& tmap,
                           const Scheduler& scheduler,
                           const GpuConfig& gpu)
    : graph_(graph), tmap_(tmap), scheduler_(scheduler),
      gpu_(sanitize_device(gpu))
{
}

ReplayResult
WhatIfEngine::evaluate(const ScheduleConfig& config) const
{
    // The plan cache includes the profiling-key attachments in its
    // signature, so what-if sweeps that revisit a lowering (anchors,
    // co-varied walks) skip the scheduler entirely.
    const std::shared_ptr<const ExecutionPlan> plan =
        scheduler_.build_cached(config);
    const WiredProgram prog =
        compile_plan(*plan, graph_, /*profiling=*/true);
    std::vector<KernelDesc> kernels(plan->steps.size());
    for (size_t i = 0; i < plan->steps.size(); ++i)
        if (plan->steps[i].kind != StepKind::Barrier)
            kernels[i] = build_step_kernel(plan->steps[i], graph_,
                                           tmap_, gpu_);
    return run_program(prog, kernels, gpu_, nullptr, nullptr);
}

RecordedTrace
WhatIfEngine::capture(const ScheduleConfig& config) const
{
    RecordedTrace trace;
    trace.config = config;
    trace.gpu = gpu_;

    const std::shared_ptr<const ExecutionPlan> plan =
        scheduler_.build_cached(config);
    trace.num_streams = plan->num_streams;
    trace.program = compile_plan(*plan, graph_, /*profiling=*/true);
    trace.kernels.resize(plan->steps.size());
    trace.step_keys.resize(plan->steps.size());
    for (size_t i = 0; i < plan->steps.size(); ++i) {
        if (plan->steps[i].kind != StepKind::Barrier)
            trace.kernels[i] =
                build_step_kernel(plan->steps[i], graph_, tmap_, gpu_);
        trace.step_keys[i] = plan->steps[i].profile_key;
    }
    const ReplayResult r = run_program(trace.program, trace.kernels,
                                       gpu_, nullptr, &trace.spans);
    trace.total_ns = r.total_ns;
    trace.profile_ns = r.profile_ns;
    return trace;
}

// ---- serialization -------------------------------------------------------

namespace {

// Local copies of config_io's locale-proof token parsers (they are
// file-private there by design; the formats stay independently
// evolvable).

bool
wi_parse_int(const std::string& s, long lo, long hi, long* out)
{
    if (s.empty())
        return false;
    long v = 0;
    const char* last = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(s.data(), last, v, 10);
    if (ec != std::errc() || ptr != last || v < lo || v > hi)
        return false;
    *out = v;
    return true;
}

bool
wi_parse_f64(const std::string& s, double* out)
{
    const char* first = s.data();
    const char* last = s.data() + s.size();
    bool neg = false;
    if (first != last && (*first == '+' || *first == '-')) {
        neg = *first == '-';
        ++first;
    }
    std::chars_format fmt = std::chars_format::general;
    if (last - first > 2 && first[0] == '0' &&
        (first[1] == 'x' || first[1] == 'X')) {
        fmt = std::chars_format::hex;
        first += 2;
    }
    if (first == last)
        return false;
    double v = 0.0;
    std::from_chars_result r = std::from_chars(first, last, v, fmt);
    if (fmt == std::chars_format::general &&
        (r.ec != std::errc() || r.ptr != last))
        r = std::from_chars(first, last, v, std::chars_format::hex);
    if (r.ec != std::errc() || r.ptr != last)
        return false;
    *out = neg ? -v : v;
    return true;
}

/** "line N: reason" accumulator, mirroring config_io's reader style. */
class Diag
{
  public:
    explicit Diag(std::string* error)
        : error_(error)
    {
    }

    void
    advance()
    {
        ++line_;
    }

    bool
    fail(const std::string& reason)
    {
        if (error_ != nullptr)
            *error_ = "line " + std::to_string(line_) + ": " + reason;
        return false;
    }

  private:
    std::string* error_;
    int line_ = 0;
};

/** Empty strings travel as "-" (keys/names never contain spaces). */
std::string
enc_str(const std::string& s)
{
    return s.empty() ? "-" : s;
}

std::string
dec_str(const std::string& s)
{
    return s == "-" ? "" : s;
}

std::vector<std::string>
split_ws(const std::string& line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

constexpr long kMaxCount = 10000000;  // counts are untrusted input

}  // namespace

void
write_trace(std::ostream& os, const RecordedTrace& trace)
{
    os << "astra-whatif-trace v1\n";
    os << std::hexfloat;
    os << "gpu " << trace.gpu.num_sms << " " << trace.gpu.flops_per_sm_ns
       << " " << trace.gpu.hbm_gbps << " "
       << trace.gpu.launch_overhead_ns << " "
       << trace.gpu.event_record_ns << " " << trace.gpu.event_enqueue_ns
       << "\n";
    os << "total_ns " << trace.total_ns << "\n";
    os << "num_streams " << trace.num_streams << "\n";

    const std::string cfg = config_to_string(trace.config);
    long cfg_lines = 0;
    for (char c : cfg)
        cfg_lines += c == '\n';
    os << "config " << cfg_lines << "\n" << cfg;

    const size_t num_steps = trace.kernels.size();
    os << "steps " << num_steps << "\n";
    for (size_t i = 0; i < num_steps; ++i) {
        const KernelDesc& k = trace.kernels[i];
        os << "step " << int(trace.program.is_barrier[i]) << " "
           << enc_str(trace.step_keys[i]) << " " << k.blocks << " "
           << k.block_ns << " " << k.setup_ns << " " << k.max_sms << " "
           << enc_str(k.name) << "\n";
    }

    os << "cmds " << trace.program.cmds.size() << "\n";
    for (const WiredCmd& c : trace.program.cmds) {
        const char op = c.op == WiredOp::Launch   ? 'L'
                        : c.op == WiredOp::Record ? 'R'
                                                  : 'W';
        os << "cmd " << op << " " << c.stream << " " << c.arg << "\n";
    }

    os << "step_begin";
    for (int32_t v : trace.program.step_begin)
        os << " " << v;
    os << "\n";
    os << "barrier_slots";
    for (int32_t v : trace.program.barrier_slots)
        os << " " << v;
    os << "\n";
    os << "num_events " << trace.program.num_events << "\n";
    os << "profiling " << int(trace.program.profiling) << "\n";

    os << "profiles " << trace.program.profiles.size() << "\n";
    for (const WiredProfile& p : trace.program.profiles)
        os << "profile " << int(p.epoch_metric) << " " << p.step << " "
           << p.start_slot << " " << p.end_slot << " " << p.barrier_begin
           << " " << p.barrier_end << " " << enc_str(p.key) << "\n";

    os << "profile_ns " << trace.profile_ns.size() << "\n";
    for (const auto& [key, ns] : trace.profile_ns)
        os << "pns " << ns << " " << enc_str(key) << "\n";

    os << "spans " << trace.spans.size() << "\n";
    for (const TraceSpan& s : trace.spans)
        os << "span " << s.stream << " " << s.start_ns << " " << s.end_ns
           << " " << enc_str(s.key) << " " << enc_str(s.name) << "\n";
    os << "end\n";
    os << std::defaultfloat;
}

bool
read_trace(std::istream& is, RecordedTrace* trace, std::string* error)
{
    Diag diag(error);
    std::string line;
    const auto next = [&](std::vector<std::string>* toks) {
        if (!std::getline(is, line))
            return false;
        diag.advance();
        *toks = split_ws(line);
        return true;
    };

    std::vector<std::string> t;
    if (!next(&t))
        return diag.fail("unexpected end of input (missing header)");
    if (t.size() != 2 || t[0] != "astra-whatif-trace" || t[1] != "v1")
        return diag.fail("bad header (want \"astra-whatif-trace v1\")");

    RecordedTrace tr;
    double f = 0.0;
    long n = 0;

    if (!next(&t) || t.size() != 7 || t[0] != "gpu")
        return diag.fail("bad gpu line");
    if (!wi_parse_int(t[1], 1, 1000000, &n))
        return diag.fail("bad gpu num_sms");
    tr.gpu.num_sms = static_cast<int>(n);
    double* gpu_f[5] = {&tr.gpu.flops_per_sm_ns, &tr.gpu.hbm_gbps,
                        &tr.gpu.launch_overhead_ns,
                        &tr.gpu.event_record_ns,
                        &tr.gpu.event_enqueue_ns};
    for (int i = 0; i < 5; ++i) {
        if (!wi_parse_f64(t[static_cast<size_t>(i) + 2], gpu_f[i]) ||
            !std::isfinite(*gpu_f[i]) || *gpu_f[i] < 0.0)
            return diag.fail("bad gpu timing constant");
    }
    tr.gpu = sanitize_device(tr.gpu);

    if (!next(&t) || t.size() != 2 || t[0] != "total_ns" ||
        !wi_parse_f64(t[1], &f) || !std::isfinite(f) || f < 0.0)
        return diag.fail("bad total_ns line");
    tr.total_ns = f;

    if (!next(&t) || t.size() != 2 || t[0] != "num_streams" ||
        !wi_parse_int(t[1], 1, 1024, &n))
        return diag.fail("bad num_streams line");
    tr.num_streams = static_cast<int>(n);
    tr.program.num_streams = tr.num_streams;

    if (!next(&t) || t.size() != 2 || t[0] != "config" ||
        !wi_parse_int(t[1], 0, kMaxCount, &n))
        return diag.fail("bad config line");
    std::string cfg_text;
    for (long i = 0; i < n; ++i) {
        if (!std::getline(is, line))
            return diag.fail("unexpected end of input (config block)");
        diag.advance();
        cfg_text += line;
        cfg_text += '\n';
    }
    std::string cfg_err;
    if (!config_from_string(cfg_text, &tr.config, &cfg_err))
        return diag.fail("bad config block (" + cfg_err + ")");

    if (!next(&t) || t.size() != 2 || t[0] != "steps" ||
        !wi_parse_int(t[1], 0, kMaxCount, &n))
        return diag.fail("bad steps line");
    const long num_steps = n;
    for (long i = 0; i < num_steps; ++i) {
        if (!next(&t))
            return diag.fail("unexpected end of input (steps)");
        if (t.size() != 8 || t[0] != "step")
            return diag.fail("bad step line");
        long barrier = 0, blocks = 0, max_sms = 0;
        KernelDesc k;
        if (!wi_parse_int(t[1], 0, 1, &barrier))
            return diag.fail("bad step barrier flag");
        if (!wi_parse_int(t[3], 0, std::numeric_limits<long>::max() / 2,
                          &blocks))
            return diag.fail("bad step blocks");
        if (!wi_parse_f64(t[4], &k.block_ns) ||
            !std::isfinite(k.block_ns) || k.block_ns < 0.0)
            return diag.fail("bad step block_ns");
        if (!wi_parse_f64(t[5], &k.setup_ns) ||
            !std::isfinite(k.setup_ns) || k.setup_ns < 0.0)
            return diag.fail("bad step setup_ns");
        if (!wi_parse_int(t[6], 0, 1000000, &max_sms))
            return diag.fail("bad step max_sms");
        tr.program.is_barrier.push_back(static_cast<uint8_t>(barrier));
        tr.step_keys.push_back(dec_str(t[2]));
        k.key = tr.step_keys.back();
        k.blocks = blocks;
        k.max_sms = static_cast<int>(max_sms);
        k.name = dec_str(t[7]);
        tr.kernels.push_back(std::move(k));
    }

    if (!next(&t) || t.size() != 2 || t[0] != "cmds" ||
        !wi_parse_int(t[1], 0, kMaxCount, &n))
        return diag.fail("bad cmds line");
    const long num_cmds = n;
    for (long i = 0; i < num_cmds; ++i) {
        if (!next(&t))
            return diag.fail("unexpected end of input (cmds)");
        if (t.size() != 4 || t[0] != "cmd" || t[1].size() != 1)
            return diag.fail("bad cmd line");
        WiredCmd c;
        switch (t[1][0]) {
          case 'L': c.op = WiredOp::Launch; break;
          case 'R': c.op = WiredOp::Record; break;
          case 'W': c.op = WiredOp::Wait; break;
          default: return diag.fail("bad cmd op (want L, R or W)");
        }
        long stream = 0, arg = 0;
        if (!wi_parse_int(t[2], 0, tr.num_streams - 1, &stream))
            return diag.fail("cmd stream out of range");
        if (!wi_parse_int(t[3], 0, kMaxCount, &arg))
            return diag.fail("bad cmd arg");
        if (c.op == WiredOp::Launch && arg >= num_steps)
            return diag.fail("cmd launches a step out of range");
        c.stream = static_cast<int32_t>(stream);
        c.arg = static_cast<int32_t>(arg);
        tr.program.cmds.push_back(c);
    }

    if (!next(&t) || t.empty() || t[0] != "step_begin")
        return diag.fail("bad step_begin line");
    if (static_cast<long>(t.size()) != num_steps + 2)
        return diag.fail("step_begin wants " +
                         std::to_string(num_steps + 1) + " entries");
    for (size_t i = 1; i < t.size(); ++i) {
        if (!wi_parse_int(t[i], 0, num_cmds, &n))
            return diag.fail("bad step_begin entry");
        tr.program.step_begin.push_back(static_cast<int32_t>(n));
    }

    if (!next(&t) || t.empty() || t[0] != "barrier_slots")
        return diag.fail("bad barrier_slots line");
    for (size_t i = 1; i < t.size(); ++i) {
        if (!wi_parse_int(t[i], 0, kMaxCount, &n))
            return diag.fail("bad barrier_slots entry");
        tr.program.barrier_slots.push_back(static_cast<int32_t>(n));
    }

    if (!next(&t) || t.size() != 2 || t[0] != "num_events" ||
        !wi_parse_int(t[1], 0, kMaxCount, &n))
        return diag.fail("bad num_events line");
    tr.program.num_events = static_cast<int32_t>(n);
    for (const WiredCmd& c : tr.program.cmds)
        if (c.op != WiredOp::Launch && c.arg >= tr.program.num_events)
            return diag.fail("cmd references an event out of range");
    for (int32_t s : tr.program.barrier_slots)
        if (s >= tr.program.num_events)
            return diag.fail("barrier slot out of range");

    if (!next(&t) || t.size() != 2 || t[0] != "profiling" ||
        !wi_parse_int(t[1], 0, 1, &n))
        return diag.fail("bad profiling line");
    tr.program.profiling = n != 0;

    if (!next(&t) || t.size() != 2 || t[0] != "profiles" ||
        !wi_parse_int(t[1], 0, kMaxCount, &n))
        return diag.fail("bad profiles line");
    const long num_profiles = n;
    for (long i = 0; i < num_profiles; ++i) {
        if (!next(&t))
            return diag.fail("unexpected end of input (profiles)");
        if (t.size() != 8 || t[0] != "profile")
            return diag.fail("bad profile line");
        WiredProfile p;
        long epoch = 0, step = 0, start = 0, end = 0, bb = 0, be = 0;
        if (!wi_parse_int(t[1], 0, 1, &epoch) ||
            !wi_parse_int(t[2], 0, num_steps - 1, &step) ||
            !wi_parse_int(t[3], -1, tr.program.num_events - 1, &start) ||
            !wi_parse_int(t[4], 0, tr.program.num_events - 1, &end) ||
            !wi_parse_int(t[5], 0,
                          static_cast<long>(
                              tr.program.barrier_slots.size()),
                          &bb) ||
            !wi_parse_int(t[6], 0,
                          static_cast<long>(
                              tr.program.barrier_slots.size()),
                          &be) ||
            bb > be)
            return diag.fail("bad profile entry");
        if (epoch == 0 && start < 0)
            return diag.fail("non-epoch profile wants a start slot");
        p.epoch_metric = epoch != 0;
        p.step = static_cast<int32_t>(step);
        p.start_slot = static_cast<int32_t>(start);
        p.end_slot = static_cast<int32_t>(end);
        p.barrier_begin = static_cast<int32_t>(bb);
        p.barrier_end = static_cast<int32_t>(be);
        p.key = dec_str(t[7]);
        tr.program.profiles.push_back(std::move(p));
    }

    if (!next(&t) || t.size() != 2 || t[0] != "profile_ns" ||
        !wi_parse_int(t[1], 0, kMaxCount, &n))
        return diag.fail("bad profile_ns line");
    const long num_pns = n;
    for (long i = 0; i < num_pns; ++i) {
        if (!next(&t))
            return diag.fail("unexpected end of input (profile_ns)");
        if (t.size() != 3 || t[0] != "pns" || !wi_parse_f64(t[1], &f) ||
            !std::isfinite(f))
            return diag.fail("bad pns line");
        tr.profile_ns[dec_str(t[2])] = f;
    }

    if (!next(&t) || t.size() != 2 || t[0] != "spans" ||
        !wi_parse_int(t[1], 0, kMaxCount, &n))
        return diag.fail("bad spans line");
    const long num_spans = n;
    for (long i = 0; i < num_spans; ++i) {
        if (!next(&t))
            return diag.fail("unexpected end of input (spans)");
        if (t.size() != 6 || t[0] != "span")
            return diag.fail("bad span line");
        TraceSpan s;
        long stream = 0;
        if (!wi_parse_int(t[1], 0, tr.num_streams - 1, &stream) ||
            !wi_parse_f64(t[2], &s.start_ns) ||
            !wi_parse_f64(t[3], &s.end_ns) ||
            !std::isfinite(s.start_ns) || !std::isfinite(s.end_ns) ||
            s.end_ns < s.start_ns)
            return diag.fail("bad span entry");
        s.stream = static_cast<int>(stream);
        s.key = dec_str(t[4]);
        s.name = dec_str(t[5]);
        tr.spans.push_back(std::move(s));
    }

    if (!next(&t) || t.size() != 1 || t[0] != "end")
        return diag.fail("missing end marker");

    *trace = std::move(tr);
    return true;
}

std::string
trace_to_string(const RecordedTrace& trace)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    write_trace(os, trace);
    return os.str();
}

bool
trace_from_string(const std::string& text, RecordedTrace* trace,
                  std::string* error)
{
    std::istringstream is(text);
    is.imbue(std::locale::classic());
    return read_trace(is, trace, error);
}

}  // namespace astra
