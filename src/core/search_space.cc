#include "core/search_space.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "obs/obs.h"
#include "runtime/executor.h"
#include "support/logging.h"

namespace astra {

namespace {

/**
 * Provenance key for fusion-set mining: the node's scope with
 * timestep components ("t<digits>") removed, so the same cell at
 * different unrolled steps counts as one provenance (the enumerator's
 * 2-D fusion sets span the time axis, §4.4.1).
 */
std::string
provenance_key(const std::string& scope)
{
    std::string out;
    size_t pos = 0;
    while (pos <= scope.size()) {
        const size_t next = scope.find('/', pos);
        const std::string comp =
            scope.substr(pos, next == std::string::npos ? std::string::npos
                                                        : next - pos);
        const bool is_timestep =
            comp.size() >= 2 && comp[0] == 't' &&
            std::all_of(comp.begin() + 1, comp.end(),
                        [](unsigned char c) { return std::isdigit(c); });
        if (!comp.empty() && !is_timestep) {
            if (!out.empty())
                out += "/";
            out += comp;
        }
        if (next == std::string::npos)
            break;
        pos = next + 1;
    }
    return out;
}

/** Signature under which sibling GEMMs are batch-fusable. */
std::string
mm_signature(const Graph& graph, const Node& n)
{
    const GemmShape s = matmul_shape(graph, n);
    std::ostringstream os;
    os << (n.trans_a ? "T" : "N") << (n.trans_b ? "T" : "N") << s.m << "x"
       << s.n << "x" << s.k;
    return os.str();
}

/** Chunk-size menu for a group of the given size (§4.8 range cap). */
std::vector<int>
make_chunk_options(int size, int max_options)
{
    std::vector<int> opts{1};
    for (int c = 2; c < size; c *= 2)
        opts.push_back(c);
    if (size > 1)
        opts.push_back(size);
    while (static_cast<int>(opts.size()) > max_options)
        opts.erase(opts.begin() + static_cast<long>(opts.size() / 2));
    return opts;
}

/**
 * Build a run from the given nodes; returns an empty run if the list
 * is degenerate (all identical: stride-0 addressing needs no layout),
 * or nullopt-like empty-with-flag if it mixes duplicates (unfusable).
 */
bool
make_run(const std::vector<NodeId>& nodes, AdjacencyRun* out)
{
    std::set<NodeId> distinct(nodes.begin(), nodes.end());
    if (distinct.size() == 1) {
        out->members.clear();  // stride-0: no constraint
        return true;
    }
    if (distinct.size() != nodes.size())
        return false;  // mixed duplicates: not uniform-stride addressable
    out->members = nodes;
    return true;
}

double
group_flops(const Graph& graph, const std::vector<NodeId>& mms)
{
    double f = 0.0;
    for (NodeId id : mms)
        f += matmul_flops(graph.node(id), graph);
    return f;
}

void
finalize_group(const Graph& graph, FusionGroup* g,
               const EnumeratorOptions& opts)
{
    g->chunk_options =
        make_chunk_options(static_cast<int>(g->mms.size()),
                           opts.max_chunk_options);
    g->flops = group_flops(graph, g->mms);
}

/** Rebuild a batch group's adjacency runs from its member list. */
bool
rebuild_batch_runs(const Graph& graph, FusionGroup* g)
{
    std::vector<NodeId> other_ops;
    std::vector<NodeId> outputs;
    for (NodeId id : g->mms) {
        const Node& n = graph.node(id);
        other_ops.push_back(n.inputs[g->shared_pos == 0 ? 1 : 0]);
        outputs.push_back(id);
    }
    g->runs.clear();
    AdjacencyRun r1, r2;
    if (!make_run(other_ops, &r1) || !make_run(outputs, &r2))
        return false;
    if (!r1.members.empty())
        g->runs.push_back(std::move(r1));
    if (!r2.members.empty())
        g->runs.push_back(std::move(r2));
    return true;
}

bool
rebuild_ladder_runs(const Graph& graph, FusionGroup* g)
{
    // The ladder accumulates in chain order (that fixes the FP
    // summation order), but the fused kernel's *addressing* only needs
    // the operand pairs laid out at a uniform stride in SOME order --
    // so canonicalize the layout to ascending id. Backward
    // accumulation chains run reverse-time; without this they would
    // demand the mirror image of the forward groups' layout and
    // conflict with them spuriously.
    std::vector<size_t> order(g->mms.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return graph.node(g->mms[x]).inputs[0] <
               graph.node(g->mms[y]).inputs[0];
    });
    std::vector<NodeId> a_ops, b_ops;
    for (size_t i : order) {
        a_ops.push_back(graph.node(g->mms[i]).inputs[0]);
        b_ops.push_back(graph.node(g->mms[i]).inputs[1]);
    }
    g->runs.clear();
    AdjacencyRun ra, rb;
    if (!make_run(a_ops, &ra) || !make_run(b_ops, &rb))
        return false;
    if (!ra.members.empty())
        g->runs.push_back(std::move(ra));
    if (!rb.members.empty())
        g->runs.push_back(std::move(rb));
    return true;
}

/** Mine sibling-GEMM batch fusion sets (§4.4.1 common-argument rule). */
std::vector<FusionGroup>
mine_batch_groups(const Graph& graph, const DependencyOracle& oracle,
                  const EnumeratorOptions& opts)
{
    std::vector<FusionGroup> out;
    for (const Node& shared : graph.nodes()) {
        for (int pos = 0; pos < 2; ++pos) {
            // Partition this node's MatMul consumers by fusability
            // signature (same shape/flags) and provenance scope.
            std::map<std::string, std::vector<NodeId>> parts;
            for (NodeId user : graph.users(shared.id)) {
                const Node& mm = graph.node(user);
                if (!mm.is_matmul() || mm.inputs[static_cast<size_t>(pos)]
                                           != shared.id)
                    continue;
                // Avoid double-listing mm(x, x) style self-pairs.
                if (mm.inputs[0] == mm.inputs[1] && pos == 1)
                    continue;
                parts[mm_signature(graph, mm) + "@" +
                      provenance_key(mm.scope)]
                    .push_back(user);
            }
            for (auto& [sig, members] : parts) {
                (void)sig;
                std::sort(members.begin(), members.end());
                members.erase(std::unique(members.begin(), members.end()),
                              members.end());
                if (static_cast<int>(members.size()) < 2)
                    continue;
                // Greedy mutually-independent subset, in id order.
                std::vector<NodeId> chosen;
                for (NodeId m : members) {
                    bool ok = true;
                    for (NodeId c : chosen)
                        ok &= oracle.independent(m, c);
                    if (ok)
                        chosen.push_back(m);
                    if (static_cast<int>(chosen.size()) >=
                        opts.max_group_size)
                        break;
                }
                if (static_cast<int>(chosen.size()) < 2)
                    continue;
                FusionGroup g;
                g.kind = GroupKind::Batch;
                g.mms = chosen;
                g.shared_pos = pos;
                g.shared_node = shared.id;
                // Shared second operand + untransposed first operands:
                // row-stack into one tall GEMM (the paper's "one large
                // GEMM"); otherwise a strided-batched kernel.
                const Node& first_mm = graph.node(chosen[0]);
                g.axis = (pos == 1 && !first_mm.trans_a)
                             ? FusionAxis::MStack
                             : FusionAxis::Batched;
                if (!rebuild_batch_runs(graph, &g))
                    continue;
                finalize_group(graph, &g, opts);
                out.push_back(std::move(g));
            }
        }
    }
    return out;
}

/** Mine GEMM-accumulator ladders (§4.4.1 fusion ladders). */
std::vector<FusionGroup>
mine_ladder_groups(const Graph& graph, const EnumeratorOptions& opts)
{
    std::vector<FusionGroup> out;
    for (const Node& root : graph.nodes()) {
        if (root.kind != OpKind::Add)
            continue;
        // Root = topmost add of a left-deep chain: no single-use Add
        // consumer extends it through input[0].
        bool is_root = true;
        for (NodeId u : graph.users(root.id)) {
            const Node& un = graph.node(u);
            if (un.kind == OpKind::Add && un.inputs[0] == root.id &&
                graph.user_count(root.id) == 1)
                is_root = false;
        }
        if (!is_root)
            continue;

        // Walk the left spine downward.
        std::vector<NodeId> spine{root.id};
        NodeId cur = root.id;
        while (true) {
            const NodeId left = graph.node(cur).inputs[0];
            const Node& ln = graph.node(left);
            if (ln.kind == OpKind::Add && graph.user_count(left) == 1) {
                spine.push_back(left);
                cur = left;
            } else {
                break;
            }
        }
        // Accumulation-ordered leaves.
        std::vector<NodeId> leaves;
        leaves.push_back(graph.node(spine.back()).inputs[0]);
        for (auto it = spine.rbegin(); it != spine.rend(); ++it)
            leaves.push_back(graph.node(*it).inputs[1]);
        if (static_cast<int>(leaves.size()) < 2 ||
            static_cast<int>(leaves.size()) > opts.max_group_size)
            continue;

        // All leaves must be single-use MatMuls of identical shape.
        bool ok = true;
        std::string sig;
        for (NodeId l : leaves) {
            const Node& ln = graph.node(l);
            if (!ln.is_matmul() || graph.user_count(l) != 1) {
                ok = false;
                break;
            }
            const std::string s = mm_signature(graph, ln);
            if (sig.empty())
                sig = s;
            else if (s != sig)
                ok = false;
        }
        if (!ok)
            continue;

        FusionGroup g;
        g.kind = GroupKind::Ladder;
        g.mms = leaves;  // accumulation order
        g.adds.assign(spine.rbegin(), spine.rend());
        // A^T * B ladders concatenate along K when the A_i (row-major)
        // stack vertically and the B_i stack vertically: one deep GEMM.
        const Node& first_leaf = graph.node(leaves[0]);
        g.axis = (first_leaf.trans_a && !first_leaf.trans_b)
                     ? FusionAxis::KStack
                     : FusionAxis::Batched;
        if (!rebuild_ladder_runs(graph, &g))
            continue;
        finalize_group(graph, &g, opts);
        out.push_back(std::move(g));
    }
    return out;
}

/** Relation between two adjacency runs. */
enum class RunRelation
{
    Disjoint,
    Identical,
    Contains,      ///< second is a contiguous subsequence of first
    ContainedIn,   ///< first is a contiguous subsequence of second
    Conflict,
};

RunRelation
run_relation(const AdjacencyRun& a, const AdjacencyRun& b,
             std::vector<NodeId>* overlap)
{
    std::set<NodeId> sa(a.members.begin(), a.members.end());
    overlap->clear();
    for (NodeId m : b.members)
        if (sa.count(m))
            overlap->push_back(m);
    if (overlap->empty())
        return RunRelation::Disjoint;
    if (a.members == b.members)
        return RunRelation::Identical;
    auto is_contig_subseq = [](const std::vector<NodeId>& big,
                               const std::vector<NodeId>& small) {
        if (small.size() > big.size())
            return false;
        for (size_t start = 0; start + small.size() <= big.size();
             ++start) {
            bool match = true;
            for (size_t i = 0; i < small.size(); ++i)
                match &= big[start + i] == small[i];
            if (match)
                return true;
        }
        return false;
    };
    if (is_contig_subseq(a.members, b.members))
        return RunRelation::Contains;
    if (is_contig_subseq(b.members, a.members))
        return RunRelation::ContainedIn;
    return RunRelation::Conflict;
}

/** Remove one member (and its ladder Add, if any) from a group. */
bool
shrink_group(const Graph& graph, FusionGroup* g, NodeId offending_member)
{
    if (static_cast<int>(g->mms.size()) <= 2)
        return false;  // would fall below the fusion minimum
    if (g->kind == GroupKind::Ladder) {
        // Only the last leaf can be dropped without corrupting the
        // accumulation structure: the first Add combines the first TWO
        // leaves, so removing a front leaf would leave its partner
        // double-counted by the fused accumulator.
        if (offending_member != g->mms.back())
            return false;
    }
    auto it = std::find(g->mms.begin(), g->mms.end(), offending_member);
    if (it == g->mms.end())
        return false;
    g->mms.erase(it);
    if (g->kind == GroupKind::Ladder && !g->adds.empty())
        g->adds.pop_back();  // dropping a leaf shortens the chain
    const bool ok = g->kind == GroupKind::Batch
                        ? rebuild_batch_runs(graph, g)
                        : rebuild_ladder_runs(graph, g);
    if (!ok)
        return false;
    finalize_group(graph, g, EnumeratorOptions{});
    return true;
}

/** Member MatMul (if any) of `g` whose fused addressing touches node. */
NodeId
member_owning(const Graph& graph, const FusionGroup& g, NodeId node)
{
    for (NodeId m : g.mms) {
        if (m == node)
            return m;
        const Node& n = graph.node(m);
        if (n.inputs[0] == node || n.inputs[1] == node)
            return m;
    }
    return kInvalidNode;
}

}  // namespace

SearchSpace
enumerate_search_space(const Graph& graph, const EnumeratorOptions& opts)
{
    obs::ScopedSpan obs_span(obs::Category::Enumerate,
                             "enumerate_search_space");
    const DependencyOracle oracle(graph);
    SearchSpace space;

    std::vector<FusionGroup> groups;
    {
        obs::ScopedSpan mine_span(obs::Category::Enumerate,
                                  "mine_fusion_groups");
        groups = mine_batch_groups(graph, oracle, opts);
        std::vector<FusionGroup> ladders =
            mine_ladder_groups(graph, opts);
        groups.insert(groups.end(), ladders.begin(), ladders.end());
    }

    // ---- conflict analysis (§4.5.2) -------------------------------------
    // First pass: resolve single-tensor run overlaps statically by
    // shrinking the smaller group; collect hard conflict edges for the
    // rest and for shared-member pairs.
    const size_t n = groups.size();
    std::vector<std::set<size_t>> conflicts(n);
    std::function<bool(size_t, size_t)> groups_conflict =
        [&](size_t i, size_t j) -> bool {
        // Shared member GEMMs: both cannot be enabled at once (2-D
        // fusion sets along different axes, §4.4.1 / Fig. 1).
        std::set<NodeId> mi(groups[i].mms.begin(), groups[i].mms.end());
        for (NodeId m : groups[j].mms)
            if (mi.count(m))
                return true;
        for (const AdjacencyRun& ra : groups[i].runs) {
            for (const AdjacencyRun& rb : groups[j].runs) {
                std::vector<NodeId> overlap;
                switch (run_relation(ra, rb, &overlap)) {
                  case RunRelation::Disjoint:
                  case RunRelation::Identical:
                  case RunRelation::Contains:
                  case RunRelation::ContainedIn:
                    break;
                  case RunRelation::Conflict: {
                    if (overlap.size() == 1) {
                        // Single offending tensor: drop the member from
                        // the smaller group so both can coexist.
                        FusionGroup* victim =
                            groups[i].mms.size() <= groups[j].mms.size()
                                ? &groups[i]
                                : &groups[j];
                        const NodeId owner = member_owning(
                            graph, *victim, overlap[0]);
                        if (owner != kInvalidNode &&
                            shrink_group(graph, victim, owner))
                            return groups_conflict(i, j);  // re-examine
                    }
                    return true;
                  }
                }
            }
        }
        return false;
    };
    {
        obs::ScopedSpan conflict_span(obs::Category::Enumerate,
                                      "conflict_analysis");
        for (size_t i = 0; i < n; ++i)
            for (size_t j = i + 1; j < n; ++j)
                if (groups_conflict(i, j)) {
                    conflicts[i].insert(j);
                    conflicts[j].insert(i);
                }
    }

    // Drop groups that degenerated below two members.
    // (shrink_group refuses to go below 2, so just collect.)
    space.groups = groups;
    for (size_t i = 0; i < space.groups.size(); ++i) {
        space.groups[i].id = static_cast<int>(i);
        space.groups[i].key = "g" + std::to_string(i);
    }

    // ---- allocation strategies: maximal conflict-free subsets -----------
    auto build_strategy = [&](const std::vector<size_t>& order) {
        AllocStrategy strat;
        strat.group_enabled.assign(space.groups.size(), false);
        std::vector<AdjacencyRun> runs;
        std::set<size_t> enabled;
        for (size_t gi : order) {
            bool ok = true;
            for (size_t e : enabled)
                ok &= !conflicts[gi].count(e);
            if (!ok)
                continue;
            // Merge this group's runs into the accumulated layout.
            std::vector<AdjacencyRun> merged = runs;
            for (const AdjacencyRun& r : space.groups[gi].runs) {
                bool absorbed = false;
                bool clash = false;
                for (auto& existing : merged) {
                    std::vector<NodeId> overlap;
                    switch (run_relation(existing, r, &overlap)) {
                      case RunRelation::Disjoint:
                        break;
                      case RunRelation::Identical:
                      case RunRelation::Contains:
                        absorbed = true;
                        break;
                      case RunRelation::ContainedIn:
                        existing = r;  // widen to the superset
                        absorbed = true;
                        break;
                      case RunRelation::Conflict:
                        clash = true;
                        break;
                    }
                    if (absorbed || clash)
                        break;
                }
                if (clash) {
                    ok = false;
                    break;
                }
                if (!absorbed)
                    merged.push_back(r);
            }
            if (!ok)
                continue;
            runs = std::move(merged);
            enabled.insert(gi);
        }
        for (size_t e : enabled)
            strat.group_enabled[e] = true;
        strat.runs = std::move(runs);
        return strat;
    };

    // Greedy orders expressing different static priorities.
    std::vector<std::vector<size_t>> orders;
    std::vector<size_t> base(space.groups.size());
    for (size_t i = 0; i < base.size(); ++i)
        base[i] = i;
    auto by_flops = base;
    std::stable_sort(by_flops.begin(), by_flops.end(),
                     [&](size_t a, size_t b) {
                         return space.groups[a].flops >
                                space.groups[b].flops;
                     });
    orders.push_back(by_flops);
    auto fwd_first = by_flops;
    std::stable_sort(fwd_first.begin(), fwd_first.end(),
                     [&](size_t a, size_t b) {
                         return graph.node(space.groups[a].mms[0]).pass <
                                graph.node(space.groups[b].mms[0]).pass;
                     });
    orders.push_back(fwd_first);
    auto bwd_first = by_flops;
    std::stable_sort(bwd_first.begin(), bwd_first.end(),
                     [&](size_t a, size_t b) {
                         return graph.node(space.groups[a].mms[0]).pass >
                                graph.node(space.groups[b].mms[0]).pass;
                     });
    orders.push_back(bwd_first);
    auto batch_first = by_flops;
    std::stable_sort(batch_first.begin(), batch_first.end(),
                     [&](size_t a, size_t b) {
                         return space.groups[a].kind <
                                space.groups[b].kind;
                     });
    orders.push_back(batch_first);
    auto ladder_first = by_flops;
    std::stable_sort(ladder_first.begin(), ladder_first.end(),
                     [&](size_t a, size_t b) {
                         return space.groups[a].kind >
                                space.groups[b].kind;
                     });
    orders.push_back(ladder_first);
    // "One large GEMM" row-stacked groups amortize tile padding and
    // are usually the most profitable; try a layout that favors them.
    auto mstack_first = by_flops;
    std::stable_sort(mstack_first.begin(), mstack_first.end(),
                     [&](size_t a, size_t b) {
                         return (space.groups[a].axis ==
                                 FusionAxis::MStack) >
                                (space.groups[b].axis ==
                                 FusionAxis::MStack);
                     });
    orders.push_back(mstack_first);

    std::set<std::vector<bool>> seen;
    for (const auto& order : orders) {
        if (static_cast<int>(space.strategies.size()) >=
            opts.max_strategies)
            break;
        AllocStrategy s = build_strategy(order);
        if (seen.count(s.group_enabled))
            continue;
        seen.insert(s.group_enabled);
        s.id = static_cast<int>(space.strategies.size());
        s.key = "s" + std::to_string(s.id);
        space.strategies.push_back(std::move(s));
    }
    ASTRA_ASSERT(!space.strategies.empty());

    // ---- standalone GEMMs -------------------------------------------------
    std::set<NodeId> grouped;
    for (const FusionGroup& g : space.groups)
        for (NodeId m : g.mms)
            grouped.insert(m);
    for (const Node& node : graph.nodes())
        if (node.is_matmul() && !grouped.count(node.id))
            space.single_mms.push_back(node.id);

    obs::counter("enumerate.groups")
        .add(static_cast<int64_t>(space.groups.size()));
    obs::counter("enumerate.strategies")
        .add(static_cast<int64_t>(space.strategies.size()));
    obs::counter("enumerate.single_mms")
        .add(static_cast<int64_t>(space.single_mms.size()));

    return space;
}

DataParallelSpace
enumerate_dp_space(const Graph& graph)
{
    DataParallelSpace dp;
    for (NodeId id : graph.outputs()) {
        if (graph.node(id).pass != Pass::Backward)
            continue;
        dp.grad_nodes.push_back(id);
        dp.grad_bytes +=
            static_cast<int64_t>(graph.node(id).desc.bytes());
    }

    // Per-tensor, geometric midpoints, one-bucket — dedup keeps the
    // set small when the gradient volume is tiny.
    dp.bucket_options.push_back(0);
    for (const int64_t div : {8, 4, 2, 1}) {
        const int64_t cap = dp.grad_bytes / div;
        if (cap > 0 && cap != dp.bucket_options.back())
            dp.bucket_options.push_back(cap);
    }
    return dp;
}

}  // namespace astra
