/**
 * @file
 * The profile index (paper §4.6): a key-value store of fine-grained
 * measurements gathered during online exploration.
 *
 * Keys are mangled strings of the form
 *   "<context prefix>|<variable key>|<choice>"
 * where the context prefix encodes every higher-level binding the
 * measurement depends on (allocation strategy, bucket, the frozen
 * prefix of earlier epochs, ...). When the custom wirer explores a
 * different higher-level binding, lookups with the new prefix miss and
 * the dependent entries are re-measured — exactly the paper's
 * key-mangling-as-invalidation mechanism.
 *
 * Unlike the paper's prototype, which measures once and trusts the
 * value (justified by pinning the GPU clock, §7), every key here
 * accumulates full per-key statistics (count/min/max/mean/M2 via
 * Welford's algorithm). A MeasurementPolicy then decides how the
 * statistics turn into decisions: which statistic ranks choices, when
 * a sample is rejected as an outlier (MAD test), and how much
 * separation two candidates need before a binding is considered
 * decisive rather than noise (the noise floor). With the default
 * policy the index behaves exactly like the paper's single-measurement
 * store; with a noise-robust policy the custom wirer survives
 * autoboost-style clock jitter (see bench/micro_predictability.cc).
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace astra {

/** Which per-key summary statistic drives lookups and rankings. */
enum class Statistic
{
    Min,   ///< fastest sample (paper default: repeatable at base clock)
    Mean,  ///< Welford mean (robust under zero-mean-ish clock jitter)
};

/** How raw samples become values and decisions (see file header). */
struct MeasurementPolicy
{
    /** Statistic reported by lookup() and ranked by best_choice(). */
    Statistic statistic = Statistic::Min;

    /**
     * MAD outlier test: once a key has at least `outlier_min_window`
     * samples, a new sample x is rejected when
     *   |x - median| > outlier_mad_k * 1.4826 * MAD
     * (1.4826 scales MAD to a sigma-equivalent). 0 disables the test.
     * Rejected samples are counted, never accumulated.
     */
    double outlier_mad_k = 0.0;
    int outlier_min_window = 5;

    /**
     * A choice ranking is decisive only when the top two candidates
     * both have at least `min_samples` samples and their statistics
     * are separated by more than `noise_margin_sigmas` times the
     * combined noise scale (the standard error of each estimate for
     * Mean, the raw spread for Min). The same margin merges
     * statistically indistinguishable choices onto the lowest index —
     * the deterministic tie-break that matches base clock's first-best
     * rule. The custom wirer also measures every exploration trial
     * `min_samples` times, so bindings frozen mid-sweep (Prefix mode)
     * already see averaged statistics. With the defaults (1, 0.0)
     * every ranking is decisive and every trial is measured once —
     * the paper's one-measurement regime.
     */
    int min_samples = 1;
    double noise_margin_sigmas = 0.0;

    /**
     * Re-measurement budget: the custom wirer may spend up to
     * max_repeats - 1 extra mini-batches per stage resolving
     * non-decisive rankings (k-repeat, all ambiguous variables
     * re-measured in parallel per extra mini-batch).
     */
    int max_repeats = 1;

    /**
     * DVFS compensation: multiply every measured span by the device's
     * reported clock multiplier (the NVML clock query,
     * SimGpu::clock_multiplier) before recording, converting wall
     * measurements into base-clock-equivalent time. Where the paper
     * pins the clock (§7), this measures it instead.
     */
    bool normalize_clock = false;

    /**
     * Resolution floor for rankings, relative to the best value: two
     * choices closer than tie_epsilon_rel * best are a tie regardless
     * of observed noise, merged deterministically onto the lowest
     * index. Clock compensation is exact only to floating-point
     * rounding (~1e-14 relative), so sub-resolution "preferences" are
     * measurement artifacts, not real rankings; the floor makes both
     * jitter-free and jittered runs resolve them identically. 0
     * disables the floor (strict comparison, the paper's rule).
     */
    double tie_epsilon_rel = 0.0;

    /**
     * Fault-retry budget: how many times the custom wirer re-measures
     * a trial whose every dispatch came back faulted (transient kernel
     * faults that survived the dispatcher's own replay budget) before
     * quarantining the configuration's keys and moving on.
     */
    int fault_budget = 2;

    /**
     * Plan-store L1 trust margin: an exact store hit is adopted only
     * when its verification mini-batch lands within
     * store_drift_rel * stored_best_ns of the stored timing. A larger
     * drift means the entry is stale for this device (changed clocks,
     * different timing model) and the session demotes it to an L2 warm
     * start — the wirer re-measures with the stored configuration as a
     * seed instead of pinning a possibly-wrong plan for the whole job.
     * <= 0 disables the check (any verified dispatch is trusted).
     */
    double store_drift_rel = 0.25;

    /** Preset that tolerates autoboost-style clock jitter (§7). */
    static MeasurementPolicy noise_robust();
};

/** Per-key accumulated measurements (Welford online statistics). */
struct ProfileStats
{
    int64_t count = 0;     ///< accepted samples
    int64_t rejected = 0;  ///< samples dropped by the outlier test
    int64_t faults = 0;    ///< faulted measurements (marked, not sampled)
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double m2 = 0.0;  ///< sum of squared deviations (Welford)

    /** Accumulate one sample (no outlier test at this level). */
    void add(double x);

    /**
     * Fold another accumulator into this one (parallel Welford
     * combine: counts, min/max, mean and M2 merge exactly; the sample
     * window concatenates, keeping the most recent kWindowCap).
     */
    void merge(const ProfileStats& other);

    /** Population variance (0 with fewer than two samples). */
    double variance() const;
    double stddev() const;

    /** Coefficient of variation, stddev/|mean| (0 if mean is 0). */
    double cov() const;

    /** The summary value under a given statistic. */
    double value(Statistic s) const;

    /** Median of the retained sample window. */
    double median() const;

    /** Median absolute deviation of the retained sample window. */
    double mad() const;

    /**
     * Recent raw samples, capped at a small window (for the MAD test;
     * Welford fields cover the full history).
     */
    const std::vector<double>& window() const { return window_; }

    /**
     * Rebuild an accumulator from persisted fields (config_io's
     * profile-index reader). The window is truncated to the most
     * recent kWindowCap samples, matching what add() would have kept.
     */
    static ProfileStats restore(int64_t count, int64_t rejected,
                                int64_t faults, double min, double max,
                                double mean, double m2,
                                std::vector<double> window);

  private:
    static constexpr size_t kWindowCap = 32;
    std::vector<double> window_;
};

/** Outcome of ranking the choices of one variable. */
struct ChoiceDecision
{
    /**
     * Best measured choice by the policy statistic — or, when a
     * lower-indexed choice is statistically indistinguishable from the
     * winner, that lower index (deterministic tie-break).
     */
    int choice = -1;

    /**
     * The contender `choice` must out-separate: the second-best
     * measured choice, or the displaced winner after a tie-merge. -1
     * when fewer than two choices are measured.
     */
    int runner_up = -1;

    /** Statistic separation between choice and runner_up (ns). */
    double separation = 0.0;

    /** Combined noise floor of the pair (ns, sigma-equivalent). */
    double noise = 0.0;

    /**
     * True when the winner clears the policy's noise floor (or the
     * policy is the legacy always-decisive one). A non-decisive
     * ranking asks for re-measurement before binding.
     */
    bool decisive = true;
};

/** Fine-grained measurement store. */
class ProfileIndex
{
  public:
    ProfileIndex() = default;
    explicit ProfileIndex(MeasurementPolicy policy)
        : policy_(policy)
    {
    }

    const MeasurementPolicy& policy() const { return policy_; }
    void set_policy(const MeasurementPolicy& p) { policy_ = p; }

    /**
     * Record a measurement; repeated records accumulate statistics.
     * Returns false when the sample was rejected as an outlier.
     */
    bool record(const std::string& key, double ns);

    /**
     * Mark a key as having produced a faulted measurement instead of a
     * sample. The entry exists (so the wirer can report it as
     * quarantined) but holds no accepted samples, and every ranking —
     * lookup(), best_choice(), decide() — skips sample-free entries, so
     * a faulted configuration can never win a binding by default.
     */
    void record_fault(const std::string& key);

    /** Faulted measurements across all keys. */
    int64_t total_faults() const { return total_faults_; }

    /**
     * Keys that only ever faulted (faults > 0, no accepted samples) —
     * the quarantine list surfaced in the convergence report.
     */
    std::vector<std::string> quarantined_keys() const;

    /**
     * Summary value (per the policy statistic) for an exact key, if
     * any sample has been accepted for it.
     */
    std::optional<double> lookup(const std::string& key) const;

    /** Full statistics for a key; nullptr when never recorded. */
    const ProfileStats* stats(const std::string& key) const;

    /** Accepted-sample count for a key (0 when never recorded). */
    int64_t samples(const std::string& key) const;

    /** True when a measurement exists for the key. */
    bool contains(const std::string& key) const;

    /**
     * Among keys "<prefix><choice>" for choice in [0, num_choices),
     * return the choice with the best summary statistic; -1 when no
     * choice has been measured yet.
     */
    int best_choice(const std::string& prefix, int num_choices) const;

    /**
     * Noise-aware ranking of "<prefix><choice>" keys: best choice,
     * runner-up, their separation versus the observed noise floor, and
     * whether the winner is decisive under the policy.
     */
    ChoiceDecision decide(const std::string& prefix,
                          int num_choices) const;

    /** Number of distinct keys (state-space accounting / tests). */
    size_t size() const { return entries_.size(); }

    /** Accepted samples across all keys. */
    int64_t total_samples() const { return total_samples_; }

    /** Outlier-rejected samples across all keys. */
    int64_t total_rejected() const { return total_rejected_; }

    /** All entries (ordered), for dumps and tests. */
    const std::map<std::string, ProfileStats>& entries() const
    {
        return entries_;
    }

    /**
     * Fold another index's entries and totals into this one. Entries
     * under distinct keys insert as-is; same-key entries merge their
     * statistics (ProfileStats::merge). The parallel wirer merges
     * per-strategy shards whose strategy context prefixes make the key
     * sets disjoint, so the merged index is bit-identical to the one a
     * serial exploration would have accumulated.
     */
    void merge(const ProfileIndex& other);

    /**
     * Install a persisted entry (insert, or merge into an existing
     * entry under the same key) and account its samples/rejections/
     * faults into the index totals — so an index rebuilt entirely via
     * restore_entry reports the same totals as the live one that was
     * serialized.
     */
    void restore_entry(const std::string& key, ProfileStats stats);

    void clear();

  private:
    MeasurementPolicy policy_;
    std::map<std::string, ProfileStats> entries_;
    int64_t total_samples_ = 0;
    int64_t total_rejected_ = 0;
    int64_t total_faults_ = 0;
};

}  // namespace astra
