/**
 * @file
 * The profile index (paper §4.6): a key-value store of fine-grained
 * measurements gathered during online exploration.
 *
 * Keys are mangled strings of the form
 *   "<context prefix>|<variable key>|<choice>"
 * where the context prefix encodes every higher-level binding the
 * measurement depends on (allocation strategy, bucket, the frozen
 * prefix of earlier epochs, ...). When the custom wirer explores a
 * different higher-level binding, lookups with the new prefix miss and
 * the dependent entries are re-measured — exactly the paper's
 * key-mangling-as-invalidation mechanism.
 */
#pragma once

#include <map>
#include <optional>
#include <string>

namespace astra {

/** Fine-grained measurement store. */
class ProfileIndex
{
  public:
    /** Record a measurement; repeated records keep the newest value. */
    void record(const std::string& key, double ns);

    /** Measured value for an exact key, if present. */
    std::optional<double> lookup(const std::string& key) const;

    /** True when a measurement exists for the key. */
    bool contains(const std::string& key) const;

    /**
     * Among keys "<prefix><choice>" for choice in [0, num_choices),
     * return the choice with the smallest measured value; -1 when no
     * choice has been measured yet.
     */
    int best_choice(const std::string& prefix, int num_choices) const;

    /** Measurement count (for state-space accounting / tests). */
    size_t size() const { return entries_.size(); }

    /** All entries (ordered), for dumps and tests. */
    const std::map<std::string, double>& entries() const
    {
        return entries_;
    }

    void clear() { entries_.clear(); }

  private:
    std::map<std::string, double> entries_;
};

}  // namespace astra
