/**
 * @file
 * The enumerator (paper §4.4): static analysis that mines the
 * optimization state space from the dataflow graph.
 *
 * It finds GEMM fusion sets (siblings sharing an operand, mutually
 * independent, same provenance), fusion ladders (GEMM-accumulator
 * chains), and 2-D fusion sets (the same tensors groupable along a
 * different axis — the source of the Fig. 1 allocation conflicts). It
 * then resolves single-tensor conflicts statically and forks the
 * remaining non-trivial conflicts into allocation strategies
 * (§4.5.2). No cost model anywhere: only structure.
 */
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "kernels/cost.h"
#include "runtime/tensor_map.h"

namespace astra {

/** How a fusion group combines its member GEMMs. */
enum class GroupKind
{
    Batch,   ///< siblings sharing one operand; one batched kernel
    Ladder,  ///< accumulation chain C = sum_i A_i * B_i; one kernel
};

/** A candidate GEMM fusion set. */
struct FusionGroup
{
    int id = -1;
    GroupKind kind = GroupKind::Batch;

    /** Member MatMul nodes in canonical (ascending id) order. */
    std::vector<NodeId> mms;

    /** Ladder only: the Add nodes of the accumulation chain, in order. */
    std::vector<NodeId> adds;

    /** Batch only: which operand index (0/1) all members share. */
    int shared_pos = -1;

    /** Batch only: the shared operand node. */
    NodeId shared_node = kInvalidNode;

    /**
     * How the fused kernel combines members: MStack when the members
     * share their second operand (row-concat into one tall GEMM),
     * KStack for transpose-compatible accumulation ladders (one deep
     * GEMM), Batched otherwise.
     */
    FusionAxis axis = FusionAxis::Batched;

    /**
     * Adjacency runs that must hold in HBM for this group to fuse
     * copy-free (uniform-stride batched addressing).
     */
    std::vector<AdjacencyRun> runs;

    /**
     * Fusion chunk sizes the custom wirer may try (ascending; always
     * contains 1 = unfused). Chunk c groups members [0,c), [c,2c), ...
     */
    std::vector<int> chunk_options;

    /** Stable key for profile indexing, e.g. "g12". */
    std::string key;

    /** Static flop estimate of all members (used for pruning order). */
    double flops = 0.0;
};

/** One resolution of the allocation-conflict fork (§4.5.2). */
struct AllocStrategy
{
    int id = -1;

    /** Adjacency runs the memory planner realizes. */
    std::vector<AdjacencyRun> runs;

    /** Per fusion-group: can it fuse copy-free under this strategy? */
    std::vector<bool> group_enabled;

    std::string key;
};

/** Everything the custom wirer adapts over. */
struct SearchSpace
{
    std::vector<FusionGroup> groups;

    /** MatMuls that belong to no group (adapted individually). */
    std::vector<NodeId> single_mms;

    /** At least one strategy; strategy 0 is the default. */
    std::vector<AllocStrategy> strategies;
};

/** Knobs for the enumerator (coarse static knowledge, §4.8). */
struct EnumeratorOptions
{
    /** Largest fusion set considered (diminishing returns beyond). */
    int max_group_size = 16;

    /** At most this many chunk options per group. */
    int max_chunk_options = 4;

    /** Cap on the allocation-strategy fork. */
    int max_strategies = 6;
};

/** Run the enumerator over a graph. */
SearchSpace enumerate_search_space(const Graph& graph,
                                   const EnumeratorOptions& opts = {});

/**
 * The data-parallel dimension of the state space: which gradient
 * tensors get allreduced and which bucket capacities are worth trying.
 * Purely structural, like the rest of the enumerator — the custom
 * wirer measures each candidate (core/data_parallel.h) instead of
 * costing it.
 */
struct DataParallelSpace
{
    /** Parameter-gradient nodes (backward-pass graph outputs). */
    std::vector<NodeId> grad_nodes;

    /** Total parameter-gradient volume, bytes. */
    int64_t grad_bytes = 0;

    /**
     * Candidate bucket capacities in bytes, ascending; 0 means one
     * bucket per gradient tensor, grad_bytes means a single bucket.
     * Both extremes are always present (they bracket the launch-cost
     * vs overlap trade-off) plus geometric midpoints.
     */
    std::vector<int64_t> bucket_options;
};

/** Mine the data-parallel dimension from a training graph. */
DataParallelSpace enumerate_dp_space(const Graph& graph);

}  // namespace astra
