#include "core/config_io.h"

#include <charconv>
#include <limits>
#include <locale>
#include <sstream>
#include <system_error>
#include <utility>

namespace astra {

namespace {

/**
 * All parsers here use std::from_chars, never strtol/strtod or bare
 * stream extraction with the ambient locale: a checkpoint written on
 * one host must load on a host whose global C/C++ locale uses ','
 * as the decimal separator (de_DE-style), and locale-sensitive
 * conversions silently misparse "1.5" there. from_chars is defined to
 * be locale-independent ("C" semantics), whole-string match enforced.
 */

/**
 * Parse an entire string as a decimal integer into [lo, hi]; false on
 * empty input, trailing junk, or overflow — never throws (config files
 * are untrusted input; a malformed token must fail the load, not crash
 * the process).
 */
bool
parse_int(const std::string& s, long lo, long hi, long* out)
{
    if (s.empty())
        return false;
    long v = 0;
    const char* last = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(s.data(), last, v, 10);
    if (ec != std::errc() || ptr != last)
        return false;
    if (v < lo || v > hi)
        return false;
    *out = v;
    return true;
}

bool
parse_int(const std::string& s, int* out)
{
    long v = 0;
    if (!parse_int(s, std::numeric_limits<int>::min(),
                   std::numeric_limits<int>::max(), &v))
        return false;
    *out = static_cast<int>(v);
    return true;
}

/**
 * Parse an entire string as a double. Accepts hexfloat ("0x1.8p+3",
 * with or without the "0x" prefix), which is how checkpoints store
 * every measurement — the only text form guaranteed to round-trip a
 * double bit-exactly. from_chars itself takes hex digits without the
 * prefix, so the prefix (and a leading sign, which from_chars also
 * rejects for '+') is stripped by hand.
 */
bool
parse_f64(const std::string& s, double* out)
{
    const char* first = s.data();
    const char* last = s.data() + s.size();
    bool neg = false;
    if (first != last && (*first == '+' || *first == '-')) {
        neg = *first == '-';
        ++first;
    }
    std::chars_format fmt = std::chars_format::general;
    if (last - first > 2 && first[0] == '0' &&
        (first[1] == 'x' || first[1] == 'X')) {
        fmt = std::chars_format::hex;
        first += 2;
    }
    if (first == last)
        return false;
    double v = 0.0;
    std::from_chars_result r = std::from_chars(first, last, v, fmt);
    if (fmt == std::chars_format::general &&
        (r.ec != std::errc() || r.ptr != last))
        // to_chars-style hexfloat omits the "0x" prefix ("1.8p+3");
        // when the general parse can't consume the whole token, retry
        // it as prefix-less hex before giving up.
        r = std::from_chars(first, last, v, std::chars_format::hex);
    if (r.ec != std::errc() || r.ptr != last)
        return false;
    *out = neg ? -v : v;
    return true;
}

bool
parse_i64(const std::string& s, int64_t* out)
{
    if (s.empty())
        return false;
    int64_t v = 0;
    const char* last = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(s.data(), last, v, 10);
    if (ec != std::errc() || ptr != last)
        return false;
    *out = v;
    return true;
}

/**
 * Diagnosis accumulator for the readers: tracks the current line
 * number and formats "line N: reason" into the caller's error slot
 * (when one was provided). fail() always returns false so parse code
 * can `return diag.fail(...)`.
 */
class Diag
{
  public:
    explicit Diag(std::string* error)
        : error_(error)
    {
    }

    void
    advance()
    {
        ++line_;
    }

    int line() const { return line_; }

    template <typename... Args>
    bool
    fail(Args&&... args)
    {
        if (error_ != nullptr) {
            std::ostringstream os;
            os << "line " << line_ << ": ";
            (os << ... << std::forward<Args>(args));
            *error_ = os.str();
        }
        return false;
    }

  private:
    std::string* error_;
    int line_ = 0;
};

}  // namespace

void
write_config(std::ostream& os, const ScheduleConfig& config)
{
    // Classic-locale output: a caller's imbued locale must not inject
    // digit grouping ("1,234") into what read_config later parses.
    const std::locale prev = os.imbue(std::locale::classic());
    os << "astra-config v1\n";
    os << "strategy " << config.strategy << "\n";
    os << "elementwise_fusion " << (config.elementwise_fusion ? 1 : 0)
       << "\n";
    os << "use_streams " << (config.use_streams ? 1 : 0) << "\n";
    os << "num_streams " << config.num_streams << "\n";
    os << "group_chunk";
    for (int c : config.group_chunk)
        os << " " << c;
    os << "\n";
    os << "group_lib";
    for (GemmLib lib : config.group_lib)
        os << " " << static_cast<int>(lib);
    os << "\n";
    os << "single_lib";
    for (const auto& [node, lib] : config.single_lib)
        os << " " << node << ":" << static_cast<int>(lib);
    os << "\n";
    os << "epoch_choice";
    for (const auto& [key, choice] : config.epoch_choice)
        os << " " << key.first << "," << key.second << ":" << choice;
    os << "\n";
    os.imbue(prev);
}

bool
read_config(std::istream& is, ScheduleConfig* config, std::string* error)
{
    Diag diag(error);
    std::string header;
    diag.advance();
    if (!std::getline(is, header))
        return diag.fail("empty input (expected 'astra-config v1')");
    if (header != "astra-config v1")
        return diag.fail("bad header '", header,
                         "' (expected 'astra-config v1')");
    ScheduleConfig out;
    std::string line;
    while (std::getline(is, line)) {
        diag.advance();
        std::istringstream ls(line);
        // Classic-locale extraction: `ls >> int` honors the stream's
        // locale, and a grouping-aware global locale would stop at the
        // first separator character.
        ls.imbue(std::locale::classic());
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "strategy") {
            if (!(ls >> out.strategy))
                return diag.fail("malformed strategy value");
        } else if (key == "elementwise_fusion") {
            int v;
            if (!(ls >> v))
                return diag.fail("malformed elementwise_fusion value");
            out.elementwise_fusion = v != 0;
        } else if (key == "use_streams") {
            int v;
            if (!(ls >> v))
                return diag.fail("malformed use_streams value");
            out.use_streams = v != 0;
        } else if (key == "num_streams") {
            if (!(ls >> out.num_streams))
                return diag.fail("malformed num_streams value");
        } else if (key == "group_chunk") {
            int c;
            while (ls >> c)
                out.group_chunk.push_back(c);
        } else if (key == "group_lib") {
            int lib;
            while (ls >> lib) {
                if (lib < 0 || lib >= kNumGemmLibs)
                    return diag.fail("group_lib index ", lib,
                                     " out of range [0,", kNumGemmLibs,
                                     ")");
                out.group_lib.push_back(static_cast<GemmLib>(lib));
            }
        } else if (key == "single_lib") {
            std::string pair;
            while (ls >> pair) {
                const auto colon = pair.find(':');
                if (colon == std::string::npos)
                    return diag.fail("single_lib token '", pair,
                                     "' missing ':'");
                int node = 0;
                int lib = 0;
                if (!parse_int(pair.substr(0, colon), &node) ||
                    !parse_int(pair.substr(colon + 1), &lib))
                    return diag.fail("malformed single_lib token '",
                                     pair, "'");
                if (node < 0 || lib < 0 || lib >= kNumGemmLibs)
                    return diag.fail("single_lib token '", pair,
                                     "' out of range");
                out.single_lib[static_cast<NodeId>(node)] =
                    static_cast<GemmLib>(lib);
            }
        } else if (key == "epoch_choice") {
            std::string triple;
            while (ls >> triple) {
                const auto comma = triple.find(',');
                const auto colon = triple.find(':');
                if (comma == std::string::npos ||
                    colon == std::string::npos || colon < comma)
                    return diag.fail("malformed epoch_choice token '",
                                     triple,
                                     "' (expected se,level:choice)");
                int se = 0;
                int level = 0;
                int choice = 0;
                if (!parse_int(triple.substr(0, comma), &se) ||
                    !parse_int(
                        triple.substr(comma + 1, colon - comma - 1),
                        &level) ||
                    !parse_int(triple.substr(colon + 1), &choice))
                    return diag.fail("malformed epoch_choice token '",
                                     triple, "'");
                out.epoch_choice[{se, level}] = choice;
            }
        } else {
            // Unknown key: refuse rather than guess.
            return diag.fail("unknown key '", key, "'");
        }
    }
    *config = std::move(out);
    return true;
}

bool
read_config(std::istream& is, ScheduleConfig* config)
{
    return read_config(is, config, nullptr);
}

std::string
config_to_string(const ScheduleConfig& config)
{
    std::ostringstream os;
    write_config(os, config);
    return os.str();
}

bool
config_from_string(const std::string& text, ScheduleConfig* config,
                   std::string* error)
{
    std::istringstream is(text);
    return read_config(is, config, error);
}

bool
config_from_string(const std::string& text, ScheduleConfig* config)
{
    return config_from_string(text, config, nullptr);
}

void
write_profile_index(std::ostream& os, const ProfileIndex& index)
{
    const std::locale prev = os.imbue(std::locale::classic());
    os << "astra-profile v1\n";
    os << "entries " << index.entries().size() << "\n";
    const std::ios_base::fmtflags flags = os.flags();
    os << std::hexfloat;
    for (const auto& [key, s] : index.entries()) {
        os << "stat " << s.count << " " << s.rejected << " " << s.faults
           << " " << s.min << " " << s.max << " " << s.mean << " "
           << s.m2 << " " << s.window().size();
        for (double w : s.window())
            os << " " << w;
        // The key goes last so it may contain any character but a
        // newline (profile keys embed '|', '%', context mangles, ...).
        os << " " << key << "\n";
    }
    os.flags(flags);
    os.imbue(prev);
}

bool
read_profile_index(std::istream& is, ProfileIndex* index,
                   std::string* error)
{
    Diag diag(error);
    std::string header;
    diag.advance();
    if (!std::getline(is, header))
        return diag.fail("empty input (expected 'astra-profile v1')");
    if (header != "astra-profile v1")
        return diag.fail("bad header '", header,
                         "' (expected 'astra-profile v1')");

    std::string line;
    diag.advance();
    if (!std::getline(is, line))
        return diag.fail("missing entries line");
    std::istringstream ls(line);
    ls.imbue(std::locale::classic());
    std::string tag;
    std::string tok;
    int64_t num_entries = 0;
    if (!(ls >> tag >> tok) || tag != "entries" ||
        !parse_i64(tok, &num_entries) || num_entries < 0)
        return diag.fail("malformed entries line '", line, "'");

    ProfileIndex out(index->policy());
    for (int64_t i = 0; i < num_entries; ++i) {
        diag.advance();
        if (!std::getline(is, line))
            return diag.fail("truncated: expected ", num_entries,
                             " stat lines, got ", i);
        ls.clear();
        ls.str(line);
        std::string f[8];
        if (!(ls >> tag >> f[0] >> f[1] >> f[2] >> f[3] >> f[4] >> f[5] >>
              f[6] >> f[7]) ||
            tag != "stat")
            return diag.fail("malformed stat line '", line, "'");
        int64_t count = 0;
        int64_t rejected = 0;
        int64_t faults = 0;
        double mn = 0.0;
        double mx = 0.0;
        double mean = 0.0;
        double m2 = 0.0;
        int64_t num_window = 0;
        if (!parse_i64(f[0], &count) || count < 0 ||
            !parse_i64(f[1], &rejected) || rejected < 0 ||
            !parse_i64(f[2], &faults) || faults < 0 ||
            !parse_f64(f[3], &mn) || !parse_f64(f[4], &mx) ||
            !parse_f64(f[5], &mean) || !parse_f64(f[6], &m2) ||
            !parse_i64(f[7], &num_window) || num_window < 0)
            return diag.fail("malformed stat fields in '", line, "'");
        std::vector<double> window;
        window.reserve(static_cast<size_t>(num_window));
        for (int64_t w = 0; w < num_window; ++w) {
            double v = 0.0;
            if (!(ls >> tok) || !parse_f64(tok, &v))
                return diag.fail("malformed window sample ", w, " in '",
                                 line, "'");
            window.push_back(v);
        }
        std::string key;
        std::getline(ls, key);
        if (key.empty() || key[0] != ' ')
            return diag.fail("missing profile key in '", line, "'");
        key = key.substr(1);
        out.restore_entry(key,
                          ProfileStats::restore(count, rejected, faults,
                                                mn, mx, mean, m2,
                                                std::move(window)));
    }
    *index = std::move(out);
    return true;
}

std::string
profile_index_to_string(const ProfileIndex& index)
{
    std::ostringstream os;
    write_profile_index(os, index);
    return os.str();
}

bool
profile_index_from_string(const std::string& text, ProfileIndex* index,
                          std::string* error)
{
    std::istringstream is(text);
    return read_profile_index(is, index, error);
}

void
write_checkpoint(std::ostream& os, const WirerCheckpoint& cp)
{
    const std::locale prev = os.imbue(std::locale::classic());
    os << "astra-checkpoint v1\n";
    os << "strategies " << cp.strategies.size() << "\n";
    const std::ios_base::fmtflags flags = os.flags();
    os << std::hexfloat;
    for (size_t sid = 0; sid < cp.strategies.size(); ++sid) {
        const auto& recs = cp.strategies[sid];
        os << "strategy " << sid << " " << recs.size() << "\n";
        for (const DispatchRecord& r : recs) {
            os << "record " << r.total_ns << " " << r.clock_multiplier
               << " " << (r.faulted ? 1 : 0) << " " << r.fault_attempts
               << " " << r.faults_seen << " " << r.straggler_events
               << " " << r.backoff_ns << " " << r.profile.size()
               << "\n";
            // The key goes last so it may contain any character but a
            // newline; the value parses no matter what the key is.
            for (const auto& [key, ns] : r.profile)
                os << "prof " << ns << " " << key << "\n";
        }
    }
    os.flags(flags);
    os.imbue(prev);
}

bool
read_checkpoint(std::istream& is, WirerCheckpoint* cp, std::string* error)
{
    Diag diag(error);
    std::string header;
    diag.advance();
    if (!std::getline(is, header))
        return diag.fail("empty input (expected 'astra-checkpoint v1')");
    if (header != "astra-checkpoint v1")
        return diag.fail("bad header '", header,
                         "' (expected 'astra-checkpoint v1')");

    auto next_line = [&is, &diag](std::istringstream* ls) {
        std::string line;
        if (!std::getline(is, line))
            return false;
        diag.advance();
        ls->clear();
        ls->str(line);
        return true;
    };

    std::istringstream ls;
    ls.imbue(std::locale::classic());
    std::string tag;
    std::string tok;
    int64_t num_strategies = 0;
    if (!next_line(&ls))
        return diag.fail("missing strategies line");
    if (!(ls >> tag >> tok) || tag != "strategies" ||
        !parse_i64(tok, &num_strategies) || num_strategies < 0)
        return diag.fail("malformed strategies line");

    WirerCheckpoint out;
    out.strategies.resize(static_cast<size_t>(num_strategies));
    for (int64_t sid = 0; sid < num_strategies; ++sid) {
        int64_t got_sid = 0;
        int64_t num_records = 0;
        std::string sid_tok;
        std::string cnt_tok;
        if (!next_line(&ls))
            return diag.fail("truncated: missing strategy ", sid,
                             " header");
        if (!(ls >> tag >> sid_tok >> cnt_tok) || tag != "strategy" ||
            !parse_i64(sid_tok, &got_sid) || got_sid != sid ||
            !parse_i64(cnt_tok, &num_records) || num_records < 0)
            return diag.fail("malformed strategy header (expected "
                             "'strategy ",
                             sid, " <count>')");
        auto& recs = out.strategies[static_cast<size_t>(sid)];
        recs.reserve(static_cast<size_t>(num_records));
        for (int64_t i = 0; i < num_records; ++i) {
            DispatchRecord r;
            std::string f[8];
            if (!next_line(&ls))
                return diag.fail("truncated: strategy ", sid,
                                 " missing record ", i);
            if (!(ls >> tag >> f[0] >> f[1] >> f[2] >> f[3] >> f[4] >>
                  f[5] >> f[6] >> f[7]) ||
                tag != "record")
                return diag.fail("malformed record line");
            int64_t faulted = 0;
            int64_t attempts = 0;
            int64_t num_profiles = 0;
            if (!parse_f64(f[0], &r.total_ns) ||
                !parse_f64(f[1], &r.clock_multiplier) ||
                !parse_i64(f[2], &faulted) ||
                !parse_i64(f[3], &attempts) ||
                !parse_i64(f[4], &r.faults_seen) ||
                !parse_i64(f[5], &r.straggler_events) ||
                !parse_f64(f[6], &r.backoff_ns) ||
                !parse_i64(f[7], &num_profiles) || num_profiles < 0)
                return diag.fail("malformed record fields");
            r.faulted = faulted != 0;
            r.fault_attempts = static_cast<int>(attempts);
            r.profile.reserve(static_cast<size_t>(num_profiles));
            for (int64_t p = 0; p < num_profiles; ++p) {
                double ns = 0.0;
                if (!next_line(&ls))
                    return diag.fail("truncated: record ", i,
                                     " missing prof ", p);
                if (!(ls >> tag >> tok) || tag != "prof" ||
                    !parse_f64(tok, &ns))
                    return diag.fail("malformed prof line");
                std::string key;
                std::getline(ls, key);
                if (key.empty() || key[0] != ' ')
                    return diag.fail("missing profile key on prof line");
                r.profile.emplace_back(key.substr(1), ns);
            }
            recs.push_back(std::move(r));
        }
    }
    *cp = std::move(out);
    return true;
}

bool
read_checkpoint(std::istream& is, WirerCheckpoint* cp)
{
    return read_checkpoint(is, cp, nullptr);
}

std::string
checkpoint_to_string(const WirerCheckpoint& cp)
{
    std::ostringstream os;
    write_checkpoint(os, cp);
    return os.str();
}

bool
checkpoint_from_string(const std::string& text, WirerCheckpoint* cp,
                       std::string* error)
{
    std::istringstream is(text);
    return read_checkpoint(is, cp, error);
}

bool
checkpoint_from_string(const std::string& text, WirerCheckpoint* cp)
{
    return checkpoint_from_string(text, cp, nullptr);
}

}  // namespace astra
