#include "core/config_io.h"

#include <sstream>

namespace astra {

void
write_config(std::ostream& os, const ScheduleConfig& config)
{
    os << "astra-config v1\n";
    os << "strategy " << config.strategy << "\n";
    os << "elementwise_fusion " << (config.elementwise_fusion ? 1 : 0)
       << "\n";
    os << "use_streams " << (config.use_streams ? 1 : 0) << "\n";
    os << "num_streams " << config.num_streams << "\n";
    os << "group_chunk";
    for (int c : config.group_chunk)
        os << " " << c;
    os << "\n";
    os << "group_lib";
    for (GemmLib lib : config.group_lib)
        os << " " << static_cast<int>(lib);
    os << "\n";
    os << "single_lib";
    for (const auto& [node, lib] : config.single_lib)
        os << " " << node << ":" << static_cast<int>(lib);
    os << "\n";
    os << "epoch_choice";
    for (const auto& [key, choice] : config.epoch_choice)
        os << " " << key.first << "," << key.second << ":" << choice;
    os << "\n";
}

bool
read_config(std::istream& is, ScheduleConfig* config)
{
    std::string header;
    if (!std::getline(is, header) || header != "astra-config v1")
        return false;
    ScheduleConfig out;
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "strategy") {
            if (!(ls >> out.strategy))
                return false;
        } else if (key == "elementwise_fusion") {
            int v;
            if (!(ls >> v))
                return false;
            out.elementwise_fusion = v != 0;
        } else if (key == "use_streams") {
            int v;
            if (!(ls >> v))
                return false;
            out.use_streams = v != 0;
        } else if (key == "num_streams") {
            if (!(ls >> out.num_streams))
                return false;
        } else if (key == "group_chunk") {
            int c;
            while (ls >> c)
                out.group_chunk.push_back(c);
        } else if (key == "group_lib") {
            int lib;
            while (ls >> lib) {
                if (lib < 0 || lib >= kNumGemmLibs)
                    return false;
                out.group_lib.push_back(static_cast<GemmLib>(lib));
            }
        } else if (key == "single_lib") {
            std::string pair;
            while (ls >> pair) {
                const auto colon = pair.find(':');
                if (colon == std::string::npos)
                    return false;
                const NodeId node = static_cast<NodeId>(
                    std::stol(pair.substr(0, colon)));
                const int lib = std::stoi(pair.substr(colon + 1));
                if (lib < 0 || lib >= kNumGemmLibs)
                    return false;
                out.single_lib[node] = static_cast<GemmLib>(lib);
            }
        } else if (key == "epoch_choice") {
            std::string triple;
            while (ls >> triple) {
                const auto comma = triple.find(',');
                const auto colon = triple.find(':');
                if (comma == std::string::npos ||
                    colon == std::string::npos || colon < comma)
                    return false;
                const int se = std::stoi(triple.substr(0, comma));
                const int level = std::stoi(
                    triple.substr(comma + 1, colon - comma - 1));
                const int choice = std::stoi(triple.substr(colon + 1));
                out.epoch_choice[{se, level}] = choice;
            }
        } else {
            return false;  // unknown key: refuse rather than guess
        }
    }
    *config = std::move(out);
    return true;
}

std::string
config_to_string(const ScheduleConfig& config)
{
    std::ostringstream os;
    write_config(os, config);
    return os.str();
}

bool
config_from_string(const std::string& text, ScheduleConfig* config)
{
    std::istringstream is(text);
    return read_config(is, config);
}

}  // namespace astra
