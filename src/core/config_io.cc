#include "core/config_io.h"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace astra {

namespace {

/**
 * Parse an entire string as a decimal integer into [lo, hi]; false on
 * empty input, trailing junk, or overflow — never throws (config files
 * are untrusted input; a malformed token must fail the load, not crash
 * the process).
 */
bool
parse_int(const std::string& s, long lo, long hi, long* out)
{
    if (s.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    if (v < lo || v > hi)
        return false;
    *out = v;
    return true;
}

bool
parse_int(const std::string& s, int* out)
{
    long v = 0;
    if (!parse_int(s, std::numeric_limits<int>::min(),
                   std::numeric_limits<int>::max(), &v))
        return false;
    *out = static_cast<int>(v);
    return true;
}

}  // namespace

void
write_config(std::ostream& os, const ScheduleConfig& config)
{
    os << "astra-config v1\n";
    os << "strategy " << config.strategy << "\n";
    os << "elementwise_fusion " << (config.elementwise_fusion ? 1 : 0)
       << "\n";
    os << "use_streams " << (config.use_streams ? 1 : 0) << "\n";
    os << "num_streams " << config.num_streams << "\n";
    os << "group_chunk";
    for (int c : config.group_chunk)
        os << " " << c;
    os << "\n";
    os << "group_lib";
    for (GemmLib lib : config.group_lib)
        os << " " << static_cast<int>(lib);
    os << "\n";
    os << "single_lib";
    for (const auto& [node, lib] : config.single_lib)
        os << " " << node << ":" << static_cast<int>(lib);
    os << "\n";
    os << "epoch_choice";
    for (const auto& [key, choice] : config.epoch_choice)
        os << " " << key.first << "," << key.second << ":" << choice;
    os << "\n";
}

bool
read_config(std::istream& is, ScheduleConfig* config)
{
    std::string header;
    if (!std::getline(is, header) || header != "astra-config v1")
        return false;
    ScheduleConfig out;
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "strategy") {
            if (!(ls >> out.strategy))
                return false;
        } else if (key == "elementwise_fusion") {
            int v;
            if (!(ls >> v))
                return false;
            out.elementwise_fusion = v != 0;
        } else if (key == "use_streams") {
            int v;
            if (!(ls >> v))
                return false;
            out.use_streams = v != 0;
        } else if (key == "num_streams") {
            if (!(ls >> out.num_streams))
                return false;
        } else if (key == "group_chunk") {
            int c;
            while (ls >> c)
                out.group_chunk.push_back(c);
        } else if (key == "group_lib") {
            int lib;
            while (ls >> lib) {
                if (lib < 0 || lib >= kNumGemmLibs)
                    return false;
                out.group_lib.push_back(static_cast<GemmLib>(lib));
            }
        } else if (key == "single_lib") {
            std::string pair;
            while (ls >> pair) {
                const auto colon = pair.find(':');
                if (colon == std::string::npos)
                    return false;
                int node = 0;
                int lib = 0;
                if (!parse_int(pair.substr(0, colon), &node) ||
                    !parse_int(pair.substr(colon + 1), &lib))
                    return false;
                if (node < 0 || lib < 0 || lib >= kNumGemmLibs)
                    return false;
                out.single_lib[static_cast<NodeId>(node)] =
                    static_cast<GemmLib>(lib);
            }
        } else if (key == "epoch_choice") {
            std::string triple;
            while (ls >> triple) {
                const auto comma = triple.find(',');
                const auto colon = triple.find(':');
                if (comma == std::string::npos ||
                    colon == std::string::npos || colon < comma)
                    return false;
                int se = 0;
                int level = 0;
                int choice = 0;
                if (!parse_int(triple.substr(0, comma), &se) ||
                    !parse_int(
                        triple.substr(comma + 1, colon - comma - 1),
                        &level) ||
                    !parse_int(triple.substr(colon + 1), &choice))
                    return false;
                out.epoch_choice[{se, level}] = choice;
            }
        } else {
            return false;  // unknown key: refuse rather than guess
        }
    }
    *config = std::move(out);
    return true;
}

std::string
config_to_string(const ScheduleConfig& config)
{
    std::ostringstream os;
    write_config(os, config);
    return os.str();
}

bool
config_from_string(const std::string& text, ScheduleConfig* config)
{
    std::istringstream is(text);
    return read_config(is, config);
}

}  // namespace astra
