#include "core/data_parallel.h"

#include <algorithm>
#include <limits>
#include <string>

#include "core/adaptive.h"
#include "core/search_space.h"
#include "obs/obs.h"
#include "support/logging.h"

namespace astra {

double
ring_allreduce_ns(int64_t bytes, int degree, const InterconnectConfig& net)
{
    ASTRA_ASSERT(degree >= 1);
    if (degree == 1)
        return 0.0;
    const double g = static_cast<double>(degree);
    // link_gbps is gigabits/s (1 Gbit/s == 1 bit/ns): ns = bits/gbps.
    const double bw_term = 2.0 * (g - 1.0) / g *
                           static_cast<double>(bytes) * 8.0 /
                           net.link_gbps;
    const double lat_term = 2.0 * (g - 1.0) * net.latency_us * 1e3;
    return bw_term + lat_term;
}

namespace {

/**
 * Explore gradient-bucket capacity and flush schedule for one degree
 * with the adaptive machinery: two variables under an Exhaustive
 * update node, profile keys mangled under a "dp<G>|" context prefix
 * (plus the flush binding in the bucket variable's context, so a
 * capacity measured under one schedule never answers for the other).
 * Fills the chosen binding and measured detail into `p`.
 */
void
explore_dp_binding(const ExecutionPlan& plan, const Graph& graph,
                   const TensorMap& tmap, const AstraOptions& opts,
                   const InterconnectConfig& net,
                   const DataParallelSpace& dp, ScalePoint& p)
{
    const int G = p.degree;
    const std::string dpctx =
        opts.context_prefix + "dp" + std::to_string(G) + "|";

    const int nbuckets = static_cast<int>(dp.bucket_options.size());
    auto bucket_var =
        std::make_shared<AdaptiveVariable>("bucket", nbuckets);
    auto flush_var = std::make_shared<AdaptiveVariable>("flush", 2);
    flush_var->set_context(dpctx);

    std::vector<std::unique_ptr<UpdateNode>> leaves;
    leaves.push_back(UpdateNode::leaf(bucket_var));
    leaves.push_back(UpdateNode::leaf(flush_var));
    auto root = UpdateNode::composite(UpdateNode::Mode::Exhaustive,
                                      std::move(leaves));
    root->initialize();

    ProfileIndex index(opts.measurement);
    const int repeats = std::max(1, opts.measurement.min_samples);

    DpOptions dopts;
    dopts.degree = G;
    dopts.link = net;

    const auto bucket_context = [&](int flush_choice) {
        return dpctx + "flush=" + std::to_string(flush_choice) + "|";
    };

    // Exhaustive sweep: each trial dispatches the current binding on G
    // devices and records the measured step under both variables' keys
    // (the flush key accumulates the best across capacities — ranking
    // schedules by their best achievable step).
    while (true) {
        const int fc = flush_var->current();
        bucket_var->set_context(bucket_context(fc));
        dopts.bucket_bytes =
            dp.bucket_options[static_cast<size_t>(bucket_var->current())];
        dopts.flush = fc == 0 ? FlushSchedule::Eager
                              : FlushSchedule::EndOfStep;
        for (int r = 0; r < repeats; ++r) {
            const DpResult m =
                dispatch_plan_dp(plan, graph, tmap, opts.gpu,
                                 dp.grad_nodes, dopts);
            ++p.minibatches;
            index.record(bucket_var->profile_key(), m.step_ns);
            index.record(flush_var->profile_key(), m.step_ns);
        }
        if (root->finished())
            break;
        root->advance(index);
    }

    // Bind: flush first, then the capacity under that schedule (the
    // bucket variable's context depends on the flush binding).
    flush_var->bind_best(index);
    bucket_var->set_context(bucket_context(flush_var->current()));
    bucket_var->bind_best(index);

    p.flush = flush_var->current() == 0 ? FlushSchedule::Eager
                                        : FlushSchedule::EndOfStep;
    p.bucket_bytes =
        dp.bucket_options[static_cast<size_t>(bucket_var->current())];

    // Re-dispatch the chosen binding for the detail fields.
    dopts.bucket_bytes = p.bucket_bytes;
    dopts.flush = p.flush;
    const DpResult chosen =
        dispatch_plan_dp(plan, graph, tmap, opts.gpu, dp.grad_nodes,
                         dopts);
    ++p.minibatches;
    p.step_ns = chosen.step_ns;
    p.comm_ns = chosen.comm_ns;
    p.overlap_ns = chosen.overlap_ns;
    p.num_buckets = chosen.num_buckets;

    // Serial baseline: one bucket, flushed only after compute drains.
    DpOptions serial = dopts;
    serial.bucket_bytes = dp.grad_bytes;
    serial.flush = FlushSchedule::EndOfStep;
    const DpResult base =
        dispatch_plan_dp(plan, graph, tmap, opts.gpu, dp.grad_nodes,
                         serial);
    ++p.minibatches;
    p.serial_ns = base.step_ns;
}

}  // namespace

std::vector<ScalePoint>
measure_scaling(const BatchGraphFn& build, int64_t global_batch,
                const std::vector<int>& degrees, const AstraOptions& opts,
                const InterconnectConfig& net, ConvergenceReport* report)
{
    std::vector<ScalePoint> points;
    for (int degree : degrees) {
        if (degree < 1 || global_batch % degree != 0) {
            const std::string why =
                "skipping degree " + std::to_string(degree) +
                ": does not divide global batch " +
                std::to_string(global_batch);
            warn(why);
            if (report != nullptr)
                report->dp_skipped.push_back(why);
            obs::counter("dp.degrees_skipped").add();
            continue;
        }
        GraphBuilder b;
        build(b, global_batch / degree);
        AstraSession session(b.graph(), opts);

        ScalePoint p;
        p.degree = degree;

        // All devices run the identical tuned schedule on identical
        // shapes; mini-batch predictability (§4.1) makes one device's
        // compute tuning stand for all of them.
        const WirerResult r = session.optimize();
        const ExecutionPlan plan =
            session.scheduler().build(r.best_config);
        const TensorMap& tmap =
            session.tensor_map(r.best_config.strategy);

        const DataParallelSpace dp = enumerate_dp_space(b.graph());
        p.grad_bytes = dp.grad_bytes;
        p.allreduce_ns = ring_allreduce_ns(p.grad_bytes, degree, net);

        // Pure-compute makespan under the dp dispatcher (no gradient
        // nodes -> no communication), so serial/overlap comparisons
        // share one measurement pipeline.
        DpOptions compute_only;
        compute_only.degree = degree;
        compute_only.link = net;
        p.compute_ns = dispatch_plan_dp(plan, b.graph(), tmap, opts.gpu,
                                        {}, compute_only)
                           .step_ns;
        ++p.minibatches;

        if (degree == 1) {
            p.step_ns = p.compute_ns;
            p.serial_ns = p.compute_ns;
        } else {
            explore_dp_binding(plan, b.graph(), tmap, opts, net, dp, p);
        }
        obs::observe("dp.step_ns", p.step_ns);
        obs::observe("dp.overlap_ns", p.overlap_ns);
        points.push_back(p);
    }
    ASTRA_ASSERT(!points.empty(), "no feasible parallelism degree");
    return points;
}

size_t
best_degree(const std::vector<ScalePoint>& points, int64_t global_batch)
{
    ASTRA_ASSERT(!points.empty(),
                 "best_degree called with no scaling points");
    size_t best = 0;
    for (size_t i = 1; i < points.size(); ++i)
        if (points[i].throughput(global_batch) >
            points[best].throughput(global_batch))
            best = i;
    return best;
}

}  // namespace astra
