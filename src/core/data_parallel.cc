#include "core/data_parallel.h"

#include "support/logging.h"

namespace astra {

double
ring_allreduce_ns(int64_t bytes, int degree, const InterconnectConfig& net)
{
    ASTRA_ASSERT(degree >= 1);
    if (degree == 1)
        return 0.0;
    const double g = static_cast<double>(degree);
    const double bw_term = 2.0 * (g - 1.0) / g *
                           static_cast<double>(bytes) / net.link_gbps;
    const double lat_term = 2.0 * (g - 1.0) * net.latency_us * 1e3;
    return bw_term + lat_term;
}

std::vector<ScalePoint>
measure_scaling(const BatchGraphFn& build, int64_t global_batch,
                const std::vector<int>& degrees, const AstraOptions& opts,
                const InterconnectConfig& net)
{
    std::vector<ScalePoint> points;
    for (int degree : degrees) {
        if (degree < 1 || global_batch % degree != 0) {
            warn("skipping degree ", degree,
                 ": does not divide global batch ", global_batch);
            continue;
        }
        GraphBuilder b;
        build(b, global_batch / degree);
        AstraSession session(b.graph(), opts);

        ScalePoint p;
        p.degree = degree;
        // All devices run the identical tuned schedule on identical
        // shapes; mini-batch predictability (§4.1) makes one device's
        // measurement stand for all of them.
        const WirerResult r = session.optimize();
        p.compute_ns = r.best_ns;
        for (NodeId param : b.graph().params())
            p.grad_bytes += static_cast<int64_t>(
                b.graph().node(param).desc.bytes());
        p.allreduce_ns = ring_allreduce_ns(p.grad_bytes, degree, net);
        p.step_ns = p.compute_ns + p.allreduce_ns;
        points.push_back(p);
    }
    ASTRA_ASSERT(!points.empty(), "no feasible parallelism degree");
    return points;
}

size_t
best_degree(const std::vector<ScalePoint>& points, int64_t global_batch)
{
    size_t best = 0;
    for (size_t i = 1; i < points.size(); ++i)
        if (points[i].throughput(global_batch) >
            points[best].throughput(global_batch))
            best = i;
    return best;
}

}  // namespace astra
