#include "core/profile_index.h"

#include "obs/obs.h"

namespace astra {

void
ProfileIndex::record(const std::string& key, double ns)
{
    static obs::Counter& records = obs::counter("profile_index.records");
    records.add();
    entries_[key] = ns;
}

std::optional<double>
ProfileIndex::lookup(const std::string& key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        static obs::Counter& misses =
            obs::counter("profile_index.misses");
        misses.add();
        return std::nullopt;
    }
    static obs::Counter& hits = obs::counter("profile_index.hits");
    hits.add();
    return it->second;
}

bool
ProfileIndex::contains(const std::string& key) const
{
    return entries_.count(key) > 0;
}

int
ProfileIndex::best_choice(const std::string& prefix, int num_choices) const
{
    int best = -1;
    double best_ns = 0.0;
    for (int c = 0; c < num_choices; ++c) {
        const auto v = lookup(prefix + std::to_string(c));
        if (v && (best < 0 || *v < best_ns)) {
            best = c;
            best_ns = *v;
        }
    }
    return best;
}

}  // namespace astra
