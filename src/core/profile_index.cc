#include "core/profile_index.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace astra {

namespace {

/** Median of a small vector (copy; windows are capped at 32). */
double
median_of(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    const size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(mid),
                     v.end());
    const double hi = v[mid];
    if (v.size() % 2 == 1)
        return hi;
    const double lo =
        *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
    return 0.5 * (lo + hi);
}

/** Scales MAD to a standard-deviation equivalent for normal noise. */
constexpr double kMadToSigma = 1.4826;

}  // namespace

MeasurementPolicy
MeasurementPolicy::noise_robust()
{
    MeasurementPolicy p;
    // First line of defense: compensate for the clock. Autoboost jitter
    // is a multiplicative clock change, constant over one mini-batch
    // and queryable (NVML); dividing it out turns every sample into
    // base-clock-equivalent time, exact to FP rounding.
    p.normalize_clock = true;
    // Residual rounding noise is ~1e-14 relative; anything closer than
    // a part-per-billion is below measurement resolution and merges
    // deterministically onto the lowest index.
    p.tie_epsilon_rel = 1e-9;
    // Mean-of-k over compensated samples: averages residual rounding
    // and guards (with the MAD test) against any sample the
    // compensation missed; min would track the most favorable residual
    // instead of the typical one.
    p.statistic = Statistic::Mean;
    p.outlier_mad_k = 3.5;
    p.outlier_min_window = 5;
    p.min_samples = 3;
    // 3 sigma: ties merge to the lowest index with ~99.7% coverage,
    // while real separations below 3 standard errors keep sampling
    // until the repeat budget tightens them into decisiveness.
    p.noise_margin_sigmas = 3.0;
    p.max_repeats = 16;
    return p;
}

void
ProfileStats::add(double x)
{
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
    min = count == 1 ? x : std::min(min, x);
    max = count == 1 ? x : std::max(max, x);
    if (window_.size() >= kWindowCap)
        window_.erase(window_.begin());
    window_.push_back(x);
}

void
ProfileStats::merge(const ProfileStats& other)
{
    rejected += other.rejected;
    faults += other.faults;
    if (other.count == 0)
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
        mean = other.mean;
        m2 = other.m2;
        count = other.count;
    } else {
        // Chan et al. pairwise combine: exact in exact arithmetic,
        // numerically stable in floating point.
        const double n = static_cast<double>(count);
        const double on = static_cast<double>(other.count);
        const double delta = other.mean - mean;
        mean += delta * on / (n + on);
        m2 += other.m2 + delta * delta * n * on / (n + on);
        min = std::min(min, other.min);
        max = std::max(max, other.max);
        count += other.count;
    }
    for (double x : other.window_) {
        if (window_.size() >= kWindowCap)
            window_.erase(window_.begin());
        window_.push_back(x);
    }
}

ProfileStats
ProfileStats::restore(int64_t count, int64_t rejected, int64_t faults,
                      double min, double max, double mean, double m2,
                      std::vector<double> window)
{
    ProfileStats s;
    s.count = count;
    s.rejected = rejected;
    s.faults = faults;
    s.min = min;
    s.max = max;
    s.mean = mean;
    s.m2 = m2;
    if (window.size() > kWindowCap)
        window.erase(window.begin(),
                     window.end() - static_cast<long>(kWindowCap));
    s.window_ = std::move(window);
    return s;
}

double
ProfileStats::variance() const
{
    return count > 1 ? m2 / static_cast<double>(count) : 0.0;
}

double
ProfileStats::stddev() const
{
    return std::sqrt(variance());
}

double
ProfileStats::cov() const
{
    return mean != 0.0 ? stddev() / std::abs(mean) : 0.0;
}

double
ProfileStats::value(Statistic s) const
{
    switch (s) {
      case Statistic::Min:
        return min;
      case Statistic::Mean:
        return mean;
    }
    return min;
}

double
ProfileStats::median() const
{
    return median_of(window_);
}

double
ProfileStats::mad() const
{
    if (window_.empty())
        return 0.0;
    const double med = median_of(window_);
    std::vector<double> dev;
    dev.reserve(window_.size());
    for (double x : window_)
        dev.push_back(std::abs(x - med));
    return median_of(std::move(dev));
}

bool
ProfileIndex::record(const std::string& key, double ns)
{
    static obs::Counter& records = obs::counter("profile_index.records");
    records.add();
    ProfileStats& s = entries_[key];
    if (policy_.outlier_mad_k > 0.0 &&
        s.count >= policy_.outlier_min_window) {
        // Robust outlier test against the recent window. A zero MAD
        // (identical samples, the base-clock case) gets a tiny
        // relative floor so exact repeats are never rejected.
        const double med = s.median();
        const double scale = std::max(kMadToSigma * s.mad(),
                                      1e-9 * std::abs(med));
        if (std::abs(ns - med) > policy_.outlier_mad_k * scale) {
            ++s.rejected;
            ++total_rejected_;
            static obs::Counter& rejected =
                obs::counter("profile_index.outliers_rejected");
            rejected.add();
            return false;
        }
    }
    s.add(ns);
    ++total_samples_;
    return true;
}

void
ProfileIndex::record_fault(const std::string& key)
{
    static obs::Counter& faults =
        obs::counter("profile_index.faulted_records");
    faults.add();
    ++entries_[key].faults;
    ++total_faults_;
}

std::vector<std::string>
ProfileIndex::quarantined_keys() const
{
    std::vector<std::string> out;
    for (const auto& [key, stats] : entries_)
        if (stats.faults > 0 && stats.count == 0)
            out.push_back(key);
    return out;
}

std::optional<double>
ProfileIndex::lookup(const std::string& key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end() || it->second.count == 0) {
        static obs::Counter& misses =
            obs::counter("profile_index.misses");
        misses.add();
        return std::nullopt;
    }
    static obs::Counter& hits = obs::counter("profile_index.hits");
    hits.add();
    return it->second.value(policy_.statistic);
}

const ProfileStats*
ProfileIndex::stats(const std::string& key) const
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
}

int64_t
ProfileIndex::samples(const std::string& key) const
{
    const ProfileStats* s = stats(key);
    return s ? s->count : 0;
}

bool
ProfileIndex::contains(const std::string& key) const
{
    return entries_.count(key) > 0;
}

int
ProfileIndex::best_choice(const std::string& prefix,
                          int num_choices) const
{
    return decide(prefix, num_choices).choice;
}

ChoiceDecision
ProfileIndex::decide(const std::string& prefix, int num_choices) const
{
    ChoiceDecision d;
    const ProfileStats* best = nullptr;
    const ProfileStats* second = nullptr;
    double best_v = 0.0;
    double second_v = 0.0;
    for (int c = 0; c < num_choices; ++c) {
        const ProfileStats* s = stats(prefix + std::to_string(c));
        if (!s || s->count == 0)
            continue;
        const double v = s->value(policy_.statistic);
        if (d.choice < 0 || v < best_v) {
            d.runner_up = d.choice;
            second = best;
            second_v = best_v;
            d.choice = c;
            best = s;
            best_v = v;
        } else if (d.runner_up < 0 || v < second_v) {
            d.runner_up = c;
            second = s;
            second_v = v;
        }
    }
    if (d.choice < 0 || d.runner_up < 0)
        return d;  // fewer than two measured: trivially decisive
    d.separation = second_v - best_v;
    // Noise scale of the comparison. For Mean the relevant scale is
    // the standard error of each estimate — it shrinks as 1/sqrt(k),
    // so repetition can always make a real separation decisive. For
    // Min the raw per-sample spread is used (a heuristic: min has no
    // simple standard error).
    auto est_var = [&](const ProfileStats* s) {
        double v = s->variance();
        if (policy_.statistic == Statistic::Mean && s->count > 0)
            v /= static_cast<double>(s->count);
        return v;
    };
    d.noise = std::sqrt(est_var(best) + est_var(second));
    if (policy_.noise_margin_sigmas > 0.0) {
        const double eps = policy_.tie_epsilon_rel * std::abs(best_v);
        const bool sampled = best->count >= policy_.min_samples &&
                             second->count >= policy_.min_samples;
        // With zero observed noise any separation (even a dead tie)
        // is decisive: more samples cannot change the ranking. A
        // separation below the resolution floor is likewise decisive —
        // it is a tie by definition, not an open question.
        d.decisive = sampled &&
                     (d.separation >= policy_.noise_margin_sigmas * d.noise ||
                      d.separation <= eps || d.noise == 0.0);
        // Deterministic tie resolution: prefer the lowest-indexed
        // choice statistically indistinguishable from the winner
        // (within the noise floor or the resolution floor). At base
        // clock the noise floor is zero, so only resolution-level ties
        // merge — which matches the jitter-free first-best rule. This
        // is what lets a noisy run converge to the same configuration
        // as a jitter-free one instead of coin-flipping every tie.
        for (int c = 0; c < d.choice; ++c) {
            const ProfileStats* s = stats(prefix + std::to_string(c));
            if (!s || s->count == 0)
                continue;
            const double v = s->value(policy_.statistic);
            const double pair_noise =
                std::sqrt(est_var(s) + est_var(best));
            const double floor = std::max(
                policy_.noise_margin_sigmas * pair_noise, eps);
            if (v - best_v <= floor) {
                // Report the tied pair so re-measurement targets it.
                // A resolution-floor tie is settled; a noise-floor tie
                // stays non-decisive (more samples may yet separate
                // the pair).
                d.runner_up = d.choice;
                d.choice = c;
                d.separation = v - best_v;
                d.noise = pair_noise;
                d.decisive = s->count >= policy_.min_samples &&
                             best->count >= policy_.min_samples &&
                             (d.separation <= eps || d.noise == 0.0);
                break;
            }
        }
    }
    return d;
}

void
ProfileIndex::merge(const ProfileIndex& other)
{
    for (const auto& [key, stats] : other.entries_) {
        const auto [it, inserted] = entries_.emplace(key, stats);
        if (!inserted)
            it->second.merge(stats);
    }
    total_samples_ += other.total_samples_;
    total_rejected_ += other.total_rejected_;
    total_faults_ += other.total_faults_;
}

void
ProfileIndex::restore_entry(const std::string& key, ProfileStats stats)
{
    total_samples_ += stats.count;
    total_rejected_ += stats.rejected;
    total_faults_ += stats.faults;
    const auto it = entries_.find(key);
    if (it == entries_.end())
        entries_.emplace(key, std::move(stats));
    else
        it->second.merge(stats);
}

void
ProfileIndex::clear()
{
    entries_.clear();
    total_samples_ = 0;
    total_rejected_ = 0;
    total_faults_ = 0;
}

}  // namespace astra
