#include "core/astra.h"

#include "autodiff/recompute.h"
#include "obs/obs.h"
#include "runtime/native.h"
#include "support/logging.h"

namespace astra {

int64_t
graph_tensor_bytes(const Graph& graph)
{
    int64_t total = 0;
    for (const Node& n : graph.nodes())
        total += static_cast<int64_t>(n.desc.bytes()) + 256;
    return total;
}

AstraSession::AstraSession(const Graph& graph, AstraOptions opts)
    : graph_(&graph), opts_(std::move(opts))
{
    try {
        init();
    } catch (const MemoryError&) {
        // Last rung of the OOM ladder: rewrite the graph to recompute
        // interior activations (paper §3.4) and restart the ladder on
        // the value-equivalent, smaller-footprint graph.
        if (opts_.grads == nullptr)
            throw;
        recompute_ = std::make_unique<RecomputePlan>(
            apply_recompute(graph, *opts_.grads));
        graph_ = &recompute_->graph();
        obs::counter("session.oom_recompute").add();
        init();
    }
}

void
AstraSession::init()
{
    space_ = SearchSpace();
    scheduler_.reset();
    maps_.clear();
    memories_.clear();
    plan_modes_.clear();

    graph_->validate();
    space_ = enumerate_search_space(*graph_, opts_.enumerator);
    scheduler_ =
        std::make_unique<Scheduler>(*graph_, space_, opts_.sched);

    const int64_t bytes = opts_.hbm_bytes > 0
                              ? opts_.hbm_bytes
                              : graph_tensor_bytes(*graph_) + (1 << 20);
    for (size_t sid = 0; sid < space_.strategies.size(); ++sid) {
        const AllocStrategy& strat = space_.strategies[sid];
        memories_.push_back(std::make_unique<SimMemory>(
            bytes, opts_.gpu.execute_kernels));
        SimMemory& mem = *memories_.back();
        if (opts_.gpu.faults.has(FaultKind::Alloc))
            mem.arm_faults(&opts_.gpu.faults,
                           static_cast<uint64_t>(sid) + 1);
        try {
            maps_.push_back(std::make_unique<TensorMap>(
                *graph_, mem, strat.runs, MemoryPlanMode::Bump));
            plan_modes_.push_back(MemoryPlanMode::Bump);
        } catch (const MemoryError&) {
            // Degrade to liveness-based buffer reuse instead of
            // crashing. reset() rewinds the allocator but not the
            // injector's draw sequence, so a one-shot injected fault
            // does not re-fire on the retry.
            mem.reset();
            obs::counter("session.oom_degraded_reuse").add();
            maps_.push_back(std::make_unique<TensorMap>(
                *graph_, mem, strat.runs, MemoryPlanMode::Reuse));
            plan_modes_.push_back(MemoryPlanMode::Reuse);
        }
    }
}

AstraSession::~AstraSession() = default;

const TensorMap&
AstraSession::tensor_map(int strategy) const
{
    ASTRA_ASSERT(strategy >= 0 &&
                 strategy < static_cast<int>(maps_.size()));
    return *maps_[static_cast<size_t>(strategy)];
}

MemoryPlanMode
AstraSession::plan_mode(int strategy) const
{
    ASTRA_ASSERT(strategy >= 0 &&
                 strategy < static_cast<int>(plan_modes_.size()));
    return plan_modes_[static_cast<size_t>(strategy)];
}

std::unique_ptr<CustomWirer>
AstraSession::make_wirer() const
{
    WirerOptions wopts;
    wopts.features = opts_.features;
    wopts.gpu = opts_.gpu;
    wopts.sched = opts_.sched;
    wopts.num_streams = opts_.num_streams;
    wopts.context_prefix = opts_.context_prefix;
    wopts.measurement = opts_.measurement;
    wopts.max_minibatches = opts_.max_minibatches;
    wopts.threads = opts_.wirer_threads;

    std::vector<const TensorMap*> maps;
    maps.reserve(maps_.size());
    for (const auto& m : maps_)
        maps.push_back(m.get());

    return std::make_unique<CustomWirer>(*graph_, space_, *scheduler_,
                                         maps, wopts);
}

WirerResult
AstraSession::optimize(const BindFn& bind)
{
    return make_wirer()->explore(bind);
}

DispatchResult
AstraSession::run(const ScheduleConfig& config) const
{
    return dispatch_plan(scheduler_->build(config), *graph_,
                         tensor_map(config.strategy), opts_.gpu);
}

DispatchResult
AstraSession::run_native(GemmLib lib) const
{
    return dispatch_plan(native_plan(*graph_, lib), *graph_,
                         tensor_map(0), opts_.gpu);
}

}  // namespace astra
