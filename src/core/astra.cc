#include "core/astra.h"

#include "runtime/native.h"
#include "support/logging.h"

namespace astra {

int64_t
graph_tensor_bytes(const Graph& graph)
{
    int64_t total = 0;
    for (const Node& n : graph.nodes())
        total += static_cast<int64_t>(n.desc.bytes()) + 256;
    return total;
}

AstraSession::AstraSession(const Graph& graph, AstraOptions opts)
    : graph_(graph), opts_(std::move(opts))
{
    graph_.validate();
    space_ = enumerate_search_space(graph_, opts_.enumerator);
    scheduler_ = std::make_unique<Scheduler>(graph_, space_, opts_.sched);

    const int64_t bytes = opts_.hbm_bytes > 0
                              ? opts_.hbm_bytes
                              : graph_tensor_bytes(graph_) + (1 << 20);
    for (const AllocStrategy& strat : space_.strategies) {
        memories_.push_back(std::make_unique<SimMemory>(
            bytes, opts_.gpu.execute_kernels));
        maps_.push_back(std::make_unique<TensorMap>(graph_,
                                                    *memories_.back(),
                                                    strat.runs));
    }
}

AstraSession::~AstraSession() = default;

const TensorMap&
AstraSession::tensor_map(int strategy) const
{
    ASTRA_ASSERT(strategy >= 0 &&
                 strategy < static_cast<int>(maps_.size()));
    return *maps_[static_cast<size_t>(strategy)];
}

WirerResult
AstraSession::optimize(const BindFn& bind)
{
    WirerOptions wopts;
    wopts.features = opts_.features;
    wopts.gpu = opts_.gpu;
    wopts.sched = opts_.sched;
    wopts.num_streams = opts_.num_streams;
    wopts.context_prefix = opts_.context_prefix;
    wopts.measurement = opts_.measurement;
    wopts.max_minibatches = opts_.max_minibatches;
    wopts.threads = opts_.wirer_threads;

    std::vector<const TensorMap*> maps;
    maps.reserve(maps_.size());
    for (const auto& m : maps_)
        maps.push_back(m.get());

    CustomWirer wirer(graph_, space_, *scheduler_, maps, wopts);
    return wirer.explore(bind);
}

DispatchResult
AstraSession::run(const ScheduleConfig& config) const
{
    return dispatch_plan(scheduler_->build(config), graph_,
                         tensor_map(config.strategy), opts_.gpu);
}

DispatchResult
AstraSession::run_native(GemmLib lib) const
{
    return dispatch_plan(native_plan(graph_, lib), graph_, tensor_map(0),
                         opts_.gpu);
}

}  // namespace astra
