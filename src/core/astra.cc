#include "core/astra.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "autodiff/recompute.h"
#include "obs/obs.h"
#include "runtime/native.h"
#include "runtime/wired.h"
#include "support/logging.h"

namespace astra {

int64_t
graph_tensor_bytes(const Graph& graph)
{
    int64_t total = 0;
    for (const Node& n : graph.nodes())
        total += static_cast<int64_t>(n.desc.bytes()) + 256;
    return total;
}

AstraSession::AstraSession(const Graph& graph, AstraOptions opts)
    : graph_(&graph), opts_(std::move(opts))
{
    try {
        init();
    } catch (const MemoryError&) {
        // Last rung of the OOM ladder: rewrite the graph to recompute
        // interior activations (paper §3.4) and restart the ladder on
        // the value-equivalent, smaller-footprint graph.
        if (opts_.grads == nullptr)
            throw;
        recompute_ = std::make_unique<RecomputePlan>(
            apply_recompute(graph, *opts_.grads));
        graph_ = &recompute_->graph();
        obs::counter("session.oom_recompute").add();
        init();
    }
}

void
AstraSession::init()
{
    space_ = SearchSpace();
    scheduler_.reset();
    maps_.clear();
    memories_.clear();
    plan_modes_.clear();

    graph_->validate();
    space_ = enumerate_search_space(*graph_, opts_.enumerator);
    scheduler_ =
        std::make_unique<Scheduler>(*graph_, space_, opts_.sched);

    const int64_t bytes = opts_.hbm_bytes > 0
                              ? opts_.hbm_bytes
                              : graph_tensor_bytes(*graph_) + (1 << 20);
    for (size_t sid = 0; sid < space_.strategies.size(); ++sid) {
        const AllocStrategy& strat = space_.strategies[sid];
        memories_.push_back(std::make_unique<SimMemory>(
            bytes, opts_.gpu.execute_kernels));
        SimMemory& mem = *memories_.back();
        if (opts_.gpu.faults.has(FaultKind::Alloc))
            mem.arm_faults(&opts_.gpu.faults,
                           static_cast<uint64_t>(sid) + 1);
        try {
            maps_.push_back(std::make_unique<TensorMap>(
                *graph_, mem, strat.runs, MemoryPlanMode::Bump));
            plan_modes_.push_back(MemoryPlanMode::Bump);
        } catch (const MemoryError&) {
            // Degrade to liveness-based buffer reuse instead of
            // crashing. reset() rewinds the allocator but not the
            // injector's draw sequence, so a one-shot injected fault
            // does not re-fire on the retry.
            mem.reset();
            obs::counter("session.oom_degraded_reuse").add();
            maps_.push_back(std::make_unique<TensorMap>(
                *graph_, mem, strat.runs, MemoryPlanMode::Reuse));
            plan_modes_.push_back(MemoryPlanMode::Reuse);
        }
    }
}

AstraSession::~AstraSession() = default;

const TensorMap&
AstraSession::tensor_map(int strategy) const
{
    ASTRA_ASSERT(strategy >= 0 &&
                 strategy < static_cast<int>(maps_.size()));
    return *maps_[static_cast<size_t>(strategy)];
}

MemoryPlanMode
AstraSession::plan_mode(int strategy) const
{
    ASTRA_ASSERT(strategy >= 0 &&
                 strategy < static_cast<int>(plan_modes_.size()));
    return plan_modes_[static_cast<size_t>(strategy)];
}

std::unique_ptr<CustomWirer>
AstraSession::make_wirer(WirerWarmStart warm) const
{
    WirerOptions wopts;
    wopts.features = opts_.features;
    wopts.gpu = opts_.gpu;
    wopts.sched = opts_.sched;
    wopts.num_streams = opts_.num_streams;
    wopts.context_prefix = opts_.context_prefix;
    wopts.measurement = opts_.measurement;
    wopts.max_minibatches = opts_.max_minibatches;
    wopts.threads = opts_.wirer_threads;
    wopts.whatif = opts_.whatif;
    wopts.warm = std::move(warm);

    std::vector<const TensorMap*> maps;
    maps.reserve(maps_.size());
    for (const auto& m : maps_)
        maps.push_back(m.get());

    return std::make_unique<CustomWirer>(*graph_, space_, *scheduler_,
                                         maps, wopts);
}

namespace {

/**
 * A stored configuration is only trusted after validating it against
 * the *current* search space: the store key covers the graph and the
 * device timing model but not the scheduler's coarse static knowledge
 * (SchedulerOptions), and a changed super-epoch target can reshape the
 * stream space until a stored epoch choice indexes out of range. An
 * unverifiable entry degrades to a warm start instead of crashing the
 * job.
 */
bool
config_fits(const SearchSpace& space, const Scheduler& sched,
            const ScheduleConfig& config, std::string* why)
{
    if (config.strategy < 0 ||
        config.strategy >=
            static_cast<int>(space.strategies.size())) {
        *why = "strategy out of range";
        return false;
    }
    if (config.group_chunk.size() != space.groups.size() ||
        config.group_lib.size() != space.groups.size()) {
        *why = "group count mismatch";
        return false;
    }
    const AllocStrategy& strat =
        space.strategies[static_cast<size_t>(config.strategy)];
    for (const FusionGroup& g : space.groups) {
        const int chunk =
            config.group_chunk[static_cast<size_t>(g.id)];
        if (chunk == 1 ||
            !strat.group_enabled[static_cast<size_t>(g.id)])
            continue;  // unfused is always schedulable
        if (std::find(g.chunk_options.begin(), g.chunk_options.end(),
                      chunk) == g.chunk_options.end()) {
            *why = "chunk " + std::to_string(chunk) +
                   " not offered by group " + g.key;
            return false;
        }
    }
    if (config.use_streams) {
        ScheduleConfig probe = config;
        probe.use_streams = false;
        probe.epoch_choice.clear();
        const StreamSpace ss = sched.stream_space(
            sched.build_units(probe), config.num_streams);
        std::map<std::pair<int, int>, size_t> options;
        for (const EpochInfo& e : ss.epochs)
            options[{e.super_epoch, e.level}] = e.options.size();
        for (const auto& [key, choice] : config.epoch_choice) {
            const auto it = options.find(key);
            if (it == options.end() || choice < 0 ||
                choice >= static_cast<int>(it->second)) {
                *why = "epoch choice (" + std::to_string(key.first) +
                       "," + std::to_string(key.second) +
                       ") invalid in current stream space";
                return false;
            }
        }
    }
    return true;
}

}  // namespace

WirerResult
AstraSession::optimize(const BindFn& bind)
{
    if (opts_.plan_store.empty())
        return make_wirer()->explore(bind);

    PlanStore store(opts_.plan_store);
    const PlanStoreKey key = make_plan_store_key(*graph_, opts_.gpu);
    StoreLookup hit = store.lookup(key);
    bool drift_demoted = false;

    if (hit.tier == StoreTier::L1) {
        std::string why;
        if (config_fits(space_, *scheduler_, hit.entry.config, &why)) {
            // Exact knowledge: skip wiring. One measured mini-batch
            // verifies the plan still dispatches and rehydrates it
            // through the scheduler's cache for steady-state run().
            if (bind)
                bind(tensor_map(hit.entry.config.strategy), 0);
            const std::shared_ptr<const ExecutionPlan> plan =
                scheduler_->build_cached(hit.entry.config);
            DispatchResult res = dispatch_plan(
                *plan, *graph_,
                tensor_map(hit.entry.config.strategy), opts_.gpu);
            if (opts_.measurement.normalize_clock)
                res.total_ns *= res.clock_multiplier;
            const double margin = opts_.measurement.store_drift_rel;
            const bool drifted =
                margin > 0.0 && hit.entry.best_ns > 0.0 &&
                std::abs(res.total_ns - hit.entry.best_ns) >
                    margin * hit.entry.best_ns;
            if (!drifted) {
                WirerResult out;
                out.best_config = hit.entry.config;
                out.best_ns = res.total_ns;
                out.minibatches = 1;
                out.index = std::move(hit.entry.profile);
                out.index.set_policy(opts_.measurement);
                out.strategy_ns.assign(space_.strategies.size(), -1.0);
                out.strategy_ns[static_cast<size_t>(
                    out.best_config.strategy)] = res.total_ns;
                out.convergence.best_ns = res.total_ns;
                out.convergence.minibatches = 1;
                out.convergence.termination =
                    wirer_termination_name(out.termination);
                out.convergence.store_tier =
                    store_tier_name(StoreTier::L1);
                out.convergence.store_errors = std::move(hit.errors);
                obs::counter("session.store_l1_hits").add();
                return out;
            }
            // The verification mini-batch disagrees with the stored
            // timing beyond the policy's drift margin: the entry is
            // stale for this device (different clocks, changed timing
            // model, contended host). Adopting it outright would pin a
            // possibly-wrong plan for the whole job; demote to a warm
            // start so the wirer re-measures with the stored config as
            // a seed, and write the refreshed winner back.
            warn("plan store: verification mini-batch drifted ",
                 res.total_ns, " ns vs stored ", hit.entry.best_ns,
                 " ns (margin ", margin,
                 ") — demoting to warm start re-wiring");
            hit.errors.push_back(
                PlanStore::entry_filename(key) +
                ": verification drift " + std::to_string(res.total_ns) +
                " ns vs stored " + std::to_string(hit.entry.best_ns) +
                " ns exceeds margin " + std::to_string(margin) +
                "; demoted to warm start");
            hit.tier = StoreTier::L2;
            drift_demoted = true;
        } else {
            // The exact entry no longer fits (scheduler knowledge
            // drifted under it): degrade to a warm start, which
            // re-validates every transferred index against the live
            // space.
            hit.errors.push_back(
                PlanStore::entry_filename(key) + ": " + why);
            hit.tier = StoreTier::L2;
        }
    }

    WirerWarmStart ws;
    if (hit.tier == StoreTier::L2) {
        ws.has_config = true;
        ws.config = std::move(hit.entry.config);
        ws.stats = std::move(hit.entry.profile);
    }
    ws.preferred_lib = hit.preferred_lib;
    WirerResult out = make_wirer(std::move(ws))->explore(bind);
    out.convergence.store_tier = store_tier_name(hit.tier);
    out.convergence.store_errors = std::move(hit.errors);
    if (drift_demoted) {
        // Account the spent L1 verification mini-batch and make the
        // demotion visible to fleet/CI consumers of the report.
        out.minibatches += 1;
        out.convergence.minibatches += 1;
        out.convergence.store_drift_demotions += 1;
        obs::counter("session.store_drift_demotions").add();
    }

    // Write-through: the winner (profiling statistics included) is the
    // next process's L1 hit.
    PlanStoreEntry entry;
    entry.key = key;
    entry.config = out.best_config;
    entry.best_ns = out.best_ns;
    entry.minibatches = out.minibatches;
    entry.termination = wirer_termination_name(out.termination);
    entry.profile = out.index;
    std::string put_error;
    if (!store.put(entry, &put_error)) {
        warn("plan store: cannot persist entry: ", put_error);
        out.convergence.store_errors.push_back(put_error);
    }
    return out;
}

DispatchResult
AstraSession::run(const ScheduleConfig& config) const
{
    if (opts_.compiled_dispatch) {
        // Steady state: lower once (cached by config signature), then
        // replay the preresolved command array — bit-identical timing
        // and values, a fraction of the host dispatch overhead.
        const std::shared_ptr<const WiredBinary> bin =
            scheduler_->wire_cached(config,
                                    tensor_map(config.strategy),
                                    opts_.gpu);
        return replay_wired(*bin, opts_.gpu);
    }
    return dispatch_plan(*scheduler_->build_cached(config), *graph_,
                         tensor_map(config.strategy), opts_.gpu);
}

DispatchResult
AstraSession::run_native(GemmLib lib) const
{
    return dispatch_plan(native_plan(*graph_, lib), *graph_,
                         tensor_map(0), opts_.gpu);
}

}  // namespace astra
