/**
 * @file
 * The schedule builder: materializes one point of the enumerated state
 * space as an ExecutionPlan.
 *
 * Given a fusion/kernel binding it produces the unit list (fused GEMM
 * chunks, fused elementwise chains, singles) in a valid topological
 * order; given a stream binding it additionally partitions the units
 * into super-epochs (static-cost calibrated, §4.5.3) and dependency-
 * level epochs (§4.5.4), collapses same-shape units into equivalence
 * classes (§4.5.5), assigns streams, and inserts cross-stream barriers
 * at super-epoch boundaries.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/search_space.h"
#include "runtime/plan.h"

namespace astra {

struct GpuConfig;     // sim/gpu.h
struct WiredBinary;   // runtime/wired.h
class TensorMap;      // runtime/tensor_map.h

/** One configuration of the adapted dimensions. */
struct ScheduleConfig
{
    /** Allocation-strategy index into SearchSpace::strategies. */
    int strategy = 0;

    /** Per group: fusion chunk size (value, not option index). */
    std::vector<int> group_chunk;

    /** Per group: GEMM library for its (fused or single) kernels. */
    std::vector<GemmLib> group_lib;

    /** Per standalone MatMul: GEMM library. */
    std::map<NodeId, GemmLib> single_lib;

    /** Fuse elementwise chains (Astra always does; native does not). */
    bool elementwise_fusion = true;

    bool use_streams = false;
    int num_streams = 2;

    /** (super-epoch, epoch-level) -> flattened stream-split option. */
    std::map<std::pair<int, int>, int> epoch_choice;

    // ---- profiling attachments (set by the custom wirer) -----------------

    /** Group id -> profile key for its GEMM steps (summed metric). */
    std::map<int, std::string> group_keys;

    /** Standalone MatMul node -> profile key. */
    std::map<NodeId, std::string> single_keys;

    /** (super-epoch, epoch) -> epoch-metric profile key. */
    std::map<std::pair<int, int>, std::string> epoch_keys;
};

/** One epoch of the stream-exploration structure. */
struct EpochInfo
{
    int super_epoch = 0;
    int level = 0;

    /** Indices into the unit list (mutually independent units). */
    std::vector<size_t> units;

    /**
     * Flattened stream-split options: options[o][i] = stream of
     * units[i] under option o. options[0] is the balanced default.
     */
    std::vector<std::vector<int>> options;
};

/** The stream-scheduling state space for one fusion binding. */
struct StreamSpace
{
    std::vector<EpochInfo> epochs;
    int num_super_epochs = 0;
};

/** Scheduler options (coarse static knowledge, §4.8). */
struct SchedulerOptions
{
    /** Target static cost of one super-epoch, in estimated ns. */
    double super_epoch_ns = 300000.0;

    /** Cap on flattened options per epoch. */
    int max_epoch_options = 24;

    /** Max elementwise-fusion chain length. */
    int max_ew_chain = 10;

    /** How far past the last member the chain scan may look. */
    int ew_chain_window = 48;

    /** Static launch-overhead estimate used for super-epoch sizing. */
    double est_launch_ns = 6000.0;
};

/** Builds plans for one (graph, search space) pair. */
class Scheduler
{
  public:
    Scheduler(const Graph& graph, const SearchSpace& space,
              SchedulerOptions opts = {});

    /**
     * Units (pre-stream plan steps, all on stream 0) for the given
     * fusion/kernel binding, in a valid topological order. Profile
     * keys from the config are attached.
     */
    std::vector<PlanStep> build_units(const ScheduleConfig& config) const;

    /** Stream-exploration structure for the given fusion binding. */
    StreamSpace stream_space(const std::vector<PlanStep>& units,
                             int num_streams = 2) const;

    /** Full plan for the configuration. */
    ExecutionPlan build(const ScheduleConfig& config) const;

    /**
     * build() through a signature-keyed cache: repeated dispatches of
     * an already-lowered configuration (the wirer's k-repeat
     * re-measurements, recurring sweep points) skip lowering entirely.
     * The signature covers every plan-affecting field of the config —
     * including the profiling-key attachments, which Scheduler::build
     * bakes into the plan's steps — so a hit is exact, never
     * structural-only. Thread-safe; the returned plan is immutable and
     * shared, so concurrent dispatches may hold it simultaneously.
     */
    std::shared_ptr<const ExecutionPlan>
    build_cached(const ScheduleConfig& config) const;

    /**
     * Lowered wired binary (runtime/wired.h) for the configuration,
     * cached next to the plan cache under the same signature: the
     * steady-state dispatch path compiles a converged config once and
     * replays the blob for every later mini-batch. The binary captures
     * buffer addresses from `tmap`, so the cache assumes one TensorMap
     * per allocation strategy and one GpuConfig per Scheduler lifetime
     * — the AstraSession contract. Thread-safe; the returned binary is
     * immutable and shared.
     */
    std::shared_ptr<const WiredBinary>
    wire_cached(const ScheduleConfig& config, const TensorMap& tmap,
                const GpuConfig& gpu) const;

    /** Cache hits/misses since construction (convergence reporting). */
    int64_t plan_cache_hits() const
    {
        return cache_hits_.load(std::memory_order_relaxed);
    }
    int64_t plan_cache_misses() const
    {
        return cache_misses_.load(std::memory_order_relaxed);
    }

    /** Wired-binary cache tallies (compiled-dispatch reporting). */
    int64_t wired_cache_hits() const
    {
        return wired_hits_.load(std::memory_order_relaxed);
    }
    int64_t wired_cache_misses() const
    {
        return wired_misses_.load(std::memory_order_relaxed);
    }

    const SchedulerOptions& options() const { return opts_; }

  private:
    /** One assembly pass (no cycle repair); forced_chunk caps groups. */
    std::vector<PlanStep>
    assemble_units(const ScheduleConfig& config,
                   const std::map<int, int>& forced_chunk) const;

    /** Static per-unit cost estimate (flops + bytes + launch). */
    double estimate_unit_ns(const PlanStep& unit) const;

    const Graph& graph_;
    const SearchSpace& space_;
    SchedulerOptions opts_;

    mutable std::mutex cache_mu_;
    mutable std::unordered_map<std::string,
                               std::shared_ptr<const ExecutionPlan>>
        plan_cache_;
    mutable std::atomic<int64_t> cache_hits_{0};
    mutable std::atomic<int64_t> cache_misses_{0};

    mutable std::unordered_map<std::string,
                               std::shared_ptr<const WiredBinary>>
        wired_cache_;
    mutable std::atomic<int64_t> wired_hits_{0};
    mutable std::atomic<int64_t> wired_misses_{0};
};

}  // namespace astra
