/**
 * @file
 * Trace-driven what-if engine (ROADMAP item 3, §5.13).
 *
 * The paper's premise is that mini-batches are predictable, so
 * measurements are reusable. This module takes the next step (after
 * Daydream, arXiv 2006.03318): the *schedule simulation itself* is
 * reusable. Given a candidate ScheduleConfig, the engine builds its
 * plan, compiles it to the same command stream the dispatcher would
 * issue (PR 7's compile_plan, gated bit-identical in CI), and runs the
 * event-ordering simulation on the host with timing-only kernels —
 * ranking a candidate in microseconds instead of spending a measured
 * mini-batch on it. At base clock with faults disarmed this replay is
 * bit-exact against a real dispatch, which is what lets the wirer mask
 * dominated options without giving up its exhaustive-identical answer.
 *
 * A RecordedTrace is the durable form: the compiled program, per-step
 * kernel cost shapes and profile keys, the collected spans, and the
 * measured metrics of one dispatched mini-batch — dependency-preserving
 * and richer than the Chrome export. replay_trace() re-runs it under
 * per-key cost substitutions (hypothetical library/fusion deltas fed
 * from ProfileIndex stats) without touching graph or scheduler.
 */
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "obs/obs.h"
#include "runtime/wired.h"
#include "sim/gpu.h"

namespace astra {

/** Knobs for the three-tier decision path (wirer `whatif` mode). */
struct WhatIfOptions
{
    /** Master switch; off keeps the wirer bit-identical to PR 8. */
    bool enabled = false;

    /**
     * Near-tie tolerance: an option within margin_rel of the predicted
     * best survives to real measurement. Simulated replay is exact, but
     * the margin keeps the decision honest where the model and the
     * measured path could diverge (enqueue-bound corners, clock
     * normalization rounding) — near-ties are decided by measurement,
     * never by the model.
     */
    double margin_rel = 0.02;

    /** Predictor observations required before tier-1 may nominate. */
    int predictor_min_rows = 8;

    /**
     * Tier-1 conservatism: a predicted gap must exceed
     * sigma * rel_residual (and margin_rel) before an option is even
     * nominated for replay confirmation.
     */
    double predictor_sigma = 3.0;
};

/** One dependency-preserving record of a dispatched mini-batch. */
struct RecordedTrace
{
    /** The configuration the trace was recorded under. */
    ScheduleConfig config;

    /** Compiled command stream (events, barriers, profile slots). */
    WiredProgram program;

    /** Per-step timing-only kernel shapes (barrier steps stay empty). */
    std::vector<KernelDesc> kernels;

    /** Per-step profile key ("" for unkeyed/barrier steps). */
    std::vector<std::string> step_keys;

    /** Collected kernel spans (name, key, stream, start, end). */
    std::vector<TraceSpan> spans;

    /** Recorded wall time of the mini-batch, ns. */
    double total_ns = 0.0;

    /** Recorded per-key profile metrics, ns. */
    std::map<std::string, double> profile_ns;

    int num_streams = 1;

    /** Sanitized device model the record was simulated under. */
    GpuConfig gpu;
};

/** Host-replay outcome: the same metrics a DispatchResult carries. */
struct ReplayResult
{
    double total_ns = 0.0;
    std::map<std::string, double> profile_ns;
};

/**
 * Replay a recorded trace, optionally substituting per-key costs: an
 * entry {key -> ns} replaces every kernel of that profile key with a
 * pure-serial kernel of exactly that duration (blocks = 0), so on a
 * serial schedule the replayed total shifts by exactly the delta.
 */
ReplayResult
replay_trace(const RecordedTrace& trace,
             const std::map<std::string, double>& override_ns = {});

/**
 * The evaluator: builds and simulates hypothetical configs on the
 * host. One engine per StrategyRun shard — it holds references to that
 * strategy's graph/tensor-map/scheduler and a sanitized device model
 * (faults disarmed, base clock, timing-only kernels).
 */
class WhatIfEngine
{
  public:
    WhatIfEngine(const Graph& graph, const TensorMap& tmap,
                 const Scheduler& scheduler, const GpuConfig& gpu);

    /** Rank one candidate: exact simulated metrics, no mini-batch. */
    ReplayResult evaluate(const ScheduleConfig& config) const;

    /** Evaluate and keep the full dependency-preserving record. */
    RecordedTrace capture(const ScheduleConfig& config) const;

    const GpuConfig& device() const { return gpu_; }

  private:
    const Graph& graph_;
    const TensorMap& tmap_;
    const Scheduler& scheduler_;
    GpuConfig gpu_;
};

// ---- serialization (line-oriented, config_io conventions) ----------------

/** Write a trace in the "astra-whatif-trace v1" text format. */
void write_trace(std::ostream& os, const RecordedTrace& trace);

/**
 * Parse a trace written by write_trace.
 * @return false (leaving *trace untouched) on malformed input; when
 *         `error` is non-null it receives "line N: reason".
 */
bool read_trace(std::istream& is, RecordedTrace* trace,
                std::string* error = nullptr);

/** Convenience: round-trip through a string. */
std::string trace_to_string(const RecordedTrace& trace);
bool trace_from_string(const std::string& text, RecordedTrace* trace,
                       std::string* error = nullptr);

}  // namespace astra
