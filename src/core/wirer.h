/**
 * @file
 * The custom wirer (paper §4.7): online, work-conserving exploration of
 * the enumerated state space.
 *
 * Every trial is a real training mini-batch dispatched on the device;
 * fine-grained cudaEvent measurements land in the profile index under
 * context-mangled keys, and the update tree advances. The exploration
 * is phased exactly like the paper's update tree:
 *
 *   for each allocation strategy (hierarchical fork, §4.5.2):
 *     stage A: Parallel over fusion-group chunk variables
 *     stage B: Parallel over kernel-library variables
 *              (context: the bound chunk of stage A)
 *     stage C: Parallel over super-epochs; Prefix over epochs inside
 *              each; flattened Exhaustive within an epoch
 *     best-of-strategy run (end-to-end measurement)
 *   pick the fastest strategy's configuration.
 */
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/adaptive.h"
#include "core/config_io.h"
#include "core/scheduler.h"
#include "core/whatif.h"
#include "obs/convergence.h"
#include "runtime/dispatcher.h"
#include "support/thread_pool.h"

namespace astra {

/** Which adaptation dimensions are active (Astra_F / FK / FKS / all). */
struct AstraFeatures
{
    bool fusion = true;          ///< GEMM fusion chunk adaptation (F)
    bool kernel_choice = true;   ///< GEMM library adaptation (K)
    bool streams = true;         ///< multi-stream scheduling (S)
    bool alloc = true;           ///< allocation-strategy fork (all)
    bool elementwise_fusion = true;
};

/** Feature presets matching the paper's evaluation columns. */
AstraFeatures features_f();
AstraFeatures features_fk();
AstraFeatures features_fks();
AstraFeatures features_all();

/**
 * Knowledge transferred from the plan store (core/plan_store.h) into an
 * exploration. With a config (an L2 shape-neighbor's winner) the wirer
 * restricts itself to the neighbor's allocation strategy, pre-binds
 * every variable whose transferred choice is valid in this graph's
 * space (pre-bound variables are excluded from stage exploration *and*
 * from profiling — §5.1: instrument only what is being explored),
 * measures the transferred configuration once up front to seed
 * best-so-far, seeds the profile shard with the neighbor's statistics
 * for the pre-bound keys, and explores only the residual space. With
 * only a preferred library (L3 priors) the library variables start at
 * the fleet-wide favorite — a biased ordering, not a binding, so the
 * converged configuration is unchanged.
 */
struct WirerWarmStart
{
    /** True when `config` carries an L2 neighbor's winner. */
    bool has_config = false;

    /** The neighbor's winning configuration. */
    ScheduleConfig config;

    /** The neighbor's measurement statistics (seeds pre-bound keys). */
    ProfileIndex stats;

    /** L3 prior: fleet-favorite library, or -1 for none. */
    int preferred_lib = -1;
};

/** Options for the custom wirer. */
struct WirerOptions
{
    AstraFeatures features;
    GpuConfig gpu;
    SchedulerOptions sched;
    int num_streams = 2;

    /** Plan-store knowledge to start from (none by default). */
    WirerWarmStart warm;

    /**
     * Prefix mangled into every profile key (bucketed profiling adds
     * the bucket id here, §5.5).
     */
    std::string context_prefix;

    /**
     * Safety valve on total exploration mini-batches. Exhausting it
     * never aborts: exploration stops, everything measured so far is
     * bound to its best, and WirerResult::truncated is set. The budget
     * is partitioned evenly across allocation strategies up front
     * (each strategy owns its share), so which trials the valve cuts
     * is a deterministic function of the options — never of how
     * concurrent strategies happen to interleave.
     */
    int64_t max_minibatches = 200000;

    /**
     * Host threads for exploration (1 = fully serial). Allocation
     * strategies explore on worker threads, each with its own profile
     * shard, clock domain and simulated device; independent repeat
     * measurements of one configuration batch across workers too. Any
     * value produces bit-identical results to threads=1: every ordered
     * reduction (profile merge, convergence report, cross-strategy
     * argmin with lowest-index ties) happens after the join, in
     * strategy order. With a BindFn, trials that mutate tensors stay
     * sequential within a strategy, but distinct strategies' binds run
     * concurrently — the callback must tolerate that (the tensor maps
     * are disjoint per strategy).
     */
    int threads = 1;

    /**
     * How measurements accumulate and when rankings are decisive
     * (MeasurementPolicy{} reproduces the paper's one-measurement
     * regime; MeasurementPolicy::noise_robust() survives autoboost).
     */
    MeasurementPolicy measurement;

    /**
     * Three-tier decision path (§5.13): predictor-prune, what-if-rank,
     * measure survivors. Off (the default) keeps the wirer bit-identical
     * to the exhaustive path. The engine only arms when its replay is
     * provably exact against a dispatch: no fault injection, and either
     * autoboost off or measurements normalized to base clock.
     */
    WhatIfOptions whatif;
};

/**
 * Called before each exploration mini-batch so the caller can load the
 * next real training batch into the strategy's tensor map (work
 * conservation). May be empty for timing-only sweeps. `minibatch`
 * numbers the trials *within the strategy* owning the tensor map
 * (0, 1, 2, ... per strategy): strategy pipelines may run on separate
 * threads, so a global sequence number would depend on scheduling.
 * With threads > 1 the callback runs concurrently for different
 * strategies and must be thread-safe across distinct tensor maps.
 */
using BindFn = std::function<void(const TensorMap&, int64_t minibatch)>;

/**
 * Machine-readable reason the exploration ended the way it did.
 * A resumed run that then completes normally reports Complete — resume
 * is only surfaced when the budget cut exploration short while the
 * journal was still replaying, because an uninterrupted run must be
 * indistinguishable (bit-identical report included) from a resumed one.
 */
enum class WirerTermination
{
    Complete,         ///< full sweep, everything bound from measurements
    Budget,           ///< the mini-batch safety valve tripped
    FaultQuarantine,  ///< a config exhausted its fault-retry budget
    Resume,           ///< truncated while still replaying a checkpoint
};

/** Stable string name ("complete", "budget", ...), for reports. */
const char* wirer_termination_name(WirerTermination t);

/** Outcome of one full exploration. */
struct WirerResult
{
    /** The winning configuration (strategy, chunks, libs, streams). */
    ScheduleConfig best_config;

    /** Measured end-to-end time of the winning configuration (ns). */
    double best_ns = 0.0;

    /** Mini-batches used for exploration (Table 7's "configs"). */
    int64_t minibatches = 0;

    /**
     * True when the mini-batch safety valve cut exploration short;
     * best_config is then the best of what was actually measured.
     */
    bool truncated = false;

    /** Why exploration stopped (refines `truncated` into a reason). */
    WirerTermination termination = WirerTermination::Complete;

    /**
     * Mini-batches satisfied from a resume journal instead of being
     * dispatched (0 when exploration started fresh).
     */
    int64_t replayed_minibatches = 0;

    /** Per-strategy best end-to-end times, indexed by strategy id. */
    std::vector<double> strategy_ns;

    /** Final profile index (for inspection/tests). */
    ProfileIndex index;

    /**
     * Dependency-preserving traces captured while the what-if engine
     * was armed (one per strategy, in strategy order; empty when the
     * engine was off). Durable via write_trace / read_trace.
     */
    std::vector<RecordedTrace> whatif_traces;

    /**
     * Per-stage exploration history: best-so-far time, trials spent,
     * and pruning attribution by exploration mode (obs/convergence.h).
     */
    ConvergenceReport convergence;
};

/** Runs the online exploration for one graph + search space. */
class CustomWirer
{
  public:
    /**
     * @param tensor_maps one TensorMap per allocation strategy, realized
     *        with that strategy's adjacency runs.
     */
    CustomWirer(const Graph& graph, const SearchSpace& space,
                const Scheduler& scheduler,
                const std::vector<const TensorMap*>& tensor_maps,
                WirerOptions opts);
    ~CustomWirer();

    /** Explore; every trial dispatches a real mini-batch. */
    WirerResult explore(const BindFn& bind = {});

    /**
     * Serialize the measurement journal of the most recent explore()
     * call — including one that exited by exception: per-strategy
     * journals survive the unwind, so a crashed exploration can still
     * checkpoint everything its dispatches measured. (Dispatches whose
     * batch was interrupted before accounting are simply absent; a
     * resume re-runs them live.)
     */
    void checkpoint(std::ostream& os) const;

    /**
     * Arm the next explore() call to replay `cp` before dispatching
     * anything new: each strategy's first journal-length mini-batches
     * are satisfied from the journal (consuming the same clock draws,
     * fault salts and plan-cache fetches a live dispatch would), then
     * exploration continues live. The resumed result is bit-identical
     * to an uninterrupted run over the same options.
     */
    void resume(WirerCheckpoint cp);

  private:
    /**
     * All mutable state of one allocation strategy's exploration
     * pipeline. Each strategy owns a StrategyRun exclusively for the
     * duration of explore(): a private ProfileIndex shard (strategy
     * context prefixes make the key sets disjoint), its own mini-batch
     * accounting against a pre-partitioned budget share, a ClockDomain
     * whose boost draws depend only on this strategy's measurement
     * sequence, and the stage history for the convergence report. The
     * shards are merged deterministically (strategy order) after the
     * join — concurrent pipelines share nothing mutable.
     */
    struct StrategyRun;

    /**
     * Dispatch `repeats` mini-batches of one configuration, recording
     * results (profiles, best-seen, counters) in repeat order. The
     * plan is fetched through the scheduler's cache — once up front on
     * the calling thread, then per dispatch — so repeats never
     * re-lower and concurrent fetches always hit. Repeats run
     * concurrently on the pool when nothing mutates shared tensors
     * (no BindFn, timing-only device); otherwise they stay sequential
     * — the same rule at every thread count, so results are identical.
     * No budget logic here: callers reserve first.
     *
     * @return the dispatch results, in repeat order.
     */
    std::vector<DispatchResult>
    dispatch_batch(StrategyRun& run, const ScheduleConfig& config,
                   int repeats, const BindFn& bind);

    /**
     * One exploration trial: measure the current assignment
     * `min_samples` times (once under the default policy), so that
     * binding decisions taken mid-sweep — Prefix-mode freezes, §4.5.4
     * — already see averaged statistics. Sets the run's truncated flag
     * when its budget share cannot cover the repeats.
     */
    void measure_trial(StrategyRun& run,
                       const std::function<ScheduleConfig()>& make_cfg,
                       const BindFn& bind);

    /**
     * One *replayed* exploration trial (§5.13, tier 2): evaluate the
     * exact co-varied configuration the walk is about to dispatch on
     * the host instead, and drop the replayed profile samples into the
     * shard as if they had been measured. Replay is bit-exact against
     * a dispatch of the same config at base clock (the arming
     * predicate), so the profile index — and with it every later
     * freeze, bind and decision — evolves identically to the
     * exhaustive run while the mini-batch stays unspent. Requires
     * run.whatif armed.
     */
    void replay_trial(StrategyRun& run, const ScheduleConfig& config);

    /**
     * k-repeat re-measurement (measurement policy): while any variable
     * in the stage has a non-decisive ranking, set every ambiguous
     * variable to its least-sampled top-2 contender and dispatch one
     * more mini-batch (all ambiguous variables re-measure in parallel,
     * §4.5.1). Stops when all rankings are decisive, the policy's
     * repeat budget is spent, or the safety valve trips.
     *
     * @param make_cfg builds the stage's config with profile keys for
     *        the variables' current choices.
     * @param eligible optional filter; variables failing it are never
     *        re-measured (the stream stage uses it to target only the
     *        variable about to be frozen by Prefix mode — frozen
     *        variables can no longer change, so re-measuring them
     *        would burn budget without converging).
     * @return extra mini-batches spent.
     */
    int64_t resolve_ambiguity(
        StrategyRun& run, UpdateNode& stage,
        const std::function<ScheduleConfig()>& make_cfg,
        const BindFn& bind,
        const std::function<bool(const AdaptiveVariable&)>& eligible = {});

    /**
     * Measure a bound configuration end-to-end, repeating up to the
     * policy's min_samples and reducing with the policy statistic (one
     * run under the default policy). The first dispatch is
     * unconditional — the valve may overshoot by the final repeats so
     * a truncated result is still dispatchable.
     *
     * @param[out] stat_ns the policy-reduced end-to-end time.
     */
    void measure_final(StrategyRun& run, const ScheduleConfig& config,
                       const BindFn& bind, double* stat_ns);

    /** One strategy's full pipeline: stages A-C + best-of-strategy. */
    void run_strategy(StrategyRun& run, const BindFn& bind);

    const Graph& graph_;
    const SearchSpace& space_;
    const Scheduler& scheduler_;
    std::vector<const TensorMap*> tensor_maps_;
    WirerOptions opts_;

    /** Fan-out pool, alive only during explore(). */
    ThreadPool* pool_ = nullptr;

    /**
     * Per-strategy state of the most recent explore(). A member (not a
     * local) so the journals survive an exception thrown out of the
     * exploration — checkpoint() reads them afterwards.
     */
    std::vector<std::unique_ptr<StrategyRun>> runs_;

    /** Journal armed by resume() for the next explore(). */
    WirerCheckpoint resume_;
};

}  // namespace astra
