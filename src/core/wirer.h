/**
 * @file
 * The custom wirer (paper §4.7): online, work-conserving exploration of
 * the enumerated state space.
 *
 * Every trial is a real training mini-batch dispatched on the device;
 * fine-grained cudaEvent measurements land in the profile index under
 * context-mangled keys, and the update tree advances. The exploration
 * is phased exactly like the paper's update tree:
 *
 *   for each allocation strategy (hierarchical fork, §4.5.2):
 *     stage A: Parallel over fusion-group chunk variables
 *     stage B: Parallel over kernel-library variables
 *              (context: the bound chunk of stage A)
 *     stage C: Parallel over super-epochs; Prefix over epochs inside
 *              each; flattened Exhaustive within an epoch
 *     best-of-strategy run (end-to-end measurement)
 *   pick the fastest strategy's configuration.
 */
#pragma once

#include <functional>

#include "core/adaptive.h"
#include "core/scheduler.h"
#include "obs/convergence.h"
#include "runtime/dispatcher.h"

namespace astra {

/** Which adaptation dimensions are active (Astra_F / FK / FKS / all). */
struct AstraFeatures
{
    bool fusion = true;          ///< GEMM fusion chunk adaptation (F)
    bool kernel_choice = true;   ///< GEMM library adaptation (K)
    bool streams = true;         ///< multi-stream scheduling (S)
    bool alloc = true;           ///< allocation-strategy fork (all)
    bool elementwise_fusion = true;
};

/** Feature presets matching the paper's evaluation columns. */
AstraFeatures features_f();
AstraFeatures features_fk();
AstraFeatures features_fks();
AstraFeatures features_all();

/** Options for the custom wirer. */
struct WirerOptions
{
    AstraFeatures features;
    GpuConfig gpu;
    SchedulerOptions sched;
    int num_streams = 2;

    /**
     * Prefix mangled into every profile key (bucketed profiling adds
     * the bucket id here, §5.5).
     */
    std::string context_prefix;

    /**
     * Safety valve on total exploration mini-batches. Exhausting it
     * never aborts: exploration stops, everything measured so far is
     * bound to its best, and WirerResult::truncated is set.
     */
    int64_t max_minibatches = 200000;

    /**
     * How measurements accumulate and when rankings are decisive
     * (MeasurementPolicy{} reproduces the paper's one-measurement
     * regime; MeasurementPolicy::noise_robust() survives autoboost).
     */
    MeasurementPolicy measurement;
};

/**
 * Called before each exploration mini-batch so the caller can load the
 * next real training batch into the strategy's tensor map (work
 * conservation). May be empty for timing-only sweeps.
 */
using BindFn = std::function<void(const TensorMap&, int64_t minibatch)>;

/** Outcome of one full exploration. */
struct WirerResult
{
    /** The winning configuration (strategy, chunks, libs, streams). */
    ScheduleConfig best_config;

    /** Measured end-to-end time of the winning configuration (ns). */
    double best_ns = 0.0;

    /** Mini-batches used for exploration (Table 7's "configs"). */
    int64_t minibatches = 0;

    /**
     * True when the mini-batch safety valve cut exploration short;
     * best_config is then the best of what was actually measured.
     */
    bool truncated = false;

    /** Per-strategy best end-to-end times, indexed by strategy id. */
    std::vector<double> strategy_ns;

    /** Final profile index (for inspection/tests). */
    ProfileIndex index;

    /**
     * Per-stage exploration history: best-so-far time, trials spent,
     * and pruning attribution by exploration mode (obs/convergence.h).
     */
    ConvergenceReport convergence;
};

/** Runs the online exploration for one graph + search space. */
class CustomWirer
{
  public:
    /**
     * @param tensor_maps one TensorMap per allocation strategy, realized
     *        with that strategy's adjacency runs.
     */
    CustomWirer(const Graph& graph, const SearchSpace& space,
                const Scheduler& scheduler,
                const std::vector<const TensorMap*>& tensor_maps,
                WirerOptions opts);

    /** Explore; every trial dispatches a real mini-batch. */
    WirerResult explore(const BindFn& bind = {});

  private:
    /** Run one mini-batch with the given config; record all profiles. */
    DispatchResult measure(const ScheduleConfig& config, int strategy,
                           const BindFn& bind);

    /** True while the mini-batch safety valve still has budget. */
    bool budget_left() const { return minibatches_ < opts_.max_minibatches; }

    /**
     * One exploration trial: measure the current assignment
     * `min_samples` times (once under the default policy), so that
     * binding decisions taken mid-sweep — Prefix-mode freezes, §4.5.4
     * — already see averaged statistics. Sets truncated_ when the
     * safety valve trips.
     */
    void measure_trial(const std::function<ScheduleConfig()>& make_cfg,
                       int strategy, const BindFn& bind);

    /**
     * k-repeat re-measurement (measurement policy): while any variable
     * in the stage has a non-decisive ranking, set every ambiguous
     * variable to its least-sampled top-2 contender and dispatch one
     * more mini-batch (all ambiguous variables re-measure in parallel,
     * §4.5.1). Stops when all rankings are decisive, the policy's
     * repeat budget is spent, or the safety valve trips.
     *
     * @param make_cfg builds the stage's config with profile keys for
     *        the variables' current choices.
     * @param eligible optional filter; variables failing it are never
     *        re-measured (the stream stage uses it to target only the
     *        variable about to be frozen by Prefix mode — frozen
     *        variables can no longer change, so re-measuring them
     *        would burn budget without converging).
     * @return extra mini-batches spent.
     */
    int64_t resolve_ambiguity(
        UpdateNode& stage,
        const std::function<ScheduleConfig()>& make_cfg, int strategy,
        const BindFn& bind,
        const std::function<bool(const AdaptiveVariable&)>& eligible = {});

    /**
     * Measure a bound configuration end-to-end, repeating up to the
     * policy's min_samples and reducing with the policy statistic (one
     * run under the default policy).
     *
     * @param[out] stat_ns the policy-reduced end-to-end time.
     */
    DispatchResult measure_final(const ScheduleConfig& config,
                                 int strategy, const BindFn& bind,
                                 double* stat_ns);

    const Graph& graph_;
    const SearchSpace& space_;
    const Scheduler& scheduler_;
    std::vector<const TensorMap*> tensor_maps_;
    WirerOptions opts_;

    ProfileIndex index_;
    int64_t minibatches_ = 0;
    bool truncated_ = false;

    /** Best end-to-end mini-batch time seen across all trials (ns). */
    double best_seen_ns_ = -1.0;
};

}  // namespace astra
