/**
 * @file
 * Bucketed profiling for dynamic graphs (paper §5.5).
 *
 * Variable-length inputs violate the mini-batch-predictability
 * assumption, so Astra buckets input lengths, builds one graph per
 * bucket, and runs an independent exploration inside each bucket with
 * the bucket id prefixed onto every profile key. A mini-batch of true
 * length L executes in the smallest bucket >= L, paying a small amount
 * of extra (padded) computation.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/astra.h"
#include "graph/builder.h"

namespace astra {

namespace obs {
class Counter;  // obs/obs.h
}  // namespace obs

/** Builds the model graph for one input length. */
using LengthGraphFn = std::function<void(GraphBuilder&, int length)>;

/** Per-bucket Astra sessions over a length-bucketed dynamic model. */
class BucketedAstra
{
  public:
    /**
     * @param bucket_lengths ascending bucket boundaries (paper: 5
     *        buckets calibrated on the input-length distribution).
     */
    BucketedAstra(std::vector<int> bucket_lengths, LengthGraphFn build,
                  AstraOptions opts);

    /** Explore every bucket; returns total exploration mini-batches. */
    int64_t optimize();

    /**
     * Index of the bucket serving a true input length.
     *
     * Lengths beyond the largest bucket boundary are clamped into the
     * last bucket — on a real serving path that truncates tokens, so
     * the first such length triggers a warning (once per instance);
     * size the largest bucket from the true length distribution.
     * Every overflow is tallied (overflow_count(), obs counter
     * "bucketed.length_overflows") so steady-state clamping is visible
     * even after the one-shot warning went quiet. In strict mode
     * (set_strict_overflow) an overflowing length throws
     * std::out_of_range instead of silently truncating.
     */
    int bucket_for(int length) const;

    /** Lengths clamped into the last bucket since construction. */
    int64_t overflow_count() const
    {
        return overflow_count_.load(std::memory_order_relaxed);
    }

    /**
     * Reject lengths beyond the largest bucket (std::out_of_range)
     * instead of clamping — for serving paths where silent token
     * truncation is worse than a failed request.
     */
    void set_strict_overflow(bool strict) { strict_overflow_ = strict; }

    /**
     * Bucket i's exploration report with the instance-wide overflow
     * tally stamped into ConvergenceReport::bucket_overflows — the
     * fleet-visible record that this model's length distribution has
     * outgrown its largest bucket.
     */
    ConvergenceReport convergence_report(int i) const;

    /**
     * Simulated time of one steady-state mini-batch of true length.
     *
     * Routes through the non-counting index lookup: overflow tallying
     * belongs to bucket_for (the routing decision), so a request a
     * caller already routed is never double-counted when it is then
     * served. Strict overflow mode still rejects here — serving a
     * truncated request is as wrong as routing one.
     */
    double step_ns(int length) const;

    const std::vector<int>& bucket_lengths() const { return lengths_; }

    int num_buckets() const { return static_cast<int>(buckets_.size()); }

    /** Best-config time of bucket i (post-optimize). */
    double bucket_best_ns(int i) const;

    /**
     * Bucket i's Astra session — the serving loop lowers per-bucket
     * wired binaries against its scheduler and tensor maps.
     */
    const AstraSession& session(int i) const;

    /** Bucket i's full exploration outcome (post-optimize). */
    const WirerResult& bucket_result(int i) const;

  private:
    /**
     * Pure index math shared by bucket_for and step_ns: smallest
     * covering bucket, clamped to the last one past the largest
     * boundary (std::out_of_range in strict mode). No tally, no warn —
     * callers that represent a *routing decision* count overflows,
     * callers that serve an already-routed length must not.
     */
    int clamped_index(int length) const;

    struct Bucket
    {
        std::unique_ptr<GraphBuilder> builder;
        std::unique_ptr<AstraSession> session;
        WirerResult result;
        bool optimized = false;
    };

    std::vector<int> lengths_;
    std::vector<Bucket> buckets_;

    /**
     * Clamp warned once per instance. Atomic: concurrent serving
     * threads route requests through const bucket_for, and a plain
     * mutable bool written from several of them is a data race.
     */
    mutable std::atomic<bool> warned_overflow_{false};
    mutable std::atomic<int64_t> overflow_count_{0};
    bool strict_overflow_ = false;

    /**
     * Cached handle of the "bucketed.length_overflows" counter: the
     * registry lookup is a string-keyed map hit behind a lock, too
     * expensive per request on the serving fast path. Counters live
     * forever, so the handle never dangles.
     */
    obs::Counter* overflow_counter_ = nullptr;
};

}  // namespace astra
