/**
 * @file
 * Bucketed profiling for dynamic graphs (paper §5.5).
 *
 * Variable-length inputs violate the mini-batch-predictability
 * assumption, so Astra buckets input lengths, builds one graph per
 * bucket, and runs an independent exploration inside each bucket with
 * the bucket id prefixed onto every profile key. A mini-batch of true
 * length L executes in the smallest bucket >= L, paying a small amount
 * of extra (padded) computation.
 */
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/astra.h"
#include "graph/builder.h"

namespace astra {

/** Builds the model graph for one input length. */
using LengthGraphFn = std::function<void(GraphBuilder&, int length)>;

/** Per-bucket Astra sessions over a length-bucketed dynamic model. */
class BucketedAstra
{
  public:
    /**
     * @param bucket_lengths ascending bucket boundaries (paper: 5
     *        buckets calibrated on the input-length distribution).
     */
    BucketedAstra(std::vector<int> bucket_lengths, LengthGraphFn build,
                  AstraOptions opts);

    /** Explore every bucket; returns total exploration mini-batches. */
    int64_t optimize();

    /**
     * Index of the bucket serving a true input length.
     *
     * Lengths beyond the largest bucket boundary are clamped into the
     * last bucket — on a real serving path that truncates tokens, so
     * the first such length triggers a warning (once per instance);
     * size the largest bucket from the true length distribution.
     */
    int bucket_for(int length) const;

    /** Simulated time of one steady-state mini-batch of true length. */
    double step_ns(int length) const;

    const std::vector<int>& bucket_lengths() const { return lengths_; }

    /** Best-config time of bucket i (post-optimize). */
    double bucket_best_ns(int i) const;

  private:
    struct Bucket
    {
        std::unique_ptr<GraphBuilder> builder;
        std::unique_ptr<AstraSession> session;
        WirerResult result;
        bool optimized = false;
    };

    std::vector<int> lengths_;
    std::vector<Bucket> buckets_;
    mutable bool warned_overflow_ = false;  ///< clamp warned once
};

}  // namespace astra
