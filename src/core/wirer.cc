#include "core/wirer.h"

#include <algorithm>
#include <set>

#include "obs/obs.h"
#include "support/logging.h"

namespace astra {

namespace {

/**
 * Saturating product, for exhaustive state-space sizes (Table 7).
 * The cap is far below INT64_MAX so that report consumers can sum
 * saturated sizes across epochs without overflowing.
 */
int64_t
sat_mul(int64_t a, int64_t b)
{
    constexpr int64_t kCap = 1000000000000000;  // 1e15
    if (a > 0 && b > kCap / a)
        return kCap;
    return a * b;
}

/**
 * Worst per-key coefficient of variation among a stage's variables'
 * measured choices: the stage's observed noise floor for reporting.
 */
double
stage_max_cv(const UpdateNode& stage, const ProfileIndex& index)
{
    double worst = 0.0;
    stage.for_each_var([&](AdaptiveVariable& v) {
        for (int c = 0; c < v.num_options(); ++c)
            if (const ProfileStats* s = index.stats(v.profile_key_for(c)))
                worst = std::max(worst, s->cov());
    });
    return worst;
}

}  // namespace

AstraFeatures
features_f()
{
    AstraFeatures f;
    f.kernel_choice = false;
    f.streams = false;
    f.alloc = false;
    return f;
}

AstraFeatures
features_fk()
{
    AstraFeatures f;
    f.streams = false;
    f.alloc = false;
    return f;
}

AstraFeatures
features_fks()
{
    AstraFeatures f;
    f.alloc = false;
    return f;
}

AstraFeatures
features_all()
{
    return AstraFeatures{};
}

CustomWirer::CustomWirer(const Graph& graph, const SearchSpace& space,
                         const Scheduler& scheduler,
                         const std::vector<const TensorMap*>& tensor_maps,
                         WirerOptions opts)
    : graph_(graph), space_(space), scheduler_(scheduler),
      tensor_maps_(tensor_maps), opts_(std::move(opts)),
      index_(opts_.measurement)
{
    ASTRA_ASSERT(tensor_maps_.size() == space_.strategies.size(),
                 "one tensor map per allocation strategy");
}

DispatchResult
CustomWirer::measure(const ScheduleConfig& config, int strategy,
                     const BindFn& bind)
{
    const TensorMap& tmap =
        *tensor_maps_[static_cast<size_t>(strategy)];
    if (bind)
        bind(tmap, minibatches_);
    const ExecutionPlan plan = scheduler_.build(config);
    DispatchResult result = dispatch_plan(plan, graph_, tmap, opts_.gpu);
    if (opts_.measurement.normalize_clock) {
        // DVFS compensation: the device reports the clock it ran this
        // mini-batch at; scaling by it converts every measurement to
        // base-clock-equivalent time (§7, measured instead of pinned).
        result.total_ns *= result.clock_multiplier;
        for (auto& [key, ns] : result.profile_ns)
            ns *= result.clock_multiplier;
    }
    ++minibatches_;
    if (best_seen_ns_ < 0.0 || result.total_ns < best_seen_ns_)
        best_seen_ns_ = result.total_ns;
    static obs::Counter& trials = obs::counter("wire.minibatches");
    trials.add();
    obs::observe("wire.minibatch_ns", result.total_ns);
    // All profile keys are fully context-mangled by construction, so
    // the result entries drop straight into the index (§4.6).
    for (const auto& [key, ns] : result.profile_ns)
        index_.record(key, ns);
    return result;
}

void
CustomWirer::measure_trial(
    const std::function<ScheduleConfig()>& make_cfg, int strategy,
    const BindFn& bind)
{
    const int k = std::max(1, opts_.measurement.min_samples);
    for (int i = 0; i < k; ++i) {
        if (!budget_left()) {
            truncated_ = true;
            return;
        }
        measure(make_cfg(), strategy, bind);
    }
}

int64_t
CustomWirer::resolve_ambiguity(
    UpdateNode& stage, const std::function<ScheduleConfig()>& make_cfg,
    int strategy, const BindFn& bind,
    const std::function<bool(const AdaptiveVariable&)>& eligible)
{
    const MeasurementPolicy& mp = opts_.measurement;
    const int rounds = std::max(0, mp.max_repeats - 1);
    int64_t extra = 0;
    for (int round = 0; round < rounds; ++round) {
        bool ambiguous = false;
        stage.for_each_var([&](AdaptiveVariable& v) {
            if (v.num_options() < 2)
                return;
            if (eligible && !eligible(v))
                return;
            const ChoiceDecision d = v.decide(index_);
            if (d.choice < 0 || d.decisive)
                return;
            // Steer the next mini-batch at whichever of the top two
            // contenders has fewer samples, so their intervals tighten
            // at the same rate.
            const int64_t n_best =
                index_.samples(v.profile_key_for(d.choice));
            const int64_t n_run =
                index_.samples(v.profile_key_for(d.runner_up));
            v.set(n_run < n_best ? d.runner_up : d.choice);
            ambiguous = true;
        });
        if (!ambiguous)
            break;
        if (!budget_left()) {
            truncated_ = true;
            break;
        }
        measure(make_cfg(), strategy, bind);
        ++extra;
    }
    if (extra > 0) {
        static obs::Counter& remeasured =
            obs::counter("wire.remeasure_minibatches");
        remeasured.add(extra);
    }
    return extra;
}

DispatchResult
CustomWirer::measure_final(const ScheduleConfig& config, int strategy,
                           const BindFn& bind, double* stat_ns)
{
    const MeasurementPolicy& mp = opts_.measurement;
    DispatchResult first = measure(config, strategy, bind);
    double sum = first.total_ns;
    double mn = first.total_ns;
    int n = 1;
    // End-to-end times are single scalars (no profile key), so the
    // policy's k-repeat applies here directly rather than via the
    // index.
    for (; n < mp.min_samples && budget_left(); ++n) {
        const double t = measure(config, strategy, bind).total_ns;
        sum += t;
        mn = std::min(mn, t);
    }
    *stat_ns = mp.statistic == Statistic::Mean
                   ? sum / static_cast<double>(n)
                   : mn;
    return first;
}

WirerResult
CustomWirer::explore(const BindFn& bind)
{
    obs::ScopedSpan explore_span(obs::Category::Wire, "wirer.explore");
    WirerResult out;

    // One convergence epoch per update-tree stage: trials actually
    // dispatched vs the exhaustive size of the stage's subspace, with
    // the saving attributed to the stage's exploration mode (§4.5),
    // plus the stage's measurement-noise accounting.
    struct StageMark
    {
        int64_t trials = 0;
        int64_t samples = 0;
        int64_t rejected = 0;
    };
    auto mark = [&]() {
        StageMark m;
        m.trials = minibatches_;
        m.samples = index_.total_samples();
        m.rejected = index_.total_rejected();
        return m;
    };
    auto record_epoch = [&](int sid, const char* stage,
                            const char* mode, const StageMark& before,
                            int64_t exhaustive, int64_t remeasured,
                            double max_cv) {
        ConvergenceEpoch e;
        e.strategy = sid;
        e.stage = stage;
        e.mode = mode;
        e.trials = minibatches_ - before.trials;
        e.exhaustive = exhaustive;
        e.pruned = std::max<int64_t>(0, exhaustive - e.trials);
        e.best_ns = best_seen_ns_;
        e.minibatches_total = minibatches_;
        e.remeasure_trials = remeasured;
        e.samples = index_.total_samples() - before.samples;
        e.outliers_rejected = index_.total_rejected() - before.rejected;
        e.max_cv = max_cv;
        obs::observe("wire.stage_max_cv", max_cv);
        out.convergence.epochs.push_back(std::move(e));
    };

    const int num_strategies =
        opts_.features.alloc
            ? static_cast<int>(space_.strategies.size())
            : 1;
    out.strategy_ns.assign(space_.strategies.size(), -1.0);

    double best_ns = -1.0;

    for (int sid = 0; sid < num_strategies; ++sid) {
        const AllocStrategy& strat =
            space_.strategies[static_cast<size_t>(sid)];
        obs::ScopedSpan strategy_span(obs::Category::Wire,
                                      "wirer.strategy." + strat.key);
        const std::string sctx =
            opts_.context_prefix + strat.key + "|";

        // ---- variables ------------------------------------------------------
        // Chunk variables for groups fusable under this strategy.
        std::vector<VarPtr> chunk_vars(space_.groups.size());
        std::vector<std::unique_ptr<UpdateNode>> chunk_leaves;
        int64_t chunk_exhaustive = 1;
        if (opts_.features.fusion) {
            for (const FusionGroup& g : space_.groups) {
                if (!strat.group_enabled[static_cast<size_t>(g.id)] ||
                    g.chunk_options.size() < 2)
                    continue;
                auto v = std::make_shared<AdaptiveVariable>(
                    g.key + "|chunk",
                    static_cast<int>(g.chunk_options.size()), 0);
                v->set_context(sctx);
                chunk_vars[static_cast<size_t>(g.id)] = v;
                chunk_leaves.push_back(UpdateNode::leaf(v));
                chunk_exhaustive = sat_mul(
                    chunk_exhaustive,
                    static_cast<int64_t>(g.chunk_options.size()));
            }
        }

        // Library variables: per enabled group and per standalone GEMM.
        // Disabled groups are forced unfused by the scheduler and are
        // owned by a conflicting enabled group under this strategy, so
        // a library variable for them would only inflate the state
        // space (Table 7) without affecting the schedule.
        std::vector<VarPtr> lib_vars(space_.groups.size());
        std::map<NodeId, VarPtr> single_vars;
        std::vector<std::unique_ptr<UpdateNode>> lib_leaves;
        int64_t lib_exhaustive = 1;
        if (opts_.features.kernel_choice) {
            for (const FusionGroup& g : space_.groups) {
                if (!strat.group_enabled[static_cast<size_t>(g.id)])
                    continue;
                auto v = std::make_shared<AdaptiveVariable>(
                    g.key + "|lib", kNumGemmLibs, 0);
                v->set_context(sctx);
                lib_vars[static_cast<size_t>(g.id)] = v;
                lib_leaves.push_back(UpdateNode::leaf(v));
                lib_exhaustive = sat_mul(lib_exhaustive, kNumGemmLibs);
            }
            for (NodeId id : space_.single_mms) {
                auto v = std::make_shared<AdaptiveVariable>(
                    "n" + std::to_string(id) + "|lib", kNumGemmLibs, 0);
                v->set_context(sctx);
                single_vars[id] = v;
                lib_leaves.push_back(UpdateNode::leaf(v));
                lib_exhaustive = sat_mul(lib_exhaustive, kNumGemmLibs);
            }
        }

        // ---- config assembly -------------------------------------------------
        auto current_config = [&](bool with_streams) {
            ScheduleConfig cfg;
            cfg.strategy = sid;
            cfg.elementwise_fusion = opts_.features.elementwise_fusion;
            cfg.group_chunk.assign(space_.groups.size(), 1);
            cfg.group_lib.assign(space_.groups.size(), GemmLib::Cublas);
            for (const FusionGroup& g : space_.groups) {
                const auto& cv = chunk_vars[static_cast<size_t>(g.id)];
                if (cv)
                    cfg.group_chunk[static_cast<size_t>(g.id)] =
                        g.chunk_options[static_cast<size_t>(
                            cv->current())];
                const auto& lv = lib_vars[static_cast<size_t>(g.id)];
                if (lv)
                    cfg.group_lib[static_cast<size_t>(g.id)] =
                        static_cast<GemmLib>(lv->current());
            }
            for (const auto& [id, v] : single_vars)
                cfg.single_lib[id] = static_cast<GemmLib>(v->current());
            cfg.use_streams = with_streams;
            cfg.num_streams = opts_.num_streams;
            return cfg;
        };

        // ---- stage A: fusion chunks (Parallel, §4.5.1) -----------------------
        if (!chunk_leaves.empty()) {
            obs::ScopedSpan stage_span(obs::Category::Wire,
                                       "wirer.stage.chunks");
            const StageMark before = mark();
            auto stage = UpdateNode::composite(
                UpdateNode::Mode::Parallel, std::move(chunk_leaves));
            auto chunk_cfg = [&]() {
                ScheduleConfig cfg = current_config(false);
                for (const FusionGroup& g : space_.groups)
                    if (chunk_vars[static_cast<size_t>(g.id)])
                        cfg.group_keys[g.id] =
                            chunk_vars[static_cast<size_t>(g.id)]
                                ->profile_key();
                return cfg;
            };
            stage->initialize();
            while (true) {
                measure_trial(chunk_cfg, sid, bind);
                if (truncated_ || stage->finished())
                    break;
                stage->advance(index_);
            }
            const int64_t extra =
                resolve_ambiguity(*stage, chunk_cfg, sid, bind);
            stage->bind_best(index_);
            record_epoch(sid, "chunks", "parallel", before,
                         chunk_exhaustive, extra,
                         stage_max_cv(*stage, index_));
        }

        // ---- stage B: kernel libraries (context = bound chunks, §4.6) -------
        if (!lib_leaves.empty()) {
            obs::ScopedSpan stage_span(obs::Category::Wire,
                                       "wirer.stage.libs");
            const StageMark before = mark();
            for (const FusionGroup& g : space_.groups) {
                const auto& lv = lib_vars[static_cast<size_t>(g.id)];
                if (!lv)
                    continue;
                const auto& cv = chunk_vars[static_cast<size_t>(g.id)];
                const int chunk =
                    cv ? g.chunk_options[static_cast<size_t>(
                             cv->current())]
                       : 1;
                lv->set_context(sctx + g.key + "|ch" +
                                std::to_string(chunk) + "|");
            }
            auto stage = UpdateNode::composite(
                UpdateNode::Mode::Parallel, std::move(lib_leaves));
            auto lib_cfg = [&]() {
                ScheduleConfig cfg = current_config(false);
                for (const FusionGroup& g : space_.groups)
                    if (lib_vars[static_cast<size_t>(g.id)])
                        cfg.group_keys[g.id] =
                            lib_vars[static_cast<size_t>(g.id)]
                                ->profile_key();
                for (const auto& [id, v] : single_vars)
                    cfg.single_keys[id] = v->profile_key();
                return cfg;
            };
            stage->initialize();
            while (true) {
                measure_trial(lib_cfg, sid, bind);
                if (truncated_ || stage->finished())
                    break;
                stage->advance(index_);
            }
            const int64_t extra =
                resolve_ambiguity(*stage, lib_cfg, sid, bind);
            stage->bind_best(index_);
            record_epoch(sid, "libs", "parallel", before,
                         lib_exhaustive, extra,
                         stage_max_cv(*stage, index_));
        }

        // ---- stage C: stream scheduling (§4.5.3-4.5.5) ------------------------
        std::map<std::pair<int, int>, VarPtr> epoch_vars;
        if (opts_.features.streams) {
            obs::ScopedSpan stage_span(obs::Category::Wire,
                                       "wirer.stage.streams");
            const StageMark before = mark();
            int64_t stream_exhaustive = 1;
            const std::vector<PlanStep> units =
                scheduler_.build_units(current_config(false));
            const StreamSpace ss = scheduler_.stream_space(
                units, opts_.num_streams);

            // Parallel over super-epochs; Prefix over epochs within.
            std::map<int, std::vector<const EpochInfo*>> by_se;
            for (const EpochInfo& e : ss.epochs)
                by_se[e.super_epoch].push_back(&e);

            // Epoch variables frozen by their Prefix node. A frozen
            // epoch's binding extends later epochs' contexts, so it
            // must never change again — and its span is no longer
            // profiled: post-freeze samples are taken while *later*
            // epochs vary, and the cross-epoch stream interference
            // they carry would pollute the frozen key's statistics
            // (harmless for min, ruinous for mean). Not instrumenting
            // settled spans is also the paper's overhead discipline
            // (§5.1: profile only what is being explored).
            std::set<const AdaptiveVariable*> frozen;

            std::vector<std::unique_ptr<UpdateNode>> se_nodes;
            for (const auto& [se, epochs] : by_se) {
                std::vector<std::unique_ptr<UpdateNode>> epoch_leaves;
                std::vector<VarPtr> se_vars;
                for (const EpochInfo* e : epochs) {
                    auto v = std::make_shared<AdaptiveVariable>(
                        "se" + std::to_string(se) + "e" +
                            std::to_string(e->level) + "|split",
                        static_cast<int>(e->options.size()), 0);
                    v->set_context(sctx);
                    epoch_vars[{se, e->level}] = v;
                    se_vars.push_back(v);
                    epoch_leaves.push_back(UpdateNode::leaf(v));
                    stream_exhaustive = sat_mul(
                        stream_exhaustive,
                        static_cast<int64_t>(e->options.size()));
                }
                auto prefix = UpdateNode::composite(
                    UpdateNode::Mode::Prefix, std::move(epoch_leaves));
                // History-awareness: once an epoch is frozen, its
                // binding becomes part of later epochs' contexts.
                prefix->set_on_child_bound(
                    [se_vars, &frozen](int idx) {
                        frozen.insert(
                            se_vars[static_cast<size_t>(idx)].get());
                        const std::string suffix =
                            se_vars[static_cast<size_t>(idx)]->key() +
                            "b" +
                            std::to_string(
                                se_vars[static_cast<size_t>(idx)]
                                    ->current()) +
                            "|";
                        for (size_t j = static_cast<size_t>(idx) + 1;
                             j < se_vars.size(); ++j)
                            se_vars[j]->set_context(
                                se_vars[j]->context() + suffix);
                    });
                se_nodes.push_back(std::move(prefix));
            }
            auto stage = UpdateNode::composite(
                UpdateNode::Mode::Parallel, std::move(se_nodes));
            auto stream_cfg = [&]() {
                ScheduleConfig cfg = current_config(true);
                for (const auto& [key, v] : epoch_vars) {
                    cfg.epoch_choice[key] = v->current();
                    if (!frozen.count(v.get()))
                        cfg.epoch_keys[key] = v->profile_key();
                }
                return cfg;
            };
            // Ambiguity must be resolved *before* a Prefix freeze, not
            // after the sweep: once an epoch is frozen its binding is
            // baked into later epochs' contexts. So each loop step
            // re-measures any fully-swept, not-yet-frozen epoch whose
            // top two contenders are still inside the noise floor, and
            // only then lets advance() freeze it.
            auto about_to_freeze = [&](const AdaptiveVariable& v) {
                return v.finished() && !frozen.count(&v);
            };
            int64_t extra = 0;
            stage->initialize();
            while (true) {
                measure_trial(stream_cfg, sid, bind);
                if (truncated_)
                    break;
                extra += resolve_ambiguity(*stage, stream_cfg, sid,
                                           bind, about_to_freeze);
                if (truncated_ || stage->finished())
                    break;
                stage->advance(index_);
            }
            stage->bind_best(index_);
            record_epoch(sid, "streams", "prefix", before,
                         stream_exhaustive, extra,
                         stage_max_cv(*stage, index_));
        }

        // ---- best-of-strategy run ---------------------------------------------
        // Always measured, even when the safety valve already tripped:
        // the caller needs an end-to-end time for the bound best to be
        // usable (the valve may overshoot by the final k repeats).
        const StageMark final_before = mark();
        ScheduleConfig best = current_config(opts_.features.streams);
        for (const auto& [key, v] : epoch_vars)
            best.epoch_choice[key] = v->current();
        double final_stat = 0.0;
        measure_final(best, sid, bind, &final_stat);
        if (opts_.features.streams) {
            // Streams are themselves an optimization choice: compare
            // the streamed winner against the same binding without
            // streams and keep whichever measures faster (dynamic
            // adaptation can turn any optimization off, §6.6). The
            // comparison uses the policy statistic over k repeats so
            // clock jitter cannot flip it.
            ScheduleConfig serial = best;
            serial.use_streams = false;
            serial.epoch_choice.clear();
            double serial_stat = 0.0;
            measure_final(serial, sid, bind, &serial_stat);
            if (serial_stat < final_stat) {
                best = serial;
                final_stat = serial_stat;
            }
        }
        out.strategy_ns[static_cast<size_t>(sid)] = final_stat;
        const int64_t final_trials = minibatches_ - final_before.trials;
        record_epoch(sid, "final", "hierarchical", final_before,
                     final_trials, 0, 0.0);
        if (best_ns < 0.0 || final_stat < best_ns) {
            best_ns = final_stat;
            out.best_config = best;
        }
        if (truncated_)
            break;  // valve tripped: stop before forking further
    }

    out.best_ns = best_ns;
    out.minibatches = minibatches_;
    out.truncated = truncated_;
    out.index = index_;
    out.convergence.best_ns = best_ns;
    out.convergence.minibatches = minibatches_;
    obs::counter("wire.explorations").add();
    if (truncated_)
        obs::counter("wire.truncations").add();
    return out;
}

}  // namespace astra
