#include "core/wirer.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "core/predictor.h"
#include "obs/obs.h"
#include "support/logging.h"

namespace astra {

namespace {

/**
 * Saturating product, for exhaustive state-space sizes (Table 7).
 * The cap is far below INT64_MAX so that report consumers can sum
 * saturated sizes across epochs without overflowing.
 */
int64_t
sat_mul(int64_t a, int64_t b)
{
    constexpr int64_t kCap = 1000000000000000;  // 1e15
    if (a > 0 && b > kCap / a)
        return kCap;
    return a * b;
}

/**
 * Worst per-key coefficient of variation among a stage's variables'
 * measured choices: the stage's observed noise floor for reporting.
 */
double
stage_max_cv(const UpdateNode& stage, const ProfileIndex& index)
{
    double worst = 0.0;
    stage.for_each_var([&](AdaptiveVariable& v) {
        for (int c = 0; c < v.num_options(); ++c)
            if (const ProfileStats* s = index.stats(v.profile_key_for(c)))
                worst = std::max(worst, s->cov());
    });
    return worst;
}

}  // namespace

AstraFeatures
features_f()
{
    AstraFeatures f;
    f.kernel_choice = false;
    f.streams = false;
    f.alloc = false;
    return f;
}

AstraFeatures
features_fk()
{
    AstraFeatures f;
    f.streams = false;
    f.alloc = false;
    return f;
}

AstraFeatures
features_fks()
{
    AstraFeatures f;
    f.alloc = false;
    return f;
}

AstraFeatures
features_all()
{
    return AstraFeatures{};
}

const char*
wirer_termination_name(WirerTermination t)
{
    switch (t) {
      case WirerTermination::Complete:
        return "complete";
      case WirerTermination::Budget:
        return "budget";
      case WirerTermination::FaultQuarantine:
        return "fault_quarantine";
      case WirerTermination::Resume:
        return "resume";
    }
    return "?";
}

/**
 * One allocation strategy's private exploration state (see wirer.h).
 * Everything a trial mutates lives here; distinct strategies' runs
 * share nothing, so the pipelines may execute concurrently and still
 * merge into the exact serial result.
 */
struct CustomWirer::StrategyRun
{
    StrategyRun(int sid_in, std::string sctx_in, int64_t quota_in,
                const MeasurementPolicy& policy, const GpuConfig& gpu)
        : sid(sid_in), sctx(std::move(sctx_in)), quota(quota_in),
          index(policy), clock(gpu, static_cast<uint64_t>(sid_in) + 1)
    {
    }

    int sid;           ///< allocation-strategy index
    std::string sctx;  ///< strategy context prefix for profile keys

    /** This strategy's share of the mini-batch safety valve. */
    int64_t quota;

    /** Private profile shard (keys disjoint across strategies). */
    ProfileIndex index;

    /**
     * Private boost-draw sequence: the i-th mini-batch of this
     * strategy always runs at the i-th draw, regardless of which
     * thread dispatches it or what other strategies are doing.
     */
    ClockDomain clock;

    int64_t minibatches = 0;
    bool truncated = false;

    /** Best end-to-end mini-batch time seen in this strategy (ns). */
    double best_seen_ns = -1.0;

    /** Stage history with strategy-local best/totals (merged later). */
    std::vector<ConvergenceEpoch> epochs;

    /** The strategy's bound best configuration and its measured time. */
    ScheduleConfig best_config;
    double final_stat = 0.0;

    /**
     * Per-dispatch fault-salt sequence: the i-th dispatch of this
     * strategy always draws the i-th salt, so the faults it sees are a
     * function of the strategy's measurement history alone (the same
     * invariant the clock domain provides for boost draws).
     */
    uint64_t fault_seq = 0;

    /** Measurement journal (raw results, in dispatch order). */
    std::vector<DispatchRecord> journal;

    /** Resume journal to replay before dispatching live, if any. */
    const std::vector<DispatchRecord>* resume = nullptr;
    size_t replay_pos = 0;
    int64_t replayed = 0;

    /** Fault accounting, accumulated across this strategy's dispatches. */
    int64_t faults_seen = 0;
    int64_t fault_attempts = 0;
    int64_t straggler_events = 0;
    int64_t faulted_minibatches = 0;
    int64_t wirer_retries = 0;
    double backoff_ns = 0.0;

    /** A trial exhausted the measurement policy's fault budget. */
    bool fault_exhausted = false;

    // ---- plan-store warm-start accounting (WirerOptions::warm) -----------

    /** Variables pre-bound from a transferred L2 configuration. */
    int64_t transferred = 0;

    /** Profile keys seeded from the neighbor's stored statistics. */
    int64_t seeded_keys = 0;

    // ---- what-if engine (WirerOptions::whatif, §5.13) ---------------------

    /** Armed evaluator, or null when the mode is off or ineligible. */
    std::unique_ptr<WhatIfEngine> whatif;

    /** Tier-1 model, trained from this strategy's real measurements. */
    std::unique_ptr<CostPredictor> predictor;

    /** Static features per profile key, for predictor training. */
    std::map<std::string, PredictorFeatures> key_features;

    /** Dependency-preserving records captured while armed. */
    std::vector<RecordedTrace> traces;

    /** Host replays performed (tier-2 confirms + stream planning). */
    int64_t whatif_evals = 0;

    /** Options masked: predictor-nominated, replay-confirmed. */
    int64_t predictor_pruned = 0;

    /** dispatch_batch calls that dispatched >= 1 live mini-batch. */
    int64_t measured_configs = 0;
};

CustomWirer::~CustomWirer() = default;

CustomWirer::CustomWirer(const Graph& graph, const SearchSpace& space,
                         const Scheduler& scheduler,
                         const std::vector<const TensorMap*>& tensor_maps,
                         WirerOptions opts)
    : graph_(graph), space_(space), scheduler_(scheduler),
      tensor_maps_(tensor_maps), opts_(std::move(opts))
{
    ASTRA_ASSERT(tensor_maps_.size() == space_.strategies.size(),
                 "one tensor map per allocation strategy");
}

std::vector<DispatchResult>
CustomWirer::dispatch_batch(StrategyRun& run, const ScheduleConfig& config,
                            int repeats, const BindFn& bind)
{
    std::vector<DispatchResult> results;
    if (repeats <= 0)
        return results;
    results.resize(static_cast<size_t>(repeats));
    const TensorMap& tmap = *tensor_maps_[static_cast<size_t>(run.sid)];

    // Pre-draw the boost multipliers in repeat order: the clock a
    // mini-batch sees is a function of the strategy's measurement
    // history, never of which thread runs the repeat.
    std::vector<double> forced(static_cast<size_t>(repeats));
    for (double& m : forced)
        m = run.clock.draw();

    // Pre-draw per-dispatch fault salts under the same rule (|1 keeps
    // them nonzero so the dispatcher never substitutes its own
    // process-wide counter). Replayed repeats consume their draws too —
    // the live dispatches that follow must land on the same salts an
    // uninterrupted run would have used.
    const bool fault_armed = !opts_.gpu.faults.empty();
    std::vector<uint64_t> salts(static_cast<size_t>(repeats), 0);
    if (fault_armed)
        for (uint64_t& s : salts)
            s = fault_mix(static_cast<uint64_t>(run.sid) + 1,
                          ++run.fault_seq) |
                1;

    // Resume: the first n_replay repeats are satisfied from the journal
    // instead of dispatching. The split is decided here, before any
    // fan-out, so it cannot depend on thread interleaving.
    const int n_replay =
        run.resume == nullptr
            ? 0
            : static_cast<int>(std::min<size_t>(
                  static_cast<size_t>(repeats),
                  run.resume->size() - run.replay_pos));

    // Warm fetch on the calling thread: the (at most one) miss and its
    // lowering happen here, so the per-dispatch fetches below always
    // hit — the cache tally is identical at every thread count.
    scheduler_.build_cached(config);

    auto dispatch_one = [&](int64_t i) {
        if (i < n_replay) {
            // Replay performs the same cache fetch a live dispatch
            // would (tallies must match the uninterrupted run) and
            // copies the journaled raw measurement in.
            scheduler_.build_cached(config);
            const DispatchRecord& rec =
                (*run.resume)[run.replay_pos + static_cast<size_t>(i)];
            DispatchResult& res = results[static_cast<size_t>(i)];
            res.total_ns = rec.total_ns;
            res.clock_multiplier = rec.clock_multiplier;
            res.faulted = rec.faulted;
            res.fault_attempts = rec.fault_attempts;
            res.faults_seen = rec.faults_seen;
            res.straggler_events = rec.straggler_events;
            res.backoff_ns = rec.backoff_ns;
            for (const auto& [key, ns] : rec.profile)
                res.profile_ns.emplace(key, ns);
            return;
        }
        if (bind)
            bind(tmap, run.minibatches + i);
        GpuConfig gpu = opts_.gpu;
        if (forced[static_cast<size_t>(i)] > 0.0)
            gpu.forced_clock_multiplier = forced[static_cast<size_t>(i)];
        gpu.fault_salt = salts[static_cast<size_t>(i)];
        const std::shared_ptr<const ExecutionPlan> plan =
            scheduler_.build_cached(config);
        results[static_cast<size_t>(i)] =
            dispatch_plan(*plan, graph_, tmap, gpu);
    };
    // Repeats may fan out only when a dispatch touches nothing shared:
    // no bind callback mutating tensors, and a timing-only device (real
    // kernel execution writes the strategy's tensors). The rule depends
    // only on the options, so serial and parallel runs take the same
    // branch.
    const bool concurrent = pool_ != nullptr && !bind &&
                            !opts_.gpu.execute_kernels && repeats > 1;
    if (concurrent) {
        pool_->parallel_for(repeats, dispatch_one);
    } else {
        for (int64_t i = 0; i < repeats; ++i)
            dispatch_one(i);
    }
    // A "measured config" is a batch that cost real mini-batches — the
    // denominator of the what-if engine's savings claim. Journal
    // replays count too: they were live dispatches in the process that
    // wrote the journal, and a resumed run's report must be
    // bit-identical to the uninterrupted one. (What-if replays never
    // enter dispatch_batch, so they cannot inflate this.)
    ++run.measured_configs;

    // Accounting and profile recording happen sequentially in repeat
    // order, so the shard accumulates the exact serial sequence.
    for (DispatchResult& result : results) {
        // Journal the raw result first — before clock normalization —
        // so replaying the record reproduces this exact accounting
        // pass (and re-journals identically on a resumed run).
        DispatchRecord rec;
        rec.total_ns = result.total_ns;
        rec.clock_multiplier = result.clock_multiplier;
        rec.faulted = result.faulted;
        rec.fault_attempts = result.fault_attempts;
        rec.faults_seen = result.faults_seen;
        rec.straggler_events = result.straggler_events;
        rec.backoff_ns = result.backoff_ns;
        rec.profile.assign(result.profile_ns.begin(),
                           result.profile_ns.end());
        run.journal.push_back(std::move(rec));

        if (opts_.measurement.normalize_clock) {
            // DVFS compensation: the device reports the clock it ran
            // this mini-batch at; scaling by it converts every
            // measurement to base-clock-equivalent time (§7, measured
            // instead of pinned).
            result.total_ns *= result.clock_multiplier;
            for (auto& [key, ns] : result.profile_ns)
                ns *= result.clock_multiplier;
        }
        ++run.minibatches;
        run.faults_seen += result.faults_seen;
        run.fault_attempts += result.fault_attempts;
        run.straggler_events += result.straggler_events;
        run.backoff_ns += result.backoff_ns;
        static obs::Counter& trials = obs::counter("wire.minibatches");
        trials.add();
        obs::observe("wire.minibatch_ns", result.total_ns);
        if (result.faulted) {
            // The dispatcher's retry budget ran dry: timing and values
            // are suspect. Mark the keys (quarantine) instead of
            // recording samples, and leave best-seen untouched — a
            // faulted measurement must never win a binding.
            ++run.faulted_minibatches;
            for (const auto& [key, ns] : result.profile_ns)
                run.index.record_fault(key);
            continue;
        }
        if (run.best_seen_ns < 0.0 || result.total_ns < run.best_seen_ns)
            run.best_seen_ns = result.total_ns;
        // All profile keys are fully context-mangled by construction,
        // so the result entries drop straight into the shard (§4.6).
        for (const auto& [key, ns] : result.profile_ns)
            run.index.record(key, ns);
        // Tier-1 training: every clean measurement whose key has known
        // static features updates the ridge model. Sequential, in
        // repeat order — the model state is thread-count independent.
        if (run.predictor)
            for (const auto& [key, ns] : result.profile_ns) {
                const auto f = run.key_features.find(key);
                if (f != run.key_features.end())
                    run.predictor->observe(f->second, ns);
            }
    }
    if (n_replay > 0) {
        run.replay_pos += static_cast<size_t>(n_replay);
        run.replayed += n_replay;
    }
    return results;
}

void
CustomWirer::measure_trial(
    StrategyRun& run, const std::function<ScheduleConfig()>& make_cfg,
    const BindFn& bind)
{
    const int k = std::max(1, opts_.measurement.min_samples);
    for (int attempt = 0;; ++attempt) {
        const int64_t avail =
            std::max<int64_t>(0, run.quota - run.minibatches);
        const int r = static_cast<int>(std::min<int64_t>(k, avail));
        if (r < k)
            run.truncated = true;
        const std::vector<DispatchResult> results =
            dispatch_batch(run, make_cfg(), r, bind);
        if (results.empty())
            return;
        bool any_clean = false;
        for (const DispatchResult& result : results)
            any_clean = any_clean || !result.faulted;
        if (any_clean)
            return;
        // Every repeat of the trial came back faulted even after the
        // dispatcher's own replays: re-measure the whole trial (fresh
        // fault salts) up to the policy budget, then quarantine — the
        // keys stay marked, sample-free, and can never be bound.
        if (run.truncated || attempt >= opts_.measurement.fault_budget) {
            run.fault_exhausted = true;
            return;
        }
        ++run.wirer_retries;
    }
}

void
CustomWirer::replay_trial(StrategyRun& run, const ScheduleConfig& config)
{
    const ReplayResult r = run.whatif->evaluate(config);
    ++run.whatif_evals;
    // Replayed samples drop into the shard exactly like dispatched
    // ones. Epoch-span metrics couple across super-epochs through
    // host launch pipelining, so a candidate must be evaluated at the
    // precise co-varied state the walk would have dispatched — which
    // is what `config` is — not in isolation; only then is the sample
    // (and every ranking downstream of it) bit-identical to the
    // measured run's.
    for (const auto& [key, ns] : r.profile_ns) {
        run.index.record(key, ns);
        if (run.predictor) {
            const auto f = run.key_features.find(key);
            if (f != run.key_features.end())
                run.predictor->observe(f->second, ns);
        }
    }
}

int64_t
CustomWirer::resolve_ambiguity(
    StrategyRun& run, UpdateNode& stage,
    const std::function<ScheduleConfig()>& make_cfg, const BindFn& bind,
    const std::function<bool(const AdaptiveVariable&)>& eligible)
{
    const MeasurementPolicy& mp = opts_.measurement;
    const int rounds = std::max(0, mp.max_repeats - 1);
    int64_t extra = 0;
    for (int round = 0; round < rounds; ++round) {
        bool ambiguous = false;
        stage.for_each_var([&](AdaptiveVariable& v) {
            if (v.num_options() < 2)
                return;
            if (eligible && !eligible(v))
                return;
            const ChoiceDecision d = v.decide(run.index);
            if (d.choice < 0 || d.decisive)
                return;
            // Steer the next mini-batch at whichever of the top two
            // contenders has fewer samples, so their intervals tighten
            // at the same rate.
            const int64_t n_best =
                run.index.samples(v.profile_key_for(d.choice));
            const int64_t n_run =
                run.index.samples(v.profile_key_for(d.runner_up));
            v.set(n_run < n_best ? d.runner_up : d.choice);
            ambiguous = true;
        });
        if (!ambiguous)
            break;
        if (run.whatif) {
            // Armed: the re-measurement is replayed like any other
            // trial — same config sequence, same samples, no budget.
            replay_trial(run, make_cfg());
        } else {
            if (run.minibatches >= run.quota) {
                run.truncated = true;
                break;
            }
            dispatch_batch(run, make_cfg(), 1, bind);
        }
        ++extra;
    }
    if (extra > 0) {
        static obs::Counter& remeasured =
            obs::counter("wire.remeasure_minibatches");
        remeasured.add(extra);
    }
    return extra;
}

void
CustomWirer::measure_final(StrategyRun& run, const ScheduleConfig& config,
                           const BindFn& bind, double* stat_ns)
{
    const MeasurementPolicy& mp = opts_.measurement;
    const int k = std::max(1, mp.min_samples);
    // Only clean dispatches may define the strategy's end-to-end time;
    // if the whole batch faulted, re-measure up to the fault budget.
    std::vector<double> clean;
    for (int attempt = 0;; ++attempt) {
        // The first dispatch is unconditional — a truncated result must
        // still carry an end-to-end time — and only the k-1 extra
        // repeats are gated on the remaining quota.
        const int64_t avail = run.quota - run.minibatches;
        const int extra = static_cast<int>(
            std::min<int64_t>(k - 1, std::max<int64_t>(0, avail - 1)));
        const int r = 1 + extra;
        const std::vector<DispatchResult> results =
            dispatch_batch(run, config, r, bind);
        for (const DispatchResult& result : results)
            if (!result.faulted)
                clean.push_back(result.total_ns);
        if (!clean.empty() || attempt >= mp.fault_budget)
            break;
        ++run.wirer_retries;
    }
    if (clean.empty()) {
        // Unmeasurable under persistent faults: quarantine the
        // strategy by giving it a time no real measurement can beat.
        run.fault_exhausted = true;
        *stat_ns = 1e300;
        return;
    }
    // End-to-end times are single scalars (no profile key), so the
    // policy's k-repeat applies here directly rather than via the
    // index.
    double sum = 0.0;
    double mn = clean.front();
    for (double ns : clean) {
        sum += ns;
        mn = std::min(mn, ns);
    }
    *stat_ns = mp.statistic == Statistic::Mean
                   ? sum / static_cast<double>(clean.size())
                   : mn;
}

void
CustomWirer::run_strategy(StrategyRun& run, const BindFn& bind)
{
    const int sid = run.sid;
    const AllocStrategy& strat =
        space_.strategies[static_cast<size_t>(sid)];
    obs::ScopedSpan strategy_span(obs::Category::Wire,
                                  "wirer.strategy." + strat.key);
    const std::string& sctx = run.sctx;

    // ---- what-if arming (three-tier decisions, §5.13) --------------------
    // Arm only when host replay is provably exact against a dispatch:
    // fault injection perturbs timing beyond the model, and autoboost
    // is admissible only when measurements are normalized back to the
    // base clock the replay simulates at.
    if (opts_.whatif.enabled && opts_.gpu.faults.empty() &&
        (!opts_.gpu.autoboost || opts_.measurement.normalize_clock)) {
        run.whatif = std::make_unique<WhatIfEngine>(
            graph_, *tensor_maps_[static_cast<size_t>(sid)], scheduler_,
            opts_.gpu);
        run.predictor = std::make_unique<CostPredictor>(
            1e-3, opts_.whatif.predictor_min_rows);
    }
    // Near-tie tolerance for masking decisions. Measured rankings use
    // tie_epsilon_rel; any option the measured path could call a tie
    // must survive to measurement, so the masking margin dominates it.
    const double whatif_margin =
        std::max(opts_.whatif.margin_rel,
                 2.0 * opts_.measurement.tie_epsilon_rel);

    // One convergence epoch per update-tree stage: trials actually
    // dispatched vs the exhaustive size of the stage's subspace, with
    // the saving attributed to the stage's exploration mode (§4.5),
    // plus the stage's measurement-noise accounting. best_ns and
    // minibatches_total are recorded strategy-local here; explore()
    // rewrites them into the global running values when it merges the
    // runs in strategy order.
    struct StageMark
    {
        int64_t trials = 0;
        int64_t samples = 0;
        int64_t rejected = 0;
        int64_t whatif_evals = 0;
        int64_t predictor_pruned = 0;
        int64_t measured_configs = 0;
    };
    auto mark = [&]() {
        StageMark m;
        m.trials = run.minibatches;
        m.samples = run.index.total_samples();
        m.rejected = run.index.total_rejected();
        m.whatif_evals = run.whatif_evals;
        m.predictor_pruned = run.predictor_pruned;
        m.measured_configs = run.measured_configs;
        return m;
    };
    auto record_epoch = [&](const char* stage, const char* mode,
                            const StageMark& before, int64_t exhaustive,
                            int64_t remeasured, double max_cv) {
        ConvergenceEpoch e;
        e.strategy = sid;
        e.stage = stage;
        e.mode = mode;
        e.trials = run.minibatches - before.trials;
        e.exhaustive = exhaustive;
        e.pruned = std::max<int64_t>(0, exhaustive - e.trials);
        e.best_ns = run.best_seen_ns;
        e.minibatches_total = run.minibatches;
        e.remeasure_trials = remeasured;
        e.samples = run.index.total_samples() - before.samples;
        e.outliers_rejected =
            run.index.total_rejected() - before.rejected;
        e.max_cv = max_cv;
        e.whatif_evals = run.whatif_evals - before.whatif_evals;
        e.predictor_pruned =
            run.predictor_pruned - before.predictor_pruned;
        e.measured_configs =
            run.measured_configs - before.measured_configs;
        obs::observe("wire.stage_max_cv", max_cv);
        run.epochs.push_back(std::move(e));
    };

    // ---- plan-store warm start (WirerOptions::warm) ----------------------
    // Pre-bound variables are created with the transferred choice as
    // their default, kept out of the stage trees (so stage exhaustive
    // sizes count only the residual space and pruning attribution
    // stays honest) and never given profile keys — §5.1's discipline:
    // instrument only what is being explored. Seeded statistics are
    // therefore informative (reports, dumps) but can never win a
    // ranking for a residual variable: the neighbor measured a
    // different graph, and its absolute times must not compete with
    // this graph's.
    const WirerWarmStart& warm = opts_.warm;
    std::set<const AdaptiveVariable*> prebound;
    int64_t prebound_space = 1;
    auto seed_stats = [&](const AdaptiveVariable& v) {
        for (int c = 0; c < v.num_options(); ++c) {
            const std::string key = v.profile_key_for(c);
            if (const ProfileStats* s = warm.stats.stats(key)) {
                run.index.restore_entry(key, *s);
                ++run.seeded_keys;
            }
        }
    };
    const int l3_lib =
        warm.preferred_lib >= 0 && warm.preferred_lib < kNumGemmLibs
            ? warm.preferred_lib
            : 0;

    // ---- static features (tier-1 training lookup) -------------------------
    // Coarse vendor-knowledge features per profile key: gflops, bytes
    // moved, launch count, library one-hot. Registering a key whose
    // statistics were already seeded from the plan store folds the
    // neighbor's mean in as an observation — a warm start primes the
    // model before the first live measurement.
    auto node_io_mbytes = [&](NodeId id) {
        const Node& n = graph_.node(id);
        double b = static_cast<double>(n.desc.bytes());
        for (NodeId in : n.inputs)
            b += static_cast<double>(graph_.node(in).desc.bytes());
        return b / 1e6;
    };
    auto register_features = [&](const AdaptiveVariable& v, int option,
                                 double gflops, double mbytes,
                                 double launches, int lib) {
        if (!run.predictor)
            return;
        const std::string key = v.profile_key_for(option);
        const PredictorFeatures x =
            make_features(gflops, mbytes, launches, lib);
        run.key_features[key] = x;
        if (const ProfileStats* s = run.index.stats(key)) {
            if (s->count > 0) {
                run.predictor->observe(x, s->mean);
                return;
            }
        }
        // A neighbor's stored statistics train the *predictor* even
        // for residual variables. Safe where restore_entry is not:
        // the model only nominates, and every nomination is confirmed
        // by an exact replay of *this* graph before anything is
        // masked — foreign absolute times never enter run.index and
        // can never win a ranking.
        if (const ProfileStats* s = warm.stats.stats(key))
            if (s->count > 0)
                run.predictor->observe(x, s->mean);
    };
    auto group_mbytes = [&](const FusionGroup& g) {
        double b = 0.0;
        for (NodeId id : g.mms)
            b += node_io_mbytes(id);
        return b;
    };
    auto group_launches = [&](const FusionGroup& g, int chunk) {
        const auto n = static_cast<int>(g.mms.size());
        return static_cast<double>((n + chunk - 1) / std::max(1, chunk));
    };

    // ---- tiers 1+2: predictor-nominate, replay-confirm (§5.13) -----------
    // Runs once per Parallel stage, right after initialize (which
    // clears masks) and before any trial. The model only *nominates*
    // options it predicts dominated beyond a conservative gate; each
    // nomination must then be confirmed by an exact host replay before
    // the option is masked. Near-ties always survive to measurement.
    // Masked options stay sample-free and can never win bind_best, so
    // the converged configuration is unchanged.
    const auto prune_stage =
        [&](UpdateNode& stage,
            const std::function<ScheduleConfig()>& make_cfg) {
            if (!run.whatif || !run.predictor)
                return;
            const double gate = std::max(
                whatif_margin, opts_.whatif.predictor_sigma *
                                   run.predictor->rel_residual());
            stage.for_each_var([&](AdaptiveVariable& v) {
                if (v.num_options() < 2)
                    return;
                // Tier 1: predict every allowed option. Any gap in
                // confidence (missing features, untrusted model)
                // disqualifies the whole variable.
                std::vector<double> pred(
                    static_cast<size_t>(v.num_options()), -1.0);
                double pmin = -1.0;
                for (int o = 0; o < v.num_options(); ++o) {
                    if (!v.is_allowed(o))
                        continue;
                    const auto f =
                        run.key_features.find(v.profile_key_for(o));
                    if (f == run.key_features.end())
                        return;
                    const auto p = run.predictor->predict(f->second);
                    if (!p)
                        return;
                    pred[static_cast<size_t>(o)] = *p;
                    if (pmin < 0.0 || *p < pmin)
                        pmin = *p;
                }
                std::vector<int> nominated;
                for (int o = 0; o < v.num_options(); ++o) {
                    if (o == v.current() || !v.is_allowed(o))
                        continue;
                    if (run.index.samples(v.profile_key_for(o)) > 0)
                        continue;
                    if (pred[static_cast<size_t>(o)] >
                        pmin * (1.0 + gate))
                        nominated.push_back(o);
                }
                if (nominated.empty())
                    return;
                // Tier 2: exact replay of the walk anchor and of each
                // nomination. A nomination worse than the anchor by
                // more than the margin is worse than the stage winner
                // by at least as much (the winner can only beat the
                // anchor), and replay equals measurement bit-for-bit —
                // so masking it cannot change the bound best.
                const int saved = v.current();
                auto replay_metric = [&](int o) {
                    v.set(o);
                    const ScheduleConfig cfg = make_cfg();
                    v.set(saved);
                    const ReplayResult r = run.whatif->evaluate(cfg);
                    ++run.whatif_evals;
                    const auto it =
                        r.profile_ns.find(v.profile_key_for(o));
                    return it == r.profile_ns.end() ? -1.0 : it->second;
                };
                const double anchor = replay_metric(saved);
                if (anchor <= 0.0)
                    return;
                for (int o : nominated) {
                    const double m = replay_metric(o);
                    if (m > anchor * (1.0 + whatif_margin)) {
                        v.disallow(o);
                        ++run.predictor_pruned;
                    }
                }
            });
        };

    // ---- tier 2/3 split per exploration trial (§5.13) --------------------
    // While armed, every exploration trial of every stage is ranked on
    // the host: the walk advances over replayed samples that are
    // bit-identical to what a dispatch of the same co-varied config
    // would have measured, so freezes and binds land exactly where the
    // exhaustive sweep's would — without spending the mini-batches.
    // The device still gets the last word (tier 3): each stage's bound
    // winner is dispatched once for real after bind_best, and the
    // best-of-strategy runs are always measured.
    auto trial = [&](const std::function<ScheduleConfig()>& make_cfg) {
        if (run.whatif)
            replay_trial(run, make_cfg());
        else
            measure_trial(run, make_cfg, bind);
    };

    // ---- variables ------------------------------------------------------
    // Chunk variables for groups fusable under this strategy.
    std::vector<VarPtr> chunk_vars(space_.groups.size());
    std::vector<std::unique_ptr<UpdateNode>> chunk_leaves;
    int64_t chunk_exhaustive = 1;
    if (opts_.features.fusion) {
        for (const FusionGroup& g : space_.groups) {
            if (!strat.group_enabled[static_cast<size_t>(g.id)] ||
                g.chunk_options.size() < 2)
                continue;
            // Transfer the neighbor's chunk if this graph offers the
            // same value; otherwise the variable is residual.
            int warm_idx = -1;
            if (warm.has_config &&
                static_cast<size_t>(g.id) <
                    warm.config.group_chunk.size()) {
                const auto it = std::find(
                    g.chunk_options.begin(), g.chunk_options.end(),
                    warm.config.group_chunk[static_cast<size_t>(g.id)]);
                if (it != g.chunk_options.end())
                    warm_idx = static_cast<int>(
                        it - g.chunk_options.begin());
            }
            auto v = std::make_shared<AdaptiveVariable>(
                g.key + "|chunk",
                static_cast<int>(g.chunk_options.size()),
                warm_idx >= 0 ? warm_idx : 0);
            v->set_context(sctx);
            chunk_vars[static_cast<size_t>(g.id)] = v;
            // While the what-if engine is armed, a transferred choice
            // stays *residual*: exploring it costs host replays, not
            // mini-batches, so the neighbor's plan is verified on this
            // graph instead of trusted. Its statistics reach the
            // predictor (register_features reads warm.stats), arming
            // tier-1 nomination from the first stage.
            if (warm_idx >= 0 && !run.whatif) {
                prebound.insert(v.get());
                ++run.transferred;
                prebound_space = sat_mul(
                    prebound_space,
                    static_cast<int64_t>(g.chunk_options.size()));
                seed_stats(*v);
            } else {
                chunk_leaves.push_back(UpdateNode::leaf(v));
                chunk_exhaustive = sat_mul(
                    chunk_exhaustive,
                    static_cast<int64_t>(g.chunk_options.size()));
            }
            for (size_t c = 0; c < g.chunk_options.size(); ++c)
                register_features(
                    *v, static_cast<int>(c), g.flops / 1e9,
                    group_mbytes(g),
                    group_launches(g, g.chunk_options[c]), -1);
        }
    }

    // Library variables: per enabled group and per standalone GEMM.
    // Disabled groups are forced unfused by the scheduler and are
    // owned by a conflicting enabled group under this strategy, so
    // a library variable for them would only inflate the state
    // space (Table 7) without affecting the schedule.
    std::vector<VarPtr> lib_vars(space_.groups.size());
    std::map<NodeId, VarPtr> single_vars;
    std::vector<std::unique_ptr<UpdateNode>> lib_leaves;
    int64_t lib_exhaustive = 1;
    if (opts_.features.kernel_choice) {
        for (const FusionGroup& g : space_.groups) {
            if (!strat.group_enabled[static_cast<size_t>(g.id)])
                continue;
            const int warm_lib =
                warm.has_config &&
                        static_cast<size_t>(g.id) <
                            warm.config.group_lib.size()
                    ? static_cast<int>(
                          warm.config
                              .group_lib[static_cast<size_t>(g.id)])
                    : -1;
            auto v = std::make_shared<AdaptiveVariable>(
                g.key + "|lib", kNumGemmLibs,
                warm_lib >= 0 ? warm_lib : l3_lib);
            v->set_context(sctx);
            lib_vars[static_cast<size_t>(g.id)] = v;
            if (warm_lib >= 0 && !run.whatif) {
                prebound.insert(v.get());
                ++run.transferred;
                prebound_space = sat_mul(prebound_space, kNumGemmLibs);
                // Seed under the context stage B would have used, when
                // the chunk half of that context is already settled.
                const auto& cv = chunk_vars[static_cast<size_t>(g.id)];
                if (!cv || prebound.count(cv.get())) {
                    const int chunk =
                        cv ? g.chunk_options[static_cast<size_t>(
                                 cv->current())]
                           : 1;
                    v->set_context(sctx + g.key + "|ch" +
                                   std::to_string(chunk) + "|");
                    seed_stats(*v);
                }
            } else {
                lib_leaves.push_back(UpdateNode::leaf(v));
                lib_exhaustive = sat_mul(lib_exhaustive, kNumGemmLibs);
            }
        }
        for (NodeId id : space_.single_mms) {
            int warm_lib = -1;
            if (warm.has_config) {
                const auto it = warm.config.single_lib.find(id);
                if (it != warm.config.single_lib.end())
                    warm_lib = static_cast<int>(it->second);
            }
            auto v = std::make_shared<AdaptiveVariable>(
                "n" + std::to_string(id) + "|lib", kNumGemmLibs,
                warm_lib >= 0 ? warm_lib : l3_lib);
            v->set_context(sctx);
            single_vars[id] = v;
            if (warm_lib >= 0 && !run.whatif) {
                prebound.insert(v.get());
                ++run.transferred;
                prebound_space = sat_mul(prebound_space, kNumGemmLibs);
                seed_stats(*v);
            } else {
                lib_leaves.push_back(UpdateNode::leaf(v));
                lib_exhaustive = sat_mul(lib_exhaustive, kNumGemmLibs);
            }
        }
    }

    // ---- config assembly -------------------------------------------------
    auto current_config = [&](bool with_streams) {
        ScheduleConfig cfg;
        cfg.strategy = sid;
        cfg.elementwise_fusion = opts_.features.elementwise_fusion;
        cfg.group_chunk.assign(space_.groups.size(), 1);
        cfg.group_lib.assign(space_.groups.size(), GemmLib::Cublas);
        for (const FusionGroup& g : space_.groups) {
            const auto& cv = chunk_vars[static_cast<size_t>(g.id)];
            if (cv)
                cfg.group_chunk[static_cast<size_t>(g.id)] =
                    g.chunk_options[static_cast<size_t>(
                        cv->current())];
            const auto& lv = lib_vars[static_cast<size_t>(g.id)];
            if (lv)
                cfg.group_lib[static_cast<size_t>(g.id)] =
                    static_cast<GemmLib>(lv->current());
        }
        for (const auto& [id, v] : single_vars)
            cfg.single_lib[id] = static_cast<GemmLib>(v->current());
        cfg.use_streams = with_streams;
        cfg.num_streams = opts_.num_streams;
        return cfg;
    };

    // ---- trace capture ----------------------------------------------------
    // The dependency-preserving record of this strategy's first
    // measured configuration — compiled program, per-step costs and
    // keys, spans, metrics. Richer than the Chrome export, durable via
    // write_trace, and replayable under per-key cost substitution.
    if (run.whatif) {
        run.traces.push_back(
            run.whatif->capture(current_config(false)));
        ++run.whatif_evals;
    }

    // ---- transfer priming (plan store, L2) -------------------------------
    // Measure the transferred configuration once before exploring the
    // residual space: it seeds best-so-far (the neighbor's winner is
    // the bar every residual trial must beat) and gives the journal a
    // concrete measurement of the inherited plan. No profile keys — the
    // pre-bound variables are settled, not explored.
    if (warm.has_config) {
        const StageMark before = mark();
        measure_trial(
            run, [&]() { return current_config(false); }, bind);
        record_epoch("transfer", "store", before,
                     prebound_space > 1 ? prebound_space : 0, 0, 0.0);
    }

    // ---- stage A: fusion chunks (Parallel, §4.5.1) -----------------------
    if (!chunk_leaves.empty()) {
        obs::ScopedSpan stage_span(obs::Category::Wire,
                                   "wirer.stage.chunks");
        const StageMark before = mark();
        auto stage = UpdateNode::composite(
            UpdateNode::Mode::Parallel, std::move(chunk_leaves));
        auto chunk_cfg = [&]() {
            ScheduleConfig cfg = current_config(false);
            for (const FusionGroup& g : space_.groups) {
                const auto& cv = chunk_vars[static_cast<size_t>(g.id)];
                if (cv && !prebound.count(cv.get()))
                    cfg.group_keys[g.id] = cv->profile_key();
            }
            return cfg;
        };
        stage->initialize();
        prune_stage(*stage, chunk_cfg);
        while (true) {
            trial(chunk_cfg);
            if (run.truncated || stage->finished())
                break;
            stage->advance(run.index);
        }
        const int64_t extra =
            resolve_ambiguity(run, *stage, chunk_cfg, bind);
        stage->bind_best(run.index);
        if (run.whatif)  // tier 3: measure the stage's bound winner
            measure_trial(run, chunk_cfg, bind);
        record_epoch("chunks", "parallel", before, chunk_exhaustive,
                     extra, stage_max_cv(*stage, run.index));
    }

    // ---- stage B: kernel libraries (context = bound chunks, §4.6) -------
    if (!lib_leaves.empty()) {
        obs::ScopedSpan stage_span(obs::Category::Wire,
                                   "wirer.stage.libs");
        const StageMark before = mark();
        for (const FusionGroup& g : space_.groups) {
            const auto& lv = lib_vars[static_cast<size_t>(g.id)];
            if (!lv)
                continue;
            const auto& cv = chunk_vars[static_cast<size_t>(g.id)];
            const int chunk =
                cv ? g.chunk_options[static_cast<size_t>(
                         cv->current())]
                   : 1;
            lv->set_context(sctx + g.key + "|ch" +
                            std::to_string(chunk) + "|");
        }
        // Library keys exist only now that the chunk half of their
        // context is settled: register their features (and fold in any
        // seeded statistics) under the final contexts.
        for (const FusionGroup& g : space_.groups) {
            const auto& lv = lib_vars[static_cast<size_t>(g.id)];
            if (!lv)
                continue;
            const auto& cv = chunk_vars[static_cast<size_t>(g.id)];
            const int chunk =
                cv ? g.chunk_options[static_cast<size_t>(cv->current())]
                   : 1;
            for (int l = 0; l < kNumGemmLibs; ++l)
                register_features(*lv, l, g.flops / 1e9,
                                  group_mbytes(g),
                                  group_launches(g, chunk), l);
        }
        for (const auto& [id, v] : single_vars)
            for (int l = 0; l < kNumGemmLibs; ++l)
                register_features(*v, l,
                                 matmul_flops(graph_.node(id), graph_) /
                                     1e9,
                                 node_io_mbytes(id), 1.0, l);
        auto stage = UpdateNode::composite(
            UpdateNode::Mode::Parallel, std::move(lib_leaves));
        auto lib_cfg = [&]() {
            ScheduleConfig cfg = current_config(false);
            for (const FusionGroup& g : space_.groups) {
                const auto& lv = lib_vars[static_cast<size_t>(g.id)];
                if (lv && !prebound.count(lv.get()))
                    cfg.group_keys[g.id] = lv->profile_key();
            }
            for (const auto& [id, v] : single_vars)
                if (!prebound.count(v.get()))
                    cfg.single_keys[id] = v->profile_key();
            return cfg;
        };
        stage->initialize();
        prune_stage(*stage, lib_cfg);
        while (true) {
            trial(lib_cfg);
            if (run.truncated || stage->finished())
                break;
            stage->advance(run.index);
        }
        const int64_t extra =
            resolve_ambiguity(run, *stage, lib_cfg, bind);
        stage->bind_best(run.index);
        if (run.whatif)  // tier 3: measure the stage's bound winner
            measure_trial(run, lib_cfg, bind);
        record_epoch("libs", "parallel", before, lib_exhaustive, extra,
                     stage_max_cv(*stage, run.index));
    }

    // ---- stage C: stream scheduling (§4.5.3-4.5.5) ------------------------
    std::map<std::pair<int, int>, VarPtr> epoch_vars;
    if (opts_.features.streams) {
        obs::ScopedSpan stage_span(obs::Category::Wire,
                                   "wirer.stage.streams");
        const StageMark before = mark();
        int64_t stream_exhaustive = 1;
        const std::vector<PlanStep> units =
            scheduler_.build_units(current_config(false));
        const StreamSpace ss =
            scheduler_.stream_space(units, opts_.num_streams);

        // Parallel over super-epochs; Prefix over epochs within.
        std::map<int, std::vector<const EpochInfo*>> by_se;
        for (const EpochInfo& e : ss.epochs)
            by_se[e.super_epoch].push_back(&e);

        // Warm stream transfer is all-or-nothing: a Prefix freeze
        // mangles later epochs' contexts, so a partially pre-bound
        // stream stage would explore its residual epochs under
        // contexts no measurement can ever share. Either every epoch
        // of this graph's stream space has a valid transferred choice
        // (pre-bind them all, skip the stage) or none does (explore
        // the full stage as residual). The neighbor choosing serial
        // (use_streams=false) transfers nothing: this graph may still
        // profit from streams.
        bool warm_streams = warm.has_config && warm.config.use_streams;
        if (warm_streams)
            for (const auto& [se, epochs] : by_se)
                for (const EpochInfo* e : epochs) {
                    const auto it =
                        warm.config.epoch_choice.find({se, e->level});
                    if (it == warm.config.epoch_choice.end() ||
                        it->second < 0 ||
                        it->second >=
                            static_cast<int>(e->options.size()))
                        warm_streams = false;
                }
        if (warm_streams) {
            int64_t stream_space = 1;
            for (const auto& [se, epochs] : by_se)
                for (const EpochInfo* e : epochs) {
                    auto v = std::make_shared<AdaptiveVariable>(
                        "se" + std::to_string(se) + "e" +
                            std::to_string(e->level) + "|split",
                        static_cast<int>(e->options.size()),
                        warm.config.epoch_choice.at({se, e->level}));
                    v->set_context(sctx);
                    epoch_vars[{se, e->level}] = v;
                    prebound.insert(v.get());
                    ++run.transferred;
                    stream_space = sat_mul(
                        stream_space,
                        static_cast<int64_t>(e->options.size()));
                }
            record_epoch("streams", "store", before, stream_space, 0,
                         0.0);
        } else {

        // Epoch variables frozen by their Prefix node. A frozen
        // epoch's binding extends later epochs' contexts, so it
        // must never change again — and its span is no longer
        // profiled: post-freeze samples are taken while *later*
        // epochs vary, and the cross-epoch stream interference
        // they carry would pollute the frozen key's statistics
        // (harmless for min, ruinous for mean). Not instrumenting
        // settled spans is also the paper's overhead discipline
        // (§5.1: profile only what is being explored).
        std::set<const AdaptiveVariable*> frozen;

        std::vector<std::unique_ptr<UpdateNode>> se_nodes;
        for (const auto& [se, epochs] : by_se) {
            std::vector<std::unique_ptr<UpdateNode>> epoch_leaves;
            std::vector<VarPtr> se_vars;
            for (const EpochInfo* e : epochs) {
                auto v = std::make_shared<AdaptiveVariable>(
                    "se" + std::to_string(se) + "e" +
                        std::to_string(e->level) + "|split",
                    static_cast<int>(e->options.size()), 0);
                v->set_context(sctx);
                epoch_vars[{se, e->level}] = v;
                se_vars.push_back(v);
                epoch_leaves.push_back(UpdateNode::leaf(v));
                stream_exhaustive = sat_mul(
                    stream_exhaustive,
                    static_cast<int64_t>(e->options.size()));
            }
            auto prefix = UpdateNode::composite(
                UpdateNode::Mode::Prefix, std::move(epoch_leaves));
            // History-awareness: once an epoch is frozen, its
            // binding becomes part of later epochs' contexts.
            prefix->set_on_child_bound(
                [se_vars, &frozen](int idx) {
                    frozen.insert(
                        se_vars[static_cast<size_t>(idx)].get());
                    const std::string suffix =
                        se_vars[static_cast<size_t>(idx)]->key() +
                        "b" +
                        std::to_string(
                            se_vars[static_cast<size_t>(idx)]
                                ->current()) +
                        "|";
                    for (size_t j = static_cast<size_t>(idx) + 1;
                         j < se_vars.size(); ++j)
                        se_vars[j]->set_context(
                            se_vars[j]->context() + suffix);
                });
            se_nodes.push_back(std::move(prefix));
        }
        auto stage = UpdateNode::composite(
            UpdateNode::Mode::Parallel, std::move(se_nodes));
        auto stream_cfg = [&]() {
            ScheduleConfig cfg = current_config(true);
            for (const auto& [key, v] : epoch_vars) {
                cfg.epoch_choice[key] = v->current();
                if (!frozen.count(v.get()))
                    cfg.epoch_keys[key] = v->profile_key();
            }
            return cfg;
        };
        // Ambiguity must be resolved *before* a Prefix freeze, not
        // after the sweep: once an epoch is frozen its binding is
        // baked into later epochs' contexts. So each loop step
        // re-measures any fully-swept, not-yet-frozen epoch whose
        // top two contenders are still inside the noise floor, and
        // only then lets advance() freeze it.
        auto about_to_freeze = [&](const AdaptiveVariable& v) {
            return v.finished() && !frozen.count(&v);
        };
        // The stream walk is NOT per-option maskable (§5.13): an epoch
        // span is a wall-clock barrier-to-barrier duration, and host
        // launch pipelining couples it to the co-varied walk state of
        // every *other* super-epoch — skipping trials in one SE shifts
        // its partners' trial states and can flip their near-tie
        // freezes. So while armed the stage keeps the exhaustive
        // walk's exact trial sequence and replays it instead (trial()
        // above): the index evolves bit-identically, every freeze
        // lands where the measured sweep's would, and the mini-batches
        // stay unspent.
        int64_t extra = 0;
        stage->initialize();
        while (true) {
            trial(stream_cfg);
            if (run.truncated)
                break;
            extra += resolve_ambiguity(run, *stage, stream_cfg, bind,
                                       about_to_freeze);
            if (run.truncated || stage->finished())
                break;
            stage->advance(run.index);
        }
        stage->bind_best(run.index);
        if (run.whatif)  // tier 3: measure the stage's bound winner
            measure_trial(run, stream_cfg, bind);
        record_epoch("streams", "prefix", before, stream_exhaustive,
                     extra, stage_max_cv(*stage, run.index));
        }
    }

    // ---- best-of-strategy run ---------------------------------------------
    // Always measured, even when the safety valve already tripped:
    // the caller needs an end-to-end time for the bound best to be
    // usable (the valve may overshoot by the final k repeats).
    const StageMark final_before = mark();
    ScheduleConfig best = current_config(opts_.features.streams);
    for (const auto& [key, v] : epoch_vars)
        best.epoch_choice[key] = v->current();
    double final_stat = 0.0;
    measure_final(run, best, bind, &final_stat);
    if (opts_.features.streams) {
        // Streams are themselves an optimization choice: compare
        // the streamed winner against the same binding without
        // streams and keep whichever measures faster (dynamic
        // adaptation can turn any optimization off, §6.6). The
        // comparison uses the policy statistic over k repeats so
        // clock jitter cannot flip it.
        ScheduleConfig serial = best;
        serial.use_streams = false;
        serial.epoch_choice.clear();
        double serial_stat = 0.0;
        measure_final(run, serial, bind, &serial_stat);
        if (serial_stat < final_stat) {
            best = serial;
            final_stat = serial_stat;
        }
    }
    run.best_config = std::move(best);
    run.final_stat = final_stat;
    const int64_t final_trials = run.minibatches - final_before.trials;
    record_epoch("final", "hierarchical", final_before, final_trials, 0,
                 0.0);
}

WirerResult
CustomWirer::explore(const BindFn& bind)
{
    obs::ScopedSpan explore_span(obs::Category::Wire, "wirer.explore");
    WirerResult out;

    const int num_strategies =
        opts_.features.alloc
            ? static_cast<int>(space_.strategies.size())
            : 1;
    out.strategy_ns.assign(space_.strategies.size(), -1.0);

    // An L2 warm start transfers the neighbor's allocation-strategy
    // decision too: only that strategy's residual space is explored.
    // Resume journals are indexed by strategy position, so a journal
    // recorded without the warm restriction cannot replay under it —
    // warm start wins and the journal is dropped (with a warning; the
    // combination indicates a driver mixing two recovery mechanisms).
    std::vector<int> sids;
    if (opts_.warm.has_config && opts_.warm.config.strategy >= 0 &&
        opts_.warm.config.strategy < num_strategies)
        sids.push_back(opts_.warm.config.strategy);
    else
        for (int sid = 0; sid < num_strategies; ++sid)
            sids.push_back(sid);
    if (opts_.warm.has_config && !resume_.empty()) {
        warn("wirer: ignoring resume journal under plan-store warm "
             "start (journals are positional; the warm restriction "
             "changes the strategy set)");
        resume_ = WirerCheckpoint{};
    }

    // The exploration's share of the scheduler's process-lifetime
    // plan-cache tallies.
    const int64_t cache_hits0 = scheduler_.plan_cache_hits();
    const int64_t cache_misses0 = scheduler_.plan_cache_misses();

    // Deterministic budget partition: each strategy owns its share of
    // the safety valve up front (see WirerOptions::max_minibatches), so
    // truncation decisions never depend on how concurrent pipelines
    // interleave. The runs live in a member so their journals survive
    // an exception thrown out of a pipeline — checkpoint() can then
    // persist everything that was measured before the crash.
    runs_.clear();
    runs_.reserve(sids.size());
    const int64_t budget = std::max<int64_t>(0, opts_.max_minibatches);
    const int64_t num_runs = static_cast<int64_t>(sids.size());
    for (int64_t i = 0; i < num_runs; ++i) {
        const int sid = sids[static_cast<size_t>(i)];
        const int64_t quota =
            budget / num_runs + (i < budget % num_runs ? 1 : 0);
        runs_.push_back(std::make_unique<StrategyRun>(
            sid,
            opts_.context_prefix +
                space_.strategies[static_cast<size_t>(sid)].key + "|",
            quota, opts_.measurement, opts_.gpu));
        if (static_cast<size_t>(i) < resume_.strategies.size())
            runs_.back()->resume =
                &resume_.strategies[static_cast<size_t>(i)];
    }

    // Fan out one pipeline per strategy. threads=1 constructs a pool
    // with no workers, and parallel_for degenerates to the serial loop
    // — one code path for both regimes. parallel_for completes the
    // whole batch before rethrowing a pipeline's exception, so no
    // other strategy's work leaks past the unwind.
    ThreadPool pool(std::max(1, opts_.threads));
    pool_ = &pool;
    try {
        pool.parallel_for(num_runs, [&](int64_t i) {
            run_strategy(*runs_[static_cast<size_t>(i)], bind);
        });
    } catch (...) {
        pool_ = nullptr;
        throw;
    }
    pool_ = nullptr;

    // ---- deterministic merge (strategy order) -----------------------------
    // Reproduces exactly what the serial wirer accumulated when it ran
    // the strategies one after another: epochs concatenate in strategy
    // order, local mini-batch totals shift by the running offset, local
    // best-so-far times fold into a global running minimum, and the
    // cross-strategy argmin breaks ties toward the lowest strategy
    // index (strict <).
    double best_ns = -1.0;
    double best_seen = -1.0;
    int64_t mb_offset = 0;
    bool fault_exhausted = false;
    bool cut_mid_replay = false;
    out.index = ProfileIndex(opts_.measurement);
    for (const std::unique_ptr<StrategyRun>& runp : runs_) {
        StrategyRun& run = *runp;
        for (ConvergenceEpoch e : run.epochs) {
            if (e.best_ns >= 0.0)
                best_seen = best_seen < 0.0
                                ? e.best_ns
                                : std::min(best_seen, e.best_ns);
            e.best_ns = best_seen;
            e.minibatches_total += mb_offset;
            out.convergence.epochs.push_back(std::move(e));
        }
        mb_offset += run.minibatches;
        out.minibatches += run.minibatches;
        out.truncated = out.truncated || run.truncated;
        out.replayed_minibatches += run.replayed;
        fault_exhausted = fault_exhausted || run.fault_exhausted;
        cut_mid_replay =
            cut_mid_replay ||
            (run.truncated && run.resume != nullptr &&
             run.replay_pos < run.resume->size());
        out.convergence.faults.injected_kernel_faults += run.faults_seen;
        out.convergence.faults.straggler_events += run.straggler_events;
        out.convergence.faults.faulted_minibatches +=
            run.faulted_minibatches;
        out.convergence.faults.dispatch_retries += run.fault_attempts;
        out.convergence.faults.wirer_retries += run.wirer_retries;
        out.convergence.faults.backoff_ns += run.backoff_ns;
        out.convergence.store_transferred_bindings += run.transferred;
        out.convergence.store_seeded_keys += run.seeded_keys;
        out.convergence.whatif_evals += run.whatif_evals;
        out.convergence.predictor_pruned += run.predictor_pruned;
        out.convergence.measured_configs += run.measured_configs;
        for (RecordedTrace& t : run.traces)
            out.whatif_traces.push_back(std::move(t));
        run.traces.clear();
        out.index.merge(run.index);
        out.strategy_ns[static_cast<size_t>(run.sid)] = run.final_stat;
        if (best_ns < 0.0 || run.final_stat < best_ns) {
            best_ns = run.final_stat;
            out.best_config = run.best_config;
        }
    }
    out.convergence.faults.quarantined_keys = static_cast<int64_t>(
        out.index.quarantined_keys().size());

    // Termination reason, in increasing priority. "resume" surfaces
    // only when the budget cut exploration while a journal was still
    // replaying; a resumed run that completes reports exactly what the
    // uninterrupted run would (bit-identical reports).
    out.termination = WirerTermination::Complete;
    if (out.truncated)
        out.termination = WirerTermination::Budget;
    if (cut_mid_replay)
        out.termination = WirerTermination::Resume;
    if (fault_exhausted)
        out.termination = WirerTermination::FaultQuarantine;
    out.convergence.termination = wirer_termination_name(out.termination);

    out.best_ns = best_ns;
    out.convergence.best_ns = best_ns;
    out.convergence.minibatches = out.minibatches;
    out.convergence.plan_cache_hits =
        scheduler_.plan_cache_hits() - cache_hits0;
    out.convergence.plan_cache_misses =
        scheduler_.plan_cache_misses() - cache_misses0;
    obs::counter("wire.explorations").add();
    if (out.truncated)
        obs::counter("wire.truncations").add();
    if (out.convergence.faults.faulted_minibatches > 0)
        obs::counter("wire.faulted_minibatches")
            .add(out.convergence.faults.faulted_minibatches);
    if (fault_exhausted)
        obs::counter("wire.fault_quarantines").add();
    return out;
}

void
CustomWirer::checkpoint(std::ostream& os) const
{
    WirerCheckpoint cp;
    cp.strategies.reserve(runs_.size());
    for (const std::unique_ptr<StrategyRun>& run : runs_)
        cp.strategies.push_back(run->journal);
    write_checkpoint(os, cp);
}

void
CustomWirer::resume(WirerCheckpoint cp)
{
    resume_ = std::move(cp);
}

}  // namespace astra
