#include "core/wirer.h"

#include <algorithm>

#include "obs/obs.h"
#include "support/logging.h"

namespace astra {

namespace {

/**
 * Saturating product, for exhaustive state-space sizes (Table 7).
 * The cap is far below INT64_MAX so that report consumers can sum
 * saturated sizes across epochs without overflowing.
 */
int64_t
sat_mul(int64_t a, int64_t b)
{
    constexpr int64_t kCap = 1000000000000000;  // 1e15
    if (a > 0 && b > kCap / a)
        return kCap;
    return a * b;
}

}  // namespace

AstraFeatures
features_f()
{
    AstraFeatures f;
    f.kernel_choice = false;
    f.streams = false;
    f.alloc = false;
    return f;
}

AstraFeatures
features_fk()
{
    AstraFeatures f;
    f.streams = false;
    f.alloc = false;
    return f;
}

AstraFeatures
features_fks()
{
    AstraFeatures f;
    f.alloc = false;
    return f;
}

AstraFeatures
features_all()
{
    return AstraFeatures{};
}

CustomWirer::CustomWirer(const Graph& graph, const SearchSpace& space,
                         const Scheduler& scheduler,
                         const std::vector<const TensorMap*>& tensor_maps,
                         WirerOptions opts)
    : graph_(graph), space_(space), scheduler_(scheduler),
      tensor_maps_(tensor_maps), opts_(std::move(opts))
{
    ASTRA_ASSERT(tensor_maps_.size() == space_.strategies.size(),
                 "one tensor map per allocation strategy");
}

DispatchResult
CustomWirer::measure(const ScheduleConfig& config, int strategy,
                     const BindFn& bind)
{
    ASTRA_ASSERT(minibatches_ < opts_.max_minibatches,
                 "exploration exceeded the mini-batch safety valve");
    const TensorMap& tmap =
        *tensor_maps_[static_cast<size_t>(strategy)];
    if (bind)
        bind(tmap, minibatches_);
    const ExecutionPlan plan = scheduler_.build(config);
    DispatchResult result = dispatch_plan(plan, graph_, tmap, opts_.gpu);
    ++minibatches_;
    if (best_seen_ns_ < 0.0 || result.total_ns < best_seen_ns_)
        best_seen_ns_ = result.total_ns;
    static obs::Counter& trials = obs::counter("wire.minibatches");
    trials.add();
    obs::observe("wire.minibatch_ns", result.total_ns);
    // All profile keys are fully context-mangled by construction, so
    // the result entries drop straight into the index (§4.6).
    for (const auto& [key, ns] : result.profile_ns)
        index_.record(key, ns);
    return result;
}

WirerResult
CustomWirer::explore(const BindFn& bind)
{
    obs::ScopedSpan explore_span(obs::Category::Wire, "wirer.explore");
    WirerResult out;

    // One convergence epoch per update-tree stage: trials actually
    // dispatched vs the exhaustive size of the stage's subspace, with
    // the saving attributed to the stage's exploration mode (§4.5).
    auto record_epoch = [&](int sid, const char* stage,
                            const char* mode, int64_t trials,
                            int64_t exhaustive) {
        ConvergenceEpoch e;
        e.strategy = sid;
        e.stage = stage;
        e.mode = mode;
        e.trials = trials;
        e.exhaustive = exhaustive;
        e.pruned = std::max<int64_t>(0, exhaustive - trials);
        e.best_ns = best_seen_ns_;
        e.minibatches_total = minibatches_;
        out.convergence.epochs.push_back(std::move(e));
    };

    const int num_strategies =
        opts_.features.alloc
            ? static_cast<int>(space_.strategies.size())
            : 1;
    out.strategy_ns.assign(space_.strategies.size(), -1.0);

    double best_ns = -1.0;

    for (int sid = 0; sid < num_strategies; ++sid) {
        const AllocStrategy& strat =
            space_.strategies[static_cast<size_t>(sid)];
        obs::ScopedSpan strategy_span(obs::Category::Wire,
                                      "wirer.strategy." + strat.key);
        const std::string sctx =
            opts_.context_prefix + strat.key + "|";

        // ---- variables ------------------------------------------------------
        // Chunk variables for groups fusable under this strategy.
        std::vector<VarPtr> chunk_vars(space_.groups.size());
        std::vector<std::unique_ptr<UpdateNode>> chunk_leaves;
        int64_t chunk_exhaustive = 1;
        if (opts_.features.fusion) {
            for (const FusionGroup& g : space_.groups) {
                if (!strat.group_enabled[static_cast<size_t>(g.id)] ||
                    g.chunk_options.size() < 2)
                    continue;
                auto v = std::make_shared<AdaptiveVariable>(
                    g.key + "|chunk",
                    static_cast<int>(g.chunk_options.size()), 0);
                v->set_context(sctx);
                chunk_vars[static_cast<size_t>(g.id)] = v;
                chunk_leaves.push_back(UpdateNode::leaf(v));
                chunk_exhaustive = sat_mul(
                    chunk_exhaustive,
                    static_cast<int64_t>(g.chunk_options.size()));
            }
        }

        // Library variables: per group and per standalone GEMM.
        std::vector<VarPtr> lib_vars(space_.groups.size());
        std::map<NodeId, VarPtr> single_vars;
        std::vector<std::unique_ptr<UpdateNode>> lib_leaves;
        int64_t lib_exhaustive = 1;
        if (opts_.features.kernel_choice) {
            for (const FusionGroup& g : space_.groups) {
                auto v = std::make_shared<AdaptiveVariable>(
                    g.key + "|lib", kNumGemmLibs, 0);
                lib_vars[static_cast<size_t>(g.id)] = v;
                lib_leaves.push_back(UpdateNode::leaf(v));
                lib_exhaustive = sat_mul(lib_exhaustive, kNumGemmLibs);
            }
            for (NodeId id : space_.single_mms) {
                auto v = std::make_shared<AdaptiveVariable>(
                    "n" + std::to_string(id) + "|lib", kNumGemmLibs, 0);
                v->set_context(sctx);
                single_vars[id] = v;
                lib_leaves.push_back(UpdateNode::leaf(v));
                lib_exhaustive = sat_mul(lib_exhaustive, kNumGemmLibs);
            }
        }

        // ---- config assembly -------------------------------------------------
        auto current_config = [&](bool with_streams) {
            ScheduleConfig cfg;
            cfg.strategy = sid;
            cfg.elementwise_fusion = opts_.features.elementwise_fusion;
            cfg.group_chunk.assign(space_.groups.size(), 1);
            cfg.group_lib.assign(space_.groups.size(), GemmLib::Cublas);
            for (const FusionGroup& g : space_.groups) {
                const auto& cv = chunk_vars[static_cast<size_t>(g.id)];
                if (cv)
                    cfg.group_chunk[static_cast<size_t>(g.id)] =
                        g.chunk_options[static_cast<size_t>(
                            cv->current())];
                const auto& lv = lib_vars[static_cast<size_t>(g.id)];
                if (lv)
                    cfg.group_lib[static_cast<size_t>(g.id)] =
                        static_cast<GemmLib>(lv->current());
            }
            for (const auto& [id, v] : single_vars)
                cfg.single_lib[id] = static_cast<GemmLib>(v->current());
            cfg.use_streams = with_streams;
            cfg.num_streams = opts_.num_streams;
            return cfg;
        };

        // ---- stage A: fusion chunks (Parallel, §4.5.1) -----------------------
        if (!chunk_leaves.empty()) {
            obs::ScopedSpan stage_span(obs::Category::Wire,
                                       "wirer.stage.chunks");
            const int64_t trials_before = minibatches_;
            auto stage = UpdateNode::composite(
                UpdateNode::Mode::Parallel, std::move(chunk_leaves));
            stage->initialize();
            while (true) {
                ScheduleConfig cfg = current_config(false);
                for (const FusionGroup& g : space_.groups)
                    if (chunk_vars[static_cast<size_t>(g.id)])
                        cfg.group_keys[g.id] =
                            chunk_vars[static_cast<size_t>(g.id)]
                                ->profile_key();
                measure(cfg, sid, bind);
                if (stage->finished())
                    break;
                stage->advance(index_);
            }
            stage->bind_best(index_);
            record_epoch(sid, "chunks", "parallel",
                         minibatches_ - trials_before, chunk_exhaustive);
        }

        // ---- stage B: kernel libraries (context = bound chunks, §4.6) -------
        if (!lib_leaves.empty()) {
            obs::ScopedSpan stage_span(obs::Category::Wire,
                                       "wirer.stage.libs");
            const int64_t trials_before = minibatches_;
            for (const FusionGroup& g : space_.groups) {
                const auto& lv = lib_vars[static_cast<size_t>(g.id)];
                if (!lv)
                    continue;
                const auto& cv = chunk_vars[static_cast<size_t>(g.id)];
                const int chunk =
                    cv ? g.chunk_options[static_cast<size_t>(
                             cv->current())]
                       : 1;
                lv->set_context(sctx + g.key + "|ch" +
                                std::to_string(chunk) + "|");
            }
            auto stage = UpdateNode::composite(
                UpdateNode::Mode::Parallel, std::move(lib_leaves));
            stage->initialize();
            while (true) {
                ScheduleConfig cfg = current_config(false);
                for (const FusionGroup& g : space_.groups)
                    if (lib_vars[static_cast<size_t>(g.id)])
                        cfg.group_keys[g.id] =
                            lib_vars[static_cast<size_t>(g.id)]
                                ->profile_key();
                for (const auto& [id, v] : single_vars)
                    cfg.single_keys[id] = v->profile_key();
                measure(cfg, sid, bind);
                if (stage->finished())
                    break;
                stage->advance(index_);
            }
            stage->bind_best(index_);
            record_epoch(sid, "libs", "parallel",
                         minibatches_ - trials_before, lib_exhaustive);
        }

        // ---- stage C: stream scheduling (§4.5.3-4.5.5) ------------------------
        std::map<std::pair<int, int>, VarPtr> epoch_vars;
        if (opts_.features.streams) {
            obs::ScopedSpan stage_span(obs::Category::Wire,
                                       "wirer.stage.streams");
            const int64_t trials_before = minibatches_;
            int64_t stream_exhaustive = 1;
            const std::vector<PlanStep> units =
                scheduler_.build_units(current_config(false));
            const StreamSpace ss = scheduler_.stream_space(
                units, opts_.num_streams);

            // Parallel over super-epochs; Prefix over epochs within.
            std::map<int, std::vector<const EpochInfo*>> by_se;
            for (const EpochInfo& e : ss.epochs)
                by_se[e.super_epoch].push_back(&e);

            std::vector<std::unique_ptr<UpdateNode>> se_nodes;
            for (const auto& [se, epochs] : by_se) {
                std::vector<std::unique_ptr<UpdateNode>> epoch_leaves;
                std::vector<VarPtr> se_vars;
                for (const EpochInfo* e : epochs) {
                    auto v = std::make_shared<AdaptiveVariable>(
                        "se" + std::to_string(se) + "e" +
                            std::to_string(e->level) + "|split",
                        static_cast<int>(e->options.size()), 0);
                    v->set_context(sctx);
                    epoch_vars[{se, e->level}] = v;
                    se_vars.push_back(v);
                    epoch_leaves.push_back(UpdateNode::leaf(v));
                    stream_exhaustive = sat_mul(
                        stream_exhaustive,
                        static_cast<int64_t>(e->options.size()));
                }
                auto prefix = UpdateNode::composite(
                    UpdateNode::Mode::Prefix, std::move(epoch_leaves));
                // History-awareness: once an epoch is frozen, its
                // binding becomes part of later epochs' contexts.
                prefix->set_on_child_bound(
                    [se_vars](int idx) {
                        const std::string suffix =
                            se_vars[static_cast<size_t>(idx)]->key() +
                            "b" +
                            std::to_string(
                                se_vars[static_cast<size_t>(idx)]
                                    ->current()) +
                            "|";
                        for (size_t j = static_cast<size_t>(idx) + 1;
                             j < se_vars.size(); ++j)
                            se_vars[j]->set_context(
                                se_vars[j]->context() + suffix);
                    });
                se_nodes.push_back(std::move(prefix));
            }
            auto stage = UpdateNode::composite(
                UpdateNode::Mode::Parallel, std::move(se_nodes));
            stage->initialize();
            while (true) {
                ScheduleConfig cfg = current_config(true);
                for (const auto& [key, v] : epoch_vars) {
                    cfg.epoch_choice[key] = v->current();
                    cfg.epoch_keys[key] = v->profile_key();
                }
                measure(cfg, sid, bind);
                if (stage->finished())
                    break;
                stage->advance(index_);
            }
            stage->bind_best(index_);
            record_epoch(sid, "streams", "prefix",
                         minibatches_ - trials_before,
                         stream_exhaustive);
        }

        // ---- best-of-strategy run ---------------------------------------------
        const int64_t final_before = minibatches_;
        ScheduleConfig best = current_config(opts_.features.streams);
        for (const auto& [key, v] : epoch_vars)
            best.epoch_choice[key] = v->current();
        DispatchResult final = measure(best, sid, bind);
        if (opts_.features.streams) {
            // Streams are themselves an optimization choice: compare
            // the streamed winner against the same binding without
            // streams and keep whichever measures faster (dynamic
            // adaptation can turn any optimization off, §6.6).
            ScheduleConfig serial = best;
            serial.use_streams = false;
            serial.epoch_choice.clear();
            const DispatchResult serial_run = measure(serial, sid, bind);
            if (serial_run.total_ns < final.total_ns) {
                best = serial;
                final = serial_run;
            }
        }
        out.strategy_ns[static_cast<size_t>(sid)] = final.total_ns;
        const int64_t final_trials = minibatches_ - final_before;
        record_epoch(sid, "final", "hierarchical", final_trials,
                     final_trials);
        if (best_ns < 0.0 || final.total_ns < best_ns) {
            best_ns = final.total_ns;
            out.best_config = best;
        }
    }

    out.best_ns = best_ns;
    out.minibatches = minibatches_;
    out.index = index_;
    out.convergence.best_ns = best_ns;
    out.convergence.minibatches = minibatches_;
    obs::counter("wire.explorations").add();
    return out;
}

}  // namespace astra
