/**
 * @file
 * Online feature-based cost predictor (ROADMAP item 3, §5.13).
 *
 * A ridge regression over cheap static features (flops, bytes moved,
 * launch count, library one-hot) updated from every real measurement
 * the wirer makes — the "statistical cost model" thread of the what-if
 * engine (after Chen et al., arXiv 1805.08166; no deep nets). The
 * predictor never decides anything alone: it nominates *candidates*
 * for pruning, and each nomination must be confirmed by an exact
 * what-if replay before an option is masked (three-tier decision,
 * DESIGN.md §5.13). Static features are coarse vendor knowledge in the
 * paper's sense (§4.8) — the same legitimacy as the scheduler's
 * estimate_unit_ns ordering heuristic.
 */
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "kernels/cost.h"

namespace astra {

/** Feature vector layout: bias, gflops, mbytes, launches, lib 1-hot. */
constexpr int kPredictorDim = 4 + kNumGemmLibs;

using PredictorFeatures = std::array<double, kPredictorDim>;

/** Assemble a feature vector (bias is set here; pass lib = -1 for none). */
PredictorFeatures make_features(double gflops, double mbytes,
                                double launches, int lib);

/**
 * Online ridge regression y ~ w.x over kPredictorDim features.
 *
 * Maintains the normal equations (A = X'X + lambda*I, b = X'y) and
 * solves them by Gaussian elimination on demand — the dimension is
 * single digits, so a solve is microseconds. Deterministic: the model
 * state is a pure function of the observation sequence.
 */
class CostPredictor
{
  public:
    explicit CostPredictor(double lambda = 1e-3, int min_rows = 8);

    /** Fold one measurement in (y in nanoseconds, y >= 0). */
    void observe(const PredictorFeatures& x, double y);

    /**
     * Predicted cost, or nullopt while the model is not trustworthy:
     * fewer than min_rows observations, a feature dimension active in
     * `x` that no observation has ever exercised (support gating), a
     * singular system, or a non-positive prediction.
     */
    std::optional<double> predict(const PredictorFeatures& x) const;

    /**
     * Running mean relative absolute error of one-step-ahead
     * predictions (|predicted - observed| / observed). Conservative
     * margins scale with this: a sloppy model prunes less.
     */
    double rel_residual() const;

    int64_t rows() const { return rows_; }

  private:
    bool solve(std::array<double, kPredictorDim>* w) const;

    double lambda_;
    int min_rows_;
    int64_t rows_ = 0;
    std::array<std::array<double, kPredictorDim>, kPredictorDim> a_{};
    std::array<double, kPredictorDim> b_{};
    std::array<int64_t, kPredictorDim> support_{};
    double resid_sum_ = 0.0;
    int64_t resid_n_ = 0;
};

}  // namespace astra
