/**
 * @file
 * Measurement-driven data-parallel scaling (paper §3.4 / §6.7).
 *
 * "Depending on the communication cost of the model and the physical
 * characteristics of the network, the choice of ideal degree of
 * parallelism from a cost-benefit perspective, could be taken in an
 * automated manner with runtime measurement and adaptation."
 *
 * This module does exactly that on simulated hardware — and, unlike
 * the analytic version it replaces, it *runs* the data-parallel step:
 * for each candidate degree G the graph is rebuilt at per-device batch
 * B/G, Astra tunes the compute schedule, and the tuned plan is
 * dispatched onto G co-simulated devices (runtime/dispatcher_dp.h)
 * with ring-allreduce chunk transfers on a per-device comm stream.
 * Gradient bucket capacity and flush schedule are adaptive variables
 * explored against the profile index under a "dp<G>|" context prefix
 * (the same key-mangling bucketed profiling uses), so compute/comm
 * overlap is measured, never modelled. The closed-form ring formula
 * survives only as a cross-check the bench prints.
 */
#pragma once

#include <functional>
#include <vector>

#include "core/astra.h"
#include "graph/builder.h"
#include "runtime/dispatcher_dp.h"

namespace astra {

/**
 * Inter-device link model (PCIe-era defaults, matching the P100 box).
 * NOTE: link_gbps is giga*bits* per second (see sim/multi.h).
 */
using InterconnectConfig = LinkConfig;

/**
 * Analytic time for a ring allreduce of `bytes` across `degree`
 * devices: 2(G-1)/G bandwidth terms plus 2(G-1) latency hops. Kept as
 * a sanity cross-check for the measured path — Astra itself never
 * trusts it.
 */
double ring_allreduce_ns(int64_t bytes, int degree,
                         const InterconnectConfig& net);

/** Builds the training graph for one per-device mini-batch size. */
using BatchGraphFn = std::function<void(GraphBuilder&, int64_t batch)>;

/** One measured scaling point. */
struct ScalePoint
{
    int degree = 1;

    /** Measured per-device mini-batch time without communication. */
    double compute_ns = 0.0;

    /** Analytic ring formula for the gradient volume (cross-check). */
    double allreduce_ns = 0.0;

    /** Measured serial baseline: one bucket, flushed after compute. */
    double serial_ns = 0.0;

    /** Measured overlapped step under the chosen bucket schedule. */
    double step_ns = 0.0;

    /** Link busy time of the chosen dispatch (device 0). */
    double comm_ns = 0.0;

    /** Communication hidden under compute in the chosen dispatch. */
    double overlap_ns = 0.0;

    int64_t grad_bytes = 0;

    /** Chosen bucket capacity, bytes (0 = one bucket per tensor). */
    int64_t bucket_bytes = 0;

    /** Chosen flush schedule. */
    FlushSchedule flush = FlushSchedule::Eager;

    /** Bucket count the chosen capacity produced. */
    int num_buckets = 0;

    /** Data-parallel measurement mini-batches spent at this degree. */
    int minibatches = 0;

    /** Global samples per simulated second. */
    double
    throughput(int64_t global_batch) const
    {
        return static_cast<double>(global_batch) / step_ns * 1e9;
    }
};

/**
 * Measure data-parallel scaling of a model at a fixed global batch.
 *
 * Every degree that divides the global batch is explored: the graph is
 * rebuilt at batch/G, Astra tunes it (work-conserving, as always), and
 * the tuned plan is executed on G simulated devices while the adaptive
 * layer explores gradient-bucket capacity and flush schedule. Returns
 * one point per feasible degree, in the order given.
 *
 * Degrees that do not divide the global batch are skipped with a
 * warning; when `report` is non-null each skip is also appended to
 * ConvergenceReport::dp_skipped, so a sweep that measured fewer points
 * than asked is visible to machine consumers, not just the log.
 */
std::vector<ScalePoint> measure_scaling(const BatchGraphFn& build,
                                        int64_t global_batch,
                                        const std::vector<int>& degrees,
                                        const AstraOptions& opts,
                                        const InterconnectConfig& net,
                                        ConvergenceReport* report = nullptr);

/**
 * Index into `points` of the best-throughput degree.
 * `points` must be non-empty (asserted).
 */
size_t best_degree(const std::vector<ScalePoint>& points,
                   int64_t global_batch);

}  // namespace astra
