/**
 * @file
 * Measurement-driven data-parallel scaling (paper §3.4 / §6.7).
 *
 * "Depending on the communication cost of the model and the physical
 * characteristics of the network, the choice of ideal degree of
 * parallelism from a cost-benefit perspective, could be taken in an
 * automated manner with runtime measurement and adaptation."
 *
 * This module does exactly that on simulated hardware: for each
 * candidate degree G it measures one tuned mini-batch at per-device
 * batch B/G on the device simulator, adds the ring-allreduce cost of
 * the gradient volume over the modelled interconnect, and picks the
 * degree with the best end-to-end throughput. No analytic scaling
 * model anywhere — degrees are *run and timed*, the Astra way.
 */
#pragma once

#include <functional>
#include <vector>

#include "core/astra.h"
#include "graph/builder.h"

namespace astra {

/** Inter-device link model (PCIe-era defaults, matching the P100 box). */
struct InterconnectConfig
{
    /** Per-direction ring bandwidth, GB/s. */
    double link_gbps = 12.0;

    /** Per-message latency, microseconds. */
    double latency_us = 10.0;
};

/**
 * Time for a ring allreduce of `bytes` across `degree` devices:
 * 2(G-1)/G bandwidth terms plus 2(G-1) latency hops.
 */
double ring_allreduce_ns(int64_t bytes, int degree,
                         const InterconnectConfig& net);

/** Builds the training graph for one per-device mini-batch size. */
using BatchGraphFn = std::function<void(GraphBuilder&, int64_t batch)>;

/** One measured scaling point. */
struct ScalePoint
{
    int degree = 1;
    double compute_ns = 0.0;    ///< tuned per-device mini-batch time
    double allreduce_ns = 0.0;  ///< gradient synchronization time
    double step_ns = 0.0;       ///< compute + allreduce
    int64_t grad_bytes = 0;

    /** Global samples per simulated second. */
    double
    throughput(int64_t global_batch) const
    {
        return static_cast<double>(global_batch) / step_ns * 1e9;
    }
};

/**
 * Measure data-parallel scaling of a model at a fixed global batch.
 *
 * Every degree that divides the global batch is explored: the graph is
 * rebuilt at batch/G, Astra tunes it (work-conserving, as always), and
 * the allreduce of the gradient volume is added. Returns one point per
 * degree, in the order given.
 */
std::vector<ScalePoint> measure_scaling(const BatchGraphFn& build,
                                        int64_t global_batch,
                                        const std::vector<int>& degrees,
                                        const AstraOptions& opts,
                                        const InterconnectConfig& net);

/** Index into `points` of the best-throughput degree. */
size_t best_degree(const std::vector<ScalePoint>& points,
                   int64_t global_batch);

}  // namespace astra
