#include "core/bucketed.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/obs.h"
#include "support/logging.h"

namespace astra {

BucketedAstra::BucketedAstra(std::vector<int> bucket_lengths,
                             LengthGraphFn build, AstraOptions opts)
    : lengths_(std::move(bucket_lengths)),
      overflow_counter_(&obs::counter("bucketed.length_overflows"))
{
    ASTRA_ASSERT(!lengths_.empty());
    ASTRA_ASSERT(std::is_sorted(lengths_.begin(), lengths_.end()));
    for (int len : lengths_) {
        Bucket b;
        b.builder = std::make_unique<GraphBuilder>();
        build(*b.builder, len);
        AstraOptions bucket_opts = opts;
        // The bucket id prefixes every profile key (§5.5), so the five
        // per-bucket explorations never alias in the index.
        bucket_opts.context_prefix =
            opts.context_prefix + "b" + std::to_string(len) + "|";
        b.session = std::make_unique<AstraSession>(b.builder->graph(),
                                                   bucket_opts);
        buckets_.push_back(std::move(b));
    }
}

int64_t
BucketedAstra::optimize()
{
    int64_t total = 0;
    for (Bucket& b : buckets_) {
        b.result = b.session->optimize();
        b.optimized = true;
        total += b.result.minibatches;
    }
    return total;
}

int
BucketedAstra::clamped_index(int length) const
{
    for (size_t i = 0; i < lengths_.size(); ++i)
        if (length <= lengths_[i])
            return static_cast<int>(i);
    // Longer than every bucket: the padded graph is *shorter* than the
    // input, so a real serving path would truncate tokens here.
    if (strict_overflow_)
        throw std::out_of_range(
            "bucket_for(" + std::to_string(length) +
            "): length exceeds largest bucket " +
            std::to_string(lengths_.back()) +
            " and strict overflow mode rejects truncation");
    return static_cast<int>(lengths_.size()) - 1;
}

int
BucketedAstra::bucket_for(int length) const
{
    const int idx = clamped_index(length);
    if (length <= lengths_.back())
        return idx;
    // Clamp, but keep count: the warning fires once per instance
    // (steady-state serving hits this per mini-batch), while the tally
    // and obs counter record every clamp for the convergence report.
    overflow_count_.fetch_add(1, std::memory_order_relaxed);
    overflow_counter_->add();
    if (!warned_overflow_.exchange(true, std::memory_order_relaxed))
        warn("bucket_for(", length, "): length exceeds largest bucket ",
             lengths_.back(), "; clamping (input would be truncated)");
    return idx;
}

ConvergenceReport
BucketedAstra::convergence_report(int i) const
{
    ASTRA_ASSERT(i >= 0 && i < static_cast<int>(buckets_.size()));
    ASTRA_ASSERT(buckets_[static_cast<size_t>(i)].optimized,
                 "call optimize() first");
    ConvergenceReport rep =
        buckets_[static_cast<size_t>(i)].result.convergence;
    rep.bucket_overflows =
        overflow_count_.load(std::memory_order_relaxed);
    return rep;
}

double
BucketedAstra::step_ns(int length) const
{
    // Non-counting lookup: the caller's bucket_for already tallied an
    // overflowing length when it routed the request — re-invoking the
    // counting path here would record every overflow twice.
    const Bucket& b =
        buckets_[static_cast<size_t>(clamped_index(length))];
    ASTRA_ASSERT(b.optimized, "call optimize() first");
    // Steady state re-runs the bucket's best configuration; the padded
    // (bucket-length) graph is what executes.
    return b.session->run(b.result.best_config).total_ns;
}

double
BucketedAstra::bucket_best_ns(int i) const
{
    ASTRA_ASSERT(i >= 0 && i < static_cast<int>(buckets_.size()));
    ASTRA_ASSERT(buckets_[static_cast<size_t>(i)].optimized);
    return buckets_[static_cast<size_t>(i)].result.best_ns;
}

const AstraSession&
BucketedAstra::session(int i) const
{
    ASTRA_ASSERT(i >= 0 && i < static_cast<int>(buckets_.size()));
    return *buckets_[static_cast<size_t>(i)].session;
}

const WirerResult&
BucketedAstra::bucket_result(int i) const
{
    ASTRA_ASSERT(i >= 0 && i < static_cast<int>(buckets_.size()));
    ASTRA_ASSERT(buckets_[static_cast<size_t>(i)].optimized,
                 "call optimize() first");
    return buckets_[static_cast<size_t>(i)].result;
}

}  // namespace astra
